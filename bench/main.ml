(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Section III motivation + Tables II/III, Figs. 2-7, Table V) plus the
   ablations DESIGN.md calls out, printing paper-shaped rows with the
   paper's reported numbers alongside for comparison.

   Part 2 runs Bechamel micro-benchmarks — one Test.make per reproduced
   table/figure kernel — and prints the OLS time estimates. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------- part 1 *)

let reproduce_all () =
  Experiments.Exp_common.section "PART 1: table/figure reproduction";
  Experiments.Exp_motivation.print (Experiments.Exp_motivation.run ());
  Experiments.Exp_fig2.print (Experiments.Exp_fig2.run ());
  Experiments.Exp_fig3.print (Experiments.Exp_fig3.run ());
  Experiments.Exp_fig4.print (Experiments.Exp_fig4.run ());
  Experiments.Exp_fig5.print (Experiments.Exp_fig5.run ());
  Experiments.Exp_fig6.print (Experiments.Exp_fig6.run ());
  Experiments.Exp_fig7.print (Experiments.Exp_fig7.run ());
  Experiments.Exp_table5.print (Experiments.Exp_table5.run ());
  Experiments.Exp_ablations.print (Experiments.Exp_ablations.run ());
  Experiments.Exp_sensitivity.print (Experiments.Exp_sensitivity.run ());
  Experiments.Exp_tasks.print (Experiments.Exp_tasks.run ());
  Experiments.Exp_pareto.print (Experiments.Exp_pareto.run ());
  Experiments.Exp_3d.print (Experiments.Exp_3d.run ())

(* ------------------------------------------------------------- part 2 *)

(* One Bechamel test per reproduced table/figure, exercising the kernel
   that experiment leans on. *)
let tests () =
  let pm = Power.Power_model.default in
  let seq_params = { Core.Solver.default_params with Core.Solver.par = false } in
  let model3 =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)
  in
  let model9 =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)
  in
  let p3 = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  let p6_4 = Workload.Configs.platform ~cores:6 ~levels:4 ~t_max:65. in
  let p9 = Workload.Configs.platform ~cores:9 ~levels:2 ~t_max:55. in
  let rng = Random.State.make [| 11 |] in
  let sched9 =
    Workload.Random_sched.step_up rng ~n_cores:9 ~period:9.836 ~max_intervals:5
      ~levels:(Power.Vf.table_iv 5)
  in
  let profile9 = Sched.Peak.profile model9 pm sched9 in
  let sched2 =
    Sched.Schedule.two_mode ~period:0.1 ~low:[| 0.6; 0.6 |] ~high:[| 1.3; 1.3 |]
      ~high_ratio:[| 0.5; 0.5 |]
  in
  let model2 =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3)
  in
  let a9 = Thermal.Model.a_matrix model9 in
  [
    (* Tables II/III: the ideal solve on the 3x1 platform. *)
    Test.make ~name:"table2-3/motivation-ideal"
      (Staged.stage (fun () -> ignore (Core.Ideal.solve p3)));
    (* Fig. 2: dense peak scan of an arbitrary 2-core schedule. *)
    Test.make ~name:"fig2/peak-scan-2core"
      (Staged.stage (fun () ->
           ignore (Sched.Peak.of_any model2 pm ~samples_per_segment:32 sched2)));
    (* Fig. 3: one phase-grid peak evaluation (the sweep's inner loop). *)
    Test.make ~name:"fig3/phase-grid-point"
      (Staged.stage (fun () ->
           let s =
             Workload.Random_sched.phase_grid ~n_cores:3 ~period:6. ~v_low:0.6
               ~v_high:1.3 ~offsets:[| 3.; 1.2; 4.2 |]
           in
           ignore (Sched.Peak.of_any model3 pm ~samples_per_segment:24 s)));
    (* Fig. 4: the (I-K)^{-1} stable-status solve on 9 cores. *)
    Test.make ~name:"fig4-5/matex-stable-9core"
      (Staged.stage (fun () -> ignore (Thermal.Matex.stable_start model9 profile9)));
    (* Fig. 5: one m-oscillation peak evaluation. *)
    Test.make ~name:"fig5/oscillate-peak"
      (Staged.stage (fun () ->
           ignore
             (Sched.Peak.of_step_up model9 pm (Sched.Oscillate.oscillate 10 sched9))));
    (* Figs. 6/7 + Table V: the policies themselves, pulled from the
       registry exactly as the experiments run them.  Each kernel gets a
       cache-disabled context (cache_size 0) so it measures the real
       search, not memo-table replay.  The unsuffixed kernels force the
       sequential path (comparable across revisions); the -par twins run
       the same search on the shared domain pool. *)
    (let lns = Core.Registry.find_exn "lns"
     and ev9 = Core.Eval.create ~cache_size:0 p9 in
     Test.make ~name:"fig6-7/lns-9core"
       (Staged.stage (fun () -> ignore (Core.Solver.run ~params:seq_params lns ev9))));
    (let exs = Core.Registry.find_exn "exs"
     and ev6 = Core.Eval.create ~cache_size:0 p6_4 in
     Test.make ~name:"fig6-7/exs-6core-4lv"
       (Staged.stage (fun () -> ignore (Core.Solver.run ~params:seq_params exs ev6))));
    (let exs = Core.Registry.find_exn "exs"
     and ev6 = Core.Eval.create ~cache_size:0 p6_4 in
     Test.make ~name:"fig6-7/exs-6core-4lv-par"
       (Staged.stage (fun () -> ignore (Core.Solver.run exs ev6))));
    (let ao = Core.Registry.find_exn "ao"
     and ev3 = Core.Eval.create ~cache_size:0 p3 in
     Test.make ~name:"fig6-7/ao-3core"
       (Staged.stage (fun () -> ignore (Core.Solver.run ~params:seq_params ao ev3))));
    (let ao = Core.Registry.find_exn "ao"
     and ev3 = Core.Eval.create ~cache_size:0 p3 in
     Test.make ~name:"fig6-7/ao-3core-par"
       (Staged.stage (fun () -> ignore (Core.Solver.run ao ev3))));
    (* Response-engine payoff on the policy search itself: AO through a
       shared context whose lazily built engine (and the per-model
       engine cache behind it) stays warm across runs, with the memo
       tables disabled so the kernel measures evaluation, not replay. *)
    (let ao = Core.Registry.find_exn "ao"
     and ev3 = Core.Eval.create ~cache_size:0 p3 in
     ignore (Core.Eval.engine ev3);
     Test.make ~name:"ext/ao-3core-response"
       (Staged.stage (fun () -> ignore (Core.Solver.run ~params:seq_params ao ev3))));
    (* Superposed streaming stable-status peak vs the LU reference on
       the same 9-core profile — the per-candidate cost the response
       engine removes. *)
    Test.make ~name:"ext/peak-superpose-vs-lu/superpose"
      (Staged.stage (fun () ->
           ignore (Thermal.Matex.end_of_period_peak model9 profile9)));
    Test.make ~name:"ext/peak-superpose-vs-lu/lu"
      (Staged.stage (fun () ->
           ignore
             (Thermal.Model.max_core_temp model9
                (Thermal.Matex.Reference.stable_start model9 profile9))));
    (* Eval-cache payoff: the full comparison sweep with a fresh context
       every run (cold) vs one shared context whose memo tables persist
       across runs (warm).  The gap is the memoization win. *)
    Test.make ~name:"ext/eval-cache-cold-3core"
      (Staged.stage (fun () ->
           ignore (Experiments.Exp_common.run_policies ~cores:3 ~levels:3 ~t_max:65. ())));
    (let warm = Core.Eval.create (Workload.Configs.platform ~cores:3 ~levels:3 ~t_max:65.) in
     Test.make ~name:"ext/eval-cache-warm-3core"
       (Staged.stage (fun () ->
            ignore
              (Experiments.Exp_common.run_policies ~eval:warm ~cores:3 ~levels:3
                 ~t_max:65. ()))));
    (* Numeric kernels under everything above. *)
    Test.make ~name:"kernel/propagator-9x9"
      (Staged.stage (fun () -> ignore (Thermal.Model.propagator model9 0.01)));
    Test.make ~name:"kernel/expm-9x9"
      (Staged.stage (fun () -> ignore (Linalg.Expm.expm_scaled a9 0.01)));
    Test.make ~name:"kernel/sym-eig-9x9"
      (Staged.stage (fun () ->
           let sym =
             Linalg.Mat.init 9 9 (fun i j ->
                 Linalg.Mat.get a9 i j +. Linalg.Mat.get a9 j i)
           in
           ignore (Linalg.Sym_eig.decompose sym)));
    Test.make ~name:"kernel/steady-state-9core"
      (Staged.stage (fun () ->
           ignore (Thermal.Model.steady_core_temps model9 (Array.make 9 15.))));
    (* Extension kernels. *)
    (let grid = Thermal.Grid_model.build ~subdivisions:3 (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3) in
     let psi = Thermal.Grid_model.expand_powers grid (Array.make 3 15.) in
     let profile = [ { Thermal.Matex.duration = 0.05; psi } ] in
     Test.make ~name:"ext/grid-27cell-stable"
       (Staged.stage (fun () ->
            ignore (Thermal.Matex.stable_start grid.Thermal.Grid_model.model profile))));
    (* Sparse/Krylov backend kernels: the 256-cell steady CG solve, the
       1024-cell stable-status peak (shift-invert-free expmv + CG fixed
       point), and the dense-vs-sparse one-shot crossover at 64 cells —
       each arm pays its own assembly/factorization, the cost a driver
       pays per floorplan. *)
    (let eng256 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:16 ~cols:16 ())
     in
     let psi256 = Array.init 256 (fun i -> if ((i / 16) + i) mod 2 = 0 then 8. else 2.) in
     Test.make ~name:"kernel/sparse-steady-256"
       (Staged.stage (fun () ->
            ignore (Thermal.Sparse_model.steady_peak eng256 psi256))));
    (let eng1024 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:32 ~cols:32 ())
     in
     let psi = Array.init 1024 (fun i -> if ((i / 32) + i) mod 2 = 0 then 8. else 2.) in
     let psi2 = Array.map (fun p -> 10. -. p) psi in
     let profile =
       [
         { Thermal.Matex.duration = 0.05; psi };
         { Thermal.Matex.duration = 0.05; psi = psi2 };
       ]
     in
     Test.make ~name:"kernel/sparse-peak-1024"
       (Staged.stage (fun () ->
            ignore (Thermal.Sparse_model.end_of_period_peak eng1024 profile))));
    (let spec64 = Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 () in
     let psi64 = Array.init 64 (fun i -> if ((i / 8) + i) mod 2 = 0 then 8. else 2.) in
     Test.make ~name:"kernel/steady-crossover-64/sparse"
       (Staged.stage (fun () ->
            ignore
              (Thermal.Sparse_model.steady_peak
                 (Thermal.Sparse_model.of_spec spec64)
                 psi64))));
    (let spec64 = Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 () in
     let psi64 = Array.init 64 (fun i -> if ((i / 8) + i) mod 2 = 0 then 8. else 2.) in
     Test.make ~name:"kernel/steady-crossover-64/dense-lu"
       (Staged.stage (fun () ->
            let g =
              Linalg.Sparse.to_dense
                (Linalg.Sparse.of_triplets ~rows:64 ~cols:64
                   (Thermal.Spec.g_eff_triplets spec64))
            in
            let lu = Linalg.Lu.factorize g in
            let h = Linalg.Vec.zeros 64 in
            Array.iteri
              (fun k node ->
                h.(node) <-
                  psi64.(k)
                  +. (spec64.Thermal.Spec.leak_beta *. spec64.Thermal.Spec.ambient))
              spec64.Thermal.Spec.core_nodes;
            let theta = Linalg.Lu.solve_vec lu h in
            ignore
              (Array.fold_left
                 (fun acc node ->
                   Float.max acc (theta.(node) +. spec64.Thermal.Spec.ambient))
                 neg_infinity spec64.Thermal.Spec.core_nodes))));
    (* Two-tier candidate evaluation at 64+ cells: the same AO-style
       m sweep (fixed per-core duty ratios, period shrinking with m)
       priced three ways.  The screened arm scores every candidate on
       the Lanczos-reduced model and re-verifies only the near-minimum
       survivors through the superposition engine (cache disabled, so
       each survivor pays its real warm-started fixed point); the
       baseline twin pays the pre-screening cost — one direct Krylov
       stable solve per candidate, per-segment CG equilibria and a cold
       fixed point.  Their ratio is the policy-search win the response
       engine + screening tier buy at many-core sizes. *)
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let resp64 = Thermal.Sparse_response.make eng64 in
     let rom64 = Thermal.Reduced.of_engine eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     let period m = 0.1 /. float_of_int (m + 1) in
     let cache = Sched.Peak.Cache.create ~max_entries:0 () in
     Test.make ~name:"kernel/ao-64cell-sparse/screened"
       (Staged.stage (fun () ->
            ignore
              (Core.Screen.select ~par:false ~margin:0.5 ~n:24
                 ~rom:(fun i ->
                   Sched.Peak.rom_of_two_mode rom64 pm ~period:(period i) ~low
                     ~high ~high_ratio)
                 ~exact:(fun i ->
                   Sched.Peak.response_of_two_mode_cached cache resp64 pm
                     ~period:(period i) ~low ~high ~high_ratio)
                 ()))));
    (* The screening tier alone: ROM-score the full 24-candidate batch
       with no exact re-verification.  Against the exact baseline below
       this is the per-candidate evaluation throughput the reduced
       model buys — the ratio the two-tier search approaches as the
       survivor fraction shrinks. *)
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let rom64 = Thermal.Reduced.of_engine eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     let period m = 0.1 /. float_of_int (m + 1) in
     Test.make ~name:"kernel/ao-64cell-sparse/rom-screen-tier"
       (Staged.stage (fun () ->
            for i = 0 to 23 do
              ignore
                (Sched.Peak.rom_of_two_mode rom64 pm ~period:(period i) ~low
                   ~high ~high_ratio)
            done)));
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let b64 = Thermal.Backend.of_sparse eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     let period m = 0.1 /. float_of_int (m + 1) in
     Test.make ~name:"kernel/ao-64cell-sparse/exact-baseline"
       (Staged.stage (fun () ->
            for i = 0 to 23 do
              ignore
                (Sched.Peak.backend_of_two_mode b64 pm ~period:(period i) ~low
                   ~high ~high_ratio)
            done)));
    (* The same two-tier sweep at 256 cells — the TPT/Demand m-sweep
       shape the 16x16 scaling study runs. *)
    (let eng256 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:16 ~cols:16 ())
     in
     let resp256 = Thermal.Sparse_response.make eng256 in
     let rom256 = Thermal.Reduced.of_engine eng256 in
     let low = Array.make 256 0.8 and high = Array.make 256 1.3 in
     let high_ratio =
       Array.init 256 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 16) /. 15.))
     in
     let period m = 0.1 /. float_of_int (m + 1) in
     let cache = Sched.Peak.Cache.create ~max_entries:0 () in
     Test.make ~name:"kernel/tpt-256cell-screened"
       (Staged.stage (fun () ->
            ignore
              (Core.Screen.select ~par:false ~margin:0.5 ~n:12
                 ~rom:(fun i ->
                   Sched.Peak.rom_of_two_mode rom256 pm ~period:(period i) ~low
                     ~high ~high_ratio)
                 ~exact:(fun i ->
                   Sched.Peak.response_of_two_mode_cached cache resp256 pm
                     ~period:(period i) ~low ~high ~high_ratio)
                 ()))));
    (* One-time response-engine assembly at 256 cells: the n_cores + 1
       pool-parallel unit CG solves a platform pays before its first
       candidate — [build], not the memoized [make], so every run pays
       the real assembly. *)
    (let eng256 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:16 ~cols:16 ())
     in
     Test.make ~name:"kernel/sparse-response-build-256"
       (Staged.stage (fun () ->
            ignore (Thermal.Sparse_response.build eng256))));
    (* Prepared-base delta scan at 64 cells (DESIGN.md §14): one TPT
       adjust-style inner iteration priced the delta way — prepare the
       base once, score all 64 single-core duty-cycle candidates off
       it, exact-verify the winner (cache disabled).  Against the
       kernel/ao-64cell-sparse arms above, this is the per-step cost
       the delta tier leaves in the policy search. *)
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let resp64 = Thermal.Sparse_response.make eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     let cache = Sched.Peak.Cache.create ~max_entries:0 () in
     Test.make ~name:"kernel/ao-64cell-delta"
       (Staged.stage (fun () ->
            Sched.Peak.response_two_mode_delta_base resp64 pm ~period:0.05
              ~low ~high ~high_ratio;
            let best = ref 0 and best_pk = ref infinity in
            for j = 0 to 63 do
              let pk =
                Sched.Peak.response_two_mode_delta_peak resp64 pm ~core:j
                  ~low:low.(j) ~high:high.(j)
                  ~high_ratio:(Float.max 0. (high_ratio.(j) -. 0.05))
              in
              if pk < !best_pk then begin
                best := j;
                best_pk := pk
              end
            done;
            let hr = Array.copy high_ratio in
            hr.(!best) <- Float.max 0. (hr.(!best) -. 0.05);
            ignore
              (Sched.Peak.response_of_two_mode_cached cache resp64 pm
                 ~period:0.05 ~low ~high ~high_ratio:hr))));
    (* One candidate priced both ways off the same 64-cell response
       engine: the delta arm scores a single-core duty change against a
       base prepared at setup; the full arm re-superposes the whole
       candidate with the cache disabled.  Their ratio is the
       per-candidate win the prepared base buys. *)
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let resp64 = Thermal.Sparse_response.make eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     Sched.Peak.response_two_mode_delta_base resp64 pm ~period:0.05 ~low ~high
       ~high_ratio;
     Test.make ~name:"kernel/delta-vs-full-candidate/delta"
       (Staged.stage (fun () ->
            ignore
              (Sched.Peak.response_two_mode_delta_peak resp64 pm ~core:17
                 ~low:low.(17) ~high:high.(17)
                 ~high_ratio:(high_ratio.(17) -. 0.05)))));
    (let eng64 =
       Thermal.Sparse_model.of_spec
         (Thermal.Grid_model.sheet_spec ~rows:8 ~cols:8 ())
     in
     let resp64 = Thermal.Sparse_response.make eng64 in
     let low = Array.make 64 0.8 and high = Array.make 64 1.3 in
     let high_ratio =
       Array.init 64 (fun i -> 0.2 +. (0.6 *. float_of_int (i mod 8) /. 7.))
     in
     let hr2 = Array.copy high_ratio in
     hr2.(17) <- high_ratio.(17) -. 0.05;
     let cache = Sched.Peak.Cache.create ~max_entries:0 () in
     Test.make ~name:"kernel/delta-vs-full-candidate/full"
       (Staged.stage (fun () ->
            ignore
              (Sched.Peak.response_of_two_mode_cached cache resp64 pm
                 ~period:0.05 ~low ~high ~high_ratio:hr2))));
    (* The headroom fill at 256 cells through the full Eval/Tpt stack
       with the delta tier on: candidate scores come off the prepared
       base, exact solves only for re-verified winners.  [t_max] sits
       0.3 K above the seed config's peak so every run walks the same
       short fill trajectory. *)
    (let n = 256 in
     let period = 0.05 in
     let c0 =
       {
         Core.Tpt.period;
         v_low = Array.make n 0.8;
         v_high = Array.make n 1.3;
         high_time =
           Array.init n (fun i ->
               0.2 *. period *. float_of_int (i mod 4) /. 3.);
         offset = Array.make n 0.;
       }
     in
     let probe =
       Core.Platform.sheet ~rows:16 ~cols:16 ~levels:(Power.Vf.table_iv 5)
         ~t_max:200. ()
     in
     let ev_probe =
       Core.Eval.create ~backend:Core.Eval.Sparse ~cache_size:0 probe
     in
     let peak0 = Core.Tpt.peak probe ~eval:ev_probe c0 in
     let p =
       Core.Platform.sheet ~rows:16 ~cols:16 ~levels:(Power.Vf.table_iv 5)
         ~t_max:(peak0 +. 0.3) ()
     in
     let ev = Core.Eval.create ~backend:Core.Eval.Sparse ~cache_size:0 p in
     Test.make ~name:"kernel/fill-headroom-256-delta"
       (Staged.stage (fun () ->
            ignore
              (Core.Tpt.fill_headroom p ~eval:ev ~par:false
                 ~t_unit:(period /. 4.) ~delta_margin:1.0 c0))));
    (let profile3 = Sched.Peak.profile model3 pm (Sched.Schedule.two_mode ~period:0.1 ~low:[| 0.6; 0.6; 0.6 |] ~high:[| 1.3; 1.3; 1.3 |] ~high_ratio:[| 0.4; 0.5; 0.6 |]) in
     Test.make ~name:"ext/peak-refined-3core"
       (Staged.stage (fun () ->
            ignore (Thermal.Matex.peak_refined model3 ~samples_per_segment:16 profile3))));
    (let demand = Core.Registry.find_exn "demand"
     and ev =
       Core.Eval.create ~cache_size:0
         (Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:60.)
     and demands = Some [| 1.0; 0.9; 0.8 |] in
     Test.make ~name:"ext/demand-3core"
       (Staged.stage (fun () ->
            ignore
              (Core.Solver.run
                 ~params:{ Core.Solver.default_params with Core.Solver.par = false; demands }
                 demand ev))));
    (let demand = Core.Registry.find_exn "demand"
     and ev =
       Core.Eval.create ~cache_size:0
         (Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:60.)
     and demands = Some [| 1.0; 0.9; 0.8 |] in
     Test.make ~name:"ext/demand-3core-par"
       (Staged.stage (fun () ->
            ignore
              (Core.Solver.run ~params:{ Core.Solver.default_params with Core.Solver.par = true; demands } demand ev))));
    (* Fixed cost of one pool round-trip over trivial work: the
       cross-over point below which a sweep should stay sequential. *)
    (let xs = Array.init 64 (fun i -> i) in
     Test.make ~name:"kernel/pool-map-overhead"
       (Staged.stage (fun () ->
            ignore (Util.Pool.map_array (fun x -> x + 1) xs))));
    (let p3g = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65. in
     Test.make ~name:"ext/governor-1s"
       (Staged.stage (fun () ->
            ignore
              (Runtime.Governor.simulate p3g
                 (Runtime.Governor.Threshold { guard = 2. })
                 ~duration:1. ()))));
    (* Epoch-loop throughput on the dense modal plant: 50 epochs of the
       hysteresis controller, sensing and stepping included. *)
    (let ev3 =
       Core.Eval.create ~cache_size:0
         (Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65.)
     and cfg = { Runtime.Loop.default with Runtime.Loop.duration = 1. } in
     Test.make ~name:"ext/epoch-loop-3x3"
       (Staged.stage (fun () ->
            ignore (Runtime.Loop.run ~config:cfg ev3 (Runtime.Controllers.threshold ())))));
    (* Same loop on the 8x8 sparse-Krylov plant: what one control epoch
       costs when the plant is a 64-core sheet. *)
    (let ev64 =
       Core.Eval.create ~cache_size:0 ~backend:Core.Eval.Sparse
         (Core.Platform.sheet ~rows:8 ~cols:8 ~levels:(Power.Vf.table_iv 5)
            ~t_max:80. ())
     and cfg = { Runtime.Loop.default with Runtime.Loop.duration = 0.2 } in
     Test.make ~name:"ext/epoch-loop-8x8"
       (Staged.stage (fun () ->
            ignore (Runtime.Loop.run ~config:cfg ev64 (Runtime.Controllers.threshold ())))));
  ]

let run_bechamel ?(only = []) () =
  Experiments.Exp_common.section "PART 2: Bechamel micro-benchmarks (time per run, OLS)";
  let selected =
    match only with
    | [] -> tests ()
    | subs ->
        List.filter
          (fun t ->
            let name = Test.name t in
            List.exists
              (fun sub ->
                (* Substring match, so --only fig6-7 picks a family. *)
                let nl = String.length name and sl = String.length sub in
                let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
                sl > 0 && at 0)
              subs)
          (tests ())
  in
  if selected = [] then begin
    prerr_endline "bench: --only matched no benchmarks";
    exit 2
  end;
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  (* One grouped run per test, with a compaction in between: the
     allocation-heavy kernels (the eval-cache sweeps promote hundreds of
     kilobytes per run) otherwise leave a swollen major heap that taxes
     whichever kernel happens to run after them. *)
  let raw = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Gc.compact ();
      Hashtbl.iter (Hashtbl.replace raw)
        (Benchmark.all cfg instances (Test.make_grouped ~name:"fosc" [ t ])))
    selected;
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let t = Util.Table.create [ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Util.Table.add_row t [ name; pretty ])
    rows;
  Util.Table.print t;
  rows

(* Machine-readable perf trajectory: benchmark name -> ns/run.  JSON
   strings need only backslash/quote escaping here because Bechamel test
   names are plain ASCII. *)
let write_json path rows =
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" (escape name)
        (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote OLS estimates to %s\n" path

(* Parse the flat { "name": ns, ... } JSON that {!write_json} emits —
   string keys, float or null values, no nesting.  A dependency-free
   hand parser is all that format needs. *)
let parse_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s:%d: %s" path !pos msg) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= len then fail "dangling escape";
          Buffer.add_char b s.[!pos + 1];
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    let start = !pos in
    while
      !pos < len
      && match s.[!pos] with ',' | '}' | ' ' | '\t' | '\n' | '\r' -> false | _ -> true
    do
      incr pos
    done;
    match String.sub s start (!pos - start) with
    | "null" -> None
    | tok -> (
        match float_of_string_opt tok with
        | Some v -> Some v
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  expect '{';
  let entries = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let rec members () =
      let key = parse_string () in
      expect ':';
      (match parse_value () with
      | Some v -> entries := (key, v) :: !entries
      | None -> ());
      skip_ws ();
      match peek () with
      | Some ',' ->
          incr pos;
          members ()
      | Some '}' -> incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  List.rev !entries

(* Compare current rows against a baseline file; kernels present on only
   one side are reported but never gate.  Returns the names that
   regressed by more than [max_regression] percent. *)
let check_regressions ~baseline ~max_regression rows =
  Experiments.Exp_common.section
    (Printf.sprintf "regression gate vs %s (max +%.1f%%)" baseline max_regression);
  let base = parse_baseline baseline in
  let t = Util.Table.create [ "benchmark"; "baseline"; "current"; "delta"; "status" ] in
  let pretty ns =
    if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let regressed = ref [] in
  List.iter
    (fun (name, ns) ->
      if not (Float.is_nan ns) then
        match List.assoc_opt name base with
        | None -> Util.Table.add_row t [ name; "-"; pretty ns; "-"; "new" ]
        | Some old ->
            let delta = 100. *. ((ns /. old) -. 1.) in
            let status =
              if delta > max_regression then begin
                regressed := name :: !regressed;
                "REGRESSED"
              end
              else "ok"
            in
            Util.Table.add_row t
              [ name; pretty old; pretty ns; Printf.sprintf "%+.1f%%" delta; status ])
    rows;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name rows) then
        Util.Table.add_row t [ name; "(not run)"; "-"; "-"; "skipped" ])
    base;
  Util.Table.print t;
  List.rev !regressed

let usage () =
  prerr_endline
    "usage: main.exe [--json <path>] [--baseline <path>] [--max-regression <pct>]\n\
    \                [--only <substr>[,<substr>...]]";
  exit 2

let () =
  let json_path = ref None in
  let baseline = ref None in
  let max_regression = ref 25. in
  let only = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--baseline" :: path :: rest ->
        baseline := Some path;
        parse rest
    | "--max-regression" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some v when v >= 0. -> max_regression := v
        | _ -> usage ());
        parse rest
    | "--only" :: subs :: rest ->
        only := String.split_on_char ',' subs;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* --only runs a quick targeted subset: skip the Part 1 reproduction. *)
  if !only = [] then reproduce_all ();
  let rows = run_bechamel ~only:!only () in
  (match !json_path with Some path -> write_json path rows | None -> ());
  (match !baseline with
  | None -> print_newline ()
  | Some baseline ->
      let regressed =
        check_regressions ~baseline ~max_regression:!max_regression rows
      in
      print_newline ();
      if regressed <> [] then begin
        Printf.eprintf "bench: %d benchmark(s) regressed more than %.1f%%:\n"
          (List.length regressed) !max_regression;
        List.iter (Printf.eprintf "  %s\n") regressed;
        exit 1
      end)
