(* Toolchain tour: the HotSpot-interop and analysis extensions in one
   pipeline.

     dune exec examples/interop.exe

   1. write a floorplan as a HotSpot .flp and read it back;
   2. generate a synthetic Markov-phased workload as a .ptrace;
   3. replay it through the compact model;
   4. estimate the full thermal state from noisy sensors (observer);
   5. export the model matrices for MATLAB/numpy;
   6. render AO's schedule for the same chip as an SVG Gantt chart.

   Everything lands in a temporary directory printed at the end. *)

let () =
  let dir = Filename.temp_file "fosc_interop" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let in_dir f = Filename.concat dir f in

  (* 1. floorplan round trip. *)
  let fp = Thermal.Floorplan.grid ~rows:2 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  Thermal.Flp.to_file (in_dir "chip.flp") fp;
  let fp = Thermal.Flp.of_file (in_dir "chip.flp") in
  let model = Thermal.Hotspot.core_level fp in
  Printf.printf "floorplan: %d cores via %s\n" (Thermal.Model.n_cores model)
    (in_dir "chip.flp");

  (* 2. synthetic workload -> .ptrace. *)
  let names = Array.map (fun b -> b.Thermal.Floorplan.name) fp.Thermal.Floorplan.blocks in
  let rng = Random.State.make [| 2026 |] in
  let trace =
    Workload.Phases.generate rng ~phases:Workload.Phases.default_phases ~names
      ~duration:4.0 ~dt:0.02 ~power:Power.Power_model.default
      ~levels:(Power.Vf.table_iv 5)
  in
  Thermal.Ptrace.to_file (in_dir "run.ptrace") trace;
  Printf.printf "workload: %d power samples (mean utilization %.2f) -> %s\n"
    (Array.length trace.Thermal.Ptrace.samples)
    (Workload.Phases.mean_utilization Workload.Phases.default_phases)
    (in_dir "run.ptrace");

  (* 3. replay. *)
  let map = Thermal.Ptrace.columns_for_model trace names in
  let temps = Thermal.Ptrace.replay model trace ~interval:0.02 ~column_map:map in
  Printf.printf "replay: peak %.2f C over %.1fs\n" (Thermal.Trace.peak temps) 4.0;

  (* 4. observer vs noisy sensors over the same replay (the observer
     runs on the backend seam, so the same code serves the sparse
     plants). *)
  let b = Thermal.Backend.of_model model in
  let obs = Runtime.Observer.create b ~dt:0.02 ~gain:0.3 in
  let gaussian sigma =
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    sigma *. sqrt (-2. *. Float.log u1)
    *. Float.cos (2. *. Float.pi *. Random.State.float rng 1.)
  in
  let truth = ref (b.Thermal.Backend.ambient_state ()) in
  let est = ref (Runtime.Observer.initial obs) in
  let raw = ref 0. and filtered = ref 0. and count = ref 0 in
  Array.iter
    (fun row ->
      let psi = Array.map (fun c -> row.(c)) map in
      truth := b.Thermal.Backend.step ~dt:0.02 ~state:!truth ~psi;
      let true_temps = b.Thermal.Backend.core_temps !truth in
      let measured = Array.map (fun t -> t +. gaussian 1.0) true_temps in
      est := Runtime.Observer.update obs ~estimate:!est ~psi ~measured;
      let est_temps = Runtime.Observer.core_estimates obs !est in
      Array.iteri
        (fun i t ->
          raw := !raw +. Float.abs (measured.(i) -. t);
          filtered := !filtered +. Float.abs (est_temps.(i) -. t);
          incr count)
        true_temps)
    trace.Thermal.Ptrace.samples;
  Printf.printf "observer: mean |error| %.3f C filtered vs %.3f C raw sensors\n"
    (!filtered /. float_of_int !count)
    (!raw /. float_of_int !count);

  (* 5. matrix export. *)
  let paths = Thermal.Export.write_model ~dir ~prefix:"chip" model in
  Printf.printf "matrices: %s\n" (String.concat ", " (List.map Filename.basename paths));

  (* 6. AO schedule for the same chip, rendered. *)
  let platform = Core.Platform.make ~levels:(Power.Vf.table_iv 5) ~t_max:60. model in
  let ao = Core.Ao.solve platform in
  Util.Svg_plot.write (in_dir "ao_schedule.svg")
    (Sched.Render.gantt_svg ~title:"AO schedule" ao.Core.Ao.schedule);
  Printf.printf "AO: throughput %.4f at peak %.2f C; gantt -> %s\n"
    ao.Core.Ao.throughput ao.Core.Ao.peak (in_dir "ao_schedule.svg");
  Printf.printf "\nall artifacts in %s\n" dir
