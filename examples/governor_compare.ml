(* Proactive (AO) vs reactive (governor-style) thermal management.

     dune exec examples/governor_compare.exe

   The paper's introduction argues that reactive DTM — throttle when a
   sensor crosses a threshold — cannot guarantee the peak-temperature
   constraint and wastes headroom when guard-banded.  This example runs
   the library's reactive governors (Runtime.Governor) on the same
   3-core thermal model AO plans for:

   - a threshold (ondemand-style) governor at several guard bands,
   - the same governor with noisy sensors (the reliability point the
     paper makes about reactive methods),
   - a chip-wide PI controller,
   - and AO, whose schedule holds T_max by construction. *)

let t_max = 65.

let describe name (g : Runtime.Governor.stats) =
  Printf.printf
    "%-34s THR %.4f  peak %.2f C  %4d fine samples above T_max  %4d switches\n" name
    g.Runtime.Governor.throughput g.Runtime.Governor.peak
    g.Runtime.Governor.violations g.Runtime.Governor.switches

let () =
  let platform = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max in
  Printf.printf "3x1 platform, 5 DVFS levels, T_max = %.0f C, 20 ms control loop\n\n"
    t_max;

  Printf.printf "-- threshold governor, perfect sensors --\n";
  List.iter
    (fun guard ->
      let g =
        Runtime.Governor.simulate platform
          (Runtime.Governor.Threshold { guard })
          ()
      in
      describe (Printf.sprintf "threshold (guard %.1f C)" guard) g)
    [ 0.5; 2.0; 5.0 ];

  Printf.printf "\n-- threshold governor, 1.5 C sensor noise --\n";
  List.iter
    (fun guard ->
      let g =
        Runtime.Governor.simulate platform
          (Runtime.Governor.Threshold { guard })
          ~sensor_noise:1.5 ~seed:3 ()
      in
      describe (Printf.sprintf "noisy threshold (guard %.1f C)" guard) g)
    [ 0.5; 2.0 ];

  Printf.printf "\n-- noisy sensors, observer-filtered (model-based estimation) --\n";
  List.iter
    (fun guard ->
      let g =
        Runtime.Governor.simulate platform
          (Runtime.Governor.Threshold { guard })
          ~sensor_noise:1.5 ~use_observer:true ~seed:3 ()
      in
      describe (Printf.sprintf "filtered threshold (guard %.1f C)" guard) g)
    [ 0.5; 2.0 ];

  Printf.printf "\n-- chip-wide PI controller --\n";
  let pid =
    Runtime.Governor.simulate platform
      (Runtime.Governor.Pid { kp = 0.05; ki = 0.01; guard = 1.0 })
      ()
  in
  describe "PI (kp 0.05, ki 0.01)" pid;

  Printf.printf "\n-- static extremes (calibration) --\n";
  let n = Core.Platform.n_cores platform in
  let top = Power.Vf.n_levels platform.Core.Platform.levels - 1 in
  describe "static all-low"
    (Runtime.Governor.simulate platform (Runtime.Governor.Static (Array.make n 0)) ());
  describe "static all-high"
    (Runtime.Governor.simulate platform (Runtime.Governor.Static (Array.make n top)) ());

  let ao =
    Core.Solver.run (Core.Registry.find_exn "ao") (Core.Eval.create platform)
  in
  Printf.printf
    "\nAO (proactive, this paper):        THR %.4f  peak %.2f C  guaranteed <= T_max\n"
    ao.Core.Solver.throughput ao.Core.Solver.peak;
  Printf.printf
    "\nreactive control either overshoots T_max (small guard, noise) or gives up\n\
     throughput (large guard); AO holds the constraint by construction at the\n\
     throughput of the smallest guard band.\n"
