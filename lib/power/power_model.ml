(* Bounded FIFO memo of psi vectors keyed by the exact voltage bit
   digest: policy searches price the same voltage vectors thousands of
   times, and a hit both skips the arithmetic and returns a shared array
   (less GC churn on the evaluation hot path).  Mutex-guarded so pool
   workers may share one model; racing misses compute identical vectors
   and one insert wins. *)
type psi_cache = {
  table : (string, float array) Hashtbl.t;
  order : string Queue.t;
  lock : Mutex.t;
}

type t = {
  alpha : float -> float;
  gamma : float -> float;
  beta : float;
  psi_memo : psi_cache;
}

let psi_cache_capacity = 1024

let fresh_cache () =
  { table = Hashtbl.create 64; order = Queue.create (); lock = Mutex.create () }

let constant ~alpha ~gamma ~beta =
  if alpha < 0. || gamma < 0. || beta < 0. then
    invalid_arg "Power_model.constant: negative coefficient";
  {
    alpha = (fun _ -> alpha);
    gamma = (fun _ -> gamma);
    beta;
    psi_memo = fresh_cache ();
  }

let default = constant ~alpha:0.5 ~gamma:9.0 ~beta:0.05

let psi pm v =
  if v < 0. then invalid_arg "Power_model.psi: negative voltage";
  if Float.equal v 0. then 0. else pm.alpha v +. (pm.gamma v *. (v *. v *. v))

let psi_vector pm voltages = Array.map (psi pm) voltages

(* [v +. 0.] canonicalizes -0. to +0. so equal voltages share a key. *)
let key_of_voltages voltages =
  let b = Buffer.create (8 * Array.length voltages) in
  Array.iter (fun v -> Buffer.add_int64_le b (Int64.bits_of_float (v +. 0.))) voltages;
  Buffer.contents b

let psi_vector_memo pm voltages =
  let c = pm.psi_memo in
  let key = key_of_voltages voltages in
  let cached =
    Mutex.protect c.lock (fun () -> Hashtbl.find_opt c.table key)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = psi_vector pm voltages in
      Mutex.protect c.lock (fun () ->
          if not (Hashtbl.mem c.table key) then begin
            if Hashtbl.length c.table >= psi_cache_capacity then begin
              match Queue.take_opt c.order with
              | Some victim -> Hashtbl.remove c.table victim
              | None -> ()
            end;
            Hashtbl.add c.table key v;
            Queue.push key c.order
          end);
      v

let total pm ~v ~temp = psi pm v +. (pm.beta *. temp)

let voltage_for_psi pm target =
  (* Uses the coefficients at the (unknown) target voltage; exact for the
     constant default, a one-step fixed point otherwise. *)
  let alpha = pm.alpha 1.0 and gamma = pm.gamma 1.0 in
  if Float.equal gamma 0. then
    invalid_arg "Power_model.voltage_for_psi: gamma = 0";
  Float.max 0. (Float.cbrt ((target -. alpha) /. gamma))
