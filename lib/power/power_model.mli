(** The paper's Eq. (1) power model:
    [P_i(t) = alpha(v_i) + beta T_i(t) + gamma(v_i) v_i^3].

    The temperature-independent part [psi(v) = alpha(v) + gamma(v) v^3]
    is what feeds the thermal model's input vector; the linear leakage
    slope [beta] is folded into the [A] matrix by {!Thermal.Model}.  An
    inactive core ([v = 0]) consumes nothing.  [alpha] and [gamma] may
    depend on the mode (the paper treats them as constants within a
    mode); the default model uses constants calibrated against McPAT's
    65 nm trends (see DESIGN.md section 5). *)

type psi_cache
(** Internal bounded memo of psi vectors (see {!psi_vector_memo});
    created by {!constant}, one per model. *)

type t = {
  alpha : float -> float;
      (** Voltage-dependent leakage base, W.  Constant per mode. *)
  gamma : float -> float;
      (** Dynamic-power coefficient, W/V^3.  Constant per mode. *)
  beta : float;  (** Leakage/temperature slope, W/K. *)
  psi_memo : psi_cache;  (** Memoized psi vectors, keyed by bit digest. *)
}

(** [default] — [alpha v = 0.5], [gamma v = 9.0], [beta = 0.05]:
    0.5 + 9 v^3 W per core, i.e. ~2.4 W at 0.6 V and ~20.3 W at 1.3 V.
    With the calibrated thermal constants this reproduces the paper's
    Section III ideal voltages (ours: [1.227; 1.180; 1.227] vs the
    paper's [1.2085; 1.1748; 1.2085] on the 3x1 platform at 65 C). *)
val default : t

(** [constant ~alpha ~gamma ~beta] builds a mode-independent model.
    Raises [Invalid_argument] on negative coefficients. *)
val constant : alpha:float -> gamma:float -> beta:float -> t

(** [psi pm v] is the temperature-independent power [alpha + gamma v^3]
    of a core at voltage [v], or [0.] for an inactive core ([v = 0]).
    Raises [Invalid_argument] on negative voltages. *)
val psi : t -> float -> float

(** [psi_vector pm voltages] maps {!psi} over a per-core voltage
    vector. *)
val psi_vector : t -> float array -> float array

(** [psi_vector_memo pm voltages] is {!psi_vector} memoized per exact
    voltage bit digest ([-0.] canonicalized to [+0.]) in a bounded FIFO
    table inside [pm] — the evaluation hot path prices the same voltage
    vectors thousands of times.  The returned array is shared across
    hits: treat it as read-only. *)
val psi_vector_memo : t -> float array -> float array

(** [total pm ~v ~temp] is the full Eq. (1) power at voltage [v] and
    absolute temperature [temp] — used in reports, not in the thermal
    solve (which keeps the [beta T] term inside [A]). *)
val total : t -> v:float -> temp:float -> float

(** [voltage_for_psi pm target] inverts {!psi} for the default constant
    coefficients: the voltage at which [psi v = target], i.e.
    [cbrt ((target - alpha) / gamma)] clamped below at 0.  This is the
    paper's ideal-speed formula [v_i = cbrt((P_i - alpha - beta T)/gamma)]
    after the thermal solve has absorbed the [beta T] term. *)
val voltage_for_psi : t -> float -> float
