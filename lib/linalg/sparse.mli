(** Sparse matrices in compressed sparse row (CSR) form.

    The thermal conductance matrices this repo assembles are extremely
    sparse — a grid cell couples to its four neighbours and ambient, so
    [nnz] is O(n) — and every Krylov kernel ({!Krylov}) needs only
    matrix-vector products.  CSR keeps each row's column indices and
    values contiguous and ascending, so {!spmv} is one cache-friendly
    pass over [nnz] entries and structural equality of two matrices is
    plain array equality (the pool-determinism tests rely on this).

    All constructors produce a {e canonical} CSR: within each row the
    column indices are strictly ascending and duplicate triplets have
    been summed.  Matrices are immutable after construction. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** Length [rows + 1]; row [i] occupies
                            [row_ptr.(i) .. row_ptr.(i+1) - 1]. *)
  col_idx : int array;  (** Length [nnz], ascending within each row. *)
  values : float array;  (** Length [nnz], matching [col_idx]. *)
}

(** [of_triplets ~rows ~cols ts] assembles a canonical CSR from [(i, j,
    v)] triplets in any order; duplicates are summed (the natural form
    of finite-volume assembly).  Entries that sum to exactly [0.] are
    kept — structure is decided by the caller, not by cancellation.
    Raises [Invalid_argument] on out-of-range indices or negative
    dimensions. *)
val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

(** [of_dense ?drop a] converts a dense matrix, keeping entries with
    [|a_ij| > drop] (default [0.]: keep everything non-zero). *)
val of_dense : ?drop:float -> Mat.t -> t

(** [of_row_arrays ~cols rows] concatenates per-row [(col_idx, values)]
    pairs — each already canonical (strictly ascending, in-range columns,
    equal lengths) — into a CSR.  This is the assembly entry point for
    parallel builders: rows are produced independently (e.g. across a
    {!Util.Pool}) and concatenation is order-determined, so the result
    is bit-identical at any pool size.  Raises [Invalid_argument] on a
    malformed row. *)
val of_row_arrays : cols:int -> (int array * float array) array -> t

(** [to_dense a] expands back to a dense matrix. *)
val to_dense : t -> Mat.t

(** [nnz a] is the stored-entry count. *)
val nnz : t -> int

(** [dims a] is [(rows, cols)]. *)
val dims : t -> int * int

(** [get a i j] is the entry at [(i, j)] ([0.] when not stored) — a
    binary search over row [i], for tests and spot reads, not for hot
    loops. *)
val get : t -> int -> int -> float

(** [diagonal a] is the main diagonal as a dense vector (missing
    entries read as [0.]).  Requires a square matrix. *)
val diagonal : t -> Vec.t

(** [spmv a x] is the matrix-vector product [A x]. *)
val spmv : t -> Vec.t -> Vec.t

(** [spmv_into a ~dst x] writes [A x] into [dst] without allocating.
    [dst] and [x] must not alias. *)
val spmv_into : t -> dst:Vec.t -> Vec.t -> unit

(** [transpose a] is [A^T], again in canonical CSR — a linear-time
    bucket pass, no sorting. *)
val transpose : t -> t

(** [sym_scale a d] is [diag(d) A diag(d)] — the similarity scaling
    that turns the conductance form [C^{-1} G] into the symmetric
    [C^{-1/2} G C^{-1/2}] the Lanczos kernels need.  Requires a square
    matrix with [dim d = rows]. *)
val sym_scale : t -> Vec.t -> t

(** [is_symmetric ?tol a] checks [|a_ij - a_ji| <= tol * max_ij |a_ij|]
    for every stored entry (default [tol = 1e-9]). *)
val is_symmetric : ?tol:float -> t -> bool

(** [equal a b] is structural equality: identical dimensions, row
    pointers, column indices and bit-identical values — the invariant
    the deterministic parallel assembly is tested against. *)
val equal : t -> t -> bool
