let jacobi d =
  Array.iteri
    (fun i di ->
      if not (di > 0.) then
        invalid_arg
          (Printf.sprintf "Krylov.jacobi: diagonal entry %d is %g, not positive"
             i di))
    d;
  fun r ->
    if Array.length r <> Array.length d then
      invalid_arg "Krylov.jacobi: operand arity mismatch";
    Array.mapi (fun i ri -> ri /. d.(i)) r

(* ------------------------------------------------------------------ CG *)

let cg ?(tol = 1e-13) ?(max_iter = 0) ?precond ?x0 apply b =
  let n = Array.length b in
  let max_iter = if max_iter > 0 then max_iter else (20 * n) + 100 in
  let precond = match precond with Some f -> f | None -> Vec.copy in
  let b_norm = Vec.norm2 b in
  if Float.equal b_norm 0. then Vec.zeros n
  else begin
    (* Warm start: iterate on the residual system from [x0].  The
       stopping test stays relative to ‖b‖ (not the initial residual), so
       a warm start can only shorten the iteration, never loosen the
       answer — callers passing a candidate-local deterministic guess
       (e.g. the accumulated periodic drive) keep bit-reproducibility
       across pool sizes. *)
    let x, r =
      match x0 with
      | None -> (Vec.zeros n, Vec.copy b)
      | Some x0 ->
          if Array.length x0 <> n then
            invalid_arg "Krylov.cg: warm-start arity mismatch";
          (Vec.copy x0, Vec.sub b (apply x0))
    in
    let z = precond r in
    let p = Vec.copy z in
    let rz = ref (Vec.dot r z) in
    (* A warm start may already satisfy the tolerance (cold starts never
       do: ‖b‖ > 0 here); entering the loop with a zero residual would
       trip the definiteness check on a zero search direction. *)
    let converged = ref (Vec.norm2 r <= tol *. b_norm) in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      let q = apply p in
      let pq = Vec.dot p q in
      if not (pq > 0.) then
        failwith "Krylov.cg: operator is not positive definite";
      let alpha = !rz /. pq in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. q.(i))
      done;
      if Vec.norm2 r <= tol *. b_norm then converged := true
      else begin
        let z = precond r in
        let rz' = Vec.dot r z in
        let beta = rz' /. !rz in
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done;
        rz := rz'
      end;
      incr iter
    done;
    if not !converged then
      failwith
        (Printf.sprintf "Krylov.cg: no convergence in %d iterations (n = %d)"
           max_iter n);
    x
  end

(* ------------------------------------------------------------- Lanczos *)

(* Incrementally grown Lanczos factorization A Q_m = Q_m T_m + beta_m
   q_{m+1} e_m^T with full reorthogonalization (two modified
   Gram-Schmidt passes), so T_m remains an accurate projection even
   after many steps.  [qs] holds m+1 basis vectors; [alpha]/[beta] the
   tridiagonal.  A step may signal breakdown (residual below the
   breakdown threshold): the Krylov space is then invariant. *)
type lanczos_state = {
  qs : Vec.t array;  (* capacity m_cap + 1; entries 0..steps valid *)
  alpha : float array;
  beta : float array;  (* beta.(j) couples basis vectors j and j+1 *)
  mutable steps : int;
  mutable invariant : bool;
}

let lanczos_start ~m_cap q0 =
  let n = Array.length q0 in
  let qs = Array.make (m_cap + 1) [||] in
  qs.(0) <- q0;
  ignore n;
  {
    qs;
    alpha = Array.make m_cap 0.;
    beta = Array.make m_cap 0.;
    steps = 0;
    invariant = false;
  }

let reorthogonalize st u =
  (* Two passes of modified Gram-Schmidt against every basis vector.
     Slot [steps] is unassigned (empty) while an invariant breakdown is
     pending — a deflated restart reorthogonalizes in exactly that
     state, so skip it. *)
  for _pass = 1 to 2 do
    for i = 0 to st.steps do
      let qi = st.qs.(i) in
      if Array.length qi > 0 then begin
        let c = Vec.dot u qi in
        if not (Float.equal c 0.) then
          Array.iteri (fun l q -> u.(l) <- u.(l) -. (c *. q)) qi
      end
    done
  done

(* One Lanczos step of the operator [apply].  After the call either
   [st.steps] grew by one, or [st.invariant] is set (and [st.steps] also
   grew, with [beta = 0] recorded for the final coupling). *)
let lanczos_step ~apply st =
  let j = st.steps in
  let q = st.qs.(j) in
  let u = apply q in
  let a = Vec.dot u q in
  st.alpha.(j) <- a;
  (* Subtract the local tridiagonal terms first, then fully
     reorthogonalize — cheap insurance that keeps Q orthonormal. *)
  Array.iteri (fun l ql -> u.(l) <- u.(l) -. (a *. ql)) q;
  if j > 0 then begin
    let b = st.beta.(j - 1) in
    Array.iteri (fun l ql -> u.(l) <- u.(l) -. (b *. ql)) st.qs.(j - 1)
  end;
  reorthogonalize st u;
  let b = Vec.norm2 u in
  let scale =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1e-300 st.alpha
  in
  if b <= 1e-14 *. scale then begin
    st.beta.(j) <- 0.;
    st.steps <- j + 1;
    st.invariant <- true
  end
  else begin
    st.beta.(j) <- b;
    st.qs.(j + 1) <- Vec.scale (1. /. b) u;
    st.steps <- j + 1
  end

let tridiagonal st m =
  let t = Mat.zeros m m in
  for i = 0 to m - 1 do
    Mat.set t i i st.alpha.(i);
    if i < m - 1 && not (Float.equal st.beta.(i) 0.) then begin
      Mat.set t i (i + 1) st.beta.(i);
      Mat.set t (i + 1) i st.beta.(i)
    end
  done;
  t

(* y = f(T_m) e1 through the exact eigendecomposition of the small
   tridiagonal: y = S diag(f theta) S^T e1. *)
let apply_tridiag_function st m f =
  let { Sym_eig.eigenvalues; eigenvectors } = Sym_eig.decompose (tridiagonal st m) in
  let y = Array.make m 0. in
  for l = 0 to m - 1 do
    let w = f eigenvalues.(l) *. Mat.get eigenvectors 0 l in
    for i = 0 to m - 1 do
      y.(i) <- y.(i) +. (w *. Mat.get eigenvectors i l)
    done
  done;
  y

(* Reconstruct beta0 * Q_m y in node space. *)
let lanczos_combine st ~n m beta0 y =
  let w = Vec.zeros n in
  for i = 0 to m - 1 do
    let c = beta0 *. y.(i) in
    Array.iteri (fun l ql -> w.(l) <- w.(l) +. (c *. ql)) st.qs.(i)
  done;
  w

(* ------------------------------------------------------------- expm·v *)

let expmv ?(tol = 1e-12) ?(m_max = 64) apply ~t v =
  let n = Array.length v in
  if not (t >= 0.) then invalid_arg "Krylov.expmv: negative time";
  let combine st m beta0 y = lanczos_combine st ~n m beta0 y in
  let rec go t v depth =
    if depth > 60 then failwith "Krylov.expmv: time-splitting did not converge";
    let beta0 = Vec.norm2 v in
    if Float.equal beta0 0. then Vec.zeros n
    else begin
      let m_cap = Stdlib.min n (Stdlib.max 2 m_max) in
      let st = lanczos_start ~m_cap (Vec.scale (1. /. beta0) v) in
      let result = ref None in
      while Option.is_none !result do
        lanczos_step ~apply st;
        let m = st.steps in
        (* The small eigensolve costs O(m^3): amortize by checking only
           at exponentially spaced sizes, on breakdown, and at the cap. *)
        let checkpoint =
          st.invariant || m >= m_cap || m land (m - 1) = 0 || m mod 8 = 0
        in
        if checkpoint then begin
          let y = apply_tridiag_function st m (fun lam -> Float.exp (-.t *. lam)) in
          if st.invariant then result := Some (combine st m beta0 y)
          else begin
            let err = beta0 *. st.beta.(m - 1) *. Float.abs y.(m - 1) in
            if err <= tol *. beta0 then result := Some (combine st m beta0 y)
            else if m >= m_cap then begin
              (* Stiff step: square the half-time propagator instead. *)
              let half = go (t /. 2.) v (depth + 1) in
              result := Some (go (t /. 2.) half (depth + 1))
            end
          end
        end
      done;
      Option.get !result
    end
  in
  go t v 0

(* ------------------------------------------------------------- f(A)·v *)

let funmv ?(tol = 1e-13) ?(m_max = 256) apply ~f v =
  let n = Array.length v in
  let beta0 = Vec.norm2 v in
  if Float.equal beta0 0. then Vec.zeros n
  else begin
    let m_cap = Stdlib.min n (Stdlib.max 2 m_max) in
    let st = lanczos_start ~m_cap (Vec.scale (1. /. beta0) v) in
    (* Gauss-quadrature convergence: the coefficient vector f(T_m) e1
       stabilizes geometrically for smooth positive [f]; accept once two
       consecutive checkpoints agree to [tol] relative — a plateau of
       one checkpoint is not trusted (symmetric spectra can stall one
       step before a new Ritz value splits off). *)
    let prev = ref [||] in
    let streak = ref 0 in
    let result = ref None in
    while Option.is_none !result do
      lanczos_step ~apply st;
      let m = st.steps in
      let checkpoint = st.invariant || m >= m_cap || m mod 4 = 0 in
      if checkpoint then begin
        let y = apply_tridiag_function st m f in
        if st.invariant then result := Some (lanczos_combine st ~n m beta0 y)
        else begin
          let delta = ref 0.
          and scale = ref 0. in
          for i = 0 to m - 1 do
            let yp = if i < Array.length !prev then !prev.(i) else 0. in
            let d = y.(i) -. yp in
            delta := !delta +. (d *. d);
            scale := !scale +. (y.(i) *. y.(i))
          done;
          if Float.sqrt !delta <= tol *. Float.sqrt !scale then incr streak
          else streak := 0;
          prev := y;
          if !streak >= 2 then result := Some (lanczos_combine st ~n m beta0 y)
          else if m >= m_cap then
            failwith
              (Printf.sprintf "Krylov.funmv: no convergence in %d steps (n = %d)"
                 m_cap n)
        end
      end
    done;
    Option.get !result
  end

(* ------------------------------------------------------ prepared f(A)v *)

(* A reusable Lanczos factorization of [A] on a fixed start vector [v].
   The basis depends only on [(apply, v)] — never on [f] — so one
   preparation serves every smooth function evaluated against it; the
   basis is grown lazily, on demand, and each [prepared_coeffs] call
   re-walks the checkpoint ladder from the bottom with funmv's plateau
   rule, so the accepted size for a given [f] is deterministic and
   independent of which other functions were evaluated first. *)
type prepared = {
  p_apply : Vec.t -> Vec.t;
  p_st : lanczos_state option;  (* [None] iff the start vector is zero *)
  p_beta0 : float;
  p_n : int;
  p_m_cap : int;
  p_tol : float;
  (* Memoized eigendecompositions of T_m at visited checkpoint sizes —
     f-independent, so they are shared across every [f].  Mutable growth
     state: a [prepared] value is NOT domain-safe; confine each one to a
     single domain (store per-domain, e.g. in Domain.DLS scratch). *)
  mutable p_eigs : (int * Sym_eig.t) list;
}

let prepare ?(tol = 1e-13) ?(m_max = 256) apply v =
  let n = Array.length v in
  let beta0 = Vec.norm2 v in
  let m_cap = Stdlib.min n (Stdlib.max 2 m_max) in
  let st =
    if Float.equal beta0 0. then None
    else Some (lanczos_start ~m_cap (Vec.scale (1. /. beta0) v))
  in
  { p_apply = apply; p_st = st; p_beta0 = beta0; p_n = n; p_m_cap = m_cap;
    p_tol = tol; p_eigs = [] }

let prepared_eig p st m =
  match List.assoc_opt m p.p_eigs with
  | Some e -> e
  | None ->
      let e = Sym_eig.decompose (tridiagonal st m) in
      p.p_eigs <- (m, e) :: p.p_eigs;
      e

(* y = f(T_m) e1 from the memoized decomposition. *)
let prepared_coeffs_at p st m f =
  let { Sym_eig.eigenvalues; eigenvectors } = prepared_eig p st m in
  let y = Array.make m 0. in
  for l = 0 to m - 1 do
    let w = f eigenvalues.(l) *. Mat.get eigenvectors 0 l in
    for i = 0 to m - 1 do
      y.(i) <- y.(i) +. (w *. Mat.get eigenvectors i l)
    done
  done;
  y

(* Accepted coefficient vector for [f]: walk checkpoints m = 4, 8, ...
   (funmv's ladder) growing the basis as needed, and accept at the
   smallest size where two consecutive checkpoints agree to [tol]
   relative — or exactly, on an invariant subspace.  Returns [(m, y)]. *)
let prepared_coeffs p st ~f =
  let grow_to m =
    while st.steps < m && not st.invariant do
      lanczos_step ~apply:p.p_apply st
    done
  in
  let rec walk m prev streak =
    grow_to m;
    let m_eff = Stdlib.min m st.steps in
    let y = prepared_coeffs_at p st m_eff f in
    if st.invariant && st.steps <= m then (m_eff, y)
    else begin
      let delta = ref 0. and scale = ref 0. in
      for i = 0 to m_eff - 1 do
        let yp = if i < Array.length prev then prev.(i) else 0. in
        let d = y.(i) -. yp in
        delta := !delta +. (d *. d);
        scale := !scale +. (y.(i) *. y.(i))
      done;
      let streak =
        if Float.sqrt !delta <= p.p_tol *. Float.sqrt !scale then streak + 1
        else 0
      in
      if streak >= 2 then (m_eff, y)
      else if m_eff >= p.p_m_cap then
        failwith
          (Printf.sprintf
             "Krylov.prepared: no convergence in %d steps (n = %d)" p.p_m_cap
             p.p_n)
      else walk (m + 4) y streak
    end
  in
  walk 4 [||] 0

let prepared_apply p ~f =
  match p.p_st with
  | None -> Vec.zeros p.p_n
  | Some st ->
      let m, y = prepared_coeffs p st ~f in
      lanczos_combine st ~n:p.p_n m p.p_beta0 y

let prepared_apply_at p ~f ~idx dst =
  let k = Array.length idx in
  if Array.length dst < k then
    invalid_arg "Krylov.prepared_apply_at: destination too short";
  (match p.p_st with
  | None -> Array.fill dst 0 k 0.
  | Some st ->
      let m, y = prepared_coeffs p st ~f in
      for l = 0 to k - 1 do
        let node = idx.(l) in
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (y.(i) *. st.qs.(i).(node))
        done;
        dst.(l) <- p.p_beta0 *. !acc
      done)

(* ------------------------------------------- shift-invert eigenpairs *)

(* Deterministic replacement start vector used when a Krylov block
   closes before the basis is full: coordinate direction [seed]
   orthogonalized against everything found so far. *)
let deflated_restart st n =
  let rec try_seed seed =
    if seed >= n then None
    else begin
      let u = Vec.zeros n in
      u.(seed) <- 1.;
      reorthogonalize st u;
      let norm = Vec.norm2 u in
      if norm > 1e-8 then Some (Vec.scale (1. /. norm) u)
      else try_seed (seed + 1)
    end
  in
  try_seed 0

let smallest_eigs ?(tol = 1e-10) ?(m_max = 0) ~n ~k solve =
  if k <= 0 || k > n then
    invalid_arg (Printf.sprintf "Krylov.smallest_eigs: k = %d with n = %d" k n);
  let m_cap =
    let default = Stdlib.min n (Stdlib.max (4 * k) (2 * k) + 20) in
    if m_max > 0 then Stdlib.min n (Stdlib.max k m_max) else default
  in
  (* Fixed ramp start vector: no randomness (lint R4), and generic
     enough to have components along every slow mode in practice. *)
  let v0 = Vec.init n (fun i -> 1. +. (float_of_int (i + 1) /. float_of_int n)) in
  let st = lanczos_start ~m_cap (Vec.scale (1. /. Vec.norm2 v0) v0) in
  let finished = ref false in
  while not !finished do
    lanczos_step ~apply:solve st;
    let m = st.steps in
    if st.invariant && m < m_cap then begin
      (* Invariant block closed early; deflate into a fresh direction so
         degenerate eigenspaces are still explored. *)
      match deflated_restart st n with
      | Some q ->
          st.qs.(m) <- q;
          st.invariant <- false
      | None -> finished := true
    end
    else if m >= m_cap then finished := true
    else if m >= k then begin
      (* Converged when the k largest Ritz values of the shift-inverted
         operator all have small residuals |beta_m . s_{m,j}|. *)
      let { Sym_eig.eigenvalues; eigenvectors } =
        Sym_eig.decompose (tridiagonal st m)
      in
      let ok = ref true in
      for j = m - k to m - 1 do
        let mu = eigenvalues.(j) in
        let res = st.beta.(m - 1) *. Float.abs (Mat.get eigenvectors (m - 1) j) in
        if not (mu > 0.) || res > tol *. mu then ok := false
      done;
      if !ok then finished := true
    end
  done;
  let m = st.steps in
  let { Sym_eig.eigenvalues; eigenvectors } = Sym_eig.decompose (tridiagonal st m) in
  (* Largest mu of A^{-1} are the smallest lambda = 1/mu of A; eigenvalues
     come back ascending, so walk the top of the spectrum backwards. *)
  if m < k then
    failwith
      (Printf.sprintf "Krylov.smallest_eigs: basis collapsed at %d < k = %d" m k);
  Array.init k (fun idx ->
      let j = m - 1 - idx in
      let mu = eigenvalues.(j) in
      if not (mu > 0.) then
        failwith "Krylov.smallest_eigs: operator is not positive definite";
      let w = Vec.zeros n in
      for i = 0 to m - 1 do
        let s = Mat.get eigenvectors i j in
        Array.iteri (fun l ql -> w.(l) <- w.(l) +. (s *. ql)) st.qs.(i)
      done;
      let norm = Vec.norm2 w in
      (1. /. mu, Vec.scale (1. /. norm) w))
