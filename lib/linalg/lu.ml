type factorization = {
  n : int;
  lu : Mat.t; (* packed L (unit diagonal, below) and U (on/above diagonal) *)
  perm : int array; (* row permutation: source row of output row i *)
  sign : float; (* parity of the permutation, for determinants *)
}

exception Singular of int

let factorize a =
  if not (Mat.is_square a) then invalid_arg "Lu.factorize: matrix not square";
  let n = a.Mat.rows in
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Pivot search in column k. *)
    let pivot_row = ref k in
    let pivot_mag = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let m = Float.abs (Mat.get lu i k) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot_row j);
        Mat.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if not (Float.equal factor 0.) then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { n; lu; perm; sign = !sign }

let solve_vec f b =
  if Array.length b <> f.n then
    invalid_arg
      (Printf.sprintf "Lu.solve_vec: rhs has length %d, expected %d" (Array.length b) f.n);
  let n = f.n in
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* Forward substitution with unit-diagonal L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get f.lu i i
  done;
  x

let solve_mat f b =
  if b.Mat.rows <> f.n then
    invalid_arg
      (Printf.sprintf "Lu.solve_mat: rhs has %d rows, expected %d" b.Mat.rows f.n);
  let x = Mat.zeros f.n b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    let xj = solve_vec f (Mat.col b j) in
    for i = 0 to f.n - 1 do
      Mat.set x i j xj.(i)
    done
  done;
  x

let solve a b = solve_vec (factorize a) b
let inverse a = solve_mat (factorize a) (Mat.identity a.Mat.rows)

let det_of f =
  let acc = ref f.sign in
  for i = 0 to f.n - 1 do
    acc := !acc *. Mat.get f.lu i i
  done;
  !acc

let det a = match factorize a with f -> det_of f | exception Singular _ -> 0.
