(* Degree-13 Padé approximant of exp with scaling and squaring
   (Higham, "The scaling and squaring method for the matrix exponential
   revisited", 2005), with the single theta_13 threshold rather than the
   multi-degree selection — slightly more work for small norms but simpler
   and just as accurate. *)

let pade13_coefficients =
  [|
    64764752532480000.;
    32382376266240000.;
    7771770303897600.;
    1187353796428800.;
    129060195264000.;
    10559470521600.;
    670442572800.;
    33522128640.;
    1323241920.;
    40840800.;
    960960.;
    16380.;
    182.;
    1.;
  |]
[@@fosc.unguarded "constant table, written by no one after module load"]

let theta13 = 5.371920351148152

let expm a =
  if not (Mat.is_square a) then invalid_arg "Expm.expm: matrix not square";
  let n = a.Mat.rows in
  let norm = Mat.norm_inf a in
  let squarings =
    if norm <= theta13 then 0
    else int_of_float (Float.ceil (Float.log (norm /. theta13) /. Float.log 2.))
  in
  let a = if squarings = 0 then Mat.copy a else Mat.scale (1. /. Float.pow 2. (float_of_int squarings)) a in
  let c = pade13_coefficients in
  let a2 = Mat.matmul a a in
  let a4 = Mat.matmul a2 a2 in
  let a6 = Mat.matmul a4 a2 in
  let ident = Mat.identity n in
  (* u = A (A6 (c13 A6 + c11 A4 + c9 A2) + c7 A6 + c5 A4 + c3 A2 + c1 I) *)
  let w1 = Mat.add (Mat.scale c.(13) a6) (Mat.add (Mat.scale c.(11) a4) (Mat.scale c.(9) a2)) in
  let w2 =
    Mat.add (Mat.scale c.(7) a6)
      (Mat.add (Mat.scale c.(5) a4) (Mat.add (Mat.scale c.(3) a2) (Mat.scale c.(1) ident)))
  in
  let u = Mat.matmul a (Mat.add (Mat.matmul a6 w1) w2) in
  (* v = A6 (c12 A6 + c10 A4 + c8 A2) + c6 A6 + c4 A4 + c2 A2 + c0 I *)
  let z1 = Mat.add (Mat.scale c.(12) a6) (Mat.add (Mat.scale c.(10) a4) (Mat.scale c.(8) a2)) in
  let z2 =
    Mat.add (Mat.scale c.(6) a6)
      (Mat.add (Mat.scale c.(4) a4) (Mat.add (Mat.scale c.(2) a2) (Mat.scale c.(0) ident)))
  in
  let v = Mat.add (Mat.matmul a6 z1) z2 in
  (* r = (v - u)^{-1} (v + u), then square back. *)
  let r = ref (Lu.solve_mat (Lu.factorize (Mat.sub v u)) (Mat.add v u)) in
  for _ = 1 to squarings do
    r := Mat.matmul !r !r
  done;
  !r

let expm_scaled a t = expm (Mat.scale t a)
