(** Matrix-free Krylov kernels for symmetric positive (semi-)definite
    operators.

    The sparse thermal backend works in symmetrized coordinates where
    the conductance operator [M = C^{-1/2} G' C^{-1/2}] is SPD, so
    three kernels cover every solve the engine needs:

    - {!cg} — steady states and stable-status systems ([M y = b] and
      [(I - e^{-M T}) y = d], both SPD);
    - {!expmv} — the transient propagator [e^{-t M} v] via the Lanczos
      approximation, never forming the dense exponential;
    - {!smallest_eigs} — shift-invert Lanczos Ritz pairs of the slowest
      modes, feeding the reduced-order model ({!Thermal.Reduced}).

    Everything here is matrix-free: operators are plain [Vec.t -> Vec.t]
    closures, typically {!Sparse.spmv} partial applications.  All
    iterations are deterministic — fixed start vectors, fixed sweep
    orders — so results are bit-reproducible across runs and pool sizes
    (lint rule R4). *)

(** [jacobi d] is the diagonal (Jacobi) preconditioner [r ↦ r ./ d] for
    {!cg}, built from {!Sparse.diagonal}.  Raises [Invalid_argument] if
    some [d.(i)] is not strictly positive — the SPD operators here
    always have positive diagonals. *)
val jacobi : Vec.t -> Vec.t -> Vec.t

(** [cg ?tol ?max_iter ?precond ?x0 apply b] solves [A x = b] for an SPD
    operator [apply : x ↦ A x] by (preconditioned) conjugate gradients
    from [x0] (default the zero vector).  Stops when [‖r‖₂ ≤ tol · ‖b‖₂]
    (default [tol = 1e-13]) — relative to [b], not to the initial
    residual, so a warm start tightens nothing and loosens nothing, it
    only shortens the iteration.  Callers wanting determinism across
    pool sizes must derive [x0] from the candidate being solved, never
    from worker-local history.  [max_iter] defaults to [20 n + 100];
    non-convergence and detected indefiniteness raise [Failure] rather
    than returning a silently wrong answer. *)
val cg :
  ?tol:float ->
  ?max_iter:int ->
  ?precond:(Vec.t -> Vec.t) ->
  ?x0:Vec.t ->
  (Vec.t -> Vec.t) ->
  Vec.t ->
  Vec.t

(** [expmv ?tol ?m_max apply ~t v] approximates [e^{-t A} v] for a
    symmetric positive semi-definite operator [apply] and [t ≥ 0].

    A Lanczos basis (full reorthogonalization, so the tridiagonal
    projection stays trustworthy in floating point) is grown until the
    a-posteriori estimate [β₀ · β_m · |(e^{-t T_m})_{m,1}|] drops below
    [tol · ‖v‖₂] (default [tol = 1e-12]), the basis spans an invariant
    subspace (happy breakdown — the result is then exact), or the basis
    hits [min n m_max] (default [m_max = 64]).  In the last case the
    step is split as [e^{-tA} = (e^{-tA/2})²] and both halves recurse,
    so stiff operators with [t·λ_max ≫ m_max²] still converge.  The
    small [m × m] exponential is evaluated exactly through
    {!Sym_eig.decompose}. *)
val expmv :
  ?tol:float -> ?m_max:int -> (Vec.t -> Vec.t) -> t:float -> Vec.t -> Vec.t

(** [funmv ?tol ?m_max apply ~f v] is [f(A) v] for a smooth positive
    function [f] of the SPD operator behind [apply], by a single Lanczos
    factorization: [f(A) v ≈ β Q_m f(T_m) e1].  One O(nnz) operator
    application per step — where [f] encodes work that would otherwise
    need an iterative solve with an [expmv] per iteration (e.g. the
    periodic fixed point [(I - e^{-T A})^{-1}], [f(λ) =
    1/(1 - e^{-T λ})]), this collapses that nested iteration into one
    basis build.  Convergence is declared when the coefficient vector
    [f(T_m) e1] agrees between two consecutive checkpoints to [tol]
    relative (default [1e-13]); an invariant Krylov subspace makes the
    result exact.  Raises [Failure] if [m_max] (default 256) steps do
    not converge.  Deterministic: the iteration depends only on
    [(apply, f, v)], never on worker or call order. *)
val funmv :
  ?tol:float ->
  ?m_max:int ->
  (Vec.t -> Vec.t) ->
  f:(float -> float) ->
  Vec.t ->
  Vec.t

(** A reusable Lanczos factorization on a {e fixed} start vector: the
    basis depends only on [(apply, v)], never on the function being
    evaluated, so one preparation amortizes across many [f]s — the
    delta-evaluation workload, where every candidate applies a different
    spectral weight to the same per-core unit vector.  The basis is
    grown lazily and the small tridiagonal eigendecompositions are
    memoized per checkpoint size (also f-independent).

    NOT domain-safe: a [prepared] value carries mutable growth state.
    Confine each one to a single domain (the response engine stores them
    in per-domain [Domain.DLS] scratch). *)
type prepared

(** [prepare ?tol ?m_max apply v] captures the operator and start vector
    without running any Lanczos steps.  [tol] (default [1e-13]) and
    [m_max] (default 256) mirror {!funmv}'s convergence contract.  A
    zero [v] yields a preparation whose every evaluation is zero. *)
val prepare :
  ?tol:float -> ?m_max:int -> (Vec.t -> Vec.t) -> Vec.t -> prepared

(** [prepared_apply p ~f] is [f(A) v] using the prepared basis.  The
    accepted basis size for a given [f] follows exactly {!funmv}'s
    checkpoint ladder and plateau rule (smallest [m ∈ {4, 8, ...}] with
    two consecutive agreements to [tol] relative; invariant subspaces
    are exact), re-walked from the bottom on every call — so the result
    is deterministic in [(apply, v, f, tol)] and independent of which
    other functions were evaluated against [p] before.  Raises [Failure]
    if [m_max] steps do not converge. *)
val prepared_apply : prepared -> f:(float -> float) -> Vec.t

(** [prepared_apply_at p ~f ~idx dst] writes [(f(A) v).(idx.(l))] into
    [dst.(l)] for each [l] — the restricted read that makes a delta
    candidate O(m · |idx|) instead of O(m · n).  Same convergence
    contract as {!prepared_apply}.  Raises [Invalid_argument] when [dst]
    is shorter than [idx]. *)
val prepared_apply_at :
  prepared -> f:(float -> float) -> idx:int array -> Vec.t -> unit

(** [smallest_eigs ?tol ?m_max ~n ~k solve] computes the [k] smallest
    eigenpairs of an SPD operator [A] given only [solve : b ↦ A⁻¹ b]
    (shift-invert at zero: the slow thermal modes are the {e dominant}
    modes of [A⁻¹], where Lanczos converges fastest).

    Returns [(lambda, w)] pairs with [lambda] ascending and [w]
    orthonormal.  The basis grows until each of the [k] wanted Ritz
    pairs has shift-invert residual [≤ tol · μ] (default [tol = 1e-10])
    or spans the whole space, in which case the pairs are exact.
    Breakdown (an invariant subspace smaller than the basis cap, common
    on symmetric floorplans with degenerate modes) is handled by
    deflating in the next coordinate direction, so degenerate
    eigenspaces are still recovered.  The start vector is a fixed
    deterministic ramp.  Raises [Invalid_argument] unless
    [0 < k ≤ n]. *)
val smallest_eigs :
  ?tol:float ->
  ?m_max:int ->
  n:int ->
  k:int ->
  (Vec.t -> Vec.t) ->
  (float * Vec.t) array
