type t = { rows : int; cols : int; data : float array }

let create rows cols x = { rows; cols; data = Array.make (rows * cols) x }
let zeros rows cols = create rows cols 0.

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let is_square m = m.rows = m.cols

let require_square name m =
  if not (is_square m) then
    invalid_arg (Printf.sprintf "Mat.%s: matrix is %dx%d, not square" name m.rows m.cols)

let diagonal m =
  require_square "diagonal" m;
  Array.init m.rows (fun i -> m.data.((i * m.cols) + i))

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: no rows";
  let c = Array.length rows.(0) in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then
        invalid_arg (Printf.sprintf "Mat.of_rows: row %d has length %d, expected %d" i (Array.length row) c))
    rows;
  init r c (fun i j -> rows.(i).(j))

let to_rows m = Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)
let copy m = { m with data = Array.copy m.data }
let dims m = (m.rows, m.cols)
let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> m.data.((i * m.cols) + j))
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.map2 ( +. ) a.data b.data }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.map2 ( -. ) a.data b.data }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: inner dimensions differ (%dx%d times %dx%d)" a.rows a.cols b.rows b.cols);
  let c = zeros a.rows b.cols in
  (* ikj loop order keeps the inner loop contiguous in both b and c. *)
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if not (Float.equal aik 0.) then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let matvec a x =
  if a.cols <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d matrix applied to length-%d vector" a.rows a.cols (Array.length x));
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !acc)

let vecmat x a =
  if a.rows <> Array.length x then
    invalid_arg
      (Printf.sprintf "Mat.vecmat: length-%d vector applied to %dx%d matrix" (Array.length x) a.rows a.cols);
  Array.init a.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. a.data.((i * a.cols) + j))
      done;
      !acc)

let add_scaled_identity s a =
  require_square "add_scaled_identity" a;
  let r = copy a in
  for i = 0 to a.rows - 1 do
    r.data.((i * a.cols) + i) <- r.data.((i * a.cols) + i) +. s
  done;
  r

let trace m =
  require_square "trace" m;
  let acc = ref 0. in
  for i = 0 to m.rows - 1 do
    acc := !acc +. m.data.((i * m.cols) + i)
  done;
  !acc

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

let norm_fro m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let is_symmetric ?(tol = 1e-9) m =
  is_square m
  &&
  let scale_ref = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1. m.data in
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol *. scale_ref then ok := false
    done
  done;
  !ok

let map f m = { m with data = Array.map f m.data }

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri (fun k x -> if Float.abs (x -. b.data.(k)) > tol then ok := false) a.data;
  !ok

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt "  ";
      Format.fprintf fmt "%12.6g" (get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.pp_print_newline fmt ()
  done
