type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let dims a = (a.rows, a.cols)
let nnz a = a.row_ptr.(a.rows)

let require_square name a =
  if a.rows <> a.cols then
    invalid_arg
      (Printf.sprintf "Sparse.%s: matrix is %dx%d, not square" name a.rows a.cols)

(* Build the canonical CSR from per-row (col, value) buckets: sort each
   row by column (insertion sort — rows are short), then sum runs of
   equal columns.  The construction is sequential and index-driven, so
   the result is identical however the triplets were ordered. *)
let of_row_buckets ~rows ~cols buckets =
  let counts = Array.map List.length buckets in
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  for i = 0 to rows - 1 do
    let base = row_ptr.(i) in
    List.iteri
      (fun k (j, v) ->
        col_idx.(base + k) <- j;
        values.(base + k) <- v)
      buckets.(i);
    (* Insertion sort of the row segment by column index. *)
    for k = base + 1 to base + counts.(i) - 1 do
      let cj = col_idx.(k) and cv = values.(k) in
      let p = ref (k - 1) in
      while !p >= base && col_idx.(!p) > cj do
        col_idx.(!p + 1) <- col_idx.(!p);
        values.(!p + 1) <- values.(!p);
        decr p
      done;
      col_idx.(!p + 1) <- cj;
      values.(!p + 1) <- cv
    done
  done;
  (* Compress duplicate columns (summing), rebuilding the row pointers. *)
  let out_ptr = Array.make (rows + 1) 0 in
  let w = ref 0 in
  for i = 0 to rows - 1 do
    out_ptr.(i) <- !w;
    let k = ref row_ptr.(i) in
    while !k < row_ptr.(i + 1) do
      let j = col_idx.(!k) in
      let acc = ref values.(!k) in
      incr k;
      while !k < row_ptr.(i + 1) && col_idx.(!k) = j do
        acc := !acc +. values.(!k);
        incr k
      done;
      col_idx.(!w) <- j;
      values.(!w) <- !acc;
      incr w
    done
  done;
  out_ptr.(rows) <- !w;
  {
    rows;
    cols;
    row_ptr = out_ptr;
    col_idx = Array.sub col_idx 0 !w;
    values = Array.sub values 0 !w;
  }

let of_triplets ~rows ~cols ts =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative dimension";
  let buckets = Array.make rows [] in
  List.iter
    (fun (i, j, v) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: entry (%d, %d) outside %dx%d" i j rows
             cols);
      buckets.(i) <- (j, v) :: buckets.(i))
    ts;
  (* The bucket lists are built back to front; reverse so equal columns
     sum in triplet order (stable, hence deterministic). *)
  of_row_buckets ~rows ~cols (Array.map List.rev buckets)

let of_dense ?(drop = 0.) a =
  let { Mat.rows; cols; data } = a in
  let counts = Array.make rows 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Float.abs data.((i * cols) + j) > drop then counts.(i) <- counts.(i) + 1
    done
  done;
  let row_ptr = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + counts.(i)
  done;
  let total = row_ptr.(rows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  let w = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = data.((i * cols) + j) in
      if Float.abs v > drop then begin
        col_idx.(!w) <- j;
        values.(!w) <- v;
        incr w
      end
    done
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_row_arrays ~cols rows =
  let n_rows = Array.length rows in
  let row_ptr = Array.make (n_rows + 1) 0 in
  for i = 0 to n_rows - 1 do
    let idx, vals = rows.(i) in
    if Array.length idx <> Array.length vals then
      invalid_arg
        (Printf.sprintf "Sparse.of_row_arrays: row %d index/value arity mismatch" i);
    Array.iteri
      (fun k j ->
        if j < 0 || j >= cols then
          invalid_arg
            (Printf.sprintf "Sparse.of_row_arrays: row %d column %d out of range" i j);
        if k > 0 && idx.(k - 1) >= j then
          invalid_arg
            (Printf.sprintf
               "Sparse.of_row_arrays: row %d columns not strictly ascending" i))
      idx;
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length idx
  done;
  let total = row_ptr.(n_rows) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0. in
  for i = 0 to n_rows - 1 do
    let idx, vals = rows.(i) in
    Array.blit idx 0 col_idx row_ptr.(i) (Array.length idx);
    Array.blit vals 0 values row_ptr.(i) (Array.length vals)
  done;
  { rows = n_rows; cols; row_ptr; col_idx; values }

let to_dense a =
  let m = Mat.zeros a.rows a.cols in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Mat.set m i a.col_idx.(k) a.values.(k)
    done
  done;
  m

let get a i j =
  if i < 0 || i >= a.rows || j < 0 || j >= a.cols then
    invalid_arg (Printf.sprintf "Sparse.get: (%d, %d) outside %dx%d" i j a.rows a.cols);
  let lo = ref a.row_ptr.(i) and hi = ref (a.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.col_idx.(mid) in
    if c = j then begin
      found := a.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let diagonal a =
  require_square "diagonal" a;
  Array.init a.rows (fun i -> get a i i)

let spmv_into a ~dst x =
  if Array.length x <> a.cols then
    invalid_arg
      (Printf.sprintf "Sparse.spmv: %dx%d matrix applied to length-%d vector" a.rows
         a.cols (Array.length x));
  if Array.length dst <> a.rows then
    invalid_arg
      (Printf.sprintf "Sparse.spmv: %dx%d matrix writing a length-%d result" a.rows
         a.cols (Array.length dst));
  let row_ptr = a.row_ptr and col_idx = a.col_idx and values = a.values in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    for k = Array.unsafe_get row_ptr i to Array.unsafe_get row_ptr (i + 1) - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get values k
           *. Array.unsafe_get x (Array.unsafe_get col_idx k))
    done;
    Array.unsafe_set dst i !acc
  done

let spmv a x =
  let dst = Array.make a.rows 0. in
  spmv_into a ~dst x;
  dst

let transpose a =
  let counts = Array.make a.cols 0 in
  let n = nnz a in
  for k = 0 to n - 1 do
    counts.(a.col_idx.(k)) <- counts.(a.col_idx.(k)) + 1
  done;
  let row_ptr = Array.make (a.cols + 1) 0 in
  for j = 0 to a.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j) + counts.(j)
  done;
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  let cursor = Array.copy row_ptr in
  (* Walking the source in row order drops each transposed row's entries
     in ascending (source-row) order, so the result is canonical. *)
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.col_idx.(k) in
      let w = cursor.(j) in
      col_idx.(w) <- i;
      values.(w) <- a.values.(k);
      cursor.(j) <- w + 1
    done
  done;
  { rows = a.cols; cols = a.rows; row_ptr; col_idx; values }

let sym_scale a d =
  require_square "sym_scale" a;
  if Array.length d <> a.rows then
    invalid_arg "Sparse.sym_scale: scaling vector arity mismatch";
  let values = Array.copy a.values in
  let w = ref 0 in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      values.(!w) <- d.(i) *. a.values.(k) *. d.(a.col_idx.(k));
      incr w
    done
  done;
  { a with values }

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let scale_ref =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1. a.values
  in
  let at = transpose a in
  (* Canonical CSR of A and A^T: symmetry of the stored pattern means
     identical structure arrays, then values compare entrywise. *)
  a.row_ptr = at.row_ptr
  && a.col_idx = at.col_idx
  &&
  let ok = ref true in
  Array.iteri
    (fun k v -> if Float.abs (v -. at.values.(k)) > tol *. scale_ref then ok := false)
    a.values;
  !ok

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.row_ptr = b.row_ptr
  && a.col_idx = b.col_idx
  && Array.length a.values = Array.length b.values
  &&
  let ok = ref true in
  Array.iteri
    (fun k v -> if not (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float b.values.(k))) then ok := false)
    a.values;
  !ok
