(** A persistent work-sharing domain pool.

    Worker domains are spawned once and reused across submissions, so
    hot loops (the AO m sweep, TPT candidate evaluations, the EXS
    branch-and-bound, phase grids, experiment sweeps) can fan out many
    small batches without a [Domain.spawn] per batch.  Tasks are claimed
    in chunks off a shared atomic counter, and the submitting domain
    itself participates in the work, so a 1-domain pool degrades to plain
    sequential iteration with no synchronization.

    Determinism: the pool only distributes *where* each independent task
    runs — every [map]/[init] returns results in index order, and callers
    reduce them with the same sequential fold they would have used, so a
    pool-backed search returns bit-identical answers at any pool size.

    Nested submissions (a task that itself calls into the pool) are
    detected via a domain-local flag and run sequentially inline: no
    deadlock, no oversubscription.  Exceptions raised by a task are
    captured per index and the first one in index order is re-raised in
    the submitter after the batch completes. *)

type t

(** [create ?size ()] makes a pool with [size] total participants (the
    submitting domain plus [size - 1] resident worker domains; workers
    are spawned lazily on first use).  [size] defaults to the
    [FOSC_DOMAINS] environment variable when set, otherwise the
    machine's recommended domain count capped at 8.  Raises
    [Invalid_argument] when [size < 1]. *)
val create : ?size:int -> unit -> t

(** [get ()] is the process-wide shared pool (created on first use, shut
    down automatically at exit). *)
val get : unit -> t

(** [size pool] is the total participant count, including the
    submitter.  [size pool = 1] means the pool never runs anything
    concurrently. *)
val size : t -> int

(** [default_size ()] is the participant count {!create} and {!get} use
    when none is given: [FOSC_DOMAINS] when set (clamped to >= 1), else
    the recommended domain count capped at 8. *)
val default_size : unit -> int

(** [map ?pool ?chunk f xs] applies [f] to every element of [xs] across
    the pool (default: the shared {!get} pool), preserving order.
    [chunk] (default 1) is how many consecutive indices a participant
    claims at a time; raise it for very cheap [f].  Falls back to
    sequential [List.map] semantics for empty/singleton lists, 1-sized
    pools, and nested submissions. *)
val map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_array ?pool ?chunk f xs] is {!map} over arrays. *)
val map_array : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ?pool ?chunk n f] is [map_array] over indices [0 .. n - 1]. *)
val init : ?pool:t -> ?chunk:int -> int -> (int -> 'a) -> 'a array

(** [chunk_hint ?pool n] is a claim-chunk size for a batch of [n]
    similar-cost tasks on [pool] (default: the shared {!get} pool):
    roughly four claims per participant, clamped to [1, 32].  Use it
    instead of hard-coding [~chunk] so batch sizes and pool widths
    picked at run time stay balanced. *)
val chunk_hint : ?pool:t -> int -> int

(** [shutdown pool] joins the pool's worker domains.  Subsequent
    submissions to a shut-down pool run sequentially on the submitter.
    The shared {!get} pool is shut down automatically at exit. *)
val shutdown : t -> unit
