type series = { label : string; points : (float * float) list }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b"; "#17becf" |]
[@@fosc.unguarded "constant table, written by no one after module load"]

let margin_left = 70.
let margin_right = 130.
let margin_top = 46.
let margin_bottom = 56.

(* "Nice" tick spacing covering [lo, hi] with ~n ticks. *)
let nice_ticks lo hi n =
  if hi <= lo then [ lo ]
  else begin
    let raw = (hi -. lo) /. float_of_int n in
    let mag = Float.pow 10. (Float.floor (Float.log10 raw)) in
    let norm = raw /. mag in
    let step = (if norm < 1.5 then 1. else if norm < 3.5 then 2. else if norm < 7.5 then 5. else 10.) *. mag in
    let first = Float.ceil (lo /. step) *. step in
    let rec collect t acc =
      if t > hi +. (step /. 2.) then List.rev acc else collect (t +. step) (t :: acc)
    in
    collect first []
  end

let check_finite what v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Svg_plot: non-finite %s coordinate" what)

let fmt_num v =
  if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && not (Float.equal v 0.)) then
    Printf.sprintf "%.2e" v
  else Printf.sprintf "%g" (Float.round (v *. 1e6) /. 1e6)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

type frame = {
  x_of : float -> float;
  y_of : float -> float;
  buffer : Buffer.t;
  width : float;
  height : float;
}

let start_document ~width ~height ~title ~x_label ~y_label ~x_range ~y_range =
  let w = float_of_int width and h = float_of_int height in
  let x_lo, x_hi = x_range and y_lo, y_hi = y_range in
  let x_span = Float.max 1e-12 (x_hi -. x_lo) in
  let y_span = Float.max 1e-12 (y_hi -. y_lo) in
  let plot_w = w -. margin_left -. margin_right in
  let plot_h = h -. margin_top -. margin_bottom in
  let x_of x = margin_left +. ((x -. x_lo) /. x_span *. plot_w) in
  let y_of y = margin_top +. plot_h -. ((y -. y_lo) /. y_span *. plot_h) in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"Helvetica, Arial, sans-serif\">\n"
       width height width height);
  Buffer.add_string b
    (Printf.sprintf "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"24\" font-size=\"15\" font-weight=\"bold\" \
        text-anchor=\"middle\">%s</text>\n"
       (w /. 2.) (escape title));
  (* Axes box. *)
  Buffer.add_string b
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" \
        stroke=\"#333\"/>\n"
       margin_left margin_top plot_w plot_h);
  (* Ticks and grid. *)
  List.iter
    (fun t ->
      let px = x_of t in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
           px margin_top px (margin_top +. plot_h));
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n"
           px
           (margin_top +. plot_h +. 16.)
           (fmt_num t)))
    (nice_ticks x_lo x_hi 6);
  List.iter
    (fun t ->
      let py = y_of t in
      Buffer.add_string b
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
           margin_left py (margin_left +. plot_w) py);
      Buffer.add_string b
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n"
           (margin_left -. 6.) (py +. 4.) (fmt_num t)))
    (nice_ticks y_lo y_hi 6);
  (* Axis labels. *)
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n"
       (margin_left +. (plot_w /. 2.))
       (h -. 14.) (escape x_label));
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"16\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" \
        transform=\"rotate(-90 16 %.1f)\">%s</text>\n"
       (margin_top +. (plot_h /. 2.))
       (margin_top +. (plot_h /. 2.))
       (escape y_label));
  { x_of; y_of; buffer = b; width = w; height = h }

let finish frame =
  Buffer.add_string frame.buffer "</svg>\n";
  Buffer.contents frame.buffer

let line_chart ?(width = 640) ?(height = 420) ~title ~x_label ~y_label series =
  if not (List.exists (fun s -> not (List.is_empty s.points)) series) then
    invalid_arg "Svg_plot.line_chart: no data";
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          check_finite "x" x;
          check_finite "y" y)
        s.points)
    series;
  let all = List.concat_map (fun s -> s.points) series in
  let xs = List.map fst all and ys = List.map snd all in
  let min_l = List.fold_left Float.min infinity and max_l = List.fold_left Float.max neg_infinity in
  let x_range = (min_l xs, max_l xs) in
  let y_lo = min_l ys and y_hi = max_l ys in
  (* Pad the y range a little so lines do not hug the frame. *)
  let pad = Float.max 1e-12 ((y_hi -. y_lo) *. 0.06) in
  let frame =
    start_document ~width ~height ~title ~x_label ~y_label ~x_range
      ~y_range:(y_lo -. pad, y_hi +. pad)
  in
  List.iteri
    (fun k s ->
      if not (List.is_empty s.points) then begin
        let colour = palette.(k mod Array.length palette) in
        let path =
          String.concat " "
            (List.map
               (fun (x, y) -> Printf.sprintf "%.2f,%.2f" (frame.x_of x) (frame.y_of y))
               s.points)
        in
        Buffer.add_string frame.buffer
          (Printf.sprintf
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
             path colour);
        List.iter
          (fun (x, y) ->
            Buffer.add_string frame.buffer
              (Printf.sprintf "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"2.6\" fill=\"%s\"/>\n"
                 (frame.x_of x) (frame.y_of y) colour))
          s.points;
        (* Legend entry. *)
        let ly = margin_top +. 8. +. (float_of_int k *. 18.) in
        let lx = frame.width -. margin_right +. 12. in
        Buffer.add_string frame.buffer
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" \
              stroke-width=\"2\"/>\n"
             lx ly (lx +. 18.) ly colour);
        Buffer.add_string frame.buffer
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n"
             (lx +. 24.) (ly +. 4.) (escape s.label))
      end)
    series;
  finish frame

let heat_colour frac =
  (* Blue (cold) -> red (hot) through white. *)
  let f = Float.max 0. (Float.min 1. frac) in
  let r, g, b =
    if f < 0.5 then
      let t = f *. 2. in
      (int_of_float (60. +. (195. *. t)), int_of_float (90. +. (165. *. t)), 255)
    else
      let t = (f -. 0.5) *. 2. in
      (255, int_of_float (255. -. (185. *. t)), int_of_float (255. -. (215. *. t)))
  in
  Printf.sprintf "#%02x%02x%02x" r g b

let heatmap ?(width = 640) ?(height = 480) ~title ~x_label ~y_label cells =
  if List.is_empty cells then invalid_arg "Svg_plot.heatmap: no data";
  List.iter
    (fun (x, y, v) ->
      check_finite "x" x;
      check_finite "y" y;
      check_finite "value" v)
    cells;
  let xs = List.sort_uniq Float.compare (List.map (fun (x, _, _) -> x) cells) in
  let ys = List.sort_uniq Float.compare (List.map (fun (_, y, _) -> y) cells) in
  let spacing axis = match axis with a :: b :: _ -> b -. a | _ -> 1. in
  let dx = spacing xs and dy = spacing ys in
  let vmin = List.fold_left (fun a (_, _, v) -> Float.min a v) infinity cells in
  let vmax = List.fold_left (fun a (_, _, v) -> Float.max a v) neg_infinity cells in
  let span = Float.max 1e-12 (vmax -. vmin) in
  let frame =
    start_document ~width ~height ~title ~x_label ~y_label
      ~x_range:(List.hd xs, List.nth xs (List.length xs - 1) +. dx)
      ~y_range:(List.hd ys, List.nth ys (List.length ys - 1) +. dy)
  in
  List.iter
    (fun (x, y, v) ->
      let px = frame.x_of x and py = frame.y_of (y +. dy) in
      let pw = frame.x_of (x +. dx) -. px and ph = frame.y_of y -. frame.y_of (y +. dy) in
      Buffer.add_string frame.buffer
        (Printf.sprintf
           "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\">\
            <title>%s</title></rect>\n"
           px py pw ph
           (heat_colour ((v -. vmin) /. span))
           (escape (Printf.sprintf "(%s, %s) = %s" (fmt_num x) (fmt_num y) (fmt_num v)))))
    cells;
  (* Colour-bar legend: min / max annotations. *)
  let lx = frame.width -. margin_right +. 12. in
  List.iteri
    (fun i (label, frac) ->
      let ly = margin_top +. 10. +. (float_of_int i *. 22.) in
      Buffer.add_string frame.buffer
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"14\" height=\"14\" fill=\"%s\"/>\n" lx
           (ly -. 10.) (heat_colour frac));
      Buffer.add_string frame.buffer
        (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n"
           (lx +. 20.) (ly +. 1.) (escape label)))
    [ (Printf.sprintf "max %s" (fmt_num vmax), 1.); (Printf.sprintf "min %s" (fmt_num vmin), 0.) ];
  finish frame

let write path svg =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc svg)
