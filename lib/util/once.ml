(* A domain-safe once-cell.

   [Stdlib.Lazy] is not safe to force concurrently from several domains:
   a race on the first force raises [Lazy.RacyLazy] (or [Undefined]),
   which is exactly the crash class fosc-race's R8 exists to catch.
   [Once.t] is the drop-in replacement for shared deferred state that
   pool workers may touch first: the first caller to [get] runs the
   thunk under a mutex (single-flight — concurrent callers wait and
   then read the same value), and every later [get] is one [Atomic.get]
   on the fast path.

   Exception semantics differ deliberately from [Lazy]: a raising thunk
   leaves the cell unforced (the exception propagates to that caller
   and the next [get] retries) instead of poisoning it forever. *)

type 'a t = {
  cell : 'a option Atomic.t;
  lock : Mutex.t;
  mutable thunk : (unit -> 'a) option; [@fosc.guarded "mutex"]
      (* dropped once forced so captured inputs become collectable *)
}

let make thunk = { cell = Atomic.make None; lock = Mutex.create (); thunk = Some thunk }

let of_val v = { cell = Atomic.make (Some v); lock = Mutex.create (); thunk = None }

let is_forced t = match Atomic.get t.cell with Some _ -> true | None -> false

let get t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          (* Re-check under the lock: a concurrent forcer may have won. *)
          match Atomic.get t.cell with
          | Some v -> v
          | None ->
              let f =
                match t.thunk with
                | Some f -> f
                | None -> assert false (* unforced cells always hold their thunk *)
              in
              let v = f () in
              Atomic.set t.cell (Some v);
              t.thunk <- None;
              v)
