(* A persistent work-sharing domain pool.

   Worker domains are spawned once (lazily, on the first parallel
   submission) and reused for every subsequent job, so the policy search
   loops can fan out hundreds of small evaluation batches without paying
   a Domain.spawn per batch.  A job is an indexed task set [0, n); the
   participants (the submitting domain plus the resident workers) claim
   chunks of indices off a shared atomic counter until the range is
   exhausted.  Task functions never raise across the domain boundary:
   results and exceptions are captured per slot and the first exception
   in index order is re-raised in the submitter once the job completes,
   matching what the sequential fallback would have raised. *)

(* True while the current domain is executing pool tasks.  A nested
   submission from inside a task (e.g. an experiment sweep mapping over
   platforms whose policy solvers themselves use the pool) must not wait
   on the pool it is running on — that deadlocks a 1-worker pool and
   oversubscribes any other — so [map] degrades to sequential when set. *)
let busy_key = Domain.DLS.new_key (fun () -> false)

type job = {
  run : int -> unit;  (* captures its own exceptions; must not raise *)
  length : int;
  chunk : int;
  next : int Atomic.t;  (* next unclaimed index *)
  completed : int Atomic.t;  (* tasks finished, = length when done *)
}

type t = {
  size : int;  (* total participants: the submitter + (size - 1) workers *)
  lock : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable current : (int * job) option;  (* epoch-stamped active job *)
  mutable epoch : int;
  mutable stopped : bool;
  mutable spawned : bool;
  mutable workers : unit Domain.t list;
  submit_lock : Mutex.t;  (* serializes whole jobs from distinct domains *)
}

let size t = t.size

let default_size () =
  match Option.bind (Sys.getenv_opt "FOSC_DOMAINS") int_of_string_opt with
  | Some d -> Stdlib.max 1 d
  | None -> Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count ()))

let create ?size () =
  let size =
    match size with
    | Some s -> if s < 1 then invalid_arg "Pool.create: size < 1" else s
    | None -> default_size ()
  in
  {
    size;
    lock = Mutex.create ();
    work_available = Condition.create ();
    work_done = Condition.create ();
    current = None;
    epoch = 0;
    stopped = false;
    spawned = false;
    workers = [];
    submit_lock = Mutex.create ();
  }

(* Claim and run chunks until the job's index range is exhausted.  Both
   workers and the submitting domain share this loop (work-sharing: the
   submitter is participant number [size]). *)
let participate t job =
  let saved = Domain.DLS.get busy_key in
  Domain.DLS.set busy_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set busy_key saved)
    (fun () ->
      let rec claim () =
        let start = Atomic.fetch_and_add job.next job.chunk in
        if start < job.length then begin
          let stop = Stdlib.min job.length (start + job.chunk) in
          for i = start to stop - 1 do
            job.run i
          done;
          ignore (Atomic.fetch_and_add job.completed (stop - start));
          claim ()
        end
      in
      claim ());
  (* Whoever retires the last task wakes the submitter.  The broadcast
     happens under the lock, so it cannot slip between the submitter's
     completion check and its wait. *)
  if Atomic.get job.completed = job.length then begin
    Mutex.lock t.lock;
    Condition.broadcast t.work_done;
    Mutex.unlock t.lock
  end

let rec worker_loop t last_epoch =
  Mutex.lock t.lock;
  let next =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let rec await () =
          if t.stopped then None
          else
            match t.current with
            | Some (epoch, job) when epoch <> last_epoch -> Some (epoch, job)
            | _ ->
                Condition.wait t.work_available t.lock;
                await ()
        in
        await ())
  in
  match next with
  | None -> ()
  | Some (epoch, job) ->
      participate t job;
      worker_loop t epoch

let ensure_workers t =
  if not t.spawned then begin
    t.spawned <- true;
    t.workers <-
      List.init (t.size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0))
  end

(* Run [run] for every index in [0, length) across the pool.  Called with
   [busy_key] unset (checked by the [map] wrappers). *)
let run_job t ~chunk ~length run =
  if length > 0 then begin
    let job =
      { run; length; chunk; next = Atomic.make 0; completed = Atomic.make 0 }
    in
    if t.size <= 1 then participate t job
    else begin
      Mutex.lock t.submit_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.submit_lock)
        (fun () ->
          ensure_workers t;
          Mutex.lock t.lock;
          t.epoch <- t.epoch + 1;
          t.current <- Some (t.epoch, job);
          Condition.broadcast t.work_available;
          Mutex.unlock t.lock;
          participate t job;
          Mutex.lock t.lock;
          while Atomic.get job.completed < job.length do
            Condition.wait t.work_done t.lock
          done;
          (* Drop the job so its closures (and captured inputs) are
             collectable while the pool idles. *)
          t.current <- None;
          Mutex.unlock t.lock)
    end
  end

let shutdown t =
  Mutex.lock t.submit_lock;
  (* [Domain.join] re-raises whatever killed a worker, so the outer
     section must release [submit_lock] on that path too. *)
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.submit_lock)
    (fun () ->
      Mutex.lock t.lock;
      t.stopped <- true;
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      let workers = t.workers in
      t.workers <- [];
      List.iter Domain.join workers)

let global =
  lazy
    (let t = create () in
     (* Join the resident domains on exit so the runtime never tears down
        under a parked worker. *)
     at_exit (fun () -> shutdown t);
     t)
[@@fosc.unguarded
  "first force happens on the submitting domain before any worker exists; a \
   concurrent second force raises Lazy.Undefined rather than corrupting"]
[@@fosc.forced_before_parallel
  "the pool singleton is forced via [get] on the submitting domain before any \
   worker domain can exist, so no parallel region ever performs the first \
   force"]

let get () = Lazy.force global

type 'b slot = Pending | Done of 'b | Failed of exn

let map_array ?pool ?(chunk = 1) f xs =
  if chunk < 1 then invalid_arg "Pool.map_array: chunk < 1";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let pool = match pool with Some p -> p | None -> get () in
    if n = 1 || pool.size <= 1 || Domain.DLS.get busy_key then Array.map f xs
    else begin
      let out = Array.make n Pending in
      run_job pool ~chunk ~length:n (fun i ->
          out.(i) <- (try Done (f xs.(i)) with e -> Failed e));
      Array.map
        (function
          | Done y -> y
          | Failed e -> raise e
          | Pending -> assert false)
        out
    end
  end

let init ?pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  map_array ?pool ?chunk f (Array.init n (fun i -> i))

let map ?pool ?chunk f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (map_array ?pool ?chunk f (Array.of_list xs))

let chunk_hint ?pool n =
  let pool = match pool with Some p -> p | None -> get () in
  (* Aim for ~4 claims per participant: enough slack that an unlucky
     chunk of slow tasks rebalances, few enough atomic fetches that
     cheap tasks aren't dominated by counter traffic.  Capped at 32 so
     one claim never serializes a visible fraction of the batch. *)
  Stdlib.max 1 (Stdlib.min 32 (n / (4 * size pool)))
