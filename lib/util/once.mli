(** A domain-safe once-cell: the deferred-initialization shape of
    [Stdlib.Lazy] without its cross-domain first-force race
    ([Lazy.RacyLazy]).  Used for shared engine/backend state that pool
    workers may be the first to touch (see [Core.Eval]). *)

type 'a t

(** [make f] is an unforced cell; the first [get] runs [f] exactly once
    (single-flight under a private mutex — concurrent callers block and
    read the winner's value).  If [f] raises, the cell stays unforced
    and the next [get] retries, unlike [Lazy]'s permanent poisoning. *)
val make : (unit -> 'a) -> 'a t

(** [of_val v] is an already-forced cell holding [v]. *)
val of_val : 'a -> 'a t

(** [get t] forces the cell if needed and returns its value.  Safe to
    call from any domain at any time. *)
val get : 'a t -> 'a

(** [is_forced t] is [true] once a [get] has completed.  Safe from any
    domain; a [false] may be stale by the time the caller acts on it. *)
val is_forced : 'a t -> bool
