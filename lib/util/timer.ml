[@@@fosc.nondeterministic
  "wall-clock measurement helper; never called from solver or digest paths"]

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let time_only f = snd (time_it f)
