(** Legacy fork-join facade over the persistent domain pool ({!Pool}).

    Earlier revisions spawned fresh domains per call; the implementation
    now delegates to the shared pool, which reuses resident workers.
    Prefer {!Pool.map} in new code. *)

(** [map ?domains f xs] applies [f] to every element on the shared pool,
    preserving order and re-raising the first exception in list order.
    [domains] is kept for compatibility as a concurrency *hint*:
    [domains <= 1] forces sequential [List.map]; any other value runs on
    the shared pool at the pool's own size. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [default_domains ()] is the shared pool's participant count. *)
val default_domains : unit -> int
