let default_domains () = Pool.size (Pool.get ())

let map ?domains f xs =
  match domains with
  | Some d when d <= 1 -> List.map f xs
  | _ -> Pool.map f xs
