(** Reactive dynamic-thermal-management governors, simulated against the
    same compact thermal model the proactive policies use.

    The paper's introduction contrasts its proactive approach with
    reactive DTM: sample sensors, throttle when a threshold nears.  This
    module makes that comparison executable.  A governor is a sampled
    controller: every [control_interval] it reads (possibly noisy) core
    temperatures and picks each core's DVFS level; between samples the
    continuous dynamics run exactly, so overshoot in the controller's
    blind spot is measured honestly.

    This is the legacy single-call facade: the three policies are
    {!Controllers} entries run through the generic {!Loop} simulator on
    a dense-backend {!Core.Eval} context.  New code should use
    {!Controller}/{!Controllers}/{!Loop} directly — more policies,
    sparse plants, workload phases, sensor quantization.

    Three classic policies are provided:
    - {!Threshold}: per-core hysteresis stepping (ondemand-style) —
      step down within [guard] of [t_max], step up below
      [2 * guard];
    - {!Pid}: a PI controller on the hottest core's temperature error
      driving a chip-wide continuous voltage command, quantized down to
      the level grid;
    - {!Static}: fixed level assignment (for calibration runs). *)

type policy =
  | Threshold of { guard : float }
  | Pid of { kp : float; ki : float; guard : float }
  | Static of int array  (** Level index per core. *)

type stats = {
  throughput : float;  (** Work per core per second over the run. *)
  peak : float;  (** True continuous peak, degrees C. *)
  violations : int;  (** Fine-grained samples strictly above [t_max]. *)
  switches : int;  (** Total DVFS transitions commanded. *)
  samples : int;  (** Control-loop invocations. *)
}

(** [simulate platform policy ?control_interval ?duration ?sensor_noise
    ?substeps ?seed ()] runs the governor from the ambient temperature.

    - [control_interval]: seconds between sensor reads (default 20 ms);
    - [duration]: simulated seconds (default 8 s);
    - [sensor_noise]: standard deviation of Gaussian noise added to each
      sensor read, degrees C (default 0);
    - [use_observer]: filter the noisy sensor reads through a
      {!Observer} (gain 0.2) before deciding (default [false]) — the
      closed-loop payoff of model-based state estimation;
    - [substeps]: fine integration steps per control interval used to
      measure the true peak (default 8);
    - [seed]: noise RNG seed (default 0).

    Raises [Invalid_argument] on non-positive intervals/durations, a
    negative noise level, or (for {!Static}) out-of-range level
    indices. *)
val simulate :
  Core.Platform.t ->
  policy ->
  ?control_interval:float ->
  ?duration:float ->
  ?sensor_noise:float ->
  ?use_observer:bool ->
  ?substeps:int ->
  ?seed:int ->
  unit ->
  stats
