(** Thermal state observer: reconstruct the full thermal state from
    noisy core sensors, on any {!Thermal.Backend}.

    Real DTM reads a handful of noisy on-die sensors, but the plant's
    state covers every thermal node (including passive nodes with no
    sensor at all).  A discrete Luenberger observer runs the plant model
    in parallel with the plant and corrects with the measurement
    innovation:

    [xhat' = F xhat + g(psi) + L (y - H xhat)]

    where [F = e^{A dt}] is the true propagator, [H] reads the core
    temperatures and [L = gain * H^T].  [F] is a strict contraction and
    the correction pulls the estimate toward the measured cores, so the
    error dynamics are stable for gains in (0, 1].

    Estimates are states of the observer's backend — opaque modal or
    symmetrized coordinates; prediction runs through the backend's
    {!Thermal.Backend.field-step_into} and correction through its
    {!Thermal.Backend.field-correct_cores}, so one observer
    implementation serves the dense and sparse plants alike.  An
    observer owns scratch buffers: share one instance only within a
    single control loop, not across domains. *)

type t

(** [create ?gain backend ~dt] builds an observer stepping at the
    sensor sampling interval [dt] on [backend]'s plant model.  [gain]
    in (0, 1] (default 0.5) scales the innovation correction.  Raises
    [Invalid_argument] on a bad gain or non-positive [dt]. *)
val create : ?gain:float -> Thermal.Backend.t -> dt:float -> t

(** [backend o] is the backend whose states [o] estimates. *)
val backend : t -> Thermal.Backend.t

(** [initial o] is the ambient-state estimate. *)
val initial : t -> Linalg.Vec.t

(** [update_into o ~estimate ~psi ~measured] advances one sampling
    interval in place: propagate [estimate] under core powers [psi],
    then correct with the measured absolute core temperatures.  The
    per-epoch path — no state-sized allocation, which matters across
    the 10^4..10^6 epochs of a race.  Raises [Invalid_argument] on
    arity mismatches. *)
val update_into :
  t -> estimate:Linalg.Vec.t -> psi:Linalg.Vec.t -> measured:Linalg.Vec.t -> unit

(** [update o ~estimate ~psi ~measured] is {!update_into} on a copy:
    returns the new estimate, leaving [estimate] untouched. *)
val update :
  t ->
  estimate:Linalg.Vec.t ->
  psi:Linalg.Vec.t ->
  measured:Linalg.Vec.t ->
  Linalg.Vec.t

(** [core_estimates o estimate] are the estimate's absolute core
    temperatures. *)
val core_estimates : t -> Linalg.Vec.t -> Linalg.Vec.t
