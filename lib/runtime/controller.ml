type env = {
  platform : Core.Platform.t;
  levels : float array;
  dt : float;
  eval : Core.Eval.t;
}

type observed = {
  epoch : int;
  time : float;
  temps : Linalg.Vec.t;
  utilization : float array;
}

type decide = observed -> int array -> unit

type t = { name : string; doc : string; init : env -> decide }

let level_down levels v =
  let idx = ref 0 in
  Array.iteri (fun k lv -> if lv <= v +. 1e-12 then idx := k) levels;
  !idx
