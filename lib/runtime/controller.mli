(** First-class online DVFS controllers — the reactive counterpart of
    {!Core.Solver}.

    A controller is a name, a one-line doc string and an [init]
    function: given the static environment (platform, voltage grid,
    control interval, shared evaluation context) it returns a [decide]
    closure holding whatever mutable state the policy needs — PI
    integrators, adaptive gains, a cached offline schedule, a
    receding-horizon plan.  Every control interval {!Loop} calls
    [decide] with the observed epoch state and the closure rewrites the
    per-core level indices in place.

    The design mirrors {!Core.Solver}/{!Core.Registry}: policies are
    values, {!Controllers.all} is the registry, and model-based
    controllers price candidates through the same memoized {!Core.Eval}
    the offline solvers use — so an online policy re-solving AO each
    horizon replays the offline search from cache. *)

type env = {
  platform : Core.Platform.t;
  levels : float array;
      (** The platform's discrete voltage grid, ascending. *)
  dt : float;  (** Control interval, seconds. *)
  eval : Core.Eval.t;
      (** Shared evaluation context; its backend is also the plant the
          loop simulates against. *)
}

type observed = {
  epoch : int;
      (** Index of the epoch being decided (0 for the initial decision
          from the ambient state). *)
  time : float;  (** Start time of the epoch being decided, seconds. *)
  temps : Linalg.Vec.t;
      (** Sensed absolute core temperatures — noisy, quantized and/or
          observer-filtered per the loop's sensor model.  Read-only. *)
  utilization : float array;
      (** Per-core utilization measured over the previous epoch, in
          [0, 1] (all ones before the first epoch).  Read-only. *)
}

type decide = observed -> int array -> unit
(** [decide obs level] rewrites [level] — the per-core level indices
    currently commanded — into the command for the next epoch.  The
    loop clamps indices to the platform grid afterwards. *)

type t = { name : string; doc : string; init : env -> decide }

(** [level_down levels v] is the index of the fastest grid level with
    voltage [<= v + 1e-12] ([0] when even the lowest level exceeds [v])
    — the shared continuous-command quantizer. *)
val level_down : float array -> float -> int
