module Vec = Linalg.Vec
module B = Thermal.Backend

type t = {
  backend : B.t;
  dt : float;
  gain : float;
  pred : Vec.t;  (* predicted-state scratch, backend coordinates *)
  deltas : Vec.t;  (* innovation scratch, one slot per core *)
}

let create ?(gain = 0.5) backend ~dt =
  if gain <= 0. || gain > 1. then invalid_arg "Observer.create: gain outside (0, 1]";
  if dt <= 0. then invalid_arg "Observer.create: non-positive dt";
  {
    backend;
    dt;
    gain;
    pred = backend.B.ambient_state ();
    deltas = Vec.zeros backend.B.n_cores;
  }

let backend o = o.backend
let initial o = o.backend.B.ambient_state ()

let update_into o ~estimate ~psi ~measured =
  let b = o.backend in
  if Vec.dim measured <> b.B.n_cores then
    invalid_arg "Observer.update_into: measurement arity differs from core count";
  if Vec.dim estimate <> Vec.dim o.pred then
    invalid_arg "Observer.update_into: estimate arity differs from the backend state";
  (* Predict with the exact plant model... *)
  b.B.step_into ~dt:o.dt ~state:estimate ~psi ~dst:o.pred;
  Array.blit o.pred 0 estimate 0 (Vec.dim estimate);
  (* ...then correct the measured cores toward the innovation, in the
     backend's own state coordinates. *)
  let cores = b.B.core_temps estimate in
  for k = 0 to b.B.n_cores - 1 do
    o.deltas.(k) <- o.gain *. (measured.(k) -. cores.(k))
  done;
  b.B.correct_cores ~state:estimate ~deltas:o.deltas

let update o ~estimate ~psi ~measured =
  let e = Vec.copy estimate in
  update_into o ~estimate:e ~psi ~measured;
  e

let core_estimates o estimate = o.backend.B.core_temps estimate
