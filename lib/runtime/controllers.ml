module C = Controller
module P = Core.Platform

(* ------------------------------------------------- reactive classics *)

let threshold ?(guard = 2.) () =
  if guard <= 0. then invalid_arg "Controllers.threshold: non-positive guard";
  {
    C.name = "threshold";
    doc =
      "Per-core hysteresis stepping (ondemand-style): down within guard of \
       T_max, up below two guards";
    init =
      (fun env ->
        let t_max = env.C.platform.P.t_max in
        let top = Array.length env.C.levels - 1 in
        fun obs level ->
          Array.iteri
            (fun i t ->
              if t > t_max -. guard && level.(i) > 0 then level.(i) <- level.(i) - 1
              else if t < t_max -. (2. *. guard) && level.(i) < top then
                level.(i) <- level.(i) + 1)
            obs.C.temps);
  }

let pid ?(kp = 0.05) ?(ki = 0.005) ?(guard = 1.) () =
  {
    C.name = "pid";
    doc =
      "Chip-wide PI on the hottest sensor's error, quantized down to the \
       level grid";
    init =
      (fun env ->
        let p = env.C.platform in
        let lo = Power.Vf.lowest p.P.levels in
        let hi = Power.Vf.highest p.P.levels in
        let integral = ref 0. in
        fun obs level ->
          let hottest = Array.fold_left Float.max neg_infinity obs.C.temps in
          let error = p.P.t_max -. guard -. hottest in
          integral := !integral +. error;
          let v_cmd = lo +. (kp *. error) +. (ki *. !integral) in
          let v = Float.max lo (Float.min hi v_cmd) in
          Array.fill level 0 (Array.length level) (C.level_down env.C.levels v));
  }

let static fixed =
  {
    C.name = "static";
    doc = "Fixed per-core level assignment (calibration baseline)";
    init =
      (fun env ->
        (* Validated at construction against the bound platform: a wrong
           arity must fail loudly here, not as an [Array.blit] bounds
           error deep inside the loop. *)
        let n = P.n_cores env.C.platform in
        let top = Array.length env.C.levels - 1 in
        if Array.length fixed <> n then
          invalid_arg
            (Printf.sprintf "Controllers.static: %d level indices for %d cores"
               (Array.length fixed) n);
        Array.iter
          (fun l ->
            if l < 0 || l > top then
              invalid_arg
                (Printf.sprintf "Controllers.static: level index %d outside 0..%d"
                   l top))
          fixed;
        let fixed = Array.copy fixed in
        fun _ level -> Array.blit fixed 0 level 0 n);
  }

(* Rao-style adjustable-gain integral control: one integrator per core
   tracking T_max - guard, with a gain that grows while the error keeps
   its sign (converging too slowly) and halves when it flips
   (overshot).  The continuous command is quantized down per core. *)
let integral ?(guard = 1.) ?(gain = 0.02) ?(gain_min = 0.002) ?(gain_max = 0.2) () =
  if guard < 0. then invalid_arg "Controllers.integral: negative guard";
  if gain <= 0. || gain_min <= 0. || gain_max < gain_min then
    invalid_arg "Controllers.integral: bad gain range";
  {
    C.name = "integral";
    doc =
      "Per-core adaptive-gain integral control toward T_max - guard \
       (Rao-style)";
    init =
      (fun env ->
        let p = env.C.platform in
        let n = P.n_cores p in
        let lo = Power.Vf.lowest p.P.levels in
        let hi = Power.Vf.highest p.P.levels in
        let v_cmd = Array.make n hi in
        let g = Array.make n gain in
        let last = Array.make n 0. in
        fun obs level ->
          for i = 0 to n - 1 do
            let e = p.P.t_max -. guard -. obs.C.temps.(i) in
            if obs.C.epoch > 0 then
              if e *. last.(i) > 0. then g.(i) <- Float.min gain_max (g.(i) *. 1.5)
              else if e *. last.(i) < 0. then g.(i) <- Float.max gain_min (g.(i) /. 2.);
            last.(i) <- e;
            v_cmd.(i) <- Float.max lo (Float.min hi (v_cmd.(i) +. (g.(i) *. e)));
            level.(i) <- C.level_down env.C.levels v_cmd.(i)
          done);
  }

(* TSP power-budget tracking (dvfsTSP-style): the thermal-safe uniform
   budget is solved once at init through the shared eval; each epoch
   every core picks the fastest level whose expected power — scaled by
   the utilization its counters measured — fits the budget, so idle
   cores clock up into the headroom busy cores cannot use.  A small
   thermal backstop sheds one level when a sensor is already inside the
   guard band. *)
let tsp ?(guard = 0.5) () =
  if guard < 0. then invalid_arg "Controllers.tsp: negative guard";
  {
    C.name = "tsp";
    doc =
      "TSP budget tracker: fastest level whose utilization-scaled power fits \
       the thermal-safe uniform budget";
    init =
      (fun env ->
        let p = env.C.platform in
        let budget = (Core.Tsp.solve ~eval:env.C.eval p).Core.Tsp.power_budget in
        let pm = p.P.power in
        let levels = env.C.levels in
        let top = Array.length levels - 1 in
        fun obs level ->
          for i = 0 to Array.length level - 1 do
            let u = obs.C.utilization.(i) in
            let chosen = ref 0 in
            for l = 1 to top do
              if u *. Power.Power_model.psi pm levels.(l) <= budget then chosen := l
            done;
            if obs.C.temps.(i) > p.P.t_max -. guard && !chosen > 0 then decr chosen;
            level.(i) <- !chosen
          done);
  }

(* ------------------------------------------------ offline replay arm *)

let replay env (s : Sched.Schedule.t) =
  let n = Sched.Schedule.n_cores s in
  (* Mid-epoch sampling: when the schedule's switch points sit on the
     control grid this reads exactly the segment covering the epoch;
     schedules finer than the grid alias (the loop cannot switch faster
     than it runs). *)
  let half = 0.5 *. env.C.dt in
  fun (obs : C.observed) level ->
    for i = 0 to n - 1 do
      level.(i) <- C.level_down env.C.levels (Sched.Schedule.voltage_at s i (obs.C.time +. half))
    done

let offline_schedule ?(name = "offline-schedule") s =
  {
    C.name;
    doc = "Open-loop replay of a fixed periodic schedule";
    init =
      (fun env ->
        if Sched.Schedule.n_cores s <> P.n_cores env.C.platform then
          invalid_arg
            "Controllers.offline_schedule: schedule arity differs from platform";
        replay env s);
  }

let offline ?name (policy : Core.Solver.t) =
  let name =
    match name with Some n -> n | None -> "offline-" ^ policy.Core.Solver.name
  in
  {
    C.name;
    doc = "Open-loop replay of the " ^ policy.Core.Solver.name ^ " solve";
    init =
      (fun env ->
        let o = Core.Solver.run policy env.C.eval in
        match o.Core.Solver.schedule with
        | Some s -> replay env s
        | None ->
            (* Constant assignment: quantize once and hold. *)
            let fixed = Array.map (C.level_down env.C.levels) o.Core.Solver.voltages in
            fun _ level -> Array.blit fixed 0 level 0 (Array.length fixed));
  }

(* AO constrained to the control grid: the epoch loop cannot switch
   faster than it samples, so the registered offline/receding-horizon
   AO arms solve on a base period of 40 epochs with the m sweep capped
   at 8 — every mini-period spans at least 5 epochs. *)
let epoch_aligned_ao env =
  Core.Ao.solve ~eval:env.C.eval ~base_period:(40. *. env.C.dt) ~m_cap:8
    env.C.platform

let offline_ao () =
  {
    C.name = "offline-ao";
    doc = "Open-loop replay of an epoch-aligned AO solve";
    init = (fun env -> replay env (epoch_aligned_ao env).Core.Ao.schedule);
  }

(* Receding-horizon AO: re-solve every [resolve_every] epochs through
   the shared eval (replayed from the memo tables after the first
   solve), predict the plan's stable end-of-period core temperatures
   once per solve (also memoized), and each epoch trim every core's
   duty ratio by the observed-minus-predicted error — cooler than
   planned (idle phases, cold start) exploits the headroom, hotter
   (noisy power) sheds high time. *)
let rh_ao ?(resolve_every = 50) ?(ratio_gain = 0.05) () =
  if resolve_every < 1 then invalid_arg "Controllers.rh_ao: resolve_every < 1";
  if ratio_gain < 0. then invalid_arg "Controllers.rh_ao: negative ratio gain";
  {
    C.name = "rh-ao";
    doc =
      "Receding-horizon AO: periodic re-solve through the shared eval plus \
       per-core duty trim against predicted end temps";
    init =
      (fun env ->
        let plan = ref None in
        let anchor = ref 0. in
        fun obs level ->
          if Option.is_none !plan || obs.C.epoch mod resolve_every = 0 then begin
            let r = epoch_aligned_ao env in
            let c = r.Core.Ao.config in
            let ratio =
              Array.map
                (fun h -> Float.max 0. (Float.min 1. (h /. c.Core.Tpt.period)))
                c.Core.Tpt.high_time
            in
            let predicted =
              Core.Eval.two_mode_end_core_temps env.C.eval
                ~period:c.Core.Tpt.period ~low:c.Core.Tpt.v_low
                ~high:c.Core.Tpt.v_high ~high_ratio:ratio
            in
            plan := Some (c, ratio, predicted);
            anchor := obs.C.time
          end;
          match !plan with
          | None -> assert false
          | Some (c, ratio, predicted) ->
              let period = c.Core.Tpt.period in
              let phase =
                Float.rem (obs.C.time -. !anchor +. (0.5 *. env.C.dt)) period
              in
              for i = 0 to Array.length level - 1 do
                let err = obs.C.temps.(i) -. predicted.(i) in
                let r =
                  Float.max 0. (Float.min 1. (ratio.(i) -. (ratio_gain *. err)))
                in
                let v =
                  if phase < (1. -. r) *. period then c.Core.Tpt.v_low.(i)
                  else c.Core.Tpt.v_high.(i)
                in
                level.(i) <- C.level_down env.C.levels v
              done);
  }

(* ----------------------------------------------------------- registry *)

let all () =
  [ threshold (); pid (); integral (); tsp (); offline_ao (); rh_ao () ]

let names () = List.map (fun c -> c.C.name) (all ())
let find name = List.find_opt (fun c -> String.equal c.C.name name) (all ())

let find_exn name =
  match find name with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Controllers.find_exn: unknown controller %S (have: %s)"
           name
           (String.concat ", " (names ())))
