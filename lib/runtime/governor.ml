type policy =
  | Threshold of { guard : float }
  | Pid of { kp : float; ki : float; guard : float }
  | Static of int array

type stats = {
  throughput : float;
  peak : float;
  violations : int;
  switches : int;
  samples : int;
}

(* Box-Muller Gaussian sample. *)
let gaussian rng sigma =
  if sigma <= 0. then 0.
  else
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    let u2 = Random.State.float rng 1. in
    sigma *. sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

type controller_state = { mutable integral : float }

let decide (p : Core.Platform.t) policy state ~levels ~level ~sensed =
  let top = Array.length levels - 1 in
  match policy with
  | Static fixed -> Array.blit fixed 0 level 0 (Array.length fixed)
  | Threshold { guard } ->
      Array.iteri
        (fun i t ->
          if t > p.Core.Platform.t_max -. guard && level.(i) > 0 then
            level.(i) <- level.(i) - 1
          else if t < p.Core.Platform.t_max -. (2. *. guard) && level.(i) < top then
            level.(i) <- level.(i) + 1)
        sensed
  | Pid { kp; ki; guard } ->
      (* Chip-wide PI on the hottest sensor; the command is a continuous
         voltage quantized down to the grid. *)
      let hottest = Array.fold_left Float.max neg_infinity sensed in
      let error = p.Core.Platform.t_max -. guard -. hottest in
      state.integral <- state.integral +. error;
      let v_cmd =
        Power.Vf.lowest p.Core.Platform.levels
        +. (kp *. error) +. (ki *. state.integral)
      in
      let v =
        Float.max (Power.Vf.lowest p.Core.Platform.levels)
          (Float.min (Power.Vf.highest p.Core.Platform.levels) v_cmd)
      in
      let quantized = Power.Vf.round_down p.Core.Platform.levels v in
      let idx =
        let found = ref 0 in
        Array.iteri (fun k lv -> if Float.abs (lv -. quantized) < 1e-12 then found := k) levels;
        !found
      in
      Array.fill level 0 (Array.length level) idx

let simulate (p : Core.Platform.t) policy ?(control_interval = 20e-3) ?(duration = 8.)
    ?(sensor_noise = 0.) ?(use_observer = false) ?(substeps = 8) ?(seed = 0) () =
  if control_interval <= 0. then invalid_arg "Governor.simulate: non-positive interval";
  if duration <= 0. then invalid_arg "Governor.simulate: non-positive duration";
  if sensor_noise < 0. then invalid_arg "Governor.simulate: negative sensor noise";
  if substeps < 1 then invalid_arg "Governor.simulate: substeps < 1";
  let model = p.Core.Platform.model in
  let pm = p.Core.Platform.power in
  let levels = Power.Vf.levels p.Core.Platform.levels in
  let top = Array.length levels - 1 in
  let n = Core.Platform.n_cores p in
  (match policy with
  | Static fixed ->
      if Array.length fixed <> n then
        invalid_arg "Governor.simulate: static assignment arity mismatch";
      Array.iter
        (fun l ->
          if l < 0 || l > top then
            invalid_arg "Governor.simulate: static level index out of range")
        fixed
  | Threshold _ | Pid _ -> ());
  let rng = Random.State.make [| seed |] in
  let level = Array.make n top in
  let state = { integral = 0. } in
  let observer =
    if use_observer then Some (Observer.create model ~dt:control_interval ~gain:0.3)
    else None
  in
  let estimate =
    ref (match observer with Some o -> Observer.initial o | None -> [||])
  in
  (* The plant is simulated in modal coordinates: one z_inf solve per
     control decision (the power is constant inside an interval) and an
     O(n) diagonal scale per substep, instead of a propagator lookup and
     matvec per substep.  Model.step remains the reference path; the
     observer still runs on it. *)
  let eng = Thermal.Modal.make model in
  let z = ref (Thermal.Modal.ambient_state eng) in
  let sub_dt = control_interval /. float_of_int substeps in
  let work = ref 0. and peak = ref neg_infinity in
  let violations = ref 0 and switches = ref 0 in
  let steps = int_of_float (Float.round (duration /. control_interval)) in
  for _ = 1 to steps do
    let voltages = Array.map (fun l -> levels.(l)) level in
    let psi = Power.Power_model.psi_vector pm voltages in
    let seg = Thermal.Modal.segment eng ~duration:sub_dt ~psi in
    for _ = 1 to substeps do
      z := Thermal.Modal.advance seg !z;
      let t = Thermal.Modal.max_core_temp eng !z in
      peak := Float.max !peak t;
      if t > p.Core.Platform.t_max +. 1e-9 then incr violations
    done;
    work := !work +. (Array.fold_left ( +. ) 0. voltages *. control_interval);
    let temps = Thermal.Modal.core_temps eng !z in
    let measured = Array.map (fun t -> t +. gaussian rng sensor_noise) temps in
    let sensed =
      match observer with
      | None -> measured
      | Some o ->
          estimate := Observer.update o ~estimate:!estimate ~psi ~measured;
          Observer.core_estimates o !estimate
    in
    let before = Array.copy level in
    decide p policy state ~levels ~level ~sensed;
    Array.iteri (fun i l -> if l <> before.(i) then incr switches) level
  done;
  {
    throughput = !work /. (duration *. float_of_int n);
    peak = !peak;
    violations = !violations;
    switches = !switches;
    samples = steps;
  }
