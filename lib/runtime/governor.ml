type policy =
  | Threshold of { guard : float }
  | Pid of { kp : float; ki : float; guard : float }
  | Static of int array

type stats = {
  throughput : float;
  peak : float;
  violations : int;
  switches : int;
  samples : int;
}

let simulate (p : Core.Platform.t) policy ?(control_interval = 20e-3) ?(duration = 8.)
    ?(sensor_noise = 0.) ?(use_observer = false) ?(substeps = 8) ?(seed = 0) () =
  let controller =
    match policy with
    | Threshold { guard } -> Controllers.threshold ~guard ()
    | Pid { kp; ki; guard } -> Controllers.pid ~kp ~ki ~guard ()
    | Static fixed -> Controllers.static fixed
  in
  let eval = Core.Eval.create p in
  let config =
    {
      Loop.default with
      Loop.control_interval;
      duration;
      substeps;
      seed;
      sensor_noise;
      observer_gain = (if use_observer then Some 0.2 else None);
    }
  in
  let s = Loop.run ~config eval controller in
  {
    throughput = s.Loop.throughput;
    peak = s.Loop.peak;
    violations = s.Loop.violations;
    switches = s.Loop.switches;
    samples = s.Loop.epochs;
  }
