(** The epoch-driven closed-loop simulator: one {!Controller.t} against
    a simulated plant on any {!Thermal.Backend}.

    Every control interval the loop (1) converts the commanded levels
    and the epoch's workload utilization into heat, with optional
    multiplicative power noise; (2) advances the plant exactly through
    the backend's allocation-free {!Thermal.Backend.field-step_into} in
    [substeps] fine steps, tracking the true continuous peak and
    threshold violations in the controller's blind spot; (3) senses the
    core temperatures through the sensor model (Gaussian noise, then
    optional quantization, then an optional {!Observer} filter); and
    (4) asks the controller for the next per-core levels.

    The plant is whatever the eval context's backend simulates — the
    dense modal engine or the sparse Krylov path, so races run
    unchanged from 3x3 up to the 8x8/16x16 sheets.  The loop itself is
    sequential and all randomness flows from [seed] through one
    explicit RNG; model-based controllers may fan searches onto the
    eval's pool, whose results are bit-identical at any pool size — so
    a run is deterministic under a fixed seed regardless of
    [FOSC_DOMAINS]. *)

type config = {
  control_interval : float;  (** Seconds between decisions (default 20 ms). *)
  duration : float;  (** Simulated seconds (default 8). *)
  substeps : int;
      (** Fine plant steps per control interval measuring the true peak
          (default 4). *)
  seed : int;  (** RNG seed for every noise source (default 0). *)
  sensor_noise : float;
      (** Gaussian sensor noise, degrees C std (default 0). *)
  sensor_quant : float;
      (** Sensor quantization step, degrees C; [0] disables (default). *)
  power_noise : float;
      (** Relative std of multiplicative power noise (default 0);
          noisy powers are clamped at 0. *)
  phases : Workload.Phases.phase list option;
      (** Markov phase model driving per-core utilization; [None]
          (default) runs every core fully utilized. *)
  observer_gain : float option;
      (** Filter sensed temperatures through an {!Observer} with this
          gain before the controller sees them; [None] (default) hands
          the controller the raw sensors. *)
}

val default : config

type stats = {
  throughput : float;
      (** Useful work per core per second: each core delivers the
          minimum of its commanded speed and its workload demand. *)
  peak : float;  (** True continuous peak over the run, degrees C. *)
  mean_temp : float;
      (** Mean of the per-substep hottest-core samples, degrees C. *)
  violations : int;  (** Substep samples strictly above [t_max]. *)
  switches : int;  (** Per-core DVFS transitions commanded. *)
  epochs : int;  (** Control epochs executed. *)
}

(** [run ?config eval controller] initializes [controller] against
    [eval]'s platform and backend, runs the closed loop from the
    ambient state and returns its stats.  The controller's initial
    decision (from ambient sensors, before any epoch runs) sets the
    opening levels and counts no switches.  Raises [Invalid_argument]
    on non-positive intervals/durations, negative noise levels,
    [substeps < 1], an observer gain outside (0, 1] — or whatever the
    controller's own init validation raises. *)
val run : ?config:config -> Core.Eval.t -> Controller.t -> stats
