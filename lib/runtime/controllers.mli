(** The online-controller registry — reactive classics, offline-replay
    adapters and model-predictive arms, all as first-class
    {!Controller.t} values ({!Core.Registry}'s counterpart for the
    closed-loop world).

    {!all} is what the [race] experiment and the CLI iterate; the
    constructors below expose the tuning knobs.  Every controller is
    deterministic given its observations, so a {!Loop} run is
    reproducible under a fixed seed at any pool size. *)

(** [threshold ?guard ()] steps each core down within [guard] degrees of
    [T_max] and back up below [2 * guard] (ondemand-style hysteresis;
    default guard 2 C).  Raises [Invalid_argument] on a non-positive
    guard. *)
val threshold : ?guard:float -> unit -> Controller.t

(** [pid ?kp ?ki ?guard ()] drives one chip-wide continuous voltage
    command from a PI law on the hottest sensor's distance to
    [T_max - guard], quantized down to the grid (defaults
    [kp = 0.05], [ki = 0.005], [guard = 1]). *)
val pid : ?kp:float -> ?ki:float -> ?guard:float -> unit -> Controller.t

(** [static fixed] holds the per-core level indices [fixed] forever.
    Arity and range are validated against the bound platform when the
    loop initializes the controller — [Invalid_argument] with a clear
    message instead of an [Array.blit] bounds error mid-run. *)
val static : int array -> Controller.t

(** [integral ?guard ?gain ?gain_min ?gain_max ()] is per-core
    adjustable-gain integral control (Rao et al.): each core integrates
    its error toward [T_max - guard] with a gain that grows 1.5x while
    the error sign persists and halves when it flips, clamped to
    [[gain_min, gain_max]] (defaults 0.02 in [0.002, 0.2] V/K,
    guard 1 C). *)
val integral :
  ?guard:float -> ?gain:float -> ?gain_min:float -> ?gain_max:float -> unit ->
  Controller.t

(** [tsp ?guard ()] tracks the thermal-safe power budget
    ({!Core.Tsp.solve}, solved once at init through the shared eval):
    each epoch every core picks the fastest level whose
    utilization-scaled power fits the uniform budget, shedding one
    level when its sensor is within [guard] (default 0.5 C) of
    [T_max]. *)
val tsp : ?guard:float -> unit -> Controller.t

(** [offline ?name policy] replays any {!Core.Solver} outcome open-loop:
    the policy is solved once at init on the shared eval; schedules are
    sampled mid-epoch (switch points on the control grid replay
    exactly; finer schedules alias), constant assignments are quantized
    once and held. *)
val offline : ?name:string -> Core.Solver.t -> Controller.t

(** [offline_schedule ?name s] replays a fixed schedule [s] open-loop,
    bypassing any solve — the parity-test harness.  Raises
    [Invalid_argument] at init when [s]'s arity differs from the
    platform's. *)
val offline_schedule : ?name:string -> Sched.Schedule.t -> Controller.t

(** [offline_ao ()] replays an epoch-aligned AO solve (base period of
    40 control intervals, m capped at 8, so every mini-period spans at
    least 5 epochs) — the registered offline arm of the race. *)
val offline_ao : unit -> Controller.t

(** [rh_ao ?resolve_every ?ratio_gain ()] is receding-horizon AO:
    re-solve the epoch-aligned AO plan every [resolve_every] epochs
    (default 50) through the shared eval — a cache replay after the
    first solve — and each epoch trim every core's duty ratio by
    [ratio_gain] (default 0.05 per kelvin) times the observed-minus-
    predicted end-of-period temperature error. *)
val rh_ao : ?resolve_every:int -> ?ratio_gain:float -> unit -> Controller.t

(** [all ()] is the registered race line-up: [threshold], [pid],
    [integral], [tsp], [offline-ao], [rh-ao] (fresh closures each
    call — controllers carry mutable state once initialized). *)
val all : unit -> Controller.t list

(** [names ()] lists the registered controller names, registry order. *)
val names : unit -> string list

(** [find name] / [find_exn name] look a registered controller up by
    name; [find_exn] raises [Invalid_argument] naming the known set. *)
val find : string -> Controller.t option

val find_exn : string -> Controller.t
