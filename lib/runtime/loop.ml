module Vec = Linalg.Vec
module B = Thermal.Backend

type config = {
  control_interval : float;
  duration : float;
  substeps : int;
  seed : int;
  sensor_noise : float;
  sensor_quant : float;
  power_noise : float;
  phases : Workload.Phases.phase list option;
  observer_gain : float option;
}

let default =
  {
    control_interval = 20e-3;
    duration = 8.;
    substeps = 4;
    seed = 0;
    sensor_noise = 0.;
    sensor_quant = 0.;
    power_noise = 0.;
    phases = None;
    observer_gain = None;
  }

type stats = {
  throughput : float;
  peak : float;
  mean_temp : float;
  violations : int;
  switches : int;
  epochs : int;
}

(* Box-Muller Gaussian sample; consumes no randomness when sigma <= 0,
   so scenario streams only diverge where their noise models do. *)
let gaussian rng sigma =
  if sigma <= 0. then 0.
  else
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    let u2 = Random.State.float rng 1. in
    sigma *. sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let validate c =
  if c.control_interval <= 0. then invalid_arg "Loop.run: non-positive control interval";
  if c.duration <= 0. then invalid_arg "Loop.run: non-positive duration";
  if c.substeps < 1 then invalid_arg "Loop.run: substeps < 1";
  if c.sensor_noise < 0. then invalid_arg "Loop.run: negative sensor noise";
  if c.sensor_quant < 0. then invalid_arg "Loop.run: negative sensor quantization";
  if c.power_noise < 0. then invalid_arg "Loop.run: negative power noise";
  match c.observer_gain with
  | Some g when g <= 0. || g > 1. -> invalid_arg "Loop.run: observer gain outside (0, 1]"
  | _ -> ()

let run ?(config = default) eval (controller : Controller.t) =
  validate config;
  let p = Core.Eval.platform eval in
  let b = Core.Eval.backend eval in
  let n = b.B.n_cores in
  let pm = p.Core.Platform.power in
  let t_max = p.Core.Platform.t_max in
  let levels = Power.Vf.levels p.Core.Platform.levels in
  let top = Array.length levels - 1 in
  let v_top = levels.(top) in
  let dt = config.control_interval in
  let env = { Controller.platform = p; levels; dt; eval } in
  let decide = controller.Controller.init env in
  let epochs = Int.max 1 (int_of_float (Float.round (config.duration /. dt))) in
  let rng = Random.State.make [| config.seed |] in
  (* Phase-driven utilization is pre-sampled so the workload a seed
     generates does not depend on how the sensing draws interleave. *)
  let utilization =
    match config.phases with
    | None -> None
    | Some phases ->
        Some (Workload.Phases.sample_utilization rng ~phases ~n_cores:n ~epochs ~dt)
  in
  let full = Array.make n 1. in
  let state = ref (b.B.ambient_state ()) in
  let scratch = ref (b.B.ambient_state ()) in
  let level = Array.make n top in
  let next = Array.make n 0 in
  let psi = Array.make n 0. in
  let psi_cmd = Array.make n 0. in
  let observer = Option.map (fun gain -> Observer.create ~gain b ~dt) config.observer_gain in
  let estimate = match observer with Some o -> Observer.initial o | None -> [||] in
  let sub_dt = dt /. float_of_int config.substeps in
  let work = ref 0. in
  let peak = ref neg_infinity in
  let temp_sum = ref 0. in
  let violations = ref 0 and switches = ref 0 in
  let clamp a =
    Array.iteri (fun i l -> if l < 0 then a.(i) <- 0 else if l > top then a.(i) <- top) a
  in
  (* Sensor model: truth + Gaussian noise, snapped to the quantization
     grid when one is configured. *)
  let measure () =
    Array.map
      (fun t ->
        let t = t +. gaussian rng config.sensor_noise in
        if config.sensor_quant > 0. then
          Float.round (t /. config.sensor_quant) *. config.sensor_quant
        else t)
      (b.B.core_temps !state)
  in
  (* Initial decision from the ambient state: controllers choose their
     opening levels (not counted as switches). *)
  decide { Controller.epoch = 0; time = 0.; temps = measure (); utilization = full } level;
  clamp level;
  for e = 0 to epochs - 1 do
    let u = match utilization with None -> full | Some us -> us.(e) in
    for i = 0 to n - 1 do
      psi_cmd.(i) <- u.(i) *. Power.Power_model.psi pm levels.(level.(i));
      psi.(i) <- Float.max 0. (psi_cmd.(i) *. (1. +. gaussian rng config.power_noise))
    done;
    for _ = 1 to config.substeps do
      b.B.step_into ~dt:sub_dt ~state:!state ~psi ~dst:!scratch;
      let tmp = !state in
      state := !scratch;
      scratch := tmp;
      let t = b.B.max_core_temp !state in
      peak := Float.max !peak t;
      temp_sum := !temp_sum +. t;
      if t > t_max +. 1e-9 then incr violations
    done;
    (* Useful work: a core delivers at most its commanded speed and at
       most the speed its workload demands — over-clocking an idle core
       heats the chip without adding throughput. *)
    for i = 0 to n - 1 do
      work := !work +. (Float.min levels.(level.(i)) (u.(i) *. v_top) *. dt)
    done;
    if e < epochs - 1 then begin
      (* Sense at the epoch boundary and decide the next command.  The
         observer predicts with the commanded (noise-free) powers —
         mismatch against the noisy plant is exactly what it filters. *)
      let measured = measure () in
      let sensed =
        match observer with
        | None -> measured
        | Some o ->
            Observer.update_into o ~estimate ~psi:psi_cmd ~measured;
            Observer.core_estimates o estimate
      in
      Array.blit level 0 next 0 n;
      decide
        {
          Controller.epoch = e + 1;
          time = float_of_int (e + 1) *. dt;
          temps = sensed;
          utilization = u;
        }
        next;
      clamp next;
      for i = 0 to n - 1 do
        if next.(i) <> level.(i) then incr switches
      done;
      Array.blit next 0 level 0 n
    end
  done;
  {
    throughput = !work /. (config.duration *. float_of_int n);
    peak = !peak;
    mean_temp = !temp_sum /. float_of_int (epochs * config.substeps);
    violations = !violations;
    switches = !switches;
    epochs;
  }
