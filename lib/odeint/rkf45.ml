module Vec = Linalg.Vec

type stats = { steps : int; rejected : int }

(* Fehlberg tableau. *)
let a2 = 1. /. 4.

let a3 = 3. /. 8.
and b31 = 3. /. 32.
and b32 = 9. /. 32.

let a4 = 12. /. 13.
and b41 = 1932. /. 2197.
and b42 = -7200. /. 2197.
and b43 = 7296. /. 2197.

let a5 = 1.
and b51 = 439. /. 216.
and b52 = -8.
and b53 = 3680. /. 513.
and b54 = -845. /. 4104.

let a6 = 1. /. 2.
and b61 = -8. /. 27.
and b62 = 2.
and b63 = -3544. /. 2565.
and b64 = 1859. /. 4104.
and b65 = -11. /. 40.

(* 5th-order solution weights. *)
let c1 = 16. /. 135.
and c3 = 6656. /. 12825.
and c4 = 28561. /. 56430.
and c5 = -9. /. 50.
and c6 = 2. /. 55.

(* Error weights = 5th-order minus 4th-order weights. *)
let e1 = c1 -. (25. /. 216.)
and e3 = c3 -. (1408. /. 2565.)
and e4 = c4 -. (2197. /. 4104.)
and e5 = c5 -. (-1. /. 5.)
and e6 = c6

let combine y terms =
  let n = Array.length y in
  Array.init n (fun i ->
      List.fold_left (fun acc (w, (k : Vec.t)) -> acc +. (w *. k.(i))) y.(i) terms)

let attempt f t y h =
  let k1 = f t y in
  let k2 = f (t +. (a2 *. h)) (combine y [ (h *. a2, k1) ]) in
  let k3 = f (t +. (a3 *. h)) (combine y [ (h *. b31, k1); (h *. b32, k2) ]) in
  let k4 =
    f (t +. (a4 *. h)) (combine y [ (h *. b41, k1); (h *. b42, k2); (h *. b43, k3) ])
  in
  let k5 =
    f (t +. (a5 *. h))
      (combine y [ (h *. b51, k1); (h *. b52, k2); (h *. b53, k3); (h *. b54, k4) ])
  in
  let k6 =
    f
      (t +. (a6 *. h))
      (combine y
         [ (h *. b61, k1); (h *. b62, k2); (h *. b63, k3); (h *. b64, k4); (h *. b65, k5) ])
  in
  let y5 =
    combine y [ (h *. c1, k1); (h *. c3, k3); (h *. c4, k4); (h *. c5, k5); (h *. c6, k6) ]
  in
  let err =
    Vec.norm_inf
      (combine (Vec.zeros (Array.length y))
         [ (h *. e1, k1); (h *. e3, k3); (h *. e4, k4); (h *. e5, k5); (h *. e6, k6) ])
  in
  (y5, err)

let integrate f ~t0 ~t1 ~tol ?h0 ?(h_min = 1e-12) y0 =
  if t1 < t0 then invalid_arg "Rkf45.integrate: t1 < t0";
  if tol <= 0. then invalid_arg "Rkf45.integrate: tol <= 0";
  let h0 = match h0 with Some h -> h | None -> (t1 -. t0) /. 100. in
  let steps = ref 0 and rejected = ref 0 in
  let rec go t y h =
    if t >= t1 -. 1e-15 then y
    else begin
      let h = Float.min h (t1 -. t) in
      if h < h_min then failwith "Rkf45.integrate: step size underflow";
      let y5, err = attempt f t y h in
      if err <= tol || h <= h_min *. 2. then begin
        incr steps;
        (* Standard step-size growth with a safety factor, capped at 4x. *)
        let grow =
          if Float.equal err 0. then 4.
          else Float.min 4. (0.9 *. Float.pow (tol /. err) 0.2)
        in
        go (t +. h) y5 (h *. Float.max grow 0.1)
      end
      else begin
        incr rejected;
        let shrink = Float.max 0.1 (0.9 *. Float.pow (tol /. err) 0.25) in
        go t y (h *. shrink)
      end
    end
  in
  let y = go t0 y0 h0 in
  (y, { steps = !steps; rejected = !rejected })
