type policy_row = {
  cores : int;
  levels : int;
  t_max : float;
  lns : float;
  exs : float;
  ao : float;
  pco : float;
  lns_time : float;
  exs_time : float;
  ao_time : float;
  pco_time : float;
  exs_evaluated : int;
}

let run_comparison ?(with_pco = true) ?eval ~cores ~levels ~t_max () =
  let ev =
    match eval with
    | Some ev -> ev
    | None -> Core.Eval.create (Workload.Configs.platform ~cores ~levels ~t_max)
  in
  List.filter_map
    (fun (p : Core.Solver.t) ->
      if (not with_pco) && p.Core.Solver.name = "pco" then None
      else Some (p.Core.Solver.name, Core.Solver.run p ev))
    (Core.Registry.comparison ())

let run_policies ?(with_pco = true) ?eval ~cores ~levels ~t_max () =
  let outcomes = run_comparison ~with_pco ?eval ~cores ~levels ~t_max () in
  let get name =
    match List.assoc_opt name outcomes with
    | Some o -> o
    | None ->
        invalid_arg
          (Printf.sprintf "Exp_common.run_policies: %S missing from the registry" name)
  in
  let lns = get "lns" and exs = get "exs" and ao = get "ao" in
  let pco = if with_pco then get "pco" else ao in
  {
    cores;
    levels;
    t_max;
    lns = lns.Core.Solver.throughput;
    exs = exs.Core.Solver.throughput;
    ao = ao.Core.Solver.throughput;
    pco = pco.Core.Solver.throughput;
    lns_time = lns.Core.Solver.wall_time;
    exs_time = exs.Core.Solver.wall_time;
    ao_time = ao.Core.Solver.wall_time;
    pco_time = pco.Core.Solver.wall_time;
    exs_evaluated = exs.Core.Solver.evaluations;
  }

let improvement a b = if b <= 0. then 0. else (a -. b) /. b *. 100.

let section title =
  let rule = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" rule title rule
