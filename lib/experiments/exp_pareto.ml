type point = {
  t_max : float;
  throughput : float;
  energy_per_work : float;
  avg_power : float;
  peak : float;
}

type result = { cores : int; points : point list }

let thresholds = List.init 11 (fun i -> 45. +. (2.5 *. float_of_int i))

let run ?(cores = 3) () =
  let points =
    Util.Pool.map
      (fun t_max ->
        let p = Workload.Configs.platform ~cores ~levels:5 ~t_max in
        let ao = Core.Ao.solve p in
        let breakdown =
          Sched.Energy.per_period p.Core.Platform.model p.Core.Platform.power
            ao.Core.Ao.schedule
        in
        {
          t_max;
          throughput = ao.Core.Ao.throughput;
          energy_per_work =
            Sched.Energy.per_work p.Core.Platform.model p.Core.Platform.power
              ~tau:p.Core.Platform.tau ao.Core.Ao.schedule;
          avg_power = Sched.Energy.average_power breakdown;
          peak = ao.Core.Ao.peak;
        })
      thresholds
  in
  { cores; points }

let print r =
  Exp_common.section
    (Printf.sprintf "Throughput / energy frontier under AO (%d cores, 5 levels)" r.cores);
  let t = Util.Table.create [ "T_max"; "THR"; "J per work"; "chip W"; "peak C" ] in
  List.iter
    (fun pt ->
      Util.Table.add_float_row t
        ~label:(Printf.sprintf "%.1f" pt.t_max)
        [ pt.throughput; pt.energy_per_work; pt.avg_power; pt.peak ])
    r.points;
  Util.Table.print t;
  let first = List.hd r.points and last = List.nth r.points (List.length r.points - 1) in
  Printf.printf
    "raising T_max %.0f -> %.0f C buys %+.0f%% throughput at %+.0f%% energy per unit work\n"
    first.t_max last.t_max
    (Exp_common.improvement last.throughput first.throughput)
    (Exp_common.improvement last.energy_per_work first.energy_per_work)

let to_csv path r =
  Util.Csv.write path
    ~header:[ "t_max"; "throughput"; "energy_per_work"; "avg_power"; "peak" ]
    (List.map
       (fun pt -> [ pt.t_max; pt.throughput; pt.energy_per_work; pt.avg_power; pt.peak ])
       r.points)

let to_svg r =
  Util.Svg_plot.line_chart
    ~title:(Printf.sprintf "Throughput/energy frontier (%d cores)" r.cores)
    ~x_label:"throughput" ~y_label:"energy per unit work (J)"
    [
      {
        Util.Svg_plot.label = "AO frontier";
        points = List.map (fun pt -> (pt.throughput, pt.energy_per_work)) r.points;
      };
    ]
