type result = {
  ideal_voltages : float array;
  ideal_throughput : float;
  lns_throughput : float;
  exs_voltages : float array;
  exs_throughput : float;
  table2_ratios : float array;
  naive_peak : float;
  table3 : (float * float array * float) list;
}

let v_low = 0.6
let v_high = 1.3

let run () =
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  (* One context for every evaluation below: the three adjustment runs
     and the naive-peak read revisit overlapping candidate schedules, so
     sharing the memo tables replays them instead of re-solving. *)
  let eval = Core.Eval.create p in
  let ideal = Core.Ideal.solve p in
  let lns = Core.Lns.solve p in
  let exs = Core.Exs.solve p in
  let n = Core.Platform.n_cores p in
  let ratios =
    Array.map (fun v -> (v -. v_low) /. (v_high -. v_low)) ideal.Core.Ideal.voltages
  in
  let config period high_time =
    {
      Core.Tpt.period;
      v_low = Array.make n v_low;
      v_high = Array.make n v_high;
      high_time;
      offset = Array.make n 0.;
    }
  in
  let naive = config 0.02 (Array.map (fun r -> r *. 0.02) ratios) in
  let naive_peak = Core.Tpt.peak p ~eval naive in
  let table3 =
    List.map
      (fun period ->
        let c0 = config period (Array.map (fun r -> r *. period) ratios) in
        let adjusted, _ =
          Core.Tpt.adjust_to_constraint p ~eval ~t_unit:(period /. 200.) c0
        in
        let ratios' =
          Array.map (fun h -> h /. period) adjusted.Core.Tpt.high_time
        in
        (period, ratios', Core.Tpt.throughput p adjusted))
      [ 0.02; 0.01; 0.005 ]
  in
  {
    ideal_voltages = ideal.Core.Ideal.voltages;
    ideal_throughput = ideal.Core.Ideal.throughput;
    lns_throughput = lns.Core.Lns.throughput;
    exs_voltages = exs.Core.Exs.voltages;
    exs_throughput = exs.Core.Exs.throughput;
    table2_ratios = ratios;
    naive_peak;
    table3;
  }

let print r =
  Exp_common.section "Section III motivation + Tables II/III (3x1, T_max = 65C, modes {0.6, 1.3}V)";
  Printf.printf "ideal continuous voltages: [%s]  performance %.4f\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") r.ideal_voltages)))
    r.ideal_throughput;
  Printf.printf "  (paper: [1.2085; 1.1748; 1.2085], performance 1.1972)\n";
  Printf.printf "LNS performance: %.4f   (paper: 0.6)\n" r.lns_throughput;
  Printf.printf "EXS voltages: [%s]  performance %.4f   (paper: [0.6;0.6;1.3] -> 0.83)\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.2f") r.exs_voltages)))
    r.exs_throughput;
  let t2 = Util.Table.create [ "ratio"; "core1"; "core2"; "core3" ] in
  Util.Table.add_float_row t2 ~label:"ratio(v_H)" (Array.to_list r.table2_ratios);
  Util.Table.add_float_row t2 ~label:"ratio(v_L)"
    (Array.to_list (Array.map (fun x -> 1. -. x) r.table2_ratios));
  Printf.printf "\nTable II - throughput-preserving execution-time ratios:\n";
  Util.Table.print t2;
  Printf.printf
    "\nPeak of the unadjusted two-speed schedule (t_p = 20ms): %.2f C (paper: 79.69 C — violates T_max)\n"
    r.naive_peak;
  let t3 =
    Util.Table.create [ "t_p"; "core1 r(v_H)"; "core2 r(v_H)"; "core3 r(v_H)"; "THR" ]
  in
  List.iter
    (fun (period, ratios, thr) ->
      Util.Table.add_float_row t3
        ~label:(Printf.sprintf "%.0fms" (period *. 1e3))
        (Array.to_list ratios @ [ thr ]))
    r.table3;
  Printf.printf "\nTable III - constraint-meeting ratios by period:\n";
  Util.Table.print t3;
  Printf.printf "  (paper at t_p=20/10/5ms: THR 0.8725 / 0.8991 / 0.9182)\n"
