type point = {
  lateral_scale : float;
  worst_violation : float;
  mean_violation : float;
}

type result = { points : point list; schedules_per_point : int }

let run ?(schedules = 40) ?(seed = 5) () =
  let fp = Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  let pm = Power.Power_model.default in
  let levels = Power.Vf.table_iv 5 in
  let points =
    Util.Pool.map
      (fun lateral_scale ->
        let model = Thermal.Hotspot.core_level ~lateral_scale fp in
        let violations =
          Array.init schedules (fun k ->
              let rng = Random.State.make [| seed; k |] in
              let s =
                Workload.Random_sched.step_up rng ~n_cores:3 ~period:0.6
                  ~max_intervals:4 ~levels
              in
              let profile = Sched.Peak.profile model pm s in
              let end_peak = Thermal.Matex.end_of_period_peak model profile in
              let true_peak =
                Thermal.Matex.peak_refined model ~samples_per_segment:48 profile
              in
              Float.max 0. (true_peak -. end_peak))
        in
        {
          lateral_scale;
          worst_violation = Array.fold_left Float.max 0. violations;
          mean_violation = Util.Stats.mean violations;
        })
      [ 0.; 0.5; 1.; 2.; 4. ]
  in
  { points; schedules_per_point = schedules }

let print r =
  Exp_common.section
    "Sensitivity - Theorem 1 exceedance vs lateral coupling strength";
  Printf.printf "(%d random 3-core step-up schedules per point)\n" r.schedules_per_point;
  let t = Util.Table.create [ "lateral scale"; "worst exceedance C"; "mean C" ] in
  List.iter
    (fun p ->
      Util.Table.add_float_row t
        ~label:(Printf.sprintf "%.1fx" p.lateral_scale)
        [ p.worst_violation; p.mean_violation ])
    r.points;
  Util.Table.print t;
  let zero = List.hd r.points in
  Printf.printf
    "at zero coupling Theorem 1 is exact (worst %.2e C); the exceedance is a\n\
     coupling artefact, not a numerical one.\n"
    zero.worst_violation

let to_csv path r =
  Util.Csv.write path
    ~header:[ "lateral_scale"; "worst_violation"; "mean_violation" ]
    (List.map (fun p -> [ p.lateral_scale; p.worst_violation; p.mean_violation ]) r.points)
