type result = {
  three_mode_peak : float;
  two_mode_peak : float;
  ambient_sweep : (float * float) list;
      (* (ambient C, AO throughput) on the 3x1 2-level 65C platform *)
  ao_m1_throughput : float;
  ao_full_throughput : float;
  ao_full_m : int;
  neighbour_peak : float;
  wide_peak : float;
  exs_incremental_time : float;
  exs_naive_time : float;
  exs_pruned_nodes : int;
  exs_flat_nodes : int;
  refine_gain : float;
  bisect_throughput : float;
  bisect_time : float;
  greedy_throughput : float;
  greedy_time : float;
  tsp_throughput : float;
  tsp_exs_throughput : float;
  tsp_ao_throughput : float;
}

(* Equal-work THREE-mode step-up schedule: splits the work across
   v_low -> v_mid -> v_high with the middle third of the period at v_mid
   and the outer ratios chosen to preserve the target average. *)
let three_mode_peak_of (p : Core.Platform.t) ~v_low ~v_mid ~v_high ~target =
  let n = Core.Platform.n_cores p in
  let period = 0.02 in
  let mid_len = period /. 3. in
  (* remaining work to split between low and high over 2/3 period *)
  let rest = (target *. period) -. (v_mid *. mid_len) in
  let span = period -. mid_len in
  (* rest = l_low * v_low + (span - l_low) * v_high *)
  let l_low = ((v_high *. span) -. rest) /. (v_high -. v_low) in
  let l_high = span -. l_low in
  assert (l_low > 0. && l_high > 0.);
  let core =
    [
      { Sched.Schedule.duration = l_low; voltage = v_low };
      { Sched.Schedule.duration = mid_len; voltage = v_mid };
      { Sched.Schedule.duration = l_high; voltage = v_high };
    ]
  in
  let s = Sched.Schedule.make ~period (Array.init n (fun _ -> core)) in
  Sched.Peak.of_step_up p.Core.Platform.model p.Core.Platform.power s

let two_mode_peak (p : Core.Platform.t) ~v_low ~v_high ~target =
  (* Equal-throughput two-mode step-up schedule on every core, 20 ms
     period, ratio from Eq. (11). *)
  let n = Core.Platform.n_cores p in
  let period = 0.02 in
  let ratio = (target -. v_low) /. (v_high -. v_low) in
  let s =
    Sched.Schedule.two_mode ~period
      ~low:(Array.make n v_low)
      ~high:(Array.make n v_high)
      ~high_ratio:(Array.make n ratio)
  in
  Sched.Peak.of_step_up p.Core.Platform.model p.Core.Platform.power s

let run () =
  (* 1. m-oscillation ablation on the 3x1 / 2-level / 65 C platform. *)
  let p3 = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  let ao_m1 = Core.Ao.solve ~m_cap:1 p3 in
  let ao_full = Core.Ao.solve p3 in
  (* 2. Neighbouring vs wide mode pair on the 5-level set: target speed
     0.9 V sits between 0.8 and 1.0. *)
  let p5 = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65. in
  let neighbour_peak = two_mode_peak p5 ~v_low:0.8 ~v_high:1.0 ~target:0.9 in
  let wide_peak = two_mode_peak p5 ~v_low:0.6 ~v_high:1.3 ~target:0.9 in
  (* 2b. Three modes vs the two neighbours at equal work (Theorem 4's
     design choice, with a third mode actually exercised). *)
  let three_mode_peak =
    three_mode_peak_of p5 ~v_low:0.6 ~v_mid:0.9 ~v_high:1.3 ~target:0.9
  in
  let two_mode_peak_t4 = two_mode_peak p5 ~v_low:0.8 ~v_high:1.0 ~target:0.9 in
  (* 2c. Ambient robustness: AO across ambient temperatures. *)
  let ambient_sweep =
    Util.Pool.map
      (fun ambient ->
        let p =
          Core.Platform.grid ~ambient ~rows:1 ~cols:3
            ~levels:(Power.Vf.table_iv 2) ~t_max:65. ()
        in
        (ambient, (Core.Ao.solve p).Core.Ao.throughput))
      [ 25.; 30.; 35.; 40.; 45. ]
  in
  (* 3. EXS evaluation strategy, 6 cores x 4 levels = 4096 combos. *)
  let p6 = Workload.Configs.platform ~cores:6 ~levels:4 ~t_max:65. in
  let exs_incremental_time = Util.Timer.time_only (fun () -> Core.Exs.solve p6) in
  let exs_naive_time = Util.Timer.time_only (fun () -> Core.Exs.solve_naive p6) in
  (* 3b. Branch-and-bound pruning on the largest search space. *)
  let p95 = Workload.Configs.platform ~cores:9 ~levels:5 ~t_max:65. in
  let exs_flat = Core.Exs.solve p95 in
  let exs_pruned = Core.Exs.solve_pruned p95 in
  assert (Float.abs (exs_flat.Core.Exs.throughput -. exs_pruned.Core.Exs.throughput) < 1e-9);
  (* 4. Ideal refinement on a clamping platform. *)
  (* 70 C: edge cores clamp at 1.3 V but the middle does not, so the
     refinement has headroom to redistribute. *)
  let p_hot = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:70. in
  let plain = Core.Ideal.solve ~refine:false p_hot in
  let refined = Core.Ideal.solve ~refine:true p_hot in
  (* 4b. Ratio adjustment strategies on a 6-core platform. *)
  let p6b = Workload.Configs.platform ~cores:6 ~levels:2 ~t_max:60. in
  let greedy, greedy_time =
    Util.Timer.time_it (fun () -> Core.Ao.solve ~adjust:`Greedy p6b)
  in
  let bisect, bisect_time =
    Util.Timer.time_it (fun () -> Core.Ao.solve ~adjust:`Bisection p6b)
  in
  assert (greedy.Core.Ao.peak <= 60. +. 1e-6 && bisect.Core.Ao.peak <= 60. +. 1e-6);
  (* 5. TSP vs the search-based policies on the largest platform. *)
  let p9 = Workload.Configs.platform ~cores:9 ~levels:5 ~t_max:55. in
  let tsp = Core.Tsp.solve p9 in
  let tsp_exs = Core.Exs.solve p9 in
  let tsp_ao = Core.Ao.solve p9 in
  {
    three_mode_peak;
    two_mode_peak = two_mode_peak_t4;
    ambient_sweep;
    ao_m1_throughput = ao_m1.Core.Ao.throughput;
    ao_full_throughput = ao_full.Core.Ao.throughput;
    ao_full_m = ao_full.Core.Ao.m;
    neighbour_peak;
    wide_peak;
    exs_incremental_time;
    exs_naive_time;
    exs_pruned_nodes = exs_pruned.Core.Exs.evaluated;
    exs_flat_nodes = exs_flat.Core.Exs.evaluated;
    refine_gain = refined.Core.Ideal.throughput -. plain.Core.Ideal.throughput;
    bisect_throughput = bisect.Core.Ao.throughput;
    bisect_time;
    greedy_throughput = greedy.Core.Ao.throughput;
    greedy_time;
    tsp_throughput = tsp.Core.Tsp.throughput;
    tsp_exs_throughput = tsp_exs.Core.Exs.throughput;
    tsp_ao_throughput = tsp_ao.Core.Ao.throughput;
  }

let print r =
  Exp_common.section "Ablations";
  Printf.printf "AO with m forced to 1:   THR %.4f\n" r.ao_m1_throughput;
  Printf.printf "AO with free m (m = %d): THR %.4f  (oscillation gain %+.1f%%)\n"
    r.ao_full_m r.ao_full_throughput
    (Exp_common.improvement r.ao_full_throughput r.ao_m1_throughput);
  Printf.printf
    "equal-work two-mode peak, neighbouring pair (0.8/1.0V): %.2f C | wide pair (0.6/1.3V): %.2f C (Theorem 4: neighbours cooler)\n"
    r.neighbour_peak r.wide_peak;
  Printf.printf
    "EXS 6 cores x 4 levels: incremental %.4fs vs Algorithm-1-verbatim %.4fs (x%.1f)\n"
    r.exs_incremental_time r.exs_naive_time
    (r.exs_naive_time /. Float.max 1e-9 r.exs_incremental_time);
  Printf.printf
    "EXS branch-and-bound (9 cores x 5 levels): %d of %d nodes visited (%.2f%%), same optimum\n"
    r.exs_pruned_nodes r.exs_flat_nodes
    (100. *. float_of_int r.exs_pruned_nodes /. float_of_int r.exs_flat_nodes);
  Printf.printf "ideal-solve clamp refinement gain (3x1 at 70 C): %+.4f THR\n"
    r.refine_gain;
  Printf.printf
    "equal-work THREE-mode (0.6/0.9/1.3V) peak %.2f C vs two neighbours (0.8/1.0V) %.2f C - more modes do NOT help (Theorem 4)\n"
    r.three_mode_peak r.two_mode_peak;
  Printf.printf "AO throughput vs ambient (3x1, 65 C): %s\n"
    (String.concat "  "
       (List.map (fun (a, thr) -> Printf.sprintf "%.0fC->%.3f" a thr) r.ambient_sweep));
  Printf.printf
    "AO ratio adjustment (6 cores, 2 levels, 60 C): greedy TPT %.4f THR in %.3fs | bisection %.4f THR in %.3fs\n"
    r.greedy_throughput r.greedy_time r.bisect_throughput r.bisect_time;
  Printf.printf
    "TSP budgeting vs search (9 cores, 5 levels, 55 C): TSP %.4f | EXS %.4f | AO %.4f\n"
    r.tsp_throughput r.tsp_exs_throughput r.tsp_ao_throughput
