type row = {
  label : string;
  cores : int;
  lns : float;
  exs : float;
  ao : float;
  ideal_spread : float;
}

type result = { t_max : float; rows : row list }

let study label platform =
  let ideal = Core.Ideal.solve platform in
  let v = ideal.Core.Ideal.voltages in
  {
    label;
    cores = Core.Platform.n_cores platform;
    lns = (Core.Lns.solve platform).Core.Lns.throughput;
    exs = (Core.Exs.solve platform).Core.Exs.throughput;
    ao = (Core.Ao.solve platform).Core.Ao.throughput;
    ideal_spread = Linalg.Vec.max v -. Linalg.Vec.min v;
  }

let run ?(t_max = 60.) () =
  let levels = 5 in
  let planar4 =
    Core.Platform.grid ~rows:2 ~cols:2 ~levels:(Power.Vf.table_iv levels) ~t_max ()
  in
  let planar8 =
    Core.Platform.grid ~rows:2 ~cols:4 ~levels:(Power.Vf.table_iv levels) ~t_max ()
  in
  let stacked8 = Workload.Configs.platform_3d ~layers:2 ~rows:2 ~cols:2 ~levels ~t_max in
  let rows =
    Util.Pool.map
      (fun (label, p) -> study label p)
      [
        ("2x2 planar", planar4);
        ("2x4 planar", planar8);
        ("2x(2x2) stacked", stacked8);
      ]
  in
  { t_max; rows }

let print r =
  Exp_common.section
    (Printf.sprintf "3D stacking study (T_max = %.0f C, 5 levels)" r.t_max);
  let t =
    Util.Table.create
      [ "platform"; "cores"; "LNS"; "EXS"; "AO"; "AO vs EXS %"; "ideal spread V" ]
  in
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          row.label;
          string_of_int row.cores;
          Printf.sprintf "%.4f" row.lns;
          Printf.sprintf "%.4f" row.exs;
          Printf.sprintf "%.4f" row.ao;
          Printf.sprintf "%+.1f" (Exp_common.improvement row.ao row.exs);
          Printf.sprintf "%.3f" row.ideal_spread;
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "stacking the same 8 cores costs throughput across the board and raises the\n\
     per-core speed heterogeneity; oscillation recovers part of the loss.\n"

let to_csv path r =
  Util.Csv.write_labelled path
    ~header:[ "platform"; "cores"; "lns"; "exs"; "ao"; "ideal_spread" ]
    (List.map
       (fun row ->
         (row.label, [ float_of_int row.cores; row.lns; row.exs; row.ao; row.ideal_spread ]))
       r.rows)
