(* The race: every registered online controller against the offline
   schedules, across sensing/workload scenarios, on one shared eval.

   Scenarios stress exactly what separates closed-loop from open-loop
   control: multiplicative power noise (the plant runs hotter/cooler
   than any plan), Markov workload phases (demand the offline solve
   never saw), and coarse noisy sensors (how much decision quality
   survives a 2 C quantizer, with an observer filtering both noisy
   scenarios).  One eval context is shared across every cell, so the
   offline and receding-horizon AO arms replay each other's searches
   from the memo tables. *)

type cell = {
  controller : string;
  scenario : string;
  stats : Runtime.Loop.stats;
}

type result = {
  cells : cell list;
  controllers : string list;
  scenarios : string list;
  duration : float;
  backend : string;
  cores : int;
}

let scenarios ~seed ~duration =
  let base = { Runtime.Loop.default with Runtime.Loop.seed; duration } in
  [
    ("clean", base);
    ( "noisy-power",
      {
        base with
        Runtime.Loop.power_noise = 0.10;
        sensor_noise = 0.5;
        observer_gain = Some 0.3;
      } );
    ("phases", { base with Runtime.Loop.phases = Some Workload.Phases.default_phases });
    ( "quantized",
      {
        base with
        Runtime.Loop.sensor_noise = 1.0;
        sensor_quant = 2.0;
        observer_gain = Some 0.3;
      } );
  ]

let run ?(cores = 3) ?(levels = 5) ?(t_max = 65.) ?(duration = 6.) ?(seed = 42)
    ?(backend = Core.Eval.Dense) () =
  let platform = Workload.Configs.platform ~cores ~levels ~t_max in
  let eval = Core.Eval.create ~backend platform in
  let controllers = Runtime.Controllers.all () in
  let scen = scenarios ~seed ~duration in
  let cells =
    List.concat_map
      (fun (c : Runtime.Controller.t) ->
        List.map
          (fun (sname, config) ->
            {
              controller = c.Runtime.Controller.name;
              scenario = sname;
              stats = Runtime.Loop.run ~config eval c;
            })
          scen)
      controllers
  in
  {
    cells;
    controllers = List.map (fun (c : Runtime.Controller.t) -> c.Runtime.Controller.name) controllers;
    scenarios = List.map fst scen;
    duration;
    backend = (Core.Eval.backend eval).Thermal.Backend.name;
    cores;
  }

let find r ~controller ~scenario =
  List.find
    (fun c -> String.equal c.controller controller && String.equal c.scenario scenario)
    r.cells

let print r =
  Exp_common.section
    (Printf.sprintf
       "Controller race: %d cores, %s plant, %.1f s per cell (throughput / peak C / violations)"
       r.cores r.backend r.duration);
  let t = Util.Table.create ("controller" :: r.scenarios) in
  List.iter
    (fun ctl ->
      Util.Table.add_row t
        (ctl
        :: List.map
             (fun s ->
               let c = find r ~controller:ctl ~scenario:s in
               Printf.sprintf "%.3f / %.1f / %d" c.stats.Runtime.Loop.throughput
                 c.stats.Runtime.Loop.peak c.stats.Runtime.Loop.violations)
             r.scenarios))
    r.controllers;
  Util.Table.print t

let to_csv path r =
  Util.Csv.write_labelled path
    ~header:
      [ "controller/scenario"; "throughput"; "peak"; "mean_temp"; "violations"; "switches"; "epochs" ]
    (List.map
       (fun c ->
         ( c.controller ^ "/" ^ c.scenario,
           [
             c.stats.Runtime.Loop.throughput;
             c.stats.Runtime.Loop.peak;
             c.stats.Runtime.Loop.mean_temp;
             float_of_int c.stats.Runtime.Loop.violations;
             float_of_int c.stats.Runtime.Loop.switches;
             float_of_int c.stats.Runtime.Loop.epochs;
           ] ))
       r.cells)

let to_svg r =
  let xs = List.mapi (fun i s -> (float_of_int i, s)) r.scenarios in
  Util.Svg_plot.line_chart
    ~title:
      (Printf.sprintf "Controller race: throughput by scenario (%d cores, %s)"
         r.cores r.backend)
    ~x_label:
      (Printf.sprintf "scenario (%s)"
         (String.concat ", " (List.map (fun (i, s) -> Printf.sprintf "%g=%s" i s) xs)))
    ~y_label:"throughput"
    (List.map
       (fun ctl ->
         {
           Util.Svg_plot.label = ctl;
           points =
             List.map
               (fun (x, s) ->
                 (x, (find r ~controller:ctl ~scenario:s).stats.Runtime.Loop.throughput))
               xs;
         })
       r.controllers)

let markdown r =
  let b = Buffer.create 1024 in
  Buffer.add_string b ("| controller | " ^ String.concat " | " r.scenarios ^ " |\n");
  Buffer.add_string b
    ("|---|" ^ String.concat "|" (List.map (fun _ -> "---") r.scenarios) ^ "|\n");
  List.iter
    (fun ctl ->
      Buffer.add_string b (Printf.sprintf "| `%s` |" ctl);
      List.iter
        (fun s ->
          let c = find r ~controller:ctl ~scenario:s in
          Buffer.add_string b
            (Printf.sprintf " %.3f (%.1f C, %d viol) |"
               c.stats.Runtime.Loop.throughput c.stats.Runtime.Loop.peak
               c.stats.Runtime.Loop.violations))
        r.scenarios;
      Buffer.add_char b '\n')
    r.controllers;
  Buffer.contents b
