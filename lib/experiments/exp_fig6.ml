type result = {
  rows : Exp_common.policy_row list;
  avg_improvement_over_exs : (int * float) list;
}

let run ?(t_max = 55.) ?(with_pco = true) () =
  let configs =
    List.concat_map
      (fun cores -> List.map (fun levels -> (cores, levels)) Workload.Configs.level_counts)
      Workload.Configs.core_counts
  in
  let rows =
    Util.Pool.map
      (fun (cores, levels) -> Exp_common.run_policies ~with_pco ~cores ~levels ~t_max ())
      configs
  in
  let avg_improvement_over_exs =
    List.map
      (fun levels ->
        let imps =
          List.filter_map
            (fun (r : Exp_common.policy_row) ->
              if r.levels = levels && r.exs > 0. then
                Some (Exp_common.improvement r.ao r.exs)
              else None)
            rows
        in
        ( levels,
          if imps = [] then 0. else Util.Stats.mean (Array.of_list imps) ))
      Workload.Configs.level_counts
  in
  { rows; avg_improvement_over_exs }

let table_of_rows rows =
  let t =
    Util.Table.create [ "cores"; "levels"; "LNS"; "EXS"; "AO"; "PCO"; "AO vs EXS %" ]
  in
  List.iter
    (fun (r : Exp_common.policy_row) ->
      Util.Table.add_row t
        [
          string_of_int r.cores;
          string_of_int r.levels;
          Printf.sprintf "%.4f" r.lns;
          Printf.sprintf "%.4f" r.exs;
          Printf.sprintf "%.4f" r.ao;
          Printf.sprintf "%.4f" r.pco;
          Printf.sprintf "%+.1f" (Exp_common.improvement r.ao r.exs);
        ])
    rows;
  t

let print r =
  Exp_common.section "Fig. 6 - throughput vs cores x voltage levels (T_max = 55 C)";
  Util.Table.print (table_of_rows r.rows);
  Printf.printf "\naverage AO improvement over EXS by level count:\n";
  List.iter
    (fun (levels, imp) -> Printf.printf "  %d levels: %+.1f%%\n" levels imp)
    r.avg_improvement_over_exs;
  Printf.printf "  (paper: +55.2%% at 2 levels shrinking to +24.8%% at 5 levels)\n"

let to_csv path r =
  Util.Csv.write path
    ~header:[ "cores"; "levels"; "lns"; "exs"; "ao"; "pco" ]
    (List.map
       (fun (r : Exp_common.policy_row) ->
         [ float_of_int r.cores; float_of_int r.levels; r.lns; r.exs; r.ao; r.pco ])
       r.rows)
