(** Shared plumbing for the experiment reproductions: run the paper's
    comparison policies from {!Core.Registry} on one platform and
    collect throughputs, peaks and wall times. *)

type policy_row = {
  cores : int;
  levels : int;
  t_max : float;
  lns : float;  (** LNS throughput. *)
  exs : float;  (** EXS throughput. *)
  ao : float;  (** AO throughput (net of transition stalls). *)
  pco : float;  (** PCO throughput. *)
  lns_time : float;  (** Wall-clock seconds. *)
  exs_time : float;
  ao_time : float;
  pco_time : float;
  exs_evaluated : int;  (** Nodes/combinations EXS examined. *)
}

(** [run_comparison ?with_pco ?eval ~cores ~levels ~t_max ()] runs every
    {!Core.Registry.comparison} policy on the paper's standard platform
    through one shared evaluation context, returning [(name, outcome)]
    in registry order.  [eval] substitutes an existing context (whose
    platform must match the requested shape) so repeated sweeps reuse
    its memo tables; by default a fresh context is created — within
    which PCO already replays AO's search from cache.  With
    [with_pco = false] (for the biggest sweeps) PCO is skipped. *)
val run_comparison :
  ?with_pco:bool ->
  ?eval:Core.Eval.t ->
  cores:int ->
  levels:int ->
  t_max:float ->
  unit ->
  (string * Core.Solver.outcome) list

(** [run_policies ?with_pco ?eval ~cores ~levels ~t_max ()] is
    {!run_comparison} flattened into the fixed row the figures consume.
    With [with_pco = false] the PCO columns copy AO's. *)
val run_policies :
  ?with_pco:bool ->
  ?eval:Core.Eval.t ->
  cores:int ->
  levels:int ->
  t_max:float ->
  unit ->
  policy_row

(** [improvement a b] is [(a - b) / b * 100.], the percentage by which
    [a] exceeds [b] (0 when [b] is not positive). *)
val improvement : float -> float -> float

(** [section title] prints the banner used between experiment outputs. *)
val section : string -> unit
