type result = { rows : Exp_common.policy_row list }

let run ?(with_pco = true) () =
  let configs =
    List.concat_map
      (fun cores -> List.map (fun t_max -> (cores, t_max)) Workload.Configs.t_max_sweep)
      Workload.Configs.core_counts
  in
  let rows =
    Util.Pool.map
      (fun (cores, t_max) -> Exp_common.run_policies ~with_pco ~cores ~levels:2 ~t_max ())
      configs
  in
  { rows }

let print r =
  Exp_common.section "Fig. 7 - throughput vs T_max (2 voltage levels)";
  let t = Util.Table.create [ "cores"; "T_max"; "LNS"; "EXS"; "AO"; "PCO" ] in
  List.iter
    (fun (row : Exp_common.policy_row) ->
      Util.Table.add_row t
        [
          string_of_int row.cores;
          Printf.sprintf "%.0f" row.t_max;
          Printf.sprintf "%.4f" row.lns;
          Printf.sprintf "%.4f" row.exs;
          Printf.sprintf "%.4f" row.ao;
          Printf.sprintf "%.4f" row.pco;
        ])
    r.rows;
  Util.Table.print t;
  (* Monotonicity summary per policy. *)
  let monotone project =
    List.for_all
      (fun cores ->
        let series =
          List.filter (fun (x : Exp_common.policy_row) -> x.cores = cores) r.rows
        in
        let rec check = function
          | a :: (b :: _ as rest) -> project b >= project a -. 1e-9 && check rest
          | [ _ ] | [] -> true
        in
        check series)
      Workload.Configs.core_counts
  in
  Printf.printf "\nthroughput monotone in T_max:  LNS %b  EXS %b  AO %b\n"
    (monotone (fun (x : Exp_common.policy_row) -> x.lns))
    (monotone (fun (x : Exp_common.policy_row) -> x.exs))
    (monotone (fun (x : Exp_common.policy_row) -> x.ao))

let to_csv path r =
  Util.Csv.write path
    ~header:[ "cores"; "t_max"; "lns"; "exs"; "ao"; "pco" ]
    (List.map
       (fun (row : Exp_common.policy_row) ->
         [ float_of_int row.cores; row.t_max; row.lns; row.exs; row.ao; row.pco ])
       r.rows)
