(** The controller race: every registered online controller
    ({!Runtime.Controllers.all}) across sensing/workload scenarios on a
    shared evaluation context — the online-versus-offline comparison
    the offline policy tables cannot make.

    Four scenarios: [clean] (perfect sensors, steady full load),
    [noisy-power] (10% multiplicative power noise + 0.5 C sensor noise,
    observer-filtered), [phases] (Markov workload phases), [quantized]
    (1 C sensor noise snapped to a 2 C grid, observer-filtered). *)

type cell = {
  controller : string;
  scenario : string;
  stats : Runtime.Loop.stats;
}

type result = {
  cells : cell list;  (** One per controller x scenario. *)
  controllers : string list;  (** Registry order. *)
  scenarios : string list;  (** Run order. *)
  duration : float;  (** Simulated seconds per cell. *)
  backend : string;  (** Plant backend name. *)
  cores : int;
}

(** [scenarios ~seed ~duration] is the named scenario list and its loop
    configurations. *)
val scenarios : seed:int -> duration:float -> (string * Runtime.Loop.config) list

(** [run ?cores ?levels ?t_max ?duration ?seed ?backend ()] races every
    registered controller through every scenario (defaults: 3 cores, 5
    levels, [t_max] 65 C, 6 s per cell, seed 42, dense plant).
    Deterministic under a fixed seed at any pool size. *)
val run :
  ?cores:int ->
  ?levels:int ->
  ?t_max:float ->
  ?duration:float ->
  ?seed:int ->
  ?backend:Core.Eval.backend_kind ->
  unit ->
  result

(** [find r ~controller ~scenario] is the matching cell.
    @raise Not_found when absent. *)
val find : result -> controller:string -> scenario:string -> cell

(** [print r] renders the throughput/peak/violations table. *)
val print : result -> unit

(** [to_csv path r] dumps one labelled row per cell. *)
val to_csv : string -> result -> unit

(** [to_svg r] is a throughput-by-scenario line chart, one series per
    controller. *)
val to_svg : result -> string

(** [markdown r] is the README comparison table. *)
val markdown : result -> string
