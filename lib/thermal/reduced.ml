module Vec = Linalg.Vec
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

type t = {
  engine : Sparse_model.t;
  mu : Vec.t;  (* retained decay rates, ascending, all positive *)
  basis : Vec.t array;  (* orthonormal Ritz vectors, symmetrized space *)
}

let default_modes mu =
  (* Retain everything within one decade of the slowest rate (index 0:
     rates come ascending), floored at 4 modes, capped at the number of
     rates actually computed. *)
  let n = Vec.dim mu in
  let slowest = Float.abs mu.(0) in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if Float.abs mu.(j) <= 10. *. slowest then incr count
  done;
  Stdlib.min n (Stdlib.max 4 !count)

let of_engine ?modes engine =
  let n = Sparse_model.n_nodes engine in
  (match modes with
  | Some k when k < 1 || k > n ->
      invalid_arg "Reduced.build: modes outside [1, n_nodes]"
  | _ -> ());
  (* With no explicit mode count, probe a few rates beyond the decade
     heuristic's floor and let [default_modes] truncate. *)
  let probe = match modes with Some k -> k | None -> Stdlib.min n 12 in
  let m = Sparse_model.operator engine in
  let precond = Krylov.jacobi (Sparse.diagonal m) in
  let solve b = Krylov.cg ~precond (Sparse.spmv m) b in
  (* Shift-invert Lanczos: O(probe * nnz) per CG iteration, never a
     dense matrix — this is where the O(n^3) dense eigensolve drops to
     O(k * nnz). *)
  let pairs = Krylov.smallest_eigs ~tol:1e-12 ~n ~k:probe solve in
  let mu_all = Array.map fst pairs in
  let k = match modes with Some k -> k | None -> default_modes mu_all in
  {
    engine;
    mu = Array.sub mu_all 0 k;
    basis = Array.init k (fun j -> snd pairs.(j));
  }

let build ?modes model = of_engine ?modes (Sparse_model.of_model model)
let n_modes r = Vec.dim r.mu
let engine r = r.engine
let decay_rates r = Vec.copy r.mu
let steady_core_temps r psi = Sparse_model.steady_core_temps r.engine psi
let ambient_state r = Vec.zeros (n_modes r)

(* Retained modes' equilibrium coordinates: the basis is orthonormal and
   M w_j = mu_j w_j, so w_j . y_inf = (w_j . b) / mu_j with no solve. *)
let z_inf r psi =
  let b = Sparse_model.heat_input r.engine psi in
  Array.mapi (fun j w -> Vec.dot w b /. r.mu.(j)) r.basis

let step r ~dt ~state ~psi =
  if Vec.dim state <> n_modes r then invalid_arg "Reduced.step: bad state arity";
  let zi = z_inf r psi in
  Array.mapi
    (fun j z -> zi.(j) +. (Float.exp (-.r.mu.(j) *. dt) *. (z -. zi.(j))))
    state

let core_temps r ~state ~psi =
  if Vec.dim state <> n_modes r then
    invalid_arg "Reduced.core_temps: bad state arity";
  (* y(t) = y_inf + sum_j w_j (z_j - z_inf_j): exact at DC (the CG
     steady solve), modal for the retained dynamics, quasi-static for
     the truncated fast modes. *)
  let y = Sparse_model.steady_state r.engine psi in
  let zi = z_inf r psi in
  Array.iteri
    (fun j w ->
      let dz = state.(j) -. zi.(j) in
      for i = 0 to Vec.dim y - 1 do
        y.(i) <- y.(i) +. (dz *. w.(i))
      done)
    r.basis;
  Sparse_model.core_temps r.engine y
