module Vec = Linalg.Vec
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

(* Per-domain scratch for the streaming screening evaluators below:
   retained-mode drive accumulation and core-temperature reads, all
   allocation-free.  Pool workers each see their own copy via
   Domain.DLS, so concurrent candidate scores never share partial
   sums. *)
type rom_scratch = {
  zd : float array;  (* accumulated per-mode periodic drive *)
  z_eq : float array;  (* current segment's retained equilibrium *)
  z_last : float array;  (* last-fed segment's retained equilibrium *)
  th : float array;  (* last-fed segment's static core temps (rel.) *)
  z_cur : float array;  (* scan cursor at segment boundaries *)
  z_smp : float array;  (* scan sub-step walker *)
}

type t = {
  engine : Sparse_model.t;
  mu : Vec.t;  (* retained decay rates, ascending, all positive *)
  basis : Vec.t array;  (* orthonormal Ritz vectors, symmetrized space *)
  cw : float array array;
  (* row j: c^{-1/2}_k w_j(core_k) per core k — one table serving both
     the heat-input projection (w_j . b = sum_k cw_jk (psi_k + beta
     T_amb)) and the core-temperature read of mode j's contribution. *)
  beta_tamb : float;
  response : Sparse_response.t Lazy.t;
      [@fosc.forced_before_parallel
        "callers must run [prepare] on the submitting domain before handing \
         the reduction to pool workers (Core.Eval.screening does); workers \
         then only ever read the already-forced cell"]
  (* The static (quasi-steady) tier of the screening evaluators: forced
     on first ROM evaluation, shared per engine via
     [Sparse_response.make]. *)
  rom_scratch_key : rom_scratch Domain.DLS.key;
}

let default_modes mu =
  (* Retain everything within one decade of the slowest rate (index 0:
     rates come ascending), floored at 4 modes, capped at the number of
     rates actually computed. *)
  let n = Vec.dim mu in
  let slowest = Float.abs mu.(0) in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if Float.abs mu.(j) <= 10. *. slowest then incr count
  done;
  Stdlib.min n (Stdlib.max 4 !count)

let of_engine ?modes engine =
  let n = Sparse_model.n_nodes engine in
  (match modes with
  | Some k when k < 1 || k > n ->
      invalid_arg "Reduced.build: modes outside [1, n_nodes]"
  | _ -> ());
  (* With no explicit mode count, probe a few rates beyond the decade
     heuristic's floor and let [default_modes] truncate. *)
  let probe = match modes with Some k -> k | None -> Stdlib.min n 12 in
  let m = Sparse_model.operator engine in
  let precond = Krylov.jacobi (Sparse.diagonal m) in
  let solve b = Krylov.cg ~precond (Sparse.spmv m) b in
  (* Shift-invert Lanczos: O(probe * nnz) per CG iteration, never a
     dense matrix — this is where the O(n^3) dense eigensolve drops to
     O(k * nnz). *)
  let pairs = Krylov.smallest_eigs ~tol:1e-12 ~n ~k:probe solve in
  let mu_all = Array.map fst pairs in
  let k = match modes with Some k -> k | None -> default_modes mu_all in
  let spec = Sparse_model.spec engine in
  let nc = Array.length spec.Spec.core_nodes in
  let basis = Array.init k (fun j -> snd pairs.(j)) in
  {
    engine;
    mu = Array.sub mu_all 0 k;
    basis;
    cw =
      Array.map
        (fun w ->
          Array.map
            (fun node -> w.(node) /. sqrt spec.Spec.capacitance.(node))
            spec.Spec.core_nodes)
        basis;
    beta_tamb = spec.Spec.leak_beta *. spec.Spec.ambient;
    response = lazy (Sparse_response.make engine);
    rom_scratch_key =
      Domain.DLS.new_key (fun () ->
          {
            zd = Array.make k 0.;
            z_eq = Array.make k 0.;
            z_last = Array.make k 0.;
            th = Array.make nc 0.;
            z_cur = Array.make k 0.;
            z_smp = Array.make k 0.;
          });
  }

let build ?modes model = of_engine ?modes (Sparse_model.of_model model)

(* OCaml's [Lazy] is not domain-safe: concurrent forcing raises
   [Lazy.RacyLazy].  Callers fanning rom evaluators across a pool must
   force the static tier on the submitting domain first — workers then
   only read the already-forced value, which is safe. *)
let prepare r = ignore (Lazy.force r.response : Sparse_response.t)
let n_modes r = Vec.dim r.mu
let engine r = r.engine
let decay_rates r = Vec.copy r.mu
let steady_core_temps r psi = Sparse_model.steady_core_temps r.engine psi
let ambient_state r = Vec.zeros (n_modes r)

(* Retained modes' equilibrium coordinates: the basis is orthonormal and
   M w_j = mu_j w_j, so w_j . y_inf = (w_j . b) / mu_j with no solve. *)
let z_inf r psi =
  let b = Sparse_model.heat_input r.engine psi in
  Array.mapi (fun j w -> Vec.dot w b /. r.mu.(j)) r.basis

let step r ~dt ~state ~psi =
  if Vec.dim state <> n_modes r then invalid_arg "Reduced.step: bad state arity";
  let zi = z_inf r psi in
  Array.mapi
    (fun j z -> zi.(j) +. (Float.exp (-.r.mu.(j) *. dt) *. (z -. zi.(j))))
    state

(* ------------------------------------------- streaming ROM screening *)

(* The screening tier: score a candidate's end-of-period stable peak on
   the retained modes plus the quasi-static correction, in O(n_cores^2
   + k n_cores) per candidate with zero Krylov work.  Mirrors
   [Modal.stable_begin]/[stable_feed]/[stable_solve]: per-mode drives
   fold through per-domain scratch and the fixed point is the per-mode
   closed form z*_j = d_j / (1 - e^{-mu_j T_p}).  The score is
   approximate (truncated fast modes are treated quasi-statically);
   screened searches must re-verify survivors with an exact sparse
   solve — see Core.Screen. *)

let check_rom_psi r psi =
  if Vec.dim psi <> Array.length (r.cw.(0)) then
    invalid_arg "Reduced: power vector arity differs from the engine's core count"

(* Retained equilibrium coordinates into [dst]: z_inf_j = (w_j . b) /
   mu_j, with the projection read off the core-row table (b vanishes
   away from core nodes). *)
let rom_z_inf_into r dst psi =
  for j = 0 to n_modes r - 1 do
    let row = r.cw.(j) in
    let acc = ref 0. in
    for i = 0 to Array.length row - 1 do
      acc := !acc +. ((psi.(i) +. r.beta_tamb) *. Array.unsafe_get row i)
    done;
    dst.(j) <- !acc /. r.mu.(j)
  done

let rom_begin r =
  let s = Domain.DLS.get r.rom_scratch_key in
  Array.fill s.zd 0 (n_modes r) 0.

let rom_feed r ~duration ~psi =
  if duration <= 0. then invalid_arg "Reduced.rom_feed: non-positive duration";
  check_rom_psi r psi;
  let s = Domain.DLS.get r.rom_scratch_key in
  rom_z_inf_into r s.z_eq psi;
  for j = 0 to n_modes r - 1 do
    let g = -.Float.expm1 (-.r.mu.(j) *. duration) in
    s.zd.(j) <- ((1. -. g) *. s.zd.(j)) +. (g *. s.z_eq.(j))
  done;
  (* The static tier remembers the last-fed segment: at the period
     boundary the truncated fast modes sit at the equilibrium of the
     input that drove them there. *)
  Sparse_response.steady_core_into (Lazy.force r.response) s.th psi;
  Array.blit s.z_eq 0 s.z_last 0 (n_modes r)

let rom_solve r ~t_p =
  if not (t_p > 0.) then invalid_arg "Reduced.rom_solve: non-positive period";
  let s = Domain.DLS.get r.rom_scratch_key in
  let k = n_modes r in
  (* z*_j in place of the drive (it is consumed here), then read the
     superposed peak: static part + retained-mode deviation. *)
  for j = 0 to k - 1 do
    s.zd.(j) <- s.zd.(j) /. -.Float.expm1 (-.r.mu.(j) *. t_p)
  done;
  let nc = Array.length r.cw.(0) in
  let best = ref neg_infinity in
  for c = 0 to nc - 1 do
    let acc = ref s.th.(c) in
    for j = 0 to k - 1 do
      acc := !acc +. (Array.unsafe_get r.cw.(j) c *. (s.zd.(j) -. s.z_last.(j)))
    done;
    if !acc > !best then best := !acc
  done;
  !best +. Sparse_model.ambient r.engine

let rom_stable_peak r profile =
  (match profile with [] -> invalid_arg "Reduced.rom_stable_peak: empty profile" | _ -> ());
  rom_begin r;
  List.iter
    (fun (seg : Matex.segment) -> rom_feed r ~duration:seg.duration ~psi:seg.psi)
    profile;
  rom_solve r ~t_p:(Matex.period profile)

let rom_peak_scan r ?(samples_per_segment = 32) profile =
  (match profile with [] -> invalid_arg "Reduced.rom_peak_scan: empty profile" | _ -> ());
  if samples_per_segment < 1 then
    invalid_arg "Reduced.rom_peak_scan: non-positive sample count";
  let resp = Lazy.force r.response in
  let k = n_modes r in
  let s = Domain.DLS.get r.rom_scratch_key in
  rom_begin r;
  List.iter
    (fun (seg : Matex.segment) -> rom_feed r ~duration:seg.duration ~psi:seg.psi)
    profile;
  let t_p = Matex.period profile in
  (* Stable retained state at the period start (periodicity makes it
     also the end, so the boundary state is covered by the last
     segment's final sample). *)
  for j = 0 to k - 1 do
    s.z_cur.(j) <- s.zd.(j) /. -.Float.expm1 (-.r.mu.(j) *. t_p)
  done;
  let nc = Array.length r.cw.(0) in
  let best = ref neg_infinity in
  List.iter
    (fun (seg : Matex.segment) ->
      rom_z_inf_into r s.z_eq seg.psi;
      Sparse_response.steady_core_into resp s.th seg.psi;
      let dt = seg.duration /. float_of_int samples_per_segment in
      Array.blit s.z_cur 0 s.z_smp 0 k;
      for _ = 1 to samples_per_segment do
        for j = 0 to k - 1 do
          let g = -.Float.expm1 (-.r.mu.(j) *. dt) in
          s.z_smp.(j) <- ((1. -. g) *. s.z_smp.(j)) +. (g *. s.z_eq.(j))
        done;
        for c = 0 to nc - 1 do
          let acc = ref s.th.(c) in
          for j = 0 to k - 1 do
            acc :=
              !acc +. (Array.unsafe_get r.cw.(j) c *. (s.z_smp.(j) -. s.z_eq.(j)))
          done;
          if !acc > !best then best := !acc
        done
      done;
      (* Exact full-duration boundary step from the segment start. *)
      for j = 0 to k - 1 do
        let g = -.Float.expm1 (-.r.mu.(j) *. seg.duration) in
        s.z_cur.(j) <- ((1. -. g) *. s.z_cur.(j)) +. (g *. s.z_eq.(j))
      done)
    profile;
  !best +. Sparse_model.ambient r.engine

let core_temps r ~state ~psi =
  if Vec.dim state <> n_modes r then
    invalid_arg "Reduced.core_temps: bad state arity";
  (* y(t) = y_inf + sum_j w_j (z_j - z_inf_j): exact at DC (the CG
     steady solve), modal for the retained dynamics, quasi-static for
     the truncated fast modes. *)
  let y = Sparse_model.steady_state r.engine psi in
  let zi = z_inf r psi in
  Array.iteri
    (fun j w ->
      let dz = state.(j) -. zi.(j) in
      for i = 0 to Vec.dim y - 1 do
        y.(i) <- y.(i) +. (dz *. w.(i))
      done)
    r.basis;
  Sparse_model.core_temps r.engine y
