type t = {
  name : string;
  n_nodes : int;
  n_cores : int;
  ambient : float;
  ambient_state : unit -> Linalg.Vec.t;
  step : dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t;
  core_temps : Linalg.Vec.t -> Linalg.Vec.t;
  max_core_temp : Linalg.Vec.t -> float;
  steady_core_temps : Linalg.Vec.t -> Linalg.Vec.t;
  steady_peak : Linalg.Vec.t -> float;
  stable_core_temps : Matex.profile -> Linalg.Vec.t;
  stable_peak : Matex.profile -> float;
  peak_scan : samples_per_segment:int -> Matex.profile -> float;
  peak_refined : samples_per_segment:int -> tol:float -> Matex.profile -> float;
}

let of_model model =
  let eng = Modal.make model in
  {
    name = "dense-modal";
    n_nodes = Model.n_nodes model;
    n_cores = Model.n_cores model;
    ambient = Model.ambient model;
    ambient_state = (fun () -> Modal.ambient_state eng);
    step = (fun ~dt ~state ~psi -> Modal.step eng ~dt ~z:state ~psi);
    core_temps = Modal.core_temps eng;
    max_core_temp = Modal.max_core_temp eng;
    steady_core_temps = (fun psi -> Modal.core_temps eng (Modal.z_inf eng psi));
    steady_peak = Modal.steady_peak eng;
    stable_core_temps = Matex.stable_core_temps ~engine:eng model;
    stable_peak = Matex.end_of_period_peak ~engine:eng model;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Matex.peak_scan ~engine:eng model ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Matex.peak_refined ~engine:eng model ~samples_per_segment ~tol profile);
  }

let of_sparse eng =
  {
    name = "sparse-krylov";
    n_nodes = Sparse_model.n_nodes eng;
    n_cores = Sparse_model.n_cores eng;
    ambient = Sparse_model.ambient eng;
    ambient_state = (fun () -> Sparse_model.ambient_state eng);
    step = Sparse_model.step eng;
    core_temps = Sparse_model.core_temps eng;
    max_core_temp = Sparse_model.max_core_temp eng;
    steady_core_temps = Sparse_model.steady_core_temps eng;
    steady_peak = Sparse_model.steady_peak eng;
    stable_core_temps = Sparse_model.stable_core_temps eng;
    stable_peak = Sparse_model.end_of_period_peak eng;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Sparse_model.peak_scan eng ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Sparse_model.peak_refined eng ~samples_per_segment ~tol profile);
  }

let of_response resp =
  let eng = Sparse_response.engine resp in
  {
    name = "sparse-response";
    n_nodes = Sparse_response.n_nodes resp;
    n_cores = Sparse_response.n_cores resp;
    ambient = Sparse_response.ambient resp;
    ambient_state = (fun () -> Sparse_model.ambient_state eng);
    step = Sparse_response.step resp;
    core_temps = Sparse_model.core_temps eng;
    max_core_temp = Sparse_model.max_core_temp eng;
    steady_core_temps = Sparse_response.steady_core_temps resp;
    steady_peak = Sparse_response.steady_peak resp;
    stable_core_temps = Sparse_response.stable_core_temps resp;
    stable_peak = Sparse_response.end_of_period_peak resp;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Sparse_response.peak_scan resp ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Sparse_response.peak_refined resp ~samples_per_segment ~tol profile);
  }

let sparse_of_spec ?pool spec = of_sparse (Sparse_model.of_spec ?pool spec)
let sparse_of_model ?pool model = of_sparse (Sparse_model.of_model ?pool model)
let dense_of_spec spec = of_model (Spec.to_model spec)
