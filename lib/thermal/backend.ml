type t = {
  name : string;
  n_nodes : int;
  n_cores : int;
  ambient : float;
  ambient_state : unit -> Linalg.Vec.t;
  step : dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t;
  step_into :
    dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> dst:Linalg.Vec.t -> unit;
  correct_cores : state:Linalg.Vec.t -> deltas:Linalg.Vec.t -> unit;
  core_temps : Linalg.Vec.t -> Linalg.Vec.t;
  max_core_temp : Linalg.Vec.t -> float;
  steady_core_temps : Linalg.Vec.t -> Linalg.Vec.t;
  steady_peak : Linalg.Vec.t -> float;
  stable_core_temps : Matex.profile -> Linalg.Vec.t;
  stable_peak : Matex.profile -> float;
  peak_scan : samples_per_segment:int -> Matex.profile -> float;
  peak_refined : samples_per_segment:int -> tol:float -> Matex.profile -> float;
}

let of_model model =
  let eng = Modal.make model in
  let n = Model.n_nodes model in
  (* Modal images of a +1 K bump at each core node, solved eagerly at
     wrap time (one matvec per core; [Lazy] is not domain-safe).  Reading
     the corrected state back through the core rows of W recovers the
     bump exactly: core_rows . W^{-1} e_node = e_core. *)
  let core_cols =
    Array.map
      (fun node ->
        let e = Linalg.Vec.zeros n in
        e.(node) <- 1.;
        Modal.to_modal eng e)
      (Model.core_nodes model)
  in
  {
    name = "dense-modal";
    n_nodes = n;
    n_cores = Model.n_cores model;
    ambient = Model.ambient model;
    ambient_state = (fun () -> Modal.ambient_state eng);
    step = (fun ~dt ~state ~psi -> Modal.step eng ~dt ~z:state ~psi);
    step_into = (fun ~dt ~state ~psi ~dst -> Modal.step_into eng ~dt ~z:state ~psi ~dst);
    correct_cores =
      (fun ~state ~deltas ->
        if Linalg.Vec.dim deltas <> Array.length core_cols then
          invalid_arg "Backend.correct_cores: deltas arity differs from core count";
        if Linalg.Vec.dim state <> n then
          invalid_arg "Backend.correct_cores: state arity mismatch";
        Array.iteri
          (fun k col ->
            let d = deltas.(k) in
            if not (Float.equal d 0.) then
              for j = 0 to n - 1 do
                state.(j) <- state.(j) +. (d *. col.(j))
              done)
          core_cols);
    core_temps = Modal.core_temps eng;
    max_core_temp = Modal.max_core_temp eng;
    steady_core_temps = (fun psi -> Modal.core_temps eng (Modal.z_inf eng psi));
    steady_peak = Modal.steady_peak eng;
    stable_core_temps = Matex.stable_core_temps ~engine:eng model;
    stable_peak = Matex.end_of_period_peak ~engine:eng model;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Matex.peak_scan ~engine:eng model ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Matex.peak_refined ~engine:eng model ~samples_per_segment ~tol profile);
  }

let of_sparse eng =
  {
    name = "sparse-krylov";
    n_nodes = Sparse_model.n_nodes eng;
    n_cores = Sparse_model.n_cores eng;
    ambient = Sparse_model.ambient eng;
    ambient_state = (fun () -> Sparse_model.ambient_state eng);
    step = Sparse_model.step eng;
    step_into =
      (fun ~dt ~state ~psi ~dst ->
        let next = Sparse_model.step eng ~dt ~state ~psi in
        Array.blit next 0 dst 0 (Sparse_model.n_nodes eng));
    correct_cores = (fun ~state ~deltas -> Sparse_model.correct_cores eng ~state ~deltas);
    core_temps = Sparse_model.core_temps eng;
    max_core_temp = Sparse_model.max_core_temp eng;
    steady_core_temps = Sparse_model.steady_core_temps eng;
    steady_peak = Sparse_model.steady_peak eng;
    stable_core_temps = Sparse_model.stable_core_temps eng;
    stable_peak = Sparse_model.end_of_period_peak eng;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Sparse_model.peak_scan eng ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Sparse_model.peak_refined eng ~samples_per_segment ~tol profile);
  }

let of_response resp =
  let eng = Sparse_response.engine resp in
  {
    name = "sparse-response";
    n_nodes = Sparse_response.n_nodes resp;
    n_cores = Sparse_response.n_cores resp;
    ambient = Sparse_response.ambient resp;
    ambient_state = (fun () -> Sparse_model.ambient_state eng);
    step = Sparse_response.step resp;
    step_into =
      (fun ~dt ~state ~psi ~dst ->
        let next = Sparse_response.step resp ~dt ~state ~psi in
        Array.blit next 0 dst 0 (Sparse_model.n_nodes eng));
    correct_cores = (fun ~state ~deltas -> Sparse_model.correct_cores eng ~state ~deltas);
    core_temps = Sparse_model.core_temps eng;
    max_core_temp = Sparse_model.max_core_temp eng;
    steady_core_temps = Sparse_response.steady_core_temps resp;
    steady_peak = Sparse_response.steady_peak resp;
    stable_core_temps = Sparse_response.stable_core_temps resp;
    stable_peak = Sparse_response.end_of_period_peak resp;
    peak_scan =
      (fun ~samples_per_segment profile ->
        Sparse_response.peak_scan resp ~samples_per_segment profile);
    peak_refined =
      (fun ~samples_per_segment ~tol profile ->
        Sparse_response.peak_refined resp ~samples_per_segment ~tol profile);
  }

let sparse_of_spec ?pool spec = of_sparse (Sparse_model.of_spec ?pool spec)
let sparse_of_model ?pool model = of_sparse (Sparse_model.of_model ?pool model)
let dense_of_spec spec = of_model (Spec.to_model spec)
