module Mat = Linalg.Mat
module Vec = Linalg.Vec

type segment = { duration : float; psi : Vec.t }
type profile = segment list

let period profile = List.fold_left (fun acc s -> acc +. s.duration) 0. profile

let validate model profile =
  if profile = [] then invalid_arg "Matex: empty profile";
  List.iteri
    (fun q s ->
      if s.duration <= 0. then
        invalid_arg (Printf.sprintf "Matex: segment %d has non-positive duration" q);
      if Vec.dim s.psi <> Model.n_cores model then
        invalid_arg
          (Printf.sprintf "Matex: segment %d power vector has arity %d, expected %d" q
             (Vec.dim s.psi) (Model.n_cores model)))
    profile

let simulate model ~theta0 profile =
  validate model profile;
  let states = Array.make (List.length profile + 1) theta0 in
  List.iteri
    (fun q s ->
      states.(q + 1) <- Model.step model ~dt:s.duration ~theta:states.(q) ~psi:s.psi)
    profile;
  states

(* ---------------------------------------------------- modal hot path *)

(* Everything below runs in modal coordinates on the per-model cached
   response engine: equilibria by unit-response superposition (zero LU
   solves per candidate), decay factors from the engine's per-duration
   table, and O(n) element-wise work per sample.  Model.step stays the
   reference implementation (see {!Reference}). *)

(* Resolve the engine: callers that already hold the platform's cached
   engine (Core.Eval) pass it straight through; a mismatched engine is a
   caller bug, not something to paper over silently. *)
let engine_for ?engine model =
  match engine with
  | Some e ->
      if Modal.model e != model then
        invalid_arg "Matex: engine belongs to a different model";
      e
  | None -> Modal.make model

let segments_of eng profile =
  List.map (fun s -> Modal.segment eng ~duration:s.duration ~psi:s.psi) profile

(* Modal stable status and per-boundary modal states (first and last are
   the period boundary, like the theta-space version). *)
let stable_z_boundaries eng segs =
  let n = List.length segs in
  let zs = Array.make (n + 1) (Modal.stable_z eng segs) in
  List.iteri (fun q s -> zs.(q + 1) <- Modal.advance s zs.(q)) segs;
  zs

let stable_start model profile =
  validate model profile;
  let eng = Modal.make model in
  Modal.of_modal eng (Modal.stable_z eng (segments_of eng profile))

let stable_boundaries model profile =
  validate model profile;
  let eng = Modal.make model in
  let zs = stable_z_boundaries eng (segments_of eng profile) in
  Array.map (Modal.of_modal eng) zs

(* Streaming stable status: fold the profile into the engine's
   per-domain scratch — no segment list, no per-segment allocation, no
   LU.  Numerically identical to [Modal.stable_z] over fresh segments
   (same fold order, same expm1 denominators). *)
let stable_z_streamed eng profile =
  Modal.stable_begin eng;
  let t_p =
    List.fold_left
      (fun acc s ->
        Modal.stable_feed eng ~duration:s.duration ~psi:s.psi;
        acc +. s.duration)
      0. profile
  in
  Modal.stable_solve eng ~t_p

let stable_core_temps ?engine model profile =
  validate model profile;
  let eng = engine_for ?engine model in
  Modal.core_temps eng (stable_z_streamed eng profile)

let peak_at_boundaries model profile =
  validate model profile;
  let eng = Modal.make model in
  let zs = stable_z_boundaries eng (segments_of eng profile) in
  Array.fold_left
    (fun acc z -> Float.max acc (Modal.max_core_temp eng z))
    neg_infinity zs

let end_of_period_peak ?engine model profile =
  validate model profile;
  let eng = engine_for ?engine model in
  Modal.max_core_temp eng (stable_z_streamed eng profile)

(* Visit the [samples] interior/end states of [seg] starting from modal
   state [z]; returns the exact end-of-segment state (advanced in one
   step, so boundary states do not accumulate sub-step rounding). *)
let scan_segment_z seg ~samples z visit =
  let sub = Modal.split seg samples in
  let dt = Modal.duration sub in
  let zc = ref z in
  for k = 1 to samples do
    zc := Modal.advance sub !zc;
    visit (float_of_int k *. dt) !zc
  done;
  Modal.advance seg z

let peak_scan ?engine model ?(samples_per_segment = 32) profile =
  validate model profile;
  let eng = engine_for ?engine model in
  (* Fully streamed: stable status, then a per-segment sub-step walk, all
     in the engine's per-domain scratch — no segment list, no per-sample
     state allocation.  Bit-identical to scanning freshly built segments
     (same stable start, same sub-step update, same exact boundary
     advance). *)
  let z = stable_z_streamed eng profile in
  let best = ref (Modal.max_core_temp eng z) in
  Modal.scan_begin eng;
  List.iter
    (fun s ->
      best :=
        Float.max !best
          (Modal.scan_feed eng ~samples:samples_per_segment ~duration:s.duration
             ~psi:s.psi))
    profile;
  !best

let stable_core_trace model ~samples_per_segment profile =
  validate model profile;
  let eng = Modal.make model in
  let segs = segments_of eng profile in
  let z = ref (Modal.stable_z eng segs) in
  let samples = ref [ (0., Modal.core_temps eng !z) ] in
  let t_start = ref 0. in
  List.iter
    (fun seg ->
      z :=
        scan_segment_z seg ~samples:samples_per_segment !z (fun dt zc ->
            samples := (!t_start +. dt, Modal.core_temps eng zc) :: !samples);
      t_start := !t_start +. Modal.duration seg)
    segs;
  Array.of_list (List.rev !samples)

let golden = (sqrt 5. -. 1.) /. 2.

(* Maximize f over [a, b] by golden-section search (f unimodal on the
   bracket around a sampled maximum; if it is not, the result is still a
   lower bound no worse than the sampled one). *)
let golden_max f a b tol =
  let rec go a b x1 x2 f1 f2 =
    if b -. a < tol then Float.max f1 f2
    else if f1 >= f2 then
      (* The maximum lies in [a, x2]. *)
      let b = x2 in
      let x2 = x1 and f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      go a b x1 x2 (f x1) f2
    else
      (* The maximum lies in [x1, b]. *)
      let a = x1 in
      let x1 = x2 and f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      go a b x1 x2 f1 (f x2)
  in
  let x1 = b -. (golden *. (b -. a)) in
  let x2 = a +. (golden *. (b -. a)) in
  go a b x1 x2 (f x1) (f x2)

let peak_refined ?engine model ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
  validate model profile;
  let eng = engine_for ?engine model in
  let segs = segments_of eng profile in
  let z = ref (Modal.stable_z eng segs) in
  let best = ref (Modal.max_core_temp eng !z) in
  List.iter
    (fun seg ->
      let z0 = !z in
      (* Dense scan of this segment, remembering the hottest sample. *)
      let duration = Modal.duration seg in
      let dt = duration /. float_of_int samples_per_segment in
      let best_k = ref 0 and best_here = ref (Modal.max_core_temp eng z0) in
      z :=
        scan_segment_z seg ~samples:samples_per_segment z0 (fun t zc ->
            let temp = Modal.max_core_temp eng zc in
            if temp > !best_here then begin
              best_here := temp;
              best_k := int_of_float (Float.round (t /. dt))
            end);
      best := Float.max !best !best_here;
      (* Refine inside the bracketing interval around the best sample;
         each probe is an O(n) modal evaluation, so golden-section probes
         at fresh times cost no propagator builds. *)
      let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
      let hi = Float.min duration ((float_of_int !best_k +. 1.) *. dt) in
      if hi > lo then begin
        let temp_at t = Modal.max_core_temp eng (Modal.at seg ~t_rel:t z0) in
        best := Float.max !best (golden_max temp_at lo hi (tol *. duration))
      end)
    segs;
  !best

let time_to_threshold model ?theta0 ?(max_periods = 1000) ?(samples_per_segment = 32)
    ~threshold profile =
  validate model profile;
  let eng = Modal.make model in
  let z0 =
    match theta0 with
    | Some t -> Modal.to_modal eng t
    | None -> Modal.ambient_state eng
  in
  let hot z = Modal.max_core_temp eng z in
  if hot z0 >= threshold then Some 0.
  else begin
    let segs = segments_of eng profile in
    (* Bisect the crossing inside [t_lo, t_hi] from the segment-start
       modal state [base]. *)
    let refine seg base t_lo t_hi =
      let rec go t_lo t_hi iters =
        if iters = 0 || t_hi -. t_lo < 1e-9 *. Float.max 1e-3 t_hi then t_hi
        else
          let mid = (t_lo +. t_hi) /. 2. in
          if hot (Modal.at seg ~t_rel:mid base) >= threshold then
            go t_lo mid (iters - 1)
          else go mid t_hi (iters - 1)
      in
      go t_lo t_hi 50
    in
    let exception Crossed of float in
    try
      let z = ref z0 in
      let elapsed = ref 0. in
      for _ = 1 to max_periods do
        List.iter
          (fun seg ->
            let base = !z in
            let crossing = ref None in
            (* Scan this segment for the first sample above threshold. *)
            (try
               let prev_t = ref 0. in
               ignore
                 (scan_segment_z seg ~samples:samples_per_segment base
                    (fun t zc ->
                      if !crossing = None && hot zc >= threshold then begin
                        crossing := Some (refine seg base !prev_t t);
                        raise Exit
                      end;
                      prev_t := t))
             with Exit -> ());
            (match !crossing with
            | Some t -> raise (Crossed (!elapsed +. t))
            | None -> ());
            z := Modal.advance seg base;
            elapsed := !elapsed +. Modal.duration seg)
          segs
      done;
      None
    with Crossed t -> Some t
  end

let mission_peak model ?theta0 ?(samples_per_segment = 32) profile =
  validate model profile;
  let eng = Modal.make model in
  let z0 =
    match theta0 with
    | Some t -> Modal.to_modal eng t
    | None -> Modal.ambient_state eng
  in
  let best = ref (Modal.max_core_temp eng z0) in
  let z = ref z0 in
  List.iter
    (fun seg ->
      z :=
        scan_segment_z seg ~samples:samples_per_segment !z (fun _ zc ->
            best := Float.max !best (Modal.max_core_temp eng zc)))
    (segments_of eng profile);
  (!best, Modal.of_modal eng !z)

(* ------------------------------------------------------ reference path *)

(* The pre-modal implementations, kept verbatim on Model.step /
   Model.propagator for differential testing (test/test_modal.ml asserts
   the two paths agree to <= 1e-9). *)
module Reference = struct
  let stable_start model profile =
    validate model profile;
    let n = Model.n_nodes model in
    (* One period from the zero state gives theta(t_p) = K*0 + d = d, and
       K is the ordered product of segment propagators. *)
    let d = ref (Vec.zeros n) in
    let k = ref (Mat.identity n) in
    List.iter
      (fun s ->
        let p = Model.propagator model s.duration in
        d := Model.step model ~dt:s.duration ~theta:!d ~psi:s.psi;
        k := Mat.matmul p !k)
      profile;
    (* Stable status: theta* = K theta* + d. *)
    let i_minus_k = Mat.sub (Mat.identity n) !k in
    Linalg.Lu.solve i_minus_k !d

  let stable_boundaries model profile =
    let theta0 = stable_start model profile in
    simulate model ~theta0 profile

  let scan_segment model ~samples theta s visit =
    let dt = s.duration /. float_of_int samples in
    let theta = ref theta in
    for k = 1 to samples do
      theta := Model.step model ~dt ~theta:!theta ~psi:s.psi;
      visit (float_of_int k *. dt) !theta
    done;
    !theta

  let peak_scan model ?(samples_per_segment = 32) profile =
    let boundaries = stable_boundaries model profile in
    let best = ref (Model.max_core_temp model boundaries.(0)) in
    List.iteri
      (fun q s ->
        ignore
          (scan_segment model ~samples:samples_per_segment boundaries.(q) s
             (fun _ theta ->
               best := Float.max !best (Model.max_core_temp model theta))))
      profile;
    !best

  let peak_refined model ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
    let boundaries = stable_boundaries model profile in
    let best = ref (Model.max_core_temp model boundaries.(0)) in
    List.iteri
      (fun q s ->
        (* Dense scan of this segment, remembering the hottest sample. *)
        let dt = s.duration /. float_of_int samples_per_segment in
        let best_k = ref 0
        and best_here = ref (Model.max_core_temp model boundaries.(q)) in
        ignore
          (scan_segment model ~samples:samples_per_segment boundaries.(q) s
             (fun t theta ->
               let temp = Model.max_core_temp model theta in
               if temp > !best_here then begin
                 best_here := temp;
                 best_k := int_of_float (Float.round (t /. dt))
               end));
        best := Float.max !best !best_here;
        (* Refine inside the bracketing interval around the best sample. *)
        let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
        let hi = Float.min s.duration ((float_of_int !best_k +. 1.) *. dt) in
        if hi > lo then begin
          let temp_at t =
            Model.max_core_temp model
              (Model.step model ~dt:t ~theta:boundaries.(q) ~psi:s.psi)
          in
          best := Float.max !best (golden_max temp_at lo hi (tol *. s.duration))
        end)
      profile;
    !best
end
