module Vec = Linalg.Vec
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

type t = {
  spec : Spec.t;
  n : int;
  m_sym : Sparse.t;  (* M = C^{-1/2} G' C^{-1/2}, SPD *)
  diag : Vec.t;  (* diagonal of M, the Jacobi preconditioner *)
  c_sqrt : Vec.t;
  c_sqrt_inv : Vec.t;
  pool : Util.Pool.t option;  (* assembly pool, reused by steady_batch *)
}

(* Solver tolerances: three orders of magnitude under the 1e-9 bound the
   differential suite asserts against the dense path, so Krylov
   truncation never shows up in a comparison. *)
let cg_tol = 1e-13
let expmv_tol = 1e-13

(* Canonicalize one row of (col, value) pairs listed in assembly order:
   stable insertion sort by column, then sum runs of equal columns.
   Mirrors [Sparse.of_row_buckets] so a parallel per-row build matches
   [Sparse.of_triplets] bit for bit. *)
let canonical_row entries =
  let m = List.length entries in
  let cols = Array.make m 0 and vals = Array.make m 0. in
  List.iteri
    (fun k (j, v) ->
      cols.(k) <- j;
      vals.(k) <- v)
    entries;
  for k = 1 to m - 1 do
    let cj = cols.(k) and cv = vals.(k) in
    let p = ref (k - 1) in
    while !p >= 0 && cols.(!p) > cj do
      cols.(!p + 1) <- cols.(!p);
      vals.(!p + 1) <- vals.(!p);
      decr p
    done;
    cols.(!p + 1) <- cj;
    vals.(!p + 1) <- cv
  done;
  let w = ref 0 and k = ref 0 in
  while !k < m do
    let j = cols.(!k) in
    let acc = ref vals.(!k) in
    incr k;
    while !k < m && cols.(!k) = j do
      acc := !acc +. vals.(!k);
      incr k
    done;
    cols.(!w) <- j;
    vals.(!w) <- !acc;
    incr w
  done;
  (Array.sub cols 0 !w, Array.sub vals 0 !w)

let of_spec ?pool spec =
  let n = Spec.n_nodes spec in
  let c_sqrt = Vec.map sqrt spec.Spec.capacitance in
  let c_sqrt_inv = Vec.map (fun s -> 1. /. s) c_sqrt in
  (* Bucket the G' triplets by row sequentially (cheap, order-defining),
     then canonicalize and symmetrically scale each row across the pool.
     Per-row work is a pure function of its bucket, so the assembled CSR
     is bit-identical at any pool size. *)
  let buckets = Array.make n [] in
  List.iter
    (fun ((i, _, _) as tr) -> buckets.(i) <- tr :: buckets.(i))
    (Spec.g_eff_triplets spec);
  let rows =
    Util.Pool.init ?pool n (fun i ->
        let scale_i = c_sqrt_inv.(i) in
        canonical_row
          (List.rev_map
             (fun (_, j, v) -> (j, scale_i *. v *. c_sqrt_inv.(j)))
             buckets.(i)))
  in
  let m_sym = Sparse.of_row_arrays ~cols:n rows in
  { spec; n; m_sym; diag = Sparse.diagonal m_sym; c_sqrt; c_sqrt_inv; pool }

let of_model ?pool model = of_spec ?pool (Spec.of_model model)
let spec t = t.spec
let operator t = t.m_sym
let n_nodes t = t.n
let n_cores t = Array.length t.spec.Spec.core_nodes
let ambient t = t.spec.Spec.ambient
let ambient_state t = Vec.zeros t.n

let of_theta t theta =
  if Vec.dim theta <> t.n then invalid_arg "Sparse_model.of_theta: arity mismatch";
  Vec.mul t.c_sqrt theta

let to_theta t y =
  if Vec.dim y <> t.n then invalid_arg "Sparse_model.to_theta: arity mismatch";
  Vec.mul t.c_sqrt_inv y

let apply t v = Sparse.spmv t.m_sym v

let core_temps t y =
  let amb = t.spec.Spec.ambient in
  Array.map (fun i -> (t.c_sqrt_inv.(i) *. y.(i)) +. amb) t.spec.Spec.core_nodes

let max_core_temp t y =
  let amb = t.spec.Spec.ambient in
  Array.fold_left
    (fun acc i -> Float.max acc ((t.c_sqrt_inv.(i) *. y.(i)) +. amb))
    neg_infinity t.spec.Spec.core_nodes

let check_psi t psi =
  if Vec.dim psi <> n_cores t then
    invalid_arg
      (Printf.sprintf "Sparse_model: power vector has arity %d, expected %d"
         (Vec.dim psi) (n_cores t))

(* Symmetrized heat input: b = C^{-1/2} h, with h carrying psi plus the
   leakage-linearization offset beta * T_amb at core nodes (exactly
   Model.heat_input's convention). *)
let heat_input t psi =
  check_psi t psi;
  let b = Vec.zeros t.n in
  let offset = t.spec.Spec.leak_beta *. t.spec.Spec.ambient in
  Array.iteri
    (fun k i -> b.(i) <- (psi.(k) +. offset) *. t.c_sqrt_inv.(i))
    t.spec.Spec.core_nodes;
  b

let steady_state t psi =
  Krylov.cg ~tol:cg_tol ~precond:(Krylov.jacobi t.diag) (apply t) (heat_input t psi)

let steady_core_temps t psi = core_temps t (steady_state t psi)
let steady_peak t psi = max_core_temp t (steady_state t psi)

let steady_batch ?pool t psis =
  let pool = match pool with Some _ as p -> p | None -> t.pool in
  Util.Pool.map ?pool (steady_state t) psis

(* Exact LTI advance by [dt] toward equilibrium [y_inf]:
   y(dt) = y_inf + e^{-dt M} (y - y_inf). *)
let advance t ~dt ~y_inf y =
  Vec.add y_inf (Krylov.expmv ~tol:expmv_tol (apply t) ~t:dt (Vec.sub y y_inf))

let step t ~dt ~state ~psi =
  if dt < 0. then invalid_arg "Sparse_model.step: negative duration";
  if Vec.dim state <> t.n then invalid_arg "Sparse_model.step: state arity mismatch";
  advance t ~dt ~y_inf:(steady_state t psi) state

(* Measured-state correction, in place: core temperatures read
   c_sqrt_inv(i) * y_i + T_amb, so adding [deltas.(k)] kelvin to core
   [k]'s reading is y_i += deltas.(k) * c_sqrt(i) at its node.  Off-core
   nodes are untouched — exactly the Luenberger L = gain * H^T shape. *)
let correct_cores t ~state ~deltas =
  if Vec.dim state <> t.n then
    invalid_arg "Sparse_model.correct_cores: state arity mismatch";
  if Vec.dim deltas <> n_cores t then
    invalid_arg "Sparse_model.correct_cores: deltas arity differs from core count";
  Array.iteri
    (fun k i -> state.(i) <- state.(i) +. (deltas.(k) *. t.c_sqrt.(i)))
    t.spec.Spec.core_nodes

let validate t profile =
  (match profile with [] -> invalid_arg "Sparse_model: empty profile" | _ -> ());
  List.iteri
    (fun q (s : Matex.segment) ->
      if s.duration <= 0. then
        invalid_arg
          (Printf.sprintf "Sparse_model: segment %d has non-positive duration" q);
      if Vec.dim s.psi <> n_cores t then
        invalid_arg
          (Printf.sprintf
             "Sparse_model: segment %d power vector has arity %d, expected %d" q
             (Vec.dim s.psi) (n_cores t)))
    profile

(* Periodic stable status.  Every segment shares the operator M, so one
   period is the affine map y -> e^{-T_p M} y + d; the fixed point solves
   (I - e^{-T_p M}) y* = d.  That system is SPD (eigenvalues
   1 - e^{-T_p mu} over the SPD spectrum of M), so CG applies with one
   Lanczos expmv per iteration — no matrix power, no LU, no O(n^2)
   storage.  d is one simulated period from the zero state, exactly like
   Matex.Reference.stable_start. *)
let stable_start t profile =
  validate t profile;
  let t_p = Matex.period profile in
  let d =
    List.fold_left
      (fun y (s : Matex.segment) ->
        advance t ~dt:s.duration ~y_inf:(steady_state t s.psi) y)
      (Vec.zeros t.n) profile
  in
  (* y* = (I - e^{-T_p M})^{-1} d is a matrix function of M applied to
     the drive: one Lanczos basis on [d] replaces a CG iteration whose
     every step was a full-period expmv (itself a basis build, with
     time-splitting on stiff spectra).  1/-expm1(-x) is the numerically
     stable form of 1/(1 - e^{-x}) for the slow modes (T_p lambda << 1).
     [d] is a pure function of the candidate profile — no worker-local
     history — so results stay bit-identical at any pool size. *)
  Krylov.funmv ~tol:cg_tol (apply t)
    ~f:(fun lam -> 1. /. -.Float.expm1 (-.t_p *. lam))
    d

let stable_core_temps t profile = core_temps t (stable_start t profile)
let end_of_period_peak t profile = max_core_temp t (stable_start t profile)

(* Visit the [samples] interior/end states of a segment starting from
   [y0]; returns the exact end-of-segment state (advanced in one step, so
   boundary states do not accumulate sub-step rounding) — the same walk
   as Matex.scan_segment_z. *)
let scan_segment t ~samples ~y_inf ~duration y0 visit =
  let dt = duration /. float_of_int samples in
  let yc = ref y0 in
  for k = 1 to samples do
    yc := advance t ~dt ~y_inf !yc;
    visit (float_of_int k *. dt) !yc
  done;
  advance t ~dt:duration ~y_inf y0

let peak_scan t ?(samples_per_segment = 32) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (max_core_temp t !y) in
  List.iter
    (fun (s : Matex.segment) ->
      let y_inf = steady_state t s.psi in
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf ~duration:s.duration !y
          (fun _ yc -> best := Float.max !best (max_core_temp t yc)))
    profile;
  !best

let golden = (sqrt 5. -. 1.) /. 2.

(* Golden-section maximization, duplicated verbatim from Matex so the
   sparse refinement probes the same abscissae as the dense one. *)
let golden_max f a b tol =
  let rec go a b x1 x2 f1 f2 =
    if b -. a < tol then Float.max f1 f2
    else if f1 >= f2 then
      let b = x2 in
      let x2 = x1 and f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      go a b x1 x2 (f x1) f2
    else
      let a = x1 in
      let x1 = x2 and f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      go a b x1 x2 f1 (f x2)
  in
  let x1 = b -. (golden *. (b -. a)) in
  let x2 = a +. (golden *. (b -. a)) in
  go a b x1 x2 (f x1) (f x2)

let peak_refined t ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (max_core_temp t !y) in
  List.iter
    (fun (s : Matex.segment) ->
      let y0 = !y in
      let y_inf = steady_state t s.psi in
      let duration = s.duration in
      let dt = duration /. float_of_int samples_per_segment in
      let best_k = ref 0 and best_here = ref (max_core_temp t y0) in
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf ~duration y0
          (fun tm yc ->
            let temp = max_core_temp t yc in
            if temp > !best_here then begin
              best_here := temp;
              best_k := int_of_float (Float.round (tm /. dt))
            end);
      best := Float.max !best !best_here;
      let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
      let hi = Float.min duration ((float_of_int !best_k +. 1.) *. dt) in
      if hi > lo then begin
        let temp_at tm = max_core_temp t (advance t ~dt:tm ~y_inf y0) in
        best := Float.max !best (golden_max temp_at lo hi (tol *. duration))
      end)
    profile;
  !best
