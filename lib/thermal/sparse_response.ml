module Vec = Linalg.Vec
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

type stats = { builds : int; superpose_evals : int; stable_solves : int }

(* Same tolerance as Sparse_model: three orders of magnitude under the
   1e-9 differential bound, so superposed evaluations never drift a
   comparison against the direct per-candidate solves.  (Propagator
   applications go through [Sparse_model.advance], which carries its own
   matching expmv tolerance.) *)
let cg_tol = 1e-13

(* Per-domain scratch, sized to the engine: the streaming feeds below
   superpose segment equilibria and accumulate the periodic drive
   without allocating, and two pool workers can never observe each
   other's partial sums.  (The [e^{-dt M}] applications themselves grow
   Lanczos bases — that allocation is inherent to the matrix-free
   propagator, not to the feed.) *)
type scratch = {
  d : float array;  (* accumulated periodic drive over one period *)
  y_eq : float array;  (* superposed equilibrium of the current segment *)
  y_cur : float array;  (* dense-scan cursor (exact segment boundaries) *)
}

type t = {
  engine : Sparse_model.t;
  n : int;
  nc : int;
  ambient : float;
  beta_tamb : float;  (* leak_beta * T_amb, the per-core ambient drive *)
  units : Vec.t array;
  (* row i: the unit steady response y_inf(e_i) under 1 W on core i,
     solved once by pool-parallel CG at build time (symmetrized
     coordinates). *)
  steady_rows : float array array;
  (* row k: ambient-relative steady core-k temperature responses,
     indexed by driving core i — the constant-voltage steady peak needs
     only these entries. *)
  apply : Vec.t -> Vec.t;  (* the SPD operator M, shared read-only *)
  scratch_key : scratch Domain.DLS.key;
  superpose_evals : int Atomic.t;
  stable_solves : int Atomic.t;
}

let build_count = Atomic.make 0

let build engine =
  let n = Sparse_model.n_nodes engine in
  let nc = Sparse_model.n_cores engine in
  let spec = Sparse_model.spec engine in
  (* The heat input is affine in psi (the leakage drive beta*T_amb
     enters every core node), so subtracting the zero-power response
     isolates the pure per-core linear part u_i = M^{-1} C^{-1/2}
     e_{core_i}.  All n_cores + 1 systems solve across the engine's
     pool in one deterministic batch. *)
  let unit_psis =
    List.init (nc + 1) (fun i ->
        let e = Vec.zeros nc in
        if i > 0 then e.(i - 1) <- 1.;
        e)
  in
  let u0, responses =
    match Sparse_model.steady_batch engine unit_psis with
    | u0 :: rest -> (u0, Array.of_list rest)
    | [] -> assert false
  in
  let units = Array.map (fun u -> Vec.sub u u0) responses in
  (* Core reads happen in node space: theta(core k) = c^{-1/2}_k y_k,
     with the inverse root computed exactly as the engine computes it
     so table reads and direct state reads agree bitwise. *)
  let c_sqrt_inv_at i = 1. /. sqrt spec.Spec.capacitance.(i) in
  Atomic.incr build_count;
  {
    engine;
    n;
    nc;
    ambient = spec.Spec.ambient;
    beta_tamb = spec.Spec.leak_beta *. spec.Spec.ambient;
    units;
    steady_rows =
      Array.map
        (fun node ->
          let ci = c_sqrt_inv_at node in
          Array.init nc (fun i -> ci *. units.(i).(node)))
        spec.Spec.core_nodes;
    apply = Sparse.spmv (Sparse_model.operator engine);
    scratch_key =
      Domain.DLS.new_key (fun () ->
          {
            d = Array.make n 0.;
            y_eq = Array.make n 0.;
            y_cur = Array.make n 0.;
          });
    superpose_evals = Atomic.make 0;
    stable_solves = Atomic.make 0;
  }

(* Engines are cached per sparse engine (physical identity): the
   unit-response build costs n_cores + 1 CG solves, and every policy
   evaluation on a platform wants the same tables.  Bounded FIFO like
   [Modal.make]'s registry; an evicted entry keeps working for holders
   of the old reference, it just stops being shared. *)
let engines_capacity = 16
let engines_lock = Mutex.create ()

let engines : (Sparse_model.t * t) list ref =
  ref [] [@@fosc.guarded "mutex"] (* engines_lock *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let make engine =
  Mutex.lock engines_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock engines_lock)
    (fun () ->
      match List.find_opt (fun (e, _) -> e == engine) !engines with
      | Some (_, resp) -> resp
      | None ->
          (* Built under the lock: serializing first use per engine keeps
             exactly one response table (one stats stream) per platform.
             The batch solve inside runs on the engine's pool; nested
             submissions degrade to inline execution, so holding the lock
             cannot deadlock the pool — and [Fun.protect] releases it if
             the CG batch raises, so a failed build never wedges every
             later [make]. *)
          let resp = build engine in
          engines := (engine, resp) :: take (engines_capacity - 1) !engines;
          resp)

let engine t = t.engine
let n_nodes t = t.n
let n_cores t = t.nc
let ambient t = t.ambient

let stats t =
  {
    builds = Atomic.get build_count;
    superpose_evals = Atomic.get t.superpose_evals;
    stable_solves = Atomic.get t.stable_solves;
  }

(* ------------------------------------------------ superposed responses *)

let check_psi t psi =
  if Vec.dim psi <> t.nc then
    invalid_arg
      "Sparse_response: power vector arity differs from the engine's core count"

(* y_inf(psi) = sum_i (psi_i + beta T_amb) u_i: exact because the
   thermal model is linear and the heat input is affine in psi. *)
let y_inf_into t dst psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  Array.fill dst 0 t.n 0.;
  for i = 0 to t.nc - 1 do
    let row = t.units.(i) in
    let c = psi.(i) +. t.beta_tamb in
    for j = 0 to t.n - 1 do
      Array.unsafe_set dst j
        (Array.unsafe_get dst j +. (c *. Array.unsafe_get row j))
    done
  done

let y_inf t psi =
  let dst = Array.make t.n 0. in
  y_inf_into t dst psi;
  dst

let steady_core_into t dst psi =
  check_psi t psi;
  if Vec.dim dst <> t.nc then
    invalid_arg "Sparse_response.steady_core_into: destination arity mismatch";
  Atomic.incr t.superpose_evals;
  for k = 0 to t.nc - 1 do
    let row = t.steady_rows.(k) in
    let acc = ref 0. in
    for i = 0 to t.nc - 1 do
      acc := !acc +. ((psi.(i) +. t.beta_tamb) *. Array.unsafe_get row i)
    done;
    dst.(k) <- !acc
  done

let steady_core_temps t psi =
  let dst = Array.make t.nc 0. in
  steady_core_into t dst psi;
  Array.map (fun x -> x +. t.ambient) dst

(* The constant-voltage steady peak off the core-row table: O(n_cores^2),
   no CG, no allocation. *)
let steady_peak t psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  let best = ref neg_infinity in
  for k = 0 to t.nc - 1 do
    let row = t.steady_rows.(k) in
    let acc = ref 0. in
    for i = 0 to t.nc - 1 do
      acc := !acc +. ((psi.(i) +. t.beta_tamb) *. Array.unsafe_get row i)
    done;
    if !acc > !best then best := !acc
  done;
  !best +. t.ambient

let step t ~dt ~state ~psi =
  if dt < 0. then invalid_arg "Sparse_response.step: negative duration";
  if Vec.dim state <> t.n then
    invalid_arg "Sparse_response.step: state arity mismatch";
  Sparse_model.advance t.engine ~dt ~y_inf:(y_inf t psi) state

(* --------------------------------------- streaming stable-status path *)

let stable_begin t =
  let s = Domain.DLS.get t.scratch_key in
  Array.fill s.d 0 t.n 0.

let stable_feed t ~duration ~psi =
  if duration <= 0. then
    invalid_arg "Sparse_response.stable_feed: non-positive duration";
  let s = Domain.DLS.get t.scratch_key in
  y_inf_into t s.y_eq psi;
  (* d <- y_eq + e^{-dt M} (d - y_eq): the same affine fold
     Sparse_model.stable_start performs, with the equilibrium superposed
     instead of solved. *)
  let d' = Sparse_model.advance t.engine ~dt:duration ~y_inf:s.y_eq s.d in
  Array.blit d' 0 s.d 0 t.n

let stable_solve t ~t_p =
  if not (t_p > 0.) then
    invalid_arg "Sparse_response.stable_solve: non-positive period";
  let s = Domain.DLS.get t.scratch_key in
  Atomic.incr t.stable_solves;
  (* One Lanczos basis on the accumulated drive evaluates the matrix
     function (I - e^{-T_p M})^{-1} directly — candidate-local and
     deterministic, so pool workers racing through candidates in any
     order return identical bits (see Sparse_model.stable_start). *)
  Krylov.funmv ~tol:cg_tol t.apply
    ~f:(fun lam -> 1. /. -.Float.expm1 (-.t_p *. lam))
    s.d

(* --------------------------------------------------------- profiles *)

let validate t profile =
  (match profile with
  | [] -> invalid_arg "Sparse_response: empty profile"
  | _ -> ());
  List.iteri
    (fun q (s : Matex.segment) ->
      if s.duration <= 0. then
        invalid_arg
          (Printf.sprintf "Sparse_response: segment %d has non-positive duration"
             q);
      if Vec.dim s.psi <> t.nc then
        invalid_arg
          (Printf.sprintf
             "Sparse_response: segment %d power vector has arity %d, expected %d"
             q (Vec.dim s.psi) t.nc))
    profile

let stable_start t profile =
  validate t profile;
  stable_begin t;
  List.iter
    (fun (s : Matex.segment) -> stable_feed t ~duration:s.duration ~psi:s.psi)
    profile;
  stable_solve t ~t_p:(Matex.period profile)

let stable_core_temps t profile =
  Sparse_model.core_temps t.engine (stable_start t profile)

let end_of_period_peak t profile =
  Sparse_model.max_core_temp t.engine (stable_start t profile)

(* Visit the [samples] interior/end states of a segment starting from
   [y0]; returns the exact end-of-segment state (advanced in one step,
   so boundary states do not accumulate sub-step rounding) — the same
   walk as Sparse_model.scan_segment, over a superposed equilibrium. *)
let scan_segment t ~samples ~y_inf ~duration y0 visit =
  let dt = duration /. float_of_int samples in
  let yc = ref y0 in
  for k = 1 to samples do
    yc := Sparse_model.advance t.engine ~dt ~y_inf !yc;
    visit (float_of_int k *. dt) !yc
  done;
  Sparse_model.advance t.engine ~dt:duration ~y_inf y0

let peak_scan t ?(samples_per_segment = 32) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (Sparse_model.max_core_temp t.engine !y) in
  let s_scr = Domain.DLS.get t.scratch_key in
  List.iter
    (fun (s : Matex.segment) ->
      y_inf_into t s_scr.y_eq s.psi;
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf:s_scr.y_eq
          ~duration:s.duration !y (fun _ yc ->
            best := Float.max !best (Sparse_model.max_core_temp t.engine yc)))
    profile;
  !best

let golden = (sqrt 5. -. 1.) /. 2.

(* Golden-section maximization, duplicated verbatim from Sparse_model
   (itself from Matex) so the superposed refinement probes the same
   abscissae as both direct paths. *)
let golden_max f a b tol =
  let rec go a b x1 x2 f1 f2 =
    if b -. a < tol then Float.max f1 f2
    else if f1 >= f2 then
      let b = x2 in
      let x2 = x1 and f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      go a b x1 x2 (f x1) f2
    else
      let a = x1 in
      let x1 = x2 and f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      go a b x1 x2 f1 (f x2)
  in
  let x1 = b -. (golden *. (b -. a)) in
  let x2 = a +. (golden *. (b -. a)) in
  go a b x1 x2 (f x1) (f x2)

let peak_refined t ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (Sparse_model.max_core_temp t.engine !y) in
  List.iter
    (fun (s : Matex.segment) ->
      let y0 = !y in
      (* The refinement's golden probes run interleaved with the scan's
         visits, so the segment equilibrium lives in a fresh vector here
         rather than the shared scratch. *)
      let y_inf = y_inf t s.psi in
      let duration = s.duration in
      let dt = duration /. float_of_int samples_per_segment in
      let best_k = ref 0
      and best_here = ref (Sparse_model.max_core_temp t.engine y0) in
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf ~duration y0
          (fun tm yc ->
            let temp = Sparse_model.max_core_temp t.engine yc in
            if temp > !best_here then begin
              best_here := temp;
              best_k := int_of_float (Float.round (tm /. dt))
            end);
      best := Float.max !best !best_here;
      let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
      let hi = Float.min duration ((float_of_int !best_k +. 1.) *. dt) in
      if hi > lo then begin
        let temp_at tm =
          Sparse_model.max_core_temp t.engine
            (Sparse_model.advance t.engine ~dt:tm ~y_inf y0)
        in
        best := Float.max !best (golden_max temp_at lo hi (tol *. duration))
      end)
    profile;
  !best
