module Vec = Linalg.Vec
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

type stats = {
  builds : int;
  superpose_evals : int;
  stable_solves : int;
  base_solves : int;
  delta_evals : int;
}

(* Same tolerance as Sparse_model: three orders of magnitude under the
   1e-9 differential bound, so superposed evaluations never drift a
   comparison against the direct per-candidate solves.  (Propagator
   applications go through [Sparse_model.advance], which carries its own
   matching expmv tolerance.) *)
let cg_tol = 1e-13

(* Per-domain scratch, sized to the engine: the streaming feeds below
   superpose segment equilibria and accumulate the periodic drive
   without allocating, and two pool workers can never observe each
   other's partial sums.  (The [e^{-dt M}] applications themselves grow
   Lanczos bases — that allocation is inherent to the matrix-free
   propagator, not to the feed.) *)
type scratch = {
  d : float array;  (* accumulated periodic drive over one period *)
  y_eq : float array;  (* superposed equilibrium of the current segment *)
  y_cur : float array;  (* dense-scan cursor (exact segment boundaries) *)
  (* ---- prepared-base delta state (base_begin / base_feed / base_solve
     and the delta evaluators).  Disjoint from the streaming arrays
     above, so exact stable_* evaluations interleaved between delta
     candidates never clobber the prepared base.  [bases] holds one
     lazily grown Lanczos factorization per core unit response — the
     basis is f-independent, so one preparation serves every duty-cycle
     weight evaluated against it.  Krylov.prepared is mutable and NOT
     domain-safe, which is exactly why it lives here in DLS. *)
  base_cl : float array;  (* nc: psi_low + beta T_amb *)
  base_ch : float array;  (* nc: psi_high + beta T_amb *)
  base_mode : int array;  (* nc: -1 all-low, +1 all-high, 0 interior *)
  base_ll : float array;  (* nc: leading low duration (interior cores) *)
  y_base : float array;  (* n: the base config's stable status *)
  w_nodes : float array;  (* nc: candidate delta read at the core nodes *)
  bases : Krylov.prepared option array;  (* nc, grown on demand *)
  mutable base_t_p : float;  (* period; 0. = no base being prepared *)
  mutable base_ready : bool;  (* base_solve completed *)
}

type t = {
  engine : Sparse_model.t;
  n : int;
  nc : int;
  ambient : float;
  beta_tamb : float;  (* leak_beta * T_amb, the per-core ambient drive *)
  units : Vec.t array;
  (* row i: the unit steady response y_inf(e_i) under 1 W on core i,
     solved once by pool-parallel CG at build time (symmetrized
     coordinates). *)
  steady_rows : float array array;
  (* row k: ambient-relative steady core-k temperature responses,
     indexed by driving core i — the constant-voltage steady peak needs
     only these entries. *)
  apply : Vec.t -> Vec.t;  (* the SPD operator M, shared read-only *)
  core_nodes : int array;  (* node index of each core, shared read-only *)
  c_sqrt_inv_cores : float array;  (* c^{-1/2} at each core's node *)
  scratch_key : scratch Domain.DLS.key;
  superpose_evals : int Atomic.t;
  stable_solves : int Atomic.t;
  base_solves : int Atomic.t;
  delta_evals : int Atomic.t;
}

let build_count = Atomic.make 0

let build engine =
  let n = Sparse_model.n_nodes engine in
  let nc = Sparse_model.n_cores engine in
  let spec = Sparse_model.spec engine in
  (* The heat input is affine in psi (the leakage drive beta*T_amb
     enters every core node), so subtracting the zero-power response
     isolates the pure per-core linear part u_i = M^{-1} C^{-1/2}
     e_{core_i}.  All n_cores + 1 systems solve across the engine's
     pool in one deterministic batch. *)
  let unit_psis =
    List.init (nc + 1) (fun i ->
        let e = Vec.zeros nc in
        if i > 0 then e.(i - 1) <- 1.;
        e)
  in
  let u0, responses =
    match Sparse_model.steady_batch engine unit_psis with
    | u0 :: rest -> (u0, Array.of_list rest)
    | [] -> assert false
  in
  let units = Array.map (fun u -> Vec.sub u u0) responses in
  (* Core reads happen in node space: theta(core k) = c^{-1/2}_k y_k,
     with the inverse root computed exactly as the engine computes it
     so table reads and direct state reads agree bitwise. *)
  let c_sqrt_inv_at i = 1. /. sqrt spec.Spec.capacitance.(i) in
  Atomic.incr build_count;
  {
    engine;
    n;
    nc;
    ambient = spec.Spec.ambient;
    beta_tamb = spec.Spec.leak_beta *. spec.Spec.ambient;
    units;
    steady_rows =
      Array.map
        (fun node ->
          let ci = c_sqrt_inv_at node in
          Array.init nc (fun i -> ci *. units.(i).(node)))
        spec.Spec.core_nodes;
    apply = Sparse.spmv (Sparse_model.operator engine);
    core_nodes = spec.Spec.core_nodes;
    c_sqrt_inv_cores = Array.map c_sqrt_inv_at spec.Spec.core_nodes;
    scratch_key =
      Domain.DLS.new_key (fun () ->
          {
            d = Array.make n 0.;
            y_eq = Array.make n 0.;
            y_cur = Array.make n 0.;
            base_cl = Array.make nc 0.;
            base_ch = Array.make nc 0.;
            base_mode = Array.make nc min_int;
            base_ll = Array.make nc 0.;
            y_base = Array.make n 0.;
            w_nodes = Array.make nc 0.;
            bases = Array.make nc None;
            base_t_p = 0.;
            base_ready = false;
          });
    superpose_evals = Atomic.make 0;
    stable_solves = Atomic.make 0;
    base_solves = Atomic.make 0;
    delta_evals = Atomic.make 0;
  }

(* Engines are cached per sparse engine (physical identity): the
   unit-response build costs n_cores + 1 CG solves, and every policy
   evaluation on a platform wants the same tables.  Bounded FIFO like
   [Modal.make]'s registry; an evicted entry keeps working for holders
   of the old reference, it just stops being shared. *)
let engines_capacity = 16
let engines_lock = Mutex.create ()

let engines : (Sparse_model.t * t) list ref =
  ref [] [@@fosc.guarded "mutex"] (* engines_lock *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let make engine =
  Mutex.lock engines_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock engines_lock)
    (fun () ->
      match List.find_opt (fun (e, _) -> e == engine) !engines with
      | Some (_, resp) -> resp
      | None ->
          (* Built under the lock: serializing first use per engine keeps
             exactly one response table (one stats stream) per platform.
             The batch solve inside runs on the engine's pool; nested
             submissions degrade to inline execution, so holding the lock
             cannot deadlock the pool — and [Fun.protect] releases it if
             the CG batch raises, so a failed build never wedges every
             later [make]. *)
          let resp = build engine in
          engines := (engine, resp) :: take (engines_capacity - 1) !engines;
          resp)

let engine t = t.engine
let n_nodes t = t.n
let n_cores t = t.nc
let ambient t = t.ambient

let stats t =
  {
    builds = Atomic.get build_count;
    superpose_evals = Atomic.get t.superpose_evals;
    stable_solves = Atomic.get t.stable_solves;
    base_solves = Atomic.get t.base_solves;
    delta_evals = Atomic.get t.delta_evals;
  }

(* ------------------------------------------------ superposed responses *)

let check_psi t psi =
  if Vec.dim psi <> t.nc then
    invalid_arg
      "Sparse_response: power vector arity differs from the engine's core count"

(* y_inf(psi) = sum_i (psi_i + beta T_amb) u_i: exact because the
   thermal model is linear and the heat input is affine in psi. *)
let y_inf_into t dst psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  Array.fill dst 0 t.n 0.;
  for i = 0 to t.nc - 1 do
    let row = t.units.(i) in
    let c = psi.(i) +. t.beta_tamb in
    for j = 0 to t.n - 1 do
      Array.unsafe_set dst j
        (Array.unsafe_get dst j +. (c *. Array.unsafe_get row j))
    done
  done

let y_inf t psi =
  let dst = Array.make t.n 0. in
  y_inf_into t dst psi;
  dst

let steady_core_into t dst psi =
  check_psi t psi;
  if Vec.dim dst <> t.nc then
    invalid_arg "Sparse_response.steady_core_into: destination arity mismatch";
  Atomic.incr t.superpose_evals;
  for k = 0 to t.nc - 1 do
    let row = t.steady_rows.(k) in
    let acc = ref 0. in
    for i = 0 to t.nc - 1 do
      acc := !acc +. ((psi.(i) +. t.beta_tamb) *. Array.unsafe_get row i)
    done;
    dst.(k) <- !acc
  done

let steady_core_temps t psi =
  let dst = Array.make t.nc 0. in
  steady_core_into t dst psi;
  Array.map (fun x -> x +. t.ambient) dst

(* The constant-voltage steady peak off the core-row table: O(n_cores^2),
   no CG, no allocation. *)
let steady_peak t psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  let best = ref neg_infinity in
  for k = 0 to t.nc - 1 do
    let row = t.steady_rows.(k) in
    let acc = ref 0. in
    for i = 0 to t.nc - 1 do
      acc := !acc +. ((psi.(i) +. t.beta_tamb) *. Array.unsafe_get row i)
    done;
    if !acc > !best then best := !acc
  done;
  !best +. t.ambient

let step t ~dt ~state ~psi =
  if dt < 0. then invalid_arg "Sparse_response.step: negative duration";
  if Vec.dim state <> t.n then
    invalid_arg "Sparse_response.step: state arity mismatch";
  Sparse_model.advance t.engine ~dt ~y_inf:(y_inf t psi) state

(* --------------------------------------- streaming stable-status path *)

let stable_begin t =
  let s = Domain.DLS.get t.scratch_key in
  Array.fill s.d 0 t.n 0.

let stable_feed t ~duration ~psi =
  if duration <= 0. then
    invalid_arg "Sparse_response.stable_feed: non-positive duration";
  let s = Domain.DLS.get t.scratch_key in
  y_inf_into t s.y_eq psi;
  (* d <- y_eq + e^{-dt M} (d - y_eq): the same affine fold
     Sparse_model.stable_start performs, with the equilibrium superposed
     instead of solved. *)
  let d' = Sparse_model.advance t.engine ~dt:duration ~y_inf:s.y_eq s.d in
  Array.blit d' 0 s.d 0 t.n

let stable_solve t ~t_p =
  if not (t_p > 0.) then
    invalid_arg "Sparse_response.stable_solve: non-positive period";
  let s = Domain.DLS.get t.scratch_key in
  Atomic.incr t.stable_solves;
  (* One Lanczos basis on the accumulated drive evaluates the matrix
     function (I - e^{-T_p M})^{-1} directly — candidate-local and
     deterministic, so pool workers racing through candidates in any
     order return identical bits (see Sparse_model.stable_start). *)
  Krylov.funmv ~tol:cg_tol t.apply
    ~f:(fun lam -> 1. /. -.Float.expm1 (-.t_p *. lam))
    s.d

(* ------------------------------------------- prepared-base deltas *)

(* Delta candidate evaluation (DESIGN.md §14), sparse flavour.  The
   periodic drive of a two-mode config factors per core as a spectral
   weight on that core's unit response: for an interior core with
   leading low duration ll and trailing high duration dh = t_p - ll,

     w_i(lam) = -cl . e^{-dh lam} . expm1(-ll lam) - ch . expm1(-dh lam)

   (cl/ch = psi + beta T_amb), and the stable status is

     y* = (I - e^{-t_p M})^{-1} d = sum_i h_i(M) u_i,
     h_i(lam) = w_i(lam) / (1 - e^{-t_p lam}).

   Snapped all-low/all-high cores collapse to the constant h = cl / ch
   — their contribution is c . u_i with no matrix function at all.  A
   prepared Lanczos basis per unit response ({!Krylov.prepare}) makes
   every h_i(M) u_i an O(m) coefficient solve plus an O(m n) combine —
   no funmv stream — and a candidate changing only core j's duty cycle
   needs only the core-node reads of

     dh_j(lam) = +-(cl - ch) e^{-(t_p - max(ll,ll')) lam}
                 . (-expm1(-|ll - ll'| lam)) / (1 - e^{-t_p lam})

   applied to u_j: O(m . n_cores) per candidate, no new basis. *)

(* Replicates [Sched.Peak.two_mode_decompose]'s ratio validation and
   boundary snapping (as [Modal.two_mode_core_shape] does for the dense
   engine), so the prepared-base path agrees with the exact decomposed
   path on which spans exist. *)
let two_mode_core_shape ~t_p ~high_ratio =
  if high_ratio < -1e-12 || high_ratio > 1. +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sparse_response: high_ratio %.6g not in [0,1]"
         high_ratio);
  let lh = Float.max 0. (Float.min t_p (high_ratio *. t_p)) in
  let ll = t_p -. lh in
  if lh <= 1e-12 then (-1, t_p)
  else if ll <= 1e-12 then (1, 0.)
  else (0, ll)

(* h_i for an interior core; [lam] ranges over Ritz values of the SPD
   operator, all positive, so the denominator never vanishes. *)
let[@inline] h_interior ~cl ~ch ~ll ~t_p lam =
  let dh = t_p -. ll in
  (-.(cl *. exp (-.dh *. lam) *. Float.expm1 (-.ll *. lam))
  -. (ch *. Float.expm1 (-.dh *. lam)))
  /. -.Float.expm1 (-.t_p *. lam)

let h_of ~cl ~ch ~mode ~ll ~t_p lam =
  if mode < 0 then cl
  else if mode > 0 then ch
  else h_interior ~cl ~ch ~ll ~t_p lam

let get_basis t (s : scratch) i =
  match s.bases.(i) with
  | Some b -> b
  | None ->
      let b = Krylov.prepare ~tol:cg_tol t.apply t.units.(i) in
      s.bases.(i) <- Some b;
      b

let base_begin t ~t_p =
  if t_p <= 0. then
    invalid_arg "Sparse_response.base_begin: non-positive period";
  let s = Domain.DLS.get t.scratch_key in
  s.base_t_p <- t_p;
  s.base_ready <- false;
  Array.fill s.base_mode 0 t.nc min_int

let base_feed t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  if s.base_t_p <= 0. then
    invalid_arg "Sparse_response.base_feed: no base_begin on this domain";
  if core < 0 || core >= t.nc then
    invalid_arg "Sparse_response.base_feed: core index out of range";
  let mode, ll = two_mode_core_shape ~t_p:s.base_t_p ~high_ratio in
  s.base_cl.(core) <- psi_low +. t.beta_tamb;
  s.base_ch.(core) <- psi_high +. t.beta_tamb;
  s.base_mode.(core) <- mode;
  s.base_ll.(core) <- ll

let base_solve t =
  let s = Domain.DLS.get t.scratch_key in
  if s.base_t_p <= 0. then
    invalid_arg "Sparse_response.base_solve: no base_begin on this domain";
  for i = 0 to t.nc - 1 do
    if s.base_mode.(i) = min_int then
      invalid_arg
        (Printf.sprintf "Sparse_response.base_solve: core %d was never base_feed"
           i)
  done;
  let t_p = s.base_t_p in
  Array.fill s.y_base 0 t.n 0.;
  for i = 0 to t.nc - 1 do
    let mode = s.base_mode.(i) in
    if mode <> 0 then begin
      (* Snapped core: h is the constant cl/ch — a plain axpy. *)
      let c = if mode < 0 then s.base_cl.(i) else s.base_ch.(i) in
      let u = t.units.(i) in
      for j = 0 to t.n - 1 do
        Array.unsafe_set s.y_base j
          (Array.unsafe_get s.y_base j +. (c *. Array.unsafe_get u j))
      done
    end
    else begin
      let cl = s.base_cl.(i) and ch = s.base_ch.(i) and ll = s.base_ll.(i) in
      let w =
        Krylov.prepared_apply (get_basis t s i)
          ~f:(fun lam -> h_interior ~cl ~ch ~ll ~t_p lam)
      in
      for j = 0 to t.n - 1 do
        Array.unsafe_set s.y_base j
          (Array.unsafe_get s.y_base j +. Array.unsafe_get w j)
      done
    end
  done;
  s.base_ready <- true;
  Atomic.incr t.base_solves;
  (s.y_base
  [@fosc.dls_ok
    "documented borrow of this domain's scratch (see sparse_response.mli): \
     valid until the next base or delta call on the same domain, never \
     shared across domains"])

(* Candidate delta at the core nodes, into [s.w_nodes]. *)
let delta_nodes t (s : scratch) ~core ~psi_low ~psi_high ~high_ratio =
  if not s.base_ready then
    invalid_arg "Sparse_response.delta: no solved base on this domain";
  if core < 0 || core >= t.nc then
    invalid_arg "Sparse_response.delta: core index out of range";
  let t_p = s.base_t_p in
  let mode', ll' = two_mode_core_shape ~t_p ~high_ratio in
  let cl' = psi_low +. t.beta_tamb and ch' = psi_high +. t.beta_tamb in
  let cl = s.base_cl.(core) and ch = s.base_ch.(core) in
  let le mode ll = if mode < 0 then t_p else if mode > 0 then 0. else ll in
  let l0 = le s.base_mode.(core) s.base_ll.(core) in
  let l1 = le mode' ll' in
  (if Float.equal cl' cl && Float.equal ch' ch then begin
     if Float.equal l1 l0 then Array.fill s.w_nodes 0 t.nc 0.
     else begin
       let big = Float.max l0 l1 and small = Float.min l0 l1 in
       let c = if l1 > l0 then cl -. ch else ch -. cl in
       let tail = t_p -. big and gap = big -. small in
       let f lam =
         c *. exp (-.tail *. lam)
         *. -.Float.expm1 (-.gap *. lam)
         /. -.Float.expm1 (-.t_p *. lam)
       in
       Krylov.prepared_apply_at (get_basis t s core) ~f ~idx:t.core_nodes
         s.w_nodes
     end
   end
   else begin
     (* Voltage change too: the general difference of spectral weights. *)
     let mode = s.base_mode.(core) and ll = s.base_ll.(core) in
     let f lam =
       h_of ~cl:cl' ~ch:ch' ~mode:mode' ~ll:ll' ~t_p lam
       -. h_of ~cl ~ch ~mode ~ll ~t_p lam
     in
     Krylov.prepared_apply_at (get_basis t s core) ~f ~idx:t.core_nodes
       s.w_nodes
   end);
  Atomic.incr t.delta_evals

let delta_solve t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  delta_nodes t s ~core ~psi_low ~psi_high ~high_ratio;
  (* Full-vector variant for differential tests: recompute the delta's
     whole node image through the same prepared basis. *)
  let t_p = s.base_t_p in
  let mode', ll' = two_mode_core_shape ~t_p ~high_ratio in
  let cl' = psi_low +. t.beta_tamb and ch' = psi_high +. t.beta_tamb in
  let cl = s.base_cl.(core) and ch = s.base_ch.(core) in
  let mode = s.base_mode.(core) and ll = s.base_ll.(core) in
  let f lam =
    h_of ~cl:cl' ~ch:ch' ~mode:mode' ~ll:ll' ~t_p lam
    -. h_of ~cl ~ch ~mode ~ll ~t_p lam
  in
  let w = Krylov.prepared_apply (get_basis t s core) ~f in
  Array.mapi (fun j wj -> s.y_base.(j) +. wj) w

let delta_peak t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  delta_nodes t s ~core ~psi_low ~psi_high ~high_ratio;
  let best = ref neg_infinity in
  for k = 0 to t.nc - 1 do
    let v =
      t.c_sqrt_inv_cores.(k)
      *. (s.y_base.(t.core_nodes.(k)) +. s.w_nodes.(k))
      +. t.ambient
    in
    best := Float.max !best v
  done;
  !best

let delta_core_temp t ~at ~core ~psi_low ~psi_high ~high_ratio =
  if at < 0 || at >= t.nc then
    invalid_arg "Sparse_response.delta_core_temp: core index out of range";
  let s = Domain.DLS.get t.scratch_key in
  delta_nodes t s ~core ~psi_low ~psi_high ~high_ratio;
  t.c_sqrt_inv_cores.(at)
  *. (s.y_base.(t.core_nodes.(at)) +. s.w_nodes.(at))
  +. t.ambient

(* --------------------------------------------------------- profiles *)

let validate t profile =
  (match profile with
  | [] -> invalid_arg "Sparse_response: empty profile"
  | _ -> ());
  List.iteri
    (fun q (s : Matex.segment) ->
      if s.duration <= 0. then
        invalid_arg
          (Printf.sprintf "Sparse_response: segment %d has non-positive duration"
             q);
      if Vec.dim s.psi <> t.nc then
        invalid_arg
          (Printf.sprintf
             "Sparse_response: segment %d power vector has arity %d, expected %d"
             q (Vec.dim s.psi) t.nc))
    profile

let stable_start t profile =
  validate t profile;
  stable_begin t;
  List.iter
    (fun (s : Matex.segment) -> stable_feed t ~duration:s.duration ~psi:s.psi)
    profile;
  stable_solve t ~t_p:(Matex.period profile)

let stable_core_temps t profile =
  Sparse_model.core_temps t.engine (stable_start t profile)

let end_of_period_peak t profile =
  Sparse_model.max_core_temp t.engine (stable_start t profile)

(* Visit the [samples] interior/end states of a segment starting from
   [y0]; returns the exact end-of-segment state (advanced in one step,
   so boundary states do not accumulate sub-step rounding) — the same
   walk as Sparse_model.scan_segment, over a superposed equilibrium. *)
let scan_segment t ~samples ~y_inf ~duration y0 visit =
  let dt = duration /. float_of_int samples in
  let yc = ref y0 in
  for k = 1 to samples do
    yc := Sparse_model.advance t.engine ~dt ~y_inf !yc;
    visit (float_of_int k *. dt) !yc
  done;
  Sparse_model.advance t.engine ~dt:duration ~y_inf y0

let peak_scan t ?(samples_per_segment = 32) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (Sparse_model.max_core_temp t.engine !y) in
  let s_scr = Domain.DLS.get t.scratch_key in
  List.iter
    (fun (s : Matex.segment) ->
      y_inf_into t s_scr.y_eq s.psi;
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf:s_scr.y_eq
          ~duration:s.duration !y (fun _ yc ->
            best := Float.max !best (Sparse_model.max_core_temp t.engine yc)))
    profile;
  !best

let golden = (sqrt 5. -. 1.) /. 2.

(* Golden-section maximization, duplicated verbatim from Sparse_model
   (itself from Matex) so the superposed refinement probes the same
   abscissae as both direct paths. *)
let golden_max f a b tol =
  let rec go a b x1 x2 f1 f2 =
    if b -. a < tol then Float.max f1 f2
    else if f1 >= f2 then
      let b = x2 in
      let x2 = x1 and f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      go a b x1 x2 (f x1) f2
    else
      let a = x1 in
      let x1 = x2 and f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      go a b x1 x2 f1 (f x2)
  in
  let x1 = b -. (golden *. (b -. a)) in
  let x2 = a +. (golden *. (b -. a)) in
  go a b x1 x2 (f x1) (f x2)

let peak_refined t ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
  validate t profile;
  let y = ref (stable_start t profile) in
  let best = ref (Sparse_model.max_core_temp t.engine !y) in
  List.iter
    (fun (s : Matex.segment) ->
      let y0 = !y in
      (* The refinement's golden probes run interleaved with the scan's
         visits, so the segment equilibrium lives in a fresh vector here
         rather than the shared scratch. *)
      let y_inf = y_inf t s.psi in
      let duration = s.duration in
      let dt = duration /. float_of_int samples_per_segment in
      let best_k = ref 0
      and best_here = ref (Sparse_model.max_core_temp t.engine y0) in
      y :=
        scan_segment t ~samples:samples_per_segment ~y_inf ~duration y0
          (fun tm yc ->
            let temp = Sparse_model.max_core_temp t.engine yc in
            if temp > !best_here then begin
              best_here := temp;
              best_k := int_of_float (Float.round (tm /. dt))
            end);
      best := Float.max !best !best_here;
      let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
      let hi = Float.min duration ((float_of_int !best_k +. 1.) *. dt) in
      if hi > lo then begin
        let temp_at tm =
          Sparse_model.max_core_temp t.engine
            (Sparse_model.advance t.engine ~dt:tm ~y_inf y0)
        in
        best := Float.max !best (golden_max temp_at lo hi (tol *. duration))
      end)
    profile;
  !best
