(** Uniform thermal-evaluation backend interface.

    Policies and experiment drivers ask a small set of questions —
    steady peaks, stable-status temperatures, scanned/refined period
    peaks, exact transient steps — and must not care whether the answers
    come from the dense modal engine ({!Modal}, O(n³) build, exact
    eigenbasis) or the sparse Krylov engine ({!Sparse_model}, O(nnz)
    build, CG + Lanczos solves).  A backend is a record of closures over
    one of those engines; {!Core.Eval} and {!Sched.Peak} consume it, so
    every registered policy runs unchanged on either implementation.

    States are opaque to callers: modal coordinates for the dense
    backend, symmetrized node coordinates for the sparse one.  Obtain
    them only from {!field:ambient_state}/{!field:step} of the SAME
    backend and read them through {!field:core_temps}/
    {!field:max_core_temp}.  The differential suite pins both
    implementations to each other to ≤ 1e-9. *)

type t = {
  name : string;
      (** ["dense-modal"], ["sparse-krylov"], or ["sparse-response"]. *)
  n_nodes : int;
  n_cores : int;
  ambient : float;
  ambient_state : unit -> Linalg.Vec.t;  (** The all-ambient state. *)
  step : dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t;
      (** Exact LTI advance under constant per-core powers. *)
  step_into :
    dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> dst:Linalg.Vec.t -> unit;
      (** {!field:step} writing into a caller-owned buffer [dst] (same
          length as [state], physically distinct from it) — the epoch
          loop's ping-pong hook.  Allocation-free on the dense backend;
          the sparse backends fall back to [step] plus a blit. *)
  correct_cores : state:Linalg.Vec.t -> deltas:Linalg.Vec.t -> unit;
      (** In-place measured-state correction: add [deltas.(k)] kelvin to
          core [k]'s temperature reading, mapped into the backend's
          opaque state coordinates; off-core nodes are untouched.  The
          restart hook observers correct estimates through — the only
          way to edit a state without knowing its coordinate system. *)
  core_temps : Linalg.Vec.t -> Linalg.Vec.t;
      (** Absolute core temperatures of a state. *)
  max_core_temp : Linalg.Vec.t -> float;
  steady_core_temps : Linalg.Vec.t -> Linalg.Vec.t;
      (** Absolute steady core temperatures under constant powers. *)
  steady_peak : Linalg.Vec.t -> float;
  stable_core_temps : Matex.profile -> Linalg.Vec.t;
      (** Absolute core temperatures at the periodic stable-status
          period boundary. *)
  stable_peak : Matex.profile -> float;
      (** Hottest core at the stable-status period boundary — the
          step-up evaluator of Theorem 1. *)
  peak_scan : samples_per_segment:int -> Matex.profile -> float;
      (** Dense scan of the stable-status period. *)
  peak_refined : samples_per_segment:int -> tol:float -> Matex.profile -> float;
      (** Scan plus golden-section refinement. *)
}

(** [of_model model] is the dense reference backend: the model's cached
    {!Modal} response engine behind the uniform interface. *)
val of_model : Model.t -> t

(** [sparse_of_model ?pool model] runs the sparse Krylov engine on the
    spec reconstructed from a dense model ({!Spec.of_model}) — the
    differential-testing bridge. *)
val sparse_of_model : ?pool:Util.Pool.t -> Model.t -> t

(** [sparse_of_spec ?pool spec] is the sparse backend of a problem
    description — never builds anything dense, so it is the only
    constructor that scales to 256–1024 cells. *)
val sparse_of_spec : ?pool:Util.Pool.t -> Spec.t -> t

(** [dense_of_spec spec] assembles the dense model of a spec (including
    its O(n³) eigensolve) and wraps it — the reference arm of
    dense-versus-sparse comparisons; do not call at large n. *)
val dense_of_spec : Spec.t -> t

(** [of_sparse eng] wraps an already-assembled sparse engine. *)
val of_sparse : Sparse_model.t -> t

(** [of_response resp] wraps a {!Sparse_response} superposition engine:
    steady and stable evaluators superpose over the unit-response tables
    (and warm-start the fixed-point CG) instead of solving per-candidate
    steady systems.  Same answers as {!of_sparse} to Krylov truncation;
    pays the [n_cores + 1] unit solves up front, so prefer {!of_sparse}
    for one-shot evaluations and this wrapper inside search loops. *)
val of_response : Sparse_response.t -> t
