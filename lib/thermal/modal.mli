(** Modal (eigenbasis) thermal evaluation engine — the hot path behind
    {!Matex}, {!Sched.Peak} and {!Runtime.Governor}.

    {!Model.make} already diagonalizes [A = W diag(lambda) W^{-1}] with
    real negative [lambda], so the whole simulation can run in modal
    coordinates [z = W^{-1} theta], where propagating over ANY [dt] is an
    O(n) diagonal scale:

    {[ z(t) = z_inf + e^{lambda t} . (z(0) - z_inf) ]}

    with [z_inf = W^{-1} theta_inf(psi)].  A {!segment} precomputes
    [z_inf] (one cached LU solve per distinct [psi] — the factorization
    lives in the model) and the decay factors [e^{lambda_i dt}] once;
    every sample afterwards is element-wise arithmetic — no matrix
    exponential, no LU, no mutex.  Because all segments share one
    eigenbasis, the periodic stable status [(I - K)^{-1} d] collapses to
    a per-mode division ({!stable_z}).

    An engine is an immutable O(1) view of the model's eigendata
    (see {!Model.modal_parts}); create one per evaluation, share freely
    across domains.  {!Model.step} remains the reference implementation —
    the property tests diff the two paths. *)

type t
(** An immutable modal evaluation engine bound to a {!Model.t}. *)

(** [make model] builds an engine.  O(n_cores * n) — cheap enough to call
    once per evaluation. *)
val make : Model.t -> t

(** [model t] is the underlying thermal model. *)
val model : t -> Model.t

(** [n_modes t] equals [Model.n_nodes] of the underlying model. *)
val n_modes : t -> int

(** [eigenvalues t] is a copy of the (all negative) mode eigenvalues,
    slowest first. *)
val eigenvalues : t -> Linalg.Vec.t

(** [to_modal t theta] is [z = W^{-1} theta]. *)
val to_modal : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [of_modal t z] is [theta = W z]. *)
val of_modal : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [ambient_state t] is the modal image of the ambient (all-zero theta)
    state — also all zeros. *)
val ambient_state : t -> Linalg.Vec.t

(** [theta_inf t psi] is the node-space steady state (the model's cached
    LU solve). *)
val theta_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [z_inf t psi] is the modal steady state [W^{-1} theta_inf(psi)]. *)
val z_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [step t ~dt ~z ~psi] advances a modal state by [dt] under constant
    powers [psi] — the O(n) counterpart of {!Model.step}.  Prefer
    {!segment}/{!advance} when the same [(dt, psi)] recurs. *)
val step : t -> dt:float -> z:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [core_temps t z] are the absolute core temperatures of modal state
    [z], read through the precomputed core rows of [W] — O(n_cores * n),
    no full basis transform. *)
val core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [max_core_temp t z] is the hottest absolute core temperature of
    modal state [z]; allocation-free. *)
val max_core_temp : t -> Linalg.Vec.t -> float

type segment
(** A precomputed constant-power interval: duration, the decay factors
    [e^{lambda dt}] and the modal equilibrium [z_inf(psi)]. *)

(** [segment t ~duration ~psi] precomputes a segment.  Raises
    [Invalid_argument] on non-positive durations. *)
val segment : t -> duration:float -> psi:Linalg.Vec.t -> segment

(** [duration s] is the segment length. *)
val duration : segment -> float

(** [split s k] is the segment covering [duration s / k] under the same
    power — the sub-step used by dense scans, sharing [s]'s equilibrium
    so no new solve is performed. *)
val split : segment -> int -> segment

(** [advance s z] is the modal state one full segment after [z] — O(n)
    multiply-adds. *)
val advance : segment -> Linalg.Vec.t -> Linalg.Vec.t

(** [at s ~t_rel z] is the modal state [t_rel] seconds into the segment,
    starting from [z] at the segment boundary ([t_rel] need not be a
    sub-step multiple — golden-section probes use this). *)
val at : segment -> t_rel:float -> Linalg.Vec.t -> Linalg.Vec.t

(** [stable_z t segs] is the modal stable status of the periodic profile
    [segs]: because [K = prod e^{A dt_q}] is diagonal in modal space, the
    [(I - K)^{-1}] solve of {!Matex.stable_start} collapses to a per-mode
    division, O(n) per segment plus O(n) for the solve.  Raises
    [Invalid_argument] on an empty list. *)
val stable_z : t -> segment list -> Linalg.Vec.t
