(** Modal (eigenbasis) thermal evaluation engine — the hot path behind
    {!Matex}, {!Sched.Peak} and {!Runtime.Governor}.

    {!Model.make} already diagonalizes [A = W diag(lambda) W^{-1}] with
    real negative [lambda], so the whole simulation can run in modal
    coordinates [z = W^{-1} theta], where propagating over ANY [dt] is an
    O(n) diagonal scale:

    {[ z(t) = z_inf + e^{lambda t} . (z(0) - z_inf) ]}

    with [z_inf = W^{-1} theta_inf(psi)].

    On top of the modal basis the engine is a {e linear-response
    superposition} engine: because the model is linear and
    [theta_inf] is affine in [psi] (the leakage drive [beta T_amb]
    enters every core identically),

    {[ z_inf(psi) = sum_i (psi_i + beta T_amb) . z_inf(e_i) ]}

    so the per-core unit responses [z_inf(e_i)] — solved once with the
    reference LU path when the engine is built — turn every subsequent
    equilibrium into an O(n * n_cores) multiply-add with zero LU solves.
    Decay factors [e^{lambda dt}] are amortized in a per-duration table
    (policy sweeps reuse a handful of durations thousands of times), and
    the streaming {!stable_begin}/{!stable_feed}/{!stable_solve} path
    evaluates a candidate's stable status into per-domain scratch
    buffers with no allocation at all.

    {!make} caches one engine per model (physical identity), so repeated
    evaluations on one platform share the tables; engines are safe to
    share across domains ({!Domain.DLS} scratch, mutex-guarded tables).
    {!Model.step} remains the reference implementation — the property
    tests diff the two paths to <= 1e-9. *)

type t
(** A modal evaluation engine bound to a {!Model.t}.  Immutable eigendata
    plus internally synchronized response tables; share freely across
    domains. *)

(** Amortization counters of one engine (plus the process-wide build
    count), for observability of the response-engine hot path. *)
type stats = {
  builds : int;  (** Engines built process-wide (unit-response solves). *)
  superpose_evals : int;  (** Superposition equilibrium evaluations. *)
  exp_hits : int;  (** Decay/gain lookups answered from the table. *)
  exp_misses : int;  (** Decay/gain lookups that computed. *)
  base_solves : int;  (** Prepared-base builds ({!base_solve}). *)
  delta_evals : int;  (** Delta candidate evaluations. *)
}

(** [make model] returns the engine of [model], building it (one LU
    solve per core for the unit-response table) on first use and
    returning the cached engine afterwards — amortized O(1). *)
val make : Model.t -> t

(** [model t] is the underlying thermal model. *)
val model : t -> Model.t

(** [n_modes t] equals [Model.n_nodes] of the underlying model. *)
val n_modes : t -> int

(** [eigenvalues t] is a copy of the (all negative) mode eigenvalues,
    slowest first. *)
val eigenvalues : t -> Linalg.Vec.t

(** [stats t] snapshots the engine's amortization counters. *)
val stats : t -> stats

(** [to_modal t theta] is [z = W^{-1} theta]. *)
val to_modal : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [of_modal t z] is [theta = W z]. *)
val of_modal : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [ambient_state t] is the modal image of the ambient (all-zero theta)
    state — also all zeros. *)
val ambient_state : t -> Linalg.Vec.t

(** [theta_inf t psi] is the node-space steady state (the model's cached
    LU solve — the reference path, not the superposition). *)
val theta_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [z_inf t psi] is the modal steady state, composed from the unit
    responses by superposition — no LU solve.  Agrees with
    [W^{-1} theta_inf(psi)] to machine precision (<= 1e-9 guaranteed by
    the differential suite). *)
val z_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [z_inf_into t dst psi] writes the superposed equilibrium into [dst]
    (length [n_modes t]) without allocating. *)
val z_inf_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

(** [steady_peak t psi] is the hottest steady-state core temperature
    under constant powers [psi], by superposition on the core-row
    response table — O(n_cores^2), allocation-free. *)
val steady_peak : t -> Linalg.Vec.t -> float

(** [decay_gain t dt] is the [(e^{lambda dt}, -expm1(lambda dt))] pair
    for [dt], computed fresh.  The streaming evaluators amortize these
    through a per-domain direct-mapped table instead; this entry point
    is for callers that keep the vectors. *)
val decay_gain : t -> float -> Linalg.Vec.t * Linalg.Vec.t

(** [step t ~dt ~z ~psi] advances a modal state by [dt] under constant
    powers [psi] — the O(n) counterpart of {!Model.step}.  Prefer
    {!segment}/{!advance} when the same [(dt, psi)] recurs. *)
val step : t -> dt:float -> z:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [step_into t ~dt ~z ~psi ~dst] writes {!step}'s result into [dst]
    without allocating: the equilibrium superposes straight into [dst]
    and the decay factors amortize through the per-domain duration
    table, so a control loop stepping at one fixed [dt] pays [n]
    multiply-adds per call.  Bit-identical to {!step}.  Raises
    [Invalid_argument] when [dst] aliases [z], on arity mismatches, or
    on a negative [dt]. *)
val step_into :
  t -> dt:float -> z:Linalg.Vec.t -> psi:Linalg.Vec.t -> dst:Linalg.Vec.t -> unit

(** [core_temps t z] are the absolute core temperatures of modal state
    [z], read through the precomputed core rows of [W] — O(n_cores * n),
    no full basis transform. *)
val core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [max_core_temp t z] is the hottest absolute core temperature of
    modal state [z]; allocation-free. *)
val max_core_temp : t -> Linalg.Vec.t -> float

(** {2 Streaming stable-status evaluation}

    The candidate-evaluation hot path: fold a periodic profile through
    {!stable_begin} / {!stable_feed} (once per segment, in order), then
    {!stable_solve} with the period length.  Mathematically identical to
    {!stable_z} over freshly built segments, but allocation-free: all
    state lives in per-domain scratch, so pool workers never contend or
    cross-contaminate.  The scratch is reused by the next evaluation on
    the same domain — read everything you need from the returned vector
    before starting another one. *)

(** [stable_begin t] resets this domain's accumulator. *)
val stable_begin : t -> unit

(** [stable_feed t ~duration ~psi] folds one constant-power segment into
    the accumulator.  Raises [Invalid_argument] on non-positive
    durations. *)
val stable_feed : t -> duration:float -> psi:Linalg.Vec.t -> unit

(** [stable_solve t ~t_p] solves the per-mode fixed point for a period of
    [t_p] seconds and returns this domain's scratch stable status (valid
    until the next streaming evaluation on this domain). *)
val stable_solve : t -> t_p:float -> Linalg.Vec.t

(** [scan_begin t] seats this domain's dense-scan cursor on the stable
    status just produced by {!stable_solve}. *)
val scan_begin : t -> unit

(** [scan_feed t ~samples ~duration ~psi] walks one segment of the
    periodic trajectory in [samples] equal sub-steps and returns the
    hottest core temperature among the visited states; the cursor then
    advances by the full [duration] in one exact step so boundary states
    accumulate no sub-step rounding.  Allocation-free; bit-identical to
    scanning freshly built {!segment}s.  Raises [Invalid_argument] on a
    non-positive [duration] or [samples]. *)
val scan_feed : t -> samples:int -> duration:float -> psi:Linalg.Vec.t -> float

(** {2 Prepared-base delta evaluation}

    The TPT-loop hot path (DESIGN.md §14): capture an aligned two-mode
    config's accumulated drive once ({!base_begin} / {!base_feed} per
    core / {!base_solve}), then evaluate candidates that change a
    {e single} core's duty cycle or voltages in O(n) each — the base
    stable status plus one rescaled unit response — instead of a full
    O(n · n_cores) re-superposition.  Same-voltage deltas (the TPT
    loops only move duty cycles) are evaluated cancellation-free
    through an [expm1]-backed gain factor.

    The prepared base lives in per-domain scratch DISJOINT from the
    streaming [stable_*] state: exact evaluations interleaved between
    delta candidates (winner verification) do not disturb it.  Like all
    DLS state, a base prepared on one domain is invisible on others —
    prepare and evaluate on the same domain.  Boundary snapping
    replicates the exact decomposed path's 1e-12 clamps, so delta and
    full evaluations agree to the differential suite's 1e-9. *)

(** [base_begin t ~t_p] starts preparing a base config with period
    [t_p] on this domain.  Raises [Invalid_argument] on a non-positive
    period. *)
val base_begin : t -> t_p:float -> unit

(** [base_feed t ~core ~psi_low ~psi_high ~high_ratio] records core
    [core]'s two-mode terms: low/high power draws (pre-leakage, as
    {!Power.Power_model.psi} returns them) and the high-time fraction.
    Every core must be fed exactly once before {!base_solve}.  Raises
    [Invalid_argument] without a preceding {!base_begin}, on an
    out-of-range core, or a ratio outside [[-1e-12, 1 + 1e-12]]. *)
val base_feed :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float -> unit

(** [base_solve t] solves the prepared base's stable status and arms the
    delta evaluators; returns this domain's scratch base vector (valid
    until the next [base_begin] on this domain).  Raises
    [Invalid_argument] if some core was never fed. *)
val base_solve : t -> Linalg.Vec.t

(** [delta_solve t ~core ~psi_low ~psi_high ~high_ratio] is the stable
    status of the candidate equal to the prepared base except for core
    [core]'s terms — O(n), allocation-free, returned in this domain's
    scratch (valid until the next delta or base call).  Raises
    [Invalid_argument] without a solved base on this domain. *)
val delta_solve :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float ->
  Linalg.Vec.t

(** [delta_peak t ~core ~psi_low ~psi_high ~high_ratio] is the hottest
    end-of-period core temperature of the delta candidate. *)
val delta_peak :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float -> float

(** [delta_core_temp t ~at ~core ~psi_low ~psi_high ~high_ratio] is the
    delta candidate's end-of-period temperature at core [at] — the
    hottest-core read the TPT adjustment scan scores candidates by. *)
val delta_core_temp :
  t -> at:int -> core:int -> psi_low:float -> psi_high:float ->
  high_ratio:float -> float

type segment
(** A precomputed constant-power interval: duration, the decay factors
    [e^{lambda dt}] and the modal equilibrium [z_inf(psi)]. *)

(** [segment t ~duration ~psi] precomputes a segment (decay/gain from the
    shared table, equilibrium by superposition).  Raises
    [Invalid_argument] on non-positive durations. *)
val segment : t -> duration:float -> psi:Linalg.Vec.t -> segment

(** [duration s] is the segment length. *)
val duration : segment -> float

(** [split s k] is the segment covering [duration s / k] under the same
    power — the sub-step used by dense scans, sharing [s]'s equilibrium
    so no new solve is performed. *)
val split : segment -> int -> segment

(** [advance s z] is the modal state one full segment after [z] — O(n)
    multiply-adds. *)
val advance : segment -> Linalg.Vec.t -> Linalg.Vec.t

(** [at s ~t_rel z] is the modal state [t_rel] seconds into the segment,
    starting from [z] at the segment boundary ([t_rel] need not be a
    sub-step multiple — golden-section probes use this). *)
val at : segment -> t_rel:float -> Linalg.Vec.t -> Linalg.Vec.t

(** [stable_z t segs] is the modal stable status of the periodic profile
    [segs]: because [K = prod e^{A dt_q}] is diagonal in modal space, the
    [(I - K)^{-1}] solve of {!Matex.stable_start} collapses to a per-mode
    division, O(n) per segment plus O(n) for the solve.  Raises
    [Invalid_argument] on an empty list. *)
val stable_z : t -> segment list -> Linalg.Vec.t
