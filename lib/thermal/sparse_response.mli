(** Linear-response superposition engine for the sparse backend.

    The dense pipeline amortizes candidate evaluation through
    {!Modal}'s unit-response tables: per-core unit steady responses are
    solved once per platform, after which every candidate equilibrium
    is an O(n · n_cores) superposition and every stable-status solve
    streams segments through per-domain scratch.  This module is the
    same idea ported to {!Sparse_model}, where no eigenbasis exists:

    - build solves the [n_cores + 1] unit steady systems once, by
      pool-parallel preconditioned CG ({!Sparse_model.steady_batch});
    - every segment equilibrium thereafter is a superposition over the
      unit responses — no per-candidate CG steady solves;
    - the constant-voltage steady peak reads a precomputed
      core-row table, O(n_cores²) per candidate with zero allocation;
    - the periodic stable status accumulates the drive [d] through
      allocation-free streaming feeds ({!stable_begin}/{!stable_feed}/
      {!stable_solve}, mirroring {!Modal}'s API; the [e^{-dt M}]
      applications still build their Krylov bases) and solves the SPD
      fixed point [(I - e^{-T_p M}) y* = d] by CG warm-started at
      [x0 = d] — a candidate-local deterministic guess, so results are
      bit-identical at any pool size.

    Superposition is mathematically exact (the heat input is affine in
    the power vector); the engine differs from per-candidate
    {!Sparse_model} solves only by Krylov truncation, three orders of
    magnitude under the differential suite's 1e-9 bound. *)

type t

type stats = {
  builds : int;  (** Engines constructed process-wide. *)
  superpose_evals : int;  (** Superposed equilibrium evaluations. *)
  stable_solves : int;  (** Streaming stable-status fixed points solved. *)
  base_solves : int;  (** Prepared-base builds ({!base_solve}). *)
  delta_evals : int;  (** Delta candidate evaluations. *)
}

(** [build eng] solves the unit responses and assembles the tables —
    [n_cores + 1] preconditioned CG solves fanned across the engine's
    pool.  Prefer {!make}, which shares the result per engine. *)
val build : Sparse_model.t -> t

(** [make eng] is the memoized {!build}: one response engine per sparse
    engine (physical identity), so every evaluation context on a
    platform superposes over identical tables. *)
val make : Sparse_model.t -> t

(** [engine t] is the sparse engine the responses were solved on. *)
val engine : t -> Sparse_model.t

val n_nodes : t -> int
val n_cores : t -> int
val ambient : t -> float

(** [stats t] snapshots the counters ([builds] is process-wide). *)
val stats : t -> stats

(** [y_inf t psi] is the superposed equilibrium state under constant
    per-core powers — bitwise a weighted sum of the unit responses, no
    solve.  {!y_inf_into} writes it into a caller buffer instead. *)
val y_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

val y_inf_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

(** [steady_core_into t dst psi] writes the ambient-relative steady
    core temperatures (superposed off the core-row table, O(n_cores²))
    into [dst] — the static tier {!Reduced}'s screening evaluators sit
    on. *)
val steady_core_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit

(** [steady_core_temps t psi] / [steady_peak t psi] are the absolute
    steady core temperatures / their maximum, by superposition. *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

val steady_peak : t -> Linalg.Vec.t -> float

(** [step t ~dt ~state ~psi] — exact LTI advance with a superposed
    equilibrium: one [expmv], no CG. *)
val step : t -> dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** {1 Streaming stable-status evaluation}

    The candidate hot path, mirroring {!Modal.stable_begin}/
    [stable_feed]/[stable_solve]: fold a periodic profile's segments
    through per-domain scratch (each feed superposes the segment's
    equilibrium allocation-free, then applies one [e^{-dt M}]), then
    solve the fixed point.  Pool workers each see their own scratch
    through [Domain.DLS], so concurrent candidates never share partial
    sums. *)

(** [stable_begin t] resets this domain's accumulated drive. *)
val stable_begin : t -> unit

(** [stable_feed t ~duration ~psi] folds one segment into the drive.
    Raises [Invalid_argument] on a non-positive duration. *)
val stable_feed : t -> duration:float -> psi:Linalg.Vec.t -> unit

(** [stable_solve t ~t_p] solves the period-[t_p] fixed point from the
    accumulated drive and returns the stable state at the period
    boundary (a fresh vector). *)
val stable_solve : t -> t_p:float -> Linalg.Vec.t

(** {1 Prepared-base delta evaluation}

    The TPT-loop hot path (DESIGN.md §14), sparse flavour: a two-mode
    config's stable status factors per core as a spectral weight
    [h_i(M)] applied to that core's unit response, so the base solves
    once through per-core prepared Lanczos bases ({!Linalg.Krylov.prepare}
    — f-independent, grown lazily, reused by every candidate) and a
    candidate changing one core's duty cycle needs only the core-node
    reads of a rank-one spectral correction: O(m · n_cores) per
    candidate, no funmv stream, no new basis.

    All state (including the prepared bases, which are mutable and not
    domain-safe) lives in per-domain [Domain.DLS] scratch, disjoint
    from the streaming [stable_*] arrays — prepare and evaluate on the
    same domain; exact evaluations interleaved between deltas do not
    disturb the base. *)

(** [base_begin t ~t_p] starts preparing a base config with period
    [t_p] on this domain. *)
val base_begin : t -> t_p:float -> unit

(** [base_feed t ~core ~psi_low ~psi_high ~high_ratio] records core
    [core]'s two-mode terms (boundary snapping replicates the exact
    decomposed path's 1e-12 clamps).  Every core must be fed before
    {!base_solve}. *)
val base_feed :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float -> unit

(** [base_solve t] solves the prepared base's stable status and arms the
    delta evaluators; returns this domain's scratch base vector. *)
val base_solve : t -> Linalg.Vec.t

(** [delta_solve t ~core ~psi_low ~psi_high ~high_ratio] is the full
    stable status (fresh vector) of the candidate equal to the prepared
    base except for core [core]'s terms — the differential-test
    entry point; the search loops use the peak/temp reads below. *)
val delta_solve :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float ->
  Linalg.Vec.t

(** [delta_peak t ~core ~psi_low ~psi_high ~high_ratio] is the hottest
    end-of-period core temperature of the delta candidate, from
    core-node reads only. *)
val delta_peak :
  t -> core:int -> psi_low:float -> psi_high:float -> high_ratio:float -> float

(** [delta_core_temp t ~at ~core ~psi_low ~psi_high ~high_ratio] is the
    delta candidate's end-of-period temperature at core [at]. *)
val delta_core_temp :
  t -> at:int -> core:int -> psi_low:float -> psi_high:float ->
  high_ratio:float -> float

(** {1 Profile evaluators}

    {!Sparse_model}'s profile interface on the superposition tables —
    per-segment equilibria come from {!y_inf_into} instead of CG
    solves, and the stable fixed point is warm-started; everything else
    (validation, sampling semantics, golden-section refinement) matches
    the direct engine exactly. *)

val stable_start : t -> Matex.profile -> Linalg.Vec.t
val stable_core_temps : t -> Matex.profile -> Linalg.Vec.t
val end_of_period_peak : t -> Matex.profile -> float
val peak_scan : t -> ?samples_per_segment:int -> Matex.profile -> float

val peak_refined :
  t -> ?samples_per_segment:int -> ?tol:float -> Matex.profile -> float
