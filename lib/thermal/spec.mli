(** Lightweight thermal problem description — the sparse backend's input.

    {!Model.make} eagerly pays an O(n³) dense eigendecomposition, which
    is exactly what the sparse path must avoid at 256–1024 cells.  A
    spec carries the raw problem data instead — capacitances, ambient
    conductances, the edge list, the core-node set — so
    {!Sparse_model.of_spec} can assemble its CSR operator in O(nnz)
    without ever forming a dense matrix, while {!to_model} still builds
    the dense reference model from the identical data for differential
    testing. *)

type t = private {
  ambient : float;  (** Ambient temperature, degrees C. *)
  leak_beta : float;  (** Leakage/temperature slope, W/K per core. *)
  capacitance : Linalg.Vec.t;  (** Diagonal of [C], J/K, all positive. *)
  to_ambient : Linalg.Vec.t;  (** Per-node ambient conductance, W/K. *)
  edges : (int * int * float) list;
      (** Node-to-node conductances [(i, j, g)], [g > 0], [i <> j].
          Duplicates accumulate on assembly. *)
  core_nodes : int array;  (** Distinct node indices hosting cores. *)
}

(** [make ~ambient ~leak_beta ~capacitance ~to_ambient ~edges
    ~core_nodes ()] validates and builds a spec.  Raises
    [Invalid_argument] on arity mismatches, non-positive capacitances,
    negative conductances, self-loops, out-of-range or duplicate core
    nodes, or an empty core set. *)
val make :
  ambient:float ->
  leak_beta:float ->
  capacitance:Linalg.Vec.t ->
  to_ambient:Linalg.Vec.t ->
  edges:(int * int * float) list ->
  core_nodes:int array ->
  unit ->
  t

(** [of_network ?ambient ?leak_beta ~core_nodes net] reads the node and
    edge data straight out of an RC network (defaults:
    {!Hotspot.default_ambient}, {!Hotspot.default_leak_beta}). *)
val of_network :
  ?ambient:float -> ?leak_beta:float -> core_nodes:int array -> Rc_network.t -> t

(** [of_model model] reconstructs the spec of an already-built dense
    model from its effective conductance — the bridge that lets the
    sparse backend run on any existing {!Model.t} for parity tests. *)
val of_model : Model.t -> t

(** [n_nodes spec] is the thermal node count. *)
val n_nodes : t -> int

(** [n_cores spec] is the core count. *)
val n_cores : t -> int

(** [g_eff_triplets spec] is [G' = G - beta E] as assembly triplets
    (duplicates sum): ambient and accumulated edge conductances on the
    diagonal, [-beta] at core diagonals, [-g] off-diagonal.  Feed to
    {!Linalg.Sparse.of_triplets} — O(nnz), no dense intermediate. *)
val g_eff_triplets : t -> (int * int * float) list

(** [to_model spec] assembles the dense {!Model.t} of the same problem
    (including its O(n³) eigensolve) — the reference path. *)
val to_model : t -> Model.t
