(** HotSpot-style compact-model construction from a floorplan.

    The paper obtains its [A]/[B] matrices from HotSpot-5.02 and then
    "simplifies the floor-plan to the core-level"; this module rebuilds
    that pipeline.  Two levels of detail are provided:

    - {!core_level}: one thermal node per core, with package and spreader
      effects folded into effective per-area constants
      ({!Material.lumped_vertical_resistance_area} and friends).  This is
      the model every policy in {!Core} consumes, exactly the shape the
      paper works with.
    - {!layered}: adds an explicit spreader node per core and one shared
      heat-sink node — a finer network used to validate that the
      core-level lumping preserves the dynamics (and to exercise the
      passive-node handling of {!Model}). *)

(** The paper's T_amb (degrees C) and leakage slope (W/K) — the defaults
    every builder here and in {!Spec}/{!Grid_model} shares. *)
val default_ambient : float

val default_leak_beta : float

(** [core_level ?ambient ?leak_beta ?lateral_scale ?vertical_scale
    ?capacitance_scale fp] builds the core-level model for floorplan
    [fp].  Defaults: [ambient = 35.] (the paper's T_amb),
    [leak_beta = 0.05] W/K, every scale 1.  The scale knobs multiply the
    calibrated lateral conductances, ambient paths and capacitances —
    used by the sensitivity experiments (e.g. how the Theorem-1
    approximation degrades with coupling strength). *)
val core_level :
  ?ambient:float ->
  ?leak_beta:float ->
  ?lateral_scale:float ->
  ?vertical_scale:float ->
  ?capacitance_scale:float ->
  Floorplan.t ->
  Model.t

(** [layered ?ambient ?leak_beta fp] builds the die + spreader + shared
    sink model.  Core nodes come first, in floorplan order. *)
val layered : ?ambient:float -> ?leak_beta:float -> Floorplan.t -> Model.t

(** [network_of_floorplan ?lateral_scale ?vertical_scale
    ?capacitance_scale fp] is the raw core-level RC network, exposed for
    tests that want to poke at conductances directly. *)
val network_of_floorplan :
  ?lateral_scale:float ->
  ?vertical_scale:float ->
  ?capacitance_scale:float ->
  Floorplan.t ->
  Rc_network.t
