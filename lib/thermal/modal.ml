module Mat = Linalg.Mat
module Vec = Linalg.Vec

type stats = {
  builds : int;
  superpose_evals : int;
  exp_hits : int;
  exp_misses : int;
  base_solves : int;
  delta_evals : int;
}

(* Per-domain scratch, sized to the engine.  Pool workers each see
   their own set through Domain.DLS, so the streaming stable-status
   evaluation below is allocation-free without any locking — and two
   domains can never observe each other's partial sums.

   The decay/gain memo lives here too, as a direct-mapped table: slot
   [s] of [dkeys] holds a duration's bit pattern and the corresponding
   [2n] floats of [dvals] hold (e^{lambda_j dt}, -expm1(lambda_j dt)).
   Lock-free by construction (nothing is shared), and a miss is just
   [n] exp/expm1 pairs computed in place — so a cold table costs barely
   more than a warm one, where the old shared mutex-guarded table paid
   an allocation, a queue insertion and two lock rounds per miss.
   Collisions simply overwrite: recomputation is deterministic, so any
   replacement policy returns bit-identical values. *)
type scratch = {
  d : float array;  (* accumulated periodic drive over one period *)
  z_eq : float array;  (* superposed per-segment modal equilibrium *)
  z_star : float array;  (* solved stable status *)
  dkeys : int64 array;  (* slot -> duration bits; 0L = empty (dt > 0) *)
  dvals : float array;  (* slot * 2n: n decays then n gains *)
  mutable tally_hits : int;  (* decay-table counters, flushed to the *)
  mutable tally_misses : int;  (* engine's atomics once per solve *)
  z_cur : float array;  (* dense-scan cursor (exact segment boundaries) *)
  z_smp : float array;  (* dense-scan sub-step walker *)
  (* ---- prepared-base delta state (base_begin / base_feed / base_solve
     and the delta evaluators): the per-core two-mode drive parameters
     of the prepared base config, its stable status, and candidate scratch.
     Deliberately separate from the streaming arrays above, so exact
     [stable_*] evaluations interleaved between delta candidates (the
     TPT loops' winner verification) never clobber the prepared base. *)
  base_cl : float array;  (* nc: psi_low + beta T_amb *)
  base_ch : float array;  (* nc: psi_high + beta T_amb *)
  base_mode : int array;  (* nc: -1 all-low, +1 all-high, 0 interior *)
  base_ll : float array;  (* nc: leading low duration (interior cores) *)
  z_base : float array;  (* n: the base config's stable status *)
  z_tmp : float array;  (* n: per-core drive scratch *)
  z_cand : float array;  (* n: delta candidate stable status *)
  mutable base_t_p : float;  (* period; 0. = no base being prepared *)
  mutable base_ready : bool;  (* base_solve completed *)
}

let decay_slots = 1024 (* power of two; see [decay_slot] *)

type t = {
  model : Model.t;
  n : int;
  lambda : Vec.t; (* shared with the model, read-only *)
  w : Mat.t;
  w_inv : Mat.t;
  core_rows : Mat.t; (* n_cores x n: the core rows of W *)
  ambient : float;
  (* ------------------------- linear-response superposition tables ---- *)
  beta_tamb : float; (* leak_beta * T_amb, the per-core ambient drive *)
  unit_rz : float array array;
  (* row i: the modal unit response z_inf(e_i) under 1 W on core i,
     solved once with the LU path at build time. *)
  steady_rows : float array array;
  (* row k: theta_inf responses read at core k, indexed by driving core
     i — the constant-voltage steady peak needs only these entries. *)
  scratch_key : scratch Domain.DLS.key;
  superpose_evals : int Atomic.t;
  exp_hits : int Atomic.t;
  exp_misses : int Atomic.t;
  base_solves : int Atomic.t;
  delta_evals : int Atomic.t;
}

let build_count = Atomic.make 0

let build model =
  let lambda, w, w_inv = Model.modal_parts model in
  let n = Vec.dim lambda in
  let cores = Model.core_nodes model in
  let n_cores = Array.length cores in
  let core_rows = Mat.init n_cores n (fun k j -> Mat.get w cores.(k) j) in
  (* Unit responses via the reference LU path: theta_inf is affine in
     psi (the leakage drive beta*T_amb enters every core node), so
     subtracting the zero-power response isolates the pure per-core
     linear part u_i = G'^{-1} e_{core_i}. *)
  let u0 = Model.theta_inf model (Vec.zeros n_cores) in
  let units =
    Array.init n_cores (fun i ->
        let e = Vec.zeros n_cores in
        e.(i) <- 1.;
        Vec.sub (Model.theta_inf model e) u0)
  in
  Atomic.incr build_count;
  {
    model;
    n;
    lambda;
    w;
    w_inv;
    core_rows;
    ambient = Model.ambient model;
    beta_tamb = Model.leak_beta model *. Model.ambient model;
    unit_rz = Array.map (fun u -> Mat.matvec w_inv u) units;
    steady_rows =
      Array.init n_cores (fun k ->
          Array.init n_cores (fun i -> units.(i).(cores.(k))));
    scratch_key =
      Domain.DLS.new_key (fun () ->
          {
            d = Array.make n 0.;
            z_eq = Array.make n 0.;
            z_star = Array.make n 0.;
            dkeys = Array.make decay_slots 0L;
            dvals = Array.make (decay_slots * 2 * n) 0.;
            tally_hits = 0;
            tally_misses = 0;
            z_cur = Array.make n 0.;
            z_smp = Array.make n 0.;
            base_cl = Array.make n_cores 0.;
            base_ch = Array.make n_cores 0.;
            base_mode = Array.make n_cores min_int;
            base_ll = Array.make n_cores 0.;
            z_base = Array.make n 0.;
            z_tmp = Array.make n 0.;
            z_cand = Array.make n 0.;
            base_t_p = 0.;
            base_ready = false;
          });
    superpose_evals = Atomic.make 0;
    exp_hits = Atomic.make 0;
    exp_misses = Atomic.make 0;
    base_solves = Atomic.make 0;
    delta_evals = Atomic.make 0;
  }

(* Engines are cached per model (physical identity): the unit-response
   build costs one LU solve per core, and every policy evaluation on a
   platform wants the same tables.  The registry is a small bounded FIFO
   so processes that churn through many models (property tests) stay
   bounded; an evicted engine keeps working for holders of the old
   reference, it just stops being shared. *)
let engines_capacity = 16
let engines_lock = Mutex.create ()
let engines : (Model.t * t) list ref =
  ref [] [@@fosc.guarded "mutex"] (* engines_lock *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let make model =
  Mutex.lock engines_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock engines_lock)
    (fun () ->
      match List.find_opt (fun (m, _) -> m == model) !engines with
      | Some (_, eng) -> eng
      | None ->
          (* Built under the lock: construction is a handful of
             cached-LU solves (which can raise on a degenerate model,
             hence the [Fun.protect]), and serializing first use per
             model keeps exactly one engine (one stats stream, one exp
             table) per platform. *)
          let eng = build model in
          engines := (model, eng) :: take (engines_capacity - 1) !engines;
          eng)

let model t = t.model
let n_modes t = t.n
let eigenvalues t = Vec.copy t.lambda
let to_modal t theta = Mat.matvec t.w_inv theta
let of_modal t z = Mat.matvec t.w z
let ambient_state t = Vec.zeros t.n

let theta_inf t psi = Model.theta_inf t.model psi

let stats t =
  {
    builds = Atomic.get build_count;
    superpose_evals = Atomic.get t.superpose_evals;
    exp_hits = Atomic.get t.exp_hits;
    exp_misses = Atomic.get t.exp_misses;
    base_solves = Atomic.get t.base_solves;
    delta_evals = Atomic.get t.delta_evals;
  }

(* ------------------------------------------------ superposed responses *)

let check_psi t psi =
  if Vec.dim psi <> Array.length t.unit_rz then
    invalid_arg "Modal: power vector arity differs from the engine's core count"

(* z_inf(psi) = sum_i (psi_i + beta T_amb) z_inf(e_i): exact because the
   thermal model is linear and theta_inf is affine in psi with the
   leakage drive beta*T_amb entering every core identically. *)
let z_inf_into t dst psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  Array.fill dst 0 t.n 0.;
  for i = 0 to Array.length t.unit_rz - 1 do
    let row = t.unit_rz.(i) in
    let c = psi.(i) +. t.beta_tamb in
    for j = 0 to t.n - 1 do
      Array.unsafe_set dst j
        (Array.unsafe_get dst j +. (c *. Array.unsafe_get row j))
    done
  done

let z_inf t psi =
  let dst = Array.make t.n 0. in
  z_inf_into t dst psi;
  dst

(* The constant-voltage steady peak by the same superposition, read
   directly off the core-row response table: O(n_cores^2), no LU, no
   allocation. *)
let steady_peak t psi =
  check_psi t psi;
  Atomic.incr t.superpose_evals;
  let nc = Array.length t.steady_rows in
  let best = ref neg_infinity in
  for k = 0 to nc - 1 do
    let row = t.steady_rows.(k) in
    let acc = ref 0. in
    for i = 0 to nc - 1 do
      acc := !acc +. ((psi.(i) +. t.beta_tamb) *. Array.unsafe_get row i)
    done;
    if !acc > !best then best := !acc
  done;
  !best +. t.ambient

(* --------------------------------------------------- decay/gain table *)

let compute_decay_gain t dt =
  ( Array.map (fun l -> exp (l *. dt)) t.lambda,
    Array.map (fun l -> -.Float.expm1 (l *. dt)) t.lambda )

let decay_gain = compute_decay_gain

(* Fibonacci-style multiplicative hash of a duration's bit pattern into
   a direct-mapped slot.  The low mantissa bits of nearby durations are
   the ones that differ, so the multiply spreads them across the high
   bits we keep. *)
let[@inline] decay_slot key =
  Int64.to_int (Int64.shift_right_logical (Int64.mul key 0x9E3779B97F4A7C15L) 52)
  land (decay_slots - 1)

(* Ensure slot [slot] of the per-domain table holds [dt]'s decay/gain
   row; returns the row's base offset into [s.dvals].  The counters
   tally into the scratch (flushed by [stable_solve]) so the hot loop
   performs no atomic traffic. *)
let[@inline] decay_row t (s : scratch) dt =
  let key = Int64.bits_of_float dt in
  let slot = decay_slot key in
  let base = slot * 2 * t.n in
  if Array.unsafe_get s.dkeys slot = key then
    s.tally_hits <- s.tally_hits + 1
  else begin
    s.tally_misses <- s.tally_misses + 1;
    for j = 0 to t.n - 1 do
      let x = Array.unsafe_get t.lambda j *. dt in
      Array.unsafe_set s.dvals (base + j) (exp x);
      Array.unsafe_set s.dvals (base + t.n + j) (-.Float.expm1 x)
    done;
    s.dkeys.(slot) <- key
  end;
  base

let step t ~dt ~z ~psi =
  if Vec.dim z <> t.n then invalid_arg "Modal.step: bad state arity";
  let zi = z_inf t psi in
  Array.init t.n (fun j -> zi.(j) +. (exp (t.lambda.(j) *. dt) *. (z.(j) -. zi.(j))))

(* Allocation-free [step]: equilibrium superposed straight into [dst],
   decay factors amortized through the per-domain duration table (epoch
   loops step at one fixed dt, so after the first call every factor is a
   table read).  The tallies flush per call — stepping happens outside
   the streaming stable-status evaluation, so nothing else will. *)
let step_into t ~dt ~z ~psi ~dst =
  if dt < 0. then invalid_arg "Modal.step_into: negative duration";
  if Vec.dim z <> t.n || Vec.dim dst <> t.n then
    invalid_arg "Modal.step_into: bad state arity";
  if z == dst then invalid_arg "Modal.step_into: dst must not alias z";
  let s = Domain.DLS.get t.scratch_key in
  let base = decay_row t s dt in
  z_inf_into t dst psi;
  let dvals = s.dvals in
  for j = 0 to t.n - 1 do
    let zi = Array.unsafe_get dst j in
    Array.unsafe_set dst j
      (zi
      +. (Array.unsafe_get dvals (base + j) *. (Array.unsafe_get z j -. zi)))
  done;
  if s.tally_hits <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_hits s.tally_hits);
    s.tally_hits <- 0
  end;
  if s.tally_misses <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_misses s.tally_misses);
    s.tally_misses <- 0
  end

let core_temps t z =
  if Vec.dim z <> t.n then invalid_arg "Modal.core_temps: bad state arity";
  let temps = Mat.matvec t.core_rows z in
  Array.map (fun x -> x +. t.ambient) temps

let max_core_temp t z =
  let { Mat.rows; cols; data } = t.core_rows in
  let best = ref neg_infinity in
  for k = 0 to rows - 1 do
    let off = k * cols in
    let acc = ref 0. in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get data (off + j) *. Array.unsafe_get z j)
    done;
    if !acc > !best then best := !acc
  done;
  !best +. t.ambient

(* --------------------------------------- streaming stable-status peak *)

(* The candidate-evaluation hot path: fold a periodic profile's segments
   through the per-domain scratch, then solve the per-mode fixed point.
   Equivalent to [stable_z] over freshly built segments, but with zero
   allocation, zero LU solves and table-amortized exponentials. *)

let stable_begin t =
  let s = Domain.DLS.get t.scratch_key in
  Array.fill s.d 0 t.n 0.

let stable_feed t ~duration ~psi =
  if duration <= 0. then invalid_arg "Modal.stable_feed: non-positive duration";
  let s = Domain.DLS.get t.scratch_key in
  let base = decay_row t s duration in
  z_inf_into t s.z_eq psi;
  let dvals = s.dvals in
  for j = 0 to t.n - 1 do
    Array.unsafe_set s.d j
      ((Array.unsafe_get dvals (base + j) *. Array.unsafe_get s.d j)
      +. (Array.unsafe_get dvals (base + t.n + j) *. Array.unsafe_get s.z_eq j))
  done

let stable_solve t ~t_p =
  (* z*_j = d_j / (1 - e^{lambda_j t_p}); the denominator is exactly the
     gain factor of a [t_p]-long segment, so it shares the table. *)
  let s = Domain.DLS.get t.scratch_key in
  let base = decay_row t s t_p in
  let dvals = s.dvals in
  for j = 0 to t.n - 1 do
    Array.unsafe_set s.z_star j
      (Array.unsafe_get s.d j /. Array.unsafe_get dvals (base + t.n + j))
  done;
  (* One flush per candidate keeps the shared stats observable without
     per-span atomic traffic from every pool worker. *)
  if s.tally_hits <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_hits s.tally_hits);
    s.tally_hits <- 0
  end;
  if s.tally_misses <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_misses s.tally_misses);
    s.tally_misses <- 0
  end;
  (s.z_star
  [@fosc.dls_ok
    "documented borrow of this domain's scratch (see modal.mli): valid until \
     the next stable_begin/feed/solve on the same domain, never shared \
     across domains"])

(* ------------------------------------------- streaming dense scan *)

(* Allocation-free counterpart of the segment-list peak scan: after
   [stable_solve], [scan_begin] seats the cursor on the stable start and
   each [scan_feed] walks one segment in [samples] equal sub-steps
   (identical update to [advance] on a [split] segment: z <- decay z +
   gain z_eq), returning the hottest core temperature among the visited
   states.  The cursor itself advances by the segment's full duration in
   ONE exact step from the segment start, so boundary states accumulate
   no sub-step rounding — exactly like the allocating scan it replaces,
   whose results it reproduces bit-for-bit. *)

let scan_begin t =
  let s = Domain.DLS.get t.scratch_key in
  Array.blit s.z_star 0 s.z_cur 0 t.n

let scan_feed t ~samples ~duration ~psi =
  if duration <= 0. then invalid_arg "Modal.scan_feed: non-positive duration";
  if samples < 1 then invalid_arg "Modal.scan_feed: non-positive sample count";
  let s = Domain.DLS.get t.scratch_key in
  z_inf_into t s.z_eq psi;
  let { Mat.rows; cols; data } = t.core_rows in
  let best = ref neg_infinity in
  (* Sub-step walk on [z_smp]; nothing in the loop touches the decay
     table, so the row fetched here cannot be evicted mid-walk. *)
  let sub_base = decay_row t s (duration /. float_of_int samples) in
  Array.blit s.z_cur 0 s.z_smp 0 t.n;
  for _ = 1 to samples do
    for j = 0 to t.n - 1 do
      Array.unsafe_set s.z_smp j
        ((Array.unsafe_get s.dvals (sub_base + j) *. Array.unsafe_get s.z_smp j)
        +. Array.unsafe_get s.dvals (sub_base + t.n + j)
           *. Array.unsafe_get s.z_eq j)
    done;
    for k = 0 to rows - 1 do
      let off = k * cols in
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        acc := !acc +. (Array.unsafe_get data (off + j) *. Array.unsafe_get s.z_smp j)
      done;
      if !acc > !best then best := !acc
    done
  done;
  (* Exact full-duration boundary step from the segment start. *)
  let full_base = decay_row t s duration in
  for j = 0 to t.n - 1 do
    Array.unsafe_set s.z_cur j
      ((Array.unsafe_get s.dvals (full_base + j) *. Array.unsafe_get s.z_cur j)
      +. Array.unsafe_get s.dvals (full_base + t.n + j) *. Array.unsafe_get s.z_eq j)
  done;
  !best +. t.ambient

(* ------------------------------------------- prepared-base deltas *)

(* Delta candidate evaluation (DESIGN.md §14).  Per-core two-mode drive
   over one period, from zero state:

     interior:  w_i = cl . D_{T-ll} . g_ll + ch . g_{T-ll}
     all-low:   w_i = cl . g_T          all-high: w_i = ch . g_T

   with D_dt = e^{lambda dt}, g_dt = -expm1(lambda dt), cl/ch = psi +
   beta T_amb and ll the leading low duration.  The accumulated drive
   of a whole config is d = sum_i u_i . w_i (u_i the modal unit
   responses), so z_base = d / g_T — and a candidate that changes only
   core j's terms is z_base + u_j . (w_j' - w_j) / g_T: O(n) per
   candidate instead of a full O(n . n_cores) re-superposition.  When
   only the duty cycle moves (the TPT loops never change voltages), the
   difference is evaluated cancellation-free:

     w' - w = (cl - ch) (D_{T-ll'} - D_{T-ll})
            = +-(cl - ch) . D_{T-max(ll,ll')} . g_{|ll - ll'|}

   The prepared base lives in per-domain scratch arrays DISJOINT from
   the streaming stable_* state, so the exact winner verification the
   TPT loops interleave between candidates cannot clobber it. *)

let flush_tallies t (s : scratch) =
  if s.tally_hits <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_hits s.tally_hits);
    s.tally_hits <- 0
  end;
  if s.tally_misses <> 0 then begin
    ignore (Atomic.fetch_and_add t.exp_misses s.tally_misses);
    s.tally_misses <- 0
  end

(* Replicates [Sched.Peak.two_mode_decompose]'s ratio validation and
   boundary snapping (which itself replicates [Schedule.two_mode]), so
   the prepared-base path agrees with the exact decomposed path on
   which spans exist.  Returns [(mode, ll)] with mode -1 = all-low
   (ll = t_p), +1 = all-high (ll = 0), 0 = interior. *)
let two_mode_core_shape ~t_p ~high_ratio =
  if high_ratio < -1e-12 || high_ratio > 1. +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Modal: high_ratio %.6g not in [0,1]" high_ratio);
  let lh = Float.max 0. (Float.min t_p (high_ratio *. t_p)) in
  let ll = t_p -. lh in
  if lh <= 1e-12 then (-1, t_p)
  else if ll <= 1e-12 then (1, 0.)
  else (0, ll)

let base_begin t ~t_p =
  if t_p <= 0. then invalid_arg "Modal.base_begin: non-positive period";
  let s = Domain.DLS.get t.scratch_key in
  s.base_t_p <- t_p;
  s.base_ready <- false;
  Array.fill s.base_mode 0 (Array.length s.base_mode) min_int

let base_feed t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  if s.base_t_p <= 0. then
    invalid_arg "Modal.base_feed: no base_begin on this domain";
  if core < 0 || core >= Array.length s.base_mode then
    invalid_arg "Modal.base_feed: core index out of range";
  let mode, ll = two_mode_core_shape ~t_p:s.base_t_p ~high_ratio in
  s.base_cl.(core) <- psi_low +. t.beta_tamb;
  s.base_ch.(core) <- psi_high +. t.beta_tamb;
  s.base_mode.(core) <- mode;
  s.base_ll.(core) <- ll

(* One core's periodic drive into [dst].  Rows are fetched one at a
   time and fully consumed before the next fetch: the direct-mapped
   table may map two of the durations needed here to the same slot. *)
let w_into t (s : scratch) dst ~cl ~ch ~mode ~ll =
  let t_p = s.base_t_p in
  let n = t.n in
  let dvals = s.dvals in
  if mode <> 0 then begin
    let c = if mode < 0 then cl else ch in
    let b = decay_row t s t_p in
    for j = 0 to n - 1 do
      Array.unsafe_set dst j (c *. Array.unsafe_get dvals (b + n + j))
    done
  end
  else begin
    let b_low = decay_row t s ll in
    for j = 0 to n - 1 do
      Array.unsafe_set dst j (cl *. Array.unsafe_get dvals (b_low + n + j))
    done;
    let b_high = decay_row t s (t_p -. ll) in
    for j = 0 to n - 1 do
      Array.unsafe_set dst j
        ((Array.unsafe_get dvals (b_high + j) *. Array.unsafe_get dst j)
        +. (ch *. Array.unsafe_get dvals (b_high + n + j)))
    done
  end

let base_solve t =
  let s = Domain.DLS.get t.scratch_key in
  if s.base_t_p <= 0. then
    invalid_arg "Modal.base_solve: no base_begin on this domain";
  let nc = Array.length s.base_mode in
  for i = 0 to nc - 1 do
    if s.base_mode.(i) = min_int then
      invalid_arg
        (Printf.sprintf "Modal.base_solve: core %d was never base_feed" i)
  done;
  Array.fill s.z_base 0 t.n 0.;
  for i = 0 to nc - 1 do
    w_into t s s.z_tmp ~cl:s.base_cl.(i) ~ch:s.base_ch.(i)
      ~mode:s.base_mode.(i) ~ll:s.base_ll.(i);
    let u = t.unit_rz.(i) in
    for j = 0 to t.n - 1 do
      Array.unsafe_set s.z_base j
        (Array.unsafe_get s.z_base j
        +. (Array.unsafe_get u j *. Array.unsafe_get s.z_tmp j))
    done
  done;
  let b = decay_row t s s.base_t_p in
  for j = 0 to t.n - 1 do
    Array.unsafe_set s.z_base j
      (Array.unsafe_get s.z_base j /. Array.unsafe_get s.dvals (b + t.n + j))
  done;
  s.base_ready <- true;
  Atomic.incr t.base_solves;
  flush_tallies t s;
  (s.z_base
  [@fosc.dls_ok
    "documented borrow of this domain's scratch (see modal.mli): valid until \
     the next base or delta call on the same domain, never shared across \
     domains"])

let delta_into t (s : scratch) ~core ~psi_low ~psi_high ~high_ratio =
  if not s.base_ready then
    invalid_arg "Modal.delta: no solved base on this domain";
  if core < 0 || core >= Array.length s.base_mode then
    invalid_arg "Modal.delta: core index out of range";
  let t_p = s.base_t_p in
  let n = t.n in
  let mode', ll' = two_mode_core_shape ~t_p ~high_ratio in
  let cl' = psi_low +. t.beta_tamb and ch' = psi_high +. t.beta_tamb in
  let cl = s.base_cl.(core) and ch = s.base_ch.(core) in
  (* Effective leading-low duration: snapped modes are exactly t_p / 0,
     so the same-voltage difference below needs no mode cases. *)
  let le mode ll = if mode < 0 then t_p else if mode > 0 then 0. else ll in
  let l0 = le s.base_mode.(core) s.base_ll.(core) in
  let l1 = le mode' ll' in
  let dvals = s.dvals in
  if Float.equal cl' cl && Float.equal ch' ch then begin
    if Float.equal l1 l0 then Array.blit s.z_base 0 s.z_cand 0 n
    else begin
      let big = Float.max l0 l1 and small = Float.min l0 l1 in
      let c = if l1 > l0 then cl -. ch else ch -. cl in
      let b_gap = decay_row t s (big -. small) in
      for j = 0 to n - 1 do
        Array.unsafe_set s.z_tmp j
          (c *. Array.unsafe_get dvals (b_gap + n + j))
      done;
      (* D_{t_p - big} = 1 exactly when big = t_p (snapped all-low side);
         skipping the fetch also avoids a dt = 0 table key, whose bit
         pattern collides with the empty-slot sentinel. *)
      if t_p -. big > 0. then begin
        let b_dec = decay_row t s (t_p -. big) in
        for j = 0 to n - 1 do
          Array.unsafe_set s.z_tmp j
            (Array.unsafe_get s.z_tmp j *. Array.unsafe_get dvals (b_dec + j))
        done
      end;
      let u = t.unit_rz.(core) in
      let b_t = decay_row t s t_p in
      for j = 0 to n - 1 do
        Array.unsafe_set s.z_cand j
          (Array.unsafe_get s.z_base j
          +. Array.unsafe_get u j *. Array.unsafe_get s.z_tmp j
             /. Array.unsafe_get dvals (b_t + n + j))
      done
    end
  end
  else begin
    (* Voltage change too (not exercised by the TPT loops, which only
       move duty cycles): subtract the old drive, add the new. *)
    w_into t s s.z_tmp ~cl:cl' ~ch:ch' ~mode:mode' ~ll:ll';
    w_into t s s.z_eq ~cl ~ch ~mode:s.base_mode.(core) ~ll:s.base_ll.(core);
    let u = t.unit_rz.(core) in
    let b_t = decay_row t s t_p in
    for j = 0 to n - 1 do
      Array.unsafe_set s.z_cand j
        (Array.unsafe_get s.z_base j
        +. Array.unsafe_get u j
           *. (Array.unsafe_get s.z_tmp j -. Array.unsafe_get s.z_eq j)
           /. Array.unsafe_get dvals (b_t + n + j))
    done
  end;
  Atomic.incr t.delta_evals;
  flush_tallies t s

let delta_solve t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  delta_into t s ~core ~psi_low ~psi_high ~high_ratio;
  (s.z_cand
  [@fosc.dls_ok
    "documented borrow of this domain's scratch (see modal.mli): valid until \
     the next base or delta call on the same domain, never shared across \
     domains"])

let delta_peak t ~core ~psi_low ~psi_high ~high_ratio =
  let s = Domain.DLS.get t.scratch_key in
  delta_into t s ~core ~psi_low ~psi_high ~high_ratio;
  max_core_temp t s.z_cand

let delta_core_temp t ~at ~core ~psi_low ~psi_high ~high_ratio =
  let { Mat.rows; cols; data } = t.core_rows in
  if at < 0 || at >= rows then
    invalid_arg "Modal.delta_core_temp: core index out of range";
  let s = Domain.DLS.get t.scratch_key in
  delta_into t s ~core ~psi_low ~psi_high ~high_ratio;
  let off = at * cols in
  let acc = ref 0. in
  for j = 0 to cols - 1 do
    acc := !acc +. (Array.unsafe_get data (off + j) *. Array.unsafe_get s.z_cand j)
  done;
  !acc +. t.ambient

(* --------------------------------------------------------- segments *)

type segment = {
  duration : float;
  decay : Vec.t; (* e^{lambda_j * duration}; shared, read-only *)
  gain : Vec.t; (* 1 - decay, via expm1 for accuracy at slow modes *)
  z_eq : Vec.t; (* modal equilibrium of this segment's psi *)
  lambda : Vec.t;
}

let segment (t : t) ~duration ~psi =
  if duration <= 0. then invalid_arg "Modal.segment: non-positive duration";
  (* Computed fresh: the vectors escape into the segment record, and the
     dense-scan paths that build segments are not the candidate hot
     loop. *)
  let decay, gain = compute_decay_gain t duration in
  Atomic.incr t.exp_misses;
  { duration; decay; gain; z_eq = z_inf t psi; lambda = t.lambda }

let duration s = s.duration

let split s k =
  if k < 1 then invalid_arg "Modal.split: non-positive sample count";
  let dt = s.duration /. float_of_int k in
  {
    s with
    duration = dt;
    decay = Array.map (fun l -> exp (l *. dt)) s.lambda;
    gain = Array.map (fun l -> -.Float.expm1 (l *. dt)) s.lambda;
  }

let advance s z =
  Array.init (Vec.dim z) (fun j ->
      (s.decay.(j) *. z.(j)) +. (s.gain.(j) *. s.z_eq.(j)))

let at s ~t_rel z =
  Array.init (Vec.dim z) (fun j ->
      s.z_eq.(j) +. (exp (s.lambda.(j) *. t_rel) *. (z.(j) -. s.z_eq.(j))))

let stable_z (t : t) segs =
  if List.is_empty segs then invalid_arg "Modal.stable_z: empty segment list";
  (* One period from the zero state: z(t_p) = K z0 + d with diagonal
     K = prod e^{lambda dt_q}; from z0 = 0 the iteration below leaves d. *)
  let d = Vec.zeros t.n in
  let t_p = List.fold_left (fun acc s -> acc +. s.duration) 0. segs in
  List.iter
    (fun s ->
      for j = 0 to t.n - 1 do
        d.(j) <- (s.decay.(j) *. d.(j)) +. (s.gain.(j) *. s.z_eq.(j))
      done)
    segs;
  (* Stable status per mode: z* = d / (1 - e^{lambda t_p}); the
     denominator comes from expm1 so slow modes (lambda t_p ~ 0) keep
     full precision where the dense (I - K) solve loses it. *)
  Array.init t.n (fun j -> d.(j) /. -.Float.expm1 (t.lambda.(j) *. t_p))
