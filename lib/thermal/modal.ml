module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = {
  model : Model.t;
  n : int;
  lambda : Vec.t; (* shared with the model, read-only *)
  w : Mat.t;
  w_inv : Mat.t;
  core_rows : Mat.t; (* n_cores x n: the core rows of W *)
  ambient : float;
}

let make model =
  let lambda, w, w_inv = Model.modal_parts model in
  let n = Vec.dim lambda in
  let cores = Model.core_nodes model in
  let core_rows =
    Mat.init (Array.length cores) n (fun k j -> Mat.get w cores.(k) j)
  in
  { model; n; lambda; w; w_inv; core_rows; ambient = Model.ambient model }

let model t = t.model
let n_modes t = t.n
let eigenvalues t = Vec.copy t.lambda
let to_modal t theta = Mat.matvec t.w_inv theta
let of_modal t z = Mat.matvec t.w z
let ambient_state t = Vec.zeros t.n

let theta_inf t psi = Model.theta_inf t.model psi

(* One cached LU solve per distinct psi a caller prepares (the
   factorization lives in the model); everything downstream of this is
   matmul- and LU-free. *)
let z_inf t psi = Mat.matvec t.w_inv (theta_inf t psi)

let step t ~dt ~z ~psi =
  if Vec.dim z <> t.n then invalid_arg "Modal.step: bad state arity";
  let zi = z_inf t psi in
  Array.init t.n (fun j -> zi.(j) +. (exp (t.lambda.(j) *. dt) *. (z.(j) -. zi.(j))))

let core_temps t z =
  if Vec.dim z <> t.n then invalid_arg "Modal.core_temps: bad state arity";
  let temps = Mat.matvec t.core_rows z in
  Array.map (fun x -> x +. t.ambient) temps

let max_core_temp t z =
  let { Mat.rows; cols; data } = t.core_rows in
  let best = ref neg_infinity in
  for k = 0 to rows - 1 do
    let off = k * cols in
    let acc = ref 0. in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get data (off + j) *. Array.unsafe_get z j)
    done;
    if !acc > !best then best := !acc
  done;
  !best +. t.ambient

type segment = {
  duration : float;
  decay : Vec.t; (* e^{lambda_j * duration} *)
  gain : Vec.t; (* 1 - decay, via expm1 for accuracy at slow modes *)
  z_eq : Vec.t; (* modal equilibrium of this segment's psi *)
  lambda : Vec.t;
}

let segment (t : t) ~duration ~psi =
  if duration <= 0. then invalid_arg "Modal.segment: non-positive duration";
  {
    duration;
    decay = Array.map (fun l -> exp (l *. duration)) t.lambda;
    gain = Array.map (fun l -> -.Float.expm1 (l *. duration)) t.lambda;
    z_eq = z_inf t psi;
    lambda = t.lambda;
  }

let duration s = s.duration

let split s k =
  if k < 1 then invalid_arg "Modal.split: non-positive sample count";
  let dt = s.duration /. float_of_int k in
  {
    s with
    duration = dt;
    decay = Array.map (fun l -> exp (l *. dt)) s.lambda;
    gain = Array.map (fun l -> -.Float.expm1 (l *. dt)) s.lambda;
  }

let advance s z =
  Array.init (Vec.dim z) (fun j ->
      (s.decay.(j) *. z.(j)) +. (s.gain.(j) *. s.z_eq.(j)))

let at s ~t_rel z =
  Array.init (Vec.dim z) (fun j ->
      s.z_eq.(j) +. (exp (s.lambda.(j) *. t_rel) *. (z.(j) -. s.z_eq.(j))))

let stable_z (t : t) segs =
  if segs = [] then invalid_arg "Modal.stable_z: empty segment list";
  (* One period from the zero state: z(t_p) = K z0 + d with diagonal
     K = prod e^{lambda dt_q}; from z0 = 0 the iteration below leaves d. *)
  let d = Vec.zeros t.n in
  let t_p = List.fold_left (fun acc s -> acc +. s.duration) 0. segs in
  List.iter
    (fun s ->
      for j = 0 to t.n - 1 do
        d.(j) <- (s.decay.(j) *. d.(j)) +. (s.gain.(j) *. s.z_eq.(j))
      done)
    segs;
  (* Stable status per mode: z* = d / (1 - e^{lambda t_p}); the
     denominator comes from expm1 so slow modes (lambda t_p ~ 0) keep
     full precision where the dense (I - K) solve loses it. *)
  Array.init t.n (fun j -> d.(j) /. -.Float.expm1 (t.lambda.(j) *. t_p))
