module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = {
  ambient : float;
  leak_beta : float;
  capacitance : Vec.t;
  to_ambient : Vec.t;
  edges : (int * int * float) list;
  core_nodes : int array;
}

let make ~ambient ~leak_beta ~capacitance ~to_ambient ~edges ~core_nodes () =
  let n = Vec.dim capacitance in
  if Vec.dim to_ambient <> n then
    invalid_arg "Spec.make: capacitance/to_ambient arity mismatch";
  if not (Vec.for_all (fun c -> c > 0.) capacitance) then
    invalid_arg "Spec.make: capacitances must be positive";
  if not (Vec.for_all (fun g -> g >= 0.) to_ambient) then
    invalid_arg "Spec.make: negative ambient conductance";
  if leak_beta < 0. then invalid_arg "Spec.make: negative leakage slope";
  List.iter
    (fun (i, j, g) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg (Printf.sprintf "Spec.make: edge (%d, %d) out of range" i j);
      if i = j then invalid_arg "Spec.make: self-loop edge";
      if g < 0. then invalid_arg "Spec.make: negative edge conductance")
    edges;
  if Array.length core_nodes = 0 then invalid_arg "Spec.make: no core nodes";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Spec.make: core node index out of range";
      if seen.(i) then invalid_arg "Spec.make: duplicate core node index";
      seen.(i) <- true)
    core_nodes;
  {
    ambient;
    leak_beta;
    capacitance = Vec.copy capacitance;
    to_ambient = Vec.copy to_ambient;
    edges;
    core_nodes = Array.copy core_nodes;
  }

let of_network ?(ambient = 35.) ?(leak_beta = 0.05) ~core_nodes net =
  make ~ambient ~leak_beta
    ~capacitance:(Rc_network.capacitance_vector net)
    ~to_ambient:(Rc_network.to_ambient_vector net)
    ~edges:(Rc_network.edges net) ~core_nodes ()

let of_model model =
  let g_eff = Model.effective_conductance model in
  let n = Model.n_nodes model in
  let beta = Model.leak_beta model in
  let core_nodes = Model.core_nodes model in
  let is_core = Array.make n false in
  Array.iter (fun i -> is_core.(i) <- true) core_nodes;
  (* G'_ij = -g_ij off-diagonal; every row of G sums to the ambient
     conductance, and G' = G - beta E, so the row sum of G' recovers
     to_ambient minus beta at core rows. *)
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let g = -.Mat.get g_eff i j in
      if Float.abs g > 0. then edges := (i, j, g) :: !edges
    done
  done;
  let to_ambient =
    Vec.init n (fun i ->
        let row = ref 0. in
        for j = 0 to n - 1 do
          row := !row +. Mat.get g_eff i j
        done;
        let amb = !row +. (if is_core.(i) then beta else 0.) in
        (* Assembled row sums cancel to to_ambient exactly in theory;
           clamp the residual negative dust so [make] accepts it. *)
        Float.max 0. amb)
  in
  make ~ambient:(Model.ambient model) ~leak_beta:beta
    ~capacitance:(Model.capacitance model)
    ~to_ambient ~edges:!edges ~core_nodes ()

let n_nodes spec = Vec.dim spec.capacitance
let n_cores spec = Array.length spec.core_nodes

let g_eff_triplets spec =
  let diag = Array.to_list (Array.mapi (fun i g -> (i, i, g)) spec.to_ambient) in
  let leak =
    Array.to_list
      (Array.map (fun i -> (i, i, -.spec.leak_beta)) spec.core_nodes)
  in
  let coupling =
    List.concat_map
      (fun (i, j, g) -> [ (i, j, -.g); (j, i, -.g); (i, i, g); (j, j, g) ])
      spec.edges
  in
  diag @ leak @ coupling

let conductance_dense spec =
  let g = Mat.diag spec.to_ambient in
  List.iter
    (fun (i, j, gij) ->
      Mat.set g i j (Mat.get g i j -. gij);
      Mat.set g j i (Mat.get g j i -. gij);
      Mat.set g i i (Mat.get g i i +. gij);
      Mat.set g j j (Mat.get g j j +. gij))
    spec.edges;
  g

let to_model spec =
  Model.make ~ambient:spec.ambient ~leak_beta:spec.leak_beta
    ~capacitance:spec.capacitance
    ~conductance:(conductance_dense spec)
    ~core_nodes:spec.core_nodes ()
