type node = { name : string; capacitance : float; mutable to_ambient : float }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable edges : (int * int * float) list;
}

let create () = { nodes = [||]; n = 0; edges = [] }

let add_node net ~name ~capacitance ~to_ambient =
  if capacitance <= 0. then invalid_arg "Rc_network.add_node: capacitance must be positive";
  if to_ambient < 0. then invalid_arg "Rc_network.add_node: negative ambient conductance";
  let node = { name; capacitance; to_ambient } in
  if net.n = Array.length net.nodes then begin
    let grown = Array.make (Stdlib.max 8 (2 * net.n)) node in
    Array.blit net.nodes 0 grown 0 net.n;
    net.nodes <- grown
  end;
  net.nodes.(net.n) <- node;
  net.n <- net.n + 1;
  net.n - 1

let check_index net i =
  if i < 0 || i >= net.n then
    invalid_arg (Printf.sprintf "Rc_network: node index %d out of range [0, %d)" i net.n)

let connect net i j g =
  check_index net i;
  check_index net j;
  if i = j then invalid_arg "Rc_network.connect: self-loop";
  if g < 0. then invalid_arg "Rc_network.connect: negative conductance";
  if g > 0. then net.edges <- (i, j, g) :: net.edges

let add_to_ambient net i g =
  check_index net i;
  if g < 0. then invalid_arg "Rc_network.add_to_ambient: negative conductance";
  net.nodes.(i).to_ambient <- net.nodes.(i).to_ambient +. g

let n_nodes net = net.n

let node_name net i =
  check_index net i;
  net.nodes.(i).name

let capacitance_vector net = Array.init net.n (fun i -> net.nodes.(i).capacitance)
let to_ambient_vector net = Array.init net.n (fun i -> net.nodes.(i).to_ambient)
let edges net = List.rev net.edges

let conductance_matrix net =
  let g = Linalg.Mat.zeros net.n net.n in
  for i = 0 to net.n - 1 do
    Linalg.Mat.set g i i net.nodes.(i).to_ambient
  done;
  List.iter
    (fun (i, j, gij) ->
      Linalg.Mat.set g i j (Linalg.Mat.get g i j -. gij);
      Linalg.Mat.set g j i (Linalg.Mat.get g j i -. gij);
      Linalg.Mat.set g i i (Linalg.Mat.get g i i +. gij);
      Linalg.Mat.set g j j (Linalg.Mat.get g j j +. gij))
    net.edges;
  g

let is_grounded net =
  let found = ref false in
  for i = 0 to net.n - 1 do
    if net.nodes.(i).to_ambient > 0. then found := true
  done;
  !found
