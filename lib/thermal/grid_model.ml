module Vec = Linalg.Vec

type t = { model : Model.t; mapping : int array array; subdivisions : int }

let refine fp k =
  if k < 1 then invalid_arg "Grid_model: subdivisions < 1";
  let cells =
    Array.to_list fp.Floorplan.blocks
    |> List.concat_map (fun b ->
           let w = b.Floorplan.width /. float_of_int k in
           let h = b.Floorplan.height /. float_of_int k in
           List.init (k * k) (fun c ->
               let r = c / k and col = c mod k in
               {
                 Floorplan.name = Printf.sprintf "%s__%d_%d" b.Floorplan.name r col;
                 layer = b.Floorplan.layer;
                 x = b.Floorplan.x +. (float_of_int col *. w);
                 y = b.Floorplan.y +. (float_of_int r *. h);
                 width = w;
                 height = h;
               }))
  in
  { Floorplan.blocks = Array.of_list cells }

let block_mapping fp k =
  Array.init (Floorplan.n_blocks fp) (fun i ->
      Array.init (k * k) (fun c -> (i * k * k) + c))

let build ?(subdivisions = 3) ?(ambient = 35.) ?(leak_beta = 0.05) fp =
  let k = subdivisions in
  let fine = refine fp k in
  (* The leakage slope is per CORE in the block model; spread it over the
     block's cells so the chip-wide leakage matches. *)
  let model =
    Hotspot.core_level ~ambient
      ~leak_beta:(leak_beta /. float_of_int (k * k))
      fine
  in
  { model; mapping = block_mapping fp k; subdivisions = k }

let build_spec ?(subdivisions = 3) ?(ambient = 35.) ?(leak_beta = 0.05) fp =
  let k = subdivisions in
  let fine = refine fp k in
  let net = Hotspot.network_of_floorplan fine in
  let spec =
    Spec.of_network ~ambient
      ~leak_beta:(leak_beta /. float_of_int (k * k))
      ~core_nodes:(Array.init (Floorplan.n_blocks fine) (fun i -> i))
      net
  in
  (spec, block_mapping fp k)

let sheet_floorplan ?(core_width = 4e-3) ?(core_height = 4e-3) ~rows ~cols () =
  Floorplan.grid ~rows ~cols ~core_width ~core_height

let sheet_spec ?(ambient = Hotspot.default_ambient)
    ?(leak_beta = Hotspot.default_leak_beta) ?core_width ?core_height ~rows ~cols
    () =
  let fp = sheet_floorplan ?core_width ?core_height ~rows ~cols () in
  let net = Hotspot.network_of_floorplan fp in
  Spec.of_network ~ambient ~leak_beta
    ~core_nodes:(Array.init (Floorplan.n_blocks fp) (fun i -> i))
    net

let expand_powers g psi =
  if Vec.dim psi <> Array.length g.mapping then
    invalid_arg "Grid_model.expand_powers: per-block power arity mismatch";
  let cells = Model.n_cores g.model in
  let out = Vec.zeros cells in
  Array.iteri
    (fun i nodes ->
      let share = psi.(i) /. float_of_int (Array.length nodes) in
      Array.iter (fun node -> out.(node) <- share) nodes)
    g.mapping;
  out

let steady_block_temps g psi =
  let temps = Model.steady_core_temps g.model (expand_powers g psi) in
  Array.map
    (fun nodes -> Array.fold_left (fun acc n -> Float.max acc temps.(n)) neg_infinity nodes)
    g.mapping

let profile_of g profile =
  List.map
    (fun (seg : Matex.segment) ->
      { seg with Matex.psi = expand_powers g seg.Matex.psi })
    profile
