(** Analytic transient and periodic-steady-state analysis for piecewise-
    constant power profiles (the MatEx method, reference [28] of the
    paper).

    A {!profile} is one period of a periodic power schedule: a sequence of
    segments, each holding a duration and the per-core power vector
    [psi].  Within a segment the system is LTI, so Eq. (3) steps it
    exactly; across a period, the stable status of Eq. (4) is obtained by
    solving [(I - K) theta* = theta_one_period] where [K = e^{A t_p}] is
    the product of the segment propagators.

    Every evaluator here runs on the per-model cached {!Modal} response
    engine: equilibria come from unit-response superposition (zero LU
    solves per profile), decay factors from the engine's per-duration
    table, each sample is O(n) element-wise work, and the [(I - K)^{-1}]
    solve is a per-mode division.  The step-up evaluators
    ({!end_of_period_peak}, {!stable_core_temps}) additionally stream
    through per-domain scratch buffers, so a candidate evaluation
    allocates nothing.  The pre-modal implementations survive in
    {!Reference} for differential testing. *)

type segment = { duration : float; psi : Linalg.Vec.t }

type profile = segment list
(** One period.  Durations must be positive; all [psi] must have one
    entry per model core. *)

(** [period profile] is the sum of segment durations. *)
val period : profile -> float

(** [validate model profile] raises [Invalid_argument] on empty profiles,
    non-positive durations or power vectors of the wrong arity. *)
val validate : Model.t -> profile -> unit

(** [simulate model ~theta0 profile] integrates one period exactly from
    state [theta0], returning the states at every segment boundary —
    [theta0] first, final state last ([length profile + 1] entries). *)
val simulate : Model.t -> theta0:Linalg.Vec.t -> profile -> Linalg.Vec.t array

(** [stable_start model profile] is the ambient-relative state at the
    period boundary once the repetition has converged to the thermal
    stable status. *)
val stable_start : Model.t -> profile -> Linalg.Vec.t

(** [stable_boundaries model profile] are the stable-status states at all
    segment boundaries, starting and ending with the period boundary
    state (first and last entries are equal). *)
val stable_boundaries : Model.t -> profile -> Linalg.Vec.t array

(** [stable_core_temps model profile] are the absolute per-core
    temperatures at the stable-status period boundary — like
    [Model.core_temps_of_theta] of {!stable_start}, but streamed through
    the response engine's scratch buffers: superposed equilibria, table
    decay factors, and only the modal core rows applied at the end.
    [engine] may pass the model's cached engine explicitly (raises
    [Invalid_argument] if it belongs to a different model). *)
val stable_core_temps : ?engine:Modal.t -> Model.t -> profile -> Linalg.Vec.t

(** [peak_at_boundaries model profile] is the hottest absolute core
    temperature over the stable-status segment boundaries.  For a step-up
    profile this equals the true peak (Theorem 1). *)
val peak_at_boundaries : Model.t -> profile -> float

(** [peak_scan model ?samples_per_segment profile] scans the stable-status
    period densely ([samples_per_segment] exact sub-steps inside every
    segment, default 32) and returns the hottest absolute core
    temperature found.  This is the safe evaluator for profiles that are
    not step-up, where the peak may fall strictly inside a segment. *)
val peak_scan : ?engine:Modal.t -> Model.t -> ?samples_per_segment:int -> profile -> float

(** [end_of_period_peak model profile] is the hottest absolute core
    temperature at the stable-status period boundary — the quantity
    Theorem 1 says bounds a step-up schedule.  The candidate-evaluation
    hot path: one streamed superposition pass, zero LU solves, zero
    allocation beyond the per-domain scratch. *)
val end_of_period_peak : ?engine:Modal.t -> Model.t -> profile -> float

(** [stable_core_trace model ~samples_per_segment profile] samples the
    stable-status period densely and returns [(time, absolute core
    temperatures)] pairs covering one period, boundaries included. *)
val stable_core_trace :
  Model.t -> samples_per_segment:int -> profile -> (float * Linalg.Vec.t) array

(** [peak_refined model ?samples_per_segment ?tol profile] sharpens
    {!peak_scan}: after the dense scan it golden-section-maximizes the
    hottest-core temperature inside the bracketing sub-interval of every
    segment's best sample, to time resolution [tol * duration] (default
    [tol = 1e-4]).  Guaranteed [>= peak_scan] up to the same sampling;
    used where an exact interior peak matters (PCO verification,
    theorem-tolerance measurements). *)
val peak_refined :
  ?engine:Modal.t -> Model.t -> ?samples_per_segment:int -> ?tol:float -> profile -> float

(** [time_to_threshold model ?theta0 ?max_periods ?samples_per_segment
    ~threshold profile] repeats [profile] from state [theta0] (default:
    ambient) and returns the first time the hottest core reaches
    [threshold] (bisected inside the bracketing sub-interval to
    microsecond-level accuracy), or [None] when it never does within
    [max_periods] repetitions (default 1000) — e.g. because the stable
    status stays below the threshold.  This answers the reactive-DTM
    question: how long after an aggressive schedule starts does the chip
    have before an emergency? *)
val time_to_threshold :
  Model.t ->
  ?theta0:Linalg.Vec.t ->
  ?max_periods:int ->
  ?samples_per_segment:int ->
  threshold:float ->
  profile ->
  float option

(** [mission_peak model ?theta0 ?samples_per_segment segments] is the
    hottest core temperature over a ONE-SHOT (non-repeating) sequence of
    power segments starting from [theta0] (default: ambient) — mission-
    profile analysis, e.g. boot + burst + settle.  Unlike {!peak_scan}
    there is no stable-status solve; the trajectory is simulated once
    with dense sampling.  Returns the peak and the final state. *)
val mission_peak :
  Model.t ->
  ?theta0:Linalg.Vec.t ->
  ?samples_per_segment:int ->
  profile ->
  float * Linalg.Vec.t

(** Pre-modal implementations on {!Model.step} / {!Model.propagator},
    kept verbatim as the reference path.  [test/test_modal.ml] asserts
    the modal evaluators above agree with these to [<= 1e-9]; they are
    not meant for production use. *)
module Reference : sig
  val stable_start : Model.t -> profile -> Linalg.Vec.t
  val stable_boundaries : Model.t -> profile -> Linalg.Vec.t array
  val peak_scan : Model.t -> ?samples_per_segment:int -> profile -> float
  val peak_refined :
    Model.t -> ?samples_per_segment:int -> ?tol:float -> profile -> float
end
