(** Fine-grid thermal model: HotSpot's "grid mode" analogue.

    Each floorplan block is subdivided into [k x k] sub-cells, every
    cell becoming its own RC node with a proportional share of the
    block's power.  This refines the core-level lumping spatially —
    intra-core gradients appear — and serves as an independent check
    that the block-level model the policies use is not hiding hot spots
    (see the corresponding tests and the thermsim [--layered]-style
    validation flow). *)

type t = {
  model : Model.t;  (** One node (and model-core) per sub-cell. *)
  mapping : int array array;  (** [mapping.(i)] = cell indices of block [i]. *)
  subdivisions : int;
}

(** [build ?subdivisions ?ambient ?leak_beta fp] subdivides every block
    of [fp] into [subdivisions x subdivisions] cells (default 3) and
    assembles the model with the same calibrated material constants as
    {!Hotspot.core_level}.  Raises [Invalid_argument] for
    [subdivisions < 1]. *)
val build : ?subdivisions:int -> ?ambient:float -> ?leak_beta:float -> Floorplan.t -> t

(** [build_spec ?subdivisions ?ambient ?leak_beta fp] is the dense-free
    counterpart of {!build}: the same subdivided floorplan and material
    constants, returned as a sparse problem description plus the
    block-to-cell mapping — no [Model.make], no O(n³) eigensolve, so it
    scales to the 256–1024-cell grids the sparse backend targets. *)
val build_spec :
  ?subdivisions:int ->
  ?ambient:float ->
  ?leak_beta:float ->
  Floorplan.t ->
  Spec.t * int array array

(** [sheet_floorplan ?core_width ?core_height ~rows ~cols ()] is a
    single-layer [rows x cols] mesh of identical cores (default 4x4 mm²
    — the paper's core size), the generator behind the 8x8 through
    32x32 scaling studies. *)
val sheet_floorplan :
  ?core_width:float -> ?core_height:float -> rows:int -> cols:int -> unit -> Floorplan.t

(** [sheet_spec ?ambient ?leak_beta ?core_width ?core_height ~rows ~cols
    ()] is the sparse problem description of {!sheet_floorplan}: every
    cell is a core node.  At [32 x 32] this assembles 1024 nodes in
    O(nnz) — feed it to {!Sparse_model.of_spec} or
    {!Backend.sparse_of_spec}. *)
val sheet_spec :
  ?ambient:float ->
  ?leak_beta:float ->
  ?core_width:float ->
  ?core_height:float ->
  rows:int ->
  cols:int ->
  unit ->
  Spec.t

(** [expand_powers g psi] turns per-block powers into per-cell powers
    (uniform split within each block). *)
val expand_powers : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [steady_block_temps g psi] is each block's HOTTEST cell temperature
    at steady state under per-block powers [psi]. *)
val steady_block_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [profile_of g p] lifts a per-block power profile to the cell level,
    so {!Matex} can analyse periodic schedules on the fine grid. *)
val profile_of : t -> Matex.profile -> Matex.profile
