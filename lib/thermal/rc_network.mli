(** Generic lumped thermal RC networks.

    A network is a set of nodes, each with a heat capacitance and an
    optional conductance to ambient, plus symmetric node-to-node
    conductances.  It assembles into the matrices of the paper's Eq. (2):
    temperatures (relative to ambient) obey
    [C dtheta/dt = -G theta + p(t)], where [G] collects both ambient and
    inter-node conductances.  {!Model} combines this with a leakage slope
    to form the [A]/[B] system the scheduling code works with. *)

type t

(** [create ()] is an empty network. *)
val create : unit -> t

(** [add_node net ~name ~capacitance ~to_ambient] appends a node and
    returns its index.  [capacitance] is in J/K (must be positive),
    [to_ambient] in W/K (must be non-negative). *)
val add_node : t -> name:string -> capacitance:float -> to_ambient:float -> int

(** [connect net i j g] adds conductance [g] W/K between distinct nodes
    [i] and [j] (accumulating if already connected).  Raises
    [Invalid_argument] on self-loops, negative conductance, or bad
    indices. *)
val connect : t -> int -> int -> float -> unit

(** [add_to_ambient net i g] increases node [i]'s ambient conductance. *)
val add_to_ambient : t -> int -> float -> unit

(** [n_nodes net] is the current node count. *)
val n_nodes : t -> int

(** [node_name net i] is the name given at {!add_node} time. *)
val node_name : t -> int -> string

(** [capacitance_vector net] is the diagonal of [C], J/K. *)
val capacitance_vector : t -> Linalg.Vec.t

(** [to_ambient_vector net] is the per-node ambient conductance, W/K. *)
val to_ambient_vector : t -> Linalg.Vec.t

(** [edges net] lists the node-to-node conductances [(i, j, g)] in
    insertion order (duplicates appear as given; they accumulate on
    assembly).  This is the natural sparsity the sparse backend
    ({!Spec}, {!Sparse_model}) assembles from without ever forming the
    dense matrix. *)
val edges : t -> (int * int * float) list

(** [conductance_matrix net] assembles the symmetric matrix [G]:
    [G_ii = g_ambient_i + sum_j g_ij], [G_ij = -g_ij].  With every node
    grounded through a positive path to ambient, [G] is an irreducibly
    diagonally dominant M-matrix, hence [-G] is Hurwitz and
    [G^{-1} >= 0] — the positivity fact the paper's proofs lean on. *)
val conductance_matrix : t -> Linalg.Mat.t

(** [is_grounded net] checks that at least one node has a positive
    ambient conductance (otherwise steady states do not exist). *)
val is_grounded : t -> bool
