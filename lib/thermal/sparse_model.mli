(** Sparse/Krylov thermal evaluation engine.

    The dense pipeline ({!Model} + {!Modal}) pays an O(n³)
    eigendecomposition at build time and O(n²) per propagator — perfect
    at the paper's 2–9 cells, cubic death at the 256–1024-cell grids the
    many-core roadmap needs.  This engine never forms a dense matrix:

    - build is an O(nnz) CSR assembly of the symmetrized operator
      [M = C^{-1/2} G' C^{-1/2}] (pool-parallel across rows,
      deterministic at any pool size);
    - steady states are Jacobi-preconditioned {!Linalg.Krylov.cg}
      solves;
    - transient steps are Lanczos {!Linalg.Krylov.expmv} applications
      of [e^{-dt M}];
    - the periodic stable status exploits that every segment shares the
      same [M] — the period map is affine with linear part [e^{-T M}],
      so the fixed point solves the SPD system [(I - e^{-T M}) y* = d]
      by CG with one [expmv] per iteration.

    States are ambient-relative temperatures in symmetrized coordinates
    [y = C^{1/2} θ] ([M] is SPD there, which is what the Krylov kernels
    need).  The differential suite asserts every evaluator agrees with
    the dense {!Matex} path to ≤ 1e-9 at small n; tolerances are set
    one-thousand-fold tighter ({!Linalg.Krylov}) so the bound holds with
    margin. *)

type t

(** [of_spec ?pool spec] assembles the engine — O(k·nnz) total, no
    dense intermediate.  [pool] (default: the shared {!Util.Pool.get})
    parallelizes row assembly. *)
val of_spec : ?pool:Util.Pool.t -> Spec.t -> t

(** [of_model ?pool model] is [of_spec (Spec.of_model model)] — the
    parity bridge used by differential tests and {!Backend}. *)
val of_model : ?pool:Util.Pool.t -> Model.t -> t

(** [spec t] is the problem description the engine was built from. *)
val spec : t -> Spec.t

(** [operator t] is the assembled SPD operator [M] (shared, read-only);
    {!Reduced} builds its Ritz basis on it. *)
val operator : t -> Linalg.Sparse.t

(** [n_nodes t] / [n_cores t] / [ambient t] echo the spec. *)
val n_nodes : t -> int

val n_cores : t -> int
val ambient : t -> float

(** [ambient_state t] is the all-ambient state ([y = 0]). *)
val ambient_state : t -> Linalg.Vec.t

(** [of_theta t theta] / [to_theta t y] convert between node-space
    ambient-relative temperatures and engine states. *)
val of_theta : t -> Linalg.Vec.t -> Linalg.Vec.t

val to_theta : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [heat_input t psi] is the symmetrized drive [b = C^{-1/2} h(psi)]
    (per-core powers plus the leakage-linearization offset at core
    nodes) — the right-hand side of the steady solve, exposed for
    {!Reduced}'s modal projections. *)
val heat_input : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [steady_state t psi] is the equilibrium state under constant
    per-core powers — one preconditioned CG solve. *)
val steady_state : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [steady_core_temps t psi] / [steady_peak t psi] are the absolute
    steady core temperatures / their maximum. *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

val steady_peak : t -> Linalg.Vec.t -> float

(** [steady_batch ?pool t psis] solves many steady states across the
    pool (default: the engine's assembly pool), preserving order —
    deterministic multi-vector solves. *)
val steady_batch : ?pool:Util.Pool.t -> t -> Linalg.Vec.t list -> Linalg.Vec.t list

(** [step t ~dt ~state ~psi] advances the exact LTI solution by [dt]
    under constant powers — one CG solve plus one [expmv]. *)
val step : t -> dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [correct_cores t ~state ~deltas] adds [deltas.(k)] kelvin to core
    [k]'s temperature reading, in place on the symmetrized state
    ([y_i += deltas.(k) * sqrt(C_i)] at the core's node); off-core nodes
    are untouched.  The measured-state restart hook observers correct
    through.  Raises [Invalid_argument] on arity mismatches. *)
val correct_cores : t -> state:Linalg.Vec.t -> deltas:Linalg.Vec.t -> unit

(** [advance t ~dt ~y_inf y] is the exact LTI advance toward an
    already-known equilibrium: [y_inf + e^{-dt M} (y - y_inf)], one
    [expmv] and no solve.  {!Sparse_response} feeds superposed
    equilibria through this to price candidates without per-segment CG
    solves. *)
val advance :
  t -> dt:float -> y_inf:Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t

(** [core_temps t state] / [max_core_temp t state] read absolute core
    temperatures straight off the state — O(n_cores). *)
val core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

val max_core_temp : t -> Linalg.Vec.t -> float

(** [stable_start t profile] is the periodic stable status at the
    period boundary (the sparse counterpart of {!Matex.stable_start},
    returned as an engine state). *)
val stable_start : t -> Matex.profile -> Linalg.Vec.t

(** [stable_core_temps t profile] / [end_of_period_peak t profile] are
    the absolute core temperatures / hottest core at the stable-status
    period boundary. *)
val stable_core_temps : t -> Matex.profile -> Linalg.Vec.t

val end_of_period_peak : t -> Matex.profile -> float

(** [peak_scan t ?samples_per_segment profile] densely scans the
    stable-status period ([samples_per_segment] sub-steps per segment,
    default 32, boundaries included) for the hottest core temperature —
    sampling semantics identical to {!Matex.peak_scan}. *)
val peak_scan : t -> ?samples_per_segment:int -> Matex.profile -> float

(** [peak_refined t ?samples_per_segment ?tol profile] sharpens
    {!peak_scan} by golden-section maximization inside the bracketing
    sub-interval of each segment's best sample, to time resolution
    [tol * duration] (default [1e-4]) — the same refinement
    {!Matex.peak_refined} performs. *)
val peak_refined :
  t -> ?samples_per_segment:int -> ?tol:float -> Matex.profile -> float
