module Mat = Linalg.Mat
module Vec = Linalg.Vec

(* A propagator memo slot: [Building] is the single-flight claim — the
   claiming domain computes e^{A dt} outside the lock while racers wait
   on [cache_cond] instead of duplicating the O(n^3) build. *)
type propagator_slot = Built of Mat.t | Building

type t = {
  ambient : float;
  leak_beta : float;
  capacitance : Vec.t;
  core_nodes : int array;
  is_core : bool array;
  g_eff : Mat.t; (* G' = G - beta E, the effective conductance *)
  g_eff_lu : Linalg.Lu.factorization;
  a : Mat.t;
  (* Eigen cache: A = w diag(lambda) w_inv with real negative lambda. *)
  lambda : Vec.t;
  w : Mat.t;
  w_inv : Mat.t;
  (* Propagator memo: e^{A dt} keyed by the bits of dt.  The policy loops
     (AO's m sweep, the TPT adjustment, peak scans) reuse a handful of
     interval lengths thousands of times.  Guarded by a mutex so models
     may be shared across domains; first-use misses are single-flight
     (a [Building] slot plus [cache_cond]) so two domains racing on the
     same fresh [dt] never both pay the O(n^3) construction.
     [cache_order] tracks insertion order so a full memo sheds its
     oldest entries instead of being dumped wholesale. *)
  propagator_cache : (int64, propagator_slot) Hashtbl.t; [@fosc.guarded "mutex"]
  cache_order : int64 Queue.t; [@fosc.guarded "mutex"]
  cache_lock : Mutex.t;
  cache_cond : Condition.t;
}

let make ~ambient ~leak_beta ~capacitance ~conductance ~core_nodes () =
  let n = Vec.dim capacitance in
  if conductance.Mat.rows <> n || conductance.Mat.cols <> n then
    invalid_arg "Model.make: conductance/capacitance dimension mismatch";
  if not (Mat.is_symmetric ~tol:1e-8 conductance) then
    invalid_arg "Model.make: conductance matrix must be symmetric";
  if not (Vec.for_all (fun c -> c > 0.) capacitance) then
    invalid_arg "Model.make: capacitances must be positive";
  if leak_beta < 0. then invalid_arg "Model.make: negative leakage slope";
  let is_core = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Model.make: core node index out of range";
      if is_core.(i) then invalid_arg "Model.make: duplicate core node index";
      is_core.(i) <- true)
    core_nodes;
  if Array.length core_nodes = 0 then invalid_arg "Model.make: no core nodes";
  let g_eff =
    Mat.init n n (fun i j ->
        let g = Mat.get conductance i j in
        if i = j && is_core.(i) then g -. leak_beta else g)
  in
  (* Diagonalize the symmetrized system: M = C^{-1/2} G' C^{-1/2}. *)
  let c_sqrt_inv = Vec.map (fun c -> 1. /. sqrt c) capacitance in
  let c_sqrt = Vec.map sqrt capacitance in
  let m_sym =
    Mat.init n n (fun i j -> c_sqrt_inv.(i) *. Mat.get g_eff i j *. c_sqrt_inv.(j))
  in
  let eig = Linalg.Sym_eig.decompose m_sym in
  if not (Vec.for_all (fun mu -> mu > 0.) eig.Linalg.Sym_eig.eigenvalues) then
    invalid_arg
      "Model.make: G - beta*E is not positive definite (leakage-driven thermal runaway \
       or an ungrounded network)";
  (* A = C^{-1/2} (-M) C^{1/2}  =>  W = C^{-1/2} V, W^{-1} = V^T C^{1/2}. *)
  let v = eig.Linalg.Sym_eig.eigenvectors in
  let lambda = Vec.map (fun mu -> -.mu) eig.Linalg.Sym_eig.eigenvalues in
  let w = Mat.init n n (fun i j -> c_sqrt_inv.(i) *. Mat.get v i j) in
  let w_inv = Mat.init n n (fun i j -> Mat.get v j i *. c_sqrt.(j)) in
  let a =
    Mat.init n n (fun i j -> -.(Mat.get g_eff i j) /. capacitance.(i))
  in
  {
    ambient;
    leak_beta;
    capacitance = Vec.copy capacitance;
    core_nodes = Array.copy core_nodes;
    is_core;
    g_eff;
    g_eff_lu = Linalg.Lu.factorize g_eff;
    a;
    lambda;
    w;
    w_inv;
    propagator_cache = Hashtbl.create 64;
    cache_order = Queue.create ();
    cache_lock = Mutex.create ();
    cache_cond = Condition.create ();
  }

let n_nodes m = Vec.dim m.capacitance
let n_cores m = Array.length m.core_nodes
let core_nodes m = Array.copy m.core_nodes
let ambient m = m.ambient
let leak_beta m = m.leak_beta
let a_matrix m = Mat.copy m.a
let capacitance m = Vec.copy m.capacitance
let effective_conductance m = Mat.copy m.g_eff

let check_psi m psi =
  if Vec.dim psi <> n_cores m then
    invalid_arg
      (Printf.sprintf "Model: power vector has %d entries, expected %d cores"
         (Vec.dim psi) (n_cores m))

(* E psi + beta * T_amb * e, the node-space heat input in theta space. *)
let heat_input m psi =
  check_psi m psi;
  let inp = Vec.zeros (n_nodes m) in
  Array.iteri
    (fun k i -> inp.(i) <- psi.(k) +. (m.leak_beta *. m.ambient))
    m.core_nodes;
  inp

let input_of_core_powers m psi =
  let inp = heat_input m psi in
  Array.mapi (fun i x -> x /. m.capacitance.(i)) inp

let theta_inf m psi = Linalg.Lu.solve_vec m.g_eff_lu (heat_input m psi)

let core_temps_of_theta m theta =
  Array.map (fun i -> theta.(i) +. m.ambient) m.core_nodes

let steady_core_temps m psi = core_temps_of_theta m (theta_inf m psi)

let max_core_temp m theta =
  Array.fold_left (fun acc i -> Float.max acc (theta.(i) +. m.ambient)) neg_infinity
    m.core_nodes

let compute_propagator m dt =
  let n = n_nodes m in
  let e = Vec.map (fun l -> exp (l *. dt)) m.lambda in
  (* W diag(e) W^{-1} without forming the diagonal matrix. *)
  let scaled = Mat.init n n (fun i j -> Mat.get m.w i j *. e.(j)) in
  Mat.matmul scaled m.w_inv

let cache_capacity = 512

let propagator m dt =
  let key = Int64.bits_of_float dt in
  (* Single-flight miss handling: the first domain to miss on [key]
     plants a [Building] claim and computes e^{A dt} outside the lock;
     concurrent callers for the same [dt] wait on [cache_cond] instead
     of duplicating the O(n^3) build, and callers for other keys are
     never blocked. *)
  Mutex.lock m.cache_lock;
  let outcome =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m.cache_lock)
      (fun () ->
        let rec await () =
          match Hashtbl.find_opt m.propagator_cache key with
          | Some (Built p) -> `Value p
          | Some Building ->
              Condition.wait m.cache_cond m.cache_lock;
              await ()
          | None ->
              Hashtbl.replace m.propagator_cache key Building;
              `Claimed
        in
        await ())
  in
  match outcome with
  | `Value p -> p
  | `Claimed ->
      let p =
        try compute_propagator m dt
        with exn ->
          (* Release the claim so waiters retry (and may rebuild)
             instead of sleeping forever behind a dead slot. *)
          Mutex.lock m.cache_lock;
          Hashtbl.remove m.propagator_cache key;
          Condition.broadcast m.cache_cond;
          Mutex.unlock m.cache_lock;
          raise exn
      in
      Mutex.lock m.cache_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m.cache_lock)
        (fun () ->
          (* Bound the memo: schedules use a handful of distinct
             lengths, but a pathological caller should not leak memory.
             Only [Built] keys ever enter [cache_order], so eviction can
             never remove an in-flight [Building] claim; if the queue
             drains first the remaining entries are all claims and the
             loop must stop, not reset the table. *)
          let rec evict () =
            if Hashtbl.length m.propagator_cache >= cache_capacity then
              match Queue.take_opt m.cache_order with
              | Some oldest ->
                  Hashtbl.remove m.propagator_cache oldest;
                  evict ()
              | None -> ()
          in
          evict ();
          Hashtbl.replace m.propagator_cache key (Built p);
          Queue.push key m.cache_order;
          Condition.broadcast m.cache_cond);
      p

let step m ~dt ~theta ~psi =
  let tinf = theta_inf m psi in
  let p = propagator m dt in
  Vec.add (Mat.matvec p (Vec.sub theta tinf)) tinf

let eigenvalues m = Vec.copy m.lambda

let time_constants m =
  let tc = Vec.map (fun l -> -1. /. l) m.lambda in
  Array.sort (fun a b -> Float.compare b a) tc;
  tc

type core_constraint = Pinned_temperature of float | Known_power of float

let solve_mixed m constraints =
  if Array.length constraints <> n_cores m then
    invalid_arg
      (Printf.sprintf "Model.solve_mixed: %d constraints for %d cores"
         (Array.length constraints) (n_cores m));
  let n = n_nodes m in
  (* Known absolute temperature per node (pinned cores only). *)
  let pinned = Array.make n None in
  Array.iteri
    (fun k i ->
      match constraints.(k) with
      | Pinned_temperature t -> pinned.(i) <- Some (t -. m.ambient)
      | Known_power _ -> ())
    m.core_nodes;
  (* Per-node known heat input in theta space. *)
  let input = Vec.zeros n in
  Array.iteri
    (fun k i ->
      match constraints.(k) with
      | Known_power psi -> input.(i) <- psi +. (m.leak_beta *. m.ambient)
      | Pinned_temperature _ -> input.(i) <- m.leak_beta *. m.ambient)
    m.core_nodes;
  let free = ref [] in
  for i = n - 1 downto 0 do
    if pinned.(i) = None then free := i :: !free
  done;
  let free = Array.of_list !free in
  let nf = Array.length free in
  let theta = Vec.zeros n in
  Array.iteri (fun i p -> match p with Some th -> theta.(i) <- th | None -> ()) pinned;
  if nf > 0 then begin
    (* G'_ff theta_f = input_f - G'_fp theta_p *)
    let gff = Mat.init nf nf (fun a b -> Mat.get m.g_eff free.(a) free.(b)) in
    let rhs =
      Array.init nf (fun a ->
          let i = free.(a) in
          let acc = ref input.(i) in
          for j = 0 to n - 1 do
            match pinned.(j) with
            | Some th -> acc := !acc -. (Mat.get m.g_eff i j *. th)
            | None -> ()
          done;
          !acc)
    in
    let theta_f = Linalg.Lu.solve gff rhs in
    Array.iteri (fun a i -> theta.(i) <- theta_f.(a)) free
  end;
  let gtheta = Mat.matvec m.g_eff theta in
  let psi =
    Array.mapi
      (fun k i ->
        match constraints.(k) with
        | Known_power p -> p
        | Pinned_temperature _ -> gtheta.(i) -. (m.leak_beta *. m.ambient))
      m.core_nodes
  in
  let temps = Array.map (fun th -> th +. m.ambient) theta in
  (psi, temps)

let eigenbasis m = (Vec.copy m.lambda, Mat.copy m.w, Mat.copy m.w_inv)

(* Zero-copy view of the eigendata for Modal; the arrays are shared with
   the model and must be treated as read-only. *)
let modal_parts m = (m.lambda, m.w, m.w_inv)

let solve_powers_for_uniform_core_temp m t_target =
  fst (solve_mixed m (Array.make (n_cores m) (Pinned_temperature t_target)))

let derivative m theta psi =
  Vec.add (Mat.matvec m.a theta) (input_of_core_powers m psi)

(* A^{-1} y = -(G')^{-1} C y, reusing the cached factorization. *)
let apply_a_inverse m y =
  let cy = Vec.mul m.capacitance y in
  Vec.scale (-1.) (Linalg.Lu.solve_vec m.g_eff_lu cy)

let integrate_theta m ~dt ~theta ~psi =
  if dt < 0. then invalid_arg "Model.integrate_theta: negative dt";
  let theta_end = step m ~dt ~theta ~psi in
  let b = input_of_core_powers m psi in
  let rhs = Vec.sub (Vec.sub theta_end theta) (Vec.scale dt b) in
  apply_a_inverse m rhs
