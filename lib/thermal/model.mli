(** Compact thermal model in the paper's state-space form.

    Working in ambient-relative temperatures [theta = T - T_amb], the
    model is [dtheta/dt = A theta + b(psi)] with
    [A = -C^{-1}(G - beta E)] and [b(psi) = C^{-1}(E psi + beta T_amb e)],
    where [E] maps per-core dynamic+static power [psi(v)] into node space,
    [beta] is the linear leakage/temperature slope of Eq. (1), and [e] is
    the indicator of core nodes.  [A] is similar to a symmetric negative
    definite matrix, so it is diagonalized once ([A = W D W^{-1}] with
    real negative [D]) and every matrix exponential afterwards costs two
    small matrix products — the MatEx trick of the paper's reference
    [28]. *)

type t

(** [make ~ambient ~leak_beta ~capacitance ~conductance ~core_nodes ()]
    assembles and diagonalizes the model.  [capacitance] is the diagonal
    of [C] (J/K, all positive); [conductance] is the symmetric [G] from
    {!Rc_network.conductance_matrix}; [core_nodes] lists the node indices
    that host cores (power inputs and temperature constraints).  Raises
    [Invalid_argument] on dimension mismatches, a non-symmetric [G], or a
    [leak_beta] so large that [G - beta E] loses positive definiteness
    (thermal runaway). *)
val make :
  ambient:float ->
  leak_beta:float ->
  capacitance:Linalg.Vec.t ->
  conductance:Linalg.Mat.t ->
  core_nodes:int array ->
  unit ->
  t

(** [n_nodes m] is the full thermal node count. *)
val n_nodes : t -> int

(** [n_cores m] is the number of core nodes. *)
val n_cores : t -> int

(** [core_nodes m] is a copy of the core-node index array. *)
val core_nodes : t -> int array

(** [ambient m] is the ambient temperature, degrees C. *)
val ambient : t -> float

(** [leak_beta m] is the leakage/temperature slope, W/K. *)
val leak_beta : t -> float

(** [a_matrix m] is a copy of [A]. *)
val a_matrix : t -> Linalg.Mat.t

(** [capacitance m] is a copy of the diagonal of [C], J/K. *)
val capacitance : t -> Linalg.Vec.t

(** [effective_conductance m] is a copy of [G' = G - beta E] — the
    symmetric positive definite matrix behind every solve.  {!Spec}
    reconstructs a sparse problem description from it for backend
    parity testing. *)
val effective_conductance : t -> Linalg.Mat.t

(** [input_of_core_powers m psi] is [b(psi)]; [psi] has one entry per
    core. *)
val input_of_core_powers : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [theta_inf m psi] is the ambient-relative steady state
    [-A^{-1} b(psi)] for constant per-core powers [psi]. *)
val theta_inf : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [steady_core_temps m psi] is the absolute steady core temperatures —
    the [T^inf] of the paper's Algorithm 1 line 7. *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [propagator m dt] is [e^{A dt}], computed in the eigenbasis and
    memoized per distinct [dt] (thread-safe; the policies' inner loops
    reuse a handful of interval lengths thousands of times).  The
    returned matrix is shared — treat it as read-only. *)
val propagator : t -> float -> Linalg.Mat.t

(** [step m ~dt ~theta ~psi] advances the exact LTI solution of Eq. (3)
    by [dt] under constant core powers [psi]. *)
val step : t -> dt:float -> theta:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [core_temps_of_theta m theta] projects a full ambient-relative state
    onto absolute core temperatures. *)
val core_temps_of_theta : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [max_core_temp m theta] is the hottest absolute core temperature in
    state [theta]. *)
val max_core_temp : t -> Linalg.Vec.t -> float

(** [eigenvalues m] are the (all negative) eigenvalues of [A], ordered
    closest-to-zero first (slowest mode first). *)
val eigenvalues : t -> Linalg.Vec.t

(** [time_constants m] are [-1 / lambda_i], descending — the thermal time
    constants. *)
val time_constants : t -> Linalg.Vec.t

(** Constraint on a core node for {!solve_mixed}. *)
type core_constraint =
  | Pinned_temperature of float
      (** The core is held at this absolute temperature; its power is an
          unknown to solve for. *)
  | Known_power of float
      (** The core dissipates this [psi] (W); its temperature is an
          unknown. *)

(** [solve_mixed m constraints] solves the steady-state equations with
    one constraint per core (array indexed like the core list).  Passive
    nodes are always unknown-temperature, zero-power.  Returns the
    per-core power vector [psi] (entries at [Known_power] cores echo the
    input) and the absolute temperatures of all nodes.  Raises
    [Invalid_argument] on arity mismatch. *)
val solve_mixed :
  t -> core_constraint array -> Linalg.Vec.t * Linalg.Vec.t

(** [solve_powers_for_uniform_core_temp m t_target] solves the paper's
    ideal-speed step (Section V): pin every core node at [t_target]
    (absolute), solve the steady equations for the passive-node
    temperatures, and return the per-core power [psi] each core may
    dissipate.  Entries can be negative when [t_target] is below what
    neighbouring heat alone would impose. *)
val solve_powers_for_uniform_core_temp : t -> float -> Linalg.Vec.t

(** [derivative m theta psi] is [A theta + b(psi)] — the right-hand side
    for cross-validating ODE integrators. *)
val derivative : t -> Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t

(** [eigenbasis m] is [(lambda, w, w_inv)] with
    [A = w diag(lambda) w_inv] and [lambda] ordered closest-to-zero
    first (slowest mode first) — the raw modal data, exposed for
    {!Reduced}. *)
val eigenbasis : t -> Linalg.Vec.t * Linalg.Mat.t * Linalg.Mat.t

(** [modal_parts m] is [(lambda, w, w_inv)] like {!eigenbasis} but
    WITHOUT copying: the returned arrays are the model's own and must be
    treated as read-only.  O(1); this is what lets {!Modal.make} build an
    evaluation engine for free on every call. *)
val modal_parts : t -> Linalg.Vec.t * Linalg.Mat.t * Linalg.Mat.t

(** [integrate_theta m ~dt ~theta ~psi] is the exact time integral
    [int_0^dt theta(s) ds] of the ambient-relative temperatures under
    constant core powers [psi], starting from [theta]: from
    [dtheta/dt = A theta + b] it equals
    [A^{-1}(theta(dt) - theta(0) - b dt)].  This is what makes leakage
    energy accounting ({!Sched.Energy}) exact rather than sampled. *)
val integrate_theta :
  t -> dt:float -> theta:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t
