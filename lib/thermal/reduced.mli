(** Model-order reduction by retained-mode truncation.

    Fine-grid models ({!Grid_model}) grow quadratically in node count;
    most of their eigenmodes decay within microseconds and contribute
    nothing to schedule-scale dynamics.  This module retains the [k]
    slowest modes and patches the truncated modes' contribution with a
    static (quasi-steady) correction:

    [y(t) ~ y_inf(psi) + sum_j w_j (z_j(t) - z_inf_j)]

    where each retained coordinate [z_j] evolves independently at rate
    [mu_j].  Exact at steady state by construction; degrades only for
    inputs changing faster than the fastest retained mode.

    The retained pairs [(mu_j, w_j)] are Lanczos Ritz pairs of the
    sparse symmetrized operator ({!Sparse_model.operator}), computed by
    shift-invert {!Linalg.Krylov.smallest_eigs} — O(k * nnz) work per
    iteration, so building a reduction never forms a dense matrix and
    the O(n^3) dense eigensolve disappears from the build path. *)

type t

(** [of_engine ?modes engine] retains the [modes] slowest eigenmodes of
    an already-assembled sparse engine (default: enough to cover the
    slowest decade of decay rates among the first [min n 12] computed,
    at least 4).  Raises [Invalid_argument] if [modes] is outside
    [1, n_nodes]. *)
val of_engine : ?modes:int -> Sparse_model.t -> t

(** [build ?modes model] is {!of_engine} on the sparse engine of a dense
    model's spec ({!Sparse_model.of_model}). *)
val build : ?modes:int -> Model.t -> t

(** [prepare r] forces the reduction's shared static tier (the
    {!Sparse_response} tables behind the rom evaluators below).  Must be
    called on the submitting domain before rom scores fan out across a
    pool: [Lazy] is not domain-safe, and without it the first parallel
    screened sweep races to force the tables from several workers at
    once ([Lazy.RacyLazy]).  Idempotent and cheap once forced. *)
val prepare : t -> unit

(** [n_modes r] is the retained mode count. *)
val n_modes : t -> int

(** [engine r] is the sparse engine the reduction projects through. *)
val engine : t -> Sparse_model.t

(** [decay_rates r] is a copy of the retained decay rates [mu_j]
    (positive, ascending — the negated slowest eigenvalues of [A]). *)
val decay_rates : t -> Linalg.Vec.t

(** [steady_core_temps r psi] — exact (the static correction makes the
    reduction lossless at DC). *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [step r ~dt ~state ~psi] advances the reduced modal state one exact
    step under constant core powers.  The state is opaque; start from
    {!ambient_state}. *)
val step : t -> dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [ambient_state r] is the modal state corresponding to every node at
    the ambient temperature. *)
val ambient_state : t -> Linalg.Vec.t

(** [core_temps r ~state ~psi] reconstructs absolute core temperatures
    from the modal state (the static correction needs the current input
    [psi]). *)
val core_temps : t -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** {1 Streaming ROM screening}

    Approximate stable-peak scores for two-tier candidate screening:
    O(n_cores² + k·n_cores) per candidate, zero Krylov work after the
    shared {!Sparse_response} tables exist.  The API mirrors {!Modal}'s
    streaming evaluators ([stable_begin]/[stable_feed]/[stable_solve])
    and runs on per-domain scratch, so pool workers never share partial
    sums.  Scores are approximate — truncated fast modes are treated
    quasi-statically — so screened searches must re-verify survivors
    with an exact sparse solve (see [Core.Screen]). *)

(** [rom_begin r] resets this domain's accumulated per-mode drive. *)
val rom_begin : t -> unit

(** [rom_feed r ~duration ~psi] folds one periodic segment into the
    drive.  Raises [Invalid_argument] on a non-positive duration or a
    power vector whose arity differs from the engine's core count. *)
val rom_feed : t -> duration:float -> psi:Linalg.Vec.t -> unit

(** [rom_solve r ~t_p] closes the period-[t_p] fixed point per retained
    mode and returns the approximate hottest core temperature at the
    period boundary (static tier: the last-fed segment's steady
    superposition). *)
val rom_solve : t -> t_p:float -> float

(** [rom_stable_peak r profile] is [rom_begin]; [rom_feed] every
    segment; [rom_solve] at the profile's period — the ROM counterpart
    of {!Sparse_model.end_of_period_peak}. *)
val rom_stable_peak : t -> Matex.profile -> float

(** [rom_peak_scan r ?samples_per_segment profile] approximates
    {!Sparse_model.peak_scan}: walks the stable period on the retained
    modes ([samples_per_segment] sub-steps per segment, default 32,
    exact full-duration boundary steps) with per-segment quasi-static
    corrections. *)
val rom_peak_scan : t -> ?samples_per_segment:int -> Matex.profile -> float
