(** Model-order reduction by retained-mode truncation.

    Fine-grid models ({!Grid_model}) grow quadratically in node count;
    most of their eigenmodes decay within microseconds and contribute
    nothing to schedule-scale dynamics.  This module retains the [k]
    slowest modes and patches the truncated modes' contribution with a
    static (quasi-steady) correction:

    [y(t) ~ y_inf(psi) + sum_j w_j (z_j(t) - z_inf_j)]

    where each retained coordinate [z_j] evolves independently at rate
    [mu_j].  Exact at steady state by construction; degrades only for
    inputs changing faster than the fastest retained mode.

    The retained pairs [(mu_j, w_j)] are Lanczos Ritz pairs of the
    sparse symmetrized operator ({!Sparse_model.operator}), computed by
    shift-invert {!Linalg.Krylov.smallest_eigs} — O(k * nnz) work per
    iteration, so building a reduction never forms a dense matrix and
    the O(n^3) dense eigensolve disappears from the build path. *)

type t

(** [of_engine ?modes engine] retains the [modes] slowest eigenmodes of
    an already-assembled sparse engine (default: enough to cover the
    slowest decade of decay rates among the first [min n 12] computed,
    at least 4).  Raises [Invalid_argument] if [modes] is outside
    [1, n_nodes]. *)
val of_engine : ?modes:int -> Sparse_model.t -> t

(** [build ?modes model] is {!of_engine} on the sparse engine of a dense
    model's spec ({!Sparse_model.of_model}). *)
val build : ?modes:int -> Model.t -> t

(** [n_modes r] is the retained mode count. *)
val n_modes : t -> int

(** [engine r] is the sparse engine the reduction projects through. *)
val engine : t -> Sparse_model.t

(** [decay_rates r] is a copy of the retained decay rates [mu_j]
    (positive, ascending — the negated slowest eigenvalues of [A]). *)
val decay_rates : t -> Linalg.Vec.t

(** [steady_core_temps r psi] — exact (the static correction makes the
    reduction lossless at DC). *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [step r ~dt ~state ~psi] advances the reduced modal state one exact
    step under constant core powers.  The state is opaque; start from
    {!ambient_state}. *)
val step : t -> dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [ambient_state r] is the modal state corresponding to every node at
    the ambient temperature. *)
val ambient_state : t -> Linalg.Vec.t

(** [core_temps r ~state ~psi] reconstructs absolute core temperatures
    from the modal state (the static correction needs the current input
    [psi]). *)
val core_temps : t -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t
