(** Synthetic phased workloads: Markov-modulated power traces.

    Real programs alternate between execution phases (memory-bound,
    compute-bound, idle...) with dwell times much longer than a DVFS
    period.  This generator emulates that: each core runs an independent
    continuous-time Markov chain over a phase set; at every sampling
    interval the core's phase maps to a utilization, a voltage and hence
    a power.  The output is a {!Thermal.Ptrace.t}, so synthetic
    workloads drive exactly the same replay path as externally captured
    HotSpot traces. *)

type phase = {
  name : string;
  utilization : float;  (** 0..1: fraction of the top speed demanded. *)
  mean_dwell : float;  (** Mean phase residence time, s. *)
}

(** [default_phases] — idle (u 0.05), memory-bound (u 0.4),
    compute-bound (u 0.9), burst (u 1.0), with dwell times from 20 ms to
    200 ms. *)
val default_phases : phase list

(** [generate rng ~phases ~names ~duration ~dt ~power ~levels] samples a
    trace of [ceil (duration / dt)] rows for the named cores.  Each
    core's phase utilization is mapped to the nearest-above available
    voltage ([levels]), whose {!Power.Power_model.psi} becomes the
    trace power.  Raises [Invalid_argument] on an empty phase list,
    out-of-range utilizations, or non-positive [duration]/[dt]. *)
val generate :
  Random.State.t ->
  phases:phase list ->
  names:string array ->
  duration:float ->
  dt:float ->
  power:Power.Power_model.t ->
  levels:Power.Vf.level_set ->
  Thermal.Ptrace.t

(** [sample_utilization rng ~phases ~n_cores ~epochs ~dt] samples the
    same per-core Markov chains as {!generate} but returns the raw
    utilizations — [epochs] rows of [n_cores] values in [0, 1] — for
    callers (the {!Runtime.Loop} epoch simulator) that map utilization
    to power themselves.  Raises [Invalid_argument] on a bad phase
    list, no cores, a negative epoch count or non-positive [dt]. *)
val sample_utilization :
  Random.State.t ->
  phases:phase list ->
  n_cores:int ->
  epochs:int ->
  dt:float ->
  float array array

(** [mean_utilization phases] is the stationary mean utilization of the
    chain (phases weighted by mean dwell). *)
val mean_utilization : phase list -> float
