type phase = { name : string; utilization : float; mean_dwell : float }

let default_phases =
  [
    { name = "idle"; utilization = 0.05; mean_dwell = 0.05 };
    { name = "memory"; utilization = 0.4; mean_dwell = 0.2 };
    { name = "compute"; utilization = 0.9; mean_dwell = 0.15 };
    { name = "burst"; utilization = 1.0; mean_dwell = 0.02 };
  ]

let validate_phases phases =
  if phases = [] then invalid_arg "Phases: empty phase list";
  List.iter
    (fun p ->
      if p.utilization < 0. || p.utilization > 1. then
        invalid_arg (Printf.sprintf "Phases: utilization of %s outside [0, 1]" p.name);
      if p.mean_dwell <= 0. then
        invalid_arg (Printf.sprintf "Phases: non-positive dwell for %s" p.name))
    phases

let mean_utilization phases =
  validate_phases phases;
  let weight = List.fold_left (fun acc p -> acc +. p.mean_dwell) 0. phases in
  List.fold_left (fun acc p -> acc +. (p.utilization *. p.mean_dwell /. weight)) 0. phases

(* Utilization -> smallest level delivering it (top level when even that
   falls short). *)
let voltage_for_utilization levels u =
  let target = u *. Power.Vf.highest levels in
  let vs = Power.Vf.levels levels in
  let chosen = ref vs.(Array.length vs - 1) in
  for i = Array.length vs - 1 downto 0 do
    if vs.(i) >= target -. 1e-12 then chosen := vs.(i)
  done;
  !chosen

let sample_utilization rng ~phases ~n_cores ~epochs ~dt =
  validate_phases phases;
  if n_cores < 1 then invalid_arg "Phases.sample_utilization: no cores";
  if epochs < 0 then invalid_arg "Phases.sample_utilization: negative epoch count";
  if dt <= 0. then invalid_arg "Phases.sample_utilization: non-positive dt";
  let phase_array = Array.of_list phases in
  let n_phases = Array.length phase_array in
  let current = Array.init n_cores (fun _ -> Random.State.int rng n_phases) in
  let out = Array.make_matrix epochs n_cores 0. in
  for e = 0 to epochs - 1 do
    for i = 0 to n_cores - 1 do
      let p = phase_array.(current.(i)) in
      out.(e).(i) <- p.utilization;
      (* Leave the phase with probability dt / mean_dwell. *)
      if Random.State.float rng 1. < Float.min 1. (dt /. p.mean_dwell) then
        current.(i) <- Random.State.int rng n_phases
    done
  done;
  out

let generate rng ~phases ~names ~duration ~dt ~power ~levels =
  validate_phases phases;
  if duration <= 0. || dt <= 0. then invalid_arg "Phases.generate: non-positive time";
  let phase_array = Array.of_list phases in
  let n_phases = Array.length phase_array in
  let n = Array.length names in
  if n = 0 then invalid_arg "Phases.generate: no cores";
  let rows = int_of_float (Float.ceil (duration /. dt)) in
  (* Per-core current phase; dwell exits are geometric with rate dt/mean. *)
  let current = Array.init n (fun _ -> Random.State.int rng n_phases) in
  let samples = Array.init rows (fun _ -> Array.make n 0.) in
  for row = 0 to rows - 1 do
    for i = 0 to n - 1 do
      let p = phase_array.(current.(i)) in
      let v = voltage_for_utilization levels p.utilization in
      samples.(row).(i) <- Power.Power_model.psi power v;
      (* Leave the phase with probability dt / mean_dwell. *)
      if Random.State.float rng 1. < Float.min 1. (dt /. p.mean_dwell) then
        current.(i) <- Random.State.int rng n_phases
    done
  done;
  { Thermal.Ptrace.names = Array.copy names; samples }
