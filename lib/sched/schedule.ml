type segment = { duration : float; voltage : float }
type t = { period : float; cores : segment list array }

let validate s =
  if s.period <= 0. then invalid_arg "Schedule: non-positive period";
  if Array.length s.cores = 0 then invalid_arg "Schedule: no cores";
  Array.iteri
    (fun i segments ->
      if List.is_empty segments then
        invalid_arg (Printf.sprintf "Schedule: core %d has no segments" i);
      List.iter
        (fun seg ->
          if seg.duration <= 0. then
            invalid_arg (Printf.sprintf "Schedule: core %d has a non-positive duration" i);
          if seg.voltage < 0. then
            invalid_arg (Printf.sprintf "Schedule: core %d has a negative voltage" i))
        segments;
      let total = List.fold_left (fun acc seg -> acc +. seg.duration) 0. segments in
      if Float.abs (total -. s.period) > 1e-9 *. Float.max 1. s.period then
        invalid_arg
          (Printf.sprintf "Schedule: core %d covers %.12g s, period is %.12g s" i total
             s.period))
    s.cores

let make ~period cores =
  let s = { period; cores = Array.map (fun l -> l) cores } in
  validate s;
  s

let uniform ~period voltages =
  make ~period (Array.map (fun v -> [ { duration = period; voltage = v } ]) voltages)

let two_mode ~period ~low ~high ~high_ratio =
  let n = Array.length low in
  if Array.length high <> n || Array.length high_ratio <> n then
    invalid_arg "Schedule.two_mode: array length mismatch";
  let core i =
    let r = high_ratio.(i) in
    if r < -1e-12 || r > 1. +. 1e-12 then
      invalid_arg (Printf.sprintf "Schedule.two_mode: ratio %g for core %d not in [0,1]" r i);
    let lh = Float.max 0. (Float.min period (r *. period)) in
    let ll = period -. lh in
    if lh <= 1e-12 then [ { duration = period; voltage = low.(i) } ]
    else if ll <= 1e-12 then [ { duration = period; voltage = high.(i) } ]
    else
      [ { duration = ll; voltage = low.(i) }; { duration = lh; voltage = high.(i) } ]
  in
  make ~period (Array.init n core)

let n_cores s = Array.length s.cores
let period s = s.period
let core_segments s i = s.cores.(i)

let voltage_at s i t =
  let t = Float.rem (Float.rem t s.period +. s.period) s.period in
  let rec find at = function
    | [] -> (* numerical spill past the last segment *) (List.hd (List.rev s.cores.(i))).voltage
    | seg :: rest -> if t < at +. seg.duration then seg.voltage else find (at +. seg.duration) rest
  in
  find 0. s.cores.(i)

let state_intervals s =
  (* Collect every core's cumulative change points, then walk the merged
     time line reading each core's voltage inside each span. *)
  let points = ref [ 0.; s.period ] in
  Array.iter
    (fun segments ->
      let at = ref 0. in
      List.iter
        (fun seg ->
          at := !at +. seg.duration;
          points := !at :: !points)
        segments)
    s.cores;
  let sorted = List.sort_uniq Float.compare !points in
  let coalesced =
    List.fold_left
      (fun acc t ->
        match acc with
        | prev :: _ when t -. prev < 1e-12 -> acc
        | _ -> t :: acc)
      [] sorted
    |> List.rev
  in
  let rec spans = function
    | t0 :: (t1 :: _ as rest) ->
        let mid = (t0 +. t1) /. 2. in
        let voltages = Array.init (n_cores s) (fun i -> voltage_at s i mid) in
        (t1 -. t0, voltages) :: spans rest
    | [ _ ] | [] -> []
  in
  spans coalesced

let shift s i offset =
  let offset = Float.rem (Float.rem offset s.period +. s.period) s.period in
  if offset < 1e-12 || s.period -. offset < 1e-12 then s
  else begin
    (* Split core i's cyclic sequence at [offset] and rotate. *)
    let rec split at before = function
      | [] -> (List.rev before, [])
      | seg :: rest ->
          if at +. seg.duration <= offset +. 1e-12 then
            split (at +. seg.duration) (seg :: before) rest
          else if offset -. at < 1e-12 then (List.rev before, seg :: rest)
          else
            let first = { seg with duration = offset -. at } in
            let second = { seg with duration = seg.duration -. (offset -. at) } in
            (List.rev (first :: before), second :: rest)
    in
    let before, after = split 0. [] s.cores.(i) in
    let rotated = after @ before in
    (* Merge the junction if it reunites two pieces of one segment. *)
    let rec merge = function
      | a :: b :: rest when Float.abs (a.voltage -. b.voltage) < 1e-12 ->
          merge ({ duration = a.duration +. b.duration; voltage = a.voltage } :: rest)
      | a :: rest -> a :: merge rest
      | [] -> []
    in
    let cores = Array.copy s.cores in
    cores.(i) <- merge rotated;
    make ~period:s.period cores
  end

let scale_durations s factor =
  if factor <= 0. then invalid_arg "Schedule.scale_durations: non-positive factor";
  make ~period:(s.period *. factor)
    (Array.map
       (List.map (fun seg -> { seg with duration = seg.duration *. factor }))
       s.cores)

let transitions s i =
  match s.cores.(i) with
  | [] | [ _ ] -> 0
  | first :: _ as segments ->
      let rec count prev = function
        | [] ->
            (* Wrap-around boundary. *)
            if Float.abs (prev.voltage -. first.voltage) > 1e-12 then 1 else 0
        | seg :: rest ->
            (if Float.abs (prev.voltage -. seg.voltage) > 1e-12 then 1 else 0)
            + count seg rest
      in
      count first (List.tl segments)

let equal ?(tol = 1e-9) a b =
  Float.abs (a.period -. b.period) <= tol
  && Array.length a.cores = Array.length b.cores
  && Array.for_all2
       (fun ca cb ->
         List.length ca = List.length cb
         && List.for_all2
              (fun x y ->
                Float.abs (x.duration -. y.duration) <= tol
                && Float.abs (x.voltage -. y.voltage) <= tol)
              ca cb)
       a.cores b.cores

let pp fmt s =
  Array.iteri
    (fun i segments ->
      Format.fprintf fmt "core %d:" i;
      List.iter
        (fun seg ->
          Format.fprintf fmt " %.4gms@%.2fV |" (seg.duration *. 1e3) seg.voltage)
        segments;
      Format.pp_print_newline fmt ())
    s.cores

let to_string s =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "period %.17g\n" s.period);
  Array.iteri
    (fun i segments ->
      Buffer.add_string buffer (Printf.sprintf "core %d:" i);
      List.iter
        (fun seg ->
          Buffer.add_string buffer
            (Printf.sprintf " %.17g@%.17g" seg.duration seg.voltage))
        segments;
      Buffer.add_char buffer '\n')
    s.cores;
  Buffer.contents buffer

let of_string text =
  let fail lineno fmt =
    Printf.ksprintf (fun m -> failwith (Printf.sprintf "Schedule.of_string: line %d: %s" lineno m)) fmt
  in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> failwith "Schedule.of_string: empty input"
  | (lineno, first) :: rest ->
      let period =
        match String.split_on_char ' ' first with
        | [ "period"; v ] -> (
            match float_of_string_opt v with
            | Some p -> p
            | None -> fail lineno "bad period %S" v)
        | _ -> fail lineno "expected 'period <seconds>', got %S" first
      in
      let parse_core (lineno, line) =
        match String.index_opt line ':' with
        | None -> fail lineno "expected 'core <i>: ...'"
        | Some colon ->
            let body = String.sub line (colon + 1) (String.length line - colon - 1) in
            let segs =
              String.split_on_char ' ' body
              |> List.filter (fun f -> f <> "")
              |> List.map (fun field ->
                     match String.split_on_char '@' field with
                     | [ d; v ] -> (
                         match (float_of_string_opt d, float_of_string_opt v) with
                         | Some duration, Some voltage -> { duration; voltage }
                         | _ -> fail lineno "bad segment %S" field)
                     | _ -> fail lineno "bad segment %S (expected dur@volt)" field)
            in
            if List.is_empty segs then fail lineno "core has no segments";
            segs
      in
      make ~period (Array.of_list (List.map parse_core rest))
