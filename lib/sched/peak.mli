(** Peak-temperature analysis of voltage schedules.

    Bridges {!Schedule} (voltages) to {!Thermal.Matex} (powers) through a
    {!Power.Power_model}, and dispatches between the cheap end-of-period
    evaluator that Theorem 1 licenses for step-up schedules and the dense
    scan needed for arbitrary ones.  All evaluators run on the
    {!Thermal.Modal} engine via {!Thermal.Matex}, so every policy inner
    loop (AO's m sweep, TPT adjustment, PCO phase search) pays O(n) per
    sample rather than a propagator build. *)

(** [profile model pm s] converts a schedule into the piecewise-constant
    power profile of its state intervals.  Raises [Invalid_argument] when
    the schedule's core count differs from the thermal model's. *)
val profile :
  Thermal.Model.t -> Power.Power_model.t -> Schedule.t -> Thermal.Matex.profile

(** [of_step_up model pm s] is the stable-status peak temperature of the
    step-up schedule [s] — evaluated only at the period boundary, which
    Theorem 1 proves is where the peak lives.  Raises [Invalid_argument]
    if [s] is not step-up. *)
val of_step_up : Thermal.Model.t -> Power.Power_model.t -> Schedule.t -> float

(** [of_any model pm ?samples_per_segment s] is the stable-status peak of
    an arbitrary periodic schedule, by dense scanning (default 32 samples
    per state interval). *)
val of_any :
  Thermal.Model.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float

(** [of_any_refined model pm ?samples_per_segment s] sharpens {!of_any}
    with per-segment golden-section refinement
    ({!Thermal.Matex.peak_refined}) — the most accurate evaluator, used
    for final verification. *)
val of_any_refined :
  Thermal.Model.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float

(** [stable_end_core_temps model pm s] are the absolute per-core
    temperatures at the stable-status period boundary — what AO's TPT
    loop reads to find the hottest core. *)
val stable_end_core_temps :
  Thermal.Model.t -> Power.Power_model.t -> Schedule.t -> Linalg.Vec.t

(** [steady_constant model pm voltages] is the constant-schedule peak:
    the hottest entry of [T^inf] under per-core voltages — Algorithm 1's
    feasibility test. *)
val steady_constant : Thermal.Model.t -> Power.Power_model.t -> float array -> float
