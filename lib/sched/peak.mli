(** Peak-temperature analysis of voltage schedules.

    Bridges {!Schedule} (voltages) to {!Thermal.Matex} (powers) through a
    {!Power.Power_model}, and dispatches between the cheap end-of-period
    evaluator that Theorem 1 licenses for step-up schedules and the dense
    scan needed for arbitrary ones.  All evaluators run on the
    {!Thermal.Modal} engine via {!Thermal.Matex}, so every policy inner
    loop (AO's m sweep, TPT adjustment, PCO phase search) pays O(n) per
    sample rather than a propagator build. *)

(** A bounded, thread-safe memo table for peak evaluations, the storage
    behind the cached entry points below (an evaluation context —
    [Core.Eval] — bundles one table per evaluator family).

    Keys are built from the exact IEEE-754 bit patterns of everything
    that determines the answer, so a hit returns bit-identically what a
    fresh evaluation would have computed: memoization never changes a
    search trajectory, only its cost.  At capacity the oldest entry is
    evicted (insertion order).  All operations are mutex-protected, so
    pool workers may share one table; concurrent misses on the same key
    compute the identical value redundantly and one insert wins. *)
module Cache : sig
  type t

  type stats = {
    hits : int;  (** Lookups answered from the table. *)
    misses : int;  (** Lookups that had to compute. *)
    entries : int;  (** Current resident entries. *)
    evictions : int;  (** Entries dropped at capacity. *)
  }

  (** [create ?max_entries ()] makes an empty table holding at most
      [max_entries] values (default 1024).  [max_entries = 0] disables
      storage entirely — every lookup computes and counts as a miss —
      which is how callers run a cache-off differential check.  Raises
      [Invalid_argument] when negative. *)
  val create : ?max_entries:int -> unit -> t

  (** [stats t] is a consistent snapshot of the counters. *)
  val stats : t -> stats

  (** [clear t] empties the table and zeroes the counters. *)
  val clear : t -> unit

  (** [key_of_voltages vs] is the canonical key of a constant-voltage
      assignment: the concatenated bit patterns of its entries ([-0.]
      canonicalized to [0.]). *)
  val key_of_voltages : float array -> string

  (** [key_of_schedule s] is the canonical digest of a schedule: period
      plus every global state interval's duration and voltage vector.
      Schedules with equal state-interval decompositions heat the chip
      identically, so sharing their entry is exact. *)
  val key_of_schedule : Schedule.t -> string

  (** [find_or_add t key compute] returns the cached value for [key] or
      runs [compute], stores the result (evicting the oldest entry at
      capacity) and returns it. *)
  val find_or_add : t -> string -> (unit -> float) -> float
end

(** [profile model pm s] converts a schedule into the piecewise-constant
    power profile of its state intervals.  Raises [Invalid_argument] when
    the schedule's core count differs from the thermal model's. *)
val profile :
  Thermal.Model.t -> Power.Power_model.t -> Schedule.t -> Thermal.Matex.profile

(** [of_step_up ?engine model pm s] is the stable-status peak temperature
    of the step-up schedule [s] — evaluated only at the period boundary,
    which Theorem 1 proves is where the peak lives, streamed through the
    response engine (zero LU solves, zero per-candidate allocation).
    [engine] may pass the model's cached engine explicitly; raises
    [Invalid_argument] if [s] is not step-up or the engine belongs to a
    different model. *)
val of_step_up :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  Schedule.t ->
  float

(** [of_any model pm ?samples_per_segment s] is the stable-status peak of
    an arbitrary periodic schedule, by dense scanning (default 32 samples
    per state interval). *)
val of_any :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float

(** [of_any_refined model pm ?samples_per_segment s] sharpens {!of_any}
    with per-segment golden-section refinement
    ({!Thermal.Matex.peak_refined}) — the most accurate evaluator, used
    for final verification. *)
val of_any_refined :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float

(** [stable_end_core_temps model pm s] are the absolute per-core
    temperatures at the stable-status period boundary — what AO's TPT
    loop reads to find the hottest core. *)
val stable_end_core_temps :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  Schedule.t ->
  Linalg.Vec.t

(** [of_two_mode ?engine model pm ~period ~low ~high ~high_ratio] is
    {!of_step_up} of [Schedule.two_mode ~period ~low ~high ~high_ratio]
    evaluated WITHOUT constructing the schedule: the aligned two-mode
    state intervals are derived directly (replicating the schedule
    decomposition bit-for-bit) and streamed through the response engine.
    This is the policy hot path — AO's m sweep and the TPT loops price
    thousands of these candidates.  Bit-identical to the schedule-based
    evaluation. *)
val of_two_mode :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [two_mode_end_core_temps ?engine model pm ~period ~low ~high
    ~high_ratio] are the stable-status period-boundary core temperatures
    of the same fused candidate — {!stable_end_core_temps} without the
    schedule. *)
val two_mode_end_core_temps :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  Linalg.Vec.t

(** [of_two_mode_cached ?engine cache model pm ...] memoizes
    {!of_two_mode} under the SAME digest {!Cache.key_of_schedule} gives
    the equivalent schedule, so fused and schedule-based lookups share
    entries. *)
val of_two_mode_cached :
  ?engine:Thermal.Modal.t ->
  Cache.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [steady_constant ?engine model pm voltages] is the constant-schedule
    peak: the hottest entry of [T^inf] under per-core voltages —
    Algorithm 1's feasibility test — computed by superposition on the
    engine's core-row response table (no LU solve). *)
val steady_constant :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  float array ->
  float

(** [steady_constant_cached cache model pm voltages] is
    {!steady_constant} memoized in [cache] under
    {!Cache.key_of_voltages}.  The caller owns the pairing of [cache]
    with ([model], [pm]): one table must never mix platforms. *)
val steady_constant_cached :
  ?engine:Thermal.Modal.t ->
  Cache.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  float array ->
  float

(** [of_step_up_cached cache model pm s] is {!of_step_up} memoized in
    [cache] under {!Cache.key_of_schedule} — the dominant cost of AO's
    m sweep and TPT loop, where searches repeatedly revisit the same
    candidate schedules.  Same platform-pairing contract as
    {!steady_constant_cached}. *)
val of_step_up_cached :
  ?engine:Thermal.Modal.t ->
  Cache.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  Schedule.t ->
  float

(** {1 Backend-generic evaluators}

    The same evaluator family against the uniform {!Thermal.Backend}
    interface, so candidate pricing is implementation-blind: the dense
    modal engine and the sparse Krylov engine answer through identical
    entry points.  The cached variants reuse the exact digests of the
    modal paths above ({!Cache.key_of_voltages}, {!Cache.key_of_schedule}
    and the decomposed two-mode key), so an evaluation context that
    switches backends keeps bit-pattern memoization semantics — only the
    floats a miss computes come from a different engine. *)

(** [backend_profile b pm s] is {!profile} against a backend: the
    schedule's state intervals as a piecewise-constant power profile.
    Raises [Invalid_argument] on a core-count mismatch with [b]. *)
val backend_profile :
  Thermal.Backend.t -> Power.Power_model.t -> Schedule.t -> Thermal.Matex.profile

(** [backend_steady_constant b pm voltages] — {!steady_constant} on [b]. *)
val backend_steady_constant :
  Thermal.Backend.t -> Power.Power_model.t -> float array -> float

(** [backend_steady_constant_cached cache b pm voltages] —
    {!steady_constant_cached} on [b], same key, same platform-pairing
    contract. *)
val backend_steady_constant_cached :
  Cache.t -> Thermal.Backend.t -> Power.Power_model.t -> float array -> float

(** [backend_of_step_up b pm s] — {!of_step_up} on [b].  Raises
    [Invalid_argument] if [s] is not step-up. *)
val backend_of_step_up :
  Thermal.Backend.t -> Power.Power_model.t -> Schedule.t -> float

(** [backend_of_step_up_cached cache b pm s] — {!of_step_up_cached} on
    [b], keyed by {!Cache.key_of_schedule}. *)
val backend_of_step_up_cached :
  Cache.t -> Thermal.Backend.t -> Power.Power_model.t -> Schedule.t -> float

(** [backend_of_any b pm ?samples_per_segment s] — {!of_any} on [b]. *)
val backend_of_any :
  Thermal.Backend.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float

(** [backend_of_any_refined b pm ?samples_per_segment ?tol s] —
    {!of_any_refined} on [b] (default [tol = 1e-4]). *)
val backend_of_any_refined :
  Thermal.Backend.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  ?tol:float ->
  Schedule.t ->
  float

(** [backend_stable_end_core_temps b pm s] — {!stable_end_core_temps} on
    [b]. *)
val backend_stable_end_core_temps :
  Thermal.Backend.t -> Power.Power_model.t -> Schedule.t -> Linalg.Vec.t

(** [backend_of_two_mode b pm ~period ~low ~high ~high_ratio] —
    {!of_two_mode} on [b]: the aligned two-mode candidate is decomposed
    exactly as the fused modal path (and as [Schedule.two_mode]) before
    evaluation, so all three agree on the spans they price. *)
val backend_of_two_mode :
  Thermal.Backend.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [backend_two_mode_end_core_temps b pm ~period ~low ~high ~high_ratio]
    — {!two_mode_end_core_temps} on [b]. *)
val backend_two_mode_end_core_temps :
  Thermal.Backend.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  Linalg.Vec.t

(** [backend_of_two_mode_cached cache b pm ...] — {!of_two_mode_cached}
    on [b], sharing the decomposed-schedule digest with the fused and
    schedule-based entries. *)
val backend_of_two_mode_cached :
  Cache.t ->
  Thermal.Backend.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** {1 Sparse-response and ROM evaluators}

    The many-core candidate hot path.  [response_of_two_mode_cached] is
    the exact tier: the fused two-mode evaluation streamed through a
    {!Thermal.Sparse_response} superposition engine (no per-candidate CG
    steady solves, fixed-point CG warm-started), memoized under the same
    decomposed-schedule digest as every other two-mode entry point.
    [rom_of_two_mode] / [rom_of_any] are the screening tier: the same
    candidates priced on a Lanczos-reduced model in O(n_cores² +
    k·n_cores) with zero Krylov work.  ROM scores are deliberately
    UNCACHED — the exact memo tables must never hold approximate floats,
    since screened searches re-verify survivors through the cached exact
    entry points. *)

(** [response_of_two_mode_cached cache resp pm ~period ~low ~high
    ~high_ratio] — {!of_two_mode_cached} on a sparse superposition
    engine.  Bit-interchangeable digests with the modal and generic
    two-mode paths; the values differ from {!backend_of_two_mode_cached}
    over {!Thermal.Backend.of_sparse} only by Krylov truncation. *)
val response_of_two_mode_cached :
  Cache.t ->
  Thermal.Sparse_response.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** {1 Prepared-base delta evaluators}

    The TPT-loop scan hot path (DESIGN.md §14): capture an aligned
    two-mode config's drive once ([*_delta_base]), then price candidates
    that change a {e single} core's duty cycle in O(n) (dense modal) or
    O(m · n_cores) (sparse response) each — no full re-superposition, no
    funmv stream.  Base/delta state is per-domain scratch: prepare and
    evaluate on the same domain, and re-prepare after the config itself
    changes.  Delta scores agree with the exact two-mode evaluators to
    the differential suite's 1e-9, but are NOT bit-identical and must
    never enter the exact memo tables — search loops re-verify any
    winner through the cached exact entry points before acting on it. *)

(** [two_mode_delta_base ?engine model pm ~period ~low ~high
    ~high_ratio] prepares the base config on this domain's dense modal
    engine. *)
val two_mode_delta_base :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  unit

(** [two_mode_delta_peak ?engine model pm ~core ~low ~high ~high_ratio]
    is the end-of-period stable peak of the candidate equal to the
    prepared base except core [core] runs at ([low], [high],
    [high_ratio]). *)
val two_mode_delta_peak :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  core:int ->
  low:float ->
  high:float ->
  high_ratio:float ->
  float

(** [two_mode_delta_temp_at ?engine model pm ~at ~core ~low ~high
    ~high_ratio] is the same candidate's end-of-period temperature at
    core [at] — the hottest-core read the adjustment scan scores by. *)
val two_mode_delta_temp_at :
  ?engine:Thermal.Modal.t ->
  Thermal.Model.t ->
  Power.Power_model.t ->
  at:int ->
  core:int ->
  low:float ->
  high:float ->
  high_ratio:float ->
  float

(** [response_two_mode_delta_base resp pm ...] /
    [response_two_mode_delta_peak] / [response_two_mode_delta_temp_at]
    — the same three entry points on a sparse superposition engine
    (per-core prepared Lanczos bases; see
    {!Thermal.Sparse_response.base_begin}). *)
val response_two_mode_delta_base :
  Thermal.Sparse_response.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  unit

val response_two_mode_delta_peak :
  Thermal.Sparse_response.t ->
  Power.Power_model.t ->
  core:int ->
  low:float ->
  high:float ->
  high_ratio:float ->
  float

val response_two_mode_delta_temp_at :
  Thermal.Sparse_response.t ->
  Power.Power_model.t ->
  at:int ->
  core:int ->
  low:float ->
  high:float ->
  high_ratio:float ->
  float

(** [rom_of_two_mode rom pm ~period ~low ~high ~high_ratio] is the
    approximate stable-status peak of the fused two-mode candidate on
    the reduced model — the screening score.  Never cached. *)
val rom_of_two_mode :
  Thermal.Reduced.t ->
  Power.Power_model.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [rom_of_any rom pm ?samples_per_segment s] is the approximate
    scanned peak of an arbitrary periodic schedule on the reduced model
    ({!Thermal.Reduced.rom_peak_scan}, default 32 samples per segment) —
    the screening counterpart of {!backend_of_any}.  Raises
    [Invalid_argument] on a core-count mismatch with the reduction's
    engine. *)
val rom_of_any :
  Thermal.Reduced.t ->
  Power.Power_model.t ->
  ?samples_per_segment:int ->
  Schedule.t ->
  float
