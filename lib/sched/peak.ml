(* A bounded, thread-safe memo table for peak evaluations.  Keys are the
   exact IEEE-754 bit patterns of the quantities that determine the
   answer (voltage vectors, schedule state intervals), so a hit returns
   the very float a fresh evaluation would have computed — memoization
   never perturbs a search trajectory.  Insertion order is tracked in a
   queue and the oldest entry is evicted at capacity, mirroring the
   propagator cache's policy.  A mutex guards every table access: pool
   workers evaluating candidates concurrently may race to compute the
   same key, in which case both compute the (identical) value and one
   insert wins. *)
module Cache = struct
  type stats = { hits : int; misses : int; entries : int; evictions : int }

  type t = {
    max_entries : int;
    table : (string, float) Hashtbl.t;
    order : string Queue.t;
    lock : Mutex.t;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ?(max_entries = 1024) () =
    if max_entries < 0 then invalid_arg "Peak.Cache.create: negative max_entries";
    {
      max_entries;
      table = Hashtbl.create (Stdlib.min 64 (Stdlib.max 1 max_entries));
      order = Queue.create ();
      lock = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let stats t =
    Mutex.protect t.lock (fun () ->
        {
          hits = t.hits;
          misses = t.misses;
          entries = Hashtbl.length t.table;
          evictions = t.evictions;
        })

  let clear t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.reset t.table;
        Queue.clear t.order;
        t.hits <- 0;
        t.misses <- 0;
        t.evictions <- 0)

  (* [v +. 0.] canonicalizes -0. to +0. so equal voltages share a key. *)
  let add_float b v = Buffer.add_int64_le b (Int64.bits_of_float (v +. 0.))

  let key_of_voltages voltages =
    let b = Buffer.create (8 * Array.length voltages) in
    Array.iter (add_float b) voltages;
    Buffer.contents b

  (* Canonical schedule digest: the period followed by every state
     interval's duration and per-core voltages.  Two schedules with the
     same global state-interval decomposition heat the chip identically,
     so sharing their entry is exact, not approximate. *)
  let key_of_schedule s =
    let intervals = Schedule.state_intervals s in
    let b = Buffer.create (16 + (16 * List.length intervals)) in
    add_float b (Schedule.period s);
    List.iter
      (fun (duration, voltages) ->
        add_float b duration;
        Array.iter (add_float b) voltages)
      intervals;
    Buffer.contents b

  let find_or_add t key compute =
    if t.max_entries = 0 then begin
      (* Disabled cache: every lookup is a miss; nothing is stored. *)
      Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
      compute ()
    end
    else
      let cached =
        Mutex.protect t.lock (fun () ->
            match Hashtbl.find_opt t.table key with
            | Some v ->
                t.hits <- t.hits + 1;
                Some v
            | None ->
                t.misses <- t.misses + 1;
                None)
      in
      match cached with
      | Some v -> v
      | None ->
          let v = compute () in
          Mutex.protect t.lock (fun () ->
              if not (Hashtbl.mem t.table key) then begin
                if Hashtbl.length t.table >= t.max_entries then begin
                  let victim = Queue.pop t.order in
                  Hashtbl.remove t.table victim;
                  t.evictions <- t.evictions + 1
                end;
                Hashtbl.add t.table key v;
                Queue.push key t.order
              end);
          v
end

let profile model pm s =
  if Schedule.n_cores s <> Thermal.Model.n_cores model then
    invalid_arg
      (Printf.sprintf "Peak.profile: schedule has %d cores, model has %d"
         (Schedule.n_cores s) (Thermal.Model.n_cores model));
  List.map
    (fun (duration, voltages) ->
      { Thermal.Matex.duration; psi = Power.Power_model.psi_vector pm voltages })
    (Schedule.state_intervals s)

let of_step_up model pm s =
  if not (Stepup.is_step_up s) then invalid_arg "Peak.of_step_up: schedule is not step-up";
  Thermal.Matex.end_of_period_peak model (profile model pm s)

let of_any model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_scan model ~samples_per_segment (profile model pm s)

let of_any_refined model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_refined model ~samples_per_segment (profile model pm s)

let stable_end_core_temps model pm s =
  (* Modal fast path: the stable status is solved per mode and only the
     core rows of the eigenbasis are applied — no full-state rebuild. *)
  Thermal.Matex.stable_core_temps model (profile model pm s)

let steady_constant model pm voltages =
  let psi = Power.Power_model.psi_vector pm voltages in
  Linalg.Vec.max (Thermal.Model.steady_core_temps model psi)

let steady_constant_cached cache model pm voltages =
  Cache.find_or_add cache
    (Cache.key_of_voltages voltages)
    (fun () -> steady_constant model pm voltages)

let of_step_up_cached cache model pm s =
  Cache.find_or_add cache (Cache.key_of_schedule s) (fun () -> of_step_up model pm s)
