let profile model pm s =
  if Schedule.n_cores s <> Thermal.Model.n_cores model then
    invalid_arg
      (Printf.sprintf "Peak.profile: schedule has %d cores, model has %d"
         (Schedule.n_cores s) (Thermal.Model.n_cores model));
  List.map
    (fun (duration, voltages) ->
      { Thermal.Matex.duration; psi = Power.Power_model.psi_vector pm voltages })
    (Schedule.state_intervals s)

let of_step_up model pm s =
  if not (Stepup.is_step_up s) then invalid_arg "Peak.of_step_up: schedule is not step-up";
  Thermal.Matex.end_of_period_peak model (profile model pm s)

let of_any model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_scan model ~samples_per_segment (profile model pm s)

let of_any_refined model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_refined model ~samples_per_segment (profile model pm s)

let stable_end_core_temps model pm s =
  (* Modal fast path: the stable status is solved per mode and only the
     core rows of the eigenbasis are applied — no full-state rebuild. *)
  Thermal.Matex.stable_core_temps model (profile model pm s)

let steady_constant model pm voltages =
  let psi = Power.Power_model.psi_vector pm voltages in
  Linalg.Vec.max (Thermal.Model.steady_core_temps model psi)
