(* A bounded, thread-safe memo table for peak evaluations.  Keys are the
   exact IEEE-754 bit patterns of the quantities that determine the
   answer (voltage vectors, schedule state intervals), so a hit returns
   the very float a fresh evaluation would have computed — memoization
   never perturbs a search trajectory.  Insertion order is tracked in a
   queue and the oldest entry is evicted at capacity, mirroring the
   propagator cache's policy.  A mutex guards every table access: pool
   workers evaluating candidates concurrently may race to compute the
   same key, in which case both compute the (identical) value and one
   insert wins. *)
[@@@fosc.digest_sensitive]

module Cache = struct
  type stats = { hits : int; misses : int; entries : int; evictions : int }

  type t = {
    max_entries : int;
    table : (string, float) Hashtbl.t; [@fosc.guarded "mutex"]
    order : string Queue.t; [@fosc.guarded "mutex"]
    lock : Mutex.t;
    mutable hits : int; [@fosc.guarded "mutex"]
    mutable misses : int; [@fosc.guarded "mutex"]
    mutable evictions : int; [@fosc.guarded "mutex"]
  }

  let create ?(max_entries = 1024) () =
    if max_entries < 0 then invalid_arg "Peak.Cache.create: negative max_entries";
    {
      max_entries;
      (* Sized for the configured capacity up front: growth rehashes
         re-hash every stored digest, which a cold policy search pays
         right in its candidate loop. *)
      table = Hashtbl.create (Stdlib.max 16 (Stdlib.min max_entries 65536));
      order = Queue.create ();
      lock = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let stats t =
    Mutex.protect t.lock (fun () ->
        {
          hits = t.hits;
          misses = t.misses;
          entries = Hashtbl.length t.table;
          evictions = t.evictions;
        })

  let clear t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.reset t.table;
        Queue.clear t.order;
        t.hits <- 0;
        t.misses <- 0;
        t.evictions <- 0)

  (* [v +. 0.] canonicalizes -0. to +0. so equal voltages share a key. *)
  let add_float b v = Buffer.add_int64_le b (Int64.bits_of_float (v +. 0.))

  let key_of_voltages voltages =
    let b = Buffer.create (8 * Array.length voltages) in
    Array.iter (add_float b) voltages;
    Buffer.contents b

  (* Canonical schedule digest: the period followed by every state
     interval's duration and per-core voltages.  Two schedules with the
     same global state-interval decomposition heat the chip identically,
     so sharing their entry is exact, not approximate. *)
  let key_of_schedule s =
    let intervals = Schedule.state_intervals s in
    let b = Buffer.create (16 + (16 * List.length intervals)) in
    add_float b (Schedule.period s);
    List.iter
      (fun (duration, voltages) ->
        add_float b duration;
        Array.iter (add_float b) voltages)
      intervals;
    Buffer.contents b

  let disabled t = t.max_entries = 0

  (* The hot-path table operations take the lock directly: the critical
     sections cannot raise (Hashtbl/Queue operations on live structures),
     and [Mutex.protect]'s closure + unwind bookkeeping is measurable at
     candidate-evaluation frequency. *)

  let count_miss t =
    Mutex.lock t.lock;
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock

  let find t key =
    Mutex.lock t.lock;
    let cached = Hashtbl.find_opt t.table key in
    (match cached with
    | Some _ -> t.hits <- t.hits + 1
    | None -> t.misses <- t.misses + 1);
    Mutex.unlock t.lock;
    cached

  let add t key v =
    Mutex.lock t.lock;
    if not (Hashtbl.mem t.table key) then begin
      if Hashtbl.length t.table >= t.max_entries then begin
        (* [take_opt], not [pop]: the bare lock/unlock pair is only
           sound because nothing in this section can raise, and [pop]
           raises [Empty] if the order queue ever desyncs. *)
        match Queue.take_opt t.order with
        | Some victim ->
            Hashtbl.remove t.table victim;
            t.evictions <- t.evictions + 1
        | None -> ()
      end;
      Hashtbl.add t.table key v;
      Queue.push key t.order
    end;
    Mutex.unlock t.lock

  let find_or_add t key compute =
    if t.max_entries = 0 then begin
      (* Disabled cache: every lookup is a miss; nothing is stored. *)
      count_miss t;
      compute ()
    end
    else
      match find t key with
      | Some v -> v
      | None ->
          let v = compute () in
          add t key v;
          v
end

let profile model pm s =
  if Schedule.n_cores s <> Thermal.Model.n_cores model then
    invalid_arg
      (Printf.sprintf "Peak.profile: schedule has %d cores, model has %d"
         (Schedule.n_cores s) (Thermal.Model.n_cores model));
  List.map
    (fun (duration, voltages) ->
      { Thermal.Matex.duration; psi = Power.Power_model.psi_vector_memo pm voltages })
    (Schedule.state_intervals s)

(* ------------------------------------------ fused two-mode evaluation *)

(* The policy hot path (AO's m sweep, the TPT loops) evaluates ALIGNED
   two-mode candidates: every core low for part of the period, high for
   the rest, no offsets.  Building a Schedule.t and merging its state
   intervals per candidate costs several times the thermal solve, so the
   evaluators below replicate [Schedule.two_mode] + [state_intervals]
   span-for-span — the same ratio clamps, the same 1e-12 boundary
   coalescing, the same midpoint voltage reads — and stream the spans
   straight into the response engine.  The replication is exact, so the
   results (and the cache digests) are bit-interchangeable with the
   schedule-based path. *)

(* Per-domain scratch for the decomposition: boundary points, per-core
   shapes and the power vector handed to the engine — a candidate
   evaluation allocates nothing.  [psi] is kept at exactly the current
   core count (the engine checks arity); switching platforms of a
   different width on one domain re-sizes, which is rare and cheap. *)
type two_mode_scratch = {
  mutable pts : float array;  (* sorted, coalesced boundary points *)
  mutable lens : float array;  (* leading low-segment length per core *)
  mutable consts : int array;  (* -1 all-low, +1 all-high, 0 two-mode *)
  mutable psi : float array;  (* the span's power vector *)
}

let two_mode_scratch_key =
  Domain.DLS.new_key (fun () ->
      { pts = [||]; lens = [||]; consts = [||]; psi = [||] })

let two_mode_scratch n =
  let s = Domain.DLS.get two_mode_scratch_key in
  if Array.length s.psi <> n then begin
    s.pts <- Array.make ((2 * n) + 2) 0.;
    s.lens <- Array.make n 0.;
    s.consts <- Array.make n 0;
    s.psi <- Array.make n 0.
  end;
  (s
  [@fosc.dls_ok
    "accessor hands this domain's scratch to same-domain callers only; every \
     caller finishes with it before returning (nothing stores or returns it \
     further)"])

(* Fill [s] with the merged state-interval decomposition; returns the
   kept boundary-point count.  Replicates [Schedule.two_mode]'s ratio
   validation and clamps and [state_intervals]' sorted-point 1e-12
   coalescing EXACTLY, so the spans — and everything computed from them
   — are bit-identical to the schedule-based path. *)
let two_mode_decompose s ~period ~low ~high ~high_ratio =
  let n = Array.length low in
  if Array.length high <> n || Array.length high_ratio <> n then
    invalid_arg "Schedule.two_mode: array length mismatch";
  let pts = s.pts in
  pts.(0) <- 0.;
  pts.(1) <- period;
  let npts = ref 2 in
  for i = 0 to n - 1 do
    let r = high_ratio.(i) in
    if r < -1e-12 || r > 1. +. 1e-12 then
      invalid_arg
        (Printf.sprintf
           "Schedule.two_mode: ratio %.6g for core %d not in [0,1]" r i);
    let lh = Float.max 0. (Float.min period (r *. period)) in
    let ll = period -. lh in
    if lh <= 1e-12 then begin
      s.consts.(i) <- -1;
      pts.(!npts) <- period;
      incr npts
    end
    else if ll <= 1e-12 then begin
      s.consts.(i) <- 1;
      pts.(!npts) <- period;
      incr npts
    end
    else begin
      s.consts.(i) <- 0;
      s.lens.(i) <- ll;
      pts.(!npts) <- ll;
      incr npts;
      pts.(!npts) <- ll +. lh;
      incr npts
    end
  done;
  (* Insertion sort: at most [2n + 2] points, no comparator closure. *)
  for k = 1 to !npts - 1 do
    let v = pts.(k) in
    let j = ref (k - 1) in
    while !j >= 0 && pts.(!j) > v do
      pts.(!j + 1) <- pts.(!j);
      decr j
    done;
    pts.(!j + 1) <- v
  done;
  (* Coalesce boundaries closer than 1e-12 against the last KEPT point
     (sort_uniq + the fold in [state_intervals] collapse to this). *)
  let kept = ref 1 in
  for k = 1 to !npts - 1 do
    if pts.(k) -. pts.(!kept - 1) >= 1e-12 then begin
      pts.(!kept) <- pts.(k);
      incr kept
    end
  done;
  !kept

(* The voltage core [i] runs during the span whose normalized midpoint
   is [t] — the read [Schedule.voltage_at] would perform. *)
let[@inline] two_mode_voltage s ~low ~high t i =
  let c = s.consts.(i) in
  if c = -1 then low.(i)
  else if c = 1 then high.(i)
  else if t < s.lens.(i) then low.(i)
  else high.(i)

(* The exact normalization [voltage_at] applies to the span midpoint
   before its walk. *)
let[@inline] two_mode_mid ~period t0 t1 =
  let mid = (t0 +. t1) /. 2. in
  Float.rem (Float.rem mid period +. period) period

(* Streamed end-of-period stable status of an ALREADY-DECOMPOSED
   two-mode candidate (spans in [s]), left in the engine's per-domain
   scratch.  Per-span powers are computed straight from
   [Power_model.psi] into the scratch vector: the same floats
   [psi_vector] would produce, without the key digest a memo lookup
   would build. *)
let two_mode_stable_z_decomposed eng pm s ~period ~low ~high kept =
  let n = Array.length low in
  Thermal.Modal.stable_begin eng;
  for k = 0 to kept - 2 do
    let t0 = s.pts.(k) and t1 = s.pts.(k + 1) in
    let t = two_mode_mid ~period t0 t1 in
    for i = 0 to n - 1 do
      s.psi.(i) <- Power.Power_model.psi pm (two_mode_voltage s ~low ~high t i)
    done;
    Thermal.Modal.stable_feed eng ~duration:(t1 -. t0) ~psi:s.psi
  done;
  Thermal.Modal.stable_solve eng ~t_p:period

let two_mode_stable_z eng pm ~period ~low ~high ~high_ratio =
  let s = two_mode_scratch (Array.length low) in
  let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
  two_mode_stable_z_decomposed eng pm s ~period ~low ~high kept

let resolve_engine ?engine model =
  match engine with
  | Some e ->
      if Thermal.Modal.model e != model then
        invalid_arg "Peak: engine belongs to a different model";
      e
  | None -> Thermal.Modal.make model

let of_two_mode ?engine model pm ~period ~low ~high ~high_ratio =
  let eng = resolve_engine ?engine model in
  Thermal.Modal.max_core_temp eng
    (two_mode_stable_z eng pm ~period ~low ~high ~high_ratio)

let two_mode_end_core_temps ?engine model pm ~period ~low ~high ~high_ratio =
  let eng = resolve_engine ?engine model in
  Thermal.Modal.core_temps eng
    (two_mode_stable_z eng pm ~period ~low ~high ~high_ratio)

(* The same digest [Cache.key_of_schedule] produces for the equivalent
   schedule: period, then every span's duration and voltages (as
   little-endian IEEE-754 bits, -0. canonicalized) — so fused and
   schedule-based lookups share entries exactly.  Built from the
   already-decomposed scratch into a per-domain byte buffer: the only
   allocation is the final key string itself. *)
let key_bytes_key = Domain.DLS.new_key (fun () -> Bytes.create 256)

let two_mode_key_decomposed s ~period ~low ~high kept =
  let n = Array.length low in
  let len = 8 * (1 + ((kept - 1) * (1 + n))) in
  let b =
    let b = Domain.DLS.get key_bytes_key in
    if Bytes.length b >= len then b
    else begin
      let b = Bytes.create len in
      Domain.DLS.set key_bytes_key b;
      b
    end
  in
  Bytes.set_int64_le b 0 (Int64.bits_of_float (period +. 0.));
  let off = ref 8 in
  for k = 0 to kept - 2 do
    let t0 = s.pts.(k) and t1 = s.pts.(k + 1) in
    Bytes.set_int64_le b !off (Int64.bits_of_float (t1 -. t0 +. 0.));
    off := !off + 8;
    let t = two_mode_mid ~period t0 t1 in
    for i = 0 to n - 1 do
      Bytes.set_int64_le b !off
        (Int64.bits_of_float (two_mode_voltage s ~low ~high t i +. 0.));
      off := !off + 8
    done
  done;
  Bytes.sub_string b 0 len

let of_two_mode_cached ?engine cache model pm ~period ~low ~high ~high_ratio =
  if Cache.disabled cache then begin
    Cache.count_miss cache;
    of_two_mode ?engine model pm ~period ~low ~high ~high_ratio
  end
  else begin
    (* One decomposition serves both the key and (on a miss) the
       evaluation — nothing between the [find] and the feed loop touches
       this domain's scratch. *)
    let eng = resolve_engine ?engine model in
    let s = two_mode_scratch (Array.length low) in
    let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
    let key = two_mode_key_decomposed s ~period ~low ~high kept in
    match Cache.find cache key with
    | Some v -> v
    | None ->
        let v =
          Thermal.Modal.max_core_temp eng
            (two_mode_stable_z_decomposed eng pm s ~period ~low ~high kept)
        in
        Cache.add cache key v;
        v
  end

let of_step_up ?engine model pm s =
  if not (Stepup.is_step_up s) then invalid_arg "Peak.of_step_up: schedule is not step-up";
  Thermal.Matex.end_of_period_peak ?engine model (profile model pm s)

let of_any ?engine model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_scan ?engine model ~samples_per_segment (profile model pm s)

let of_any_refined ?engine model pm ?(samples_per_segment = 32) s =
  Thermal.Matex.peak_refined ?engine model ~samples_per_segment (profile model pm s)

let stable_end_core_temps ?engine model pm s =
  (* Modal fast path: the stable status is streamed per mode through the
     response engine's scratch and only the core rows of the eigenbasis
     are applied — no full-state rebuild, no LU. *)
  Thermal.Matex.stable_core_temps ?engine model (profile model pm s)

let steady_constant ?engine model pm voltages =
  (* Superposition on the engine's core-row response table — the O(n^2)
     LU-backed [Model.steady_core_temps] survives as the reference. *)
  let eng =
    match engine with
    | Some e ->
        if Thermal.Modal.model e != model then
          invalid_arg "Peak.steady_constant: engine belongs to a different model";
        e
    | None -> Thermal.Modal.make model
  in
  Thermal.Modal.steady_peak eng (Power.Power_model.psi_vector_memo pm voltages)

(* The cached entry points build their (exact, bit-pattern) key lazily:
   when the caller's memo table is disabled there is no point digesting
   the schedule, only the miss is recorded. *)
let steady_constant_cached ?engine cache model pm voltages =
  if Cache.disabled cache then
    Cache.find_or_add cache "" (fun () -> steady_constant ?engine model pm voltages)
  else
    Cache.find_or_add cache
      (Cache.key_of_voltages voltages)
      (fun () -> steady_constant ?engine model pm voltages)

let of_step_up_cached ?engine cache model pm s =
  if Cache.disabled cache then
    Cache.find_or_add cache "" (fun () -> of_step_up ?engine model pm s)
  else
    Cache.find_or_add cache (Cache.key_of_schedule s)
      (fun () -> of_step_up ?engine model pm s)

(* ------------------------------------- backend-generic evaluators *)

(* The same evaluators against the uniform {!Thermal.Backend} interface,
   so candidate pricing is implementation-blind: the dense modal engine
   and the sparse Krylov engine answer through identical entry points.
   Cache digests are shared with the modal paths above (same voltage /
   schedule / decomposed-two-mode keys), so a context switching backends
   keeps exact, bit-pattern memoization semantics — only the floats a
   miss computes come from a different engine. *)

module B = Thermal.Backend

let backend_profile (b : B.t) pm s =
  if Schedule.n_cores s <> b.B.n_cores then
    invalid_arg
      (Printf.sprintf "Peak.backend_profile: schedule has %d cores, backend has %d"
         (Schedule.n_cores s) b.B.n_cores);
  List.map
    (fun (duration, voltages) ->
      { Thermal.Matex.duration; psi = Power.Power_model.psi_vector_memo pm voltages })
    (Schedule.state_intervals s)

let backend_steady_constant (b : B.t) pm voltages =
  b.B.steady_peak (Power.Power_model.psi_vector_memo pm voltages)

let backend_steady_constant_cached cache b pm voltages =
  if Cache.disabled cache then
    Cache.find_or_add cache "" (fun () -> backend_steady_constant b pm voltages)
  else
    Cache.find_or_add cache
      (Cache.key_of_voltages voltages)
      (fun () -> backend_steady_constant b pm voltages)

let backend_of_step_up (b : B.t) pm s =
  if not (Stepup.is_step_up s) then
    invalid_arg "Peak.backend_of_step_up: schedule is not step-up";
  b.B.stable_peak (backend_profile b pm s)

let backend_of_step_up_cached cache b pm s =
  if Cache.disabled cache then
    Cache.find_or_add cache "" (fun () -> backend_of_step_up b pm s)
  else
    Cache.find_or_add cache (Cache.key_of_schedule s)
      (fun () -> backend_of_step_up b pm s)

let backend_of_any (b : B.t) pm ?(samples_per_segment = 32) s =
  b.B.peak_scan ~samples_per_segment (backend_profile b pm s)

let backend_of_any_refined (b : B.t) pm ?(samples_per_segment = 32) ?(tol = 1e-4) s =
  b.B.peak_refined ~samples_per_segment ~tol (backend_profile b pm s)

let backend_stable_end_core_temps (b : B.t) pm s =
  b.B.stable_core_temps (backend_profile b pm s)

(* The profile of an already-decomposed aligned two-mode candidate: the
   identical spans and midpoint voltage reads as the fused modal path
   (and as [Schedule.two_mode] + [state_intervals]), materialized as
   segments for a backend evaluator. *)
let backend_two_mode_profile pm s ~period ~low ~high kept =
  let n = Array.length low in
  let segs = ref [] in
  for k = kept - 2 downto 0 do
    let t0 = s.pts.(k) and t1 = s.pts.(k + 1) in
    let t = two_mode_mid ~period t0 t1 in
    let psi =
      Array.init n (fun i ->
          Power.Power_model.psi pm (two_mode_voltage s ~low ~high t i))
    in
    segs := { Thermal.Matex.duration = t1 -. t0; psi } :: !segs
  done;
  !segs

let backend_of_two_mode (b : B.t) pm ~period ~low ~high ~high_ratio =
  let s = two_mode_scratch (Array.length low) in
  let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
  b.B.stable_peak (backend_two_mode_profile pm s ~period ~low ~high kept)

let backend_two_mode_end_core_temps (b : B.t) pm ~period ~low ~high ~high_ratio =
  let s = two_mode_scratch (Array.length low) in
  let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
  b.B.stable_core_temps (backend_two_mode_profile pm s ~period ~low ~high kept)

let backend_of_two_mode_cached cache b pm ~period ~low ~high ~high_ratio =
  if Cache.disabled cache then begin
    Cache.count_miss cache;
    backend_of_two_mode b pm ~period ~low ~high ~high_ratio
  end
  else begin
    let s = two_mode_scratch (Array.length low) in
    let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
    let key = two_mode_key_decomposed s ~period ~low ~high kept in
    match Cache.find cache key with
    | Some v -> v
    | None ->
        let v =
          (b : B.t).B.stable_peak
            (backend_two_mode_profile pm s ~period ~low ~high kept)
        in
        Cache.add cache key v;
        v
  end

(* ------------------------------ fused sparse-response / ROM evaluators *)

module R = Thermal.Sparse_response
module Rom = Thermal.Reduced

(* The fused modal hot path, ported to the sparse superposition engine:
   decompose once into this domain's scratch, stream the spans through
   [Sparse_response.stable_begin]/[stable_feed]/[stable_solve] (each
   feed superposes the span's equilibrium allocation-free, no CG steady
   solves), and share the exact bit-pattern digest with every other
   two-mode entry point — a context switching between the modal, the
   generic-backend and this path keeps one coherent memo table. *)
let response_of_two_mode_cached cache resp pm ~period ~low ~high ~high_ratio =
  let eng = R.engine resp in
  let s = two_mode_scratch (Array.length low) in
  let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
  let evaluate () =
    R.stable_begin resp;
    let n = Array.length low in
    for k = 0 to kept - 2 do
      let t0 = s.pts.(k) and t1 = s.pts.(k + 1) in
      let t = two_mode_mid ~period t0 t1 in
      for i = 0 to n - 1 do
        s.psi.(i) <- Power.Power_model.psi pm (two_mode_voltage s ~low ~high t i)
      done;
      R.stable_feed resp ~duration:(t1 -. t0) ~psi:s.psi
    done;
    Thermal.Sparse_model.max_core_temp eng (R.stable_solve resp ~t_p:period)
  in
  if Cache.disabled cache then begin
    Cache.count_miss cache;
    evaluate ()
  end
  else begin
    let key = two_mode_key_decomposed s ~period ~low ~high kept in
    match Cache.find cache key with
    | Some v -> v
    | None ->
        let v = evaluate () in
        Cache.add cache key v;
        v
  end

(* ------------------------------------ prepared-base delta evaluators *)

(* Voltage-to-psi conversion shared with the exact decomposed paths
   above ([Power.Power_model.psi] on the span's voltage), handed to the
   engines' prepared-base API.  Base/delta state is per-domain: prepare
   and evaluate on the same domain. *)

let two_mode_delta_base ?engine model pm ~period ~low ~high ~high_ratio =
  let eng = resolve_engine ?engine model in
  let n = Array.length low in
  if Array.length high <> n || Array.length high_ratio <> n then
    invalid_arg "Peak.two_mode_delta_base: array length mismatch";
  Thermal.Modal.base_begin eng ~t_p:period;
  for i = 0 to n - 1 do
    Thermal.Modal.base_feed eng ~core:i
      ~psi_low:(Power.Power_model.psi pm low.(i))
      ~psi_high:(Power.Power_model.psi pm high.(i))
      ~high_ratio:high_ratio.(i)
  done;
  ignore (Thermal.Modal.base_solve eng : float array)

let two_mode_delta_peak ?engine model pm ~core ~low ~high ~high_ratio =
  let eng = resolve_engine ?engine model in
  Thermal.Modal.delta_peak eng ~core
    ~psi_low:(Power.Power_model.psi pm low)
    ~psi_high:(Power.Power_model.psi pm high)
    ~high_ratio

let two_mode_delta_temp_at ?engine model pm ~at ~core ~low ~high ~high_ratio =
  let eng = resolve_engine ?engine model in
  Thermal.Modal.delta_core_temp eng ~at ~core
    ~psi_low:(Power.Power_model.psi pm low)
    ~psi_high:(Power.Power_model.psi pm high)
    ~high_ratio

let response_two_mode_delta_base resp pm ~period ~low ~high ~high_ratio =
  let n = Array.length low in
  if Array.length high <> n || Array.length high_ratio <> n then
    invalid_arg "Peak.response_two_mode_delta_base: array length mismatch";
  R.base_begin resp ~t_p:period;
  for i = 0 to n - 1 do
    R.base_feed resp ~core:i
      ~psi_low:(Power.Power_model.psi pm low.(i))
      ~psi_high:(Power.Power_model.psi pm high.(i))
      ~high_ratio:high_ratio.(i)
  done;
  ignore (R.base_solve resp : float array)

let response_two_mode_delta_peak resp pm ~core ~low ~high ~high_ratio =
  R.delta_peak resp ~core
    ~psi_low:(Power.Power_model.psi pm low)
    ~psi_high:(Power.Power_model.psi pm high)
    ~high_ratio

let response_two_mode_delta_temp_at resp pm ~at ~core ~low ~high ~high_ratio =
  R.delta_core_temp resp ~at ~core
    ~psi_low:(Power.Power_model.psi pm low)
    ~psi_high:(Power.Power_model.psi pm high)
    ~high_ratio

(* ROM screening scores.  Same decomposition, same span midpoints, but
   priced on the Lanczos-reduced model — O(n_cores^2 + k n_cores), zero
   Krylov work.  NEVER cached: the exact memo tables must only ever hold
   exact evaluations (a screened search re-verifies survivors through
   the cached exact entry points above, and a ROM float behind an exact
   digest would silently corrupt that re-check). *)
let rom_of_two_mode rom pm ~period ~low ~high ~high_ratio =
  let s = two_mode_scratch (Array.length low) in
  let kept = two_mode_decompose s ~period ~low ~high ~high_ratio in
  Rom.rom_begin rom;
  let n = Array.length low in
  for k = 0 to kept - 2 do
    let t0 = s.pts.(k) and t1 = s.pts.(k + 1) in
    let t = two_mode_mid ~period t0 t1 in
    for i = 0 to n - 1 do
      s.psi.(i) <- Power.Power_model.psi pm (two_mode_voltage s ~low ~high t i)
    done;
    Rom.rom_feed rom ~duration:(t1 -. t0) ~psi:s.psi
  done;
  Rom.rom_solve rom ~t_p:period

let rom_profile rom pm s =
  if Schedule.n_cores s
     <> Thermal.Sparse_model.n_cores (Thermal.Reduced.engine rom)
  then
    invalid_arg
      (Printf.sprintf "Peak.rom_of_any: schedule has %d cores, engine has %d"
         (Schedule.n_cores s)
         (Thermal.Sparse_model.n_cores (Thermal.Reduced.engine rom)));
  List.map
    (fun (duration, voltages) ->
      { Thermal.Matex.duration; psi = Power.Power_model.psi_vector_memo pm voltages })
    (Schedule.state_intervals s)

let rom_of_any rom pm ?(samples_per_segment = 32) s =
  Rom.rom_peak_scan rom ~samples_per_segment (rom_profile rom pm s)
