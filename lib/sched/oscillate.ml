let oscillate m s =
  if m < 1 then invalid_arg "Oscillate.oscillate: m < 1";
  if m = 1 then s else Schedule.scale_durations s (1. /. float_of_int m)

let delta ~tau ~v_low ~v_high =
  if tau < 0. then invalid_arg "Oscillate.delta: negative tau";
  if v_high <= v_low then invalid_arg "Oscillate.delta: v_high <= v_low";
  (v_low +. v_high) *. tau /. (v_high -. v_low)

let max_m_for_core ~tau ~v_low ~v_high ~t_low =
  if Float.abs (v_high -. v_low) < 1e-12 || t_low <= 0. then max_int
  else if tau <= 0. then max_int
  else
    let d = delta ~tau ~v_low ~v_high in
    let m = int_of_float (Float.floor (t_low /. (d +. tau))) in
    Stdlib.max 1 m

let max_m ~tau ~modes =
  Array.fold_left
    (fun acc (v_low, v_high, t_low) ->
      Stdlib.min acc (max_m_for_core ~tau ~v_low ~v_high ~t_low))
    max_int modes
  |> Stdlib.max 1

let with_ramps ~steps ~tau s =
  if steps < 1 then invalid_arg "Oscillate.with_ramps: steps < 1";
  if tau <= 0. then invalid_arg "Oscillate.with_ramps: non-positive tau";
  let ramp_core segments =
    match segments with
    | [] | [ _ ] -> segments
    | first :: _ ->
        (* The voltage in force just before the first segment is the last
           segment's (the schedule is cyclic); one fold finds it without
           the quadratic List.nth walk. *)
        let last_voltage =
          List.fold_left
            (fun _ seg -> seg.Schedule.voltage)
            first.Schedule.voltage segments
        in
        (* The voltage in force just before each segment starts (cyclic). *)
        let rec build prev = function
          | [] -> []
          | seg :: rest ->
              let out =
                if Float.abs (prev -. seg.Schedule.voltage) < 1e-12 then [ seg ]
                else begin
                  if seg.Schedule.duration <= tau then
                    invalid_arg
                      "Oscillate.with_ramps: segment shorter than the ramp";
                  let dv = seg.Schedule.voltage -. prev in
                  let sub = tau /. float_of_int steps in
                  let ramp =
                    List.init steps (fun k ->
                        {
                          Schedule.duration = sub;
                          voltage =
                            prev
                            +. (dv
                               *. (float_of_int k +. 0.5)
                               /. float_of_int steps);
                        })
                  in
                  ramp
                  @ [ { seg with Schedule.duration = seg.Schedule.duration -. tau } ]
                end
              in
              out @ build seg.Schedule.voltage rest
        in
        build last_voltage segments
  in
  Schedule.make ~period:(Schedule.period s)
    (Array.init (Schedule.n_cores s) (fun i -> ramp_core (Schedule.core_segments s i)))
