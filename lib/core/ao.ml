let log_src = Logs.Src.create "fosc.ao" ~doc:"AO (Algorithm 2) solver"

module Log = (val Logs.src_log log_src)

type result = {
  config : Tpt.config;
  schedule : Sched.Schedule.t;
  m : int;
  m_max : int;
  throughput : float;
  peak : float;
  ideal : Ideal.result;
  adjustment_steps : int;
}

(* The per-core ramp repayment delta_i — loop-invariant across the m
   sweep, so computed once.  Cores whose ideal voltage coincides with a
   level run constant and incur no overhead. *)
let deltas_of (p : Platform.t) ~v_low ~v_high =
  Array.init (Array.length v_low) (fun i ->
      if v_high.(i) -. v_low.(i) < 1e-12 then 0.
      else Sched.Oscillate.delta ~tau:p.tau ~v_low:v_low.(i) ~v_high:v_high.(i))

(* The mini-period config for oscillation count [m]: per-core high time
   r_H * (t_p / m) extended by delta_i to repay the two transition stalls
   (Section V). *)
let config_for_m (p : Platform.t) ~base_period ~v_low ~v_high ~ratio ?deltas m =
  let deltas =
    match deltas with Some d -> d | None -> deltas_of p ~v_low ~v_high
  in
  let mini = base_period /. float_of_int m in
  let n = Array.length v_low in
  let high_time =
    Array.init n (fun i ->
        if v_high.(i) -. v_low.(i) < 1e-12 then
          (* Constant mode: encode as all-high at v_high = v_low. *)
          mini
        else if ratio.(i) >= 1. -. 1e-12 then mini
        else if ratio.(i) <= 1e-12 then 0.
        else Float.min mini ((ratio.(i) *. mini) +. deltas.(i)))
  in
  {
    Tpt.period = mini;
    v_low = Array.copy v_low;
    v_high = Array.copy v_high;
    high_time;
    offset = Array.make n 0.;
  }

let solve ?eval ?(base_period = 0.1) ?(m_cap = 512) ?t_unit ?(fill = false)
    ?(adjust = `Greedy) ?(par = true) ?(delta_margin = 0.) (p : Platform.t) =
  let n = Platform.n_cores p in
  let ideal = Ideal.solve p in
  (* Neighbouring modes and the throughput-preserving ratio of Eq. (11). *)
  let v_low = Array.make n 0. and v_high = Array.make n 0. and ratio = Array.make n 0. in
  for i = 0 to n - 1 do
    let lo, hi = Power.Vf.neighbours p.levels ideal.Ideal.voltages.(i) in
    v_low.(i) <- lo;
    v_high.(i) <- hi;
    ratio.(i) <-
      (if hi -. lo < 1e-12 then 1. else (ideal.Ideal.voltages.(i) -. lo) /. (hi -. lo))
  done;
  (* Transition-overhead bound M = min_i floor(t_iL / (delta_i + tau)). *)
  let modes =
    Array.init n (fun i -> (v_low.(i), v_high.(i), (1. -. ratio.(i)) *. base_period))
  in
  let m_max = Stdlib.min m_cap (Sched.Oscillate.max_m ~tau:p.tau ~modes) in
  (* Sweep m: Theorem 5 makes the peak non-increasing until overhead
     extension bites, so keep the m with the lowest peak.  Every m's
     evaluation is independent, so fan them across the pool and run the
     original (ordered, tie-keeps-smallest-m) reduction over the array. *)
  let deltas = deltas_of p ~v_low ~v_high in
  let peaks =
    (* Straight to the fused aligned evaluator: the high-time expressions
       mirror [config_for_m] term for term, so each candidate's digest —
       and peak — is bit-identical to evaluating the built config, without
       allocating one per m. *)
    let ratios_for i =
      let mini = base_period /. float_of_int (i + 1) in
      let high_ratio =
        Array.init n (fun j ->
            let ht =
              if v_high.(j) -. v_low.(j) < 1e-12 then mini
              else if ratio.(j) >= 1. -. 1e-12 then mini
              else if ratio.(j) <= 1e-12 then 0.
              else Float.min mini ((ratio.(j) *. mini) +. deltas.(j))
            in
            Float.max 0. (Float.min 1. (ht /. mini)))
      in
      (mini, high_ratio)
    in
    let eval_m i =
      let period, high_ratio = ratios_for i in
      Tpt.peak_aligned p ?eval ~period ~low:v_low ~high:v_high ~high_ratio ()
    in
    let pool = Option.map Eval.pool eval in
    (* Fan out only when the batch carries real work: a 3-core dense
       candidate evaluation is under a microsecond, and waking the pool
       for ~10k such evaluations costs more than running them inline.
       The m * cores * nodes product tracks the per-sweep floating-point
       volume across platform sizes; the same gate covers the screened
       branch, whose ROM scores are cheaper still. *)
    let work = m_max * n * Thermal.Model.n_nodes p.model in
    let par = par && work >= 32768 in
    match Option.bind eval Eval.screening with
    | Some margin ->
        (* Two-tier sweep on a screening (sparse) context: every m is
           ROM-scored, only those within [margin] of the ROM minimum pay
           an exact fixed-point solve.  Pruned slots come back +inf, so
           the sequential argmin below (and its smallest-m tie-break) is
           untouched. *)
        let rom_m i =
          let period, high_ratio = ratios_for i in
          Tpt.rom_peak_aligned p ?eval ~period ~low:v_low ~high:v_high
            ~high_ratio ()
        in
        Screen.select ?pool ~par ~always:[] ~margin ~n:m_max ~rom:rom_m
          ~exact:eval_m ()
    | None ->
        if par then
          Util.Pool.init ?pool ~chunk:(Util.Pool.chunk_hint ?pool m_max) m_max
            eval_m
        else Array.init m_max eval_m
  in
  let best_m = ref 1 in
  let best_peak = ref infinity in
  for m = 1 to m_max do
    let peak = peaks.(m - 1) in
    if peak < !best_peak -. 1e-12 then begin
      best_peak := peak;
      best_m := m
    end
  done;
  Log.debug (fun f ->
      f "m sweep done: m = %d of %d, peak %.3f C (t_max %.1f C)" !best_m m_max !best_peak
        p.t_max);
  let config0 = config_for_m p ~base_period ~v_low ~v_high ~ratio !best_m in
  let config, steps =
    match adjust with
    | `Greedy ->
        Tpt.adjust_to_constraint p ?eval ?t_unit ~par ~delta_margin config0
    | `Bisection -> Tpt.adjust_by_bisection p ?eval config0
  in
  (* Theorem 1 is only approximate under strong coupling: re-verify with
     the dense evaluator and, if the cheap search undershot, keep
     adjusting against the dense peak (a no-op when already feasible). *)
  (* The safety pass stays exact: [dense:true] disables the delta tier
     anyway (its evaluators only price the aligned fused path). *)
  let config, safety_steps =
    if Tpt.peak p ~dense:true config > p.t_max +. 1e-9 then
      Tpt.adjust_to_constraint p ?eval ?t_unit ~dense:true ~par config
    else (config, 0)
  in
  let config, fill_steps =
    if fill then Tpt.fill_headroom p ?eval ?t_unit ~par ~delta_margin config
    else (config, 0)
  in
  let steps = steps + safety_steps in
  Log.debug (fun f -> f "TPT adjustment: %d exchanges (+%d dense)" steps safety_steps);
  let schedule = Tpt.schedule_of_config config in
  {
    config;
    schedule;
    m = !best_m;
    m_max;
    throughput = Tpt.throughput p config;
    peak = Tpt.peak p ?eval config;
    ideal;
    adjustment_steps = steps + fill_steps;
  }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "ao";
    doc = "Aligned oscillation (Algorithm 2): m-oscillating step-up schedule + TPT";
    comparison = true;
    solve =
      (fun ev (prm : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let p = Eval.platform ev in
            let r =
              solve ~eval:ev ~par:prm.Solver.par
                ~delta_margin:prm.Solver.delta_margin p
            in
            {
              Solver.voltages = Solver.delivered_speeds p r.schedule;
              schedule = Some r.schedule;
              throughput = r.throughput;
              peak = r.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
