(** LNS — the lower-neighbouring-speed baseline (Section III).

    Each core's ideal continuous voltage is rounded *down* to the nearest
    available discrete level and run constantly.  Rounding down can only
    lower every steady temperature, so the result inherits the ideal
    assignment's feasibility; it is pessimistic exactly when the level
    grid is coarse — the effect the paper's motivation example
    quantifies. *)

type result = {
  voltages : float array;  (** Chosen discrete level per core. *)
  throughput : float;  (** Mean voltage. *)
  peak : float;  (** Steady-state peak temperature, degrees C. *)
}

(** [solve ?eval platform] runs LNS.  The returned [peak] is always at
    most the steady peak of the ideal assignment (hence at most [t_max]
    when the platform is feasible).  [eval] memoizes the steady-peak
    evaluation in the shared context's voltage-keyed table. *)
val solve : ?eval:Eval.t -> Platform.t -> result

type Solver.details += Details of result

(** [policy] is LNS's registry adapter — the constant discrete
    assignment as [voltages], no schedule, bit-identical to {!solve}. *)
val policy : Solver.t
