type details = ..
type details += No_details

type params = {
  par : bool;
  demands : float array option;
  delta_margin : float;
}

let default_params = { par = true; demands = None; delta_margin = 0. }

type outcome = {
  voltages : float array;
  schedule : Sched.Schedule.t option;
  throughput : float;
  peak : float;
  wall_time : float;
  evaluations : int;
  details : details;
}

type t = {
  name : string;
  doc : string;
  comparison : bool;
  solve : Eval.t -> params -> outcome;
}

let run ?(params = default_params) policy eval = policy.solve eval params

(* Shared adapter plumbing: time the typed solve and count the peak
   evaluations it pushed through the context's memo tables (hits +
   misses, both tables).  Policies with their own richer counter (EXS's
   enumeration count) override [evaluations] afterwards. *)
let timed_outcome (eval : Eval.t) build =
  let lookups () =
    let s = Eval.stats eval in
    s.Eval.steady.Sched.Peak.Cache.hits
    + s.Eval.steady.Sched.Peak.Cache.misses
    + s.Eval.stepup.Sched.Peak.Cache.hits
    + s.Eval.stepup.Sched.Peak.Cache.misses
  in
  let before = lookups () in
  let outcome, wall_time = Util.Timer.time_it build in
  { outcome with wall_time; evaluations = lookups () - before }

let delivered_speeds (p : Platform.t) schedule =
  Sched.Throughput.per_core ~tau:p.Platform.tau schedule
