(* Two-tier candidate screening.

   Policy m-sweeps and offset grids price every candidate in a batch
   and keep the argmin.  With the sparse backend each exact evaluation
   is a CG fixed-point solve; the reduced model prices the same
   candidate in O(n_cores^2 + k n_cores) with zero Krylov work.  This
   module scores the WHOLE batch on the ROM first, then re-evaluates
   only the candidates whose ROM score is within [margin] of the ROM
   minimum with the exact evaluator, returning +infinity for everything
   pruned.

   Safety argument (DESIGN.md section 12): let eps be a bound on
   |rom i - exact i| over the batch.  If margin >= 2 eps, the exact
   argmin [best] is always a survivor: with [m] the ROM minimizer,
   rom(best) <= exact(best) + eps <= exact(m) + eps <= rom(m) + 2 eps
   <= rom_min + margin.  Then the sequential argmin over the returned array
   (pruned slots +infinity, never smaller than a real peak) picks the
   same index the exhaustive sweep would have, because every survivor
   carries its exact value and every pruned candidate's exact value
   exceeds the best survivor's.  Unconditionally — even when eps
   exceeds the margin budget — the schedule a screened search returns
   was priced by an exact solve, never by a ROM score. *)

(* Process-wide screening counters: how many candidates were ROM-scored
   and how many survived to an exact solve.  Monotonic atomics — the
   scale CLI reports the ratio as the screening win. *)
let scored_count = Atomic.make 0
let survivor_count = Atomic.make 0

type stats = { scored : int; survivors : int }

let stats () =
  { scored = Atomic.get scored_count; survivors = Atomic.get survivor_count }

let reset_stats () =
  Atomic.set scored_count 0;
  Atomic.set survivor_count 0

let select ?pool ?chunk ?(par = false) ?(always = []) ~margin ~n ~rom ~exact ()
    =
  if n < 0 then invalid_arg "Screen.select: negative candidate count";
  if not (margin >= 0.) then invalid_arg "Screen.select: negative margin";
  if n = 0 then [||]
  else begin
    List.iter
      (fun i ->
        if i < 0 || i >= n then
          invalid_arg "Screen.select: always-index out of range")
      always;
    let chunk =
      match chunk with Some c -> c | None -> Util.Pool.chunk_hint ?pool n
    in
    let scores =
      if par then Util.Pool.init ?pool ~chunk n rom else Array.init n rom
    in
    Atomic.fetch_and_add scored_count n |> ignore;
    (* NaN scores neither poison the minimum ([Float.min] propagates
       NaN, which would fail every keep test and prune the whole batch)
       nor get pruned themselves: a NaN survives to the exact tier, so a
       broken ROM score surfaces as an exact evaluation rather than a
       silently all-infinity sweep. *)
    let rom_min =
      Array.fold_left
        (fun acc s -> if Float.is_nan s then acc else Float.min acc s)
        infinity scores
    in
    let keep =
      Array.map (fun s -> Float.is_nan s || s <= rom_min +. margin) scores
    in
    List.iter (fun i -> keep.(i) <- true) always;
    let survivors = Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep in
    Atomic.fetch_and_add survivor_count survivors |> ignore;
    (* Exact tier over the survivors only.  The pool still iterates all
       n indices (pruned ones return immediately), so index order — and
       with it determinism of any downstream sequential reduction — is
       preserved regardless of which indices survived. *)
    let price i = if keep.(i) then exact i else infinity in
    if par then Util.Pool.init ?pool ~chunk n price else Array.init n price
  end
