(** The temperature-performance-tradeoff ratio adjustment of Algorithm 2
    (lines 14-21), factored out so AO and PCO share it.

    A two-mode oscillation is summarized by a {!config}: for every core,
    the low and high voltages, how much of the (mini-)period the high
    mode occupies, and an optional phase offset (0 for AO's step-up form;
    PCO's spatial search sets it).  The adjustment loop moves high-mode
    time to low-mode time, one [t_unit] at a time, on the core with the
    best temperature-reduction-per-throughput-loss index
    [TPT_j = dT_hottest / ((v_H_j - v_L_j) t_unit)], until the peak
    temperature meets the constraint.  {!fill_headroom} runs the same
    exchange in reverse while the constraint has slack. *)

type config = {
  period : float;  (** The (mini-)period, seconds. *)
  v_low : float array;
  v_high : float array;
  high_time : float array;  (** Seconds of high mode per period, per core. *)
  offset : float array;  (** Phase shift per core, seconds (0 = step-up). *)
}

(** [validate c] raises [Invalid_argument] on non-positive period,
    mismatched arities, [v_low > v_high], or [high_time] outside
    [0, period]. *)
val validate : config -> unit

(** [schedule_of_config c] materializes the schedule: each core runs low
    then high (step-up order), then is rotated by its offset. *)
val schedule_of_config : config -> Sched.Schedule.t

(** [peak platform ?eval ?dense c] evaluates the stable-status peak
    temperature: end-of-period when every offset is 0 (step-up,
    Theorem 1) and [dense] is [false], a dense scan otherwise.  The
    dense evaluator exists because Theorem 1 is only approximate under
    strong inter-core coupling (see EXPERIMENTS.md): AO runs its search
    with the cheap evaluator and re-verifies the final answer densely.
    When [eval] wraps this same platform, the cheap step-up branch is
    memoized through the context's schedule-keyed table — bit-identical
    values, shared across every search probing the same candidates. *)
val peak : Platform.t -> ?eval:Eval.t -> ?dense:bool -> config -> float

(** [peak_aligned p ?eval ~period ~low ~high ~high_ratio ()] is the
    fused aligned two-mode evaluator {!peak} dispatches to, without the
    config round-trip — for sweeps that derive the span shape directly.
    [high_ratio] must already be clamped to [0, 1] the way {!peak}
    clamps [high_time /. period], so the memoization digest (and the
    returned float) is bit-identical to the config path. *)
val peak_aligned :
  Platform.t ->
  ?eval:Eval.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  unit ->
  float

(** [rom_peak_aligned p ?eval ~period ~low ~high ~high_ratio ()] is the
    screening-tier score of the same fused candidate: the reduced-model
    peak when [eval] is a sparse context ({!Eval.rom_two_mode_peak}),
    the exact evaluation otherwise.  Approximate — m-sweeps use it only
    to pick survivors for exact re-verification ({!Screen.select}). *)
val rom_peak_aligned :
  Platform.t ->
  ?eval:Eval.t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  unit ->
  float

(** [rom_peak p ?eval c] is the screening-tier score of a config:
    {!rom_peak_aligned} for aligned configs, the reduced-model scan
    ({!Eval.rom_any_peak}) for shifted ones. *)
val rom_peak : Platform.t -> ?eval:Eval.t -> config -> float

(** [adjust_to_constraint platform ?t_unit c] is the Algorithm 2 loop:
    returns the adjusted config and the number of [t_unit] exchanges.
    [t_unit] defaults to [c.period / 100].  Gives up (returning the
    all-low config) if every core reaches zero high time while still
    violating — callers should have checked {!Platform.feasible}.
    [par] (default [true]) fans each step's per-core candidate
    evaluations across the context's {!Util.Pool} when the batch
    carries enough floating-point volume (cores * nodes, the same gate
    AO's m sweep uses); the selection reduction stays sequential, so
    the result is identical at any pool size.  [eval] memoizes the
    step-up peak evaluations as in {!peak}.

    [delta_margin] (kelvin, default [0.] — off) opts the per-core scan
    into the prepared-base delta tier (DESIGN.md §14) when [c] is
    aligned, [dense] is [false] and [eval] wraps this platform: each
    step prepares the current config's drive once on the context's
    engine and prices candidates as single-core deltas, keeping stale
    scores across accepted steps for candidates more than
    [delta_margin] above the best stale score.  The chosen winner is
    always re-verified with a full exact evaluation before acceptance,
    and the termination test only ever reads exact values — the margin
    trades greedy-choice fidelity, never constraint soundness.  Like
    PR 7's [screen_margin] it is opt-in because nothing estimates the
    score drift an accepted step causes at runtime; at [0.] the loop is
    bit-identical to the exact scan.  Raises [Invalid_argument] on a
    negative margin. *)
val adjust_to_constraint :
  Platform.t ->
  ?eval:Eval.t ->
  ?t_unit:float ->
  ?dense:bool ->
  ?par:bool ->
  ?delta_margin:float ->
  config ->
  config * int

(** [adjust_by_bisection platform ?tol c] is the fast alternative to the
    greedy loop: scale every core's high time by a common factor
    [s in [0, 1]] and bisect on the largest feasible [s].  The peak is
    monotone in [s] (more high time = more heat everywhere), so
    bisection is sound; unlike the greedy TPT loop it cannot shift work
    *between* cores, so it can concede slightly more throughput — the
    ablation quantifies the trade.  Returns the adjusted config and the
    number of peak evaluations. *)
val adjust_by_bisection :
  Platform.t -> ?eval:Eval.t -> ?tol:float -> config -> config * int

(** [fill_headroom platform ?t_unit c] converts low time back to high
    time while the peak stays below [t_max], greedily choosing the core
    with the best throughput-gain-per-degree index; stops when no single
    exchange fits.  Returns the new config and exchange count.  [par],
    [eval] and [delta_margin] are as in {!adjust_to_constraint} — on
    the delta tier candidates are priced as single-core deltas and the
    arg-best is re-picked until it is backed by an exact evaluation, so
    feasibility (and the threaded base peak) only ever read exact
    values. *)
val fill_headroom :
  Platform.t ->
  ?eval:Eval.t ->
  ?t_unit:float ->
  ?par:bool ->
  ?delta_margin:float ->
  config ->
  config * int

(** {1 Delta-tier funnel}

    Process-wide counters of the [delta_margin] scans, mirroring the
    ROM screening funnel: per-core candidate slots that kept a stale
    score across an accepted step ([cached]), slots freshly priced
    through the prepared-base delta evaluators ([scored]), and full
    exact evaluations spent verifying winners ([exact]).  [scale
    --policy] reports the split per platform size. *)

type delta_stats = { cached : int; scored : int; exact : int }

(** [delta_stats ()] snapshots the funnel counters. *)
val delta_stats : unit -> delta_stats

(** [reset_delta_stats ()] zeroes the funnel counters. *)
val reset_delta_stats : unit -> unit

(** [throughput platform c] is the net chip-wide throughput of the
    config's schedule, charging the platform's [tau] per transition. *)
val throughput : Platform.t -> config -> float
