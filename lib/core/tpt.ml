type config = {
  period : float;
  v_low : float array;
  v_high : float array;
  high_time : float array;
  offset : float array;
}

let validate c =
  let n = Array.length c.v_low in
  if c.period <= 0. then invalid_arg "Tpt: non-positive period";
  if Array.length c.v_high <> n || Array.length c.high_time <> n
     || Array.length c.offset <> n
  then invalid_arg "Tpt: array arity mismatch";
  Array.iteri
    (fun i vl ->
      if vl > c.v_high.(i) +. 1e-12 then
        invalid_arg (Printf.sprintf "Tpt: core %d has v_low > v_high" i);
      if c.high_time.(i) < -1e-12 || c.high_time.(i) > c.period +. 1e-12 then
        invalid_arg (Printf.sprintf "Tpt: core %d high_time outside [0, period]" i))
    c.v_low

let is_aligned c = Array.for_all (fun o -> Float.abs o < 1e-12) c.offset

let schedule_of_config c =
  validate c;
  let n = Array.length c.v_low in
  let ratio = Array.init n (fun i -> Float.max 0. (Float.min 1. (c.high_time.(i) /. c.period))) in
  let base =
    Sched.Schedule.two_mode ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio:ratio
  in
  let s = ref base in
  Array.iteri (fun i o -> if Float.abs o > 1e-12 then s := Sched.Schedule.shift !s i o) c.offset;
  !s

(* Both evaluators run on the modal engine (Thermal.Modal via
   Sched.Peak), so the O(candidates * segments) calls of the adjustment
   loops below cost O(n) per sample instead of a propagator build.  The
   cheap step-up branch additionally memoizes through the evaluation
   context when one is supplied for this platform: searches revisit the
   same candidate schedules constantly (the m sweep re-derives configs,
   PCO re-runs AO, fill/adjust walk back over probed exchanges), and a
   hit returns the bit-identical float a fresh solve would have. *)
(* The clamped high-time ratio [schedule_of_config] hands to
   [Schedule.two_mode] — the fused evaluators take the same value so
   their decomposition is bit-identical to the schedule's. *)
let two_mode_ratio c =
  Array.init (Array.length c.v_low) (fun i ->
      Float.max 0. (Float.min 1. (c.high_time.(i) /. c.period)))

(* The fused aligned-candidate evaluator without the config round-trip:
   sweeps that derive [(period, ratios)] directly (AO's m sweep) skip
   building and validating a config's five arrays per candidate.
   [high_ratio] must be the clamped value [two_mode_ratio] would
   produce, so the digest — and the returned float — matches the
   config path bit-for-bit. *)
let peak_aligned (p : Platform.t) ?eval ~period ~low ~high ~high_ratio () =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.two_mode_peak ev ~period ~low ~high ~high_ratio
  | Some _ | None ->
      Sched.Peak.of_two_mode p.model p.power ~period ~low ~high ~high_ratio

(* The screening-tier counterpart: the reduced-model score of the same
   fused candidate (exact on a dense or eval-less context, where no
   reduction exists).  Only meaningful when [Eval.screening] returned
   [Some margin] — callers re-verify survivors through [peak_aligned]. *)
let rom_peak_aligned (p : Platform.t) ?eval ~period ~low ~high ~high_ratio () =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.rom_two_mode_peak ev ~period ~low ~high ~high_ratio
  | Some _ | None ->
      Sched.Peak.of_two_mode p.model p.power ~period ~low ~high ~high_ratio

let peak (p : Platform.t) ?eval ?(dense = false) c =
  if is_aligned c && not dense then begin
    (* Fused path: aligned two-mode candidates are evaluated straight
       from the config — no Schedule.t, no state-interval merge — which
       is most of a candidate's cost on small platforms. *)
    validate c;
    let high_ratio = two_mode_ratio c in
    peak_aligned p ?eval ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio ()
  end
  else begin
    (* Shifted configs need the dense scan; the context routes it to
       whichever backend it was created with. *)
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.any_peak ev ~samples_per_segment:16 (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.of_any p.model p.power ~samples_per_segment:16
          (schedule_of_config c)
  end

(* Screening-tier counterpart of [peak]: reduced-model score for aligned
   configs, exact scan for shifted ones (screening only targets the
   aligned sweeps, and a shifted candidate's exact scan is what the
   search would pay anyway). *)
let rom_peak (p : Platform.t) ?eval c =
  if is_aligned c then begin
    validate c;
    let high_ratio = two_mode_ratio c in
    rom_peak_aligned p ?eval ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio ()
  end
  else
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.rom_any_peak ev ~samples_per_segment:16 (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.of_any p.model p.power ~samples_per_segment:16
          (schedule_of_config c)

(* Stable-status end-of-period core temperatures (the quantity the TPT
   index differentiates).  For shifted configs we fall back to the peak
   itself as the scalar being reduced. *)
let hot_metric (p : Platform.t) ?eval c =
  if is_aligned c then begin
    validate c;
    let high_ratio = two_mode_ratio c in
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.two_mode_end_core_temps ev ~period:c.period ~low:c.v_low
          ~high:c.v_high ~high_ratio
    | Some _ | None ->
        Sched.Peak.two_mode_end_core_temps p.model p.power ~period:c.period
          ~low:c.v_low ~high:c.v_high ~high_ratio
  end
  else
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.stable_end_core_temps ev (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.stable_end_core_temps p.model p.power (schedule_of_config c)

(* A core can give up high time as long as ANY remains — the final
   exchange may be smaller than t_unit (with_high_time clamps at 0), so
   the loop can always drive a violating schedule all the way down to
   all-low rather than stranding a sub-quantum residue above T_max. *)
let adjustable c i _t_unit =
  c.high_time.(i) > 1e-12 && c.v_high.(i) -. c.v_low.(i) > 1e-12

let raisable c i t_unit =
  c.period -. c.high_time.(i) >= t_unit -. 1e-12 && c.v_high.(i) -. c.v_low.(i) > 1e-12

let with_high_time c i dt =
  let high_time = Array.copy c.high_time in
  high_time.(i) <- Float.max 0. (Float.min c.period (high_time.(i) +. dt));
  { c with high_time }

(* Fan the per-core candidate evaluations (each a full stable-status
   schedule evaluation) across the shared domain pool.  The reduction
   over the returned array stays sequential and ordered, so the choice —
   and the whole adjustment trajectory — is identical at any pool size.
   [par:false] keeps everything on the calling domain, as do small fans:
   on a handful of cores a fused candidate evaluation is ~1 us, far
   below the cost of waking the pool for one job. *)
let eval_candidates ~par n f =
  if par && n >= 8 then Util.Pool.init n f else Array.init n f

let adjust_to_constraint (p : Platform.t) ?eval ?t_unit ?(dense = false) ?(par = true)
    c =
  validate c;
  let t_unit = match t_unit with Some u -> u | None -> c.period /. 100. in
  if t_unit <= 0. then invalid_arg "Tpt.adjust_to_constraint: non-positive t_unit";
  let n = Array.length c.v_low in
  let rec loop c steps =
    let temps = hot_metric p ?eval c in
    let current_peak = peak p ?eval ~dense c in
    if current_peak <= p.t_max +. 1e-9 then (c, steps)
    else begin
      let hottest = Linalg.Vec.argmax temps in
      let candidate_temps =
        eval_candidates ~par n (fun j ->
            if adjustable c j t_unit then
              Some (hot_metric p ?eval (with_high_time c j (-.t_unit))).(hottest)
            else None)
      in
      (* TPT index: peak reduction at the hottest core per unit of
         throughput given up on core j. *)
      let best = ref None in
      for j = 0 to n - 1 do
        match candidate_temps.(j) with
        | None -> ()
        | Some candidate_temp ->
            let dt = temps.(hottest) -. candidate_temp in
            let tpt = dt /. ((c.v_high.(j) -. c.v_low.(j)) *. t_unit) in
            (match !best with
            | Some (_, best_tpt) when best_tpt >= tpt -> ()
            | _ -> best := Some (j, tpt))
      done;
      match !best with
      | None -> (c, steps) (* nothing left to trade; caller checks peak *)
      | Some (j, _) -> loop (with_high_time c j (-.t_unit)) (steps + 1)
    end
  in
  loop c 0

let scale_high_times c s =
  { c with high_time = Array.map (fun h -> h *. s) c.high_time }

let adjust_by_bisection (p : Platform.t) ?eval ?(tol = 1e-3) c =
  validate c;
  if peak p ?eval c <= p.t_max +. 1e-9 then (c, 1)
  else begin
    let evals = ref 1 in
    let feasible s =
      incr evals;
      peak p ?eval (scale_high_times c s) <= p.t_max +. 1e-9
    in
    if not (feasible 0.) then (scale_high_times c 0., !evals)
    else begin
      let lo = ref 0. and hi = ref 1. in
      while !hi -. !lo > tol do
        let mid = (!lo +. !hi) /. 2. in
        if feasible mid then lo := mid else hi := mid
      done;
      (scale_high_times c !lo, !evals)
    end
  end

let fill_headroom (p : Platform.t) ?eval ?t_unit ?(par = true) c =
  validate c;
  let t_unit = match t_unit with Some u -> u | None -> c.period /. 100. in
  if t_unit <= 0. then invalid_arg "Tpt.fill_headroom: non-positive t_unit";
  let n = Array.length c.v_low in
  (* [base_peak] is the peak of [c], threaded through the loop: it is
     loop-invariant across the candidate scan (each candidate evaluation
     is a full schedule evaluation, so recomputing it per core was pure
     waste) and the chosen candidate's peak seeds the next iteration. *)
  let rec loop c base_peak steps =
    if base_peak > p.t_max -. 1e-9 then (c, steps)
    else begin
      let candidate_peaks =
        eval_candidates ~par n (fun j ->
            if raisable c j t_unit then Some (peak p ?eval (with_high_time c j t_unit))
            else None)
      in
      (* Among raisable cores, pick the largest throughput gain per degree
         of headroom consumed, among those that stay feasible. *)
      let best = ref None in
      for j = 0 to n - 1 do
        match candidate_peaks.(j) with
        | Some candidate_peak when candidate_peak <= p.t_max +. 1e-9 ->
            let gain = (c.v_high.(j) -. c.v_low.(j)) *. t_unit in
            let cost = Float.max 1e-12 (candidate_peak -. base_peak) in
            let index = gain /. cost in
            (match !best with
            | Some (_, _, best_index) when best_index >= index -> ()
            | _ -> best := Some (j, candidate_peak, index))
        | _ -> ()
      done;
      match !best with
      | None -> (c, steps)
      | Some (j, candidate_peak, _) ->
          loop (with_high_time c j t_unit) candidate_peak (steps + 1)
    end
  in
  loop c (peak p ?eval c) 0

let throughput (p : Platform.t) c =
  Sched.Throughput.with_overhead ~tau:p.tau (schedule_of_config c)
