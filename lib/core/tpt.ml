type config = {
  period : float;
  v_low : float array;
  v_high : float array;
  high_time : float array;
  offset : float array;
}

let validate c =
  let n = Array.length c.v_low in
  if c.period <= 0. then invalid_arg "Tpt: non-positive period";
  if Array.length c.v_high <> n || Array.length c.high_time <> n
     || Array.length c.offset <> n
  then invalid_arg "Tpt: array arity mismatch";
  Array.iteri
    (fun i vl ->
      if vl > c.v_high.(i) +. 1e-12 then
        invalid_arg (Printf.sprintf "Tpt: core %d has v_low > v_high" i);
      if c.high_time.(i) < -1e-12 || c.high_time.(i) > c.period +. 1e-12 then
        invalid_arg (Printf.sprintf "Tpt: core %d high_time outside [0, period]" i))
    c.v_low

let is_aligned c = Array.for_all (fun o -> Float.abs o < 1e-12) c.offset

let schedule_of_config c =
  validate c;
  let n = Array.length c.v_low in
  let ratio = Array.init n (fun i -> Float.max 0. (Float.min 1. (c.high_time.(i) /. c.period))) in
  let base =
    Sched.Schedule.two_mode ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio:ratio
  in
  let s = ref base in
  Array.iteri (fun i o -> if Float.abs o > 1e-12 then s := Sched.Schedule.shift !s i o) c.offset;
  !s

(* Both evaluators run on the modal engine (Thermal.Modal via
   Sched.Peak), so the O(candidates * segments) calls of the adjustment
   loops below cost O(n) per sample instead of a propagator build.  The
   cheap step-up branch additionally memoizes through the evaluation
   context when one is supplied for this platform: searches revisit the
   same candidate schedules constantly (the m sweep re-derives configs,
   PCO re-runs AO, fill/adjust walk back over probed exchanges), and a
   hit returns the bit-identical float a fresh solve would have. *)
(* The clamped high-time ratio [schedule_of_config] hands to
   [Schedule.two_mode] — the fused evaluators take the same value so
   their decomposition is bit-identical to the schedule's. *)
let two_mode_ratio c =
  Array.init (Array.length c.v_low) (fun i ->
      Float.max 0. (Float.min 1. (c.high_time.(i) /. c.period)))

(* The fused aligned-candidate evaluator without the config round-trip:
   sweeps that derive [(period, ratios)] directly (AO's m sweep) skip
   building and validating a config's five arrays per candidate.
   [high_ratio] must be the clamped value [two_mode_ratio] would
   produce, so the digest — and the returned float — matches the
   config path bit-for-bit. *)
let peak_aligned (p : Platform.t) ?eval ~period ~low ~high ~high_ratio () =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.two_mode_peak ev ~period ~low ~high ~high_ratio
  | Some _ | None ->
      Sched.Peak.of_two_mode p.model p.power ~period ~low ~high ~high_ratio

(* The screening-tier counterpart: the reduced-model score of the same
   fused candidate (exact on a dense or eval-less context, where no
   reduction exists).  Only meaningful when [Eval.screening] returned
   [Some margin] — callers re-verify survivors through [peak_aligned]. *)
let rom_peak_aligned (p : Platform.t) ?eval ~period ~low ~high ~high_ratio () =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.rom_two_mode_peak ev ~period ~low ~high ~high_ratio
  | Some _ | None ->
      Sched.Peak.of_two_mode p.model p.power ~period ~low ~high ~high_ratio

let peak (p : Platform.t) ?eval ?(dense = false) c =
  if is_aligned c && not dense then begin
    (* Fused path: aligned two-mode candidates are evaluated straight
       from the config — no Schedule.t, no state-interval merge — which
       is most of a candidate's cost on small platforms. *)
    validate c;
    let high_ratio = two_mode_ratio c in
    peak_aligned p ?eval ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio ()
  end
  else begin
    (* Shifted configs need the dense scan; the context routes it to
       whichever backend it was created with. *)
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.any_peak ev ~samples_per_segment:16 (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.of_any p.model p.power ~samples_per_segment:16
          (schedule_of_config c)
  end

(* Screening-tier counterpart of [peak]: reduced-model score for aligned
   configs, exact scan for shifted ones (screening only targets the
   aligned sweeps, and a shifted candidate's exact scan is what the
   search would pay anyway). *)
let rom_peak (p : Platform.t) ?eval c =
  if is_aligned c then begin
    validate c;
    let high_ratio = two_mode_ratio c in
    rom_peak_aligned p ?eval ~period:c.period ~low:c.v_low ~high:c.v_high
      ~high_ratio ()
  end
  else
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.rom_any_peak ev ~samples_per_segment:16 (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.of_any p.model p.power ~samples_per_segment:16
          (schedule_of_config c)

(* Stable-status end-of-period core temperatures (the quantity the TPT
   index differentiates).  For shifted configs we fall back to the peak
   itself as the scalar being reduced. *)
let hot_metric (p : Platform.t) ?eval c =
  if is_aligned c then begin
    validate c;
    let high_ratio = two_mode_ratio c in
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.two_mode_end_core_temps ev ~period:c.period ~low:c.v_low
          ~high:c.v_high ~high_ratio
    | Some _ | None ->
        Sched.Peak.two_mode_end_core_temps p.model p.power ~period:c.period
          ~low:c.v_low ~high:c.v_high ~high_ratio
  end
  else
    match eval with
    | Some ev when Eval.platform ev == p ->
        Eval.stable_end_core_temps ev (schedule_of_config c)
    | Some _ | None ->
        Sched.Peak.stable_end_core_temps p.model p.power (schedule_of_config c)

(* A core can give up high time as long as ANY remains — the final
   exchange may be smaller than t_unit (with_high_time clamps at 0), so
   the loop can always drive a violating schedule all the way down to
   all-low rather than stranding a sub-quantum residue above T_max. *)
let adjustable c i _t_unit =
  c.high_time.(i) > 1e-12 && c.v_high.(i) -. c.v_low.(i) > 1e-12

let raisable c i t_unit =
  c.period -. c.high_time.(i) >= t_unit -. 1e-12 && c.v_high.(i) -. c.v_low.(i) > 1e-12

let with_high_time c i dt =
  let high_time = Array.copy c.high_time in
  high_time.(i) <- Float.max 0. (Float.min c.period (high_time.(i) +. dt));
  { c with high_time }

(* ---------------------------------------- delta-tier funnel tallies *)

(* Process-wide counters of the delta-scan candidate funnel (the
   [delta_margin] branches below), mirroring [Screen]'s role in the ROM
   funnel: of every per-core candidate a step considered, how many kept
   a stale score from a previous accepted step, how many were re-priced
   through the prepared-base delta evaluators, and how many full exact
   evaluations verified winners.  [scale --policy] reports the split. *)
let tally_cached = Atomic.make 0
let tally_scored = Atomic.make 0
let tally_exact = Atomic.make 0

type delta_stats = { cached : int; scored : int; exact : int }

let delta_stats () =
  {
    cached = Atomic.get tally_cached;
    scored = Atomic.get tally_scored;
    exact = Atomic.get tally_exact;
  }

let reset_delta_stats () =
  Atomic.set tally_cached 0;
  Atomic.set tally_scored 0;
  Atomic.set tally_exact 0

(* Fan the per-core candidate evaluations (each a full stable-status
   schedule evaluation) across the context's domain pool.  The reduction
   over the returned array stays sequential and ordered, so the choice —
   and the whole adjustment trajectory — is identical at any pool size.
   [par:false] keeps everything on the calling domain, as does a small
   [work] product (cores * nodes — the same floating-point-volume gate
   AO's m sweep uses): on a handful of cores a fused candidate
   evaluation is ~1 us, far below the cost of waking the pool. *)
let eval_candidates ?eval ~par ~work n f =
  if par && work >= 32768 then begin
    let pool = Option.map Eval.pool eval in
    Util.Pool.init ?pool ~chunk:(Util.Pool.chunk_hint ?pool n) n f
  end
  else Array.init n f

(* The delta branches only run on an aligned config priced through a
   context created for this platform: the prepared-base evaluators live
   in that context's engines, so their scores and the exact winner
   verifications superpose over the same unit-response tables. *)
let delta_eval (p : Platform.t) eval ~delta_margin ~fused =
  if delta_margin > 0. && fused then
    match eval with Some ev when Eval.platform ev == p -> Some ev | _ -> None
  else None

let adjust_to_constraint (p : Platform.t) ?eval ?t_unit ?(dense = false)
    ?(par = true) ?(delta_margin = 0.) c =
  validate c;
  if not (delta_margin >= 0.) then
    invalid_arg "Tpt.adjust_to_constraint: negative delta_margin";
  let t_unit = match t_unit with Some u -> u | None -> c.period /. 100. in
  if t_unit <= 0. then invalid_arg "Tpt.adjust_to_constraint: non-positive t_unit";
  let n = Array.length c.v_low in
  let work = n * Thermal.Model.n_nodes p.model in
  (* Offsets never change below, so the fused-path test is loop-invariant. *)
  let fused = is_aligned c && not dense in
  (* Peak of a config whose end-of-period temps vector is already in
     hand.  On the fused path the peak IS the maximum of those temps:
     the exact evaluator folds the same per-core reads of the same
     stable state, and adding the ambient is monotone, so [Vec.max]
     returns the bit-identical float — threading the winner's vector
     through the loop saves one full evaluation per accepted step. *)
  let peak_of c temps =
    if fused then Linalg.Vec.max temps else peak p ?eval ~dense c
  in
  let exact_loop () =
    let rec loop c temps current_peak steps =
      if current_peak <= p.t_max +. 1e-9 then (c, steps)
      else begin
        let hottest = Linalg.Vec.argmax temps in
        let candidates =
          eval_candidates ?eval ~par ~work n (fun j ->
              if adjustable c j t_unit then
                Some (hot_metric p ?eval (with_high_time c j (-.t_unit)))
              else None)
        in
        (* TPT index: peak reduction at the hottest core per unit of
           throughput given up on core j. *)
        let best = ref None in
        for j = 0 to n - 1 do
          match candidates.(j) with
          | None -> ()
          | Some candidate_temps ->
              let dt = temps.(hottest) -. candidate_temps.(hottest) in
              let tpt = dt /. ((c.v_high.(j) -. c.v_low.(j)) *. t_unit) in
              (match !best with
              | Some (_, best_tpt) when best_tpt >= tpt -> ()
              | _ -> best := Some (j, tpt))
        done;
        match !best with
        | None -> (c, steps) (* nothing left to trade; caller checks peak *)
        | Some (j, _) ->
            (* The winning candidate's scan evaluation already computed
               its end-of-period temps: reuse them for the next
               iteration instead of re-evaluating the accepted config. *)
            let temps' =
              match candidates.(j) with Some t -> t | None -> assert false
            in
            let c' = with_high_time c j (-.t_unit) in
            loop c' temps' (peak_of c' temps') (steps + 1)
      end
    in
    let temps = hot_metric p ?eval c in
    loop c temps (peak_of c temps) 0
  in
  let delta_loop ev =
    let score = Array.make n infinity in
    let have = Array.make n false in
    let last_hottest = ref (-1) in
    (* A candidate's two-mode ratio after giving up one [t_unit],
       replicating [with_high_time]'s clamp then [two_mode_ratio]'s. *)
    let cand_ratio c j =
      let ht = Float.max 0. (Float.min c.period (c.high_time.(j) -. t_unit)) in
      Float.max 0. (Float.min 1. (ht /. c.period))
    in
    let rec loop c temps current_peak steps =
      if current_peak <= p.t_max +. 1e-9 then (c, steps)
      else begin
        let hottest = Linalg.Vec.argmax temps in
        if hottest <> !last_hottest then begin
          (* Stale scores are temperatures at the previous hottest core —
             not comparable; drop the cache and re-score everything. *)
          Array.fill have 0 n false;
          last_hottest := hottest
        end;
        (* Prepare the accepted config's drive once; each candidate is
           then a single-core delta off it — O(n) dense, O(m * cores)
           sparse — evaluated sequentially on this domain (the prepared
           base lives in domain-local scratch). *)
        Eval.two_mode_delta_base ev ~period:c.period ~low:c.v_low
          ~high:c.v_high ~high_ratio:(two_mode_ratio c);
        let best_stale = ref infinity in
        for j = 0 to n - 1 do
          if have.(j) && adjustable c j t_unit && score.(j) < !best_stale then
            best_stale := score.(j)
        done;
        let cached = ref 0 and scored = ref 0 in
        for j = 0 to n - 1 do
          if adjustable c j t_unit then begin
            if have.(j) && score.(j) > !best_stale +. delta_margin then
              (* An accepted step moved every candidate's score by about
                 the same amount, so a stale score this far from the
                 best cannot have become competitive: keep it. *)
              incr cached
            else begin
              score.(j) <-
                Eval.two_mode_delta_temp_at ev ~at:hottest ~core:j
                  ~low:c.v_low.(j) ~high:c.v_high.(j)
                  ~high_ratio:(cand_ratio c j);
              have.(j) <- true;
              incr scored
            end
          end
          else have.(j) <- false
        done;
        ignore (Atomic.fetch_and_add tally_cached !cached : int);
        ignore (Atomic.fetch_and_add tally_scored !scored : int);
        let best = ref None in
        for j = 0 to n - 1 do
          if adjustable c j t_unit then begin
            let dt = temps.(hottest) -. score.(j) in
            let tpt = dt /. ((c.v_high.(j) -. c.v_low.(j)) *. t_unit) in
            match !best with
            | Some (_, best_tpt) when best_tpt >= tpt -> ()
            | _ -> best := Some (j, tpt)
          end
        done;
        match !best with
        | None -> (c, steps)
        | Some (j, _) ->
            (* Exact verification of the winner before acting on it:
               delta scores never feed the termination test or the next
               iteration's hottest-core read. *)
            let c' = with_high_time c j (-.t_unit) in
            let temps' = hot_metric p ~eval:ev c' in
            ignore (Atomic.fetch_and_add tally_exact 1 : int);
            have.(j) <- false;
            loop c' temps' (Linalg.Vec.max temps') (steps + 1)
      end
    in
    let temps = hot_metric p ~eval:ev c in
    loop c temps (Linalg.Vec.max temps) 0
  in
  match delta_eval p eval ~delta_margin ~fused with
  | Some ev -> delta_loop ev
  | None -> exact_loop ()

let scale_high_times c s =
  { c with high_time = Array.map (fun h -> h *. s) c.high_time }

let adjust_by_bisection (p : Platform.t) ?eval ?(tol = 1e-3) c =
  validate c;
  if peak p ?eval c <= p.t_max +. 1e-9 then (c, 1)
  else begin
    let evals = ref 1 in
    let feasible s =
      incr evals;
      peak p ?eval (scale_high_times c s) <= p.t_max +. 1e-9
    in
    if not (feasible 0.) then (scale_high_times c 0., !evals)
    else begin
      let lo = ref 0. and hi = ref 1. in
      while !hi -. !lo > tol do
        let mid = (!lo +. !hi) /. 2. in
        if feasible mid then lo := mid else hi := mid
      done;
      (scale_high_times c !lo, !evals)
    end
  end

let fill_headroom (p : Platform.t) ?eval ?t_unit ?(par = true)
    ?(delta_margin = 0.) c =
  validate c;
  if not (delta_margin >= 0.) then
    invalid_arg "Tpt.fill_headroom: negative delta_margin";
  let t_unit = match t_unit with Some u -> u | None -> c.period /. 100. in
  if t_unit <= 0. then invalid_arg "Tpt.fill_headroom: non-positive t_unit";
  let n = Array.length c.v_low in
  let work = n * Thermal.Model.n_nodes p.model in
  (* [base_peak] is the peak of [c], threaded through the loop: it is
     loop-invariant across the candidate scan (each candidate evaluation
     is a full schedule evaluation, so recomputing it per core was pure
     waste) and the chosen candidate's peak seeds the next iteration. *)
  let exact_loop () =
    let rec loop c base_peak steps =
      if base_peak > p.t_max -. 1e-9 then (c, steps)
      else begin
        let candidate_peaks =
          eval_candidates ?eval ~par ~work n (fun j ->
              if raisable c j t_unit then
                Some (peak p ?eval (with_high_time c j t_unit))
              else None)
        in
        (* Among raisable cores, pick the largest throughput gain per
           degree of headroom consumed, among those that stay feasible. *)
        let best = ref None in
        for j = 0 to n - 1 do
          match candidate_peaks.(j) with
          | Some candidate_peak when candidate_peak <= p.t_max +. 1e-9 ->
              let gain = (c.v_high.(j) -. c.v_low.(j)) *. t_unit in
              let cost = Float.max 1e-12 (candidate_peak -. base_peak) in
              let index = gain /. cost in
              (match !best with
              | Some (_, _, best_index) when best_index >= index -> ()
              | _ -> best := Some (j, candidate_peak, index))
          | _ -> ()
        done;
        match !best with
        | None -> (c, steps)
        | Some (j, candidate_peak, _) ->
            loop (with_high_time c j t_unit) candidate_peak (steps + 1)
      end
    in
    loop c (peak p ?eval c) 0
  in
  let delta_loop ev =
    let score = Array.make n infinity in
    let have = Array.make n false in
    let exact_backed = Array.make n false in
    (* A candidate's two-mode ratio after gaining one [t_unit],
       replicating [with_high_time]'s clamp then [two_mode_ratio]'s. *)
    let cand_ratio c j =
      let ht = Float.max 0. (Float.min c.period (c.high_time.(j) +. t_unit)) in
      Float.max 0. (Float.min 1. (ht /. c.period))
    in
    let rec loop c base_peak steps =
      if base_peak > p.t_max -. 1e-9 then (c, steps)
      else begin
        Eval.two_mode_delta_base ev ~period:c.period ~low:c.v_low
          ~high:c.v_high ~high_ratio:(two_mode_ratio c);
        let best_stale = ref infinity in
        for j = 0 to n - 1 do
          if have.(j) && raisable c j t_unit && score.(j) < !best_stale then
            best_stale := score.(j)
        done;
        let cached = ref 0 and scored = ref 0 in
        for j = 0 to n - 1 do
          if raisable c j t_unit then begin
            if have.(j) && score.(j) > !best_stale +. delta_margin then
              incr cached
            else begin
              score.(j) <-
                Eval.two_mode_delta_peak ev ~core:j ~low:c.v_low.(j)
                  ~high:c.v_high.(j) ~high_ratio:(cand_ratio c j);
              have.(j) <- true;
              incr scored
            end
          end
          else have.(j) <- false
        done;
        ignore (Atomic.fetch_and_add tally_cached !cached : int);
        ignore (Atomic.fetch_and_add tally_scored !scored : int);
        Array.fill exact_backed 0 n false;
        (* Re-pick until the arg-best candidate is exact-backed: a delta
           (or stale) score may flatter a candidate near the feasibility
           boundary, so the winner's feasibility and headroom cost are
           always re-read from a full exact evaluation before being
           accepted.  Each pass verifies at most one new candidate, so
           the inner loop runs at most n times. *)
        let rec pick () =
          let best = ref None in
          for j = 0 to n - 1 do
            if raisable c j t_unit && have.(j) && score.(j) <= p.t_max +. 1e-9
            then begin
              let gain = (c.v_high.(j) -. c.v_low.(j)) *. t_unit in
              let cost = Float.max 1e-12 (score.(j) -. base_peak) in
              let index = gain /. cost in
              match !best with
              | Some (_, best_index) when best_index >= index -> ()
              | _ -> best := Some (j, index)
            end
          done;
          match !best with
          | None -> None
          | Some (j, _) when exact_backed.(j) -> Some j
          | Some (j, _) ->
              score.(j) <- peak p ~eval:ev (with_high_time c j t_unit);
              exact_backed.(j) <- true;
              ignore (Atomic.fetch_and_add tally_exact 1 : int);
              pick ()
        in
        match pick () with
        | None -> (c, steps)
        | Some j ->
            (* [score.(j)] is exact-backed here: it seeds the next
               iteration's base peak exactly as the exact loop's does. *)
            let candidate_peak = score.(j) in
            have.(j) <- false;
            loop (with_high_time c j t_unit) candidate_peak (steps + 1)
      end
    in
    loop c (peak p ~eval:ev c) 0
  in
  match delta_eval p eval ~delta_margin ~fused:(is_aligned c) with
  | Some ev -> delta_loop ev
  | None -> exact_loop ()

let throughput (p : Platform.t) c =
  Sched.Throughput.with_overhead ~tau:p.tau (schedule_of_config c)
