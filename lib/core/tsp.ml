type result = {
  power_budget : float;
  continuous_voltage : float;
  voltages : float array;
  throughput : float;
  peak : float;
}

let solve ?eval (p : Platform.t) =
  let n = Platform.n_cores p in
  (* Steady core temperatures are affine in the uniform power:
     T(p) = offset + slope * p, with slope from a unit uniform load. *)
  let offset = Thermal.Model.steady_core_temps p.model (Array.make n 0.) in
  let with_unit = Thermal.Model.steady_core_temps p.model (Array.make n 1.) in
  let budget = ref infinity in
  for i = 0 to n - 1 do
    let slope = with_unit.(i) -. offset.(i) in
    if slope > 0. then budget := Float.min !budget ((p.t_max -. offset.(i)) /. slope)
  done;
  if !budget < 0. then invalid_arg "Tsp.solve: t_max below the zero-power steady state";
  let continuous_voltage = Power.Power_model.voltage_for_psi p.power !budget in
  let v =
    Power.Vf.round_down p.levels
      (Float.max (Power.Vf.lowest p.levels) continuous_voltage)
  in
  let voltages = Array.make n v in
  {
    power_budget = !budget;
    continuous_voltage;
    voltages;
    throughput = v;
    peak =
      (match eval with
      | Some ev when Eval.platform ev == p -> Eval.steady_peak ev voltages
      | Some _ | None -> Sched.Peak.steady_constant p.model p.power voltages);
  }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "tsp";
    doc = "Thermal Safe Power baseline: one worst-case uniform power budget";
    comparison = false;
    solve =
      (fun ev (_ : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let r = solve ~eval:ev (Eval.platform ev) in
            {
              Solver.voltages = Array.copy r.voltages;
              schedule = None;
              throughput = r.throughput;
              peak = r.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
