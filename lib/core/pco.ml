type result = {
  config : Tpt.config;
  schedule : Sched.Schedule.t;
  m : int;
  throughput : float;
  peak : float;
  ao : Ao.result;
  fill_steps : int;
}

let scan_peak ?eval (p : Platform.t) c =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.any_peak ev ~samples_per_segment:16 (Tpt.schedule_of_config c)
  | Some _ | None ->
      Sched.Peak.of_any p.model p.power ~samples_per_segment:16
        (Tpt.schedule_of_config c)

let rom_scan_peak ?eval (p : Platform.t) c =
  match eval with
  | Some ev when Eval.platform ev == p ->
      Eval.rom_any_peak ev ~samples_per_segment:16 (Tpt.schedule_of_config c)
  | Some _ | None ->
      Sched.Peak.of_any p.model p.power ~samples_per_segment:16
        (Tpt.schedule_of_config c)

let solve ?eval ?base_period ?m_cap ?t_unit ?(offsets_per_core = 8) ?(rounds = 1)
    ?(par = true) ?(delta_margin = 0.) (p : Platform.t) =
  if offsets_per_core < 1 then invalid_arg "Pco.solve: offsets_per_core < 1";
  if rounds < 1 then invalid_arg "Pco.solve: rounds < 1";
  let ao = Ao.solve ?eval ?base_period ?m_cap ?t_unit ~par ~delta_margin p in
  (* [eval] is shadowed by the per-candidate closure inside the grid
     loop; keep the context reachable under another name. *)
  let eval_ctx = eval in
  let scan c = scan_peak ?eval p c in
  let n = Platform.n_cores p in
  let config = ref ao.Ao.config in
  (* Greedy per-core phase search: core 0 stays put (only relative phase
     matters); each following core tries a grid of shifts and keeps the
     one minimizing the dense-scan peak.  Later rounds revisit every
     core against the others' chosen offsets.  Each core's grid (plus
     the incumbent at slot 0) is one independent dense scan per point,
     evaluated across the pool; the selection fold is sequential in k
     order, so the greedy trajectory matches the sequential solver's. *)
  let period = !config.Tpt.period in
  for _round = 1 to rounds do
  for i = 1 to n - 1 do
    let base = !config in
    let offset_for k = period *. float_of_int k /. float_of_int offsets_per_core in
    let candidate k =
      let candidate_offsets = Array.copy base.Tpt.offset in
      candidate_offsets.(i) <- offset_for k;
      { base with Tpt.offset = candidate_offsets }
    in
    let eval k = if k = 0 then scan base else scan (candidate k) in
    let peaks =
      let pool = Option.map Eval.pool eval_ctx in
      match Option.bind eval_ctx Eval.screening with
      | Some margin ->
          (* Slot 0 is the incumbent: the selection below reads its
             exact peak unconditionally, so it must always survive. *)
          let rom k =
            if k = 0 then rom_scan_peak ?eval:eval_ctx p base
            else rom_scan_peak ?eval:eval_ctx p (candidate k)
          in
          Screen.select ?pool ~par ~always:[ 0 ] ~margin ~n:offsets_per_core
            ~rom ~exact:eval ()
      | None ->
          if par then Util.Pool.init ?pool offsets_per_core eval
          else Array.init offsets_per_core eval
    in
    let best_offset = ref base.Tpt.offset.(i) in
    let best_peak = ref peaks.(0) in
    for k = 1 to offsets_per_core - 1 do
      if peaks.(k) < !best_peak -. 1e-12 then begin
        best_peak := peaks.(k);
        best_offset := offset_for k
      end
    done;
    let offsets = Array.copy base.Tpt.offset in
    offsets.(i) <- !best_offset;
    config := { base with Tpt.offset = offsets }
  done
  done;
  (* De-phasing can only have lowered the peak; convert the headroom back
     into throughput. *)
  (* The delta tier only prices aligned configs, so it self-disables
     here whenever the phase search actually staggered a core. *)
  let filled, fill_steps =
    Tpt.fill_headroom p ?eval ?t_unit ~par ~delta_margin !config
  in
  let schedule = Tpt.schedule_of_config filled in
  {
    config = filled;
    schedule;
    m = ao.Ao.m;
    throughput = Tpt.throughput p filled;
    peak = scan filled;
    ao;
    fill_steps;
  }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "pco";
    doc = "Phase-conscious oscillation: AO plus greedy per-core phase staggering";
    comparison = true;
    solve =
      (fun ev (prm : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let p = Eval.platform ev in
            let r =
              solve ~eval:ev ~par:prm.Solver.par
                ~delta_margin:prm.Solver.delta_margin p
            in
            {
              Solver.voltages = Solver.delivered_speeds p r.schedule;
              schedule = Some r.schedule;
              throughput = r.throughput;
              peak = r.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
