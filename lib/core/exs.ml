type result = {
  voltages : float array;
  throughput : float;
  peak : float;
  evaluated : int;
  feasible : bool;
  exhaustive : bool;
}

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let lex_less a b =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) < b.(i) || (a.(i) = b.(i) && go (i + 1))) in
  go 0

(* Deterministic total order on feasible assignments: higher score wins;
   exact score ties go to the lexicographically smallest digit vector.
   Every solver (flat, naive, pruned, parallel) reduces with this same
   order, so they agree bit-for-bit regardless of enumeration order. *)
let improves ~score ~digits ~best_score ~best_digits =
  score > best_score
  || score = best_score
     && (match best_digits with None -> true | Some b -> lex_less digits b)

(* Shared odometer enumeration: [visit digits] is called for every
   assignment; [on_tick i old_digit new_digit] reports each single-digit
   change so the caller can update state incrementally. *)
let enumerate ~n ~l ~on_tick ~visit =
  let digits = Array.make n 0 in
  let continue = ref true in
  let count = ref 0 in
  while !continue do
    incr count;
    visit digits;
    (* Advance the odometer, reporting every digit change. *)
    let rec carry i =
      if i >= n then continue := false
      else if digits.(i) + 1 < l then begin
        on_tick i digits.(i) (digits.(i) + 1);
        digits.(i) <- digits.(i) + 1
      end
      else begin
        on_tick i digits.(i) 0;
        digits.(i) <- 0;
        carry (i + 1)
      end
    in
    carry 0
  done;
  !count

let best_result ?(exhaustive = true) (p : Platform.t) best_digits best_score
    levels evaluated =
  match best_digits with
  | Some digits ->
      let voltages = Array.map (fun d -> levels.(d)) digits in
      {
        voltages;
        throughput = mean voltages;
        peak = Sched.Peak.steady_constant p.model p.power voltages;
        evaluated;
        feasible = true;
        exhaustive;
      }
  | None ->
      ignore best_score;
      {
        voltages = Array.make (Platform.n_cores p) levels.(0);
        throughput = 0.;
        peak = infinity;
        evaluated;
        feasible = false;
        exhaustive;
      }

(* Steady core temps are affine in the power vector:
   T = offset + sum_j column_j * psi_j.  Factorize once; every solver
   below (except the textbook [solve_naive]) updates temperatures
   incrementally from this shared read-only precomputation. *)
type steady = {
  levels : float array;
  l : int;
  n : int;
  psi_of_level : float array;
  columns : float array array;
  base_temps : float array;  (* offset + every core at the lowest level *)
}

let steady_setup (p : Platform.t) =
  let n = Platform.n_cores p in
  let levels = Power.Vf.levels p.levels in
  let l = Array.length levels in
  let psi_of_level = Array.map (Power.Power_model.psi p.power) levels in
  let offset = Thermal.Model.steady_core_temps p.model (Array.make n 0.) in
  let column j =
    let unit = Array.make n 0. in
    unit.(j) <- 1.;
    let with_unit = Thermal.Model.steady_core_temps p.model unit in
    Array.init n (fun i -> with_unit.(i) -. offset.(i))
  in
  let columns = Array.init n column in
  let base_temps = Array.copy offset in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      base_temps.(i) <- base_temps.(i) +. (columns.(j).(i) *. psi_of_level.(0))
    done
  done;
  { levels; l; n; psi_of_level; columns; base_temps }

let solve (p : Platform.t) =
  let { levels; l; n; psi_of_level; columns; base_temps } = steady_setup p in
  let temps = Array.copy base_temps in
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  let on_tick j d_old d_new =
    let dpsi = psi_of_level.(d_new) -. psi_of_level.(d_old) in
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. dpsi)
    done
  in
  let visit digits =
    let hottest = ref neg_infinity in
    for i = 0 to n - 1 do
      if temps.(i) > !hottest then hottest := temps.(i)
    done;
    if !hottest <= p.t_max +. 1e-9 then begin
      let score = ref 0. in
      for i = 0 to n - 1 do
        score := !score +. levels.(digits.(i))
      done;
      if improves ~score:!score ~digits ~best_score:!best_score
           ~best_digits:!best_digits
      then begin
        best_score := !score;
        best_digits := Some (Array.copy digits)
      end
    end
  in
  let evaluated = enumerate ~n ~l ~on_tick ~visit in
  best_result p !best_digits !best_score levels evaluated

let solve_naive (p : Platform.t) =
  let n = Platform.n_cores p in
  let levels = Power.Vf.levels p.levels in
  let l = Array.length levels in
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  (* Algorithm 1 verbatim: a fresh T^inf = -A^{-1} B factorization per
     combination (line 7), with no incremental reuse. *)
  let a = Thermal.Model.a_matrix p.model in
  let visit digits =
    let voltages = Array.map (fun d -> levels.(d)) digits in
    let psi = Power.Power_model.psi_vector p.power voltages in
    let b = Thermal.Model.input_of_core_powers p.model psi in
    let theta = Linalg.Vec.scale (-1.) (Linalg.Lu.solve a b) in
    let peak = Thermal.Model.max_core_temp p.model theta in
    if peak <= p.t_max +. 1e-9 then begin
      let score = Array.fold_left ( +. ) 0. voltages in
      if improves ~score ~digits ~best_score:!best_score ~best_digits:!best_digits
      then begin
        best_score := score;
        best_digits := Some (Array.copy digits)
      end
    end
  in
  let evaluated = enumerate ~n ~l ~on_tick:(fun _ _ _ -> ()) ~visit in
  best_result p !best_digits !best_score levels evaluated

(* Deterministic greedy warm start: from the all-lowest assignment,
   repeatedly raise one core a single level, choosing among the
   still-feasible raises the one whose resulting hottest temperature is
   smallest (ties to the lowest core index), until no raise fits under
   [t_max].  Pure function of the steady factorization, so every solver
   seeding from it stays deterministic.  Returns [None] when even the
   all-lowest assignment violates the constraint. *)
let greedy_fill { levels; l; n; psi_of_level; columns; base_temps } ~t_max =
  let temps = Array.copy base_temps in
  let hottest t =
    let h = ref neg_infinity in
    for i = 0 to n - 1 do
      if t.(i) > !h then h := t.(i)
    done;
    !h
  in
  if hottest temps > t_max +. 1e-9 then None
  else begin
    let digits = Array.make n 0 in
    let continue = ref true in
    while !continue do
      (* Best single-level raise: feasible, with the coolest resulting
         hot spot. *)
      let best_j = ref (-1) and best_hot = ref infinity in
      for j = 0 to n - 1 do
        if digits.(j) + 1 < l then begin
          let dpsi = psi_of_level.(digits.(j) + 1) -. psi_of_level.(digits.(j)) in
          let h = ref neg_infinity in
          for i = 0 to n - 1 do
            let t = temps.(i) +. (columns.(j).(i) *. dpsi) in
            if t > !h then h := t
          done;
          if !h <= t_max +. 1e-9 && !h < !best_hot then begin
            best_hot := !h;
            best_j := j
          end
        end
      done;
      if !best_j < 0 then continue := false
      else begin
        let j = !best_j in
        let dpsi = psi_of_level.(digits.(j) + 1) -. psi_of_level.(digits.(j)) in
        for i = 0 to n - 1 do
          temps.(i) <- temps.(i) +. (columns.(j).(i) *. dpsi)
        done;
        digits.(j) <- digits.(j) + 1
      end
    done;
    let score = ref 0. in
    for j = 0 to n - 1 do
      score := !score +. levels.(digits.(j))
    done;
    Some (digits, !score)
  end

(* Search-node budget: exact (unlimited) when the full space is small
   enough to enumerate outright; past that, a fixed node cap turns the
   branch-and-bound into a deterministic anytime search seeded by
   [greedy_fill] — the many-core regime where [levels^cores] is
   astronomically beyond any exact method.  Both thresholds are pure
   functions of (levels, cores), so a platform always gets the same
   budget. *)
let exact_space_limit = 4_194_304.
let anytime_node_cap = 16_777_216

let default_node_cap ~l ~n =
  if float_of_int l ** float_of_int n <= exact_space_limit then max_int
  else anytime_node_cap

(* Branch-and-bound over cores [start .. n-1].  [digits]/[temps] hold the
   caller's state: cores below [start] fixed at their digits, cores from
   [start] preloaded at level 0 (so [temps] is the subtree's temperature
   lower bound, by monotonicity).  [best_score] reads the incumbent score
   — a plain ref for the sequential solver, a shared [Atomic] for the
   parallel one — and [offer] proposes a completed assignment.  Pruning
   only cuts a subtree when even its all-top completion scores strictly
   below the incumbent (beyond the 1e-12 float guard): subtrees that can
   merely *tie* are explored, so the lexicographic tie-break of
   [improves] sees every tying assignment and stays deterministic.
   Stops descending once [node_cap] nodes have been visited (setting
   [capped]), unwinding with the state-restoration discipline intact.
   Returns the number of visited search nodes. *)
let bnb { levels; l; n; psi_of_level; columns; _ } ~t_max ~node_cap ~capped
    ~digits ~temps ~best_score ~offer ~start ~score0 =
  let v_top = levels.(l - 1) in
  let visited = ref 0 in
  let bump j d_old d_new =
    let dpsi = psi_of_level.(d_new) -. psi_of_level.(d_old) in
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. dpsi)
    done
  in
  let hottest () =
    let h = ref neg_infinity in
    for i = 0 to n - 1 do
      if temps.(i) > !h then h := temps.(i)
    done;
    !h
  in
  (* Assign core j; cores 0..j-1 hold their digits, cores j..n-1 sit at
     level 0.  [score] is the partial voltage sum of cores 0..j-1. *)
  let rec assign j score =
    if !visited >= node_cap then capped := true
    else begin
      incr visited;
      if hottest () > t_max +. 1e-9 then
        (* Even with the rest at minimum this subtree violates: prune. *)
        ()
      else if j = n then offer score digits
      else if score +. (float_of_int (n - j) *. v_top) < best_score () -. 1e-12
      then
        (* Bound: cannot beat or tie the incumbent even at full speed. *)
        ()
      else
        (* Try levels high-to-low so good incumbents appear early and the
           score bound bites. *)
        for d = l - 1 downto 0 do
          bump j digits.(j) d;
          digits.(j) <- d;
          assign (j + 1) (score +. levels.(d))
        done
    end;
    (* Restore core j to level 0 for the caller (a no-op on a
       budget-stopped frame, whose digit is still 0). *)
    if j < n then begin
      bump j digits.(j) 0;
      digits.(j) <- 0
    end
  in
  assign start score0;
  !visited

let solve_pruned ?node_cap (p : Platform.t) =
  let st = steady_setup p in
  let node_cap =
    match node_cap with Some c -> c | None -> default_node_cap ~l:st.l ~n:st.n
  in
  let digits = Array.make st.n 0 in
  let temps = Array.copy st.base_temps in
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  (* Seed the incumbent with the greedy warm start so the score bound
     bites from the first node — essential when the budget is finite,
     harmless (same result, fewer visits) when it is not. *)
  (match greedy_fill st ~t_max:p.t_max with
  | Some (digits, score) ->
      best_score := score;
      best_digits := Some digits
  | None -> ());
  let offer score digits =
    if improves ~score ~digits ~best_score:!best_score ~best_digits:!best_digits
    then begin
      best_score := score;
      best_digits := Some (Array.copy digits)
    end
  in
  let capped = ref false in
  let visited =
    bnb st ~t_max:p.t_max ~node_cap ~capped ~digits ~temps
      ~best_score:(fun () -> !best_score)
      ~offer ~start:0 ~score0:0.
  in
  best_result ~exhaustive:(not !capped) p !best_digits !best_score st.levels
    visited

let solve_par ?pool ?(par = true) (p : Platform.t) =
  let st = steady_setup p in
  let pool_size =
    match pool with
    | Some q -> Util.Pool.size q
    | None -> Util.Pool.size (Util.Pool.get ())
  in
  let space = float_of_int st.l ** float_of_int st.n in
  (* The fan-out only pays above a minimum search-space size; tiny
     problems (and 1-domain pools) take the sequential path outright.
     Budget-truncated searches also stay sequential: a node cap split
     across racing subtrees would make the *result* depend on incumbent
     propagation timing, and determinism outranks parallelism in the
     anytime regime. *)
  if
    (not par) || pool_size <= 1 || st.n < 2 || space < 1024.
    || default_node_cap ~l:st.l ~n:st.n < max_int
  then solve_pruned p
  else begin
    (* Shared incumbent: lock-free [Atomic.get] for the bound inside
       every subtree, CAS-loop publication on improvement.  The bound is
       admissible because an incumbent score only ever grows and pruning
       requires being strictly below it (minus the float guard), so no
       optimal-or-tying assignment is ever cut. *)
    let incumbent =
      Atomic.make
        (Option.map (fun (d, s) -> (s, d)) (greedy_fill st ~t_max:p.t_max))
    in
    let best_score () =
      match Atomic.get incumbent with None -> neg_infinity | Some (s, _) -> s
    in
    let rec offer score digits =
      let cur = Atomic.get incumbent in
      let better =
        match cur with
        | None -> true
        | Some (s, d) -> score > s || (score = s && lex_less digits d)
      in
      if
        better
        && not (Atomic.compare_and_set incumbent cur (Some (score, Array.copy digits)))
      then offer score digits
    in
    (* One task per top-level digit of core 0, each searching its subtree
       with task-local digits/temps.  Highest digit first, so strong
       incumbents publish early and the score bound prunes the
       low-frequency subtrees across all workers. *)
    let subtree d0 =
      let digits = Array.make st.n 0 in
      let temps = Array.copy st.base_temps in
      let dpsi = st.psi_of_level.(d0) -. st.psi_of_level.(0) in
      for i = 0 to st.n - 1 do
        temps.(i) <- temps.(i) +. (st.columns.(0).(i) *. dpsi)
      done;
      digits.(0) <- d0;
      bnb st ~t_max:p.t_max ~node_cap:max_int ~capped:(ref false) ~digits
        ~temps ~best_score ~offer ~start:1 ~score0:st.levels.(d0)
    in
    let order = Array.init st.l (fun i -> st.l - 1 - i) in
    let visits = Util.Pool.map_array ?pool subtree order in
    (* +1 for the implicit root node the sequential solver counts.  The
       total depends on how fast incumbents propagated, so it is not
       deterministic across runs — only the result fields are. *)
    let evaluated = Array.fold_left ( + ) 1 visits in
    match Atomic.get incumbent with
    | Some (score, digits) -> best_result p (Some digits) score st.levels evaluated
    | None -> best_result p None neg_infinity st.levels evaluated
  end

type Solver.details += Details of result

let policy =
  {
    Solver.name = "exs";
    doc = "Exhaustive search over discrete assignments (Algorithm 1 baseline)";
    comparison = true;
    solve =
      (fun ev (prm : Solver.params) ->
        let o =
          Solver.timed_outcome ev (fun () ->
              let p = Eval.platform ev in
              let r =
                if prm.Solver.par then solve_par ~pool:(Eval.pool ev) p else solve p
              in
              {
                Solver.voltages = Array.copy r.voltages;
                schedule = None;
                throughput = r.throughput;
                peak = r.peak;
                wall_time = 0.;
                evaluations = 0;
                details = Details r;
              })
        in
        (* EXS's own enumeration count is the meaningful evaluation
           metric (its inner loop never touches the memo tables). *)
        match o.Solver.details with
        | Details r -> { o with Solver.evaluations = r.evaluated }
        | _ -> o);
  }
