(** A shared evaluation context: everything a policy solve needs to
    price candidate schedules on one platform, created once and reused.

    The context bundles the {!Platform.t} (whose thermal model carries
    the modal/MatEx workspace all evaluators run on), the {!Util.Pool}
    handle searches fan out on, and two bounded memo tables
    ({!Sched.Peak.Cache}):

    - constant-voltage steady-state peaks, keyed by the (bit-exact)
      voltage vector — the evaluator behind LNS rounding, EXS
      feasibility, TSP discretization and Ideal verification;
    - step-up end-of-period peaks, keyed by a canonical schedule digest
      — the evaluator behind AO's m sweep, the TPT adjustment loops and
      Demand's sweep.

    Because keys capture the exact inputs, a hit returns bit-identically
    what a fresh evaluation would have computed, so solves behave the
    same with the cache on, off, or shared — only faster.  Sharing one
    context across policies ([Registry.all] consumers do) is where the
    win compounds: PCO replays AO's entire search from cache, and
    sweeps that revisit a platform skip their repeated evaluations. *)

type t

(** Which thermal engine prices this context's candidates.  [Dense] is
    the reference {!Thermal.Modal} path (exact eigenbasis, O(n³) build);
    [Sparse] routes every evaluator through the {!Thermal.Backend}
    wrapping of the Krylov engine (O(nnz) build, CG + Lanczos solves) —
    a [Sparse] context never forces the modal engine, so its solves skip
    the dense eigensolve entirely.  Both kinds share the same memo-table
    digests, so switching backends changes only who computes a miss. *)
type backend_kind = Dense | Sparse

type stats = {
  steady : Sched.Peak.Cache.stats;  (** Constant-voltage table counters. *)
  stepup : Sched.Peak.Cache.stats;  (** Step-up schedule table counters. *)
}

(** [create ?pool ?cache_size ?backend ?screen_margin platform] builds a
    context.  [pool] defaults to the shared {!Util.Pool.get} pool;
    [cache_size] (default 1024) bounds each memo table, with [0]
    disabling memoization — the cache-off mode differential tests run
    against; [backend] (default [Dense]) selects the thermal engine;
    [screen_margin] (kelvin, default [0.] — screening off) is how far
    above the batch ROM minimum a candidate may score and still be
    re-verified exactly during two-tier screening ({!screening}).
    Screening is opt-in because its soundness needs the margin to cover
    twice the batch ROM error oscillation (DESIGN.md §12), which nothing
    estimates at runtime: pass a positive margin (the CLI and benches
    use 0.5 K, calibrated against the measured ≈0.1 K AO-batch error
    range at 8×8/16×16) only when that bound is believed to hold.
    Raises [Invalid_argument] on a negative margin. *)
val create :
  ?pool:Util.Pool.t ->
  ?cache_size:int ->
  ?backend:backend_kind ->
  ?screen_margin:float ->
  Platform.t ->
  t

(** [platform t] is the platform the context evaluates on. *)
val platform : t -> Platform.t

(** [pool t] is the domain pool searches should fan out on. *)
val pool : t -> Util.Pool.t

(** [kind t] is the backend the context was created with. *)
val kind : t -> backend_kind

(** [backend t] is the uniform-interface view of the context's engine,
    built lazily on first use — ["dense-modal"] wrapping the same engine
    as {!engine} for a [Dense] context, ["sparse-response"] (the
    superposition engine over the Krylov engine assembled from the
    model's spec on the context's pool) for a [Sparse] one. *)
val backend : t -> Thermal.Backend.t

(** [engine t] is the platform's {!Thermal.Modal} response engine,
    built lazily on first use.  {!Thermal.Modal.make} memoizes per
    model, so this is the same engine any direct (eval-less) evaluator
    call resolves — every path superposes over identical unit-response
    tables, keeping cached and uncached results bit-compatible. *)
val engine : t -> Thermal.Modal.t

(** [steady_peak t voltages] is the memoized
    {!Sched.Peak.steady_constant} of the context's platform. *)
val steady_peak : t -> float array -> float

(** [step_up_peak t s] is the memoized {!Sched.Peak.of_step_up} of the
    context's platform.  [s] must be step-up (raises [Invalid_argument]
    otherwise, like the uncached evaluator). *)
val step_up_peak : t -> Sched.Schedule.t -> float

(** [two_mode_peak t ~period ~low ~high ~high_ratio] is the memoized
    {!Sched.Peak.of_two_mode} — the fused aligned two-mode candidate
    evaluator.  It shares the step-up memo table (and its exact
    schedule digest), so fused and schedule-based evaluations of the
    same candidate replay each other's entries. *)
val two_mode_peak :
  t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [any_peak t ?samples_per_segment s] is the stable-status peak of an
    arbitrary periodic schedule by dense scanning (default 32 samples
    per state interval) on the context's backend — the evaluator behind
    shifted-config pricing (TPT's non-aligned branch, PCO's offset
    search).  Uncached: scanned peaks are position-dependent and
    searches rarely revisit them exactly. *)
val any_peak : t -> ?samples_per_segment:int -> Sched.Schedule.t -> float

(** [stable_end_core_temps t s] are the absolute per-core temperatures
    at the stable-status period boundary on the context's backend —
    what the TPT loops read to find the hottest core. *)
val stable_end_core_temps : t -> Sched.Schedule.t -> Linalg.Vec.t

(** [two_mode_end_core_temps t ~period ~low ~high ~high_ratio] is the
    fused-candidate counterpart of {!stable_end_core_temps} — the
    aligned two-mode state intervals are derived without constructing
    the schedule, bit-identically to {!two_mode_peak}'s decomposition. *)
val two_mode_end_core_temps :
  t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  Linalg.Vec.t

(** {1 Prepared-base delta scans}

    The TPT-loop per-core scan hot path (DESIGN.md §14): capture the
    current config's drive once, then price candidates that change a
    single core's duty cycle without a full re-superposition — O(n) per
    candidate on the dense engine, O(m · n_cores) on the sparse one.
    Per-domain state (prepare and evaluate on the same domain) and
    deliberately uncached: delta scores agree with {!two_mode_peak} to
    ≤ 1e-9 but are not bit-identical, so they must never enter the
    exact memo tables — the loops re-verify any winner exactly before
    acting on it. *)

(** [two_mode_delta_base t ~period ~low ~high ~high_ratio] prepares the
    base config on this domain, on the context's backend engine. *)
val two_mode_delta_base :
  t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  unit

(** [two_mode_delta_peak t ~core ~low ~high ~high_ratio] is the stable
    end-of-period peak of the candidate equal to the prepared base
    except core [core] runs at ([low], [high], [high_ratio]). *)
val two_mode_delta_peak :
  t -> core:int -> low:float -> high:float -> high_ratio:float -> float

(** [two_mode_delta_temp_at t ~at ~core ~low ~high ~high_ratio] is the
    same candidate's end-of-period temperature at core [at] — the
    hottest-core read the adjustment scan scores candidates by. *)
val two_mode_delta_temp_at :
  t ->
  at:int ->
  core:int ->
  low:float ->
  high:float ->
  high_ratio:float ->
  float

(** {1 Two-tier ROM screening}

    A [Sparse] context carries a Lanczos-reduced screening model
    ({!Thermal.Reduced}) beside its exact superposition engine.  Search
    loops ask {!screening}: [Some margin] means "score the whole batch
    with {!rom_two_mode_peak}/{!rom_any_peak}, then re-verify only the
    candidates within [margin] of the ROM minimum exactly" (via
    {!Screen.select}); [None] means evaluate everything exactly.  ROM
    scores never enter the exact memo tables. *)

(** [screening t] is [Some margin] when this context wants two-tier
    screened sweeps ([Sparse] backend, positive [screen_margin]),
    [None] otherwise.  Forces the screening models on the calling
    domain before returning: the context's own cells are domain-safe
    {!Util.Once} values, but {!Thermal.Reduced} keeps an inner [Lazy]
    tier that must be forced here, on the submitting domain, before any
    pool worker can reach it. *)
val screening : t -> float option

(** [rom_two_mode_peak t ~period ~low ~high ~high_ratio] is the
    screening score of the fused two-mode candidate: the reduced-model
    peak on a [Sparse] context, the exact evaluation on a [Dense] one
    (keeping callers backend-blind).  Never cached. *)
val rom_two_mode_peak :
  t ->
  period:float ->
  low:float array ->
  high:float array ->
  high_ratio:float array ->
  float

(** [rom_any_peak t ?samples_per_segment s] is the screening score of an
    arbitrary periodic schedule — {!Sched.Peak.rom_of_any} on [Sparse],
    {!any_peak} on [Dense]. *)
val rom_any_peak : t -> ?samples_per_segment:int -> Sched.Schedule.t -> float

(** [stats t] snapshots both tables' hit/miss/entry/eviction counters. *)
val stats : t -> stats

(** [sparse_response_stats t] snapshots the sparse superposition
    engine's counters — [Some] only for a [Sparse] context whose
    response engine has actually been built (never forces it). *)
val sparse_response_stats : t -> Thermal.Sparse_response.stats option

(** [response_stats t] snapshots the response-engine counters
    (superposition evaluations, decay-table hits/misses, and the
    process-wide engine build count).  Engines are shared per model, so
    the per-engine counters reflect every evaluation on this platform
    since its engine was built, not just this context's.  Forces the
    engine if it has not been used yet. *)
val response_stats : t -> Thermal.Modal.stats

(** [hit_rate t] is the fraction of all lookups (both tables) answered
    from cache, 0 when nothing has been looked up. *)
val hit_rate : t -> float

(** [clear t] empties both tables and zeroes their counters. *)
val clear : t -> unit
