(** Computational sprinting on top of the paper's machinery.

    A chip that has been idle sits at the ambient temperature — far
    below [T_max] — so it can briefly run hotter-than-sustainable
    ("sprint") before throttling to a thermally sustainable schedule.
    The transient analysis makes the safe burst length exact: it is the
    {!Thermal.Matex.time_to_threshold} of the burst assignment from the
    idle state.  The plan is

    - burst: every core at the highest mode for [burst_duration];
    - then: hand over to AO's sustainable oscillating schedule.

    Because AO's schedule holds its stable peak at [T_max], the handover
    is safe: the chip enters it at most at [T_max] and the schedule's
    stable status is the hottest trajectory it ever reaches (up to the
    documented coupling tolerance, which the dense verification in AO
    already covers). *)

type plan = {
  burst_voltages : float array;  (** All-top-mode assignment. *)
  burst_duration : float;
      (** Seconds from ambient until [T_max] is reached; [infinity] when
          the burst assignment is sustainable forever. *)
  burst_work : float;  (** Work per core done during the burst. *)
  steady : Ao.result;  (** The sustainable schedule sprinted into. *)
  sprint_gain : float;
      (** Extra work per core vs running the steady schedule during the
          burst window — what sprinting buys; 0 for infinite bursts. *)
}

(** [plan ?eval ?margin platform] computes the sprint plan.  [margin]
    (default 0.5 C) backs the burst threshold off [t_max] to absorb the
    handover transient.  [eval] memoizes the inner AO run's step-up
    evaluations. *)
val plan : ?eval:Eval.t -> ?margin:float -> Platform.t -> plan

type Solver.details += Details of plan

(** [policy] is the registry adapter: it reports the *sustained* AO
    solution (speeds, schedule, throughput, peak) while [Details]
    carries the full plan including the burst. *)
val policy : Solver.t
