let all : Solver.t list =
  [
    Lns.policy;
    Exs.policy;
    Ao.policy;
    Pco.policy;
    Ideal.policy;
    Tsp.policy;
    Demand.policy;
    Sprint.policy;
  ]

let () =
  (* Names are registry keys; a duplicate would shadow silently. *)
  let names = List.map (fun (p : Solver.t) -> p.Solver.name) all in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Registry: duplicate policy name"

let comparison () = List.filter (fun (p : Solver.t) -> p.Solver.comparison) all
let names () = List.map (fun (p : Solver.t) -> p.Solver.name) all
let find name = List.find_opt (fun (p : Solver.t) -> p.Solver.name = name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find_exn: unknown policy %S (known: %s)" name
           (String.concat ", " (names ())))
