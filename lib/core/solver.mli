(** The common policy interface every solver in this library plugs into.

    A policy is a first-class value: a name, a one-line doc string (the
    registry's source of truth for user-facing listings), and a [solve]
    function from a shared evaluation context ({!Eval.t}) and common
    {!params} to one common {!outcome} record.  Each policy module keeps
    its typed [solve] — richer arguments, richer result — and registers
    a thin adapter here; {!Registry.all} collects them so experiments,
    the CLI, examples and benches drive any policy uniformly.

    Adapters are parity-exact: the adapter runs the very same typed
    solve (through the context's memo tables, which return bit-identical
    values), so [outcome] fields equal what the direct call computes —
    the property [test/test_solver.ml] pins for every registered
    policy at any pool size. *)

(** Solver-specific result payloads.  Each policy module extends this
    with one constructor wrapping its typed result (e.g.
    [Ao.Details of Ao.result]), so consumers can recover the full record
    by matching while generic drivers ignore it. *)
type details = ..

type details += No_details  (** For solvers with nothing extra to say. *)

type params = {
  par : bool;
      (** Run the policy's search on the context's domain pool (results
          are bit-identical at any pool size).  Default [true]. *)
  demands : float array option;
      (** Per-core net-speed demands for the [demand] policy (ignored by
          the others).  [None] lets the adapter derive the ideal
          continuous assignment as the demand vector. *)
  delta_margin : float;
      (** Staleness margin (kelvin) for the TPT loops' prepared-base
          delta tier ({!Tpt.adjust_to_constraint}); [0.] (the default)
          keeps the exact per-core scans.  Only AO and PCO read it. *)
}

(** [default_params] =
    [{ par = true; demands = None; delta_margin = 0. }]. *)
val default_params : params

type outcome = {
  voltages : float array;
      (** Per-core speeds of the solution: the discrete assignment for
          constant policies (LNS/EXS/TSP), the continuous assignment for
          Ideal, and the delivered net per-core speeds (work per second,
          stalls charged) for oscillating policies (AO/PCO/Demand/
          Sprint). *)
  schedule : Sched.Schedule.t option;
      (** The materialized periodic schedule; [None] for policies whose
          answer is a constant assignment. *)
  throughput : float;  (** Chip-wide throughput, the paper's Eq. (5). *)
  peak : float;  (** Stable-status peak temperature, degrees C. *)
  wall_time : float;  (** Seconds the solve took. *)
  evaluations : int;
      (** Peak evaluations the solve pushed through the context's memo
          tables (hits + misses); EXS reports its enumeration count
          instead. *)
  details : details;  (** The policy's full typed result. *)
}

type t = {
  name : string;  (** Unique registry key, lowercase (e.g. ["ao"]). *)
  doc : string;  (** One-line description for listings. *)
  comparison : bool;
      (** Member of the paper's LNS/EXS/AO/PCO comparison set that
          [Exp_common.run_policies] iterates. *)
  solve : Eval.t -> params -> outcome;
}

(** [run ?params policy eval] is [policy.solve eval params] with
    {!default_params} filled in. *)
val run : ?params:params -> t -> Eval.t -> outcome

(** [timed_outcome eval build] runs [build ()] and returns its outcome
    with [wall_time] set to the elapsed seconds and [evaluations] to the
    number of memo-table lookups (both tables) the build performed on
    [eval] — the shared plumbing of every adapter. *)
val timed_outcome : Eval.t -> (unit -> outcome) -> outcome

(** [delivered_speeds platform schedule] is
    {!Sched.Throughput.per_core} with the platform's [tau] — the
    [voltages] view oscillating policies report. *)
val delivered_speeds : Platform.t -> Sched.Schedule.t -> float array
