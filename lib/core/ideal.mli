(** The ideal continuous speed assignment (first step of Section V).

    Pins every core's steady-state temperature at [T_max], solves the
    steady thermal equations for the per-core power budget and inverts
    the power model: [v_i = cbrt((P_i - alpha - beta T_max) / gamma)].
    Voltages are clamped into the platform's level range; with
    [refine = true] (the default) cores that clamp are re-cast as
    fixed-power sources and the remaining cores re-solved, so the
    headroom a clamped core leaves is redistributed — an improvement the
    paper's one-shot formula forgoes (kept available as an ablation via
    [refine = false]). *)

type result = {
  voltages : float array;  (** Per-core ideal (continuous) voltage, V. *)
  psi : float array;  (** The power budget behind each voltage, W. *)
  throughput : float;  (** Mean voltage = Eq. (5) for a constant schedule. *)
  clamped : bool array;  (** Which cores hit the voltage range limits. *)
}

(** [solve ?refine platform] computes the ideal assignment.  [refine]
    defaults to [true]. *)
val solve : ?refine:bool -> Platform.t -> result

type Solver.details += Details of result

(** [policy] is the registry adapter: the continuous assignment as
    [voltages] (no schedule), with [peak] its steady-state peak
    evaluated through the context's memo table — [T_max] exactly unless
    clamping left headroom. *)
val policy : Solver.t
