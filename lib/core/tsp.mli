(** TSP — Thermal Safe Power power-budgeting baseline (Pagani et al.,
    CODES+ISSS 2014; the paper's reference [9]).

    Classic TDP-style budgeting gives every core one uniform power cap
    chosen so that the *worst case* (all cores active at the cap) stays
    below [T_max].  The steady core temperatures are affine in a uniform
    per-core power [p], so the cap solves
    [max_i (offset_i + slope_i * p) = T_max] in closed form.  The cap is
    then translated to the largest discrete mode not exceeding it.

    The paper's argument (via [9]) is that this is pessimistic: it
    budgets for the hottest core's position, wasting the margin cooler
    cores have.  Including it makes that comparison concrete — see the
    bench's ablation section. *)

type result = {
  power_budget : float;  (** The uniform per-core cap, W. *)
  continuous_voltage : float;
      (** The voltage whose [psi] equals the budget, before
          discretization. *)
  voltages : float array;  (** One discrete mode, same for every core. *)
  throughput : float;
  peak : float;  (** Steady peak of the discretized assignment. *)
}

(** [solve ?eval platform] computes the thermal-safe power budget and
    its discretized schedule.  Raises [Invalid_argument] if even zero
    power overshoots (impossible for [t_max] above ambient).  [eval]
    memoizes the final steady-peak evaluation. *)
val solve : ?eval:Eval.t -> Platform.t -> result

type Solver.details += Details of result

(** [policy] is TSP's registry adapter — the uniform discrete
    assignment as [voltages], bit-identical to {!solve}. *)
val policy : Solver.t
