type plan = {
  burst_voltages : float array;
  burst_duration : float;
  burst_work : float;
  steady : Ao.result;
  sprint_gain : float;
}

let plan ?eval ?(margin = 0.5) (p : Platform.t) =
  if margin < 0. then invalid_arg "Sprint.plan: negative margin";
  let n = Platform.n_cores p in
  let v_top = Power.Vf.highest p.levels in
  let burst_voltages = Array.make n v_top in
  let psi = Power.Power_model.psi_vector p.power burst_voltages in
  let profile = [ { Thermal.Matex.duration = 1.0; psi } ] in
  let burst_duration =
    match
      Thermal.Matex.time_to_threshold p.model ~max_periods:10_000
        ~threshold:(p.t_max -. margin) profile
    with
    | Some t -> t
    | None -> infinity
  in
  let steady = Ao.solve ?eval p in
  let burst_work, sprint_gain =
    if Float.is_finite burst_duration then
      let work = v_top *. burst_duration in
      (work, work -. (steady.Ao.throughput *. burst_duration))
    else (infinity, 0.)
  in
  { burst_voltages; burst_duration; burst_work; steady; sprint_gain }

type Solver.details += Details of plan

let policy =
  {
    Solver.name = "sprint";
    doc = "Computational sprinting: exact safe burst, then AO's sustainable schedule";
    comparison = false;
    solve =
      (fun ev (_ : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let p = Eval.platform ev in
            let r = plan ~eval:ev p in
            (* The sustained solution is the steady AO schedule; the burst
               is a transient prefix the details record. *)
            {
              Solver.voltages = Solver.delivered_speeds p r.steady.Ao.schedule;
              schedule = Some r.steady.Ao.schedule;
              throughput = r.steady.Ao.throughput;
              peak = r.steady.Ao.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
