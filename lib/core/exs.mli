(** EXS — the exhaustive-search baseline (Algorithm 1).

    Enumerates every assignment of one discrete level per core, checks
    the steady-state peak temperature against [T_max] and keeps the
    feasible assignment with the largest total frequency.  The search
    space is [levels^cores], which is what makes EXS explode in Table V.

    Two evaluators are provided: {!solve} pre-factorizes the steady-state
    map once and updates core temperatures incrementally as the
    enumeration odometer ticks (the optimization DESIGN.md's ablation
    quantifies), while {!solve_naive} re-solves [T^inf = -A^{-1}B] from
    scratch for every combination, exactly as Algorithm 1 is written.

    All solvers reduce candidates with the same deterministic total
    order — higher total frequency wins, exact ties go to the
    lexicographically smallest level vector — so {!solve},
    {!solve_naive}, {!solve_pruned} and {!solve_par} return identical
    [voltages]/[throughput]/[peak]/[feasible] on every platform whose
    search space fits the exact regime; past it (many-core platforms,
    where enumeration is physically impossible) the branch-and-bound
    solvers run as budgeted deterministic anytime searches and say so
    via [result.exhaustive]. *)

type result = {
  voltages : float array;  (** Best feasible assignment (lowest levels when
                                nothing feasible exists). *)
  throughput : float;  (** Mean voltage of the best assignment, 0 if none. *)
  peak : float;  (** Steady peak of the best assignment, [infinity] if none. *)
  evaluated : int;  (** Combinations examined. *)
  feasible : bool;  (** Whether any assignment met the constraint. *)
  exhaustive : bool;
      (** [true] when the search ran to completion (the returned
          assignment is the proven optimum); [false] when a node budget
          truncated the branch-and-bound ({!solve_pruned} on many-core
          platforms), making the result the best of the greedy warm
          start and everything visited under the budget. *)
}

(** [solve platform] runs the incremental exhaustive search. *)
val solve : Platform.t -> result

(** [solve_naive platform] runs the textbook version (one dense linear
    solve per combination).  Same result, slower — kept for the
    ablation benchmark. *)
val solve_naive : Platform.t -> result

(** [solve_pruned ?node_cap platform] runs a branch-and-bound
    enumeration instead of the flat odometer: the incumbent is seeded
    with a deterministic greedy warm start (single-level raises chosen
    by coolest resulting hot spot), cores are assigned one at a time
    (highest-level-first), and a subtree is cut when (a) the steady
    temperature with every remaining core at the LOWEST level already
    violates [t_max] — monotonicity makes the whole subtree infeasible —
    or (b) the best possible remaining score cannot beat the incumbent.
    [evaluated] counts visited search nodes.

    [node_cap] bounds the visited nodes.  Its default is a pure
    function of (levels, cores): unlimited while [levels^cores] fits an
    outright enumeration (~4·10^6, covering every paper-scale platform,
    where the result equals {!solve}'s proven optimum), and a fixed
    ~1.7·10^7-node budget past that — the many-core regime where no
    exact method terminates — turning the search into a deterministic
    anytime solver whose truncation is reported via
    [result.exhaustive]. *)
val solve_pruned : ?node_cap:int -> Platform.t -> result

(** [solve_par ?pool ?par platform] is {!solve_pruned} with the
    top-level digit subtrees of the branch-and-bound fanned out across
    the domain pool ([pool] defaults to the shared {!Util.Pool.get}
    pool).  The subtrees share an atomic incumbent: reads of the bound
    are lock-free and improvements publish via a CAS loop, and pruning
    only cuts subtrees that score strictly below the incumbent, so the
    bound stays admissible and the returned assignment is the same
    deterministic optimum the sequential solvers find.  Only
    [evaluated] (visited node count) varies with scheduling.  Falls
    back to {!solve_pruned} when [par] is [false], the pool has a
    single participant, the search space is tiny, or the default node
    budget is finite (a cap split across racing subtrees would make the
    result depend on incumbent propagation timing — determinism
    outranks parallelism in the anytime regime). *)
val solve_par : ?pool:Util.Pool.t -> ?par:bool -> Platform.t -> result

type Solver.details += Details of result

(** [policy] is EXS's registry adapter: {!solve_par} on the context's
    pool when [params.par] holds, {!solve} otherwise.  All EXS solvers
    agree bit-for-bit on [voltages]/[throughput]/[peak]; the outcome's
    [evaluations] reports the solver's enumeration count (which alone
    may vary with scheduling on the parallel path). *)
val policy : Solver.t
