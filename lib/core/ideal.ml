type result = {
  voltages : float array;
  psi : float array;
  throughput : float;
  clamped : bool array;
}

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let solve ?(refine = true) (p : Platform.t) =
  let n = Platform.n_cores p in
  let v_lo = Power.Vf.lowest p.levels and v_hi = Power.Vf.highest p.levels in
  let clamp v = Float.min v_hi (Float.max v_lo v) in
  let constraints =
    Array.make n (Thermal.Model.Pinned_temperature p.t_max)
  in
  let psi, _ = Thermal.Model.solve_mixed p.model constraints in
  let voltages = Array.map (fun w -> clamp (Power.Power_model.voltage_for_psi p.power w)) psi in
  let clamped =
    Array.mapi
      (fun i v ->
        let unclamped = Power.Power_model.voltage_for_psi p.power psi.(i) in
        Float.abs (v -. unclamped) > 1e-12)
      voltages
  in
  let voltages, psi =
    if not refine then (voltages, psi)
    else begin
      (* Re-solve with clamped cores as fixed power sources until the
         clamp set stabilizes (at most n rounds: the set only grows). *)
      let voltages = Array.copy voltages and psi = Array.copy psi in
      let is_clamped = Array.copy clamped in
      let changed = ref true in
      while !changed do
        changed := false;
        let constraints =
          Array.init n (fun i ->
              if is_clamped.(i) then
                Thermal.Model.Known_power (Power.Power_model.psi p.power voltages.(i))
              else Thermal.Model.Pinned_temperature p.t_max)
        in
        let psi', temps = Thermal.Model.solve_mixed p.model constraints in
        (* A pinned core whose refined voltage clamps joins the clamp set;
           a clamped-at-max core stays (its temp is below t_max by
           construction of clamping high targets down). *)
        Array.iteri
          (fun i w ->
            if not is_clamped.(i) then begin
              let v = Power.Power_model.voltage_for_psi p.power w in
              if v > v_hi +. 1e-12 || v < v_lo -. 1e-12 then begin
                voltages.(i) <- clamp v;
                psi.(i) <- Power.Power_model.psi p.power voltages.(i);
                is_clamped.(i) <- true;
                changed := true
              end
              else begin
                voltages.(i) <- v;
                psi.(i) <- w
              end
            end)
          psi';
        ignore temps
      done;
      (voltages, psi)
    end
  in
  { voltages; psi; throughput = mean voltages; clamped }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "ideal";
    doc = "Continuous upper bound: per-core voltages pinning T^inf at T_max";
    comparison = false;
    solve =
      (fun ev (_ : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let r = solve (Eval.platform ev) in
            {
              Solver.voltages = Array.copy r.voltages;
              schedule = None;
              throughput = r.throughput;
              peak = Eval.steady_peak ev r.voltages;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
