type result = {
  feasible : bool;
  schedule : Sched.Schedule.t;
  m : int;
  m_max : int;
  peak : float;
  margin : float;
  delivered : float array;
}

let solve ?eval ?(base_period = 0.1) ?(m_cap = 512) ?(par = true) (p : Platform.t)
    ~demands =
  let n = Platform.n_cores p in
  if Array.length demands <> n then
    invalid_arg "Demand.solve: demands arity differs from core count";
  let v_hi = Power.Vf.highest p.levels and v_lo = Power.Vf.lowest p.levels in
  Array.iter
    (fun d ->
      if d < 0. || d > v_hi +. 1e-12 then
        invalid_arg "Demand.solve: demand outside [0, v_max]")
    demands;
  (* Two neighbouring modes per core; demands below the bottom level are
     served at the bottom level (over-provisioning). *)
  let v_low = Array.make n 0. and v_high = Array.make n 0. and ratio = Array.make n 0. in
  for i = 0 to n - 1 do
    let d = Float.max v_lo demands.(i) in
    let lo, hi = Power.Vf.neighbours p.levels d in
    v_low.(i) <- lo;
    v_high.(i) <- hi;
    ratio.(i) <- (if hi -. lo < 1e-12 then 1. else (d -. lo) /. (hi -. lo))
  done;
  let modes =
    Array.init n (fun i -> (v_low.(i), v_high.(i), (1. -. ratio.(i)) *. base_period))
  in
  let m_max = Stdlib.min m_cap (Sched.Oscillate.max_m ~tau:p.tau ~modes) in
  let config_for m =
    let mini = base_period /. float_of_int m in
    let high_time =
      Array.init n (fun i ->
          if v_high.(i) -. v_low.(i) < 1e-12 || ratio.(i) >= 1. -. 1e-12 then mini
          else if ratio.(i) <= 1e-12 then 0.
          else begin
            let d =
              Sched.Oscillate.delta ~tau:p.tau ~v_low:v_low.(i) ~v_high:v_high.(i)
            in
            Float.min mini ((ratio.(i) *. mini) +. d)
          end)
    in
    {
      Tpt.period = mini;
      v_low = Array.copy v_low;
      v_high = Array.copy v_high;
      high_time;
      offset = Array.make n 0.;
    }
  in
  (* Each m's stable-status evaluation is independent: fan the sweep
     across the pool, then reduce in m order exactly as before (ties
     keep the smallest m).  On a screening context the sweep is
     two-tier — ROM scores for everyone, exact solves for the
     near-minimum survivors — and pruned slots come back +inf, which
     the reduction below never selects. *)
  let peaks =
    let eval_m i = Tpt.peak p ?eval (config_for (i + 1)) in
    let pool = Option.map Eval.pool eval in
    (* Same work-size gate as the AO m-sweep: small batches stay inline
       on both the screened and the exhaustive branch. *)
    let work = m_max * n * Thermal.Model.n_nodes p.model in
    let par = par && work >= 32768 in
    match Option.bind eval Eval.screening with
    | Some margin ->
        let rom_m i = Tpt.rom_peak p ?eval (config_for (i + 1)) in
        Screen.select ?pool ~par ~always:[] ~margin ~n:m_max ~rom:rom_m
          ~exact:eval_m ()
    | None ->
        if par then
          Util.Pool.init ?pool ~chunk:(Util.Pool.chunk_hint ?pool m_max) m_max
            eval_m
        else Array.init m_max eval_m
  in
  let best_m = ref 1 and best_peak = ref infinity in
  for m = 1 to m_max do
    if peaks.(m - 1) < !best_peak -. 1e-12 then begin
      best_peak := peaks.(m - 1);
      best_m := m
    end
  done;
  let config = config_for !best_m in
  let schedule = Tpt.schedule_of_config config in
  let peak = Tpt.peak p ~dense:true config in
  {
    feasible = peak <= p.t_max +. 1e-9;
    schedule;
    m = !best_m;
    m_max;
    peak;
    margin = p.t_max -. peak;
    delivered = Sched.Throughput.per_core ~tau:p.tau schedule;
  }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "demand";
    doc = "Feasibility dual: meet given per-core speed demands under T_max";
    comparison = false;
    solve =
      (fun ev (prm : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let p = Eval.platform ev in
            (* Without explicit demands, ask for the ideal continuous
               assignment — the hardest demand vector that is still
               sustainable in principle. *)
            let demands =
              match prm.Solver.demands with
              | Some d -> d
              | None -> (Ideal.solve p).Ideal.voltages
            in
            let r = solve ~eval:ev ~par:prm.Solver.par p ~demands in
            {
              Solver.voltages = Array.copy r.delivered;
              schedule = Some r.schedule;
              throughput =
                Array.fold_left ( +. ) 0. r.delivered
                /. float_of_int (Array.length r.delivered);
              peak = r.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
