(** PCO — phase-conscious oscillation (Section VI-C).

    AO keeps every candidate step-up so its peak is cheap to evaluate,
    but aligning all cores' high intervals at the period end concentrates
    power in time.  PCO starts from AO's result and additionally
    staggers the cores *spatially*: it searches a per-core phase shift of
    the high interval (a grid of offsets per core, greedily, core by
    core), then reclaims the temperature headroom the de-phasing opened
    by growing high-mode ratios ({!Tpt.fill_headroom}).  Shifted
    schedules are no longer step-up, so every peak evaluation needs the
    dense scan — which is why PCO is consistently slower than AO in
    Table V while gaining little throughput once m-oscillation has made
    the mini-period short against the thermal time constants. *)

type result = {
  config : Tpt.config;  (** Final configuration, offsets included. *)
  schedule : Sched.Schedule.t;
  m : int;  (** Inherited from the underlying AO run. *)
  throughput : float;
  peak : float;  (** Dense-scan stable-status peak. *)
  ao : Ao.result;  (** The AO solution PCO refines. *)
  fill_steps : int;  (** Headroom exchanges performed after shifting. *)
}

(** [solve ?base_period ?m_cap ?t_unit ?offsets_per_core ?rounds
    platform] runs AO, then [rounds] (default 1) passes of the greedy
    per-core phase search with [offsets_per_core] candidate shifts per
    core (default 8), then the headroom fill.  Additional rounds let
    early cores re-phase against the offsets later cores chose.  [par]
    (default [true]) evaluates each core's phase grid — and the
    underlying AO run and headroom fill — on the shared {!Util.Pool};
    selections stay sequential, so results match the sequential path.
    [eval] memoizes the step-up evaluations of the inner AO run and the
    headroom fill; on a context that already ran AO, the whole seed
    search replays from cache (the phase-grid dense scans are not
    memoized). *)
val solve :
  ?eval:Eval.t ->
  ?base_period:float ->
  ?m_cap:int ->
  ?t_unit:float ->
  ?offsets_per_core:int ->
  ?rounds:int ->
  ?par:bool ->
  ?delta_margin:float ->
  Platform.t ->
  result

type Solver.details += Details of result

(** [policy] is PCO's registry adapter — delivered per-core speeds as
    [voltages], bit-identical to the direct {!solve}. *)
val policy : Solver.t
