(** Two-tier ROM-screened candidate selection.

    Score a whole candidate batch on a cheap approximate evaluator (the
    Lanczos-reduced model, {!Thermal.Reduced}), then re-evaluate only
    the candidates within [margin] of the approximate minimum with the
    exact evaluator.  Pruned candidates report [infinity], so the
    caller's sequential argmin (and its tie-breaking) is unchanged —
    every value it can select was computed by an exact solve.

    Soundness: if the ROM error over the batch is bounded by [eps] and
    [margin >= 2 eps], the exact argmin always survives, so screening
    returns exactly the exhaustive sweep's answer; unconditionally the
    selected schedule's peak is an exact evaluation (see DESIGN.md
    §12). *)

(** Process-wide screening counters (monotonic). *)
type stats = {
  scored : int;  (** Candidates ROM-scored. *)
  survivors : int;  (** Candidates re-verified exactly. *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** [select ?pool ?chunk ?par ?always ~margin ~n ~rom ~exact ()] prices
    candidates [0 .. n-1]: every index through [rom], survivors (ROM
    score within [margin] of the batch ROM minimum, plus every index in
    [always]) through [exact], pruned slots [infinity].  [par] fans both
    tiers across [pool] (default: the shared pool) with claim chunk
    [chunk] (default: {!Util.Pool.chunk_hint}); results are in index
    order either way.  [always] forces indices whose exact value the
    caller reads unconditionally (e.g. an incumbent at slot 0) to
    survive.  NaN ROM scores are excluded from the batch minimum and
    survive to the exact tier, so a broken score cannot silently prune
    the whole batch.  Raises [Invalid_argument] on a negative [margin]
    or an out-of-range [always] index. *)
val select :
  ?pool:Util.Pool.t ->
  ?chunk:int ->
  ?par:bool ->
  ?always:int list ->
  margin:float ->
  n:int ->
  rom:(int -> float) ->
  exact:(int -> float) ->
  unit ->
  float array
