type result = { voltages : float array; throughput : float; peak : float }

let solve ?eval (p : Platform.t) =
  let ideal = Ideal.solve p in
  let voltages = Array.map (Power.Vf.round_down p.levels) ideal.Ideal.voltages in
  let peak =
    match eval with
    | Some ev when Eval.platform ev == p -> Eval.steady_peak ev voltages
    | Some _ | None -> Sched.Peak.steady_constant p.model p.power voltages
  in
  let throughput =
    Array.fold_left ( +. ) 0. voltages /. float_of_int (Array.length voltages)
  in
  { voltages; throughput; peak }

type Solver.details += Details of result

let policy =
  {
    Solver.name = "lns";
    doc = "Lower-neighbouring-speed baseline: ideal assignment rounded down";
    comparison = true;
    solve =
      (fun ev (_ : Solver.params) ->
        Solver.timed_outcome ev (fun () ->
            let r = solve ~eval:ev (Eval.platform ev) in
            {
              Solver.voltages = Array.copy r.voltages;
              schedule = None;
              throughput = r.throughput;
              peak = r.peak;
              wall_time = 0.;
              evaluations = 0;
              details = Details r;
            }));
  }
