(** The dual feasibility problem: meet *given* per-core speed demands
    under the peak-temperature constraint.

    The paper maximizes chip-wide throughput; its real-time ancestry
    (refs. [2], [25], [30]) asks the dual question — a task partition
    prescribes the net speed each core must sustain, and the scheduler
    must find a periodic DVFS schedule delivering those speeds without
    crossing [T_max].  The machinery is the same as AO's: two
    neighbouring modes per core at the throughput-preserving ratio
    (Theorems 3/4 make this the coolest equal-work choice), then
    m-oscillation to push the peak down (Theorem 5), stopping at the
    transition-overhead bound.  Unlike AO there is no ratio adjustment:
    the demands are hard, so the only freedom is [m], and the verdict is
    feasible / infeasible. *)

type result = {
  feasible : bool;  (** Whether the best schedule meets [t_max]. *)
  schedule : Sched.Schedule.t;  (** The best (coolest) schedule found. *)
  m : int;  (** Chosen oscillation count. *)
  m_max : int;  (** Transition-overhead bound on the sweep. *)
  peak : float;  (** Its dense-scan-verified stable peak, C. *)
  margin : float;  (** [t_max - peak]; negative when infeasible. *)
  delivered : float array;  (** Net per-core speeds of [schedule]. *)
}

(** [solve ?base_period ?m_cap platform ~demands] seeks a schedule
    delivering at least [demands.(i)] net speed on every core [i].
    Demands must lie in [[0, v_max]]; raises [Invalid_argument]
    otherwise (a demand below [v_min] is served at [v_min]-or-oscillated
    speed — over-provisioning is allowed, under-provisioning is not).
    [par] (default [true]) fans the m sweep across the shared
    {!Util.Pool}; the reduction is sequential, so the chosen [m] and
    schedule are identical at any pool size.  [eval] memoizes the
    sweep's step-up peak evaluations in the shared context. *)
val solve :
  ?eval:Eval.t ->
  ?base_period:float ->
  ?m_cap:int ->
  ?par:bool ->
  Platform.t ->
  demands:float array ->
  result

type Solver.details += Details of result

(** [policy] is the registry adapter: demands come from
    [params.demands], defaulting to the ideal continuous assignment;
    [voltages] are the delivered per-core speeds and [throughput] their
    mean.  Bit-identical to the direct {!solve} on the same demands. *)
val policy : Solver.t
