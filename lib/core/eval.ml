type t = {
  platform : Platform.t;
  pool : Util.Pool.t;
  steady_cache : Sched.Peak.Cache.t;
  stepup_cache : Sched.Peak.Cache.t;
}

type stats = {
  steady : Sched.Peak.Cache.stats;
  stepup : Sched.Peak.Cache.stats;
}

let create ?pool ?(cache_size = 1024) platform =
  let pool = match pool with Some p -> p | None -> Util.Pool.get () in
  {
    platform;
    pool;
    steady_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    stepup_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
  }

let platform t = t.platform
let pool t = t.pool

let steady_peak t voltages =
  Sched.Peak.steady_constant_cached t.steady_cache t.platform.Platform.model
    t.platform.Platform.power voltages

let step_up_peak t s =
  Sched.Peak.of_step_up_cached t.stepup_cache t.platform.Platform.model
    t.platform.Platform.power s

let stats t =
  {
    steady = Sched.Peak.Cache.stats t.steady_cache;
    stepup = Sched.Peak.Cache.stats t.stepup_cache;
  }

let hit_rate t =
  let s = stats t in
  let hits = s.steady.Sched.Peak.Cache.hits + s.stepup.Sched.Peak.Cache.hits in
  let total =
    hits + s.steady.Sched.Peak.Cache.misses + s.stepup.Sched.Peak.Cache.misses
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let clear t =
  Sched.Peak.Cache.clear t.steady_cache;
  Sched.Peak.Cache.clear t.stepup_cache
