[@@@fosc.digest_sensitive]

type backend_kind = Dense | Sparse

type t = {
  platform : Platform.t;
  pool : Util.Pool.t;
  steady_cache : Sched.Peak.Cache.t;
  stepup_cache : Sched.Peak.Cache.t;
  kind : backend_kind;
  screen_margin : float;
      (* ROM-screening margin in kelvin; 0 disables screening.  Only a
         [Sparse] context ever screens — [Dense] contexts report no
         screening regardless. *)
  (* The deferred engines below are [Util.Once] cells, not [Lazy]:
     evaluation contexts are shared across pool workers, and with ?par
     policies a worker can be the first caller to need an engine.
     [Lazy.force] racing across domains raises [Lazy.RacyLazy] — the
     crash class fosc-race's R8 flags — while [Once.get] single-flights
     the build under a mutex and is one atomic read thereafter. *)
  engine : Thermal.Modal.t Util.Once.t;
      (* The platform's response engine.  [Thermal.Modal.make] memoizes
         per model, so forcing this returns the same engine every direct
         (eval-less) call resolves — all paths superpose over identical
         unit-response tables and stay bit-compatible.  Never forced by a
         [Sparse] context's evaluators, so sparse solves skip the O(n³)
         eigensolve entirely. *)
  sparse : Thermal.Sparse_model.t Util.Once.t;
      (* The Krylov engine of the model's spec, assembled on the
         context's pool — shared by the response engine, the reduction
         and the backend view, so all three superpose/project over one
         operator. *)
  response : Thermal.Sparse_response.t Util.Once.t;
      (* Superposition tables over [sparse] ([Thermal.Sparse_response.make]
         memoizes per engine).  Never forced by a [Dense] context. *)
  rom : Thermal.Reduced.t Util.Once.t;
      (* The Lanczos-reduced screening model over [sparse].  Never
         forced by a [Dense] context. *)
  backend : Thermal.Backend.t Util.Once.t;
      (* The uniform-interface view of whichever engine [kind] selects.
         For [Dense] this wraps the same modal engine as [engine]; for
         [Sparse] it wraps the response engine, so backend evaluators
         superpose instead of re-solving per-candidate steady states. *)
}

type stats = {
  steady : Sched.Peak.Cache.stats;
  stepup : Sched.Peak.Cache.stats;
}

let create ?pool ?(cache_size = 1024) ?(backend = Dense) ?(screen_margin = 0.)
    platform =
  if not (screen_margin >= 0.) then
    invalid_arg "Eval.create: negative screen_margin";
  let pool = match pool with Some p -> p | None -> Util.Pool.get () in
  let sparse =
    Util.Once.make (fun () ->
        Thermal.Sparse_model.of_model ~pool platform.Platform.model)
  in
  let response =
    Util.Once.make (fun () ->
        Thermal.Sparse_response.make (Util.Once.get sparse))
  in
  {
    platform;
    pool;
    steady_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    stepup_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    kind = backend;
    screen_margin;
    engine =
      Util.Once.make (fun () -> Thermal.Modal.make platform.Platform.model);
    sparse;
    response;
    rom =
      Util.Once.make (fun () ->
          Thermal.Reduced.of_engine (Util.Once.get sparse));
    backend =
      (match backend with
      | Dense ->
          Util.Once.make (fun () ->
              Thermal.Backend.of_model platform.Platform.model)
      | Sparse ->
          Util.Once.make (fun () ->
              Thermal.Backend.of_response (Util.Once.get response)));
  }

let platform t = t.platform
let pool t = t.pool
let kind t = t.kind
let engine t = Util.Once.get t.engine
let backend t = Util.Once.get t.backend

let steady_peak t voltages =
  match t.kind with
  | Dense ->
      Sched.Peak.steady_constant_cached ~engine:(Util.Once.get t.engine)
        t.steady_cache t.platform.Platform.model t.platform.Platform.power
        voltages
  | Sparse ->
      Sched.Peak.backend_steady_constant_cached t.steady_cache
        (Util.Once.get t.backend) t.platform.Platform.power voltages

let step_up_peak t s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_step_up_cached ~engine:(Util.Once.get t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_of_step_up_cached t.stepup_cache
        (Util.Once.get t.backend) t.platform.Platform.power s

let two_mode_peak t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.of_two_mode_cached ~engine:(Util.Once.get t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      (* The fused streaming path: superposed equilibria, no schedule
         materialization, same digest as the generic backend path. *)
      Sched.Peak.response_of_two_mode_cached t.stepup_cache
        (Util.Once.get t.response) t.platform.Platform.power ~period ~low ~high
        ~high_ratio

let any_peak t ?(samples_per_segment = 32) s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_any ~engine:(Util.Once.get t.engine) t.platform.Platform.model
        t.platform.Platform.power ~samples_per_segment s
  | Sparse ->
      Sched.Peak.backend_of_any (Util.Once.get t.backend)
        t.platform.Platform.power ~samples_per_segment s

let stable_end_core_temps t s =
  match t.kind with
  | Dense ->
      Sched.Peak.stable_end_core_temps ~engine:(Util.Once.get t.engine)
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_stable_end_core_temps (Util.Once.get t.backend)
        t.platform.Platform.power s

let two_mode_end_core_temps t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_end_core_temps ~engine:(Util.Once.get t.engine)
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.backend_two_mode_end_core_temps (Util.Once.get t.backend)
        t.platform.Platform.power ~period ~low ~high ~high_ratio

(* -------------------------------------- prepared-base delta scans *)

(* The delta evaluators are per-domain and uncached by design: delta
   scores are within Krylov/rounding tolerance of the exact paths but
   not bit-identical, so they must never enter the exact memo tables.
   Callers (the TPT loops) re-verify winners through [two_mode_peak]. *)

let two_mode_delta_base t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_base ~engine:(Util.Once.get t.engine)
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_base (Util.Once.get t.response)
        t.platform.Platform.power ~period ~low ~high ~high_ratio

let two_mode_delta_peak t ~core ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_peak ~engine:(Util.Once.get t.engine)
        t.platform.Platform.model t.platform.Platform.power ~core ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_peak (Util.Once.get t.response)
        t.platform.Platform.power ~core ~low ~high ~high_ratio

let two_mode_delta_temp_at t ~at ~core ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_temp_at ~engine:(Util.Once.get t.engine)
        t.platform.Platform.model t.platform.Platform.power ~at ~core ~low
        ~high ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_temp_at (Util.Once.get t.response)
        t.platform.Platform.power ~at ~core ~low ~high ~high_ratio

(* ---------------------------------------------- two-tier screening *)

let screening t =
  match t.kind with
  | Dense -> None
  | Sparse ->
      if t.screen_margin > 0. then begin
        (* Force the screening models on the submitting domain NOW.
           The context's own cells are domain-safe [Util.Once] values,
           but [Reduced] keeps a true [Lazy] for its inner static tier
           (forced once per reduction, on this domain, per the
           [@fosc.forced_before_parallel] contract): [Reduced.prepare]
           must run here so pool workers only ever read the
           already-forced value.  Forcing up front also keeps the first
           ROM scores from serializing behind the builds. *)
        ignore (Util.Once.get t.response : Thermal.Sparse_response.t);
        Thermal.Reduced.prepare (Util.Once.get t.rom);
        Some t.screen_margin
      end
      else None

let rom_two_mode_peak t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      (* No reduction on the dense path: the "approximate" score is the
         exact evaluation, which keeps callers backend-blind. *)
      two_mode_peak t ~period ~low ~high ~high_ratio
  | Sparse ->
      Sched.Peak.rom_of_two_mode (Util.Once.get t.rom) t.platform.Platform.power
        ~period ~low ~high ~high_ratio

let rom_any_peak t ?(samples_per_segment = 32) s =
  match t.kind with
  | Dense -> any_peak t ~samples_per_segment s
  | Sparse ->
      Sched.Peak.rom_of_any (Util.Once.get t.rom) t.platform.Platform.power
        ~samples_per_segment s

let stats t =
  {
    steady = Sched.Peak.Cache.stats t.steady_cache;
    stepup = Sched.Peak.Cache.stats t.stepup_cache;
  }

let sparse_response_stats t =
  match t.kind with
  | Dense -> None
  | Sparse ->
      if Util.Once.is_forced t.response then
        Some (Thermal.Sparse_response.stats (Util.Once.get t.response))
      else None

let response_stats t = Thermal.Modal.stats (Util.Once.get t.engine)

let hit_rate t =
  let s = stats t in
  let hits = s.steady.Sched.Peak.Cache.hits + s.stepup.Sched.Peak.Cache.hits in
  let total =
    hits + s.steady.Sched.Peak.Cache.misses + s.stepup.Sched.Peak.Cache.misses
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let clear t =
  Sched.Peak.Cache.clear t.steady_cache;
  Sched.Peak.Cache.clear t.stepup_cache
