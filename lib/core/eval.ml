[@@@fosc.digest_sensitive]

type backend_kind = Dense | Sparse

type t = {
  platform : Platform.t;
  pool : Util.Pool.t;
  steady_cache : Sched.Peak.Cache.t;
  stepup_cache : Sched.Peak.Cache.t;
  kind : backend_kind;
  screen_margin : float;
      (* ROM-screening margin in kelvin; 0 disables screening.  Only a
         [Sparse] context ever screens — [Dense] contexts report no
         screening regardless. *)
  engine : Thermal.Modal.t Lazy.t;
      (* The platform's response engine.  [Thermal.Modal.make] memoizes
         per model, so forcing this returns the same engine every direct
         (eval-less) call resolves — all paths superpose over identical
         unit-response tables and stay bit-compatible.  Never forced by a
         [Sparse] context's evaluators, so sparse solves skip the O(n³)
         eigensolve entirely. *)
  sparse : Thermal.Sparse_model.t Lazy.t;
      (* The Krylov engine of the model's spec, assembled on the
         context's pool — shared by the response engine, the reduction
         and the backend view, so all three superpose/project over one
         operator. *)
  response : Thermal.Sparse_response.t Lazy.t;
      (* Superposition tables over [sparse] ([Thermal.Sparse_response.make]
         memoizes per engine).  Never forced by a [Dense] context. *)
  rom : Thermal.Reduced.t Lazy.t;
      (* The Lanczos-reduced screening model over [sparse].  Never
         forced by a [Dense] context. *)
  backend : Thermal.Backend.t Lazy.t;
      (* The uniform-interface view of whichever engine [kind] selects.
         For [Dense] this wraps the same modal engine as [engine]; for
         [Sparse] it wraps the response engine, so backend evaluators
         superpose instead of re-solving per-candidate steady states. *)
}

type stats = {
  steady : Sched.Peak.Cache.stats;
  stepup : Sched.Peak.Cache.stats;
}

let create ?pool ?(cache_size = 1024) ?(backend = Dense) ?(screen_margin = 0.)
    platform =
  if not (screen_margin >= 0.) then
    invalid_arg "Eval.create: negative screen_margin";
  let pool = match pool with Some p -> p | None -> Util.Pool.get () in
  let sparse =
    lazy (Thermal.Sparse_model.of_model ~pool platform.Platform.model)
  in
  let response = lazy (Thermal.Sparse_response.make (Lazy.force sparse)) in
  {
    platform;
    pool;
    steady_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    stepup_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    kind = backend;
    screen_margin;
    engine = lazy (Thermal.Modal.make platform.Platform.model);
    sparse;
    response;
    rom = lazy (Thermal.Reduced.of_engine (Lazy.force sparse));
    backend =
      (match backend with
      | Dense -> lazy (Thermal.Backend.of_model platform.Platform.model)
      | Sparse -> lazy (Thermal.Backend.of_response (Lazy.force response)));
  }

let platform t = t.platform
let pool t = t.pool
let kind t = t.kind
let engine t = Lazy.force t.engine
let backend t = Lazy.force t.backend

let steady_peak t voltages =
  match t.kind with
  | Dense ->
      Sched.Peak.steady_constant_cached ~engine:(Lazy.force t.engine)
        t.steady_cache t.platform.Platform.model t.platform.Platform.power
        voltages
  | Sparse ->
      Sched.Peak.backend_steady_constant_cached t.steady_cache
        (Lazy.force t.backend) t.platform.Platform.power voltages

let step_up_peak t s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_step_up_cached ~engine:(Lazy.force t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_of_step_up_cached t.stepup_cache
        (Lazy.force t.backend) t.platform.Platform.power s

let two_mode_peak t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.of_two_mode_cached ~engine:(Lazy.force t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      (* The fused streaming path: superposed equilibria, no schedule
         materialization, same digest as the generic backend path. *)
      Sched.Peak.response_of_two_mode_cached t.stepup_cache
        (Lazy.force t.response) t.platform.Platform.power ~period ~low ~high
        ~high_ratio

let any_peak t ?(samples_per_segment = 32) s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_any ~engine:(Lazy.force t.engine) t.platform.Platform.model
        t.platform.Platform.power ~samples_per_segment s
  | Sparse ->
      Sched.Peak.backend_of_any (Lazy.force t.backend)
        t.platform.Platform.power ~samples_per_segment s

let stable_end_core_temps t s =
  match t.kind with
  | Dense ->
      Sched.Peak.stable_end_core_temps ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_stable_end_core_temps (Lazy.force t.backend)
        t.platform.Platform.power s

let two_mode_end_core_temps t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_end_core_temps ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.backend_two_mode_end_core_temps (Lazy.force t.backend)
        t.platform.Platform.power ~period ~low ~high ~high_ratio

(* -------------------------------------- prepared-base delta scans *)

(* The delta evaluators are per-domain and uncached by design: delta
   scores are within Krylov/rounding tolerance of the exact paths but
   not bit-identical, so they must never enter the exact memo tables.
   Callers (the TPT loops) re-verify winners through [two_mode_peak]. *)

let two_mode_delta_base t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_base ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_base (Lazy.force t.response)
        t.platform.Platform.power ~period ~low ~high ~high_ratio

let two_mode_delta_peak t ~core ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_peak ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power ~core ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_peak (Lazy.force t.response)
        t.platform.Platform.power ~core ~low ~high ~high_ratio

let two_mode_delta_temp_at t ~at ~core ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_delta_temp_at ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power ~at ~core ~low
        ~high ~high_ratio
  | Sparse ->
      Sched.Peak.response_two_mode_delta_temp_at (Lazy.force t.response)
        t.platform.Platform.power ~at ~core ~low ~high ~high_ratio

(* ---------------------------------------------- two-tier screening *)

let screening t =
  match t.kind with
  | Dense -> None
  | Sparse ->
      if t.screen_margin > 0. then begin
        (* Force the screening models on the submitting domain NOW:
           OCaml's [Lazy] is not domain-safe, and a screened sweep's
           first ROM scores may otherwise race to force [response]/[rom]
           from several pool workers at once.  [Reduced.prepare] covers
           the reduction's own inner static-tier lazy, which forcing
           [t.rom] alone would leave for the workers to race on. *)
        ignore (Lazy.force t.response : Thermal.Sparse_response.t);
        Thermal.Reduced.prepare (Lazy.force t.rom);
        Some t.screen_margin
      end
      else None

let rom_two_mode_peak t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      (* No reduction on the dense path: the "approximate" score is the
         exact evaluation, which keeps callers backend-blind. *)
      two_mode_peak t ~period ~low ~high ~high_ratio
  | Sparse ->
      Sched.Peak.rom_of_two_mode (Lazy.force t.rom) t.platform.Platform.power
        ~period ~low ~high ~high_ratio

let rom_any_peak t ?(samples_per_segment = 32) s =
  match t.kind with
  | Dense -> any_peak t ~samples_per_segment s
  | Sparse ->
      Sched.Peak.rom_of_any (Lazy.force t.rom) t.platform.Platform.power
        ~samples_per_segment s

let stats t =
  {
    steady = Sched.Peak.Cache.stats t.steady_cache;
    stepup = Sched.Peak.Cache.stats t.stepup_cache;
  }

let sparse_response_stats t =
  match t.kind with
  | Dense -> None
  | Sparse ->
      if Lazy.is_val t.response then
        Some (Thermal.Sparse_response.stats (Lazy.force t.response))
      else None

let response_stats t = Thermal.Modal.stats (Lazy.force t.engine)

let hit_rate t =
  let s = stats t in
  let hits = s.steady.Sched.Peak.Cache.hits + s.stepup.Sched.Peak.Cache.hits in
  let total =
    hits + s.steady.Sched.Peak.Cache.misses + s.stepup.Sched.Peak.Cache.misses
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let clear t =
  Sched.Peak.Cache.clear t.steady_cache;
  Sched.Peak.Cache.clear t.stepup_cache
