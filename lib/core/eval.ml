[@@@fosc.digest_sensitive]

type t = {
  platform : Platform.t;
  pool : Util.Pool.t;
  steady_cache : Sched.Peak.Cache.t;
  stepup_cache : Sched.Peak.Cache.t;
  engine : Thermal.Modal.t Lazy.t;
      (* The platform's response engine.  [Thermal.Modal.make] memoizes
         per model, so forcing this returns the same engine every direct
         (eval-less) call resolves — all paths superpose over identical
         unit-response tables and stay bit-compatible. *)
}

type stats = {
  steady : Sched.Peak.Cache.stats;
  stepup : Sched.Peak.Cache.stats;
}

let create ?pool ?(cache_size = 1024) platform =
  let pool = match pool with Some p -> p | None -> Util.Pool.get () in
  {
    platform;
    pool;
    steady_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    stepup_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    engine = lazy (Thermal.Modal.make platform.Platform.model);
  }

let platform t = t.platform
let pool t = t.pool
let engine t = Lazy.force t.engine

let steady_peak t voltages =
  Sched.Peak.steady_constant_cached ~engine:(Lazy.force t.engine) t.steady_cache
    t.platform.Platform.model t.platform.Platform.power voltages

let step_up_peak t s =
  Sched.Peak.of_step_up_cached ~engine:(Lazy.force t.engine) t.stepup_cache
    t.platform.Platform.model t.platform.Platform.power s

let two_mode_peak t ~period ~low ~high ~high_ratio =
  Sched.Peak.of_two_mode_cached ~engine:(Lazy.force t.engine) t.stepup_cache
    t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
    ~high_ratio

let stats t =
  {
    steady = Sched.Peak.Cache.stats t.steady_cache;
    stepup = Sched.Peak.Cache.stats t.stepup_cache;
  }

let response_stats t = Thermal.Modal.stats (Lazy.force t.engine)

let hit_rate t =
  let s = stats t in
  let hits = s.steady.Sched.Peak.Cache.hits + s.stepup.Sched.Peak.Cache.hits in
  let total =
    hits + s.steady.Sched.Peak.Cache.misses + s.stepup.Sched.Peak.Cache.misses
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let clear t =
  Sched.Peak.Cache.clear t.steady_cache;
  Sched.Peak.Cache.clear t.stepup_cache
