[@@@fosc.digest_sensitive]

type backend_kind = Dense | Sparse

type t = {
  platform : Platform.t;
  pool : Util.Pool.t;
  steady_cache : Sched.Peak.Cache.t;
  stepup_cache : Sched.Peak.Cache.t;
  kind : backend_kind;
  engine : Thermal.Modal.t Lazy.t;
      (* The platform's response engine.  [Thermal.Modal.make] memoizes
         per model, so forcing this returns the same engine every direct
         (eval-less) call resolves — all paths superpose over identical
         unit-response tables and stay bit-compatible.  Never forced by a
         [Sparse] context's evaluators, so sparse solves skip the O(n³)
         eigensolve entirely. *)
  backend : Thermal.Backend.t Lazy.t;
      (* The uniform-interface view of whichever engine [kind] selects.
         For [Dense] this wraps the same modal engine as [engine]; for
         [Sparse] it assembles a Krylov engine from the model's spec on
         the context's pool. *)
}

type stats = {
  steady : Sched.Peak.Cache.stats;
  stepup : Sched.Peak.Cache.stats;
}

let create ?pool ?(cache_size = 1024) ?(backend = Dense) platform =
  let pool = match pool with Some p -> p | None -> Util.Pool.get () in
  {
    platform;
    pool;
    steady_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    stepup_cache = Sched.Peak.Cache.create ~max_entries:cache_size ();
    kind = backend;
    engine = lazy (Thermal.Modal.make platform.Platform.model);
    backend =
      (match backend with
      | Dense -> lazy (Thermal.Backend.of_model platform.Platform.model)
      | Sparse ->
          lazy (Thermal.Backend.sparse_of_model ~pool platform.Platform.model));
  }

let platform t = t.platform
let pool t = t.pool
let kind t = t.kind
let engine t = Lazy.force t.engine
let backend t = Lazy.force t.backend

let steady_peak t voltages =
  match t.kind with
  | Dense ->
      Sched.Peak.steady_constant_cached ~engine:(Lazy.force t.engine)
        t.steady_cache t.platform.Platform.model t.platform.Platform.power
        voltages
  | Sparse ->
      Sched.Peak.backend_steady_constant_cached t.steady_cache
        (Lazy.force t.backend) t.platform.Platform.power voltages

let step_up_peak t s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_step_up_cached ~engine:(Lazy.force t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_of_step_up_cached t.stepup_cache
        (Lazy.force t.backend) t.platform.Platform.power s

let two_mode_peak t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.of_two_mode_cached ~engine:(Lazy.force t.engine) t.stepup_cache
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.backend_of_two_mode_cached t.stepup_cache
        (Lazy.force t.backend) t.platform.Platform.power ~period ~low ~high
        ~high_ratio

let any_peak t ?(samples_per_segment = 32) s =
  match t.kind with
  | Dense ->
      Sched.Peak.of_any ~engine:(Lazy.force t.engine) t.platform.Platform.model
        t.platform.Platform.power ~samples_per_segment s
  | Sparse ->
      Sched.Peak.backend_of_any (Lazy.force t.backend)
        t.platform.Platform.power ~samples_per_segment s

let stable_end_core_temps t s =
  match t.kind with
  | Dense ->
      Sched.Peak.stable_end_core_temps ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power s
  | Sparse ->
      Sched.Peak.backend_stable_end_core_temps (Lazy.force t.backend)
        t.platform.Platform.power s

let two_mode_end_core_temps t ~period ~low ~high ~high_ratio =
  match t.kind with
  | Dense ->
      Sched.Peak.two_mode_end_core_temps ~engine:(Lazy.force t.engine)
        t.platform.Platform.model t.platform.Platform.power ~period ~low ~high
        ~high_ratio
  | Sparse ->
      Sched.Peak.backend_two_mode_end_core_temps (Lazy.force t.backend)
        t.platform.Platform.power ~period ~low ~high ~high_ratio

let stats t =
  {
    steady = Sched.Peak.Cache.stats t.steady_cache;
    stepup = Sched.Peak.Cache.stats t.stepup_cache;
  }

let response_stats t = Thermal.Modal.stats (Lazy.force t.engine)

let hit_rate t =
  let s = stats t in
  let hits = s.steady.Sched.Peak.Cache.hits + s.stepup.Sched.Peak.Cache.hits in
  let total =
    hits + s.steady.Sched.Peak.Cache.misses + s.stepup.Sched.Peak.Cache.misses
  in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let clear t =
  Sched.Peak.Cache.clear t.steady_cache;
  Sched.Peak.Cache.clear t.stepup_cache
