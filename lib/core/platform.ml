type t = {
  model : Thermal.Model.t;
  power : Power.Power_model.t;
  levels : Power.Vf.level_set;
  t_max : float;
  tau : float;
}

let make ?(power = Power.Power_model.default) ?(tau = 5e-6) ~levels ~t_max model =
  if t_max <= Thermal.Model.ambient model then
    invalid_arg "Platform.make: t_max must exceed the ambient temperature";
  if tau < 0. then invalid_arg "Platform.make: negative tau";
  { model; power; levels; t_max; tau }

let grid ?power ?tau ?(ambient = 35.) ~rows ~cols ~levels ~t_max () =
  let fp = Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3 in
  let beta =
    match power with Some pm -> pm.Power.Power_model.beta | None -> Power.Power_model.default.Power.Power_model.beta
  in
  let model = Thermal.Hotspot.core_level ~ambient ~leak_beta:beta fp in
  make ?power ?tau ~levels ~t_max model

let sheet ?power ?tau ?(ambient = 35.) ~rows ~cols ~levels ~t_max () =
  let beta =
    match power with Some pm -> pm.Power.Power_model.beta | None -> Power.Power_model.default.Power.Power_model.beta
  in
  let spec = Thermal.Grid_model.sheet_spec ~ambient ~leak_beta:beta ~rows ~cols () in
  make ?power ?tau ~levels ~t_max (Thermal.Spec.to_model spec)

let n_cores p = Thermal.Model.n_cores p.model

let feasible p =
  let v = Array.make (n_cores p) (Power.Vf.lowest p.levels) in
  Sched.Peak.steady_constant p.model p.power v <= p.t_max +. 1e-9
