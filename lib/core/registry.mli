(** The policy registry: every solver in the library as a first-class
    {!Solver.t}, in canonical order.

    This is the single list experiments ({!Exp_common.run_policies} via
    the comparison subset), the CLI ([fosc-experiments policies]),
    examples and benches iterate — adding a policy module plus one
    entry here makes it appear everywhere.  The [doc] strings are the
    source of truth for user-facing listings (the README's policy table
    is generated from them). *)

(** All registered policies.  Order is meaningful: the paper's
    comparison set first (LNS, EXS, AO, PCO — AO before PCO so a shared
    context lets PCO replay AO's search from cache), then the bounds and
    extensions (Ideal, TSP, Demand, Sprint). *)
val all : Solver.t list

(** [comparison ()] is the subset with [comparison = true] — the
    LNS/EXS/AO/PCO set of the paper's figures, in table order. *)
val comparison : unit -> Solver.t list

(** [names ()] lists the registered names in {!all} order. *)
val names : unit -> string list

(** [find name] looks a policy up by name. *)
val find : string -> Solver.t option

(** [find_exn name] is {!find} or [Invalid_argument] naming the known
    policies. *)
val find_exn : string -> Solver.t
