(** A temperature-constrained multi-core platform: the problem instance
    every policy consumes.

    Bundles the thermal compact model, the power model, the discrete DVFS
    level set, the peak-temperature threshold [T_max] and the DVFS
    transition stall [tau]. *)

type t = {
  model : Thermal.Model.t;
  power : Power.Power_model.t;
  levels : Power.Vf.level_set;
  t_max : float;  (** Peak-temperature threshold, degrees C (absolute). *)
  tau : float;  (** DVFS transition stall, seconds. *)
}

(** [make ?power ?tau ~levels ~t_max model] assembles a platform.
    Defaults: [power = Power.Power_model.default], [tau = 5e-6] (the
    paper's 5 us switching overhead).  Raises [Invalid_argument] when
    [t_max] does not exceed the model's ambient temperature or [tau] is
    negative. *)
val make :
  ?power:Power.Power_model.t ->
  ?tau:float ->
  levels:Power.Vf.level_set ->
  t_max:float ->
  Thermal.Model.t ->
  t

(** [grid ?power ?tau ?ambient ~rows ~cols ~levels ~t_max ()] builds the
    paper's standard platform: a [rows x cols] mesh of 4x4 mm^2 cores
    with the core-level HotSpot model.  The paper's configurations are
    1x2, 1x3, 2x3 and 3x3. *)
val grid :
  ?power:Power.Power_model.t ->
  ?tau:float ->
  ?ambient:float ->
  rows:int ->
  cols:int ->
  levels:Power.Vf.level_set ->
  t_max:float ->
  unit ->
  t

(** [sheet ?power ?tau ?ambient ~rows ~cols ~levels ~t_max ()] builds a
    many-core platform on the single-layer conduction sheet
    ({!Thermal.Grid_model.sheet_spec}): every cell is one core node, so
    an [8x8] grid is a 64-node problem — the scaling-study geometry the
    sparse backend and the response-engine search tiers are sized for,
    three times smaller than {!grid}'s core-level HotSpot stack at equal
    core count. *)
val sheet :
  ?power:Power.Power_model.t ->
  ?tau:float ->
  ?ambient:float ->
  rows:int ->
  cols:int ->
  levels:Power.Vf.level_set ->
  t_max:float ->
  unit ->
  t

(** [n_cores p] is the platform's core count. *)
val n_cores : t -> int

(** [feasible p] tests that running every core at the lowest level keeps
    the steady state below [t_max] — the minimum requirement for any
    always-on policy to exist. *)
val feasible : t -> bool
