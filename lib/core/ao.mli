(** AO — aligned oscillation, the paper's Algorithm 2.

    The pipeline: (1) the ideal continuous per-core voltage from
    [T^inf = T_max] ({!Ideal}); (2) the two *neighbouring* discrete modes
    around it with the duty ratio that preserves the ideal throughput
    (Eq. (11), justified by Theorems 3/4); (3) m-oscillation: shrink the
    base period by [m], which monotonically lowers the stable peak
    (Theorem 5), where [m] is swept up to the transition-overhead bound
    [M] (Section V) with each oscillation's high interval extended by
    [delta_i] to repay the DVFS stalls; (4) the TPT ratio-adjustment loop
    ({!Tpt}) to pull the remaining overshoot under [T_max].  Every
    candidate is a step-up schedule, so each peak evaluation is one
    end-of-period solve (Theorem 1). *)

type result = {
  config : Tpt.config;  (** Final two-mode mini-period configuration. *)
  schedule : Sched.Schedule.t;  (** Materialized mini-period schedule. *)
  m : int;  (** Chosen oscillation count. *)
  m_max : int;  (** The overhead bound [M] that capped the sweep. *)
  throughput : float;  (** Net of transition stalls. *)
  peak : float;  (** Stable-status peak temperature of [schedule]. *)
  ideal : Ideal.result;  (** The continuous assignment AO discretizes. *)
  adjustment_steps : int;  (** TPT exchanges performed. *)
}

(** [solve ?base_period ?m_cap ?t_unit ?fill platform] runs AO.

    - [base_period] is the m = 1 oscillation period (default 0.1 s —
      comparable to the platform's dominant thermal time constant, so the
      m sweep has dynamics to exploit);
    - [m_cap] additionally caps the sweep (default 512) to bound compute
      when [tau] is tiny and the paper's [M] is enormous;
    - [t_unit] is the TPT exchange quantum (default mini-period / 100);
    - [fill] (default [false], the paper's behaviour) also reclaims
      temperature headroom when the discretized schedule lands strictly
      below [T_max];
    - [adjust] selects the ratio-adjustment strategy: [`Greedy] (the
      paper's per-core TPT loop, default) or [`Bisection] (uniform
      scaling, fewer peak evaluations, possibly slightly lower
      throughput — see the ablations);
    - [par] (default [true]) evaluates the m sweep and the TPT candidate
      scans on the shared {!Util.Pool}; reductions stay sequential, so
      the result is identical at any pool size;
    - [eval] memoizes every cheap step-up peak evaluation in the shared
      context's schedule-keyed table ({!Tpt.peak}) — bit-identical
      results, large savings when searches revisit candidates or PCO
      re-runs AO on the same context. *)
val solve :
  ?eval:Eval.t ->
  ?base_period:float ->
  ?m_cap:int ->
  ?t_unit:float ->
  ?fill:bool ->
  ?adjust:[ `Greedy | `Bisection ] ->
  ?par:bool ->
  ?delta_margin:float ->
  Platform.t ->
  result

type Solver.details += Details of result

(** [policy] is AO's registry adapter: runs {!solve} on the context's
    platform (pool-parallel per [params], memoized through the context)
    and reports the delivered per-core speeds, schedule, throughput and
    peak — bit-identical to the direct {!solve} call it wraps. *)
val policy : Solver.t
