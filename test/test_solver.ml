(* Tests for the unified solver layer: the Eval context and its peak
   memo tables, the Solver/Registry adapters, and the parity guarantee —
   running a policy through its registry adapter (caches on, any pool
   size) returns bit-identical voltages and peaks to the direct typed
   solve. *)

module P = Core.Platform
module Solver = Core.Solver
module Eval = Core.Eval
module Cache = Sched.Peak.Cache

let platform3 () = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65.

let check_bits what a b =
  (* Exact IEEE-754 equality: memoization must never perturb a result. *)
  Alcotest.(check int64) what (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits_array what a b =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "%s.(%d)" what i) x b.(i)) a

let seq = { Solver.default_params with Solver.par = false }

(* ----------------------------------------------------- cache unit tests *)

let test_cache_hit_counters () =
  let cache = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 42. in
  let k = Cache.key_of_voltages [| 1.1; 0.9 |] in
  check_bits "first lookup computes" 42. (Cache.find_or_add cache k compute);
  check_bits "second lookup replays" 42. (Cache.find_or_add cache k compute);
  Alcotest.(check int) "computed once" 1 !calls;
  let s = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one entry" 1 s.Cache.entries;
  Alcotest.(check int) "no evictions" 0 s.Cache.evictions

let test_cache_eviction_fifo () =
  let cache = Cache.create ~max_entries:2 () in
  let key i = Cache.key_of_voltages [| float_of_int i |] in
  let probe i = Cache.find_or_add cache (key i) (fun () -> float_of_int i) in
  ignore (probe 0);
  ignore (probe 1);
  ignore (probe 2);
  (* Capacity 2 + three distinct keys: the oldest (0) was evicted. *)
  let s = Cache.stats cache in
  Alcotest.(check int) "bounded at capacity" 2 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  let calls = ref 0 in
  ignore (Cache.find_or_add cache (key 0) (fun () -> incr calls; 0.));
  Alcotest.(check int) "evicted key recomputes" 1 !calls;
  ignore (Cache.find_or_add cache (key 2) (fun () -> incr calls; 2.));
  Alcotest.(check int) "resident key still replays" 1 !calls

let test_cache_disabled_stores_nothing () =
  let cache = Cache.create ~max_entries:0 () in
  let k = Cache.key_of_voltages [| 1.3 |] in
  let calls = ref 0 in
  let compute () = incr calls; 7. in
  ignore (Cache.find_or_add cache k compute);
  ignore (Cache.find_or_add cache k compute);
  Alcotest.(check int) "every lookup recomputes" 2 !calls;
  let s = Cache.stats cache in
  Alcotest.(check int) "no entries" 0 s.Cache.entries;
  Alcotest.(check int) "all misses" 2 s.Cache.misses;
  Alcotest.(check int) "no hits" 0 s.Cache.hits

let test_cache_key_distinguishes_neg_zero () =
  (* -0. and +0. are distinct bit patterns but equal floats; the key
     must canonicalize so they share an entry. *)
  Alcotest.(check string)
    "-0. and +0. share a key"
    (Cache.key_of_voltages [| 0. |])
    (Cache.key_of_voltages [| -0. |]);
  Alcotest.(check bool)
    "nearby voltages do not collide" true
    (Cache.key_of_voltages [| 1.1 |]
    <> Cache.key_of_voltages [| Float.succ 1.1 |])

let test_eval_cached_peaks_match_direct () =
  let p = platform3 () in
  let ev = Eval.create p in
  let v = [| 1.1; 0.9; 1.2 |] in
  let direct = Sched.Peak.steady_constant p.P.model p.P.power v in
  check_bits "steady peak, cold" direct (Eval.steady_peak ev v);
  check_bits "steady peak, warm" direct (Eval.steady_peak ev v);
  let s =
    Sched.Schedule.two_mode ~period:0.1 ~low:[| 0.6; 0.6; 0.6 |]
      ~high:[| 1.3; 1.3; 1.3 |] ~high_ratio:[| 0.3; 0.5; 0.7 |]
  in
  let direct_s = Sched.Peak.of_step_up p.P.model p.P.power s in
  check_bits "step-up peak, cold" direct_s (Eval.step_up_peak ev s);
  check_bits "step-up peak, warm" direct_s (Eval.step_up_peak ev s);
  let st = Eval.stats ev in
  Alcotest.(check int) "steady hits" 1 st.Eval.steady.Cache.hits;
  Alcotest.(check int) "step-up hits" 1 st.Eval.stepup.Cache.hits

(* -------------------------------------------------------- registry shape *)

let test_registry_names_and_lookup () =
  Alcotest.(check (list string))
    "registry order"
    [ "lns"; "exs"; "ao"; "pco"; "ideal"; "tsp"; "demand"; "sprint" ]
    (Core.Registry.names ());
  Alcotest.(check (list string))
    "comparison subset" [ "lns"; "exs"; "ao"; "pco" ]
    (List.map
       (fun (p : Solver.t) -> p.Solver.name)
       (Core.Registry.comparison ()));
  Alcotest.(check bool) "find hit" true
    (Option.is_some (Core.Registry.find "ao"));
  Alcotest.(check bool) "find miss" true
    (Option.is_none (Core.Registry.find "nope"));
  Alcotest.(check bool) "find_exn miss raises" true
    (match Core.Registry.find_exn "nope" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_outcomes_populated () =
  let ev = Eval.create (platform3 ()) in
  List.iter
    (fun (pol : Solver.t) ->
      let o = Solver.run ~params:seq pol ev in
      Alcotest.(check bool)
        (pol.Solver.name ^ " voltages nonempty")
        true
        (Array.length o.Solver.voltages = 3);
      Alcotest.(check bool)
        (pol.Solver.name ^ " finite peak")
        true
        (Float.is_finite o.Solver.peak);
      Alcotest.(check bool)
        (pol.Solver.name ^ " wall time sane")
        true
        (o.Solver.wall_time >= 0.);
      Alcotest.(check bool)
        (pol.Solver.name ^ " details attached")
        true
        (o.Solver.details <> Solver.No_details))
    Core.Registry.all

(* ------------------------------------------------------ adapter parity *)

(* Each adapter must report exactly what the direct typed solve returns —
   same floats to the last bit — with caches on and at any pool size. *)

let parity_pools () = [ ("pool1", Util.Pool.create ~size:1 ()); ("pool4", Util.Pool.create ~size:4 ()) ]

let with_pools f =
  List.iter
    (fun (tag, pool) ->
      Fun.protect ~finally:(fun () -> Util.Pool.shutdown pool) (fun () -> f tag pool))
    (parity_pools ())

let test_parity_lns () =
  let p = platform3 () in
  let direct = Core.Lns.solve p in
  with_pools (fun tag pool ->
      let o = Solver.run (Core.Registry.find_exn "lns") (Eval.create ~pool p) in
      check_bits_array (tag ^ " voltages") direct.Core.Lns.voltages o.Solver.voltages;
      check_bits (tag ^ " peak") direct.Core.Lns.peak o.Solver.peak;
      check_bits (tag ^ " throughput") direct.Core.Lns.throughput o.Solver.throughput)

let test_parity_exs () =
  let p = platform3 () in
  let direct = Core.Exs.solve p in
  with_pools (fun tag pool ->
      let seq_o = Solver.run ~params:seq (Core.Registry.find_exn "exs") (Eval.create ~pool p) in
      check_bits_array (tag ^ " seq voltages") direct.Core.Exs.voltages
        seq_o.Solver.voltages;
      check_bits (tag ^ " seq peak") direct.Core.Exs.peak seq_o.Solver.peak;
      Alcotest.(check int)
        (tag ^ " seq evaluations") direct.Core.Exs.evaluated seq_o.Solver.evaluations;
      let par_o = Solver.run (Core.Registry.find_exn "exs") (Eval.create ~pool p) in
      check_bits_array (tag ^ " par voltages")
        (Core.Exs.solve_par ~pool p).Core.Exs.voltages par_o.Solver.voltages;
      check_bits (tag ^ " par peak") direct.Core.Exs.peak par_o.Solver.peak)

let test_parity_ao () =
  let p = platform3 () in
  (* AO's parallel path always uses the shared global pool; the pool
     determinism guarantee (bit-identical at any size) lets us compare
     against adapters driven through explicitly sized pools anyway. *)
  let direct = Core.Ao.solve p in
  with_pools (fun tag pool ->
      let o = Solver.run (Core.Registry.find_exn "ao") (Eval.create ~pool p) in
      check_bits (tag ^ " throughput") direct.Core.Ao.throughput o.Solver.throughput;
      check_bits (tag ^ " peak") direct.Core.Ao.peak o.Solver.peak;
      check_bits_array (tag ^ " delivered speeds")
        (Solver.delivered_speeds p direct.Core.Ao.schedule)
        o.Solver.voltages;
      match (o.Solver.schedule, o.Solver.details) with
      | Some s, Core.Ao.Details r ->
          Alcotest.(check int) (tag ^ " m") direct.Core.Ao.m r.Core.Ao.m;
          check_bits (tag ^ " schedule period") (Sched.Schedule.period direct.Core.Ao.schedule)
            (Sched.Schedule.period s)
      | _ -> Alcotest.fail (tag ^ ": AO adapter lost schedule or details"))

let test_parity_pco () =
  let p = platform3 () in
  let direct = Core.Pco.solve p in
  with_pools (fun tag pool ->
      let o = Solver.run (Core.Registry.find_exn "pco") (Eval.create ~pool p) in
      check_bits (tag ^ " throughput") direct.Core.Pco.throughput o.Solver.throughput;
      check_bits (tag ^ " peak") direct.Core.Pco.peak o.Solver.peak)

let test_parity_ideal () =
  let p = platform3 () in
  let direct = Core.Ideal.solve p in
  let o = Solver.run (Core.Registry.find_exn "ideal") (Eval.create p) in
  check_bits_array "voltages" direct.Core.Ideal.voltages o.Solver.voltages;
  check_bits "throughput" direct.Core.Ideal.throughput o.Solver.throughput;
  check_bits "peak"
    (Sched.Peak.steady_constant p.P.model p.P.power direct.Core.Ideal.voltages)
    o.Solver.peak

let test_parity_tsp () =
  let p = platform3 () in
  let direct = Core.Tsp.solve p in
  let o = Solver.run (Core.Registry.find_exn "tsp") (Eval.create p) in
  check_bits_array "voltages" direct.Core.Tsp.voltages o.Solver.voltages;
  check_bits "peak" direct.Core.Tsp.peak o.Solver.peak

let test_parity_demand () =
  let p = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:60. in
  let demands = [| 1.0; 0.9; 0.8 |] in
  let direct = Core.Demand.solve p ~demands in
  with_pools (fun tag pool ->
      let o =
        Solver.run
          ~params:{ Solver.default_params with Solver.par = true; demands = Some demands }
          (Core.Registry.find_exn "demand") (Eval.create ~pool p)
      in
      check_bits (tag ^ " peak") direct.Core.Demand.peak o.Solver.peak;
      check_bits_array (tag ^ " delivered") direct.Core.Demand.delivered
        o.Solver.voltages)

let test_parity_sprint () =
  let p = platform3 () in
  let direct = Core.Sprint.plan p in
  with_pools (fun tag pool ->
      let o = Solver.run (Core.Registry.find_exn "sprint") (Eval.create ~pool p) in
      check_bits (tag ^ " sustained throughput")
        direct.Core.Sprint.steady.Core.Ao.throughput o.Solver.throughput;
      check_bits (tag ^ " sustained peak") direct.Core.Sprint.steady.Core.Ao.peak
        o.Solver.peak)

(* ------------------------------------------- cache transparency (QCheck) *)

(* On random platform shapes, every registry policy must return the same
   peak and voltages with memoization on (default) and off
   (cache_size 0): the cache may only change speed, never answers. *)
let prop_cache_transparent =
  let gen =
    QCheck.make
      ~print:(fun (cores, levels, t_max) ->
        Printf.sprintf "cores=%d levels=%d t_max=%.1f" cores levels t_max)
      QCheck.Gen.(
        triple (oneofl [ 2; 3 ]) (int_range 2 4)
          (map (fun i -> 55. +. (5. *. float_of_int i)) (int_range 0 3)))
  in
  QCheck.Test.make ~count:6 ~name:"cache on/off: identical peaks and voltages" gen
    (fun (cores, levels, t_max) ->
      let p = Workload.Configs.platform ~cores ~levels ~t_max in
      List.for_all
        (fun (pol : Solver.t) ->
          let cached = Solver.run ~params:seq pol (Eval.create p) in
          let uncached = Solver.run ~params:seq pol (Eval.create ~cache_size:0 p) in
          Int64.bits_of_float cached.Solver.peak
          = Int64.bits_of_float uncached.Solver.peak
          && Array.for_all2
               (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
               cached.Solver.voltages uncached.Solver.voltages)
        Core.Registry.all)

(* ------------------------------------------------- shared-context payoff *)

let test_warm_context_hits () =
  (* The acceptance scenario: run the comparison sweep twice through one
     context.  The second (warm) pass must replay from the memo tables. *)
  let ev = Eval.create (Workload.Configs.platform ~cores:3 ~levels:3 ~t_max:65.) in
  let cold = Experiments.Exp_common.run_policies ~eval:ev ~cores:3 ~levels:3 ~t_max:65. () in
  let cold_hit_rate = Eval.hit_rate ev in
  let warm = Experiments.Exp_common.run_policies ~eval:ev ~cores:3 ~levels:3 ~t_max:65. () in
  let st = Eval.stats ev in
  Alcotest.(check bool) "warm pass produced hits" true (Eval.hit_rate ev > cold_hit_rate);
  Alcotest.(check bool)
    "memo tables populated" true
    (st.Eval.steady.Cache.entries + st.Eval.stepup.Cache.entries > 0);
  (* And warming must not change any answer. *)
  check_bits "lns stable" cold.Experiments.Exp_common.lns warm.Experiments.Exp_common.lns;
  check_bits "exs stable" cold.Experiments.Exp_common.exs warm.Experiments.Exp_common.exs;
  check_bits "ao stable" cold.Experiments.Exp_common.ao warm.Experiments.Exp_common.ao;
  check_bits "pco stable" cold.Experiments.Exp_common.pco warm.Experiments.Exp_common.pco

let () =
  Alcotest.run "solver"
    [
      ( "cache",
        [
          Alcotest.test_case "hit counters" `Quick test_cache_hit_counters;
          Alcotest.test_case "FIFO eviction at capacity" `Quick test_cache_eviction_fifo;
          Alcotest.test_case "size 0 disables storage" `Quick
            test_cache_disabled_stores_nothing;
          Alcotest.test_case "key canonicalization" `Quick
            test_cache_key_distinguishes_neg_zero;
          Alcotest.test_case "Eval peaks match direct" `Quick
            test_eval_cached_peaks_match_direct;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names and lookup" `Quick test_registry_names_and_lookup;
          Alcotest.test_case "outcomes populated" `Slow test_outcomes_populated;
        ] );
      ( "parity",
        [
          Alcotest.test_case "lns" `Quick test_parity_lns;
          Alcotest.test_case "exs" `Slow test_parity_exs;
          Alcotest.test_case "ao" `Slow test_parity_ao;
          Alcotest.test_case "pco" `Slow test_parity_pco;
          Alcotest.test_case "ideal" `Quick test_parity_ideal;
          Alcotest.test_case "tsp" `Quick test_parity_tsp;
          Alcotest.test_case "demand" `Slow test_parity_demand;
          Alcotest.test_case "sprint" `Slow test_parity_sprint;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_cache_transparent ] );
      ( "payoff",
        [ Alcotest.test_case "warm context replays" `Slow test_warm_context_hits ] );
    ]
