(* Differential tests for the linear-response superposition engine: the
   unit-response tables, the streaming stable-status path and the
   constant-voltage superposition must agree with the LU-backed
   reference evaluators to <= 1e-9 on random platforms, and the
   per-domain scratch must neither contend (pool sizes 1 and 4 give
   bit-identical answers) nor cross-contaminate between engines. *)

module Vec = Linalg.Vec
module Model = Thermal.Model
module Modal = Thermal.Modal
module Matex = Thermal.Matex

let model_a =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let model_b =
  Thermal.Hotspot.core_level ~ambient:45.
    (Thermal.Floorplan.grid ~rows:2 ~cols:2 ~core_width:3e-3 ~core_height:3e-3)

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

(* A random small platform: varied geometry AND varied ambient,
   including ambients below 0 C (negative ambient offsets) — the
   superposition folds the leakage drive beta*T_amb into every
   coefficient, so ambient handling is exactly what this suite must
   stress. *)
let random_model rng =
  let rows = 1 + Random.State.int rng 2 in
  let cols = 1 + Random.State.int rng 3 in
  let ambient = -10. +. Random.State.float rng 70. in
  let leak_beta = Random.State.float rng 0.1 in
  Thermal.Hotspot.core_level ~ambient ~leak_beta
    (Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3)

(* Random power vector with deliberate zeros (inactive cores). *)
let random_psi rng n =
  Array.init n (fun _ ->
      if Random.State.float rng 1. < 0.3 then 0.
      else Random.State.float rng 20.)

let random_profile rng model =
  let n = Model.n_cores model in
  let n_segs = 1 + Random.State.int rng 6 in
  List.init n_segs (fun _ ->
      {
        Thermal.Matex.duration = 0.01 +. Random.State.float rng 0.5;
        psi = random_psi rng n;
      })

(* ------------------------------------------- superposition vs LU path *)

let prop_z_inf_matches_lu =
  QCheck.Test.make ~name:"z_inf superposition = W^-1 theta_inf (LU)"
    ~count:100 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Modal.make model in
      let psi = random_psi rng (Model.n_cores model) in
      let superposed = Modal.z_inf eng psi in
      let lu = Modal.to_modal eng (Model.theta_inf model psi) in
      Vec.dist_inf superposed lu <= 1e-9)

let prop_steady_peak_matches_lu =
  QCheck.Test.make ~name:"steady_peak superposition = max steady_core_temps (LU)"
    ~count:100 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Modal.make model in
      let psi = random_psi rng (Model.n_cores model) in
      Float.abs
        (Modal.steady_peak eng psi -. Vec.max (Model.steady_core_temps model psi))
      <= 1e-9)

let prop_streamed_stable_matches_lu =
  QCheck.Test.make ~name:"streamed stable status = Reference.stable_start (LU)"
    ~count:60 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let profile = random_profile rng model in
      let streamed = Matex.stable_core_temps model profile in
      let reference =
        Model.core_temps_of_theta model (Matex.Reference.stable_start model profile)
      in
      Vec.dist_inf streamed reference <= 1e-9)

let prop_end_of_period_peak_matches_lu =
  QCheck.Test.make ~name:"end_of_period_peak = LU stable-start peak"
    ~count:60 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let profile = random_profile rng model in
      let streamed = Matex.end_of_period_peak model profile in
      let reference =
        Model.max_core_temp model (Matex.Reference.stable_start model profile)
      in
      Float.abs (streamed -. reference) <= 1e-9)

(* ---------------------------------------------- pool-size invariance *)

(* The streaming path keeps all its state in per-domain scratch; fanning
   a batch of candidates across pools of different sizes must return
   bit-identical floats in index order. *)
let test_pool_size_invariance () =
  let rng = Random.State.make [| 2024 |] in
  let profiles = Array.init 24 (fun _ -> random_profile rng model_a) in
  let eval pool =
    Util.Pool.init ~pool (Array.length profiles) (fun i ->
        Matex.end_of_period_peak model_a profiles.(i))
  in
  let p1 = Util.Pool.create ~size:1 () in
  let p4 = Util.Pool.create ~size:4 () in
  let r1 = eval p1 and r4 = eval p4 in
  Array.iteri
    (fun i v1 ->
      Alcotest.(check bool)
        (Printf.sprintf "candidate %d bit-identical at pool sizes 1 and 4" i)
        true
        (Int64.bits_of_float v1 = Int64.bits_of_float r4.(i)))
    r1

(* ----------------------------------------------- engine independence *)

let test_engine_identity () =
  Alcotest.(check bool) "make memoizes per model" true
    (Modal.make model_a == Modal.make model_a);
  Alcotest.(check bool) "distinct models get distinct engines" true
    (Modal.make model_a != Modal.make model_b)

(* Interleaving a streaming evaluation on one engine with complete
   evaluations on another must not disturb the first: each engine owns
   its per-domain scratch. *)
let test_no_cross_contamination () =
  let rng = Random.State.make [| 7 |] in
  let profile_a = random_profile rng model_a in
  let profile_b = random_profile rng model_b in
  let eng_a = Modal.make model_a in
  let expected_a = Matex.end_of_period_peak model_a profile_a in
  (* Replay profile_a through the streaming API by hand, running full
     evaluations on model_b between every feed. *)
  Modal.stable_begin eng_a;
  let t_p =
    List.fold_left
      (fun acc (s : Matex.segment) ->
        ignore (Matex.end_of_period_peak model_b profile_b);
        Modal.stable_feed eng_a ~duration:s.duration ~psi:s.psi;
        acc +. s.duration)
      0. profile_a
  in
  let interleaved = Modal.max_core_temp eng_a (Modal.stable_solve eng_a ~t_p) in
  Alcotest.(check bool) "interleaved streaming bit-identical" true
    (Int64.bits_of_float interleaved = Int64.bits_of_float expected_a);
  (* And the other platform still answers correctly afterwards. *)
  let b_now = Matex.end_of_period_peak model_b profile_b in
  let b_ref =
    Model.max_core_temp model_b (Matex.Reference.stable_start model_b profile_b)
  in
  Alcotest.(check bool) "other platform undisturbed" true
    (Float.abs (b_now -. b_ref) <= 1e-9)

(* -------------------------------------------------- stats observability *)

let test_stats_observable () =
  let eng = Modal.make model_a in
  let before = Modal.stats eng in
  Alcotest.(check bool) "at least one engine built" true (before.Modal.builds >= 1);
  let rng = Random.State.make [| 11 |] in
  let profile = random_profile rng model_a in
  ignore (Matex.end_of_period_peak model_a profile);
  let mid = Modal.stats eng in
  Alcotest.(check bool) "superposition evaluations counted" true
    (mid.Modal.superpose_evals > before.Modal.superpose_evals);
  (* Re-evaluating the same profile reuses the same durations: every
     decay/gain lookup after the first pass hits the table. *)
  ignore (Matex.end_of_period_peak model_a profile);
  let after = Modal.stats eng in
  Alcotest.(check bool) "decay-table hits grow on repeated durations" true
    (after.Modal.exp_hits > mid.Modal.exp_hits);
  Alcotest.(check bool) "no new decay-table misses for repeated durations" true
    (after.Modal.exp_misses = mid.Modal.exp_misses)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "response"
    [
      qsuite "superposition vs LU"
        [
          prop_z_inf_matches_lu;
          prop_steady_peak_matches_lu;
          prop_streamed_stable_matches_lu;
          prop_end_of_period_peak_matches_lu;
        ];
      ( "domains",
        [
          Alcotest.test_case "pool sizes 1 and 4 bit-identical" `Quick
            test_pool_size_invariance;
          Alcotest.test_case "engine identity" `Quick test_engine_identity;
          Alcotest.test_case "no cross-contamination" `Quick
            test_no_cross_contamination;
        ] );
      ( "stats",
        [ Alcotest.test_case "counters observable" `Quick test_stats_observable ] );
    ]
