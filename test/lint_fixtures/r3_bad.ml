(* R3 fixture: two findings.  Parsed by fosc-lint, never compiled. *)

let bad1 x = Obj.magic x
let bad2 x = Obj.repr x

let ok x = Fun.id x
