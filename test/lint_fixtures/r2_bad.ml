(* R2 fixture (linted with --scope lib): each [badN] binding must
   produce exactly one R2 finding.  Parsed by fosc-lint, never
   compiled. *)

type box = { mutable contents : int; tag : string }

let bad1 = Hashtbl.create 16
let bad2 = ref 0
let bad3 = [| 1.0; 2.0 |]
let bad4 = { contents = 3; tag = "shared" }
let bad5 = (Queue.create () [@fosc.guarded "spinlock"])

(* Clean: inherently guarded, waived, or per-call. *)
let ok1 = Atomic.make 0
let ok2 = Mutex.create ()
let ok3 = (ref 0 [@fosc.unguarded "fixture: never shared"])
let ok4 () = Hashtbl.create 16
let ok5 = 42
