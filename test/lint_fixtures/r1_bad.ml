(* R1 fixture: each [badN] line must produce exactly one R1 finding.
   Parsed by fosc-lint, never compiled. *)

type sample = { duration : float; weight : int }

let bad1 s = s.duration = 0.
let bad2 a b = compare (a +. 1.) b
let bad3 (x : float) y = max x y
let bad4 xs = min (List.hd xs) 1.0
let bad5 s = Hashtbl.hash s.duration
let bad6 xs = List.sort compare (xs : float list)
let bad7 v xs = List.mem (v *. 2.) xs
let bad8 (a : sample) b = a = b

(* Clean for contrast: no float evidence, or typed comparators. *)
let ok1 a b = String.equal a b
let ok2 s = Float.compare s.duration 0.
let ok3 (a : int) b = a = b
let ok4 s = s.weight = 3
