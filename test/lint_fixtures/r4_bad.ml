(* R4 fixture (linted with --scope lib): four findings.  Parsed by
   fosc-lint, never compiled. *)

let bad1 () = Unix.gettimeofday ()
let bad2 () = Sys.time ()
let bad3 () = Random.self_init ()
let bad4 n = Random.int n

(* Clean: explicit state, or waived. *)
let ok1 st n = Random.State.int st n
let ok2 () = (Unix.gettimeofday () [@fosc.nondeterministic "fixture"])
