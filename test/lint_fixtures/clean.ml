(* Clean fixture: zero findings even with --scope lib.  Parsed by
   fosc-lint, never compiled. *)

type vec = { x : float; y : float }

let norm v = Float.sqrt ((v.x *. v.x) +. (v.y *. v.y))
let equal a b = Float.equal a.x b.x && Float.equal a.y b.y
let names = [ "steady"; "oscillating" ]
let has name = List.mem name names
let counter = Atomic.make 0
