(* R5 fixture: the module opts in as digest-sensitive; four findings
   (the two-conversion format string counts twice).  Parsed by
   fosc-lint, never compiled. *)

[@@@fosc.digest_sensitive]

let bad1 v = string_of_float v
let bad2 v = Printf.sprintf "%f,%e" v v
let bad3 v = Printf.sprintf "%g" v

(* Clean: bit-exact or fixed-precision formatting. *)
let ok1 v = Printf.sprintf "%h" v
let ok2 v = Printf.sprintf "%.17g" v
let ok3 v = Printf.sprintf "%d%%" v
