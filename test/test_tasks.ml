(* Tests for the real-time task layer (Task / Partition / Feasibility)
   and the dual-problem solver Core.Demand. *)

let check_close tol = Alcotest.(check (float tol))

let task name wcet period = Tasks.Task.make ~name ~wcet ~period
let platform () = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:60.

(* ----------------------------------------------------------------- task *)

let test_task_basics () =
  let t = task "a" 2. 10. in
  check_close 1e-12 "utilization" 0.2 (Tasks.Task.utilization t);
  let scaled = Tasks.Task.scale 3. t in
  check_close 1e-12 "scaled utilization" 0.6 (Tasks.Task.utilization scaled);
  Alcotest.(check bool) "bad wcet rejected" true
    (match Tasks.Task.make ~name:"x" ~wcet:0. ~period:1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad scale rejected" true
    (match Tasks.Task.scale 0. t with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------ partition *)

let test_ffd_packs () =
  let tasks = [ task "a" 5. 10.; task "b" 5. 10.; task "c" 5. 10. ] in
  match Tasks.Partition.first_fit_decreasing ~n_cores:2 ~capacity:1. tasks with
  | None -> Alcotest.fail "expected a packing"
  | Some a ->
      let u = Tasks.Partition.utilizations a in
      Alcotest.(check bool) "no bin over capacity" true
        (Array.for_all (fun x -> x <= 1. +. 1e-12) u);
      check_close 1e-12 "all work placed" 1.5 (Array.fold_left ( +. ) 0. u)

let test_ffd_rejects_oversized () =
  Alcotest.(check bool) "oversized task fails" true
    (Option.is_none
       (Tasks.Partition.first_fit_decreasing ~n_cores:4 ~capacity:1.
          [ task "huge" 3. 2. ]))

let test_ffd_capacity_exhausted () =
  (* Three 0.6 tasks cannot fit on two unit-capacity cores in FFD. *)
  let tasks = [ task "a" 6. 10.; task "b" 6. 10.; task "c" 6. 10. ] in
  Alcotest.(check bool) "packing fails" true
    (Option.is_none
       (Tasks.Partition.first_fit_decreasing ~n_cores:2 ~capacity:1. tasks))

let test_wfd_balances () =
  let tasks =
    [ task "a" 4. 10.; task "b" 3. 10.; task "c" 2. 10.; task "d" 1. 10. ]
  in
  let ffd =
    Option.get (Tasks.Partition.first_fit_decreasing ~n_cores:2 ~capacity:1. tasks)
  in
  let wfd =
    Option.get (Tasks.Partition.worst_fit_decreasing ~n_cores:2 ~capacity:1. tasks)
  in
  Alcotest.(check bool) "worst-fit at least as balanced" true
    (Tasks.Partition.balance wfd <= Tasks.Partition.balance ffd +. 1e-12);
  check_close 1e-12 "wfd perfectly balances this set" 0. (Tasks.Partition.balance wfd)

let test_partition_validation () =
  Alcotest.(check bool) "zero cores rejected" true
    (match Tasks.Partition.first_fit_decreasing ~n_cores:0 ~capacity:1. [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --------------------------------------------------------------- demand *)

let test_demand_low_is_feasible () =
  let p = platform () in
  let r = Core.Demand.solve p ~demands:[| 0.7; 0.7; 0.7 |] in
  Alcotest.(check bool) "feasible" true r.Core.Demand.feasible;
  Alcotest.(check bool) "margin positive" true (r.Core.Demand.margin > 0.);
  Array.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d delivers its demand" i)
        true
        (d +. 1e-6 >= 0.7))
    r.Core.Demand.delivered

let test_demand_max_is_infeasible () =
  let p = platform () in
  let r = Core.Demand.solve p ~demands:[| 1.3; 1.3; 1.3 |] in
  Alcotest.(check bool) "all-max infeasible at 60C" false r.Core.Demand.feasible;
  Alcotest.(check bool) "margin negative" true (r.Core.Demand.margin < 0.)

let test_demand_monotone_in_demand () =
  let p = platform () in
  let peak d = (Core.Demand.solve p ~demands:(Array.make 3 d)).Core.Demand.peak in
  Alcotest.(check bool) "higher demand, hotter" true (peak 1.1 > peak 0.8)

let test_demand_under_vmin_overprovisions () =
  let p = platform () in
  let r = Core.Demand.solve p ~demands:[| 0.1; 0.; 0.3 |] in
  Alcotest.(check bool) "feasible" true r.Core.Demand.feasible;
  Array.iter
    (fun d -> check_close 1e-9 "served at v_min" 0.6 d)
    r.Core.Demand.delivered

let test_demand_validation () =
  let p = platform () in
  Alcotest.(check bool) "arity checked" true
    (match Core.Demand.solve p ~demands:[| 1. |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "range checked" true
    (match Core.Demand.solve p ~demands:[| 1.4; 1.; 1. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_demand_schedule_verified () =
  let p = platform () in
  let r = Core.Demand.solve p ~demands:[| 1.0; 0.9; 0.8 |] in
  let scan =
    Sched.Peak.of_any_refined p.Core.Platform.model p.Core.Platform.power
      ~samples_per_segment:32 r.Core.Demand.schedule
  in
  check_close 0.05 "reported peak matches refined scan" r.Core.Demand.peak scan

(* ---------------------------------------------------------- feasibility *)

let taskset =
  [
    task "a" 6.0e-3 16.7e-3;
    task "b" 1.2e-3 5.0e-3;
    task "c" 2.5e-3 10.0e-3;
    task "d" 1.5e-3 2.5e-3;
    task "e" 8.0e-3 33.3e-3;
  ]

let test_feasibility_pipeline () =
  match Tasks.Feasibility.schedule_tasks (platform ()) taskset with
  | None -> Alcotest.fail "packing should succeed"
  | Some v ->
      Alcotest.(check bool) "modest set schedulable" true v.Tasks.Feasibility.schedulable;
      let total_demand = Array.fold_left ( +. ) 0. v.Tasks.Feasibility.demands in
      let total_u =
        List.fold_left (fun u t -> u +. Tasks.Task.utilization t) 0. taskset
      in
      check_close 1e-9 "demands = utilizations" total_u total_demand

let test_capacity_factor_brackets () =
  let p = platform () in
  let f = Tasks.Feasibility.capacity_factor ~tol:1e-2 p taskset in
  Alcotest.(check bool) "capacity factor positive" true (f > 0.5);
  (* Below the factor: schedulable; well above: not. *)
  let at g =
    match Tasks.Feasibility.schedule_tasks p (List.map (Tasks.Task.scale g) taskset) with
    | Some v -> v.Tasks.Feasibility.schedulable
    | None -> false
  in
  Alcotest.(check bool) "below capacity ok" true (at (f *. 0.9));
  Alcotest.(check bool) "above capacity fails" false (at (f *. 1.1))

let test_worst_fit_capacity_at_least_first_fit () =
  let p = platform () in
  let wfd = Tasks.Feasibility.capacity_factor ~tol:1e-2 p taskset in
  let ffd = Tasks.Feasibility.capacity_factor ~strategy:`First_fit ~tol:1e-2 p taskset in
  Alcotest.(check bool) "balanced packing never loses capacity" true (wfd >= ffd -. 1e-2)

let () =
  Alcotest.run "tasks"
    [
      ("task", [ Alcotest.test_case "basics" `Quick test_task_basics ]);
      ( "partition",
        [
          Alcotest.test_case "ffd packs" `Quick test_ffd_packs;
          Alcotest.test_case "ffd rejects oversized" `Quick test_ffd_rejects_oversized;
          Alcotest.test_case "ffd capacity exhausted" `Quick test_ffd_capacity_exhausted;
          Alcotest.test_case "wfd balances" `Quick test_wfd_balances;
          Alcotest.test_case "validation" `Quick test_partition_validation;
        ] );
      ( "demand",
        [
          Alcotest.test_case "low demand feasible" `Quick test_demand_low_is_feasible;
          Alcotest.test_case "max demand infeasible" `Quick test_demand_max_is_infeasible;
          Alcotest.test_case "monotone" `Quick test_demand_monotone_in_demand;
          Alcotest.test_case "over-provisioning" `Quick test_demand_under_vmin_overprovisions;
          Alcotest.test_case "validation" `Quick test_demand_validation;
          Alcotest.test_case "schedule verified" `Quick test_demand_schedule_verified;
        ] );
      ( "feasibility",
        [
          Alcotest.test_case "pipeline" `Quick test_feasibility_pipeline;
          Alcotest.test_case "capacity brackets" `Slow test_capacity_factor_brackets;
          Alcotest.test_case "wfd >= ffd capacity" `Slow
            test_worst_fit_capacity_at_least_first_fit;
        ] );
    ]
