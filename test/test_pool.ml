(* Property and concurrency tests for the persistent domain pool
   (Util.Pool): sequential equivalence (order, exceptions, edge sizes),
   nested-submission safety, shutdown behaviour and the FOSC_DOMAINS
   override.  The machine running the tests may have a single core, so
   every parallel case forces a multi-domain pool explicitly. *)

(* Force the shared pool to 4 participants regardless of the host's core
   count, before anything touches it (the lazy global reads the
   environment on first use).  This makes the legacy Parallel shim and
   the policy solvers in this executable exercise real worker domains. *)
let () = Unix.putenv "FOSC_DOMAINS" "4"

let pool4 = Util.Pool.create ~size:4 ()
let () = at_exit (fun () -> Util.Pool.shutdown pool4)

exception Boom of int

let square_plus_one x = (x * x) + 1

let test_map_matches_sequential () =
  let xs = List.init 57 (fun i -> i) in
  Alcotest.(check (list int))
    "same results, same order"
    (List.map square_plus_one xs)
    (Util.Pool.map ~pool:pool4 square_plus_one xs);
  let arr = Array.init 57 (fun i -> i) in
  Alcotest.(check (array int))
    "map_array agrees"
    (Array.map square_plus_one arr)
    (Util.Pool.map_array ~pool:pool4 square_plus_one arr);
  Alcotest.(check (array int))
    "init agrees"
    (Array.init 57 square_plus_one)
    (Util.Pool.init ~pool:pool4 57 square_plus_one);
  Alcotest.(check (list int))
    "chunked claiming agrees"
    (List.map square_plus_one xs)
    (Util.Pool.map ~pool:pool4 ~chunk:8 square_plus_one xs)

let test_edge_sizes () =
  Alcotest.(check (list int)) "empty input" []
    (Util.Pool.map ~pool:pool4 square_plus_one []);
  Alcotest.(check (list int)) "singleton" [ 26 ]
    (Util.Pool.map ~pool:pool4 square_plus_one [ 5 ]);
  (* Fewer items than workers: every item still runs exactly once. *)
  let wide = Util.Pool.create ~size:8 () in
  Alcotest.(check (list int)) "n < workers" [ 2; 5; 10 ]
    (Util.Pool.map ~pool:wide square_plus_one [ 1; 2; 3 ]);
  Util.Pool.shutdown wide;
  Alcotest.(check bool) "size 0 rejected" true
    (match Util.Pool.create ~size:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_exceptions_first_in_order () =
  (* Several tasks raise; the submitter must re-raise the first one in
     list order (what the sequential fallback would have raised), even
     though a later raiser may finish first on another domain. *)
  let f x = if x mod 3 = 0 then raise (Boom x) else x in
  Alcotest.(check bool) "first raiser in order wins" true
    (match Util.Pool.map ~pool:pool4 f (List.init 20 (fun i -> i + 1)) with
    | exception Boom 3 -> true
    | exception _ -> false
    | _ -> false);
  Alcotest.(check bool) "sequential fallback raises the same" true
    (match List.map f (List.init 20 (fun i -> i + 1)) with
    | exception Boom 3 -> true
    | exception _ -> false
    | _ -> false)

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Pool.map f xs = List.map f xs at any pool size"
    ~count:60
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (xs, size) ->
      let pool = Util.Pool.create ~size () in
      let got = Util.Pool.map ~pool square_plus_one xs in
      Util.Pool.shutdown pool;
      got = List.map square_plus_one xs)

let prop_map_exception_matches_list_map =
  QCheck.Test.make ~name:"Pool.map raises what List.map raises" ~count:60
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (xs, size) ->
      let f x = if x mod 2 = 0 then raise (Boom x) else x in
      let pool = Util.Pool.create ~size () in
      let outcome g = match g () with
        | ys -> Ok ys
        | exception Boom x -> Error x
      in
      let got = outcome (fun () -> Util.Pool.map ~pool f xs) in
      Util.Pool.shutdown pool;
      got = outcome (fun () -> List.map f xs))

let test_nested_submission_inline () =
  (* A task that maps over the same pool must neither deadlock nor fan
     out further: the inner map runs inline on the submitting task's
     domain (observable via Domain.self), so a fleet of outer tasks
     cannot oversubscribe the machine. *)
  let results =
    Util.Pool.map ~pool:pool4
      (fun outer ->
        let self = Domain.self () in
        let inner =
          Util.Pool.map ~pool:pool4
            (fun x -> (Domain.self (), x * x))
            (List.init 10 (fun i -> i))
        in
        (outer, self, inner))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "all outer tasks completed" 4 (List.length results);
  List.iter
    (fun (_, self, inner) ->
      Alcotest.(check bool) "inner tasks ran on the submitting domain" true
        (List.for_all (fun (d, _) -> d = self) inner);
      Alcotest.(check (list int)) "inner values correct"
        (List.init 10 (fun i -> i * i))
        (List.map snd inner))
    results

let test_nested_global_pool () =
  (* The experiment-sweep shape: Parallel.map (global pool) over
     platforms whose policy solvers submit to the same global pool. *)
  let results =
    Util.Parallel.map
      (fun cores ->
        let p = Workload.Configs.platform ~cores ~levels:2 ~t_max:60. in
        (Core.Ao.solve p).Core.Ao.throughput)
      [ 2; 3; 2; 3 ]
  in
  Alcotest.(check int) "all results back" 4 (List.length results);
  Alcotest.(check bool) "repeat configs agree" true
    (List.nth results 0 = List.nth results 2
    && List.nth results 1 = List.nth results 3)

let test_shutdown_degrades_to_sequential () =
  let pool = Util.Pool.create ~size:4 () in
  let xs = List.init 12 (fun i -> i) in
  Alcotest.(check (list int)) "before shutdown"
    (List.map square_plus_one xs)
    (Util.Pool.map ~pool square_plus_one xs);
  Util.Pool.shutdown pool;
  Alcotest.(check (list int)) "after shutdown (sequential on submitter)"
    (List.map square_plus_one xs)
    (Util.Pool.map ~pool square_plus_one xs)

let test_env_override () =
  Alcotest.(check int) "FOSC_DOMAINS=4 honoured" 4 (Util.Pool.default_size ());
  Unix.putenv "FOSC_DOMAINS" "2";
  Alcotest.(check int) "FOSC_DOMAINS=2 honoured" 2 (Util.Pool.default_size ());
  Unix.putenv "FOSC_DOMAINS" "0";
  Alcotest.(check int) "clamped to >= 1" 1 (Util.Pool.default_size ());
  Unix.putenv "FOSC_DOMAINS" "not-a-number";
  Alcotest.(check bool) "garbage falls back to machine default" true
    (Util.Pool.default_size () >= 1 && Util.Pool.default_size () <= 8);
  Unix.putenv "FOSC_DOMAINS" "4";
  Alcotest.(check int) "shared pool was pinned at creation" 4
    (Util.Pool.size (Util.Pool.get ()))

(* Policy determinism across pool sizes: the parallel searches must
   return bit-identical results to their sequential paths (the CI matrix
   re-runs the whole suite under FOSC_DOMAINS=1 for the same reason;
   this covers it inside a single process). *)
let test_policies_match_sequential () =
  let p = Workload.Configs.platform ~cores:3 ~levels:3 ~t_max:60. in
  let seq = Core.Ao.solve ~par:false p in
  let par = Core.Ao.solve p in
  Alcotest.(check int) "AO picks the same m" seq.Core.Ao.m par.Core.Ao.m;
  Alcotest.(check (float 0.)) "AO peak identical" seq.Core.Ao.peak par.Core.Ao.peak;
  Alcotest.(check (float 0.)) "AO throughput identical" seq.Core.Ao.throughput
    par.Core.Ao.throughput;
  Alcotest.(check int) "AO same adjustment trajectory" seq.Core.Ao.adjustment_steps
    par.Core.Ao.adjustment_steps;
  let demands = [| 1.0; 0.9; 0.8 |] in
  let dseq = Core.Demand.solve ~par:false p ~demands in
  let dpar = Core.Demand.solve p ~demands in
  Alcotest.(check int) "Demand picks the same m" dseq.Core.Demand.m dpar.Core.Demand.m;
  Alcotest.(check (float 0.)) "Demand peak identical" dseq.Core.Demand.peak
    dpar.Core.Demand.peak;
  let pseq = Core.Pco.solve ~par:false ~offsets_per_core:4 p in
  let ppar = Core.Pco.solve ~offsets_per_core:4 p in
  Alcotest.(check (float 0.)) "PCO peak identical" pseq.Core.Pco.peak
    ppar.Core.Pco.peak;
  Alcotest.(check (float 0.)) "PCO throughput identical" pseq.Core.Pco.throughput
    ppar.Core.Pco.throughput

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "edge sizes" `Quick test_edge_sizes;
          Alcotest.test_case "exceptions in order" `Quick test_exceptions_first_in_order;
          QCheck_alcotest.to_alcotest prop_map_matches_list_map;
          QCheck_alcotest.to_alcotest prop_map_exception_matches_list_map;
        ] );
      ( "nesting",
        [
          Alcotest.test_case "nested submission runs inline" `Quick
            test_nested_submission_inline;
          Alcotest.test_case "nested policies on global pool" `Quick
            test_nested_global_pool;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown degrades to sequential" `Quick
            test_shutdown_degrades_to_sequential;
          Alcotest.test_case "FOSC_DOMAINS override" `Quick test_env_override;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel policies = sequential" `Quick
            test_policies_match_sequential;
        ] );
    ]
