(* Tests for the extension layer: HotSpot file formats (.flp/.ptrace),
   refined peak finding, the TSP baseline, the reactive-governor runtime
   and the Hotspot builder's sensitivity knobs. *)

module Fp = Thermal.Floorplan

let check_close tol = Alcotest.(check (float tol))
let pm = Power.Power_model.default

(* ------------------------------------------------------------------ flp *)

let sample_flp =
  "# a comment\n\
   \n\
   core0\t4.0e-3\t4.0e-3\t0.0\t0.0\n\
   core1 4.0e-3 4.0e-3 4.0e-3 0.0 1.75e6 0.01\n"

let test_flp_parse () =
  let fp = Thermal.Flp.of_string sample_flp in
  Alcotest.(check int) "two blocks" 2 (Fp.n_blocks fp);
  Alcotest.(check string) "name" "core1" fp.Fp.blocks.(1).Fp.name;
  check_close 1e-12 "x position" 4e-3 fp.Fp.blocks.(1).Fp.x;
  check_close 1e-12 "adjacency survives" 4e-3
    (Fp.shared_edge fp.Fp.blocks.(0) fp.Fp.blocks.(1))

let test_flp_round_trip () =
  let fp = Fp.grid ~rows:2 ~cols:3 ~core_width:4e-3 ~core_height:3e-3 in
  let fp' = Thermal.Flp.of_string (Thermal.Flp.to_string fp) in
  Alcotest.(check int) "block count" (Fp.n_blocks fp) (Fp.n_blocks fp');
  Array.iteri
    (fun i b ->
      let b' = fp'.Fp.blocks.(i) in
      Alcotest.(check string) "name" b.Fp.name b'.Fp.name;
      check_close 1e-9 "x" b.Fp.x b'.Fp.x;
      check_close 1e-9 "width" b.Fp.width b'.Fp.width)
    fp.Fp.blocks

let expect_parse_error what f =
  Alcotest.(check bool) what true
    (match f () with exception Thermal.Flp.Parse_error _ -> true | _ -> false)

let test_flp_errors () =
  expect_parse_error "too few columns" (fun () ->
      Thermal.Flp.of_string "core0 1.0 2.0\n");
  expect_parse_error "non-numeric" (fun () ->
      Thermal.Flp.of_string "core0 a b 0 0\n");
  expect_parse_error "duplicate names" (fun () ->
      Thermal.Flp.of_string "c 1e-3 1e-3 0 0\nc 1e-3 1e-3 1e-3 0\n");
  expect_parse_error "negative size" (fun () ->
      Thermal.Flp.of_string "c -1e-3 1e-3 0 0\n");
  expect_parse_error "empty" (fun () -> Thermal.Flp.of_string "# nothing\n")

let test_flp_rejects_3d () =
  let fp = Fp.stack3d ~layers:2 ~rows:1 ~cols:1 ~core_width:1e-3 ~core_height:1e-3 in
  Alcotest.(check bool) "stacked floorplan rejected" true
    (match Thermal.Flp.to_string fp with exception Invalid_argument _ -> true | _ -> false)

let test_flp_model_matches_grid () =
  (* A parsed grid must produce the same compact model as the built one. *)
  let built = Fp.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  let parsed = Thermal.Flp.of_string (Thermal.Flp.to_string built) in
  let m1 = Thermal.Hotspot.core_level built in
  let m2 = Thermal.Hotspot.core_level parsed in
  let psi = [| 10.; 5.; 10. |] in
  Alcotest.(check bool) "same steady state" true
    (Linalg.Vec.approx_equal ~tol:1e-6
       (Thermal.Model.steady_core_temps m1 psi)
       (Thermal.Model.steady_core_temps m2 psi))

let prop_flp_round_trip =
  QCheck.Test.make ~name:"flp: grid floorplans survive the text format" ~count:60
    QCheck.(
      make
        Gen.(
          let* rows = int_range 1 4 in
          let* cols = int_range 1 4 in
          let* w_mm = float_range 1. 8. in
          let* h_mm = float_range 1. 8. in
          return (rows, cols, w_mm, h_mm)))
    (fun (rows, cols, w_mm, h_mm) ->
      let fp =
        Fp.grid ~rows ~cols ~core_width:(w_mm *. 1e-3) ~core_height:(h_mm *. 1e-3)
      in
      let fp' = Thermal.Flp.of_string (Thermal.Flp.to_string fp) in
      Fp.n_blocks fp = Fp.n_blocks fp'
      && Array.for_all2
           (fun a b ->
             a.Fp.name = b.Fp.name
             && Float.abs (a.Fp.x -. b.Fp.x) < 1e-9
             && Float.abs (a.Fp.width -. b.Fp.width) < 1e-9)
           fp.Fp.blocks fp'.Fp.blocks)

(* --------------------------------------------------------------- ptrace *)

let sample_ptrace = "core0\tcore1\n10.0\t2.0\n2.0 10.0\n"

let test_ptrace_parse () =
  let t = Thermal.Ptrace.of_string sample_ptrace in
  Alcotest.(check int) "columns" 2 (Array.length t.Thermal.Ptrace.names);
  Alcotest.(check int) "rows" 2 (Array.length t.Thermal.Ptrace.samples);
  check_close 1e-12 "cell" 10. t.Thermal.Ptrace.samples.(1).(1)

let test_ptrace_round_trip () =
  let t = Thermal.Ptrace.of_string sample_ptrace in
  let t' = Thermal.Ptrace.of_string (Thermal.Ptrace.to_string t) in
  Alcotest.(check bool) "identical samples" true (t.Thermal.Ptrace.samples = t'.Thermal.Ptrace.samples)

let test_ptrace_errors () =
  let bad what s =
    Alcotest.(check bool) what true
      (match Thermal.Ptrace.of_string s with
      | exception Thermal.Ptrace.Parse_error _ -> true
      | _ -> false)
  in
  bad "ragged row" "a b\n1.0\n";
  bad "non-numeric" "a\nx\n";
  bad "no body" "a b\n";
  bad "empty" "\n"

let test_ptrace_column_mapping () =
  let t = Thermal.Ptrace.of_string "core1\tcore0\n1.0\t2.0\n" in
  let map = Thermal.Ptrace.columns_for_model t [| "core0"; "core1" |] in
  Alcotest.(check (array int)) "reordered" [| 1; 0 |] map;
  Alcotest.(check bool) "missing unit fails" true
    (match Thermal.Ptrace.columns_for_model t [| "core0"; "coreX" |] with
    | exception Failure _ -> true
    | _ -> false)

let test_ptrace_replay_matches_matex () =
  (* A constant trace replayed long enough converges to the steady state. *)
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let model = Thermal.Hotspot.core_level fp in
  let rows = Array.make 60 [| 12.; 4. |] in
  let t = { Thermal.Ptrace.names = [| "core_0_0"; "core_0_1" |]; samples = rows } in
  let map = Thermal.Ptrace.columns_for_model t [| "core_0_0"; "core_0_1" |] in
  let trace = Thermal.Ptrace.replay model t ~interval:0.05 ~column_map:map in
  let final = trace.(Array.length trace - 1).Thermal.Trace.core_temps in
  let steady = Thermal.Model.steady_core_temps model [| 12.; 4. |] in
  Alcotest.(check bool) "converged to steady state" true
    (Linalg.Vec.approx_equal ~tol:1e-3 steady final)

(* --------------------------------------------------------- peak_refined *)

let model3 () =
  Thermal.Hotspot.core_level (Fp.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let test_peak_refined_at_least_scan () =
  let m = model3 () in
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 20 do
    let s =
      Workload.Random_sched.arbitrary rng ~n_cores:3 ~period:0.5 ~max_intervals:4
        ~levels:(Power.Vf.table_iv 5)
    in
    let profile = Sched.Peak.profile m pm s in
    let scan = Thermal.Matex.peak_scan m ~samples_per_segment:16 profile in
    let refined = Thermal.Matex.peak_refined m ~samples_per_segment:16 profile in
    Alcotest.(check bool) "refined >= scan" true (refined >= scan -. 1e-9)
  done

let test_peak_refined_converges () =
  (* Refinement at coarse sampling must reach what plain scanning needs
     very fine sampling for. *)
  let m = model3 () in
  let seg d v =
    { Thermal.Matex.duration = d; psi = Power.Power_model.psi_vector pm v }
  in
  let profile = [ seg 0.4 [| 1.3; 0.6; 0.6 |]; seg 0.4 [| 0.6; 0.6; 0.6 |] ] in
  let fine = Thermal.Matex.peak_scan m ~samples_per_segment:512 profile in
  let refined = Thermal.Matex.peak_refined m ~samples_per_segment:8 profile in
  check_close 1e-3 "coarse+golden = very fine scan" fine refined

let test_peak_of_any_refined_step_up_consistent () =
  let m = model3 () in
  let s =
    Sched.Schedule.two_mode ~period:0.05 ~low:[| 0.6; 0.6; 0.6 |]
      ~high:[| 1.3; 1.3; 1.3 |] ~high_ratio:[| 0.4; 0.5; 0.6 |]
  in
  let cheap = Sched.Peak.of_step_up m pm s in
  let refined = Sched.Peak.of_any_refined m pm ~samples_per_segment:16 s in
  Alcotest.(check bool) "refined within coupling tolerance of Theorem 1" true
    (refined >= cheap -. 1e-9 && refined <= cheap +. 0.1)

(* ------------------------------------------------------------------ tsp *)

let test_tsp_feasible () =
  List.iter
    (fun cores ->
      let p = Workload.Configs.platform ~cores ~levels:5 ~t_max:55. in
      let r = Core.Tsp.solve p in
      Alcotest.(check bool)
        (Printf.sprintf "TSP stays under T_max (%d cores)" cores)
        true
        (r.Core.Tsp.peak <= 55. +. 1e-6))
    [ 2; 3; 6; 9 ]

let test_tsp_uniform () =
  let p = Workload.Configs.platform ~cores:6 ~levels:5 ~t_max:55. in
  let r = Core.Tsp.solve p in
  Array.iter
    (fun v -> check_close 1e-12 "same mode everywhere" r.Core.Tsp.voltages.(0) v)
    r.Core.Tsp.voltages

let test_tsp_pessimistic_vs_exs () =
  (* TSP budgets for the worst-positioned core, so EXS (which may push
     cooler cores higher) can only match or beat it. *)
  let p = Workload.Configs.platform ~cores:9 ~levels:5 ~t_max:55. in
  let tsp = Core.Tsp.solve p in
  let exs = Core.Exs.solve p in
  Alcotest.(check bool) "EXS >= TSP" true
    (exs.Core.Exs.throughput >= tsp.Core.Tsp.throughput -. 1e-9)

let test_tsp_budget_consistent () =
  (* Running every core exactly at the continuous budget puts the hottest
     core exactly at T_max. *)
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:60. in
  let r = Core.Tsp.solve p in
  let n = Core.Platform.n_cores p in
  let temps =
    Thermal.Model.steady_core_temps p.Core.Platform.model
      (Array.make n r.Core.Tsp.power_budget)
  in
  check_close 1e-6 "budget saturates T_max" 60. (Linalg.Vec.max temps)

(* ------------------------------------------------------------- governor *)

let platform3 () = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65.

let test_governor_large_guard_safe () =
  let g =
    Runtime.Governor.simulate (platform3 ())
      (Runtime.Governor.Threshold { guard = 6. })
      ~duration:4. ()
  in
  Alcotest.(check int) "no violations with a wide guard" 0 g.Runtime.Governor.violations;
  Alcotest.(check bool) "does useful work" true (g.Runtime.Governor.throughput > 0.6)

let test_governor_noise_hurts () =
  let guard = 0.5 in
  let clean =
    Runtime.Governor.simulate (platform3 ())
      (Runtime.Governor.Threshold { guard })
      ~duration:6. ()
  in
  let noisy =
    Runtime.Governor.simulate (platform3 ())
      (Runtime.Governor.Threshold { guard })
      ~duration:6. ~sensor_noise:2.0 ~seed:1 ()
  in
  Alcotest.(check bool) "noise increases violations" true
    (noisy.Runtime.Governor.violations >= clean.Runtime.Governor.violations)

let test_governor_static () =
  let p = platform3 () in
  let low =
    Runtime.Governor.simulate p (Runtime.Governor.Static [| 0; 0; 0 |]) ~duration:4. ()
  in
  check_close 1e-2 "all-low throughput ~0.6" 0.6 low.Runtime.Governor.throughput;
  let high =
    Runtime.Governor.simulate p (Runtime.Governor.Static [| 4; 4; 4 |]) ~duration:4. ()
  in
  Alcotest.(check bool) "all-high overheats" true (high.Runtime.Governor.peak > 65.);
  Alcotest.(check bool) "arity checked" true
    (match
       Runtime.Governor.simulate p (Runtime.Governor.Static [| 0 |]) ~duration:1. ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_governor_pid_tracks_setpoint () =
  let g =
    Runtime.Governor.simulate (platform3 ())
      (Runtime.Governor.Pid { kp = 0.05; ki = 0.005; guard = 2. })
      ~duration:10. ()
  in
  (* The PI loop must settle somewhere useful: above all-low throughput,
     with a peak in the neighbourhood of the setpoint. *)
  Alcotest.(check bool) "useful throughput" true (g.Runtime.Governor.throughput > 0.7);
  Alcotest.(check bool) "peak near setpoint band" true
    (g.Runtime.Governor.peak > 55. && g.Runtime.Governor.peak < 72.)

let test_governor_observer_reduces_violations () =
  (* Same aggressive guard and noise, with and without observer-based
     filtering: the filtered loop must violate at most as often. *)
  let p = platform3 () in
  let run use_observer =
    Runtime.Governor.simulate p
      (Runtime.Governor.Threshold { guard = 0.5 })
      ~duration:8. ~sensor_noise:2.0 ~use_observer ~seed:5 ()
  in
  let raw = run false and filtered = run true in
  Alcotest.(check bool)
    (Printf.sprintf "filtered %d <= raw %d violations"
       filtered.Runtime.Governor.violations raw.Runtime.Governor.violations)
    true
    (filtered.Runtime.Governor.violations <= raw.Runtime.Governor.violations);
  Alcotest.(check bool) "filtered loop switches less" true
    (filtered.Runtime.Governor.switches <= raw.Runtime.Governor.switches)

let test_governor_deterministic () =
  let run () =
    Runtime.Governor.simulate (platform3 ())
      (Runtime.Governor.Threshold { guard = 1. })
      ~duration:3. ~sensor_noise:1. ~seed:9 ()
  in
  Alcotest.(check bool) "same seed, same stats" true (run () = run ())

(* --------------------------------------------------------------- export *)

let test_export_matrix_csv_round_trip () =
  let m = Linalg.Mat.of_rows [| [| 1.5; -2.25 |]; [| 1e-17; 3. |] |] in
  let csv = Thermal.Export.matrix_to_csv m in
  let parsed =
    String.split_on_char '\n' (String.trim csv)
    |> List.map (fun line ->
           String.split_on_char ',' line |> List.map float_of_string |> Array.of_list)
    |> Array.of_list
  in
  Alcotest.(check bool) "exact decimal round trip" true
    (Linalg.Mat.approx_equal ~tol:0. m (Linalg.Mat.of_rows parsed))

let test_export_model_files () =
  let model = model3 () in
  let dir = Filename.temp_file "fosc_export" "" in
  Sys.remove dir;
  let paths = Thermal.Export.write_model ~dir ~prefix:"m3" model in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove paths;
      Sys.rmdir dir)
    (fun () ->
      Alcotest.(check int) "three files" 3 (List.length paths);
      List.iter
        (fun p -> Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p))
        paths;
      (* The response map reproduces a steady solve. *)
      let resp =
        let ic = open_in (List.nth paths 2) in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            In_channel.input_all ic |> String.trim |> String.split_on_char '\n'
            |> List.map (fun l ->
                   String.split_on_char ',' l |> List.map float_of_string
                   |> Array.of_list)
            |> Array.of_list)
      in
      let psi = [| 10.; 5.; 2. |] in
      let reconstructed =
        Array.init 3 (fun j ->
            resp.(0).(j)
            +. (psi.(0) *. resp.(1).(j))
            +. (psi.(1) *. resp.(2).(j))
            +. (psi.(2) *. resp.(3).(j)))
      in
      Alcotest.(check bool) "response map = steady solve" true
        (Linalg.Vec.approx_equal ~tol:1e-9 reconstructed
           (Thermal.Model.steady_core_temps model psi)))

(* --------------------------------------------------------------- sprint *)

let test_sprint_positive_burst () =
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:60. in
  let plan = Core.Sprint.plan p in
  Alcotest.(check bool) "finite positive burst" true
    (Float.is_finite plan.Core.Sprint.burst_duration
    && plan.Core.Sprint.burst_duration > 0.);
  Alcotest.(check bool) "sprinting beats steady during the burst" true
    (plan.Core.Sprint.sprint_gain > 0.);
  (* The burst really stays under T_max: simulate it. *)
  let model = p.Core.Platform.model in
  let psi =
    Power.Power_model.psi_vector p.Core.Platform.power plan.Core.Sprint.burst_voltages
  in
  let theta =
    Thermal.Model.step model ~dt:plan.Core.Sprint.burst_duration
      ~theta:(Linalg.Vec.zeros (Thermal.Model.n_nodes model))
      ~psi
  in
  Alcotest.(check bool) "end-of-burst temperature at the backed-off cap" true
    (Thermal.Model.max_core_temp model theta <= p.Core.Platform.t_max -. 0.5 +. 1e-3)

let test_sprint_longer_with_higher_tmax () =
  let burst t_max =
    (Core.Sprint.plan (Workload.Configs.platform ~cores:3 ~levels:2 ~t_max)).Core.Sprint.burst_duration
  in
  Alcotest.(check bool) "higher cap, longer sprint" true (burst 65. > burst 50.)

let test_sprint_infinite_when_sustainable () =
  (* With a generous cap the all-high assignment is sustainable: no
     finite burst. *)
  let p = Workload.Configs.platform ~cores:2 ~levels:2 ~t_max:75. in
  let plan = Core.Sprint.plan p in
  Alcotest.(check bool) "no throttle needed" true
    (Float.is_finite plan.Core.Sprint.burst_duration = false);
  Alcotest.(check (float 1e-12)) "no sprint gain to speak of" 0.
    plan.Core.Sprint.sprint_gain

(* ------------------------------------------------------------- observer *)

let test_observer_converges_from_wrong_state () =
  (* Plant and observer start apart; with exact measurements the estimate
     must converge to the true backend state, including the components
     the sensors never read directly (use the layered model for its
     passive sink nodes). *)
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let model = Thermal.Hotspot.layered fp in
  let b = Thermal.Backend.of_model model in
  (* The layered model's heat sink has a multi-second time constant; the
     observer only corrects core readings directly, so give the hidden
     components several sink time constants to converge. *)
  let dt = 0.05 in
  let obs = Runtime.Observer.create b ~dt ~gain:0.6 in
  let psi = [| 15.; 5. |] in
  let truth = ref (b.Thermal.Backend.ambient_state ()) in
  (* Seed the estimate wrong: both core sensors read 8 K hot. *)
  let est = ref (Runtime.Observer.initial obs) in
  b.Thermal.Backend.correct_cores ~state:!est ~deltas:[| 8.; 8. |];
  for _ = 1 to 1200 do
    truth := b.Thermal.Backend.step ~dt ~state:!truth ~psi;
    let measured = b.Thermal.Backend.core_temps !truth in
    est := Runtime.Observer.update obs ~estimate:!est ~psi ~measured
  done;
  Alcotest.(check bool) "full state recovered (hidden components too)" true
    (Linalg.Vec.dist_inf !truth !est < 0.05)

let test_observer_filters_noise () =
  (* With noisy sensors, the observer's core estimates must track the
     truth more tightly than the raw measurements do. *)
  let fp = Fp.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  let b = Thermal.Backend.of_model (Thermal.Hotspot.core_level fp) in
  let dt = 0.01 in
  let obs = Runtime.Observer.create b ~dt ~gain:0.25 in
  let rng = Random.State.make [| 12 |] in
  let gaussian sigma =
    let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
    let u2 = Random.State.float rng 1. in
    sigma *. sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let psi = Power.Power_model.psi_vector pm [| 1.3; 0.6; 1.0 |] in
  let truth = ref (b.Thermal.Backend.ambient_state ()) in
  let est = ref (Runtime.Observer.initial obs) in
  let raw_err = ref 0. and obs_err = ref 0. and samples = ref 0 in
  for step = 1 to 600 do
    truth := b.Thermal.Backend.step ~dt ~state:!truth ~psi;
    let true_temps = b.Thermal.Backend.core_temps !truth in
    let measured = Array.map (fun t -> t +. gaussian 1.5) true_temps in
    est := Runtime.Observer.update obs ~estimate:!est ~psi ~measured;
    if step > 100 then begin
      (* Skip the initial transient, then accumulate RMS errors. *)
      let est_temps = Runtime.Observer.core_estimates obs !est in
      for i = 0 to 2 do
        raw_err := !raw_err +. ((measured.(i) -. true_temps.(i)) ** 2.);
        obs_err := !obs_err +. ((est_temps.(i) -. true_temps.(i)) ** 2.);
        incr samples
      done
    end
  done;
  let rms x = sqrt (x /. float_of_int !samples) in
  Alcotest.(check bool)
    (Printf.sprintf "observer RMS %.3f < raw RMS %.3f" (rms !obs_err) (rms !raw_err))
    true
    (rms !obs_err < 0.7 *. rms !raw_err)

let test_observer_validation () =
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let b = Thermal.Backend.of_model (Thermal.Hotspot.core_level fp) in
  Alcotest.(check bool) "bad gain rejected" true
    (match Runtime.Observer.create b ~dt:0.01 ~gain:1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let obs = Runtime.Observer.create b ~dt:0.01 in
  Alcotest.(check bool) "measurement arity checked" true
    (match
       Runtime.Observer.update obs ~estimate:(Runtime.Observer.initial obs)
         ~psi:[| 1.; 1. |] ~measured:[| 40. |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -------------------------------------------------- hotspot scale knobs *)

let test_lateral_scale_zero_decouples () =
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let m = Thermal.Hotspot.core_level ~lateral_scale:0. fp in
  (* With no coupling, heating core 0 must leave core 1 at its leakage
     floor. *)
  let base = Thermal.Model.steady_core_temps m [| 0.; 0. |] in
  let hot = Thermal.Model.steady_core_temps m [| 20.; 0. |] in
  check_close 1e-9 "neighbour unaffected" base.(1) hot.(1);
  Alcotest.(check bool) "heated core responds" true (hot.(0) > base.(0) +. 10.)

let test_vertical_scale_cools () =
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let base = Thermal.Hotspot.core_level fp in
  let cooled = Thermal.Hotspot.core_level ~vertical_scale:2. fp in
  let psi = [| 15.; 15. |] in
  Alcotest.(check bool) "doubling the sink path lowers steady temps" true
    (Linalg.Vec.max (Thermal.Model.steady_core_temps cooled psi)
    < Linalg.Vec.max (Thermal.Model.steady_core_temps base psi))

let test_capacitance_scale_slows () =
  let fp = Fp.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let base = Thermal.Hotspot.core_level fp in
  let heavy = Thermal.Hotspot.core_level ~capacitance_scale:4. fp in
  let tc m = (Thermal.Model.time_constants m).(0) in
  check_close 1e-9 "4x capacitance = 4x slowest time constant" (4. *. tc base) (tc heavy)

let test_theorem1_exact_without_coupling () =
  (* The sensitivity experiment's anchor point: zero lateral coupling
     makes Theorem 1 exact. *)
  let fp = Fp.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  let m = Thermal.Hotspot.core_level ~lateral_scale:0. fp in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 20 do
    let s =
      Workload.Random_sched.step_up rng ~n_cores:3 ~period:0.6 ~max_intervals:4
        ~levels:(Power.Vf.table_iv 5)
    in
    let profile = Sched.Peak.profile m pm s in
    let end_peak = Thermal.Matex.end_of_period_peak m profile in
    let true_peak = Thermal.Matex.peak_refined m ~samples_per_segment:32 profile in
    Alcotest.(check bool) "no exceedance at zero coupling" true
      (true_peak <= end_peak +. 1e-6)
  done

let () =
  Alcotest.run "extensions"
    [
      ( "flp",
        [
          Alcotest.test_case "parse" `Quick test_flp_parse;
          Alcotest.test_case "round trip" `Quick test_flp_round_trip;
          Alcotest.test_case "errors" `Quick test_flp_errors;
          Alcotest.test_case "rejects 3d" `Quick test_flp_rejects_3d;
          Alcotest.test_case "model equivalence" `Quick test_flp_model_matches_grid;
          QCheck_alcotest.to_alcotest prop_flp_round_trip;
        ] );
      ( "ptrace",
        [
          Alcotest.test_case "parse" `Quick test_ptrace_parse;
          Alcotest.test_case "round trip" `Quick test_ptrace_round_trip;
          Alcotest.test_case "errors" `Quick test_ptrace_errors;
          Alcotest.test_case "column mapping" `Quick test_ptrace_column_mapping;
          Alcotest.test_case "replay converges" `Quick test_ptrace_replay_matches_matex;
        ] );
      ( "peak_refined",
        [
          Alcotest.test_case "at least scan" `Quick test_peak_refined_at_least_scan;
          Alcotest.test_case "converges" `Quick test_peak_refined_converges;
          Alcotest.test_case "step-up consistent" `Quick
            test_peak_of_any_refined_step_up_consistent;
        ] );
      ( "tsp",
        [
          Alcotest.test_case "feasible" `Quick test_tsp_feasible;
          Alcotest.test_case "uniform" `Quick test_tsp_uniform;
          Alcotest.test_case "pessimistic vs EXS" `Quick test_tsp_pessimistic_vs_exs;
          Alcotest.test_case "budget consistency" `Quick test_tsp_budget_consistent;
        ] );
      ( "governor",
        [
          Alcotest.test_case "wide guard safe" `Quick test_governor_large_guard_safe;
          Alcotest.test_case "noise hurts" `Quick test_governor_noise_hurts;
          Alcotest.test_case "static extremes" `Quick test_governor_static;
          Alcotest.test_case "PID tracks" `Quick test_governor_pid_tracks_setpoint;
          Alcotest.test_case "deterministic" `Quick test_governor_deterministic;
          Alcotest.test_case "observer in the loop" `Quick test_governor_observer_reduces_violations;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv round trip" `Quick test_export_matrix_csv_round_trip;
          Alcotest.test_case "model files" `Quick test_export_model_files;
        ] );
      ( "sprint",
        [
          Alcotest.test_case "positive burst" `Quick test_sprint_positive_burst;
          Alcotest.test_case "monotone in t_max" `Quick test_sprint_longer_with_higher_tmax;
          Alcotest.test_case "infinite when sustainable" `Quick test_sprint_infinite_when_sustainable;
        ] );
      ( "observer",
        [
          Alcotest.test_case "converges" `Quick test_observer_converges_from_wrong_state;
          Alcotest.test_case "filters noise" `Quick test_observer_filters_noise;
          Alcotest.test_case "validation" `Quick test_observer_validation;
        ] );
      ( "hotspot scales",
        [
          Alcotest.test_case "lateral zero decouples" `Quick test_lateral_scale_zero_decouples;
          Alcotest.test_case "vertical cools" `Quick test_vertical_scale_cools;
          Alcotest.test_case "capacitance slows" `Quick test_capacitance_scale_slows;
          Alcotest.test_case "Theorem 1 exact uncoupled" `Quick
            test_theorem1_exact_without_coupling;
        ] );
    ]
