(* Tests for the policy layer: Platform, Ideal, LNS, EXS, TPT, AO, PCO. *)

module P = Core.Platform

let check_close tol = Alcotest.(check (float tol))

let platform3 () = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65.
let platform3_5lv () = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65.

(* ------------------------------------------------------------- platform *)

let test_platform_construction () =
  let p = platform3 () in
  Alcotest.(check int) "core count" 3 (P.n_cores p);
  check_close 1e-12 "default tau" 5e-6 p.P.tau;
  Alcotest.(check bool) "feasible at 65C" true (P.feasible p)

let test_platform_validation () =
  let model =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3)
  in
  Alcotest.(check bool) "t_max below ambient rejected" true
    (match P.make ~levels:(Power.Vf.table_iv 2) ~t_max:30. model with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_platform_infeasible_detected () =
  (* A 1-degree margin above ambient is below even the all-low steady state. *)
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:36. in
  Alcotest.(check bool) "infeasible platform flagged" false (P.feasible p)

(* ---------------------------------------------------------------- ideal *)

let test_ideal_reaches_tmax () =
  let p = platform3 () in
  let r = Core.Ideal.solve p in
  (* Unclamped ideal assignment puts the steady state exactly at T_max. *)
  let peak = Sched.Peak.steady_constant p.P.model p.P.power r.Core.Ideal.voltages in
  Alcotest.(check bool) "no clamping on this platform" true
    (Array.for_all not r.Core.Ideal.clamped);
  check_close 1e-6 "steady peak = T_max" 65. peak

let test_ideal_edge_cores_faster () =
  let r = Core.Ideal.solve (platform3 ()) in
  let v = r.Core.Ideal.voltages in
  Alcotest.(check bool) "edge > middle (Section III shape)" true
    (v.(0) > v.(1) && v.(2) > v.(1));
  check_close 1e-9 "symmetry" v.(0) v.(2)

let test_ideal_matches_paper_motivation () =
  (* The paper's Section III: [1.2085; 1.1748; 1.2085] at 65C.  Our
     calibration reproduces this within a few percent. *)
  let r = Core.Ideal.solve (platform3 ()) in
  let v = r.Core.Ideal.voltages in
  Alcotest.(check bool) "edge cores ~1.21 +- 0.05" true (Float.abs (v.(0) -. 1.21) < 0.05);
  Alcotest.(check bool) "middle core ~1.17 +- 0.05" true (Float.abs (v.(1) -. 1.17) < 0.05)

let test_ideal_clamps_at_vmax () =
  (* Generous threshold: every core clamps at the highest level. *)
  let p = Workload.Configs.platform ~cores:2 ~levels:2 ~t_max:90. in
  let r = Core.Ideal.solve p in
  Alcotest.(check bool) "all clamped" true (Array.for_all (fun c -> c) r.Core.Ideal.clamped);
  Array.iter (fun v -> check_close 1e-12 "at vmax" 1.3 v) r.Core.Ideal.voltages

let test_ideal_refine_no_worse () =
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:80. in
  let plain = Core.Ideal.solve ~refine:false p in
  let refined = Core.Ideal.solve ~refine:true p in
  Alcotest.(check bool) "refinement never loses throughput" true
    (refined.Core.Ideal.throughput >= plain.Core.Ideal.throughput -. 1e-9);
  (* Refined assignment stays feasible. *)
  let peak =
    Sched.Peak.steady_constant p.P.model p.P.power refined.Core.Ideal.voltages
  in
  Alcotest.(check bool) "refined stays under T_max" true (peak <= p.P.t_max +. 1e-6)

(* ------------------------------------------------------------------ lns *)

let test_lns_rounds_down () =
  let p = platform3 () in
  let r = Core.Lns.solve p in
  (* Ideal ~1.2 with levels {0.6, 1.3}: all round down to 0.6. *)
  Array.iter (fun v -> check_close 1e-12 "rounded to 0.6" 0.6 v) r.Core.Lns.voltages;
  check_close 1e-12 "throughput 0.6" 0.6 r.Core.Lns.throughput

let test_lns_feasible () =
  List.iter
    (fun levels ->
      let p = Workload.Configs.platform ~cores:3 ~levels ~t_max:65. in
      let r = Core.Lns.solve p in
      Alcotest.(check bool)
        (Printf.sprintf "LNS under T_max with %d levels" levels)
        true
        (r.Core.Lns.peak <= 65. +. 1e-6))
    [ 2; 3; 4; 5 ]

let test_lns_improves_with_levels () =
  let thr levels =
    (Core.Lns.solve (Workload.Configs.platform ~cores:3 ~levels ~t_max:65.)).Core.Lns.throughput
  in
  Alcotest.(check bool) "finer grid never hurts LNS" true
    (thr 5 >= thr 4 -. 1e-12 && thr 4 >= thr 3 -. 1e-12 && thr 3 >= thr 2 -. 1e-12)

(* ------------------------------------------------------------------ exs *)

let test_exs_explores_whole_space () =
  let p = platform3 () in
  let r = Core.Exs.solve p in
  Alcotest.(check int) "2^3 combinations" 8 r.Core.Exs.evaluated;
  Alcotest.(check bool) "feasible" true r.Core.Exs.feasible

let test_exs_beats_lns () =
  let p = platform3 () in
  let lns = Core.Lns.solve p in
  let exs = Core.Exs.solve p in
  Alcotest.(check bool) "EXS >= LNS" true
    (exs.Core.Exs.throughput >= lns.Core.Lns.throughput -. 1e-12)

let test_exs_respects_tmax () =
  List.iter
    (fun (cores, levels) ->
      let p = Workload.Configs.platform ~cores ~levels ~t_max:65. in
      let r = Core.Exs.solve p in
      Alcotest.(check bool)
        (Printf.sprintf "%d cores %d levels" cores levels)
        true
        (r.Core.Exs.peak <= 65. +. 1e-6))
    [ (2, 2); (3, 3); (6, 2) ]

let test_exs_incremental_matches_naive () =
  List.iter
    (fun (cores, levels) ->
      let p = Workload.Configs.platform ~cores ~levels ~t_max:65. in
      let fast = Core.Exs.solve p in
      let naive = Core.Exs.solve_naive p in
      Alcotest.(check bool)
        (Printf.sprintf "same throughput (%d cores, %d levels)" cores levels)
        true
        (Float.abs (fast.Core.Exs.throughput -. naive.Core.Exs.throughput) < 1e-9);
      Alcotest.(check int) "same evaluation count" naive.Core.Exs.evaluated
        fast.Core.Exs.evaluated)
    [ (2, 3); (3, 2); (3, 4) ]

let test_exs_pruned_matches_flat () =
  List.iter
    (fun (cores, levels, t_max) ->
      let p = Workload.Configs.platform ~cores ~levels ~t_max in
      let flat = Core.Exs.solve p in
      let pruned = Core.Exs.solve_pruned p in
      Alcotest.(check bool)
        (Printf.sprintf "same throughput (%d cores, %d levels, %.0fC)" cores levels t_max)
        true
        (Float.abs (flat.Core.Exs.throughput -. pruned.Core.Exs.throughput) < 1e-9);
      Alcotest.(check bool) "same feasibility" true
        (flat.Core.Exs.feasible = pruned.Core.Exs.feasible);
      Alcotest.(check bool) "pruning visits fewer nodes on big spaces" true
        (cores < 6 || pruned.Core.Exs.evaluated < flat.Core.Exs.evaluated))
    [ (2, 2, 65.); (3, 3, 65.); (3, 5, 55.); (6, 4, 60.); (9, 3, 55.); (3, 2, 36.) ]

(* The anytime regime: a finite node budget must still return a
   feasible assignment (the greedy warm start at minimum), never beat
   the proven optimum, and report the truncation; the exact regime must
   report completeness. *)
let test_exs_anytime_budget () =
  let p = Workload.Configs.platform ~cores:6 ~levels:4 ~t_max:60. in
  let exact = Core.Exs.solve_pruned p in
  Alcotest.(check bool) "paper-scale search completes" true
    exact.Core.Exs.exhaustive;
  let capped = Core.Exs.solve_pruned ~node_cap:1 p in
  Alcotest.(check bool) "truncation reported" false capped.Core.Exs.exhaustive;
  Alcotest.(check bool) "greedy seed keeps the result feasible" true
    capped.Core.Exs.feasible;
  Alcotest.(check bool) "within constraint" true
    (capped.Core.Exs.peak <= p.Core.Platform.t_max +. 1e-6);
  Alcotest.(check bool) "anytime result never beats the optimum" true
    (capped.Core.Exs.throughput <= exact.Core.Exs.throughput +. 1e-12)

let test_exs_motivation_pattern () =
  (* The paper's motivation: with levels {0.6, 1.3} at 65C, EXS can raise
     a strict subset of cores to 1.3 V. *)
  let r = Core.Exs.solve (platform3 ()) in
  let highs =
    Array.fold_left (fun n v -> if v > 1.0 then n + 1 else n) 0 r.Core.Exs.voltages
  in
  Alcotest.(check bool) "some but not all cores at 1.3" true (highs >= 1 && highs < 3)

let test_exs_infeasible_platform () =
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:36. in
  let r = Core.Exs.solve p in
  Alcotest.(check bool) "reports infeasible" false r.Core.Exs.feasible;
  check_close 1e-12 "zero throughput" 0. r.Core.Exs.throughput

let test_exs_solvers_agree () =
  (* All four solvers reduce with the same deterministic total order
     (score, then lexicographically smallest digits), so they must agree
     *exactly* on voltages/throughput/feasibility — across random
     thresholds, including infeasible ones.  The (6, 4) shape's 4^6
     space is large enough that [solve_par] takes its parallel branch on
     the forced 4-domain pool even on a single-core host. *)
  let pool = Util.Pool.create ~size:4 () in
  let rng = Random.State.make [| 2016 |] in
  List.iter
    (fun (cores, levels) ->
      for trial = 1 to 3 do
        let t_max = 40. +. Random.State.float rng 50. in
        let p = Workload.Configs.platform ~cores ~levels ~t_max in
        let reference = Core.Exs.solve p in
        let tag name =
          Printf.sprintf "%s (%d cores, %d levels, %.2fC, trial %d)" name cores
            levels t_max trial
        in
        List.iter
          (fun (name, (r : Core.Exs.result)) ->
            Alcotest.(check bool) (tag (name ^ " feasibility"))
              reference.Core.Exs.feasible r.Core.Exs.feasible;
            Alcotest.(check (array (float 0.))) (tag (name ^ " voltages"))
              reference.Core.Exs.voltages r.Core.Exs.voltages;
            Alcotest.(check (float 0.)) (tag (name ^ " throughput"))
              reference.Core.Exs.throughput r.Core.Exs.throughput)
          [
            ("naive", Core.Exs.solve_naive p);
            ("pruned", Core.Exs.solve_pruned p);
            ("par", Core.Exs.solve_par ~pool p);
          ]
      done)
    [ (2, 2); (3, 2); (3, 3); (2, 5); (9, 2); (6, 4) ];
  Util.Pool.shutdown pool

(* ------------------------------------------------------------------ tpt *)

let config_for_tests () =
  {
    Core.Tpt.period = 0.01;
    v_low = [| 0.6; 0.6; 0.6 |];
    v_high = [| 1.3; 1.3; 1.3 |];
    high_time = [| 0.009; 0.009; 0.009 |];
    offset = [| 0.; 0.; 0. |];
  }

let test_tpt_schedule_materialization () =
  let c = config_for_tests () in
  let s = Core.Tpt.schedule_of_config c in
  Alcotest.(check bool) "aligned config is step-up" true (Sched.Stepup.is_step_up s);
  check_close 1e-12 "period" 0.01 (Sched.Schedule.period s)

let test_tpt_adjust_reaches_constraint () =
  let p = platform3 () in
  let c = config_for_tests () in
  Alcotest.(check bool) "initial config violates" true (Core.Tpt.peak p c > p.P.t_max);
  let adjusted, steps = Core.Tpt.adjust_to_constraint p c in
  Alcotest.(check bool) "made exchanges" true (steps > 0);
  Alcotest.(check bool) "meets T_max" true (Core.Tpt.peak p adjusted <= p.P.t_max +. 1e-9)

let test_tpt_adjust_only_lowers_high_time () =
  let p = platform3 () in
  let c = config_for_tests () in
  let adjusted, _ = Core.Tpt.adjust_to_constraint p c in
  Array.iteri
    (fun i h ->
      Alcotest.(check bool) "high time never grows" true (h <= c.Core.Tpt.high_time.(i) +. 1e-12))
    adjusted.Core.Tpt.high_time

let test_tpt_fill_headroom_stops_at_constraint () =
  let p = platform3 () in
  let c =
    { (config_for_tests ()) with Core.Tpt.high_time = [| 0.001; 0.001; 0.001 |] }
  in
  let filled, steps = Core.Tpt.fill_headroom p c in
  Alcotest.(check bool) "made exchanges" true (steps > 0);
  Alcotest.(check bool) "stays under T_max" true (Core.Tpt.peak p filled <= p.P.t_max +. 1e-9);
  let total_before = Array.fold_left ( +. ) 0. c.Core.Tpt.high_time in
  let total_after = Array.fold_left ( +. ) 0. filled.Core.Tpt.high_time in
  Alcotest.(check bool) "high time grew" true (total_after > total_before)

let test_tpt_validation () =
  let bad = { (config_for_tests ()) with Core.Tpt.high_time = [| 0.02; 0.; 0. |] } in
  Alcotest.(check bool) "high_time > period rejected" true
    (match Core.Tpt.validate bad with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------- ao *)

let test_ao_meets_constraint () =
  let p = platform3 () in
  let r = Core.Ao.solve p in
  Alcotest.(check bool) "peak <= T_max" true (r.Core.Ao.peak <= p.P.t_max +. 1e-6)

let test_ao_beats_exs_on_coarse_levels () =
  let p = platform3 () in
  let exs = Core.Exs.solve p in
  let ao = Core.Ao.solve p in
  Alcotest.(check bool) "AO > EXS with 2 levels" true
    (ao.Core.Ao.throughput > exs.Core.Exs.throughput)

let test_ao_below_ideal () =
  let p = platform3 () in
  let r = Core.Ao.solve p in
  Alcotest.(check bool) "AO cannot beat the continuous ideal" true
    (r.Core.Ao.throughput <= r.Core.Ao.ideal.Core.Ideal.throughput +. 1e-9)

let test_ao_schedule_is_step_up () =
  let r = Core.Ao.solve (platform3 ()) in
  Alcotest.(check bool) "step-up" true (Sched.Stepup.is_step_up r.Core.Ao.schedule)

let test_ao_m_within_bound () =
  let r = Core.Ao.solve (platform3 ()) in
  Alcotest.(check bool) "1 <= m <= M" true (r.Core.Ao.m >= 1 && r.Core.Ao.m <= r.Core.Ao.m_max)

let test_ao_oscillation_helps () =
  (* Force m = 1 via m_cap and compare: allowing oscillation must not
     reduce throughput. *)
  let p = platform3 () in
  let m1 = Core.Ao.solve ~m_cap:1 p in
  let free = Core.Ao.solve p in
  Alcotest.(check bool) "m free >= m=1" true
    (free.Core.Ao.throughput >= m1.Core.Ao.throughput -. 1e-9)

let test_ao_fine_levels_close_to_ideal () =
  let p = platform3_5lv () in
  let r = Core.Ao.solve p in
  Alcotest.(check bool) "within 10% of ideal with 5 levels" true
    (r.Core.Ao.throughput >= 0.9 *. r.Core.Ao.ideal.Core.Ideal.throughput)

let test_ao_with_fill () =
  let p = platform3 () in
  let plain = Core.Ao.solve p in
  let filled = Core.Ao.solve ~fill:true p in
  Alcotest.(check bool) "fill never hurts" true
    (filled.Core.Ao.throughput >= plain.Core.Ao.throughput -. 1e-9);
  Alcotest.(check bool) "fill stays feasible" true (filled.Core.Ao.peak <= p.P.t_max +. 1e-6)

let prop_ao_always_feasible =
  QCheck.Test.make ~name:"AO meets T_max on random platforms" ~count:40
    QCheck.(
      make
        Gen.(
          let* cores = oneofl [ 2; 3 ] in
          let* levels = int_range 2 5 in
          let* t_max = float_range 45. 70. in
          return (cores, levels, t_max)))
    (fun (cores, levels, t_max) ->
      let p = Workload.Configs.platform ~cores ~levels ~t_max in
      let ao = Core.Ao.solve p in
      let dense =
        Sched.Peak.of_any_refined p.P.model p.P.power ~samples_per_segment:32
          ao.Core.Ao.schedule
      in
      ao.Core.Ao.peak <= t_max +. 1e-6 && dense <= t_max +. 0.05)

(* ------------------------------------------------------------------ pco *)

let test_pco_meets_constraint () =
  let p = platform3 () in
  let r = Core.Pco.solve p in
  Alcotest.(check bool) "peak <= T_max" true (r.Core.Pco.peak <= p.P.t_max +. 0.05)

let test_pco_rounds () =
  let p = platform3 () in
  let r1 = Core.Pco.solve ~rounds:1 p in
  let r2 = Core.Pco.solve ~rounds:2 p in
  Alcotest.(check bool) "extra rounds never hurt" true
    (r2.Core.Pco.throughput >= r1.Core.Pco.throughput -. 1e-6);
  Alcotest.(check bool) "rounds < 1 rejected" true
    (match Core.Pco.solve ~rounds:0 p with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pco_at_least_ao () =
  let p = platform3 () in
  let r = Core.Pco.solve p in
  Alcotest.(check bool) "PCO >= its AO seed" true
    (r.Core.Pco.throughput >= r.Core.Pco.ao.Core.Ao.throughput -. 1e-9)

let () =
  Alcotest.run "core"
    [
      ( "platform",
        [
          Alcotest.test_case "construction" `Quick test_platform_construction;
          Alcotest.test_case "validation" `Quick test_platform_validation;
          Alcotest.test_case "infeasible detection" `Quick test_platform_infeasible_detected;
        ] );
      ( "ideal",
        [
          Alcotest.test_case "reaches T_max" `Quick test_ideal_reaches_tmax;
          Alcotest.test_case "edge cores faster" `Quick test_ideal_edge_cores_faster;
          Alcotest.test_case "matches paper motivation" `Quick test_ideal_matches_paper_motivation;
          Alcotest.test_case "clamps at vmax" `Quick test_ideal_clamps_at_vmax;
          Alcotest.test_case "refine no worse" `Quick test_ideal_refine_no_worse;
        ] );
      ( "lns",
        [
          Alcotest.test_case "rounds down" `Quick test_lns_rounds_down;
          Alcotest.test_case "always feasible" `Quick test_lns_feasible;
          Alcotest.test_case "monotone in levels" `Quick test_lns_improves_with_levels;
        ] );
      ( "exs",
        [
          Alcotest.test_case "full exploration" `Quick test_exs_explores_whole_space;
          Alcotest.test_case "beats LNS" `Quick test_exs_beats_lns;
          Alcotest.test_case "respects T_max" `Quick test_exs_respects_tmax;
          Alcotest.test_case "incremental = naive" `Quick test_exs_incremental_matches_naive;
          Alcotest.test_case "pruned = flat" `Quick test_exs_pruned_matches_flat;
          Alcotest.test_case "anytime budget" `Quick test_exs_anytime_budget;
          Alcotest.test_case "motivation pattern" `Quick test_exs_motivation_pattern;
          Alcotest.test_case "infeasible platform" `Quick test_exs_infeasible_platform;
          Alcotest.test_case "all solvers agree (incl. parallel)" `Quick
            test_exs_solvers_agree;
        ] );
      ( "tpt",
        [
          Alcotest.test_case "schedule materialization" `Quick test_tpt_schedule_materialization;
          Alcotest.test_case "adjust reaches constraint" `Quick test_tpt_adjust_reaches_constraint;
          Alcotest.test_case "adjust only lowers" `Quick test_tpt_adjust_only_lowers_high_time;
          Alcotest.test_case "fill stops at constraint" `Quick test_tpt_fill_headroom_stops_at_constraint;
          Alcotest.test_case "validation" `Quick test_tpt_validation;
        ] );
      ( "ao",
        [
          Alcotest.test_case "meets constraint" `Quick test_ao_meets_constraint;
          Alcotest.test_case "beats EXS (2 levels)" `Quick test_ao_beats_exs_on_coarse_levels;
          Alcotest.test_case "below ideal" `Quick test_ao_below_ideal;
          Alcotest.test_case "schedule is step-up" `Quick test_ao_schedule_is_step_up;
          Alcotest.test_case "m within bound" `Quick test_ao_m_within_bound;
          Alcotest.test_case "oscillation helps" `Quick test_ao_oscillation_helps;
          Alcotest.test_case "fine levels near ideal" `Quick test_ao_fine_levels_close_to_ideal;
          Alcotest.test_case "headroom fill" `Quick test_ao_with_fill;
        ] );
      ( "pco",
        [
          Alcotest.test_case "meets constraint" `Quick test_pco_meets_constraint;
          Alcotest.test_case "at least AO" `Quick test_pco_at_least_ao;
          Alcotest.test_case "multi-round" `Quick test_pco_rounds;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ao_always_feasible ]);
    ]
