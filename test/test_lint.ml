(* fosc-lint / fosc-race self-test: every fixture under lint_fixtures/
   (parsetree pass) and race_fixtures/ (typedtree pass) must produce
   exactly the expected findings (rule ids and line numbers), the scope
   flag must gate R2/R4, and the live repo must come out clean under
   both passes. *)

let exe = "../tool/lint/fosc_lint.exe"
let race_exe = "../tool/lint/fosc_race.exe"

(* Runs a lint executable and returns (exit code, output lines). *)
let run_tool ?(scope_lib = false) tool paths =
  let out = Filename.temp_file "fosc_lint" ".out" in
  let cmd =
    Printf.sprintf "%s%s %s > %s 2>&1" tool
      (if scope_lib then " --scope lib" else "")
      (String.concat " " paths) out
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Sys.remove out;
  (code, lines)

let run ?scope_lib paths = run_tool ?scope_lib exe paths
let run_race paths = run_tool race_exe paths

(* "path:LINE:COL: [RULE] msg" -> (LINE, RULE); other lines dropped. *)
let findings_of lines =
  List.filter_map
    (fun line ->
      match (String.index_opt line '[', String.index_opt line ']') with
      | Some i, Some j when i < j -> (
          let rule = String.sub line (i + 1) (j - i - 1) in
          match String.split_on_char ':' line with
          | _path :: l :: _ -> (
              match int_of_string_opt l with
              | Some l -> Some (l, rule)
              | None -> None)
          | _ -> None)
      | _ -> None)
    lines

let finding = Alcotest.(pair int string)

let check_fixture ?scope_lib name expected () =
  let code, lines = run ?scope_lib [ "lint_fixtures/" ^ name ] in
  Alcotest.(check int) "exit code" (if expected = [] then 0 else 1) code;
  Alcotest.(check (list finding)) "findings" expected (findings_of lines)

let fixture_cases =
  [
    ( "r1_bad.ml",
      None,
      [ (6, "R1"); (7, "R1"); (8, "R1"); (9, "R1"); (10, "R1"); (11, "R1");
        (12, "R1"); (13, "R1") ] );
    ( "r2_bad.ml",
      Some true,
      [ (7, "R2"); (8, "R2"); (9, "R2"); (10, "R2"); (11, "R2") ] );
    ("r3_bad.ml", None, [ (3, "R3"); (4, "R3") ]);
    ("r4_bad.ml", Some true, [ (4, "R4"); (5, "R4"); (6, "R4"); (7, "R4") ]);
    ("r5_bad.ml", None, [ (7, "R5"); (8, "R5"); (8, "R5"); (9, "R5") ]);
    ("clean.ml", Some true, []);
  ]

(* R2/R4 only apply in lib scope: out of scope (fixture paths contain
   no "lib") the binding/call findings vanish.  The attribute-grammar
   check is scope-independent, so r2_bad's invalid "spinlock"
   discipline must still be reported. *)
let test_scope_gating () =
  List.iter
    (fun (name, expected) ->
      let code, lines = run [ "lint_fixtures/" ^ name ] in
      Alcotest.(check (list finding))
        (name ^ " findings out of lib scope") expected (findings_of lines);
      Alcotest.(check int)
        (name ^ " exit code out of lib scope")
        (if expected = [] then 0 else 1)
        code)
    [ ("r2_bad.ml", [ (11, "R2") ]); ("r4_bad.ml", []) ]

let test_repo_clean () =
  let code, lines = run [ "../lib"; "../bin"; "../bench"; "."; "../tool" ] in
  Alcotest.(check (list finding)) "repo findings" [] (findings_of lines);
  Alcotest.(check int) "repo exit code" 0 code

(* ------------------------------------------------- fosc-race (R6-R9) *)

let check_race_fixture name expected () =
  let code, lines = run_race [ "race_fixtures/" ^ name ] in
  Alcotest.(check int) "exit code" (if expected = [] then 0 else 1) code;
  Alcotest.(check (list finding)) "findings" expected (findings_of lines)

(* Exact line/rule assertions: a shifted finding means the analyzer
   started anchoring somewhere else, which is a behavior change. *)
let race_fixture_cases =
  [
    ("r6_bad.cmt", [ (11, "R6") ]);
    ("r7_bad.cmt", [ (9, "R7") ]);
    ("r8_bad.cmt", [ (11, "R8") ]);
    ("r9_bad.cmt", [ (19, "R9"); (23, "R9") ]);
    (* Regression guard for the pre-PR Thermal.Reduced shape: a shared
       lazy record field forced inside a pool closure (Lazy.RacyLazy
       class).  The live code now prepares on the submitting domain and
       annotates the field; this fixture keeps the detector honest. *)
    ("lazy_regression.cmt", [ (17, "R8") ]);
    ("clean.cmt", []);
  ]

let test_race_repo_clean () =
  let code, lines = run_race [ "../lib" ] in
  Alcotest.(check (list finding)) "race findings" [] (findings_of lines);
  Alcotest.(check int) "race exit code" 0 code

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        List.map
          (fun (name, scope_lib, expected) ->
            Alcotest.test_case name `Quick
              (check_fixture ?scope_lib name expected))
          fixture_cases );
      ( "scope",
        [ Alcotest.test_case "R2/R4 gated by lib scope" `Quick test_scope_gating ]
      );
      ("repo", [ Alcotest.test_case "live repo lints clean" `Quick test_repo_clean ]);
      ( "race fixtures",
        List.map
          (fun (name, expected) ->
            Alcotest.test_case name `Quick (check_race_fixture name expected))
          race_fixture_cases );
      ( "race repo",
        [
          Alcotest.test_case "live lib cmts race-clean" `Quick
            test_race_repo_clean;
        ] );
    ]
