(* Differential tests for the sparse (CSR + Krylov) path: assembly must
   round-trip against dense matrices, spmv must agree with Mat.matvec,
   and the Krylov kernels must reproduce dense LU / expm results to
   <= 1e-9 on random SPD systems. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Sparse = Linalg.Sparse
module Krylov = Linalg.Krylov

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

(* Random sparse-ish dense matrix with ~density of entries set. *)
let random_dense rng rows cols ~density =
  Mat.init rows cols (fun _ _ ->
      if Random.State.float rng 1.0 < density then
        Random.State.float rng 2.0 -. 1.0
      else 0.)

(* Random RC-network-shaped SPD matrix: diagonally dominant symmetric,
   positive diagonal — same structure class as the symmetrized thermal
   conductance operator. *)
let random_spd rng n =
  let a = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.3 then begin
        let g = -.Random.State.float rng 1.0 in
        Mat.set a i j g;
        Mat.set a j i g
      end
    done
  done;
  for i = 0 to n - 1 do
    let off = ref 0. in
    for j = 0 to n - 1 do
      if j <> i then off := !off +. Float.abs (Mat.get a i j)
    done;
    Mat.set a i i (!off +. 0.1 +. Random.State.float rng 2.0)
  done;
  a

(* ------------------------------------------------------ CSR structure *)

let prop_dense_round_trip =
  QCheck.Test.make ~name:"of_dense |> to_dense is the identity" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 1 + Random.State.int rng 12
      and cols = 1 + Random.State.int rng 12 in
      let a = random_dense rng rows cols ~density:0.3 in
      Mat.approx_equal ~tol:0. a (Sparse.to_dense (Sparse.of_dense a)))

let prop_triplets_match_dense =
  QCheck.Test.make ~name:"of_triplets sums duplicates like dense assembly"
    ~count:100 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 1 + Random.State.int rng 8
      and cols = 1 + Random.State.int rng 8 in
      let n_trip = Random.State.int rng 40 in
      let trips =
        List.init n_trip (fun _ ->
            ( Random.State.int rng rows,
              Random.State.int rng cols,
              Random.State.float rng 2.0 -. 1.0 ))
      in
      let dense = Mat.zeros rows cols in
      List.iter
        (fun (i, j, v) -> Mat.set dense i j (Mat.get dense i j +. v))
        trips;
      let sparse = Sparse.of_triplets ~rows ~cols trips in
      Mat.approx_equal ~tol:1e-12 dense (Sparse.to_dense sparse))

let prop_spmv_matches_matvec =
  QCheck.Test.make ~name:"spmv = Mat.matvec" ~count:100 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 1 + Random.State.int rng 15
      and cols = 1 + Random.State.int rng 15 in
      let a = random_dense rng rows cols ~density:0.4 in
      let x = Vec.init cols (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      Vec.dist_inf (Sparse.spmv (Sparse.of_dense a) x) (Mat.matvec a x) <= 1e-12)

let prop_transpose_matches_dense =
  QCheck.Test.make ~name:"transpose agrees with dense transpose" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 1 + Random.State.int rng 10
      and cols = 1 + Random.State.int rng 10 in
      let a = random_dense rng rows cols ~density:0.3 in
      Mat.approx_equal ~tol:0.
        (Mat.transpose a)
        (Sparse.to_dense (Sparse.transpose (Sparse.of_dense a))))

let prop_sym_scale_matches_dense =
  QCheck.Test.make ~name:"sym_scale = diag(d) A diag(d)" ~count:100 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 1 + Random.State.int rng 10 in
      let a = random_dense rng n n ~density:0.4 in
      let d = Vec.init n (fun _ -> 0.1 +. Random.State.float rng 2.0) in
      let dense = Mat.matmul (Mat.diag d) (Mat.matmul a (Mat.diag d)) in
      Mat.approx_equal ~tol:1e-12 dense
        (Sparse.to_dense (Sparse.sym_scale (Sparse.of_dense a) d)))

let test_csr_units () =
  let a = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 1.); (2, 1, 5.); (0, 0, 2.) ] in
  Alcotest.(check int) "duplicates summed into one slot" 2 (Sparse.nnz a);
  Alcotest.(check (float 0.)) "summed value" 3. (Sparse.get a 0 0);
  Alcotest.(check (float 0.)) "missing entry reads 0" 0. (Sparse.get a 1 1);
  Alcotest.(check bool) "structural equality" true
    (Sparse.equal a (Sparse.of_triplets ~rows:3 ~cols:3 [ (2, 1, 5.); (0, 0, 3.) ]));
  Alcotest.(check bool) "asymmetric matrix detected" false (Sparse.is_symmetric a);
  let s =
    Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, -1.); (1, 0, -1.); (0, 0, 2.) ]
  in
  Alcotest.(check bool) "symmetric matrix detected" true (Sparse.is_symmetric s);
  Alcotest.(check (array (float 0.))) "diagonal" [| 2.; 0. |] (Sparse.diagonal s)

(* -------------------------------------------------------------- Krylov *)

let prop_cg_matches_lu =
  QCheck.Test.make ~name:"cg solves SPD systems like dense LU" ~count:60 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 20 in
      let a = random_spd rng n in
      let b = Vec.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let reference = Linalg.Lu.solve_vec (Linalg.Lu.factorize a) b in
      let sp = Sparse.of_dense a in
      let x =
        Krylov.cg ~precond:(Krylov.jacobi (Sparse.diagonal sp)) (Sparse.spmv sp) b
      in
      Vec.dist_inf reference x <= 1e-9)

let prop_expmv_matches_dense_expm =
  QCheck.Test.make ~name:"expmv = Sym_eig expm on SPD operators" ~count:60
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 20 in
      let a = random_spd rng n in
      let t = 0.01 +. Random.State.float rng 3.0 in
      let v = Vec.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let eig = Linalg.Sym_eig.decompose a in
      let reference =
        Mat.matvec (Linalg.Sym_eig.apply_function eig (fun lam -> Float.exp (-.t *. lam))) v
      in
      let sp = Sparse.of_dense a in
      let w = Krylov.expmv (Sparse.spmv sp) ~t v in
      Vec.dist_inf reference w <= 1e-9)

let prop_expmv_small_basis_splits_time =
  QCheck.Test.make ~name:"expmv stays accurate when m_max forces splitting"
    ~count:20 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 12 + Random.State.int rng 10 in
      let a = random_spd rng n in
      let t = 0.5 +. Random.State.float rng 2.0 in
      let v = Vec.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let eig = Linalg.Sym_eig.decompose a in
      let reference =
        Mat.matvec (Linalg.Sym_eig.apply_function eig (fun lam -> Float.exp (-.t *. lam))) v
      in
      let sp = Sparse.of_dense a in
      let w = Krylov.expmv ~m_max:6 (Sparse.spmv sp) ~t v in
      Vec.dist_inf reference w <= 1e-8)

let prop_smallest_eigs_match_dense =
  QCheck.Test.make ~name:"smallest_eigs agree with the dense eigensolve"
    ~count:40 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 16 in
      let k = 1 + Random.State.int rng (Stdlib.min 4 (n - 1)) in
      let a = random_spd rng n in
      let dense = Linalg.Sym_eig.decompose a in
      let sp = Sparse.of_dense a in
      let solve =
        let pre = Krylov.jacobi (Sparse.diagonal sp) in
        fun b -> Krylov.cg ~precond:pre (Sparse.spmv sp) b
      in
      let pairs = Krylov.smallest_eigs ~n ~k solve in
      Array.length pairs = k
      && Array.for_all
           (fun (lambda, w) ->
             (* Residual check ‖A w − λ w‖ ≤ tol·λ: robust to degenerate
                eigenvalues, unlike comparing eigenvectors directly. *)
             let r = Vec.sub (Sparse.spmv sp w) (Vec.scale lambda w) in
             Vec.norm2 r <= 1e-6 *. lambda
             && Float.abs (Vec.norm2 w -. 1.) <= 1e-9)
           pairs
      && Array.for_all
           (fun idx ->
             let lambda, _ = pairs.(idx) in
             Float.abs (lambda -. dense.eigenvalues.(idx))
             <= 1e-6 *. dense.eigenvalues.(idx))
           (Array.init k (fun i -> i)))

(* ------------------------------------------- thermal backend parity *)

(* The sparse engine must agree with the dense Model/Matex path to
   <= 1e-9 on every evaluator the policies use: steady states, exact
   transient steps, the periodic stable status, and both peak scans.
   Hotspot core-level models carry 3 nodes per core, so the 3x3 grid is
   the n = 27 ceiling named in the differential-test contract. *)

module Model = Thermal.Model
module Spec = Thermal.Spec
module Sp_model = Thermal.Sparse_model
module Matex = Thermal.Matex

let pm = Power.Power_model.default
let levels5 = Power.Vf.table_iv 5

let model3 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let model9 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let random_segments rng model n_segs =
  List.init n_segs (fun _ ->
      {
        Thermal.Matex.duration = 0.01 +. Random.State.float rng 0.5;
        psi =
          Array.init (Model.n_cores model) (fun _ -> Random.State.float rng 20.);
      })

let random_step_up rng ~n_cores ~period =
  Workload.Random_sched.step_up rng ~n_cores ~period ~max_intervals:5
    ~levels:levels5

let test_spec_model_round_trip () =
  List.iter
    (fun model ->
      let spec = Spec.of_model model in
      let rebuilt = Spec.to_model spec in
      let psi = Array.init (Model.n_cores model) (fun i -> 3. +. float_of_int i) in
      Alcotest.(check bool) "steady temps survive the spec round trip" true
        (Vec.dist_inf
           (Model.steady_core_temps model psi)
           (Model.steady_core_temps rebuilt psi)
        <= 1e-9))
    [ model3; model9 ]

let test_operator_is_symmetrized_conductance () =
  List.iter
    (fun model ->
      let eng = Sp_model.of_model model in
      let n = Model.n_nodes model in
      let a = Model.a_matrix model in
      let c = Model.capacitance model in
      (* A = -C^{-1} G', so M = C^{-1/2} G' C^{-1/2} = -C^{1/2} A C^{-1/2}. *)
      let expected =
        Mat.init n n (fun i j ->
            -.Mat.get a i j *. Float.sqrt c.(i) /. Float.sqrt c.(j))
      in
      Alcotest.(check bool) "assembled CSR is the symmetrized operator" true
        (Mat.approx_equal ~tol:1e-9 expected
           (Sparse.to_dense (Sp_model.operator eng)));
      Alcotest.(check bool) "operator is symmetric" true
        (Sparse.is_symmetric ~tol:1e-12 (Sp_model.operator eng)))
    [ model3; model9 ]

let prop_sparse_steady_matches_dense =
  QCheck.Test.make ~name:"sparse steady temps = dense steady temps" ~count:50
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = if seed mod 2 = 0 then model3 else model9 in
      let eng = Sp_model.of_model model in
      let psi =
        Array.init (Model.n_cores model) (fun _ -> Random.State.float rng 25.)
      in
      Vec.dist_inf
        (Sp_model.steady_core_temps eng psi)
        (Model.steady_core_temps model psi)
      <= 1e-9
      && Float.abs
           (Sp_model.steady_peak eng psi -. Vec.max (Model.steady_core_temps model psi))
         <= 1e-9)

let prop_sparse_trajectory_matches_dense =
  QCheck.Test.make ~name:"sparse step = Model.step along trajectories" ~count:40
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = if seed mod 2 = 0 then model3 else model9 in
      let eng = Sp_model.of_model model in
      let segs = random_segments rng model 5 in
      let theta = ref (Vec.zeros (Model.n_nodes model)) in
      let y = ref (Sp_model.ambient_state eng) in
      List.for_all
        (fun (s : Thermal.Matex.segment) ->
          theta := Model.step model ~dt:s.duration ~theta:!theta ~psi:s.psi;
          y := Sp_model.step eng ~dt:s.duration ~state:!y ~psi:s.psi;
          Vec.dist_inf !theta (Sp_model.to_theta eng !y) <= 1e-9
          && Float.abs
               (Sp_model.max_core_temp eng !y -. Model.max_core_temp model !theta)
             <= 1e-9)
        segs)

let prop_sparse_stable_matches_dense =
  QCheck.Test.make ~name:"sparse stable status = Matex.stable_start" ~count:40
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = if seed mod 2 = 0 then model3 else model9 in
      let eng = Sp_model.of_model model in
      let s = random_step_up rng ~n_cores:(Model.n_cores model) ~period:5. in
      let profile = Sched.Peak.profile model pm s in
      let dense = Matex.stable_start model profile in
      Vec.dist_inf dense (Sp_model.to_theta eng (Sp_model.stable_start eng profile))
      <= 1e-9
      && Vec.dist_inf
           (Matex.stable_core_temps model profile)
           (Sp_model.stable_core_temps eng profile)
         <= 1e-9
      && Float.abs
           (Matex.end_of_period_peak model profile
           -. Sp_model.end_of_period_peak eng profile)
         <= 1e-9)

let prop_sparse_peak_scan_matches_dense =
  QCheck.Test.make ~name:"sparse peak_scan = Matex.peak_scan" ~count:25 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let segs = random_segments rng model3 4 in
      Float.abs
        (Matex.peak_scan model3 ~samples_per_segment:16 segs
        -. Sp_model.peak_scan
             (Sp_model.of_model model3)
             ~samples_per_segment:16 segs)
      <= 1e-9)

let prop_sparse_peak_refined_matches_dense =
  QCheck.Test.make ~name:"sparse peak_refined = Matex.peak_refined" ~count:20
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ratio () = 0.1 +. Random.State.float rng 0.8 in
      let s =
        Sched.Schedule.two_mode ~period:0.1 ~low:[| 0.6; 0.6; 0.6 |]
          ~high:[| 1.3; 1.3; 1.3 |]
          ~high_ratio:[| ratio (); ratio (); ratio () |]
      in
      let profile = Sched.Peak.profile model3 pm s in
      Float.abs
        (Matex.peak_refined model3 ~samples_per_segment:16 profile
        -. Sp_model.peak_refined
             (Sp_model.of_model model3)
             ~samples_per_segment:16 profile)
      <= 1e-9)

let test_parallel_assembly_deterministic () =
  let spec = Spec.of_model model9 in
  let sequential = Util.Pool.create ~size:1 () in
  let parallel = Util.Pool.create ~size:4 () in
  let a = Sp_model.operator (Sp_model.of_spec ~pool:sequential spec) in
  let b = Sp_model.operator (Sp_model.of_spec ~pool:parallel spec) in
  Util.Pool.shutdown sequential;
  Util.Pool.shutdown parallel;
  Alcotest.(check bool) "assembly is bit-identical at any pool size" true
    (Sparse.equal a b)

let test_steady_batch_matches_sequential () =
  let eng = Sp_model.of_model model9 in
  let rng = Random.State.make [| 7 |] in
  let psis =
    List.init 12 (fun _ -> Array.init 9 (fun _ -> Random.State.float rng 25.))
  in
  let batched = Sp_model.steady_batch eng psis in
  let sequential = List.map (Sp_model.steady_state eng) psis in
  Alcotest.(check int) "batch preserves arity" (List.length sequential)
    (List.length batched);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "batched solve matches sequential" true
        (Vec.dist_inf a b <= 1e-12))
    batched sequential

(* ----------------------------- backend dispatch through Core.Eval *)

module Eval = Core.Eval
module Solver = Core.Solver

let seq = { Solver.default_params with Solver.par = false }

let test_backend_names () =
  let p = Workload.Configs.platform ~cores:3 ~levels:3 ~t_max:65. in
  Alcotest.(check string) "dense context wraps the modal engine" "dense-modal"
    (Eval.backend (Eval.create ~backend:Eval.Dense p)).Thermal.Backend.name;
  Alcotest.(check string) "sparse context wraps the superposition engine"
    "sparse-response"
    (Eval.backend (Eval.create ~backend:Eval.Sparse p)).Thermal.Backend.name

(* Every Eval entry point must answer the same (to 1e-9) from a Dense
   and a Sparse context on the 3x3 grid — the property that lets a
   policy switch backends without noticing. *)
let test_eval_backends_agree () =
  let p = Core.Platform.grid ~rows:3 ~cols:3 ~levels:levels5 ~t_max:80. () in
  let dense = Eval.create ~backend:Eval.Dense p in
  let sparse = Eval.create ~backend:Eval.Sparse p in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 8 do
    let v = Array.init 9 (fun _ -> 0.6 +. Random.State.float rng 0.7) in
    Alcotest.(check bool) "steady_peak agrees" true
      (Float.abs (Eval.steady_peak dense v -. Eval.steady_peak sparse v)
      <= 1e-9)
  done;
  for _ = 1 to 5 do
    let s = random_step_up rng ~n_cores:9 ~period:5. in
    Alcotest.(check bool) "step_up_peak agrees" true
      (Float.abs (Eval.step_up_peak dense s -. Eval.step_up_peak sparse s)
      <= 1e-9);
    Alcotest.(check bool) "stable_end_core_temps agrees" true
      (Vec.dist_inf
         (Eval.stable_end_core_temps dense s)
         (Eval.stable_end_core_temps sparse s)
      <= 1e-9);
    Alcotest.(check bool) "any_peak agrees" true
      (Float.abs
         (Eval.any_peak dense ~samples_per_segment:8 s
         -. Eval.any_peak sparse ~samples_per_segment:8 s)
      <= 1e-9)
  done;
  for _ = 1 to 5 do
    let ratio () = Random.State.float rng 1. in
    let low = Array.make 9 0.6 and high = Array.make 9 1.3 in
    let high_ratio = Array.init 9 (fun _ -> ratio ()) in
    Alcotest.(check bool) "two_mode_peak agrees" true
      (Float.abs
         (Eval.two_mode_peak dense ~period:0.1 ~low ~high ~high_ratio
         -. Eval.two_mode_peak sparse ~period:0.1 ~low ~high ~high_ratio)
      <= 1e-9);
    Alcotest.(check bool) "two_mode_end_core_temps agrees" true
      (Vec.dist_inf
         (Eval.two_mode_end_core_temps dense ~period:0.1 ~low ~high ~high_ratio)
         (Eval.two_mode_end_core_temps sparse ~period:0.1 ~low ~high
            ~high_ratio)
      <= 1e-9)
  done

(* All eight registered policies must solve unchanged on a Sparse
   context and land on the dense answer.  Search trajectories are
   identical as long as no comparison straddles the ~1e-12 backend
   disagreement, so the outcomes match far inside 1e-6. *)
let test_policies_run_on_either_backend () =
  let p = Workload.Configs.platform ~cores:3 ~levels:3 ~t_max:65. in
  List.iter
    (fun (pol : Solver.t) ->
      let d = Solver.run ~params:seq pol (Eval.create ~backend:Eval.Dense p) in
      let s = Solver.run ~params:seq pol (Eval.create ~backend:Eval.Sparse p) in
      Alcotest.(check bool)
        (pol.Solver.name ^ ": peaks agree across backends")
        true
        (Float.abs (d.Solver.peak -. s.Solver.peak) <= 1e-6);
      Alcotest.(check bool)
        (pol.Solver.name ^ ": throughputs agree across backends")
        true
        (Float.abs (d.Solver.throughput -. s.Solver.throughput) <= 1e-6);
      Array.iteri
        (fun i dv ->
          Alcotest.(check bool)
            (pol.Solver.name ^ ": delivered speeds agree across backends")
            true
            (Float.abs (dv -. s.Solver.voltages.(i)) <= 1e-6))
        d.Solver.voltages)
    Core.Registry.all

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "sparse"
    [
      qsuite "csr"
        [
          prop_dense_round_trip;
          prop_triplets_match_dense;
          prop_spmv_matches_matvec;
          prop_transpose_matches_dense;
          prop_sym_scale_matches_dense;
        ];
      ("csr units", [ Alcotest.test_case "assembly basics" `Quick test_csr_units ]);
      qsuite "krylov"
        [
          prop_cg_matches_lu;
          prop_expmv_matches_dense_expm;
          prop_expmv_small_basis_splits_time;
          prop_smallest_eigs_match_dense;
        ];
      qsuite "thermal parity"
        [
          prop_sparse_steady_matches_dense;
          prop_sparse_trajectory_matches_dense;
          prop_sparse_stable_matches_dense;
          prop_sparse_peak_scan_matches_dense;
          prop_sparse_peak_refined_matches_dense;
        ];
      ( "thermal units",
        [
          Alcotest.test_case "spec/model round trip" `Quick
            test_spec_model_round_trip;
          Alcotest.test_case "operator assembly" `Quick
            test_operator_is_symmetrized_conductance;
          Alcotest.test_case "pool-deterministic assembly" `Quick
            test_parallel_assembly_deterministic;
          Alcotest.test_case "steady_batch" `Quick
            test_steady_batch_matches_sequential;
        ] );
      ( "backend",
        [
          Alcotest.test_case "backend names" `Quick test_backend_names;
          Alcotest.test_case "eval entry points agree" `Quick
            test_eval_backends_agree;
          Alcotest.test_case "all policies on either backend" `Quick
            test_policies_run_on_either_backend;
        ] );
    ]
