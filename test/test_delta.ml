(* Differential tests for the prepared-base delta evaluators
   (DESIGN.md §14) and the TPT loops' delta tier: a single-core delta
   off a prepared base must agree with the full fused evaluation of the
   modified candidate to <= 1e-9 on both backends, the per-domain base
   state must survive interleaved exact evaluations and be overwritten
   by a re-prepare, the rebuilt loops at [delta_margin:0.] must walk
   bit-identical step sequences to the pre-delta loops at pool sizes 1
   and 4, and a positive margin must never compromise the constraint. *)

module Vec = Linalg.Vec
module Model = Thermal.Model
module Modal = Thermal.Modal
module Sp = Thermal.Sparse_model
module Resp = Thermal.Sparse_response
module Peak = Sched.Peak
module Pm = Power.Power_model
module P = Core.Platform
module Tpt = Core.Tpt
module Eval = Core.Eval

let pm = Pm.default
let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

let check_bits what a b =
  Alcotest.(check int64) what (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Random small platform (<= 27 nodes), varied ambient and leakage, as
   in the other differential suites. *)
let random_model rng =
  let rows = 1 + Random.State.int rng 2 in
  let cols = 1 + Random.State.int rng 3 in
  let ambient = -10. +. Random.State.float rng 70. in
  let leak_beta = Random.State.float rng 0.1 in
  Thermal.Hotspot.core_level ~ambient ~leak_beta
    (Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3)

(* Random aligned two-mode base, deliberately hitting the snapped
   all-low / all-high boundaries the decomposition clamps at. *)
let random_ratio rng =
  let u = Random.State.float rng 1. in
  if u < 0.15 then 0.
  else if u < 0.3 then 1.
  else Random.State.float rng 1.

let random_two_mode rng n =
  let period = 0.02 +. Random.State.float rng 0.3 in
  let low = Array.init n (fun _ -> 0.6 +. Random.State.float rng 0.4) in
  let high = Array.init n (fun i -> low.(i) +. Random.State.float rng 0.7) in
  let high_ratio = Array.init n (fun _ -> random_ratio rng) in
  (period, low, high, high_ratio)

(* A candidate change for one core: usually just the duty cycle (the
   cancellation-free same-voltage path), sometimes new voltages too
   (the general two-drive path). *)
let perturb rng ~low ~high core =
  let r' = random_ratio rng in
  if Random.State.float rng 1. < 0.3 then begin
    let l' = 0.6 +. Random.State.float rng 0.4 in
    (l', l' +. Random.State.float rng 0.7, r')
  end
  else (low.(core), high.(core), r')

(* ------------------------------------------- delta vs full, dense *)

let prop_dense_delta_matches_full =
  QCheck.Test.make ~name:"dense delta peak/temp = full fused evaluation"
    ~count:40 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Modal.make model in
      let n = Model.n_cores model in
      let period, low, high, high_ratio = random_two_mode rng n in
      Peak.two_mode_delta_base ~engine:eng model pm ~period ~low ~high
        ~high_ratio;
      let ok = ref true in
      for core = 0 to n - 1 do
        let l', h', r' = perturb rng ~low ~high core in
        let low2 = Array.copy low
        and high2 = Array.copy high
        and hr2 = Array.copy high_ratio in
        low2.(core) <- l';
        high2.(core) <- h';
        hr2.(core) <- r';
        let dpk =
          Peak.two_mode_delta_peak ~engine:eng model pm ~core ~low:l' ~high:h'
            ~high_ratio:r'
        in
        (* The full evaluation runs through the SAME engine's streaming
           scratch between delta calls — also exercising base-state
           isolation on the hot path. *)
        let full =
          Peak.of_two_mode ~engine:eng model pm ~period ~low:low2 ~high:high2
            ~high_ratio:hr2
        in
        if Float.abs (dpk -. full) > 1e-9 then ok := false;
        let at = Random.State.int rng n in
        let dt =
          Peak.two_mode_delta_temp_at ~engine:eng model pm ~at ~core ~low:l'
            ~high:h' ~high_ratio:r'
        in
        let temps =
          Peak.two_mode_end_core_temps ~engine:eng model pm ~period ~low:low2
            ~high:high2 ~high_ratio:hr2
        in
        if Float.abs (dt -. temps.(at)) > 1e-9 then ok := false
      done;
      !ok)

(* ------------------------------------------ delta vs full, sparse *)

let sparse_parity_prop ~pool_size =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "sparse delta peak/temp = full fused evaluation (pool %d)"
         pool_size)
    ~count:25 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let pool = Util.Pool.create ~size:pool_size () in
      let eng = Sp.of_model ~pool model in
      let resp = Resp.build eng in
      let backend = Thermal.Backend.of_response resp in
      let cache = Peak.Cache.create ~max_entries:0 () in
      let n = Model.n_cores model in
      let period, low, high, high_ratio = random_two_mode rng n in
      Peak.response_two_mode_delta_base resp pm ~period ~low ~high ~high_ratio;
      let ok = ref true in
      for core = 0 to n - 1 do
        let l', h', r' = perturb rng ~low ~high core in
        let low2 = Array.copy low
        and high2 = Array.copy high
        and hr2 = Array.copy high_ratio in
        low2.(core) <- l';
        high2.(core) <- h';
        hr2.(core) <- r';
        let dpk =
          Peak.response_two_mode_delta_peak resp pm ~core ~low:l' ~high:h'
            ~high_ratio:r'
        in
        let full =
          Peak.response_of_two_mode_cached cache resp pm ~period ~low:low2
            ~high:high2 ~high_ratio:hr2
        in
        if Float.abs (dpk -. full) > 1e-9 then ok := false;
        let at = Random.State.int rng n in
        let dt =
          Peak.response_two_mode_delta_temp_at resp pm ~at ~core ~low:l'
            ~high:h' ~high_ratio:r'
        in
        let temps =
          Peak.backend_two_mode_end_core_temps backend pm ~period ~low:low2
            ~high:high2 ~high_ratio:hr2
        in
        if Float.abs (dt -. temps.(at)) > 1e-9 then ok := false
      done;
      Util.Pool.shutdown pool;
      !ok)

(* ------------------------------------- base-state isolation (DLS) *)

let model_a =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let test_dense_base_survives_exact_evals () =
  let eng = Modal.make model_a in
  let n = Model.n_cores model_a in
  let period = 0.1 in
  let low = Array.make n 0.7 and high = Array.make n 1.2 in
  let high_ratio = [| 0.3; 0.6; 0.9 |] in
  Peak.two_mode_delta_base ~engine:eng model_a pm ~period ~low ~high
    ~high_ratio;
  let d1 =
    Peak.two_mode_delta_peak ~engine:eng model_a pm ~core:1 ~low:0.7 ~high:1.2
      ~high_ratio:0.45
  in
  (* Unrelated full evaluations run through the same engine's streaming
     scratch and decay tables; the prepared base must be untouched. *)
  for k = 1 to 5 do
    let r = 0.1 *. float_of_int k in
    ignore
      (Peak.of_two_mode ~engine:eng model_a pm ~period:0.07 ~low ~high
         ~high_ratio:[| r; 1. -. r; 0.5 |]
        : float)
  done;
  let d2 =
    Peak.two_mode_delta_peak ~engine:eng model_a pm ~core:1 ~low:0.7 ~high:1.2
      ~high_ratio:0.45
  in
  check_bits "delta unchanged by interleaved exact evals" d1 d2;
  (* Re-preparing a different base overwrites deterministically. *)
  Peak.two_mode_delta_base ~engine:eng model_a pm ~period:0.07 ~low ~high
    ~high_ratio:[| 0.2; 0.2; 0.2 |];
  let e1 =
    Peak.two_mode_delta_peak ~engine:eng model_a pm ~core:0 ~low:0.7 ~high:1.2
      ~high_ratio:0.8
  in
  Peak.two_mode_delta_base ~engine:eng model_a pm ~period ~low ~high
    ~high_ratio;
  Peak.two_mode_delta_base ~engine:eng model_a pm ~period:0.07 ~low ~high
    ~high_ratio:[| 0.2; 0.2; 0.2 |];
  let e2 =
    Peak.two_mode_delta_peak ~engine:eng model_a pm ~core:0 ~low:0.7 ~high:1.2
      ~high_ratio:0.8
  in
  check_bits "re-prepared base replaces the old one" e1 e2

let test_sparse_base_survives_exact_evals () =
  let eng = Sp.of_model model_a in
  let resp = Resp.build eng in
  let cache = Peak.Cache.create ~max_entries:0 () in
  let n = Model.n_cores model_a in
  let period = 0.1 in
  let low = Array.make n 0.7 and high = Array.make n 1.2 in
  let high_ratio = [| 0.3; 0.6; 0.9 |] in
  Peak.response_two_mode_delta_base resp pm ~period ~low ~high ~high_ratio;
  let d1 =
    Peak.response_two_mode_delta_peak resp pm ~core:1 ~low:0.7 ~high:1.2
      ~high_ratio:0.45
  in
  for k = 1 to 5 do
    let r = 0.1 *. float_of_int k in
    ignore
      (Peak.response_of_two_mode_cached cache resp pm ~period:0.07 ~low ~high
         ~high_ratio:[| r; 1. -. r; 0.5 |]
        : float)
  done;
  let d2 =
    Peak.response_two_mode_delta_peak resp pm ~core:1 ~low:0.7 ~high:1.2
      ~high_ratio:0.45
  in
  check_bits "sparse delta unchanged by interleaved exact evals" d1 d2

(* --------------------- margin-0 trajectory = pre-delta loop, bitwise *)

(* The pre-delta-tier loops, reimplemented verbatim from the old source
   (per-iteration metric + peak recomputation, scalar candidate scan),
   as the trajectory oracle. *)
let two_mode_ratio (c : Tpt.config) =
  Array.init
    (Array.length c.Tpt.v_low)
    (fun i -> Float.max 0. (Float.min 1. (c.Tpt.high_time.(i) /. c.Tpt.period)))

let hot_metric (_p : P.t) ~eval (c : Tpt.config) =
  Eval.two_mode_end_core_temps eval ~period:c.Tpt.period ~low:c.Tpt.v_low
    ~high:c.Tpt.v_high ~high_ratio:(two_mode_ratio c)

let adjustable (c : Tpt.config) i =
  c.Tpt.high_time.(i) > 1e-12 && c.Tpt.v_high.(i) -. c.Tpt.v_low.(i) > 1e-12

let raisable (c : Tpt.config) i t_unit =
  c.Tpt.period -. c.Tpt.high_time.(i) >= t_unit -. 1e-12
  && c.Tpt.v_high.(i) -. c.Tpt.v_low.(i) > 1e-12

let with_high_time (c : Tpt.config) i dt =
  let high_time = Array.copy c.Tpt.high_time in
  high_time.(i) <-
    Float.max 0. (Float.min c.Tpt.period (high_time.(i) +. dt));
  { c with Tpt.high_time }

let old_adjust (p : P.t) ~eval ~t_unit c =
  let n = Array.length c.Tpt.v_low in
  let rec loop c steps =
    let temps = hot_metric p ~eval c in
    let current_peak = Tpt.peak p ~eval c in
    if current_peak <= p.P.t_max +. 1e-9 then (c, steps)
    else begin
      let hottest = Vec.argmax temps in
      let candidate_temps =
        Array.init n (fun j ->
            if adjustable c j then
              Some (hot_metric p ~eval (with_high_time c j (-.t_unit))).(hottest)
            else None)
      in
      let best = ref None in
      for j = 0 to n - 1 do
        match candidate_temps.(j) with
        | None -> ()
        | Some candidate_temp ->
            let dt = temps.(hottest) -. candidate_temp in
            let tpt =
              dt /. ((c.Tpt.v_high.(j) -. c.Tpt.v_low.(j)) *. t_unit)
            in
            (match !best with
            | Some (_, best_tpt) when best_tpt >= tpt -> ()
            | _ -> best := Some (j, tpt))
      done;
      match !best with
      | None -> (c, steps)
      | Some (j, _) -> loop (with_high_time c j (-.t_unit)) (steps + 1)
    end
  in
  loop c 0

let old_fill (p : P.t) ~eval ~t_unit c =
  let n = Array.length c.Tpt.v_low in
  let rec loop c base_peak steps =
    if base_peak > p.P.t_max -. 1e-9 then (c, steps)
    else begin
      let candidate_peaks =
        Array.init n (fun j ->
            if raisable c j t_unit then
              Some (Tpt.peak p ~eval (with_high_time c j t_unit))
            else None)
      in
      let best = ref None in
      for j = 0 to n - 1 do
        match candidate_peaks.(j) with
        | Some candidate_peak when candidate_peak <= p.P.t_max +. 1e-9 ->
            let gain = (c.Tpt.v_high.(j) -. c.Tpt.v_low.(j)) *. t_unit in
            let cost = Float.max 1e-12 (candidate_peak -. base_peak) in
            let index = gain /. cost in
            (match !best with
            | Some (_, _, best_index) when best_index >= index -> ()
            | _ -> best := Some (j, candidate_peak, index))
        | _ -> ()
      done;
      match !best with
      | None -> (c, steps)
      | Some (j, candidate_peak, _) ->
          loop (with_high_time c j t_unit) candidate_peak (steps + 1)
    end
  in
  loop c (Tpt.peak p ~eval c) 0

let platform3 () = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65.

(* The motivation experiment's violating seed config: known to drive
   the adjustment loop through a multi-step trajectory. *)
let seed_config (p : P.t) period =
  let n = P.n_cores p in
  let ideal = Core.Ideal.solve p in
  let ratios =
    Array.map (fun v -> (v -. 0.6) /. (1.3 -. 0.6)) ideal.Core.Ideal.voltages
  in
  {
    Tpt.period;
    v_low = Array.make n 0.6;
    v_high = Array.make n 1.3;
    high_time = Array.map (fun r -> r *. period) ratios;
    offset = Array.make n 0.;
  }

let check_config what (a : Tpt.config) (b : Tpt.config) =
  Array.iteri
    (fun i h ->
      check_bits (Printf.sprintf "%s high_time.(%d)" what i) h
        b.Tpt.high_time.(i))
    a.Tpt.high_time

let test_margin0_trajectory_matches_old () =
  List.iter
    (fun (pname, size) ->
      let pool = Util.Pool.create ~size () in
      let p = platform3 () in
      let period = 0.02 in
      let t_unit = period /. 200. in
      let c0 = seed_config p period in
      let ev_old = Eval.create ~pool p in
      let adj_old, steps_old = old_adjust p ~eval:ev_old ~t_unit c0 in
      let ev_new = Eval.create ~pool p in
      let adj_new, steps_new =
        Tpt.adjust_to_constraint p ~eval:ev_new ~t_unit c0
      in
      Alcotest.(check int)
        (pname ^ " adjust step count") steps_old steps_new;
      check_config (pname ^ " adjust") adj_old adj_new;
      (* Fill back up from a drained config: same oracle treatment. *)
      let drained =
        { c0 with Tpt.high_time = Array.map (fun h -> 0.25 *. h) c0.Tpt.high_time }
      in
      let fill_old, fsteps_old = old_fill p ~eval:ev_old ~t_unit drained in
      let fill_new, fsteps_new =
        Tpt.fill_headroom p ~eval:ev_new ~t_unit drained
      in
      Alcotest.(check int) (pname ^ " fill step count") fsteps_old fsteps_new;
      check_config (pname ^ " fill") fill_old fill_new;
      Util.Pool.shutdown pool)
    [ ("pool1", 1); ("pool4", 4) ]

(* -------------------------- positive margin: constraint soundness *)

let test_margin_soundness_dense () =
  List.iter
    (fun (pname, size) ->
      let pool = Util.Pool.create ~size () in
      let p = platform3 () in
      let period = 0.02 in
      let t_unit = period /. 200. in
      let c0 = seed_config p period in
      let ev = Eval.create ~pool p in
      List.iter
        (fun delta_margin ->
          let adj, _ =
            Tpt.adjust_to_constraint p ~eval:ev ~t_unit ~delta_margin c0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s adjust margin %.1f meets constraint" pname
               delta_margin)
            true
            (Tpt.peak p ~eval:ev adj <= p.P.t_max +. 1e-9);
          let drained =
            {
              c0 with
              Tpt.high_time = Array.map (fun h -> 0.25 *. h) c0.Tpt.high_time;
            }
          in
          let filled, _ =
            Tpt.fill_headroom p ~eval:ev ~t_unit ~delta_margin drained
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s fill margin %.1f stays feasible" pname
               delta_margin)
            true
            (Tpt.peak p ~eval:ev filled <= p.P.t_max +. 1e-9))
        [ 0.1; 0.5; 2.0 ];
      Util.Pool.shutdown pool)
    [ ("pool1", 1); ("pool4", 4) ]

let test_margin_soundness_sparse () =
  let p =
    P.sheet ~rows:2 ~cols:2 ~levels:(Power.Vf.table_iv 3) ~t_max:65. ()
  in
  let ev = Eval.create ~backend:Eval.Sparse p in
  let r_exact = Core.Ao.solve ~eval:ev ~par:false p in
  let r_delta = Core.Ao.solve ~eval:ev ~par:false ~delta_margin:0.5 p in
  Alcotest.(check bool)
    "sparse AO with delta tier meets constraint" true
    (Tpt.peak p ~eval:ev r_delta.Core.Ao.config <= p.P.t_max +. 1e-9);
  (* The exact and delta searches may legitimately pick different
     trajectories, but both must land feasible. *)
  Alcotest.(check bool)
    "sparse AO exact baseline feasible" true
    (Tpt.peak p ~eval:ev r_exact.Core.Ao.config <= p.P.t_max +. 1e-9)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "delta"
    [
      qsuite "parity"
        [
          prop_dense_delta_matches_full;
          sparse_parity_prop ~pool_size:1;
          sparse_parity_prop ~pool_size:4;
        ];
      ( "base-state",
        [
          Alcotest.test_case "dense base survives exact evals" `Quick
            test_dense_base_survives_exact_evals;
          Alcotest.test_case "sparse base survives exact evals" `Quick
            test_sparse_base_survives_exact_evals;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "margin 0 = pre-delta loops, bitwise" `Quick
            test_margin0_trajectory_matches_old;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "dense margins meet the constraint" `Quick
            test_margin_soundness_dense;
          Alcotest.test_case "sparse AO delta tier feasible" `Quick
            test_margin_soundness_sparse;
        ] );
    ]
