(* R7 fixture: a bare lock/unlock pair broken by a raise-capable
   section.  [Hashtbl.find] raises [Not_found], leaving [lock] held;
   the _opt variant below is the whitelisted non-raising shape. *)

let lock = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 8

let bad_find k =
  Mutex.lock lock;
  let v = Hashtbl.find table k in
  Mutex.unlock lock;
  v

let good_find k =
  Mutex.lock lock;
  let v = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  v
