(* R6 fixture: a pool closure reaching unguarded module-level mutable
   state.  The mini Pool module normalizes to the same "Pool.map" key
   as Util.Pool, so the analyzer treats [work] as a parallel entry. *)

module Pool = struct
  let map f xs = List.map f xs
end

let tally : (int, int) Hashtbl.t = Hashtbl.create 16

let work xs = Pool.map (fun x -> Hashtbl.replace tally x x; x + 1) xs
