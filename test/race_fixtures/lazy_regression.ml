(* Regression model of Thermal.Reduced's inner lazy tier before this
   repo adopted the forced-before-parallel contract: a shared record
   field forced inside a pool closure.  Two workers first-forcing
   [rom.tables] concurrently raise Lazy.RacyLazy — the exact crash
   class the real code prevents by calling [Reduced.prepare] on the
   submitting domain and annotating the field.  fosc-race must flag
   the unannotated force. *)

module Pool = struct
  let map f xs = List.map f xs
end

type rom = { tables : float array Lazy.t }

let make () = { tables = lazy (Array.make 4 0.) }

let scores rom xs = Pool.map (fun i -> (Lazy.force rom.tables).(i)) xs
