(* Clean fixture: the blessed pattern for each race rule.  Must produce
   zero findings. *)

module Pool = struct
  let map f xs = List.map f xs
end

let counter = Atomic.make 0
let guarded : (int, int) Hashtbl.t = Hashtbl.create 8 [@@fosc.guarded "mutex"]
let glock = Mutex.create ()

(* R7: raise-capable section under Fun.protect. *)
let locked_add k v =
  Mutex.lock glock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock glock)
    (fun () -> Hashtbl.replace guarded k v)

(* R7: straight-line whitelisted section with a bare pair. *)
let bare_ok () =
  Mutex.lock glock;
  let n = Hashtbl.length guarded in
  Mutex.unlock glock;
  n

let scratch_key = Domain.DLS.new_key (fun () -> Array.make 8 0.)

(* R9: scratch stays domain-local; only a copy escapes. *)
let solve x =
  let s = Domain.DLS.get scratch_key in
  s.(0) <- x;
  Array.copy s

let run xs =
  Pool.map
    (fun x ->
      Atomic.incr counter;
      locked_add x x;
      (solve (float_of_int x)).(0))
    xs

let totals () = (Atomic.get counter, bare_ok ())
