(* R8 fixture: first force of a shared lazy inside a parallel region —
   two workers racing on it raise Lazy.RacyLazy.  The second entry
   carries the waiver annotation and must stay silent. *)

module Pool = struct
  let map f xs = List.map f xs
end

let table = lazy (Array.init 4 float_of_int)

let scores xs = Pool.map (fun i -> (Lazy.force table).(i)) xs

let waived xs =
  Pool.map
    (fun i ->
      (Lazy.force table
      [@fosc.forced_before_parallel "fixture: the tests force it first"])
        .(i))
    xs
