(* R9 fixture: Domain.DLS scratch escaping its domain, both ways the
   analyzer catches — stored into a shared structure from inside the
   closure, and returned from a pool-reachable helper. *)

module Pool = struct
  let map f xs = List.map f xs
end

let scratch_key = Domain.DLS.new_key (fun () -> Array.make 8 0.)

let sink : float array Queue.t = Queue.create ()
[@@fosc.unguarded "fixture: only the R9 escape is under test here"]

let leak xs =
  Pool.map
    (fun x ->
      let s = Domain.DLS.get scratch_key in
      s.(0) <- float_of_int x;
      Queue.push s sink;
      s.(0))
    xs

let grab () = Domain.DLS.get scratch_key

let use xs = Pool.map (fun x -> (grab ()).(0) +. float_of_int x) xs
