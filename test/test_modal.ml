(* Differential tests for the modal (eigenbasis) evaluation engine: the
   Matex hot path must agree with the reference Model.step /
   Model.propagator implementations to <= 1e-9 on trajectories, stable
   statuses and refined peaks. *)

module Vec = Linalg.Vec
module Model = Thermal.Model
module Modal = Thermal.Modal
module Matex = Thermal.Matex

let pm = Power.Power_model.default
let levels5 = Power.Vf.table_iv 5

let model3 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let model9 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let model2 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3)

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

(* Random piecewise-constant power sequence on [model]. *)
let random_segments rng model n_segs =
  List.init n_segs (fun _ ->
      {
        Thermal.Matex.duration = 0.01 +. Random.State.float rng 0.5;
        psi =
          Array.init (Model.n_cores model) (fun _ ->
              Random.State.float rng 20.);
      })

let random_step_up rng ~n_cores ~period =
  Workload.Random_sched.step_up rng ~n_cores ~period ~max_intervals:5
    ~levels:levels5

(* ------------------------------------------------- trajectory agreement *)

let prop_trajectory_matches_reference model name =
  QCheck.Test.make ~name ~count:50 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let segs = random_segments rng model 6 in
      let eng = Modal.make model in
      let theta = ref (Vec.zeros (Model.n_nodes model)) in
      let z = ref (Modal.ambient_state eng) in
      List.for_all
        (fun (s : Thermal.Matex.segment) ->
          theta := Model.step model ~dt:s.duration ~theta:!theta ~psi:s.psi;
          z := Modal.step eng ~dt:s.duration ~z:!z ~psi:s.psi;
          let round_trip = Modal.of_modal eng !z in
          Vec.dist_inf !theta round_trip <= 1e-9
          && Float.abs
               (Modal.max_core_temp eng !z -. Model.max_core_temp model !theta)
             <= 1e-9)
        segs)

(* Interior sampling: Modal.at must agree with a direct Model.step of the
   same offset. *)
let prop_interior_samples_match =
  QCheck.Test.make ~name:"Modal.at matches Model.step at interior times" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = model3 in
      let psi = Array.init 3 (fun _ -> Random.State.float rng 20.) in
      let duration = 0.2 +. Random.State.float rng 1.0 in
      let theta0 =
        Array.init (Model.n_nodes model) (fun _ -> Random.State.float rng 30.)
      in
      let eng = Modal.make model in
      let seg = Modal.segment eng ~duration ~psi in
      let z0 = Modal.to_modal eng theta0 in
      List.for_all
        (fun frac ->
          let t = frac *. duration in
          let reference = Model.step model ~dt:t ~theta:theta0 ~psi in
          let modal = Modal.of_modal eng (Modal.at seg ~t_rel:t z0) in
          Vec.dist_inf reference modal <= 1e-9)
        [ 0.1; 0.37; 0.5; 0.99 ])

(* ------------------------------------------------ stable-status agreement *)

let prop_stable_start_matches model name =
  QCheck.Test.make ~name ~count:50 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s = random_step_up rng ~n_cores:(Model.n_cores model) ~period:5. in
      let profile = Sched.Peak.profile model pm s in
      let reference = Matex.Reference.stable_start model profile in
      let modal = Matex.stable_start model profile in
      Vec.dist_inf reference modal <= 1e-9)

let prop_stable_core_temps_match =
  QCheck.Test.make ~name:"stable_core_temps = core temps of stable_start"
    ~count:50 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s = random_step_up rng ~n_cores:3 ~period:5. in
      let profile = Sched.Peak.profile model3 pm s in
      let via_state =
        Model.core_temps_of_theta model3 (Matex.stable_start model3 profile)
      in
      let direct = Matex.stable_core_temps model3 profile in
      Vec.dist_inf via_state direct <= 1e-9)

(* ------------------------------------------------------- peak agreement *)

let prop_peak_scan_matches =
  QCheck.Test.make ~name:"peak_scan agrees with reference" ~count:50 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let segs = random_segments rng model3 4 in
      let reference = Matex.Reference.peak_scan model3 ~samples_per_segment:16 segs in
      let modal = Matex.peak_scan model3 ~samples_per_segment:16 segs in
      Float.abs (reference -. modal) <= 1e-9)

(* The Fig. 2 two-mode schedules, evaluated by both peak_refined paths. *)
let test_peak_refined_fig2 () =
  let seg d v = { Sched.Schedule.duration = d; voltage = v } in
  let base =
    Sched.Schedule.make ~period:0.1
      [| [ seg 0.05 1.3; seg 0.05 0.6 ]; [ seg 0.05 0.6; seg 0.05 1.3 ] |]
  in
  let single =
    Sched.Schedule.make ~period:0.1
      [|
        [ seg 0.025 1.3; seg 0.025 0.6; seg 0.025 1.3; seg 0.025 0.6 ];
        [ seg 0.05 0.6; seg 0.05 1.3 ];
      |]
  in
  List.iteri
    (fun i s ->
      let profile = Sched.Peak.profile model2 pm s in
      let reference =
        Matex.Reference.peak_refined model2 ~samples_per_segment:32 profile
      in
      let modal = Matex.peak_refined model2 ~samples_per_segment:32 profile in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "fig2 schedule %d refined peak" i)
        reference modal)
    [ base; single; Sched.Oscillate.oscillate 2 base ]

let prop_peak_refined_matches =
  QCheck.Test.make ~name:"peak_refined agrees with reference (two-mode)" ~count:30
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let ratio () = 0.1 +. Random.State.float rng 0.8 in
      let s =
        Sched.Schedule.two_mode ~period:0.1 ~low:[| 0.6; 0.6; 0.6 |]
          ~high:[| 1.3; 1.3; 1.3 |]
          ~high_ratio:[| ratio (); ratio (); ratio () |]
      in
      let profile = Sched.Peak.profile model3 pm s in
      let reference =
        Matex.Reference.peak_refined model3 ~samples_per_segment:16 profile
      in
      let modal = Matex.peak_refined model3 ~samples_per_segment:16 profile in
      Float.abs (reference -. modal) <= 1e-9)

(* ------------------------------------------------- engine-level algebra *)

let test_round_trip () =
  let eng = Modal.make model9 in
  let theta = Array.init (Model.n_nodes model9) (fun i -> float_of_int i +. 0.5) in
  let back = Modal.of_modal eng (Modal.to_modal eng theta) in
  Alcotest.(check bool) "W (W^-1 theta) = theta" true (Vec.dist_inf theta back <= 1e-9)

let test_z_inf_is_steady_state () =
  let eng = Modal.make model9 in
  let psi = Array.init 9 (fun i -> 5. +. float_of_int i) in
  let z = Modal.z_inf eng psi in
  (* Stepping the steady state must leave it fixed. *)
  let z' = Modal.step eng ~dt:3.7 ~z ~psi in
  Alcotest.(check bool) "steady state is a fixed point" true
    (Vec.dist_inf z z' <= 1e-9);
  Alcotest.(check bool) "core temps match steady_core_temps" true
    (Vec.dist_inf (Modal.core_temps eng z) (Model.steady_core_temps model9 psi)
    <= 1e-9)

let test_stable_z_periodicity () =
  let eng = Modal.make model9 in
  let rng = Random.State.make [| 42 |] in
  let profile = random_segments rng model9 5 in
  let segs =
    List.map
      (fun (s : Thermal.Matex.segment) ->
        Modal.segment eng ~duration:s.duration ~psi:s.psi)
      profile
  in
  let z_star = Modal.stable_z eng segs in
  let z_end = List.fold_left (fun z s -> Modal.advance s z) z_star segs in
  Alcotest.(check bool) "stable status repeats after one period" true
    (Vec.dist_inf z_star z_end <= 1e-9)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "modal"
    [
      qsuite "trajectories"
        [
          prop_trajectory_matches_reference model3 "modal = reference (3x1)";
          prop_trajectory_matches_reference model9 "modal = reference (3x3)";
          prop_interior_samples_match;
        ];
      qsuite "stable status"
        [
          prop_stable_start_matches model3 "stable_start old = new (3x1)";
          prop_stable_start_matches model9 "stable_start old = new (3x3)";
          prop_stable_core_temps_match;
        ];
      qsuite "peaks" [ prop_peak_scan_matches; prop_peak_refined_matches ];
      ( "units",
        [
          Alcotest.test_case "fig2 refined peaks" `Quick test_peak_refined_fig2;
          Alcotest.test_case "modal round trip" `Quick test_round_trip;
          Alcotest.test_case "z_inf fixed point" `Quick test_z_inf_is_steady_state;
          Alcotest.test_case "stable_z periodicity" `Quick test_stable_z_periodicity;
        ] );
    ]
