(* Tests for the thermal substrate: floorplans, RC networks, the compact
   model, the MatEx analytic solver and traces — including cross-validation
   of every closed-form solution against direct ODE integration. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Fp = Thermal.Floorplan
module Rc = Thermal.Rc_network
module Model = Thermal.Model
module Matex = Thermal.Matex

let check_close tol = Alcotest.(check (float tol))

let grid3 = Fp.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3
let model3 () = Thermal.Hotspot.core_level grid3

let psi_of v = if Float.equal v 0. then 0. else 0.5 +. (9. *. (v ** 3.))
let psi_vec vs = Array.map psi_of vs

(* ------------------------------------------------------------ floorplan *)

let test_grid_geometry () =
  Alcotest.(check int) "3 blocks" 3 (Fp.n_blocks grid3);
  let b1 = grid3.Fp.blocks.(1) in
  check_close 1e-12 "x of middle core" 4e-3 b1.Fp.x;
  check_close 1e-15 "area" 16e-6 (Fp.area b1)

let test_shared_edges () =
  let b0 = grid3.Fp.blocks.(0) and b1 = grid3.Fp.blocks.(1) and b2 = grid3.Fp.blocks.(2) in
  check_close 1e-12 "adjacent cores share 4mm" 4e-3 (Fp.shared_edge b0 b1);
  check_close 1e-12 "non-adjacent cores share nothing" 0. (Fp.shared_edge b0 b2);
  check_close 1e-12 "symmetric" (Fp.shared_edge b0 b1) (Fp.shared_edge b1 b0)

let test_exposed_perimeter () =
  (* 3x1 row: edge cores expose 3 sides (12 mm), middle exposes 2 (8 mm). *)
  check_close 1e-12 "edge core" 12e-3 (Fp.exposed_perimeter grid3 0);
  check_close 1e-12 "middle core" 8e-3 (Fp.exposed_perimeter grid3 1);
  check_close 1e-12 "other edge" 12e-3 (Fp.exposed_perimeter grid3 2)

let test_grid_2d_adjacency () =
  let g = Fp.grid ~rows:2 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  (* Core (0,0) at index 0 touches (0,1) at index 1 and (1,0) at index 3. *)
  Alcotest.(check bool) "right neighbour" true
    (Fp.shared_edge g.Fp.blocks.(0) g.Fp.blocks.(1) > 0.);
  Alcotest.(check bool) "upper neighbour" true
    (Fp.shared_edge g.Fp.blocks.(0) g.Fp.blocks.(3) > 0.);
  Alcotest.(check bool) "diagonal is not a neighbour" true
    (Float.equal (Fp.shared_edge g.Fp.blocks.(0) g.Fp.blocks.(4)) 0.)

let test_stack3d_overlap () =
  let s = Fp.stack3d ~layers:2 ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  Alcotest.(check int) "4 blocks" 4 (Fp.n_blocks s);
  (* Block 0 (layer 0) overlaps block 2 (layer 1, same position) fully. *)
  check_close 1e-15 "full overlap" 16e-6 (Fp.overlap_area s.Fp.blocks.(0) s.Fp.blocks.(2));
  check_close 1e-15 "no overlap across positions" 0.
    (Fp.overlap_area s.Fp.blocks.(0) s.Fp.blocks.(3));
  check_close 1e-15 "same layer never overlaps" 0.
    (Fp.overlap_area s.Fp.blocks.(0) s.Fp.blocks.(1))

let test_grid_invalid () =
  Alcotest.check_raises "zero rows"
    (Invalid_argument "Floorplan.grid: non-positive grid size") (fun () ->
      ignore (Fp.grid ~rows:0 ~cols:1 ~core_width:1e-3 ~core_height:1e-3))

(* ----------------------------------------------------------- rc_network *)

let test_rc_matrix_assembly () =
  let net = Rc.create () in
  let a = Rc.add_node net ~name:"a" ~capacitance:1. ~to_ambient:0.5 in
  let b = Rc.add_node net ~name:"b" ~capacitance:2. ~to_ambient:0. in
  Rc.connect net a b 0.25;
  let g = Rc.conductance_matrix net in
  check_close 1e-12 "G_aa" 0.75 (Mat.get g 0 0);
  check_close 1e-12 "G_ab" (-0.25) (Mat.get g 0 1);
  check_close 1e-12 "G_bb" 0.25 (Mat.get g 1 1);
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric g);
  Alcotest.(check bool) "grounded" true (Rc.is_grounded net)

let test_rc_accumulating_edges () =
  let net = Rc.create () in
  let a = Rc.add_node net ~name:"a" ~capacitance:1. ~to_ambient:1. in
  let b = Rc.add_node net ~name:"b" ~capacitance:1. ~to_ambient:1. in
  Rc.connect net a b 0.1;
  Rc.connect net a b 0.2;
  check_close 1e-12 "parallel conductances add" (-0.3)
    (Mat.get (Rc.conductance_matrix net) 0 1)

let test_rc_rejects_bad_input () =
  let net = Rc.create () in
  let a = Rc.add_node net ~name:"a" ~capacitance:1. ~to_ambient:0. in
  Alcotest.check_raises "self loop" (Invalid_argument "Rc_network.connect: self-loop")
    (fun () -> Rc.connect net a a 1.);
  Alcotest.check_raises "negative capacitance"
    (Invalid_argument "Rc_network.add_node: capacitance must be positive") (fun () ->
      ignore (Rc.add_node net ~name:"bad" ~capacitance:(-1.) ~to_ambient:0.))

(* ---------------------------------------------------------------- model *)

let test_model_eigenvalues_negative () =
  let m = model3 () in
  Alcotest.(check bool) "all eigenvalues negative" true
    (Vec.for_all (fun l -> l < 0.) (Model.eigenvalues m))

let test_model_steady_state_balance () =
  let m = model3 () in
  let psi = psi_vec [| 1.3; 0.6; 1.3 |] in
  let theta = Model.theta_inf m psi in
  Alcotest.(check bool) "dT/dt = 0 at steady state" true
    (Vec.norm_inf (Model.derivative m theta psi) < 1e-9)

let test_model_propagator_semigroup () =
  let m = model3 () in
  let p1 = Model.propagator m 0.1 in
  let p2 = Model.propagator m 0.2 in
  Alcotest.(check bool) "P(0.1)^2 = P(0.2)" true
    (Mat.approx_equal ~tol:1e-10 (Mat.matmul p1 p1) p2)

let test_model_propagator_matches_expm () =
  let m = model3 () in
  let direct = Linalg.Expm.expm_scaled (Model.a_matrix m) 0.05 in
  Alcotest.(check bool) "eigen route = Pade route" true
    (Mat.approx_equal ~tol:1e-9 (Model.propagator m 0.05) direct)

let test_model_step_matches_rk4 () =
  let m = model3 () in
  let psi = psi_vec [| 1.3; 0.6; 0.6 |] in
  let theta0 = [| 5.; 1.; 0. |] in
  let exact = Model.step m ~dt:0.3 ~theta:theta0 ~psi in
  let f _ theta = Model.derivative m theta psi in
  let numeric = Odeint.Rk4.integrate f ~t0:0. ~t1:0.3 ~dt:1e-4 theta0 in
  Alcotest.(check bool) "closed form matches RK4" true
    (Vec.approx_equal ~tol:1e-8 exact numeric)

let test_model_hotter_neighbours () =
  (* Heating one core must raise (not lower) every other core. *)
  let m = model3 () in
  let base = Model.theta_inf m (psi_vec [| 0.6; 0.6; 0.6 |]) in
  let hot = Model.theta_inf m (psi_vec [| 1.3; 0.6; 0.6 |]) in
  Alcotest.(check bool) "monotone thermal coupling" true (Vec.leq base hot)

let test_model_middle_core_hottest () =
  let m = model3 () in
  let temps = Model.steady_core_temps m (psi_vec [| 1.3; 1.3; 1.3 |]) in
  Alcotest.(check bool) "middle core hottest under uniform load" true
    (temps.(1) > temps.(0) && temps.(1) > temps.(2));
  check_close 1e-9 "left/right symmetric" temps.(0) temps.(2)

let test_model_property1_cooling () =
  (* Property 1: with all cores off, temperatures decay monotonically
     towards the (tiny) leakage floor. *)
  let m = model3 () in
  let psi = Array.make 3 0. in
  let theta = ref [| 40.; 35.; 30. |] in
  let floor_theta = Model.theta_inf m psi in
  for _ = 1 to 50 do
    let next = Model.step m ~dt:0.05 ~theta:!theta ~psi in
    Alcotest.(check bool) "monotone cooling" true
      (Vec.leq next (Vec.add !theta (Vec.create 3 1e-12)));
    Alcotest.(check bool) "never undershoots the floor" true
      (Vec.leq floor_theta (Vec.add next (Vec.create 3 1e-9)));
    theta := next
  done

let test_model_solve_uniform_temp_roundtrip () =
  let m = model3 () in
  let psi = Model.solve_powers_for_uniform_core_temp m 65. in
  let temps = Model.steady_core_temps m psi in
  Alcotest.(check bool) "powers reproduce 65C everywhere" true
    (Vec.approx_equal ~tol:1e-9 [| 65.; 65.; 65. |] temps);
  Alcotest.(check bool) "edge power > middle power" true (psi.(0) > psi.(1))

let test_model_solve_mixed () =
  let m = model3 () in
  let constraints =
    [|
      Model.Pinned_temperature 60.;
      Model.Known_power 5.;
      Model.Pinned_temperature 60.;
    |]
  in
  let psi, temps = Model.solve_mixed m constraints in
  check_close 1e-9 "pinned core 0" 60. temps.(0);
  check_close 1e-9 "pinned core 2" 60. temps.(2);
  check_close 1e-12 "echoed power" 5. psi.(1);
  let roundtrip = Model.steady_core_temps m psi in
  Alcotest.(check bool) "round trip" true
    (Vec.approx_equal ~tol:1e-8
       (Array.of_list [ temps.(0); temps.(1); temps.(2) ])
       roundtrip)

let test_model_runaway_rejected () =
  let net = Rc.create () in
  let _ = Rc.add_node net ~name:"a" ~capacitance:1. ~to_ambient:0.1 in
  Alcotest.(check bool) "thermal runaway detected" true
    (match
       Model.make ~ambient:35. ~leak_beta:0.2
         ~capacitance:(Rc.capacitance_vector net)
         ~conductance:(Rc.conductance_matrix net) ~core_nodes:[| 0 |] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_layered_model_close_to_core_level () =
  let layered = Thermal.Hotspot.layered grid3 in
  let psi = psi_vec [| 1.3; 1.3; 1.3 |] in
  let temps = Model.steady_core_temps layered psi in
  Alcotest.(check bool) "middle hottest in layered model too" true
    (temps.(1) > temps.(0));
  Alcotest.(check bool) "temperature scale sane (50..110C)" true
    (temps.(1) > 50. && temps.(1) < 110.)

let test_3d_upper_layer_hotter () =
  (* In a 2-layer stack with equal loads, the package-attached layer cools
     better than the stacked one — the paper's 3D-crisis motivation. *)
  let s = Fp.stack3d ~layers:2 ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let m = Thermal.Hotspot.core_level s in
  let temps = Model.steady_core_temps m (psi_vec [| 1.0; 1.0; 1.0; 1.0 |]) in
  (* Blocks 0,1 are layer 0; blocks 2,3 are layer 1. *)
  Alcotest.(check bool) "stacked layer runs hotter" true
    (temps.(2) > temps.(0) && temps.(3) > temps.(1))

let test_model_integrate_theta_matches_quadrature () =
  let m = model3 () in
  let psi = psi_vec [| 1.3; 0.6; 1.0 |] in
  let theta0 = [| 3.; 1.; 0. |] in
  let exact = Model.integrate_theta m ~dt:0.4 ~theta:theta0 ~psi in
  (* Composite-trapezoid quadrature on the exact trajectory. *)
  let samples = 4000 in
  let h = 0.4 /. float_of_int samples in
  let acc = Vec.zeros 3 in
  let theta = ref theta0 in
  for k = 0 to samples do
    let w = if k = 0 || k = samples then 0.5 else 1. in
    Array.iteri (fun i x -> acc.(i) <- acc.(i) +. (w *. h *. x)) !theta;
    if k < samples then theta := Model.step m ~dt:h ~theta:!theta ~psi
  done;
  Alcotest.(check bool) "closed-form integral matches quadrature" true
    (Vec.approx_equal ~tol:1e-6 acc exact)

let test_model_integrate_theta_steady () =
  (* At the steady state the integral is just theta_inf * dt. *)
  let m = model3 () in
  let psi = psi_vec [| 1.0; 1.0; 1.0 |] in
  let tinf = Model.theta_inf m psi in
  let integral = Model.integrate_theta m ~dt:2.5 ~theta:tinf ~psi in
  Alcotest.(check bool) "steady integral" true
    (Vec.approx_equal ~tol:1e-9 (Vec.scale 2.5 tinf) integral)

(* ----------------------------------------------------------- grid model *)

let test_grid_model_matches_block_level () =
  let g = Thermal.Grid_model.build ~subdivisions:3 grid3 in
  let block = model3 () in
  let psi = psi_vec [| 1.3; 1.3; 1.3 |] in
  let fine = Thermal.Grid_model.steady_block_temps g psi in
  let coarse = Model.steady_core_temps block psi in
  Alcotest.(check int) "27 cells" 27 (Model.n_cores g.Thermal.Grid_model.model);
  for i = 0 to 2 do
    (* Lumping averages the intra-core gradient away, so the fine grid's
       hottest cell sits a few degrees above the block temperature —
       never below it, and not wildly above. *)
    Alcotest.(check bool)
      (Printf.sprintf "block %d: coarse <= fine <= coarse + 6C" i)
      true
      (fine.(i) >= coarse.(i) -. 0.2 && fine.(i) <= coarse.(i) +. 6.)
  done;
  Alcotest.(check bool) "middle block hottest on the fine grid too" true
    (fine.(1) > fine.(0));
  (* k = 1 degenerates exactly to the block-level model. *)
  let g1 = Thermal.Grid_model.build ~subdivisions:1 grid3 in
  Alcotest.(check bool) "k = 1 is exactly the block model" true
    (Vec.approx_equal ~tol:1e-9 coarse (Thermal.Grid_model.steady_block_temps g1 psi))

let test_grid_model_shows_gradient () =
  (* Heat one core only: its cells must show an intra-core gradient, and
     the far core's cells must stay cooler than the hot core's. *)
  let g = Thermal.Grid_model.build ~subdivisions:3 grid3 in
  let temps =
    Model.steady_core_temps g.Thermal.Grid_model.model
      (Thermal.Grid_model.expand_powers g (psi_vec [| 1.3; 0.; 0. |]))
  in
  let cells i = Array.map (fun n -> temps.(n)) g.Thermal.Grid_model.mapping.(i) in
  let hot = cells 0 and far = cells 2 in
  Alcotest.(check bool) "gradient inside the hot core" true
    (Vec.max hot -. Vec.min hot > 0.5);
  Alcotest.(check bool) "far core cooler" true (Vec.max far < Vec.min hot)

let test_grid_model_profile_roundtrip () =
  let g = Thermal.Grid_model.build ~subdivisions:2 grid3 in
  let block = model3 () in
  let profile =
    [
      { Matex.duration = 0.05; psi = psi_vec [| 1.3; 0.6; 1.3 |] };
      { Matex.duration = 0.05; psi = psi_vec [| 0.6; 1.3; 0.6 |] };
    ]
  in
  let fine_peak =
    Matex.peak_scan g.Thermal.Grid_model.model ~samples_per_segment:16
      (Thermal.Grid_model.profile_of g profile)
  in
  let coarse_peak = Matex.peak_scan block ~samples_per_segment:16 profile in
  Alcotest.(check bool) "fine-grid periodic peak bracketed" true
    (fine_peak >= coarse_peak -. 0.2 && fine_peak <= coarse_peak +. 6.)

let test_grid_model_validation () =
  Alcotest.(check bool) "subdivisions < 1 rejected" true
    (match Thermal.Grid_model.build ~subdivisions:0 grid3 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let g = Thermal.Grid_model.build ~subdivisions:2 grid3 in
  Alcotest.(check bool) "power arity checked" true
    (match Thermal.Grid_model.expand_powers g [| 1. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------------------------------------------------------- matex *)

let two_mode_profile ~d1 ~v1 ~d2 ~v2 =
  [
    { Matex.duration = d1; psi = psi_vec v1 };
    { Matex.duration = d2; psi = psi_vec v2 };
  ]

let test_matex_period () =
  let p = two_mode_profile ~d1:0.03 ~v1:[| 1.3; 0.6; 0.6 |] ~d2:0.07 ~v2:[| 0.6; 0.6; 1.3 |] in
  check_close 1e-12 "period" 0.1 (Matex.period p)

let test_matex_simulate_boundaries () =
  let m = model3 () in
  let p = two_mode_profile ~d1:0.05 ~v1:[| 1.3; 0.6; 0.6 |] ~d2:0.05 ~v2:[| 0.6; 0.6; 1.3 |] in
  let states = Matex.simulate m ~theta0:(Vec.zeros 3) p in
  Alcotest.(check int) "boundary count" 3 (Array.length states);
  Alcotest.(check bool) "starts at theta0" true
    (Float.equal (Vec.norm_inf states.(0)) 0.);
  Alcotest.(check bool) "temperatures rose" true (Vec.max states.(2) > 0.)

let test_matex_stable_start_is_fixed_point () =
  let m = model3 () in
  let p = two_mode_profile ~d1:0.04 ~v1:[| 1.3; 1.3; 0.6 |] ~d2:0.06 ~v2:[| 0.6; 0.6; 1.3 |] in
  let theta_star = Matex.stable_start m p in
  let states = Matex.simulate m ~theta0:theta_star p in
  Alcotest.(check bool) "one period returns to the start" true
    (Vec.approx_equal ~tol:1e-9 theta_star states.(Array.length states - 1))

let test_matex_stable_matches_long_simulation () =
  let m = model3 () in
  let p = two_mode_profile ~d1:0.05 ~v1:[| 1.3; 0.6; 1.3 |] ~d2:0.05 ~v2:[| 0.6; 1.3; 0.6 |] in
  let theta_star = Matex.stable_start m p in
  let theta = ref (Vec.zeros 3) in
  for _ = 1 to 200 do
    let states = Matex.simulate m ~theta0:!theta p in
    theta := states.(Array.length states - 1)
  done;
  Alcotest.(check bool) "(I-K)^-1 formula equals brute-force repetition" true
    (Vec.approx_equal ~tol:1e-7 theta_star !theta)

let test_matex_constant_profile_stable_is_steady () =
  let m = model3 () in
  let psi = psi_vec [| 1.0; 1.0; 1.0 |] in
  let p = [ { Matex.duration = 0.5; psi } ] in
  Alcotest.(check bool) "stable status of constant profile = T^inf" true
    (Vec.approx_equal ~tol:1e-9 (Model.theta_inf m psi) (Matex.stable_start m p))

let test_matex_peak_scan_at_least_boundaries () =
  let m = model3 () in
  let p = two_mode_profile ~d1:0.2 ~v1:[| 1.3; 0.6; 0.6 |] ~d2:0.2 ~v2:[| 0.6; 0.6; 1.3 |] in
  Alcotest.(check bool) "scan >= boundary peak" true
    (Matex.peak_scan m p >= Matex.peak_at_boundaries m p -. 1e-12)

let test_matex_interior_peak_found () =
  (* Hot interval first, then a long cool-down: the true peak is at the
     first (interior) boundary, far above the end-of-period temperature. *)
  let m = model3 () in
  let p = two_mode_profile ~d1:0.5 ~v1:[| 1.3; 0.6; 0.6 |] ~d2:0.5 ~v2:[| 0.6; 0.6; 0.6 |] in
  let scan = Matex.peak_scan m p in
  let end_peak = Matex.end_of_period_peak m p in
  Alcotest.(check bool) "non-step-up: scan strictly above end-of-period" true
    (scan > end_peak +. 0.5)

let test_matex_validation () =
  let m = model3 () in
  Alcotest.check_raises "empty profile" (Invalid_argument "Matex: empty profile")
    (fun () -> Matex.validate m []);
  Alcotest.(check bool) "wrong arity rejected" true
    (match Matex.validate m [ { Matex.duration = 1.; psi = [| 1. |] } ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_matex_trace_continuity () =
  let m = model3 () in
  let p = two_mode_profile ~d1:0.05 ~v1:[| 1.3; 1.3; 1.3 |] ~d2:0.05 ~v2:[| 0.6; 0.6; 0.6 |] in
  let trace = Matex.stable_core_trace m ~samples_per_segment:8 p in
  Alcotest.(check int) "sample count" 17 (Array.length trace);
  let t_last, temps_last = trace.(Array.length trace - 1) in
  let _, temps_first = trace.(0) in
  check_close 1e-9 "covers the period" 0.1 t_last;
  Alcotest.(check bool) "periodic continuity" true
    (Vec.approx_equal ~tol:1e-9 temps_first temps_last)

let test_time_to_threshold_crossing () =
  let m = model3 () in
  let profile = [ { Matex.duration = 0.05; psi = psi_vec [| 1.3; 1.3; 1.3 |] } ] in
  match Matex.time_to_threshold m ~threshold:60. profile with
  | None -> Alcotest.fail "all-high from ambient must cross 60C"
  | Some t ->
      (* Cross-check against a dense transient simulation. *)
      let trace = Thermal.Trace.from_ambient m ~periods:40 ~samples_per_segment:64 profile in
      let first_above =
        Array.to_seq trace
        |> Seq.filter (fun s -> Vec.max s.Thermal.Trace.core_temps >= 60.)
        |> Seq.uncons
      in
      (match first_above with
      | Some (s, _) ->
          Alcotest.(check bool) "matches dense simulation" true
            (Float.abs (t -. s.Thermal.Trace.time) < 2. *. (0.05 /. 64.))
      | None -> Alcotest.fail "dense simulation should cross too");
      Alcotest.(check bool) "positive crossing time" true (t > 0.)

let test_time_to_threshold_never () =
  let m = model3 () in
  let profile = [ { Matex.duration = 0.05; psi = psi_vec [| 0.6; 0.6; 0.6 |] } ] in
  Alcotest.(check bool) "all-low never reaches 60C" true
    (Option.is_none
       (Matex.time_to_threshold m ~max_periods:200 ~threshold:60. profile))

let test_time_to_threshold_immediate () =
  let m = model3 () in
  let profile = [ { Matex.duration = 0.05; psi = psi_vec [| 1.3; 1.3; 1.3 |] } ] in
  let hot_start = Vec.create 3 40. in
  Alcotest.(check (option (float 1e-12))) "already above" (Some 0.)
    (Matex.time_to_threshold m ~theta0:hot_start ~threshold:60. profile)

let test_time_to_threshold_monotone_in_threshold () =
  let m = model3 () in
  let profile = [ { Matex.duration = 0.05; psi = psi_vec [| 1.3; 1.3; 1.3 |] } ] in
  let t1 = Option.get (Matex.time_to_threshold m ~threshold:50. profile) in
  let t2 = Option.get (Matex.time_to_threshold m ~threshold:65. profile) in
  Alcotest.(check bool) "higher threshold takes longer" true (t2 > t1)

(* -------------------------------------------------------------- reduced *)

let test_reduced_exact_at_steady_state () =
  let g = Thermal.Grid_model.build ~subdivisions:3 grid3 in
  let m = g.Thermal.Grid_model.model in
  let r = Thermal.Reduced.build ~modes:6 m in
  let psi = Thermal.Grid_model.expand_powers g (psi_vec [| 1.3; 0.6; 1.0 |]) in
  Alcotest.(check bool) "DC exact by construction" true
    (Vec.approx_equal ~tol:1e-9
       (Model.steady_core_temps m psi)
       (Thermal.Reduced.steady_core_temps r psi));
  (* Stepping from ambient long enough converges to the same steady
     state, through the reduced dynamics. *)
  let state = ref (Thermal.Reduced.ambient_state r) in
  for _ = 1 to 200 do
    state := Thermal.Reduced.step r ~dt:0.05 ~state:!state ~psi
  done;
  Alcotest.(check bool) "reduced transient converges to steady" true
    (Vec.approx_equal ~tol:1e-4
       (Model.steady_core_temps m psi)
       (Thermal.Reduced.core_temps r ~state:!state ~psi))

let test_reduced_tracks_full_transient () =
  let g = Thermal.Grid_model.build ~subdivisions:3 grid3 in
  let m = g.Thermal.Grid_model.model in
  (* This model's spectrum is compact (time constants 21..208 ms, no
     sharp timescale gap), so keep 2/3 of the modes; the interesting
     point is that the 27-node fine grid then steps at 18-mode cost. *)
  let r = Thermal.Reduced.build ~modes:18 m in
  let psi = Thermal.Grid_model.expand_powers g (psi_vec [| 1.3; 1.3; 0.6 |]) in
  (* Compare trajectories from ambient at schedule-scale steps. *)
  let theta = ref (Vec.zeros (Model.n_nodes m)) in
  let state = ref (Thermal.Reduced.ambient_state r) in
  let worst = ref 0. in
  for _ = 1 to 40 do
    theta := Model.step m ~dt:0.02 ~theta:!theta ~psi;
    state := Thermal.Reduced.step r ~dt:0.02 ~state:!state ~psi;
    let full = Model.core_temps_of_theta m !theta in
    let red = Thermal.Reduced.core_temps r ~state:!state ~psi in
    worst := Float.max !worst (Vec.dist_inf full red)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "18-of-27-mode reduction within 0.2C (worst %.3f)" !worst)
    true (!worst < 0.2)

let test_reduced_more_modes_more_accurate () =
  let g = Thermal.Grid_model.build ~subdivisions:3 grid3 in
  let m = g.Thermal.Grid_model.model in
  let psi = Thermal.Grid_model.expand_powers g (psi_vec [| 1.3; 0.6; 0.6 |]) in
  let error k =
    let r = Thermal.Reduced.build ~modes:k m in
    let theta = Model.step m ~dt:0.05 ~theta:(Vec.zeros (Model.n_nodes m)) ~psi in
    let state = Thermal.Reduced.step r ~dt:0.05 ~state:(Thermal.Reduced.ambient_state r) ~psi in
    Vec.dist_inf (Model.core_temps_of_theta m theta)
      (Thermal.Reduced.core_temps r ~state ~psi)
  in
  Alcotest.(check bool) "more modes, tighter" true (error 18 <= error 4 +. 1e-9);
  Alcotest.(check bool) "full basis is exact" true (error 27 < 1e-8)

let test_reduced_validation () =
  let m = model3 () in
  Alcotest.(check bool) "zero modes rejected" true
    (match Thermal.Reduced.build ~modes:0 m with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "too many modes rejected" true
    (match Thermal.Reduced.build ~modes:99 m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_mission_peak () =
  let m = model3 () in
  (* Boot (low) -> burst (high) -> settle (low): the mission peak is at
     the end of the burst, strictly above both endpoints. *)
  let mission =
    [
      { Matex.duration = 0.2; psi = psi_vec [| 0.6; 0.6; 0.6 |] };
      { Matex.duration = 0.3; psi = psi_vec [| 1.3; 1.3; 1.3 |] };
      { Matex.duration = 0.5; psi = psi_vec [| 0.6; 0.6; 0.6 |] };
    ]
  in
  let peak, final = Matex.mission_peak m mission in
  (* Cross-check against the burst-end temperature computed directly. *)
  let after_boot =
    Model.step m ~dt:0.2 ~theta:(Vec.zeros 3) ~psi:(psi_vec [| 0.6; 0.6; 0.6 |])
  in
  let after_burst =
    Model.step m ~dt:0.3 ~theta:after_boot ~psi:(psi_vec [| 1.3; 1.3; 1.3 |])
  in
  check_close 1e-6 "peak at end of burst" (Model.max_core_temp m after_burst) peak;
  Alcotest.(check bool) "settled below the peak" true
    (Model.max_core_temp m final < peak -. 5.)

(* ---------------------------------------------------------------- trace *)

let test_trace_from_ambient_monotone_warmup () =
  let m = model3 () in
  let p = [ { Matex.duration = 0.1; psi = psi_vec [| 1.3; 1.3; 1.3 |] } ] in
  let samples = Thermal.Trace.from_ambient m ~periods:5 ~samples_per_segment:4 p in
  Alcotest.(check int) "sample count" 21 (Array.length samples);
  check_close 1e-9 "starts at ambient" 35. samples.(0).Thermal.Trace.core_temps.(0);
  let ok = ref true in
  for i = 1 to Array.length samples - 1 do
    if
      not
        (Vec.leq
           samples.(i - 1).Thermal.Trace.core_temps
           (Vec.add samples.(i).Thermal.Trace.core_temps (Vec.create 3 1e-9)))
    then ok := false
  done;
  Alcotest.(check bool) "monotone warm-up" true !ok

let test_trace_periods_to_stable () =
  let m = model3 () in
  let p = [ { Matex.duration = 0.1; psi = psi_vec [| 1.3; 0.6; 1.3 |] } ] in
  let n = Thermal.Trace.periods_to_stable m ~tol:1e-6 p in
  Alcotest.(check bool) "finite warm-up" true (n > 1 && n < 1000)

let test_trace_peak () =
  let samples =
    [|
      { Thermal.Trace.time = 0.; core_temps = [| 35.; 36. |] };
      { Thermal.Trace.time = 1.; core_temps = [| 40.; 40.5 |] };
    |]
  in
  check_close 1e-12 "peak over trace" 40.5 (Thermal.Trace.peak samples)

let () =
  Alcotest.run "thermal"
    [
      ( "floorplan",
        [
          Alcotest.test_case "grid geometry" `Quick test_grid_geometry;
          Alcotest.test_case "shared edges" `Quick test_shared_edges;
          Alcotest.test_case "exposed perimeter" `Quick test_exposed_perimeter;
          Alcotest.test_case "2d adjacency" `Quick test_grid_2d_adjacency;
          Alcotest.test_case "3d overlap" `Quick test_stack3d_overlap;
          Alcotest.test_case "invalid grid" `Quick test_grid_invalid;
        ] );
      ( "rc_network",
        [
          Alcotest.test_case "matrix assembly" `Quick test_rc_matrix_assembly;
          Alcotest.test_case "parallel edges accumulate" `Quick test_rc_accumulating_edges;
          Alcotest.test_case "input validation" `Quick test_rc_rejects_bad_input;
        ] );
      ( "model",
        [
          Alcotest.test_case "eigenvalues negative" `Quick test_model_eigenvalues_negative;
          Alcotest.test_case "steady-state balance" `Quick test_model_steady_state_balance;
          Alcotest.test_case "propagator semigroup" `Quick test_model_propagator_semigroup;
          Alcotest.test_case "propagator = expm" `Quick test_model_propagator_matches_expm;
          Alcotest.test_case "step matches RK4" `Quick test_model_step_matches_rk4;
          Alcotest.test_case "monotone coupling" `Quick test_model_hotter_neighbours;
          Alcotest.test_case "middle core hottest" `Quick test_model_middle_core_hottest;
          Alcotest.test_case "Property 1 cooling" `Quick test_model_property1_cooling;
          Alcotest.test_case "uniform temp solve" `Quick test_model_solve_uniform_temp_roundtrip;
          Alcotest.test_case "mixed solve" `Quick test_model_solve_mixed;
          Alcotest.test_case "runaway rejected" `Quick test_model_runaway_rejected;
          Alcotest.test_case "layered variant" `Quick test_layered_model_close_to_core_level;
          Alcotest.test_case "3d stacking penalty" `Quick test_3d_upper_layer_hotter;
          Alcotest.test_case "integrate_theta quadrature" `Quick
            test_model_integrate_theta_matches_quadrature;
          Alcotest.test_case "integrate_theta steady" `Quick test_model_integrate_theta_steady;
        ] );
      ( "grid_model",
        [
          Alcotest.test_case "matches block level" `Quick test_grid_model_matches_block_level;
          Alcotest.test_case "intra-core gradient" `Quick test_grid_model_shows_gradient;
          Alcotest.test_case "periodic profile" `Quick test_grid_model_profile_roundtrip;
          Alcotest.test_case "validation" `Quick test_grid_model_validation;
        ] );
      ( "matex",
        [
          Alcotest.test_case "period" `Quick test_matex_period;
          Alcotest.test_case "simulate boundaries" `Quick test_matex_simulate_boundaries;
          Alcotest.test_case "stable start fixed point" `Quick test_matex_stable_start_is_fixed_point;
          Alcotest.test_case "stable = long simulation" `Quick test_matex_stable_matches_long_simulation;
          Alcotest.test_case "constant profile" `Quick test_matex_constant_profile_stable_is_steady;
          Alcotest.test_case "scan >= boundaries" `Quick test_matex_peak_scan_at_least_boundaries;
          Alcotest.test_case "interior peak found" `Quick test_matex_interior_peak_found;
          Alcotest.test_case "validation" `Quick test_matex_validation;
          Alcotest.test_case "trace continuity" `Quick test_matex_trace_continuity;
        ] );
      ( "reduced",
        [
          Alcotest.test_case "DC exact" `Quick test_reduced_exact_at_steady_state;
          Alcotest.test_case "tracks full transient" `Quick test_reduced_tracks_full_transient;
          Alcotest.test_case "mode count accuracy" `Quick test_reduced_more_modes_more_accurate;
          Alcotest.test_case "validation" `Quick test_reduced_validation;
        ] );
      ( "time_to_threshold",
        [
          Alcotest.test_case "crossing" `Quick test_time_to_threshold_crossing;
          Alcotest.test_case "never crosses" `Quick test_time_to_threshold_never;
          Alcotest.test_case "immediate" `Quick test_time_to_threshold_immediate;
          Alcotest.test_case "monotone" `Quick test_time_to_threshold_monotone_in_threshold;
        ] );
      ( "mission",
        [ Alcotest.test_case "boot-burst-settle" `Quick test_mission_peak ] );
      ( "trace",
        [
          Alcotest.test_case "monotone warm-up" `Quick test_trace_from_ambient_monotone_warmup;
          Alcotest.test_case "periods to stable" `Quick test_trace_periods_to_stable;
          Alcotest.test_case "trace peak" `Quick test_trace_peak;
        ] );
    ]
