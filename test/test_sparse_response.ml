(* Differential tests for the sparse superposition engine and the
   two-tier ROM screening path: superposed equilibria and streamed
   stable statuses must agree with per-candidate Sparse_model CG solves
   to <= 1e-9 at n <= 27, per-domain scratch must neither contend (pool
   sizes 1 and 4 bit-identical) nor cross-contaminate between engines,
   and a screened search with a sound margin must return exactly the
   exhaustive exact search's answer. *)

module Vec = Linalg.Vec
module Model = Thermal.Model
module Sp = Thermal.Sparse_model
module Resp = Thermal.Sparse_response
module Reduced = Thermal.Reduced
module Matex = Thermal.Matex

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

(* Random small platform (<= 27 nodes: core-level carries 3 nodes per
   core, 3x3 cores max), with varied ambient and leakage so the
   beta*T_amb fold into the unit responses is stressed. *)
let random_model rng =
  let rows = 1 + Random.State.int rng 2 in
  let cols = 1 + Random.State.int rng 3 in
  let ambient = -10. +. Random.State.float rng 70. in
  let leak_beta = Random.State.float rng 0.1 in
  Thermal.Hotspot.core_level ~ambient ~leak_beta
    (Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3)

let random_psi rng n =
  Array.init n (fun _ ->
      if Random.State.float rng 1. < 0.3 then 0.
      else Random.State.float rng 20.)

let random_profile rng n =
  let n_segs = 1 + Random.State.int rng 6 in
  List.init n_segs (fun _ ->
      {
        Thermal.Matex.duration = 0.01 +. Random.State.float rng 0.5;
        psi = random_psi rng n;
      })

(* ------------------------------------- superposition vs direct CG *)

let prop_steady_superposition_matches_cg =
  QCheck.Test.make ~name:"superposed steady temps = per-candidate CG solve"
    ~count:60 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Sp.of_model model in
      let resp = Resp.build eng in
      let psi = random_psi rng (Sp.n_cores eng) in
      Vec.dist_inf (Resp.steady_core_temps resp psi) (Sp.steady_core_temps eng psi)
      <= 1e-9
      && Float.abs (Resp.steady_peak resp psi -. Sp.steady_peak eng psi) <= 1e-9)

let prop_y_inf_matches_steady_state =
  QCheck.Test.make ~name:"superposed y_inf = CG steady state" ~count:60
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Sp.of_model model in
      let resp = Resp.build eng in
      let psi = random_psi rng (Sp.n_cores eng) in
      Vec.dist_inf (Resp.y_inf resp psi) (Sp.steady_state eng psi) <= 1e-9)

let prop_streaming_stable_matches_segment_path =
  QCheck.Test.make
    ~name:"streamed stable status/peaks = Sparse_model segment path"
    ~count:40 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Sp.of_model model in
      let resp = Resp.build eng in
      let profile = random_profile rng (Sp.n_cores eng) in
      Vec.dist_inf (Resp.stable_start resp profile) (Sp.stable_start eng profile)
      <= 1e-9
      && Float.abs
           (Resp.end_of_period_peak resp profile
           -. Sp.end_of_period_peak eng profile)
         <= 1e-9
      && Float.abs (Resp.peak_scan resp profile -. Sp.peak_scan eng profile)
         <= 1e-9
      && Float.abs
           (Resp.peak_refined resp profile -. Sp.peak_refined eng profile)
         <= 1e-9)

let prop_step_matches_engine =
  QCheck.Test.make ~name:"superposed step = Sparse_model.step" ~count:60
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let model = random_model rng in
      let eng = Sp.of_model model in
      let resp = Resp.build eng in
      let n = Sp.n_cores eng in
      let psi = random_psi rng n in
      let state =
        Sp.step eng ~dt:(0.01 +. Random.State.float rng 0.2)
          ~state:(Sp.ambient_state eng) ~psi:(random_psi rng n)
      in
      let dt = 0.01 +. Random.State.float rng 0.3 in
      Vec.dist_inf (Resp.step resp ~dt ~state ~psi) (Sp.step eng ~dt ~state ~psi)
      <= 1e-9)

(* --------------------------------------------- scratch isolation *)

let model27 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

(* The same batch of streamed evaluations must come back bit-identical
   at pool sizes 1 and 4: per-domain DLS scratch means workers never
   share partial sums, and index-ordered results mean the comparison is
   positional. *)
let test_pool_size_determinism () =
  let rng = Random.State.make [| 42 |] in
  let eng = Sp.of_model model27 in
  let resp = Resp.build eng in
  let profiles =
    Array.init 24 (fun _ -> random_profile rng (Sp.n_cores eng))
  in
  let run pool_size =
    let pool = Util.Pool.create ~size:pool_size () in
    let out =
      Util.Pool.init ~pool (Array.length profiles) (fun i ->
          Resp.end_of_period_peak resp profiles.(i))
    in
    Util.Pool.shutdown pool;
    out
  in
  let seq = run 1 and par = run 4 in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "profile %d bit-identical at pool sizes 1 and 4" i)
        true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float par.(i))))
    seq

(* Two engines evaluated interleaved on one domain: each engine's
   DLS scratch is keyed per engine, so feeds never leak across. *)
let test_scratch_cross_engine_isolation () =
  let rng = Random.State.make [| 7 |] in
  let eng_a = Sp.of_model model27 in
  let model_b =
    Thermal.Hotspot.core_level ~ambient:45.
      (Thermal.Floorplan.grid ~rows:2 ~cols:2 ~core_width:3e-3 ~core_height:3e-3)
  in
  let eng_b = Sp.of_model model_b in
  let ra = Resp.build eng_a and rb = Resp.build eng_b in
  let pa = random_profile rng (Sp.n_cores eng_a) in
  let pb = random_profile rng (Sp.n_cores eng_b) in
  let expect_a = Resp.end_of_period_peak ra pa in
  let expect_b = Resp.end_of_period_peak rb pb in
  (* Interleave the streaming feeds by hand. *)
  Resp.stable_begin ra;
  Resp.stable_begin rb;
  List.iter
    (fun (s : Matex.segment) -> Resp.stable_feed ra ~duration:s.duration ~psi:s.psi)
    pa;
  List.iter
    (fun (s : Matex.segment) -> Resp.stable_feed rb ~duration:s.duration ~psi:s.psi)
    pb;
  let za = Resp.stable_solve ra ~t_p:(Matex.period pa) in
  let zb = Resp.stable_solve rb ~t_p:(Matex.period pb) in
  Alcotest.(check bool) "engine A undisturbed by interleaved B feeds" true
    (Float.equal (Sp.max_core_temp eng_a za) expect_a);
  Alcotest.(check bool) "engine B undisturbed by interleaved A feeds" true
    (Float.equal (Sp.max_core_temp eng_b zb) expect_b)

let test_make_is_memoized () =
  let eng = Sp.of_model model27 in
  Alcotest.(check bool) "make returns one engine per sparse engine" true
    (Resp.make eng == Resp.make eng)

(* ------------------------------------------- ROM screening soundness *)

(* Screened selection must equal the exhaustive exact search when the
   margin covers twice the worst ROM error over the batch (DESIGN.md
   §12) — asserted on randomized sheet platforms up to 8x8 = 64 cells
   with randomized candidate batches.  Also asserts the unconditional
   guarantee: the selected value is an exact evaluation (bit-equal to
   the direct solve), never a ROM score. *)
let prop_screened_search_equals_exhaustive =
  QCheck.Test.make ~name:"screened argmin = exhaustive exact argmin"
    ~count:15 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 2 + Random.State.int rng 7 in
      let cols = 2 + Random.State.int rng (Stdlib.min 7 ((64 / rows) - 1)) in
      let spec = Thermal.Grid_model.sheet_spec ~rows ~cols () in
      let eng = Sp.of_spec spec in
      let rom = Reduced.of_engine eng in
      let nc = Sp.n_cores eng in
      let n_cand = 8 + Random.State.int rng 9 in
      let candidates =
        Array.init n_cand (fun _ -> random_profile rng nc)
      in
      let exact_all =
        Array.map (fun p -> Sp.end_of_period_peak eng p) candidates
      in
      let rom_all =
        Array.map (fun p -> Reduced.rom_stable_peak rom p) candidates
      in
      (* Sound margin: twice the realized worst-case ROM error, plus
         slack — the premise of the equality theorem, computed from the
         batch itself so the property tests the theorem and not a
         hand-tuned constant. *)
      let eps =
        Array.fold_left Float.max 0.
          (Array.mapi (fun i r -> Float.abs (r -. exact_all.(i))) rom_all)
      in
      let margin = (2. *. eps) +. 1e-9 in
      let screened =
        Core.Screen.select ~par:false ~margin ~n:n_cand
          ~rom:(fun i -> rom_all.(i))
          ~exact:(fun i -> exact_all.(i))
          ()
      in
      (* The searches' shared reduction: strict improvement by more than
         1e-12 keeps the smallest index. *)
      let argmin a =
        let best = ref 0 in
        for i = 1 to Array.length a - 1 do
          if a.(i) < a.(!best) -. 1e-12 then best := i
        done;
        !best
      in
      let i_screen = argmin screened and i_exact = argmin exact_all in
      i_screen = i_exact
      && Int64.equal
           (Int64.bits_of_float screened.(i_screen))
           (Int64.bits_of_float exact_all.(i_screen)))

(* Pruned slots are +inf and survivors carry bit-exact values, at any
   margin (including one too small for the equality guarantee). *)
let prop_screened_values_are_exact_or_inf =
  QCheck.Test.make ~name:"screened slots are exact floats or +inf" ~count:30
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 5 + Random.State.int rng 20 in
      let exact = Array.init n (fun _ -> 40. +. Random.State.float rng 40.) in
      let rom =
        Array.map (fun v -> v +. (Random.State.float rng 2. -. 1.)) exact
      in
      let margin = Random.State.float rng 1.5 in
      let screened =
        Core.Screen.select ~par:false ~margin ~n
          ~rom:(fun i -> rom.(i))
          ~exact:(fun i -> exact.(i))
          ()
      in
      let rom_min = Array.fold_left Float.min infinity rom in
      Array.for_all
        (fun ok -> ok)
        (Array.mapi
           (fun i v ->
             if rom.(i) <= rom_min +. margin then Float.equal v exact.(i)
             else Float.equal v infinity)
           screened))

(* [always] indices survive regardless of their ROM score. *)
let test_screen_always_survives () =
  let exact = [| 50.; 51.; 52.; 49. |] in
  let rom = [| 100.; 51.; 52.; 49. |] in
  let screened =
    Core.Screen.select ~par:false ~always:[ 0 ] ~margin:0.5 ~n:4
      ~rom:(fun i -> rom.(i))
      ~exact:(fun i -> exact.(i))
      ()
  in
  Alcotest.(check bool) "slot 0 evaluated exactly despite worst ROM score" true
    (Float.equal screened.(0) 50.);
  Alcotest.(check bool) "far slot pruned" true (Float.equal screened.(1) infinity)

(* A NaN ROM score neither poisons the batch minimum nor gets pruned:
   it survives to the exact tier while the rest of the batch screens
   normally. *)
let test_screen_nan_score_survives () =
  let exact = [| 50.; 51.; 52.; 49. |] in
  let rom = [| Float.nan; 51.; 52.; 49. |] in
  let screened =
    Core.Screen.select ~par:false ~margin:0.5 ~n:4
      ~rom:(fun i -> rom.(i))
      ~exact:(fun i -> exact.(i))
      ()
  in
  Alcotest.(check bool) "NaN slot priced exactly" true
    (Float.equal screened.(0) 50.);
  Alcotest.(check bool) "batch minimum ignores the NaN" true
    (Float.equal screened.(3) 49.);
  Alcotest.(check bool) "far slot still pruned" true
    (Float.equal screened.(1) infinity)

(* Screened policy runs agree with unscreened ones end to end: the AO
   m-sweep under a sparse screening context returns the same schedule
   and peak as with screening disabled. *)
let test_screened_ao_matches_unscreened () =
  let p = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65. in
  let run margin =
    let ev =
      Core.Eval.create ~backend:Core.Eval.Sparse ~screen_margin:margin p
    in
    Core.Ao.solve ~eval:ev ~par:false p
  in
  let screened = run 0.5 and exhaustive = run 0. in
  Alcotest.(check int) "same m" exhaustive.Core.Ao.m screened.Core.Ao.m;
  Alcotest.(check bool) "same peak" true
    (Float.equal exhaustive.Core.Ao.peak screened.Core.Ao.peak);
  Alcotest.(check bool) "same throughput" true
    (Float.equal exhaustive.Core.Ao.throughput screened.Core.Ao.throughput)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "sparse_response"
    [
      qsuite "superposition"
        [
          prop_steady_superposition_matches_cg;
          prop_y_inf_matches_steady_state;
          prop_streaming_stable_matches_segment_path;
          prop_step_matches_engine;
        ];
      ( "scratch",
        [
          Alcotest.test_case "pool-size determinism" `Quick
            test_pool_size_determinism;
          Alcotest.test_case "cross-engine isolation" `Quick
            test_scratch_cross_engine_isolation;
          Alcotest.test_case "make memoization" `Quick test_make_is_memoized;
        ] );
      qsuite "screening"
        [
          prop_screened_search_equals_exhaustive;
          prop_screened_values_are_exact_or_inf;
        ];
      ( "screening-units",
        [
          Alcotest.test_case "always-indices survive" `Quick
            test_screen_always_survives;
          Alcotest.test_case "NaN ROM score survives to exact tier" `Quick
            test_screen_nan_score_survives;
          Alcotest.test_case "screened AO = unscreened AO" `Quick
            test_screened_ao_matches_unscreened;
        ] );
    ]
