(* Tests for the epoch-driven closed-loop runtime: the controller
   registry, the Loop simulator against both thermal plants, observer
   properties under noise, cross-pool-size determinism, and
   offline-replay parity against the exact stable-status evaluator. *)

let check_close tol = Alcotest.(check (float tol))
let platform3 () = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:65.

(* ------------------------------------------------- controller registry *)

let test_registry_names () =
  let names = Runtime.Controllers.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "threshold"; "pid"; "integral"; "tsp"; "offline-ao"; "rh-ao" ];
  Alcotest.(check bool) "find hit" true
    (Option.is_some (Runtime.Controllers.find "threshold"));
  Alcotest.(check bool) "find miss" true
    (Option.is_none (Runtime.Controllers.find "nonesuch"));
  Alcotest.(check bool) "find_exn names the known set" true
    (match Runtime.Controllers.find_exn "nonesuch" with
    | exception Invalid_argument msg ->
        (* The error must list at least one real controller. *)
        let has sub =
          let nl = String.length msg and sl = String.length sub in
          let rec at i = i + sl <= nl && (String.sub msg i sl = sub || at (i + 1)) in
          at 0
        in
        has "threshold"
    | _ -> false)

let test_static_validation () =
  (* Arity and range surface as clear [Invalid_argument]s at controller
     init, not as [Array] bounds errors mid-run. *)
  let ev = Core.Eval.create ~cache_size:0 (platform3 ()) in
  let config = { Runtime.Loop.default with Runtime.Loop.duration = 0.1 } in
  Alcotest.check_raises "arity validated"
    (Invalid_argument "Controllers.static: 1 level indices for 3 cores")
    (fun () ->
      ignore (Runtime.Loop.run ~config ev (Runtime.Controllers.static [| 0 |])));
  Alcotest.check_raises "range validated"
    (Invalid_argument "Controllers.static: level index 9 outside 0..4")
    (fun () ->
      ignore
        (Runtime.Loop.run ~config ev (Runtime.Controllers.static [| 0; 9; 0 |])))

let test_all_controllers_both_backends () =
  (* Every registered controller must complete a (short) run on the
     dense modal plant AND the sparse Krylov plant — the acceptance bar
     for the backend-generic loop. *)
  List.iter
    (fun backend ->
      let ev = Core.Eval.create ~backend (platform3 ()) in
      let bname = (Core.Eval.backend ev).Thermal.Backend.name in
      let config =
        { Runtime.Loop.default with Runtime.Loop.duration = 0.2; substeps = 2 }
      in
      List.iter
        (fun (c : Runtime.Controller.t) ->
          let s = Runtime.Loop.run ~config ev c in
          let label = c.Runtime.Controller.name ^ " on " ^ bname in
          Alcotest.(check int) (label ^ ": epochs") 10 s.Runtime.Loop.epochs;
          Alcotest.(check bool) (label ^ ": works") true
            (s.Runtime.Loop.throughput > 0.);
          Alcotest.(check bool) (label ^ ": plausible peak") true
            (s.Runtime.Loop.peak > 20. && s.Runtime.Loop.peak < 100.))
        (Runtime.Controllers.all ()))
    [ Core.Eval.Dense; Core.Eval.Sparse ]

(* ---------------------------------------------------------- determinism *)

let test_seed_determinism_across_pool_sizes () =
  (* One noisy, phased scenario; every registered controller must produce
     bit-identical stats whether the eval's pool has 1 participant or 4.
     Controllers carry mutable state once initialized, so each run takes
     a fresh registry. *)
  let p = platform3 () in
  let config =
    {
      Runtime.Loop.default with
      Runtime.Loop.duration = 1.0;
      sensor_noise = 0.8;
      power_noise = 0.05;
      phases = Some Workload.Phases.default_phases;
      observer_gain = Some 0.3;
      seed = 7;
    }
  in
  let run pool_size =
    let ev = Core.Eval.create ~pool:(Util.Pool.create ~size:pool_size ()) p in
    List.map
      (fun (c : Runtime.Controller.t) -> Runtime.Loop.run ~config ev c)
      (Runtime.Controllers.all ())
  in
  Alcotest.(check bool) "pool size 1 = pool size 4" true (run 1 = run 4)

(* ------------------------------------------------------------- observer *)

let obs_platform = platform3 ()
let obs_backend = Thermal.Backend.of_model obs_platform.Core.Platform.model

let prop_observer_filters_and_update_parity =
  (* For any gain and noise seed: (a) the observer's core estimates track
     the truth at least as tightly as the raw noisy sensors on average,
     and (b) the allocating [update] and in-place [update_into] paths are
     bit-identical. *)
  QCheck.Test.make ~name:"observer filters noise; update = update_into"
    ~count:25
    QCheck.(pair (make Gen.(float_range 0.1 0.7)) (make Gen.(int_range 0 10_000)))
    (fun (gain, seed) ->
      let p = obs_platform in
      let b = obs_backend in
      let dt = 0.01 in
      let obs = Runtime.Observer.create ~gain b ~dt in
      let rng = Random.State.make [| seed |] in
      let gaussian sigma =
        let u1 = Float.max 1e-12 (Random.State.float rng 1.) in
        sigma
        *. sqrt (-2. *. Float.log u1)
        *. Float.cos (2. *. Float.pi *. Random.State.float rng 1.)
      in
      let psi =
        Power.Power_model.psi_vector p.Core.Platform.power [| 1.3; 0.6; 1.0 |]
      in
      let truth = ref (b.Thermal.Backend.ambient_state ()) in
      let est = ref (Runtime.Observer.initial obs) in
      let est' = Linalg.Vec.copy !est in
      let raw_err = ref 0. and obs_err = ref 0. and parity = ref true in
      for step = 1 to 400 do
        truth := b.Thermal.Backend.step ~dt ~state:!truth ~psi;
        let true_temps = b.Thermal.Backend.core_temps !truth in
        let measured = Array.map (fun t -> t +. gaussian 1.5) true_temps in
        est := Runtime.Observer.update obs ~estimate:!est ~psi ~measured;
        Runtime.Observer.update_into obs ~estimate:est' ~psi ~measured;
        parity := !parity && Float.equal (Linalg.Vec.dist_inf !est est') 0.;
        if step > 100 then begin
          let est_temps = Runtime.Observer.core_estimates obs !est in
          for i = 0 to 2 do
            raw_err := !raw_err +. Float.abs (measured.(i) -. true_temps.(i));
            obs_err := !obs_err +. Float.abs (est_temps.(i) -. true_temps.(i))
          done
        end
      done;
      !parity && !obs_err <= !raw_err)

let test_observer_converges_noise_free () =
  (* Seeded 8 K hot through the restart hook, an exact-sensor observer
     must pull its core estimates back onto the truth. *)
  let p = obs_platform in
  let b = obs_backend in
  let dt = 0.02 in
  let obs = Runtime.Observer.create ~gain:0.5 b ~dt in
  let psi = Power.Power_model.psi_vector p.Core.Platform.power [| 1.0; 1.0; 1.0 |] in
  let truth = ref (b.Thermal.Backend.ambient_state ()) in
  let est = ref (Runtime.Observer.initial obs) in
  b.Thermal.Backend.correct_cores ~state:!est ~deltas:[| 8.; 8.; 8. |];
  for _ = 1 to 100 do
    truth := b.Thermal.Backend.step ~dt ~state:!truth ~psi;
    let measured = b.Thermal.Backend.core_temps !truth in
    Runtime.Observer.update_into obs ~estimate:!est ~psi ~measured
  done;
  let t = b.Thermal.Backend.core_temps !truth
  and e = Runtime.Observer.core_estimates obs !est in
  for i = 0 to 2 do
    check_close 0.05
      (Printf.sprintf "core %d estimate converged" i)
      t.(i) e.(i)
  done

(* ------------------------------------------------ offline-replay parity *)

let offline_parity backend () =
  (* A two-mode schedule whose switch points sit exactly on the control
     grid (ratios are multiples of 1/25, interval = period/25) replayed
     through the loop must reproduce the stable-status peak the offline
     evaluator predicts — on the dense AND the sparse plant. *)
  let p = platform3 () in
  let ev = Core.Eval.create ~backend p in
  let period = 0.5 in
  let low = [| 0.8; 0.8; 0.8 |] and high = [| 1.3; 1.2; 1.3 |] in
  let high_ratio = [| 0.4; 0.52; 0.6 |] in
  let s = Sched.Schedule.two_mode ~period ~low ~high ~high_ratio in
  let predicted = Core.Eval.two_mode_peak ev ~period ~low ~high ~high_ratio in
  let config =
    {
      Runtime.Loop.default with
      Runtime.Loop.control_interval = period /. 25.;
      duration = 12.;
    }
  in
  let stats = Runtime.Loop.run ~config ev (Runtime.Controllers.offline_schedule s) in
  check_close 0.8 "replayed peak = predicted stable-status peak" predicted
    stats.Runtime.Loop.peak;
  Alcotest.(check bool) "replay switches as scheduled" true
    (stats.Runtime.Loop.switches > 0)

let () =
  Alcotest.run "runtime"
    [
      ( "registry",
        [
          Alcotest.test_case "names and lookup" `Quick test_registry_names;
          Alcotest.test_case "static validation" `Quick test_static_validation;
          Alcotest.test_case "all controllers, both backends" `Slow
            test_all_controllers_both_backends;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seed-deterministic at pool sizes 1 and 4" `Slow
            test_seed_determinism_across_pool_sizes;
        ] );
      ( "observer",
        Alcotest.test_case "noise-free convergence" `Quick
          test_observer_converges_noise_free
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_observer_filters_and_update_parity ] );
      ( "offline parity",
        [
          Alcotest.test_case "dense plant" `Slow (offline_parity Core.Eval.Dense);
          Alcotest.test_case "sparse plant" `Slow
            (offline_parity Core.Eval.Sparse);
        ] );
    ]
