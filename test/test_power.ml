(* Tests for DVFS level sets and the Eq. (1) power model. *)

module Vf = Power.Vf
module Pm = Power.Power_model

let check_close tol = Alcotest.(check (float tol))

(* --------------------------------------------------------------- levels *)

let test_make_sorts_and_dedups () =
  let ls = Vf.make [ 1.3; 0.6; 0.8; 0.8 ] in
  Alcotest.(check int) "3 unique levels" 3 (Vf.n_levels ls);
  check_close 1e-12 "lowest" 0.6 (Vf.lowest ls);
  check_close 1e-12 "highest" 1.3 (Vf.highest ls)

let test_make_rejects_bad () =
  Alcotest.check_raises "empty" (Invalid_argument "Vf.make: empty level set") (fun () ->
      ignore (Vf.make []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Vf.make: non-positive voltage level") (fun () ->
      ignore (Vf.make [ 0.; 1. ]))

let test_range () =
  let ls = Vf.range ~lo:0.6 ~hi:1.3 ~step:0.05 in
  Alcotest.(check int) "15 grid points" 15 (Vf.n_levels ls);
  check_close 1e-9 "first" 0.6 (Vf.lowest ls);
  check_close 1e-9 "last" 1.3 (Vf.highest ls)

let test_table_iv () =
  List.iter
    (fun (n, expected) ->
      let ls = Vf.table_iv n in
      Alcotest.(check (list (float 1e-12)))
        (Printf.sprintf "%d levels" n)
        expected
        (Array.to_list (Vf.levels ls)))
    [
      (2, [ 0.6; 1.3 ]);
      (3, [ 0.6; 0.8; 1.3 ]);
      (4, [ 0.6; 0.8; 1.0; 1.3 ]);
      (5, [ 0.6; 0.8; 1.0; 1.2; 1.3 ]);
    ];
  Alcotest.(check bool) "6 levels rejected" true
    (match Vf.table_iv 6 with exception Invalid_argument _ -> true | _ -> false)

let test_round_down () =
  let ls = Vf.table_iv 4 in
  check_close 1e-12 "between levels" 0.8 (Vf.round_down ls 0.95);
  check_close 1e-12 "exact level" 1.0 (Vf.round_down ls 1.0);
  check_close 1e-12 "below range clamps up" 0.6 (Vf.round_down ls 0.3);
  check_close 1e-12 "above range clamps down" 1.3 (Vf.round_down ls 2.0)

let test_neighbours () =
  let ls = Vf.table_iv 4 in
  let lo, hi = Vf.neighbours ls 0.9 in
  check_close 1e-12 "lower neighbour" 0.8 lo;
  check_close 1e-12 "upper neighbour" 1.0 hi;
  let lo, hi = Vf.neighbours ls 1.0 in
  check_close 1e-12 "exact hit low" 1.0 lo;
  check_close 1e-12 "exact hit high" 1.0 hi;
  let lo, hi = Vf.neighbours ls 0.2 in
  check_close 1e-12 "below range low" 0.6 lo;
  check_close 1e-12 "below range high" 0.6 hi;
  let lo, hi = Vf.neighbours ls 1.5 in
  check_close 1e-12 "above range low" 1.3 lo;
  check_close 1e-12 "above range high" 1.3 hi

let test_mem () =
  let ls = Vf.table_iv 2 in
  Alcotest.(check bool) "member" true (Vf.mem ls 1.3);
  Alcotest.(check bool) "non-member" false (Vf.mem ls 1.0)

(* ---------------------------------------------------------- power model *)

let test_psi_values () =
  let pm = Pm.default in
  check_close 1e-12 "idle core consumes nothing" 0. (Pm.psi pm 0.);
  check_close 1e-9 "0.6V" (0.5 +. (9. *. 0.216)) (Pm.psi pm 0.6);
  check_close 1e-9 "1.3V" (0.5 +. (9. *. 2.197)) (Pm.psi pm 1.3)

let test_psi_monotone () =
  let pm = Pm.default in
  let prev = ref (Pm.psi pm 0.1) in
  List.iter
    (fun v ->
      let p = Pm.psi pm v in
      Alcotest.(check bool) "psi strictly increasing" true (p > !prev);
      prev := p)
    [ 0.2; 0.4; 0.6; 0.8; 1.0; 1.2; 1.3 ]

let test_psi_convex () =
  (* Convexity of psi(v) is what Theorem 3's proof uses:
     psi((a+b)/2) <= (psi a + psi b)/2. *)
  let pm = Pm.default in
  let a = 0.6 and b = 1.3 in
  Alcotest.(check bool) "midpoint convexity" true
    (Pm.psi pm ((a +. b) /. 2.) <= (Pm.psi pm a +. Pm.psi pm b) /. 2.)

let test_psi_rejects_negative () =
  Alcotest.check_raises "negative voltage"
    (Invalid_argument "Power_model.psi: negative voltage") (fun () ->
      ignore (Pm.psi Pm.default (-0.1)))

let test_voltage_for_psi_inverts () =
  let pm = Pm.default in
  List.iter
    (fun v ->
      check_close 1e-9
        (Printf.sprintf "invert at %.2fV" v)
        v
        (Pm.voltage_for_psi pm (Pm.psi pm v)))
    [ 0.6; 0.9; 1.3 ]

let test_voltage_for_psi_clamps () =
  check_close 1e-12 "negative budget clamps to 0" 0.
    (Pm.voltage_for_psi Pm.default (-3.))

let test_total_includes_leakage () =
  let pm = Pm.default in
  check_close 1e-9 "beta*T term" (Pm.psi pm 1.0 +. (0.05 *. 60.))
    (Pm.total pm ~v:1.0 ~temp:60.)

let test_psi_vector () =
  let pm = Pm.default in
  let out = Pm.psi_vector pm [| 0.; 0.6 |] in
  check_close 1e-12 "idle entry" 0. out.(0);
  check_close 1e-9 "active entry" (Pm.psi pm 0.6) out.(1)

let test_constant_validation () =
  Alcotest.check_raises "negative coefficient"
    (Invalid_argument "Power_model.constant: negative coefficient") (fun () ->
      ignore (Pm.constant ~alpha:(-1.) ~gamma:1. ~beta:0.))

(* ------------------------------------------------------------ properties *)

let prop_round_down_is_lower_neighbour =
  QCheck.Test.make ~name:"round_down agrees with neighbours fst" ~count:200
    QCheck.(make Gen.(float_range 0.3 1.6))
    (fun v ->
      let ls = Vf.table_iv 5 in
      let lo, _ = Vf.neighbours ls v in
      if v < Vf.lowest ls then Float.equal (Vf.round_down ls v) (Vf.lowest ls)
      else Float.abs (Vf.round_down ls v -. lo) < 1e-12)

let prop_neighbours_bracket =
  QCheck.Test.make ~name:"neighbours bracket the query inside the range" ~count:200
    QCheck.(make Gen.(float_range 0.6 1.3))
    (fun v ->
      let ls = Vf.table_iv 4 in
      let lo, hi = Vf.neighbours ls v in
      lo <= v +. 1e-12 && v <= hi +. 1e-12 && Vf.mem ls lo && Vf.mem ls hi)

let () =
  Alcotest.run "power"
    [
      ( "vf",
        [
          Alcotest.test_case "make sorts and dedups" `Quick test_make_sorts_and_dedups;
          Alcotest.test_case "make rejects bad input" `Quick test_make_rejects_bad;
          Alcotest.test_case "range grid" `Quick test_range;
          Alcotest.test_case "table IV" `Quick test_table_iv;
          Alcotest.test_case "round down" `Quick test_round_down;
          Alcotest.test_case "neighbours" `Quick test_neighbours;
          Alcotest.test_case "mem" `Quick test_mem;
        ] );
      ( "power_model",
        [
          Alcotest.test_case "psi values" `Quick test_psi_values;
          Alcotest.test_case "psi monotone" `Quick test_psi_monotone;
          Alcotest.test_case "psi convex" `Quick test_psi_convex;
          Alcotest.test_case "psi rejects negative" `Quick test_psi_rejects_negative;
          Alcotest.test_case "voltage_for_psi inverts" `Quick test_voltage_for_psi_inverts;
          Alcotest.test_case "voltage_for_psi clamps" `Quick test_voltage_for_psi_clamps;
          Alcotest.test_case "total includes leakage" `Quick test_total_includes_leakage;
          Alcotest.test_case "psi vector" `Quick test_psi_vector;
          Alcotest.test_case "constant validation" `Quick test_constant_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_round_down_is_lower_neighbour; prop_neighbours_bracket ] );
    ]
