(* Source loading and the cross-file "float shape" harvest.

   fosc-lint works on parsetrees (compiler-libs [Parse] +
   [Ast_iterator]), not typedtrees, so it cannot ask the typer whether
   an operand of [compare] mentions [float].  Instead it runs a cheap
   whole-repo harvest first and answers the question syntactically:

   - [float_types]: names of declared types whose definition mentions
     [float] transitively (records with float fields, aliases, variant
     payloads, containers thereof), computed as a fixpoint over every
     scanned [.ml]/[.mli];
   - [float_fields]: record field names whose declared type mentions
     float, so [e.duration] is float evidence wherever it appears;
   - [float_vals]: qualified values ([Vec.max], [Hotspot.default_ambient],
     module-level float constants) whose fully-applied result mentions
     float;
   - [mutable_fields]: field names declared [mutable], so a top-level
     record literal containing one is recognizably shared mutable state.

   Names are keyed as ["Module.name"] where [Module] is the defining
   file's module name; references are resolved by their last two path
   components, which is exact for this repo's one-level library wrapping
   ([Sched.Schedule.t] and [Schedule.t] both key as ["Schedule.t"]). *)

module SSet = Set.Make (String)
open Parsetree

type ast =
  | Impl of structure
  | Intf of signature
  | Broken of int * string  (* parse failure: line, message *)

type source = {
  path : string;  (* as given on the command line, used in findings *)
  modname : string;
  lib_scope : bool;  (* under lib/: R2 and R4 apply *)
  ast : ast;
}

let modname_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let parse_file ~lib_scope path =
  let parse () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Location.init lexbuf path;
        if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
        else Impl (Parse.implementation lexbuf))
  in
  let ast =
    match parse () with
    | ast -> ast
    | exception Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        Broken (loc.loc_start.pos_lnum, "syntax error")
    | exception exn -> Broken (1, Printexc.to_string exn)
  in
  { path; modname = modname_of_path path; lib_scope; ast }

(* ------------------------------------------------------------ names *)

(* [Longident.flatten] raises on [Lapply]; a lint never wants that. *)
let safe_flatten lid =
  match Longident.flatten lid with l -> l | exception _ -> []

let last2 = function
  | [] -> ""
  | [ x ] -> x
  | l -> ( match List.rev l with b :: a :: _ -> a ^ "." ^ b | _ -> "")

(* Key under which a type reference resolves, as seen from [current]. *)
let ref_key ~current flat =
  match flat with [] -> "" | [ t ] -> current ^ "." ^ t | l -> last2 l

(* ------------------------------------------- shared builtin tables *)

let float_arith_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let builtin_float_funs =
  [
    "sqrt"; "exp"; "expm1"; "log"; "log10"; "log1p"; "cos"; "sin"; "tan";
    "acos"; "asin"; "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor";
    "abs_float"; "mod_float"; "copysign"; "ldexp"; "float_of_int"; "float";
    "float_of_string";
  ]

let builtin_float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "max_float"; "min_float"; "epsilon_float" ]

(* [Float.f] applications whose result is NOT a float. *)
let float_module_nonfloat =
  [
    "compare"; "equal"; "hash"; "seeded_hash"; "to_int"; "to_string";
    "to_bits"; "is_nan"; "is_finite"; "is_infinite"; "is_integer"; "sign_bit";
    "classify_float"; "of_string_opt"; "min_max"; "min_max_num";
  ]

(* -------------------------------------------------------- the env *)

type env = {
  float_types : SSet.t;
  float_fields : SSet.t;
  float_vals : SSet.t;
  mutable_fields : SSet.t;
}

let rec ty_mentions_float ~types ~current (ty : core_type) =
  match ty.ptyp_desc with
  | Ptyp_constr (lid, args) -> (
      match safe_flatten lid.txt with
      | [ "float" ] | [ "Stdlib"; "float" ] -> true
      | flat ->
          SSet.mem (ref_key ~current flat) types
          || List.exists (ty_mentions_float ~types ~current) args)
  | Ptyp_tuple l -> List.exists (ty_mentions_float ~types ~current) l
  | Ptyp_arrow (_, a, b) ->
      ty_mentions_float ~types ~current a || ty_mentions_float ~types ~current b
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> ty_mentions_float ~types ~current t
  | _ -> false

let label_decls_mention ~types ~current lds =
  List.exists (fun ld -> ty_mentions_float ~types ~current ld.pld_type) lds

let decl_mentions_float ~types ~current (td : type_declaration) =
  (match td.ptype_manifest with
  | Some t -> ty_mentions_float ~types ~current t
  | None -> false)
  ||
  match td.ptype_kind with
  | Ptype_record lds -> label_decls_mention ~types ~current lds
  | Ptype_variant cds ->
      List.exists
        (fun cd ->
          match cd.pcd_args with
          | Pcstr_tuple ts -> List.exists (ty_mentions_float ~types ~current) ts
          | Pcstr_record lds -> label_decls_mention ~types ~current lds)
        cds
  | Ptype_abstract | Ptype_open -> false

(* Collected declarations, tagged with the module they live in. *)
type raw = {
  mutable types : (string * type_declaration) list;  (* modname, decl *)
  mutable labels : (string * label_declaration) list;
  mutable vals : (string * string * core_type) list;  (* mod, name, type *)
  mutable float_lets : (string * string) list;  (* mod, name: float consts *)
}

(* A module-level [let] whose body is unmistakably a float expression;
   enough for constant tables like [let v_low = 0.6]. *)
let rec shallow_float_expr e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match safe_flatten txt with
      | [ f ] ->
          List.mem f float_arith_ops || List.mem f builtin_float_funs
      | [ "Float"; f ] -> not (List.mem f float_module_nonfloat)
      | _ -> false)
  | Pexp_constraint (e', { ptyp_desc = Ptyp_constr (lid, []); _ }) ->
      safe_flatten lid.txt = [ "float" ] || shallow_float_expr e'
  | _ -> false

let record_labels raw modname td =
  let each lds = List.iter (fun ld -> raw.labels <- (modname, ld) :: raw.labels) lds in
  (match td.ptype_kind with
  | Ptype_record lds -> each lds
  | Ptype_variant cds ->
      List.iter
        (fun cd ->
          match cd.pcd_args with Pcstr_record lds -> each lds | _ -> ())
        cds
  | _ -> ());
  raw.types <- (modname, td) :: raw.types

let rec collect_structure raw modname (str : structure) =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, tds) -> List.iter (record_labels raw modname) tds
      | Pstr_primitive vd ->
          raw.vals <- (modname, vd.pval_name.txt, vd.pval_type) :: raw.vals
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when shallow_float_expr vb.pvb_expr ->
                  raw.float_lets <- (modname, txt) :: raw.float_lets
              | _ -> ())
            vbs
      | Pstr_module mb -> collect_module raw mb.pmb_name.txt mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter (fun mb -> collect_module raw mb.pmb_name.txt mb.pmb_expr) mbs
      | _ -> ())
    str

and collect_module raw name (me : module_expr) =
  let name = Option.value name ~default:"_" in
  match me.pmod_desc with
  | Pmod_structure str -> collect_structure raw name str
  | Pmod_constraint (me', _) | Pmod_functor (_, me') ->
      collect_module raw (Some name) me'
  | _ -> ()

let rec collect_signature raw modname (sg : signature) =
  List.iter
    (fun item ->
      match item.psig_desc with
      | Psig_type (_, tds) -> List.iter (record_labels raw modname) tds
      | Psig_value vd ->
          raw.vals <- (modname, vd.pval_name.txt, vd.pval_type) :: raw.vals
      | Psig_module md -> collect_module_type raw md.pmd_name.txt md.pmd_type
      | _ -> ())
    sg

and collect_module_type raw name (mt : module_type) =
  let name = Option.value name ~default:"_" in
  match mt.pmty_desc with
  | Pmty_signature sg -> collect_signature raw name sg
  | Pmty_functor (_, mt') -> collect_module_type raw (Some name) mt'
  | _ -> ()

let rec result_type (ty : core_type) =
  match ty.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> result_type r
  | Ptyp_poly (_, t) -> result_type t
  | _ -> ty

let build_env (sources : source list) =
  let raw = { types = []; labels = []; vals = []; float_lets = [] } in
  List.iter
    (fun src ->
      match src.ast with
      | Impl str -> collect_structure raw src.modname str
      | Intf sg -> collect_signature raw src.modname sg
      | Broken _ -> ())
    sources;
  (* Fixpoint over declared types: a type is float-bearing as soon as
     its definition mentions float or another float-bearing type. *)
  let types = ref SSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m, td) ->
        let key = m ^ "." ^ td.ptype_name.txt in
        if
          (not (SSet.mem key !types))
          && decl_mentions_float ~types:!types ~current:m td
        then begin
          types := SSet.add key !types;
          changed := true
        end)
      raw.types
  done;
  let types = !types in
  (* A field name is float evidence only when EVERY record declaring a
     field of that name gives it a float-bearing type; [Mat.t.rows : int]
     must not be poisoned by some result record's [rows : row list]. *)
  let yes, no =
    List.fold_left
      (fun (yes, no) (m, ld) ->
        if ty_mentions_float ~types ~current:m ld.pld_type then
          (SSet.add ld.pld_name.txt yes, no)
        else (yes, SSet.add ld.pld_name.txt no))
      (SSet.empty, SSet.empty) raw.labels
  in
  let float_fields = SSet.diff yes no in
  let mutable_fields =
    List.fold_left
      (fun acc (_, ld) ->
        match ld.pld_mutable with
        | Mutable -> SSet.add ld.pld_name.txt acc
        | Immutable -> acc)
      SSet.empty raw.labels
  in
  let float_vals =
    List.fold_left
      (fun acc (m, name, ty) ->
        if ty_mentions_float ~types ~current:m (result_type ty) then
          SSet.add (m ^ "." ^ name) acc
        else acc)
      SSet.empty raw.vals
  in
  let float_vals =
    List.fold_left
      (fun acc (m, name) -> SSet.add (m ^ "." ^ name) acc)
      float_vals raw.float_lets
  in
  { float_types = types; float_fields; float_vals; mutable_fields }
