(* fosc-race rules R6–R9 (DESIGN.md §15).

   All four rules run over typedtrees loaded by Cmt_load and scoped by
   Callgraph's parallel set P:

   R6  pool-reachable code must not touch unguarded module-level
       mutable state — a mutable global needs [@fosc.guarded]/
       [@fosc.unguarded] (reviewed) or an Atomic/Mutex/DLS discipline.
   R7  every [Mutex.lock l] must provably release [l] on all paths:
       either the next statement is a [Fun.protect] whose [~finally]
       unlocks, or the critical section is a straight line of
       whitelisted non-raising operations ending in [Mutex.unlock l].
       Checked on ALL analyzed code, parallel or not — a leaked lock
       poisons whoever contends next.  Waiver: [@fosc.lock_ok].
   R8  pool-reachable code must not [Lazy.force] a shared lazy: the
       first force racing across domains raises [Lazy.RacyLazy].
       Waiver: [@fosc.forced_before_parallel] on the lazy's binding,
       on the record field it lives in, or on the force expression —
       asserting the submitting domain forces it first.
   R9  values read from [Domain.DLS.get] scratch must not escape the
       domain: no stores into non-DLS shared structures and no
       returning scratch from a pool-reachable function.  Waiver:
       [@fosc.dls_ok] on the escaping expression (a documented
       borrow). *)

module SSet = Set.Make (String)

type finding = { path : string; line : int; col : int; rule : string; msg : string }

let finding path (loc : Location.t) rule msg =
  {
    path;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    msg;
  }

let has_attr = Callgraph.has_attr
let head_key = Callgraph.head_key

let iter_expr_subtrees root f =
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    f e;
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root

(* ------------------------------------------------------------------ R6 *)

let check_r6 (cg : Callgraph.t) =
  let out = ref [] in
  Callgraph.iter_parallel cg (fun b ->
      iter_expr_subtrees b.expr (fun e ->
          match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match
                Callgraph.resolve cg.bindings ~encl:b.encl ~unitmod:b.unitmod p
              with
              | Some k when k <> b.key -> (
                  match Hashtbl.find_opt cg.bindings k with
                  | Some { mutability = Callgraph.Unguarded; source; _ } ->
                      out :=
                        finding b.source e.exp_loc "R6"
                          (Printf.sprintf
                             "pool-reachable code reads module-level mutable \
                              state %s (%s) with no guard; use Atomic, a \
                              mutex + [@fosc.guarded], Domain.DLS, or \
                              document with [@fosc.unguarded \"reason\"]"
                             k source)
                        :: !out
                  | _ -> ())
              | _ -> ())
          | _ -> ()));
  !out

(* ------------------------------------------------------------------ R7 *)

(* Syntactic identity of a lock expression: enough to tell [t.lock]
   from [t.submit_lock] and to pair nested sections independently. *)
let rec lock_repr (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> String.concat "." (Cmt_load.norm_components p)
  | Texp_field (e', _, lbl) -> lock_repr e' ^ "." ^ lbl.lbl_name
  | _ -> Printf.sprintf "<expr@%d>" e.exp_loc.loc_start.pos_lnum

let mutex_arg key (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, [ (Asttypes.Nolabel, Some a) ]) when head_key f = Some key ->
      Some a
  | _ -> None

let is_unlock lockstr e =
  match mutex_arg "Mutex.unlock" e with
  | Some a -> lock_repr a = lockstr
  | None -> false

let contains_unlock root =
  let found = ref false in
  iter_expr_subtrees root (fun e ->
      match e.exp_desc with
      | Texp_apply (f, _) when head_key f = Some "Mutex.unlock" -> found := true
      | _ -> ());
  !found

(* [Fun.protect ~finally:(fun () -> ... Mutex.unlock ...) body]: the
   canonical raise-safe critical section. *)
let is_protect_with_unlock (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) when head_key f = Some "Fun.protect" ->
      List.exists
        (fun (lbl, arg) ->
          match (lbl, arg) with
          | Asttypes.Labelled "finally", Some fe -> contains_unlock fe
          | _ -> false)
        args
  | _ -> false

(* Operations allowed in a bare lock/unlock section: nothing here can
   raise on a live, type-correct structure.  Anything outside the list
   (unknown calls, [Queue.pop], [raise], partial matches) forces the
   section over to [Fun.protect]. *)
let safe_calls =
  SSet.of_list
    [
      "Hashtbl.find_opt"; "Hashtbl.mem"; "Hashtbl.length"; "Hashtbl.replace";
      "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.add"; "Hashtbl.clear";
      "Queue.push"; "Queue.add"; "Queue.take_opt"; "Queue.peek_opt";
      "Queue.is_empty"; "Queue.length"; "Queue.clear";
      "Stack.push"; "Stack.pop_opt";
      "Atomic.get"; "Atomic.set"; "Atomic.incr"; "Atomic.decr";
      "Atomic.fetch_and_add"; "Atomic.exchange"; "Atomic.compare_and_set";
      "Atomic.make";
      "Condition.wait"; "Condition.signal"; "Condition.broadcast";
      "Mutex.lock"; "Mutex.unlock";
      "DLS.get"; "DLS.set";
      "ref"; "!"; ":="; "not"; "ignore"; "="; "<>"; "<"; ">"; "<="; ">=";
      "=="; "!="; "+"; "-"; "*"; "/"; "min"; "max"; "compare"; "fst"; "snd";
      "&&"; "||"; "succ"; "pred";
      "Float.equal"; "Float.compare"; "Int.equal"; "Int.compare";
      "String.equal"; "String.compare"; "Option.is_some"; "Option.is_none";
    ]

let rec safe (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_function _ | Texp_unreachable -> true
  | Texp_construct (_, _, args) -> List.for_all safe args
  | Texp_tuple es -> List.for_all safe es
  | Texp_variant (_, eo) -> ( match eo with Some e -> safe e | None -> true)
  | Texp_field (e', _, _) -> safe e'
  | Texp_setfield (e1, _, _, e2) -> safe e1 && safe e2
  | Texp_record { fields; extended_expression; _ } ->
      (match extended_expression with Some e -> safe e | None -> true)
      && Array.for_all
           (fun (_, def) ->
             match def with
             | Typedtree.Overridden (_, e) -> safe e
             | Typedtree.Kept _ -> true)
           fields
  | Texp_apply (f, args) -> (
      match head_key f with
      | Some k when SSet.mem k safe_calls ->
          List.for_all
            (fun (_, a) -> match a with Some a -> safe a | None -> true)
            args
      | _ -> false)
  | Texp_sequence (a, b) -> safe a && safe b
  | Texp_let (_, vbs, body) ->
      List.for_all (fun (vb : Typedtree.value_binding) -> safe vb.vb_expr) vbs
      && safe body
  | Texp_ifthenelse (c, t, f) -> (
      safe c && safe t && match f with Some f -> safe f | None -> true)
  | Texp_match (s, cases, partial) ->
      partial = Total && safe s
      && List.for_all
           (fun (c : _ Typedtree.case) ->
             (match c.c_guard with Some g -> safe g | None -> true)
             && safe c.c_rhs)
           cases
  | Texp_while (c, b) -> safe c && safe b
  | Texp_for (_, _, lo, hi, _, b) -> safe lo && safe hi && safe b
  | _ -> false

(* Does the continuation after [Mutex.lock l] provably release [l]?
   Either a [Fun.protect] with an unlocking finalizer comes first, or a
   straight line of [safe] statements reaches [Mutex.unlock l]; after
   the unlock anything goes.  Branching sections must pair on every
   branch. *)
let rec paired lockstr (e : Typedtree.expression) =
  is_protect_with_unlock e || is_unlock lockstr e
  ||
  match e.exp_desc with
  | Texp_sequence (a, b) ->
      if is_unlock lockstr a || is_protect_with_unlock a then true
      else safe a && paired lockstr b
  | Texp_let (_, vbs, body) ->
      let vb_ok (vb : Typedtree.value_binding) =
        is_protect_with_unlock vb.vb_expr || safe vb.vb_expr
      in
      List.for_all vb_ok vbs
      && (List.exists
            (fun (vb : Typedtree.value_binding) ->
              is_protect_with_unlock vb.vb_expr)
            vbs
         || paired lockstr body)
  | Texp_ifthenelse (c, t, f) -> (
      safe c && paired lockstr t
      && match f with Some f -> paired lockstr f | None -> false)
  | Texp_match (s, cases, _) ->
      safe s
      && List.for_all
           (fun (c : _ Typedtree.case) ->
             (match c.c_guard with Some g -> safe g | None -> true)
             && paired lockstr c.c_rhs)
           cases
  | _ -> false

let check_r7 (cg : Callgraph.t) =
  let out = ref [] in
  Callgraph.iter_all cg (fun b ->
      if not (has_attr "fosc.lock_ok" b.attrs) then begin
        (* Locks whose release was established via their statement
           context, keyed by source position. *)
        let ok = Hashtbl.create 8 in
        let locks = ref [] in
        iter_expr_subtrees b.expr (fun e ->
            match e.exp_desc with
            | Texp_sequence (a, k) -> (
                match mutex_arg "Mutex.lock" a with
                | Some l when paired (lock_repr l) k ->
                    Hashtbl.replace ok a.Typedtree.exp_loc ()
                | _ -> ())
            | Texp_apply (f, _) when head_key f = Some "Mutex.lock" ->
                if not (has_attr "fosc.lock_ok" e.exp_attributes) then
                  locks := e :: !locks
            | _ -> ());
        List.iter
          (fun (e : Typedtree.expression) ->
            if not (Hashtbl.mem ok e.exp_loc) then
              out :=
                finding b.source e.exp_loc "R7"
                  (Printf.sprintf
                     "Mutex.lock %s is not provably released on all paths; \
                      use Fun.protect ~finally:(fun () -> Mutex.unlock %s), \
                      keep the section to non-raising operations ending in \
                      the unlock, or waive with [@fosc.lock_ok \"reason\"]"
                     (match mutex_arg "Mutex.lock" e with
                     | Some l -> lock_repr l
                     | None -> "<lock>")
                     (match mutex_arg "Mutex.lock" e with
                     | Some l -> lock_repr l
                     | None -> "<lock>"))
                :: !out)
          !locks
      end);
  !out

(* ------------------------------------------------------------------ R8 *)

let fbp = "fosc.forced_before_parallel"

let check_r8 (cg : Callgraph.t) =
  let out = ref [] in
  Callgraph.iter_parallel cg (fun b ->
      iter_expr_subtrees b.expr (fun e ->
          match e.exp_desc with
          | Texp_apply (f, [ (Asttypes.Nolabel, Some a) ])
            when head_key f = Some "Lazy.force" ->
              let waived =
                has_attr fbp e.exp_attributes
                || has_attr fbp a.exp_attributes
                || (match a.exp_desc with
                   | Texp_field (_, _, lbl) -> has_attr fbp lbl.lbl_attributes
                   | _ -> false)
                || (match a.exp_desc with
                   | Texp_ident (p, _, _) -> (
                       match
                         Callgraph.resolve cg.bindings ~encl:b.encl
                           ~unitmod:b.unitmod p
                       with
                       | Some k -> (
                           match Hashtbl.find_opt cg.bindings k with
                           | Some tb -> has_attr fbp tb.attrs
                           | None -> false)
                       | None -> false)
                   | _ -> false)
              in
              if not waived then
                out :=
                  finding b.source e.exp_loc "R8"
                    "Lazy.force reachable from a pool closure: a first-force \
                     race across domains raises Lazy.RacyLazy; force on the \
                     submitting domain first and annotate the lazy with \
                     [@fosc.forced_before_parallel \"reason\"], or replace \
                     it with Util.Once"
                  :: !out
          | _ -> ()));
  !out

(* ------------------------------------------------------------------ R9 *)

let dls_ok = "fosc.dls_ok"

(* Stores into shared structures, by where the stored value sits in the
   argument list: (key, index of the value among Nolabel args). *)
let store_calls =
  [
    ("Hashtbl.replace", 2);
    ("Hashtbl.add", 2);
    ("Queue.push", 0);
    ("Queue.add", 0);
    ("Stack.push", 0);
    (":=", 1);
    ("Array.set", 2);
    ("Array.unsafe_set", 2);
  ]

let rec unwrap_functions (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> unwrap_functions c.c_rhs
  | _ -> e

let rec tails (e : Typedtree.expression) acc =
  match e.exp_desc with
  | Texp_let (_, _, b) | Texp_sequence (_, b) -> tails b acc
  | Texp_ifthenelse (_, t, f) -> (
      tails t (match f with Some f -> tails f acc | None -> acc))
  | Texp_match (_, cases, _) ->
      List.fold_left (fun acc (c : _ Typedtree.case) -> tails c.c_rhs acc) acc cases
  | Texp_try (b, cases) ->
      List.fold_left
        (fun acc (c : _ Typedtree.case) -> tails c.c_rhs acc)
        (tails b acc) cases
  | _ -> e :: acc

module IdSet = Set.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

let check_r9 (cg : Callgraph.t) =
  let out = ref [] in
  Callgraph.iter_parallel cg (fun b ->
      (* Locals holding this domain's DLS scratch (or projections of
         it), collected on a pre-pass so order of definition vs. use in
         the tree walk doesn't matter. *)
      let derived_ids = ref IdSet.empty in
      let rec derived (e : Typedtree.expression) =
        match e.exp_desc with
        | Texp_apply (f, _) when head_key f = Some "DLS.get" -> true
        | Texp_ident (Path.Pident id, _, _) -> IdSet.mem id !derived_ids
        | Texp_field (e', _, _) -> derived e'
        | _ -> false
      in
      let changed = ref true in
      while !changed do
        changed := false;
        iter_expr_subtrees b.expr (fun e ->
            match e.exp_desc with
            | Texp_let (_, vbs, _) ->
                List.iter
                  (fun (vb : Typedtree.value_binding) ->
                    match vb.vb_pat.pat_desc with
                    | (Tpat_var (id, _) | Tpat_alias (_, id, _))
                      when derived vb.vb_expr && not (IdSet.mem id !derived_ids)
                      ->
                        derived_ids := IdSet.add id !derived_ids;
                        changed := true
                    | _ -> ())
                  vbs
            | _ -> ())
      done;
      let waived (e : Typedtree.expression) = has_attr dls_ok e.exp_attributes in
      let escape loc what =
        out :=
          finding b.source loc "R9"
            (Printf.sprintf
               "Domain.DLS scratch %s: per-domain scratch escaping its \
                domain is a data race in waiting; copy it \
                (Array.copy/Bytes.copy) or annotate the expression with \
                [@fosc.dls_ok \"reason\"] if this is a documented borrow"
               what)
          :: !out
      in
      (* Stores of derived values into shared structures. *)
      iter_expr_subtrees b.expr (fun e ->
          match e.exp_desc with
          | Texp_setfield (target, _, _, v)
            when derived v && (not (derived target)) && not (waived v) ->
              escape e.exp_loc "stored into a shared record field"
          | Texp_apply (f, args) -> (
              match head_key f with
              | Some k -> (
                  match List.assoc_opt k store_calls with
                  | Some idx -> (
                      let positional =
                        List.filter_map
                          (fun (lbl, a) ->
                            match (lbl, a) with
                            | Asttypes.Nolabel, Some a -> Some a
                            | _ -> None)
                          args
                      in
                      match List.nth_opt positional idx with
                      | Some v when derived v && not (waived v) ->
                          escape e.exp_loc (Printf.sprintf "passed to %s" k)
                      | _ -> ())
                  | None -> ())
              | None -> ())
          | _ -> ());
      (* Derived values returned from the binding itself. *)
      let body = unwrap_functions b.expr in
      if body != b.expr then
        List.iter
          (fun (tail : Typedtree.expression) ->
            if derived tail && not (waived tail) then
              escape tail.exp_loc "returned from a pool-reachable function")
          (tails body []));
  !out

(* --------------------------------------------------------------- all *)

let check (cg : Callgraph.t) =
  let findings = check_r6 cg @ check_r7 cg @ check_r8 cg @ check_r9 cg in
  List.sort
    (fun a b ->
      match compare a.path b.path with
      | 0 -> (
          match compare a.line b.line with
          | 0 -> ( match compare a.col b.col with 0 -> compare a.rule b.rule | c -> c)
          | c -> c)
      | c -> c)
    findings
