(* fosc-race: typedtree domain-safety analysis (DESIGN.md §15).

   Usage: fosc_race [--sarif FILE] PATH...

   Each PATH is a .cmt file or a directory walked recursively for .cmt
   files (dune keeps them under lib/<dir>/.<lib>.objs/byte/).  The tool
   loads every implementation unit, builds the cross-file callgraph and
   the pool-reachable set, and runs rules R6–R9.

   Findings print in the same "path:line:col: [RULE] msg" format as
   fosc_lint so the test harness and editors parse both passes alike;
   --sarif additionally writes a SARIF 2.1.0 log for code-scanning
   upload.

   Exit status: 0 clean, 1 findings, 2 usage error. *)

let usage = "usage: fosc_race [--sarif FILE] PATH..."

let sarif_out = ref ""
let roots = ref []

let () =
  Arg.parse
    [ ("--sarif", Arg.Set_string sarif_out, "FILE  write a SARIF 2.1.0 log") ]
    (fun p -> roots := p :: !roots)
    usage

(* ------------------------------------------------------------- SARIF *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rule_descriptions =
  [
    ("R6", "pool-reachable code must not touch unguarded module-level mutable state");
    ("R7", "Mutex.lock must be paired with an unlock on every path");
    ("R8", "no Lazy.force of a shared lazy in a parallel region");
    ("R9", "Domain.DLS scratch must not escape its domain");
  ]

let write_sarif file (findings : Race_rules.finding list) =
  let oc = open_out file in
  let rules =
    rule_descriptions
    |> List.map (fun (id, desc) ->
           Printf.sprintf
             "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}" id
             (json_escape desc))
    |> String.concat ","
  in
  let results =
    findings
    |> List.map (fun (f : Race_rules.finding) ->
           Printf.sprintf
             "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
             (json_escape f.rule) (json_escape f.msg) (json_escape f.path)
             f.line (f.col + 1))
    |> String.concat ","
  in
  Printf.fprintf oc
    "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"fosc-race\",\"informationUri\":\"https://example.invalid/fosc\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    rules results;
  close_out oc

(* -------------------------------------------------------------- main *)

let () =
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("fosc_race: no such path: " ^ r);
        exit 2
      end)
    roots;
  let units = Cmt_load.load roots in
  if units = [] then begin
    prerr_endline
      "fosc_race: no .cmt implementation units found (build the library \
       first: cmts live under _build/.../.<lib>.objs/byte/)";
    exit 2
  end;
  let cg = Callgraph.build units in
  if Sys.getenv_opt "FOSC_RACE_DEBUG" <> None then
    List.iter
      (fun k ->
        let b = Hashtbl.find cg.Callgraph.bindings k in
        Printf.eprintf "# %s mut=%s pool=%b par=%b refs=[%s]\n" k
          (match b.Callgraph.mutability with
          | Callgraph.Not_mutable -> "-"
          | Callgraph.Guarded -> "guarded"
          | Callgraph.Unguarded -> "UNGUARDED")
          b.Callgraph.has_pool_site
          (Callgraph.SSet.mem k cg.Callgraph.parallel)
          (String.concat "," (Callgraph.SSet.elements b.Callgraph.refs)))
      cg.Callgraph.order;
  let findings = Race_rules.check cg in
  List.iter
    (fun (f : Race_rules.finding) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.path f.line f.col f.rule f.msg)
    findings;
  if !sarif_out <> "" then write_sarif !sarif_out findings;
  let n = List.length findings in
  let npar = Callgraph.SSet.cardinal cg.parallel in
  if n = 0 then begin
    Printf.printf "fosc-race: %d units, %d pool-reachable bindings, clean\n"
      (List.length units) npar;
    exit 0
  end
  else begin
    Printf.printf
      "fosc-race: %d finding%s across %d units (%d pool-reachable bindings)\n"
      n
      (if n = 1 then "" else "s")
      (List.length units) npar;
    exit 1
  end
