(* fosc-lint: repo-specific static analysis (DESIGN.md §10).

   Usage: fosc_lint [--scope lib] PATH...

   Each PATH is a file or a directory walked recursively for .ml/.mli.
   Scope (whether R2/R4 apply) is normally inferred per file from its
   path ("lib" component → lib scope; "bin"/"bench"/"test"/"tool" →
   not); [--scope lib] forces lib scope for everything, which is how
   the fixture tests exercise R2/R4 on files living under test/.

   Exit status: 0 clean, 1 findings (parse failures count as findings
   with rule id "parse"). *)

let usage = "usage: fosc_lint [--scope lib] PATH..."

let forced_lib_scope = ref false
let roots = ref []

let () =
  Arg.parse
    [
      ( "--scope",
        Arg.String
          (function
          | "lib" -> forced_lib_scope := true
          | s ->
              prerr_endline ("fosc_lint: unknown scope " ^ s);
              exit 2),
        "lib  treat every input as lib/ code (enables R2/R4)" );
    ]
    (fun p -> roots := p :: !roots)
    usage

let skip_dir name =
  name = "_build" || name = "lint_fixtures" || name = "race_fixtures"
  || (String.length name > 0 && name.[0] = '.')

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if skip_dir entry then acc else walk acc (Filename.concat path entry))
         acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let lib_scope_of_path path =
  !forced_lib_scope
  || List.mem "lib" (String.split_on_char '/' path)

let () =
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("fosc_lint: no such path: " ^ r);
        exit 2
      end)
    roots;
  let files = List.fold_left walk [] roots |> List.sort compare in
  let sources =
    List.map
      (fun path -> Harvest.parse_file ~lib_scope:(lib_scope_of_path path) path)
      files
  in
  let env = Harvest.build_env sources in
  let findings = List.concat_map (Rules.check env) sources in
  let findings =
    List.sort
      (fun (a : Rules.finding) (b : Rules.finding) ->
        match compare a.path b.path with
        | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
        | c -> c)
      findings
  in
  List.iter
    (fun (f : Rules.finding) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.path f.line f.col f.rule f.msg)
    findings;
  let n = List.length findings in
  if n = 0 then begin
    Printf.printf "fosc-lint: %d files clean\n" (List.length files);
    exit 0
  end
  else begin
    Printf.printf "fosc-lint: %d finding%s in %d files\n" n
      (if n = 1 then "" else "s")
      (List.length files);
    exit 1
  end
