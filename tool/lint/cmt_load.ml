(* Loading and normalizing dune's .cmt output for fosc-race.

   The second lint pass works on typedtrees, not parsetrees: every
   identifier in a .cmt is already resolved to a [Path.t], so a call to
   [Util.Pool.map] looks the same whether the source wrote [Pool.map]
   under an open, an alias, or the full dotted path.  The cost is that
   paths come in dune's wrapped-library spelling ([Core__Tpt.foo],
   [Stdlib.Lazy.force]), which this module normalizes to short
   "Mod.name" keys before anything downstream compares them.

   Normalization rules (established empirically against this repo's
   5.1.1 build):
   - components are split on '.'; a leading "Stdlib" is dropped;
   - a component containing "__" is a dune-mangled unit name: keep the
     suffix after the last "__" and re-capitalize it ([core__Tpt] and
     [Core__Tpt] both become [Tpt]);
   - the comparison key is the LAST TWO components joined with '.'
     ("Util.Pool.map" -> "Pool.map", "Stdlib.Lazy.force" ->
     "Lazy.force"), or the single component for bare idents.

   Keying on the last two components deliberately conflates same-named
   modules from different libraries; for this repo's module namespace
   that collision set is empty, and the approximation is documented in
   DESIGN.md §15. *)

type unit_info = {
  modname : string;  (* demangled unit module name, e.g. "Tpt" *)
  source : string;  (* workspace-relative source path from the cmt *)
  structure : Typedtree.structure;
}

let demangle comp =
  let n = String.length comp in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if comp.[i] = '_' && comp.[i + 1] = '_' then last_sep (i + 1) (Some i)
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | None -> comp
  | Some i ->
      let suffix = String.sub comp (i + 2) (n - i - 2) in
      if suffix = "" then comp else String.capitalize_ascii suffix

let norm_components path =
  Path.name path |> String.split_on_char '.'
  |> List.filter_map (fun c ->
         if c = "" || c = "Stdlib" then None else Some (demangle c))

(* The last two components of a normalized path, joined: the key every
   map in callgraph/race_rules is indexed by. *)
let key_of_components comps =
  match List.rev comps with
  | [] -> ""
  | [ x ] -> x
  | x :: y :: _ -> y ^ "." ^ x

let key_of_path p = key_of_components (norm_components p)

(* Walk [root] for .cmt files.  Unlike the parsetree pass this must
   descend into dot-directories: dune keeps cmts under
   lib/<dir>/.<lib>.objs/byte/. *)
let rec walk_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" then acc
           else walk_cmts acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load_file path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          let source =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some s -> s
            | None -> path
          in
          Some { modname = demangle cmt.Cmt_format.cmt_modname; source; structure }
      | _ -> None)

(* Load every implementation cmt under the given roots (directories are
   walked recursively; .cmt paths are taken as-is).  Wrapper units that
   dune synthesizes (module aliases like [Core]) load fine and simply
   contribute no interesting bindings. *)
let load roots =
  let files = List.fold_left walk_cmts [] roots |> List.sort compare in
  List.filter_map load_file files
