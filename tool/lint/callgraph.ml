(* The cross-file map fosc-race's rules consume.

   Pass 1 harvests every module-level value binding from every loaded
   unit into a table keyed by "Mod.name" (the same last-two-components
   normalization Cmt_load applies to references, so binding keys and
   reference keys meet in the middle).  Pass 2 walks each binding's
   typedtree for (a) its outgoing references, (b) parallel entry points
   — applications of [Util.Pool.map]/[map_array]/[init] or
   [Util.Parallel.map] — and (c) whether the binding itself is
   module-level mutable state and how it is guarded.

   The parallel set P is then the closure of the pool-site-enclosing
   bindings under "references a known binding": everything a pool
   closure could transitively invoke.  This over-approximates in two
   directions, both documented in DESIGN.md §15:
   - the whole enclosing binding joins P, not just the closure argument
     (code before/after the submission runs on the submitting domain
     but is still checked);
   - a closure bound to a local and passed by name contributes the
     enclosing binding's full reference set rather than its own.
   Both err toward flagging, never toward silence, except that a
   closure received as a function parameter from outside the analyzed
   units is invisible (the documented false-negative edge). *)

module SSet = Set.Make (String)

type mutability = Not_mutable | Guarded | Unguarded

type binding = {
  key : string;
  source : string;  (* workspace-relative path of the defining unit *)
  loc : Location.t;
  attrs : Parsetree.attributes;
  expr : Typedtree.expression;
  encl : string;  (* innermost enclosing module name *)
  unitmod : string;  (* demangled unit module name *)
  mutability : mutability;
  mutable refs : SSet.t;
  mutable has_pool_site : bool;
}

type t = {
  bindings : (string, binding) Hashtbl.t;
  order : string list;  (* binding keys in deterministic harvest order *)
  parallel : SSet.t;
}

(* ------------------------------------------------------------ helpers *)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let head_path (f : Typedtree.expression) =
  match f.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let head_key f = Option.map Cmt_load.key_of_path (head_path f)

let pool_keys = [ "Pool.map"; "Pool.map_array"; "Pool.init"; "Parallel.map" ]

(* Module-level mutable-state constructors.  [Atomic.make],
   [Mutex.create], [Condition.create] and [Domain.DLS.new_key] are
   deliberately absent: those are the guards, not the hazards.  [lazy]
   is also absent — R8 owns shared lazies. *)
let mutable_makers =
  SSet.of_list
    [
      "ref";
      "Hashtbl.create";
      "Queue.create";
      "Stack.create";
      "Buffer.create";
      "Array.make";
      "Array.create_float";
      "Array.init";
      "Bytes.create";
      "Bytes.make";
    ]

let rec classify_mutability attrs (e : Typedtree.expression) =
  let guarded () =
    if has_attr "fosc.guarded" attrs || has_attr "fosc.unguarded" attrs then
      Guarded
    else Unguarded
  in
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match head_key f with
      | Some k when SSet.mem k mutable_makers -> guarded ()
      | _ -> Not_mutable)
  | Texp_array _ -> guarded ()
  | Texp_record { fields; _ } ->
      if
        Array.exists
          (fun ((ld : Types.label_description), _) ->
            ld.lbl_mut = Asttypes.Mutable)
          fields
      then guarded ()
      else Not_mutable
  | Texp_let (_, _, body) -> classify_mutability attrs body
  | _ -> Not_mutable

(* Resolve a reference path to a known binding key.  Qualified paths
   normalize directly; bare idents (same-unit references) are tried
   against the innermost enclosing module, then the unit module. *)
let resolve known ~encl ~unitmod (p : Path.t) =
  match p with
  | Path.Pident id ->
      let n = Ident.name id in
      let c1 = encl ^ "." ^ n in
      let c2 = unitmod ^ "." ^ n in
      if Hashtbl.mem known c1 then Some c1
      else if Hashtbl.mem known c2 then Some c2
      else None
  | _ ->
      let k = Cmt_load.key_of_path p in
      if Hashtbl.mem known k then Some k else None

(* ------------------------------------------------------------ pass 1 *)

let harvest_unit (u : Cmt_load.unit_info) emit =
  let anon = ref 0 in
  let rec structure mods (str : Typedtree.structure) =
    List.iter (item mods) str.str_items
  and item mods (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let encl = match mods with m :: _ -> m | [] -> u.modname in
            let name =
              (* [let x : t = e] elaborates to an alias pattern, not a
                 plain var — accept both spellings. *)
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
              | _ ->
                  incr anon;
                  Printf.sprintf "(anon-%d)" !anon
            in
            emit
              {
                key = encl ^ "." ^ name;
                source = u.source;
                loc = vb.vb_loc;
                attrs = vb.vb_attributes;
                expr = vb.vb_expr;
                encl;
                unitmod = u.modname;
                mutability = classify_mutability vb.vb_attributes vb.vb_expr;
                refs = SSet.empty;
                has_pool_site = false;
              })
          vbs
    | Tstr_eval (e, attrs) ->
        incr anon;
        let encl = match mods with m :: _ -> m | [] -> u.modname in
        emit
          {
            key = Printf.sprintf "%s.(eval-%d)" encl !anon;
            source = u.source;
            loc = si.str_loc;
            attrs;
            expr = e;
            encl;
            unitmod = u.modname;
            mutability = Not_mutable;
            refs = SSet.empty;
            has_pool_site = false;
          }
    | Tstr_module mb -> module_binding mods mb
    | Tstr_recmodule mbs -> List.iter (module_binding mods) mbs
    | _ -> ()
  and module_binding mods (mb : Typedtree.module_binding) =
    let name =
      match mb.mb_id with
      | Some id -> Ident.name id
      | None -> "_"
    in
    module_expr (name :: mods) mb.mb_expr
  and module_expr mods (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> structure mods str
    | Tmod_constraint (me', _, _, _) -> module_expr mods me'
    | Tmod_functor (_, me') -> module_expr mods me'
    | _ -> ()
  in
  structure [] u.structure

(* ------------------------------------------------------------ pass 2 *)

(* Collect outgoing references and pool sites for one binding. *)
let analyze_binding known (b : binding) =
  let refs = ref SSet.empty in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match resolve known ~encl:b.encl ~unitmod:b.unitmod p with
        | Some k -> refs := SSet.add k !refs
        | None -> ())
    | Texp_apply (f, _) -> (
        match head_key f with
        | Some k when List.mem k pool_keys -> b.has_pool_site <- true
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it b.expr;
  b.refs <- SSet.remove b.key !refs

(* ------------------------------------------------------------- build *)

let build (units : Cmt_load.unit_info list) =
  let bindings = Hashtbl.create 512 in
  let order = ref [] in
  List.iter
    (fun u ->
      harvest_unit u (fun b ->
          (* Last harvest wins on key collisions (same-named nested
             modules); collisions only widen P, never shrink it. *)
          Hashtbl.replace bindings b.key b;
          order := b.key :: !order))
    units;
  let order = List.rev !order in
  List.iter (fun k -> analyze_binding bindings (Hashtbl.find bindings k)) order;
  (* P: closure of pool-site-enclosing bindings under "references". *)
  let parallel = ref SSet.empty in
  let queue = Queue.create () in
  List.iter
    (fun k ->
      let b = Hashtbl.find bindings k in
      if b.has_pool_site then Queue.push k queue)
    order;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    if not (SSet.mem k !parallel) then begin
      parallel := SSet.add k !parallel;
      match Hashtbl.find_opt bindings k with
      | Some b -> SSet.iter (fun r -> Queue.push r queue) b.refs
      | None -> ()
    end
  done;
  { bindings; order; parallel = !parallel }

let iter_parallel t f =
  List.iter
    (fun k -> if SSet.mem k t.parallel then f (Hashtbl.find t.bindings k))
    t.order

let iter_all t f = List.iter (fun k -> f (Hashtbl.find t.bindings k)) t.order
