(* The five fosc-lint rules (DESIGN.md §10).

   R1  no polymorphic =/<>/compare/min/max/Hashtbl.hash where an operand
       shows float evidence (everywhere);
   R2  module-level mutable bindings must be Atomic/Mutex/Domain.DLS or
       carry [@fosc.guarded "mutex|atomic|dls"] / [@fosc.unguarded
       "reason"] (lib/ only — everything under lib/ is reachable from
       Util.Pool tasks);
   R3  Obj is banned outright (everywhere);
   R4  wall-clock and ambient randomness are banned in lib/
       ([Random.State] with an explicit state is fine; a binding may be
       waived with [@fosc.nondeterministic "reason"]);
   R5  modules marked [@@@fosc.digest_sensitive] must not format floats
       with [string_of_float] or precision-less %f/%e/%g (use %h or an
       explicit precision).

   Plus "attr": well-formedness of every [fosc.*] annotation, checked
   everywhere so a typo can never silently disable a rule. *)

module H = Harvest
module SSet = H.SSet
open Parsetree

type finding = { path : string; line : int; col : int; rule : string; msg : string }

let finding path (loc : Location.t) rule msg =
  {
    path;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    msg;
  }

let attr_is name (a : attribute) = a.attr_name.txt = name
let has_attr name attrs = List.exists (attr_is name) attrs

let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* ------------------------------------------------------------------ R1 *)

let ident_in flat names = List.mem flat names

let float_returning (env : H.env) ~current flat =
  match flat with
  | [ f ] ->
      List.mem f H.float_arith_ops
      || List.mem f H.builtin_float_funs
      || SSet.mem (current ^ "." ^ f) env.float_vals
  | [ "Stdlib"; f ] ->
      List.mem f H.float_arith_ops || List.mem f H.builtin_float_funs
  | [ "Float"; f ] | [ "Stdlib"; "Float"; f ] ->
      not (List.mem f H.float_module_nonfloat)
  | l -> SSet.mem (H.last2 l) env.float_vals

let ident_float_evidence (env : H.env) ~current ~locals flat =
  match flat with
  | [ x ] ->
      SSet.mem x locals
      || List.mem x H.builtin_float_consts
      || SSet.mem (current ^ "." ^ x) env.float_vals
  | l -> float_returning env ~current l

let rec float_evidence (env : H.env) ~current ~locals e =
  let ev = float_evidence env ~current ~locals in
  let ev_opt = function Some e -> ev e | None -> false in
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } ->
      ident_float_evidence env ~current ~locals (H.safe_flatten txt)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      float_returning env ~current (H.safe_flatten txt)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (H.safe_flatten txt) with
      | f :: _ -> SSet.mem f env.float_fields
      | [] -> false)
  | Pexp_constraint (e', ty) ->
      H.ty_mentions_float ~types:env.float_types ~current ty || ev e'
  | Pexp_coerce (e', _, ty) ->
      H.ty_mentions_float ~types:env.float_types ~current ty || ev e'
  | Pexp_tuple es | Pexp_array es -> List.exists ev es
  | Pexp_construct
      ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ h; t ]; _ }) ->
      ev h || ev t
  | Pexp_construct ({ txt = Lident "Some"; _ }, Some e') -> ev e'
  | Pexp_variant (_, e') -> ev_opt e'
  | Pexp_record (fields, base) ->
      List.exists
        (fun (({ Location.txt; _ } : Longident.t Location.loc), fe) ->
          (match List.rev (H.safe_flatten txt) with
          | f :: _ -> SSet.mem f env.float_fields
          | [] -> false)
          || ev fe)
        fields
      || ev_opt base
  | Pexp_ifthenelse (_, a, b) -> ev a || ev_opt b
  | Pexp_sequence (_, b)
  | Pexp_let (_, _, b)
  | Pexp_open (_, b)
  | Pexp_letmodule (_, _, b)
  | Pexp_letexception (_, b) ->
      ev b
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.exists (fun c -> ev c.pc_rhs) cases
  | Pexp_lazy e' -> ev e'
  | _ -> false

let polyop flat =
  match flat with
  | [ (("=" | "<>" | "compare" | "min" | "max") as op) ]
  | [ "Stdlib"; (("=" | "<>" | "compare" | "min" | "max") as op) ] ->
      Some op
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
      Some "Hashtbl.hash"
  | _ -> None

let sort_hofs =
  [
    [ "List"; "sort" ]; [ "List"; "stable_sort" ]; [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
  ]

(* Functions that apply polymorphic structural equality internally.
   The assoc family only compares KEYS, so evidence there comes from the
   first positional argument alone. *)
let struct_eq_funs = [ [ "List"; "mem" ]; [ "Array"; "mem" ] ]

let struct_eq_key_funs =
  [
    [ "List"; "assoc" ]; [ "List"; "assoc_opt" ]; [ "List"; "mem_assoc" ];
    [ "List"; "remove_assoc" ];
  ]

(* Pattern variables that should count as float evidence in the body:
   [fun (x : float) -> ...] and [let x = 2. *. y in ...]. *)
let rec pattern_float_vars env ~current ~evident_rhs acc (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> if evident_rhs then SSet.add txt acc else acc
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, ty) ->
      if H.ty_mentions_float ~types:env.H.float_types ~current ty then
        SSet.add txt acc
      else acc
  | Ppat_constraint (p', ty) ->
      pattern_float_vars env ~current
        ~evident_rhs:
          (evident_rhs
          || H.ty_mentions_float ~types:env.H.float_types ~current ty)
        acc p'
  | Ppat_alias (p', { txt; _ }) ->
      let acc = if evident_rhs then SSet.add txt acc else acc in
      pattern_float_vars env ~current ~evident_rhs acc p'
  | Ppat_tuple ps ->
      List.fold_left (pattern_float_vars env ~current ~evident_rhs) acc ps
  | _ -> acc

let check_r1 env ~current ~path (str : structure) =
  let out = ref [] in
  let push loc msg = out := finding path loc "R1" msg :: !out in
  let rec walk locals e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        let flat = H.safe_flatten txt in
        let arg_ev =
          lazy
            (List.exists
               (fun (_, a) -> float_evidence env ~current ~locals a)
               args)
        in
        match polyop flat with
        | Some op when Lazy.force arg_ev ->
            push loc
              (Printf.sprintf
                 "polymorphic %s on float-bearing operands (NaN and \
                  bit-digest hazard); use Float.compare/Float.equal or a \
                  typed comparator"
                 op)
        | Some _ -> ()
        | None ->
            if ident_in flat sort_hofs then begin
              match args with
              | (_, { pexp_desc = Pexp_ident { txt = cmp; _ }; _ }) :: rest
                when polyop (H.safe_flatten cmp) <> None
                     && List.exists
                          (fun (_, a) -> float_evidence env ~current ~locals a)
                          rest ->
                  push loc
                    (Printf.sprintf
                       "polymorphic compare passed to %s over float-bearing \
                        elements; use Float.compare or a typed comparator"
                       (String.concat "." flat))
              | _ -> ()
            end
            else if
              (ident_in flat struct_eq_funs && Lazy.force arg_ev)
              || ident_in flat struct_eq_key_funs
                 && (match args with
                    | (_, key) :: _ -> float_evidence env ~current ~locals key
                    | [] -> false)
            then
              push loc
                (Printf.sprintf
                   "%s applies polymorphic equality to float-bearing \
                    operands (NaN hazard); compare explicitly"
                   (String.concat "." flat)))
    | _ -> ());
    match e.pexp_desc with
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk locals vb.pvb_expr) vbs;
        let locals' =
          List.fold_left
            (fun acc vb ->
              pattern_float_vars env ~current
                ~evident_rhs:(float_evidence env ~current ~locals vb.pvb_expr)
                acc vb.pvb_pat)
            locals vbs
        in
        walk locals' body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (walk locals) default;
        let locals' =
          pattern_float_vars env ~current
            ~evident_rhs:
              (match default with
              | Some d -> float_evidence env ~current ~locals d
              | None -> false)
            locals pat
        in
        walk locals' body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk locals scrut;
        List.iter
          (fun c ->
            Option.iter (walk locals) c.pc_guard;
            walk locals c.pc_rhs)
          cases
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter (walk locals) c.pc_guard;
            walk locals c.pc_rhs)
          cases
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> walk locals e');
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> walk SSet.empty e);
    }
  in
  it.structure it str;
  List.rev !out

(* ------------------------------------------------------------------ R2 *)

type creator = Guarded | Raw of string

let classify_creator flat =
  match flat with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some (Raw "ref")
  | [ "Atomic"; "make" ] | [ "Mutex"; "create" ] | [ "Semaphore"; _; "make" ]
  | [ "Domain"; "DLS"; "new_key" ] | [ "Condition"; "create" ] ->
      Some Guarded
  | [ "Hashtbl"; "create" ] -> Some (Raw "Hashtbl.t")
  | [ "Queue"; "create" ] -> Some (Raw "Queue.t")
  | [ "Stack"; "create" ] -> Some (Raw "Stack.t")
  | [ "Buffer"; "create" ] -> Some (Raw "Buffer.t")
  | [ "Bytes"; ("create" | "make" | "of_string" | "init") ] ->
      Some (Raw "Bytes.t")
  | [ "Array";
      ( "make" | "create" | "init" | "create_float" | "make_matrix" | "copy"
      | "of_list" | "append" | "concat" | "sub" ) ] ->
      Some (Raw "array")
  | [ "Weak"; "create" ] -> Some (Raw "Weak.t")
  | _ -> None

(* Mutable state created by a module-level binding's RHS.  Creations
   inside [fun]/[function] bodies happen per call, not at module load,
   so the walk stops there. *)
let rhs_creators (env : H.env) e =
  let raw = ref [] and guarded = ref false in
  let add = function
    | Guarded -> guarded := true
    | Raw kind -> if not (List.mem kind !raw) then raw := kind :: !raw
  in
  let iter_expr it e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_lazy _ ->
        (* A module-level lazy is itself a shared once-cell: concurrent
           first forcing from two domains is a race (Lazy.Undefined). *)
        add (Raw "lazy");
        Ast_iterator.default_iterator.expr it e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        Option.iter add (classify_creator (H.safe_flatten txt));
        Ast_iterator.default_iterator.expr it e
    | Pexp_array _ ->
        add (Raw "array literal");
        Ast_iterator.default_iterator.expr it e
    | Pexp_record (fields, _) ->
        if
          List.exists
            (fun (({ Location.txt; _ } : Longident.t Location.loc), _) ->
              match List.rev (H.safe_flatten txt) with
              | f :: _ -> SSet.mem f env.mutable_fields
              | [] -> false)
            fields
        then add (Raw "record with mutable fields");
        Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr = iter_expr } in
  it.expr it e;
  (List.rev !raw, !guarded)

let rec binding_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_constraint (p', _) | Ppat_alias (p', _) -> binding_name p'
  | _ -> "<pattern>"

let check_r2 env ~path (str : structure) =
  let out = ref [] in
  let rec structure str = List.iter item str
  and item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter binding vbs
    | Pstr_module mb -> module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure str -> structure str
    | Pmod_constraint (me', _) | Pmod_functor (_, me') -> module_expr me'
    | _ -> ()
  and binding vb =
    let annotated attrs =
      has_attr "fosc.guarded" attrs || has_attr "fosc.unguarded" attrs
    in
    if not (annotated vb.pvb_attributes || annotated vb.pvb_expr.pexp_attributes)
    then
      match vb.pvb_expr.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> ()
      | _ -> (
          match rhs_creators env vb.pvb_expr with
          | [], _ -> ()
          | raw, _ ->
              out :=
                finding path vb.pvb_loc "R2"
                  (Printf.sprintf
                     "top-level mutable binding '%s' (%s) is reachable from \
                      Util.Pool tasks; guard it (Atomic/Mutex/Domain.DLS) or \
                      annotate [@@fosc.guarded \"mutex|atomic|dls\"] / \
                      [@@fosc.unguarded \"reason\"]"
                     (binding_name vb.pvb_pat)
                     (String.concat ", " raw))
                :: !out)
  in
  structure str;
  List.rev !out

(* ------------------------------------------------------------------ R3 *)

let check_r3 ~path (str : structure) =
  let out = ref [] in
  let flag loc what =
    out :=
      finding path loc "R3"
        (Printf.sprintf
           "%s is banned: it defeats the type system and every \
            bit-exactness argument" what)
      :: !out
  in
  let head_is_obj = function
    | "Obj" :: _ :: _ | "Stdlib" :: "Obj" :: _ :: _ -> true
    | _ -> false
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } when head_is_obj (H.safe_flatten txt) ->
        flag loc (String.concat "." (H.safe_flatten txt))
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let module_expr it me =
    (match me.pmod_desc with
    | Pmod_ident { txt; loc } -> (
        match H.safe_flatten txt with
        | "Obj" :: _ -> flag loc "Obj (module alias/open)"
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.module_expr it me
  in
  let it = { Ast_iterator.default_iterator with expr; module_expr } in
  it.structure it str;
  List.rev !out

(* ------------------------------------------------------------------ R4 *)

let nondeterministic_ident flat =
  match flat with
  | [ "Unix"; (("gettimeofday" | "time" | "times") as f) ] -> Some ("Unix." ^ f)
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Random"; f ] -> Some ("Random." ^ f)  (* Random.State.* has arity 3 *)
  | _ -> None

let waiver = "fosc.nondeterministic"

let check_r4 ~path (str : structure) =
  if
    List.exists
      (fun si ->
        match si.pstr_desc with
        | Pstr_attribute a -> attr_is waiver a
        | _ -> false)
      str
  then []
  else begin
    let out = ref [] in
    let expr it e =
      if has_attr waiver e.pexp_attributes then ()
      else begin
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match nondeterministic_ident (H.safe_flatten txt) with
            | Some what ->
                out :=
                  finding path loc "R4"
                    (Printf.sprintf
                       "%s in lib/ breaks run-to-run determinism; inject the \
                        clock/randomness explicitly (Random.State) or waive \
                        with [@fosc.nondeterministic \"reason\"]" what)
                  :: !out
            | None -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
      end
    in
    let value_binding it vb =
      if has_attr waiver vb.pvb_attributes then ()
      else Ast_iterator.default_iterator.value_binding it vb
    in
    let it = { Ast_iterator.default_iterator with expr; value_binding } in
    it.structure it str;
    List.rev !out
  end

(* ------------------------------------------------------------------ R5 *)

let digest_sensitive (str : structure) =
  List.exists
    (fun si ->
      match si.pstr_desc with
      | Pstr_attribute a -> attr_is "fosc.digest_sensitive" a
      | _ -> false)
    str

(* Precision-less float conversions in a format-ish string literal. *)
let bad_float_conversions s =
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let bad = ref [] in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] <> '%' then incr i
    else begin
      incr i;
      while !i < n && List.mem s.[!i] [ '-'; '+'; ' '; '#'; '0' ] do incr i done;
      while !i < n && is_digit s.[!i] do incr i done;
      let precision = !i < n && s.[!i] = '.' in
      if precision then begin
        incr i;
        while !i < n && (is_digit s.[!i] || s.[!i] = '*') do incr i done
      end;
      if !i < n then begin
        (match s.[!i] with
        | ('f' | 'F' | 'e' | 'E' | 'g' | 'G') when not precision ->
            bad := Printf.sprintf "%%%c" s.[!i] :: !bad
        | _ -> ());
        incr i
      end
    end
  done;
  List.rev !bad

let check_r5 ~path (str : structure) =
  let out = ref [] in
  let push loc msg = out := finding path loc "R5" msg :: !out in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match H.safe_flatten txt with
        | [ "string_of_float" ]
        | [ "Stdlib"; "string_of_float" ]
        | [ "Float"; "to_string" ] ->
            push loc
              "string_of_float in a digest-sensitive module loses bits; \
               format with %h or an explicit precision"
        | _ -> ())
    | Pexp_constant (Pconst_string (s, sloc, _)) ->
        List.iter
          (fun conv ->
            push sloc
              (Printf.sprintf
                 "precision-less %s in a digest-sensitive module; use %%h or \
                  fixed precision (e.g. %%.17g)" conv))
          (bad_float_conversions s)
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.rev !out

(* --------------------------------------------- fosc.* attr grammar *)

let disciplines = [ "mutex"; "atomic"; "dls" ]

let check_attrs ~path (src_ast : H.ast) =
  let out = ref [] in
  let attribute it (a : attribute) =
    (match a.attr_name.txt with
    | "fosc.guarded" -> (
        match string_payload a with
        | Some s when List.mem s disciplines -> ()
        | Some s ->
            out :=
              finding path a.attr_loc "R2"
                (Printf.sprintf
                   "invalid [@fosc.guarded] discipline %S (expected mutex, \
                    atomic or dls)" s)
              :: !out
        | None ->
            out :=
              finding path a.attr_loc "R2"
                "[@fosc.guarded] needs a discipline string: \"mutex\", \
                 \"atomic\" or \"dls\""
              :: !out)
    | "fosc.unguarded" | "fosc.nondeterministic" | "fosc.forced_before_parallel"
    | "fosc.dls_ok" | "fosc.lock_ok" -> (
        match string_payload a with
        | Some s when String.trim s <> "" -> ()
        | _ ->
            out :=
              finding path a.attr_loc
                (match a.attr_name.txt with
                | "fosc.unguarded" -> "R2"
                | "fosc.nondeterministic" -> "R4"
                | "fosc.forced_before_parallel" -> "R8"
                | "fosc.dls_ok" -> "R9"
                | _ -> "R7")
                (Printf.sprintf "[@%s] needs a non-empty reason string"
                   a.attr_name.txt)
              :: !out)
    | "fosc.digest_sensitive" -> (
        match a.attr_payload with
        | PStr [] -> ()
        | _ ->
            out :=
              finding path a.attr_loc "R5"
                "[@@@fosc.digest_sensitive] takes no payload"
              :: !out)
    | name when String.length name > 5 && String.sub name 0 5 = "fosc." ->
        out :=
          finding path a.attr_loc "attr"
            (Printf.sprintf
               "unknown fosc.* attribute [@%s]; known: fosc.guarded, \
                fosc.unguarded, fosc.nondeterministic, fosc.digest_sensitive, \
                fosc.forced_before_parallel, fosc.dls_ok, fosc.lock_ok"
               name)
          :: !out
    | _ -> ());
    Ast_iterator.default_iterator.attribute it a
  in
  let it = { Ast_iterator.default_iterator with attribute } in
  (match src_ast with
  | H.Impl str -> it.structure it str
  | H.Intf sg -> it.signature it sg
  | H.Broken _ -> ());
  List.rev !out

(* ---------------------------------------------------------- driver *)

let check env (src : H.source) =
  match src.ast with
  | H.Broken (line, msg) ->
      [ { path = src.path; line; col = 0; rule = "parse"; msg } ]
  | H.Intf _ -> check_attrs ~path:src.path src.ast
  | H.Impl str ->
      let path = src.path and current = src.modname in
      check_attrs ~path src.ast
      @ check_r1 env ~current ~path str
      @ (if src.lib_scope then check_r2 env ~path str else [])
      @ check_r3 ~path str
      @ (if src.lib_scope then check_r4 ~path str else [])
      @ if digest_sensitive str then check_r5 ~path str else []
