(* fosc-thermsim: a standalone mini-HotSpot.

   Grid mode — build the core-level (or layered) compact model for a
   grid floorplan and trace a two-mode periodic schedule from ambient:

     fosc-thermsim --rows 1 --cols 3 --v-low 0.6 --v-high 1.3 \
                   --high-ratio 0.4 --period 0.1 --periods 8 --csv trace.csv

   HotSpot-compat mode — read a HotSpot .flp floorplan and replay a
   .ptrace power trace through the exact LTI stepper:

     fosc-thermsim --flp chip.flp --ptrace run.ptrace --interval 3.3e-3 *)

open Cmdliner

let print_model_summary ~layered model =
  Printf.printf "model: %s, %d thermal nodes, %d cores\n"
    (if layered then "layered" else "core-level")
    (Thermal.Model.n_nodes model) (Thermal.Model.n_cores model);
  Printf.printf "time constants (s): %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (Printf.sprintf "%.3f") (Thermal.Model.time_constants model))))

let write_csv csv model trace =
  match csv with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Thermal.Trace.to_csv_channel oc model trace);
      Printf.printf "trace written to %s\n" path
  | None ->
      let stride = Stdlib.max 1 (Array.length trace / 40) in
      Array.iteri
        (fun i s ->
          if i mod stride = 0 then
            Printf.printf "  t = %8.4fs  hottest %.2f C\n" s.Thermal.Trace.time
              (Linalg.Vec.max s.Thermal.Trace.core_temps))
        trace

(* The one place a floorplan becomes a compact model: every subcommand
   goes through here, so --export-dir applies uniformly. *)
let model_of ?export_dir ~layered fp =
  let model =
    if layered then Thermal.Hotspot.layered fp else Thermal.Hotspot.core_level fp
  in
  (match export_dir with
  | Some dir ->
      let paths = Thermal.Export.write_model ~dir ~prefix:"model" model in
      Printf.printf "model matrices exported: %s\n" (String.concat ", " paths)
  | None -> ());
  model

let run_replay ?export_dir ~flp ~ptrace ~interval ~layered ~csv () =
  let fp = Thermal.Flp.of_file flp in
  let model = model_of ?export_dir ~layered fp in
  let trace_in = Thermal.Ptrace.of_file ptrace in
  let names = Array.map (fun b -> b.Thermal.Floorplan.name) fp.Thermal.Floorplan.blocks in
  let column_map = Thermal.Ptrace.columns_for_model trace_in names in
  print_model_summary ~layered model;
  Printf.printf "replaying %d power samples at %.4gs intervals\n"
    (Array.length trace_in.Thermal.Ptrace.samples)
    interval;
  let trace = Thermal.Ptrace.replay model trace_in ~interval ~column_map in
  Printf.printf "trace peak: %.2f C\n" (Thermal.Trace.peak trace);
  write_csv csv model trace

let run_two_mode ~model ~layered ~v_low ~v_high ~high_ratio ~period ~periods ~csv
    ~gantt ~banner =
  let n = Thermal.Model.n_cores model in
  let pm = Power.Power_model.default in
  let schedule =
    Sched.Schedule.two_mode ~period ~low:(Array.make n v_low)
      ~high:(Array.make n v_high)
      ~high_ratio:(Array.make n high_ratio)
  in
  let profile = Sched.Peak.profile model pm schedule in
  let trace = Thermal.Trace.from_ambient model ~periods ~samples_per_segment:16 profile in
  banner ();
  print_model_summary ~layered model;
  Printf.printf "schedule:\n";
  Format.printf "%a" Sched.Schedule.pp schedule;
  Printf.printf "trace peak over %d periods: %.2f C\n" periods (Thermal.Trace.peak trace);
  Printf.printf "stable-status peak (analytic): %.2f C\n"
    (Thermal.Matex.peak_refined model ~samples_per_segment:32 profile);
  Printf.printf "periods to stable status: %d\n"
    (Thermal.Trace.periods_to_stable model profile);
  (match gantt with
  | Some path ->
      Util.Svg_plot.write path (Sched.Render.gantt_svg ~title:"thermsim schedule" schedule);
      Printf.printf "gantt chart written to %s\n" path
  | None -> ());
  write_csv csv model trace

let run_synthetic ?export_dir ~fp ~layered ~duration ~interval ~seed ~csv () =
  let model = model_of ?export_dir ~layered fp in
  let names = Array.map (fun b -> b.Thermal.Floorplan.name) fp.Thermal.Floorplan.blocks in
  let rng = Random.State.make [| seed |] in
  let trace_in =
    Workload.Phases.generate rng ~phases:Workload.Phases.default_phases ~names
      ~duration ~dt:interval ~power:Power.Power_model.default
      ~levels:(Power.Vf.table_iv 5)
  in
  let column_map = Thermal.Ptrace.columns_for_model trace_in names in
  print_model_summary ~layered model;
  Printf.printf "synthetic phased workload: %d samples at %.4gs (mean utilization %.2f)\n"
    (Array.length trace_in.Thermal.Ptrace.samples)
    interval
    (Workload.Phases.mean_utilization Workload.Phases.default_phases);
  let trace = Thermal.Ptrace.replay model trace_in ~interval ~column_map in
  Printf.printf "trace peak: %.2f C\n" (Thermal.Trace.peak trace);
  write_csv csv model trace

let run rows cols layered v_low v_high high_ratio period periods csv flp ptrace
    interval synthetic seed gantt export_dir =
  match (flp, ptrace, synthetic) with
  | _, Some _, Some _ ->
      prerr_endline "fosc-thermsim: --ptrace and --synthetic are exclusive";
      exit 2
  | flp, None, Some duration ->
      let fp =
        match flp with
        | Some path -> Thermal.Flp.of_file path
        | None -> Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3
      in
      run_synthetic ?export_dir ~fp ~layered ~duration ~interval ~seed ~csv ()
  | flp, ptrace, None ->
  match (flp, ptrace) with
  | Some flp, Some ptrace ->
      run_replay ?export_dir ~flp ~ptrace ~interval ~layered ~csv ()
  | Some flp, None ->
      let fp = Thermal.Flp.of_file flp in
      run_two_mode ~model:(model_of ?export_dir ~layered fp) ~layered ~v_low ~v_high
        ~high_ratio ~period ~periods ~csv ~gantt ~banner:(fun () ->
          Printf.printf "floorplan: %s (%d blocks)\n" flp (Thermal.Floorplan.n_blocks fp))
  | None, Some _ ->
      prerr_endline "fosc-thermsim: --ptrace requires --flp";
      exit 2
  | None, None ->
      let fp = Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3 in
      run_two_mode ~model:(model_of ?export_dir ~layered fp) ~layered ~v_low ~v_high
        ~high_ratio ~period ~periods ~csv ~gantt ~banner:(fun () ->
          Printf.printf "platform: %dx%d cores\n" rows cols)

let pos_int name default doc = Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)

let pos_float name default doc =
  Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)

let () =
  let rows = pos_int "rows" 1 "Grid rows." in
  let cols = pos_int "cols" 3 "Grid columns." in
  let layered =
    Arg.(value & flag & info [ "layered" ] ~doc:"Use the die+spreader+sink model.")
  in
  let v_low = pos_float "v-low" 0.6 "Low-mode supply voltage (V)." in
  let v_high = pos_float "v-high" 1.3 "High-mode supply voltage (V)." in
  let high_ratio = pos_float "high-ratio" 0.5 "Fraction of the period at v-high." in
  let period = pos_float "period" 0.1 "Schedule period (s)." in
  let periods = pos_int "periods" 8 "Number of periods to simulate from ambient." in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Write the full per-core trace as CSV.")
  in
  let flp =
    Arg.(
      value
      & opt (some file) None
      & info [ "flp" ] ~docv:"FILE" ~doc:"HotSpot .flp floorplan to load.")
  in
  let ptrace =
    Arg.(
      value
      & opt (some file) None
      & info [ "ptrace" ] ~docv:"FILE"
          ~doc:"HotSpot .ptrace power trace to replay (needs --flp).")
  in
  let interval = pos_float "interval" 3.333e-3 "Seconds per .ptrace sample row." in
  let synthetic =
    Arg.(
      value
      & opt (some float) None
      & info [ "synthetic" ] ~docv:"SECONDS"
          ~doc:
            "Generate a synthetic Markov-phased workload of this duration and              replay it (instead of a schedule or a .ptrace).")
  in
  let seed = pos_int "seed" 1 "Random seed for --synthetic." in
  let gantt =
    Arg.(
      value
      & opt (some string) None
      & info [ "gantt" ] ~docv:"FILE" ~doc:"Render the schedule as an SVG Gantt chart.")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export-dir" ] ~docv:"DIR"
          ~doc:"Dump the compact model's A/eigenvalue/response matrices as CSV.")
  in
  let term =
    Term.(
      const run $ rows $ cols $ layered $ v_low $ v_high $ high_ratio $ period
      $ periods $ csv $ flp $ ptrace $ interval $ synthetic $ seed $ gantt
      $ export_dir)
  in
  let info =
    Cmd.info "fosc-thermsim" ~version:"1.0.0"
      ~doc:
        "Mini-HotSpot: trace periodic two-mode schedules or replay HotSpot \
         .flp/.ptrace inputs"
  in
  exit (Cmd.eval (Cmd.v info term))
