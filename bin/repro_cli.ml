(* fosc-experiments: regenerate any table or figure of the paper from the
   command line, optionally dumping CSV series / SVG figures next to the
   printed rows.

     fosc-experiments motivation
     fosc-experiments fig3 --step 0.3 --csv-dir out/
     fosc-experiments policies --list
     fosc-experiments policies --run ao --cores 3 --levels 5
     fosc-experiments all

   Every experiment registers one { name; doc; run } record below; the
   Cmdliner plumbing (shared flags, CSV/SVG directory handling, the
   [all] aggregate) is generated from that list, so adding an experiment
   is one entry here rather than a hand-rolled subcommand. *)

open Cmdliner

(* ------------------------------------------------- shared context/flags *)

(* Every experiment receives the full flag set and reads what it needs;
   unused flags are simply ignored, which keeps the driver uniform. *)
type ctx = {
  step : float;  (** Fig. 3 phase-grid resolution, seconds. *)
  seed : int;  (** Random seed for generated schedules (figs. 4/5). *)
  m_max : int;  (** Largest oscillation count for the Fig. 5 sweep. *)
  t_max : float;  (** Temperature threshold for the Fig. 6 sweep. *)
  duration : float;  (** Simulated seconds per cell of the race. *)
  csv_dir : string option;
  svg_dir : string option;
}

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

(* [csv ctx file write] / [svg ctx file render]: run the dump only when
   the matching --csv-dir/--svg-dir flag was given, creating the
   directory on first use — the boilerplate every experiment shared. *)
let csv ctx file write =
  match ctx.csv_dir with
  | Some dir -> write (Filename.concat (ensure_dir dir) file)
  | None -> ()

let svg ctx file render =
  match ctx.svg_dir with
  | Some dir -> Util.Svg_plot.write (Filename.concat (ensure_dir dir) file) (render ())
  | None -> ()

let policy_series rows ~x_of =
  let series name project =
    {
      Util.Svg_plot.label = name;
      points = List.map (fun r -> (x_of r, project r)) rows;
    }
  in
  [
    series "LNS" (fun (r : Experiments.Exp_common.policy_row) -> r.lns);
    series "EXS" (fun (r : Experiments.Exp_common.policy_row) -> r.exs);
    series "AO" (fun (r : Experiments.Exp_common.policy_row) -> r.ao);
    series "PCO" (fun (r : Experiments.Exp_common.policy_row) -> r.pco);
  ]

(* Fig. 6/7 share the one-SVG-panel-per-core-count rendering. *)
let per_core_panels ctx ~file_prefix ~title ~x_label ~x_of rows =
  List.iter
    (fun cores ->
      let panel =
        List.filter
          (fun (row : Experiments.Exp_common.policy_row) -> row.cores = cores)
          rows
      in
      svg ctx
        (Printf.sprintf "%s_%dcores.svg" file_prefix cores)
        (fun () ->
          Util.Svg_plot.line_chart ~title:(title cores) ~x_label
            ~y_label:"throughput" (policy_series panel ~x_of)))
    Workload.Configs.core_counts

(* --------------------------------------------------- experiment registry *)

type experiment = { name : string; doc : string; run : ctx -> unit }

let experiments =
  [
    {
      name = "motivation";
      doc = "Section III example, Tables II/III";
      run = (fun _ -> Experiments.Exp_motivation.print (Experiments.Exp_motivation.run ()));
    };
    {
      name = "fig2";
      doc = "Fig. 2: single-core oscillation counterexample";
      run = (fun _ -> Experiments.Exp_fig2.print (Experiments.Exp_fig2.run ()));
    };
    {
      name = "fig3";
      doc = "Fig. 3: step-up bound over phase-shifted schedules";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig3.run ~step:ctx.step () in
          Experiments.Exp_fig3.print r;
          csv ctx "fig3_peak_surface.csv" (fun path -> Experiments.Exp_fig3.to_csv path r);
          svg ctx "fig3.svg" (fun () ->
              Util.Svg_plot.heatmap ~title:"Fig. 3: peak temperature vs phase offsets"
                ~x_label:"x2 (s)" ~y_label:"x3 (s)" r.Experiments.Exp_fig3.peaks));
    };
    {
      name = "fig4";
      doc = "Fig. 4: 6-core step-up temperature trace";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig4.run ~seed:ctx.seed () in
          Experiments.Exp_fig4.print r;
          match ctx.csv_dir with
          | Some dir ->
              let dir = ensure_dir dir in
              Experiments.Exp_fig4.to_csv
                ~warmup_path:(Filename.concat dir "fig4_warmup.csv")
                ~stable_path:(Filename.concat dir "fig4_stable.csv")
                r
          | None -> ());
    };
    {
      name = "fig5";
      doc = "Fig. 5: 9-core peak vs oscillation count";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig5.run ~seed:ctx.seed ~m_max:ctx.m_max () in
          Experiments.Exp_fig5.print r;
          csv ctx "fig5_peak_vs_m.csv" (fun path -> Experiments.Exp_fig5.to_csv path r);
          svg ctx "fig5.svg" (fun () ->
              Util.Svg_plot.line_chart
                ~title:"Fig. 5: peak temperature vs m (9 cores)" ~x_label:"m"
                ~y_label:"peak temperature (C)"
                [
                  {
                    Util.Svg_plot.label = "peak";
                    points =
                      List.map
                        (fun (m, p) -> (float_of_int m, p))
                        r.Experiments.Exp_fig5.series;
                  };
                ]));
    };
    {
      name = "fig6";
      doc = "Fig. 6: throughput across cores x levels";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig6.run ~t_max:ctx.t_max () in
          Experiments.Exp_fig6.print r;
          csv ctx "fig6_throughput.csv" (fun path -> Experiments.Exp_fig6.to_csv path r);
          per_core_panels ctx ~file_prefix:"fig6"
            ~title:(Printf.sprintf "Fig. 6: throughput vs levels (%d cores)")
            ~x_label:"voltage levels"
            ~x_of:(fun row -> float_of_int row.levels)
            r.Experiments.Exp_fig6.rows);
    };
    {
      name = "fig7";
      doc = "Fig. 7: throughput vs temperature threshold";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig7.run () in
          Experiments.Exp_fig7.print r;
          csv ctx "fig7_throughput_vs_tmax.csv" (fun path ->
              Experiments.Exp_fig7.to_csv path r);
          per_core_panels ctx ~file_prefix:"fig7"
            ~title:(Printf.sprintf "Fig. 7: throughput vs T_max (%d cores)")
            ~x_label:"T_max (C)"
            ~x_of:(fun row -> row.t_max)
            r.Experiments.Exp_fig7.rows);
    };
    {
      name = "table5";
      doc = "Table V: computation-time comparison";
      run =
        (fun ctx ->
          let r = Experiments.Exp_table5.run () in
          Experiments.Exp_table5.print r;
          csv ctx "table5_times.csv" (fun path -> Experiments.Exp_table5.to_csv path r));
    };
    {
      name = "ablations";
      doc = "Design-choice ablations (DESIGN.md)";
      run = (fun _ -> Experiments.Exp_ablations.print (Experiments.Exp_ablations.run ()));
    };
    {
      name = "sensitivity";
      doc = "Theorem-1 exceedance vs coupling strength";
      run =
        (fun ctx ->
          let r = Experiments.Exp_sensitivity.run () in
          Experiments.Exp_sensitivity.print r;
          csv ctx "sensitivity_theorem1.csv" (fun path ->
              Experiments.Exp_sensitivity.to_csv path r));
    };
    {
      name = "tasks";
      doc = "Task-level thermal capacity by partitioning strategy";
      run =
        (fun ctx ->
          let r = Experiments.Exp_tasks.run () in
          Experiments.Exp_tasks.print r;
          csv ctx "tasks_capacity.csv" (fun path -> Experiments.Exp_tasks.to_csv path r));
    };
    {
      name = "pareto";
      doc = "Throughput/energy frontier under AO";
      run =
        (fun ctx ->
          let r = Experiments.Exp_pareto.run () in
          Experiments.Exp_pareto.print r;
          csv ctx "pareto_frontier.csv" (fun path -> Experiments.Exp_pareto.to_csv path r);
          svg ctx "pareto.svg" (fun () -> Experiments.Exp_pareto.to_svg r));
    };
    {
      name = "race";
      doc = "Online controllers vs offline schedules across sensing scenarios";
      run =
        (fun ctx ->
          let r = Experiments.Exp_race.run ~duration:ctx.duration ~seed:ctx.seed () in
          Experiments.Exp_race.print r;
          csv ctx "race.csv" (fun path -> Experiments.Exp_race.to_csv path r);
          svg ctx "race_throughput.svg" (fun () -> Experiments.Exp_race.to_svg r));
    };
    {
      name = "stacking3d";
      doc = "Planar vs 3D-stacked platform comparison";
      run =
        (fun ctx ->
          let r = Experiments.Exp_3d.run () in
          Experiments.Exp_3d.print r;
          csv ctx "stacking3d.csv" (fun path -> Experiments.Exp_3d.to_csv path r));
    };
  ]

(* -------------------------------------------------- policies subcommand *)

let print_policy_list ~markdown =
  if markdown then begin
    print_endline "| policy | set | description |";
    print_endline "|--------|-----|-------------|";
    List.iter
      (fun (p : Core.Solver.t) ->
        Printf.printf "| `%s` | %s | %s |\n" p.Core.Solver.name
          (if p.Core.Solver.comparison then "comparison" else "extension")
          p.Core.Solver.doc)
      Core.Registry.all
  end
  else begin
    let t = Util.Table.create [ "policy"; "set"; "description" ] in
    List.iter
      (fun (p : Core.Solver.t) ->
        Util.Table.add_row t
          [
            p.Core.Solver.name;
            (if p.Core.Solver.comparison then "comparison" else "extension");
            p.Core.Solver.doc;
          ])
      Core.Registry.all;
    Util.Table.print t
  end

let run_one_policy ~name ~cores ~grid ~levels ~t_max ~seq ~backend =
  let policy = Core.Registry.find_exn name in
  let platform, cores =
    match grid with
    | Some (rows, cols) ->
        ( Core.Platform.grid ~rows ~cols ~levels:(Power.Vf.table_iv levels)
            ~t_max (),
          rows * cols )
    | None -> (Workload.Configs.platform ~cores ~levels ~t_max, cores)
  in
  (* Screening is opt-in at the library level; the CLI's sparse runs opt
     in at the 0.5 K margin DESIGN.md §12 calibrates (no-op on Dense). *)
  let ev = Core.Eval.create ~backend ~screen_margin:0.5 platform in
  let params = { Core.Solver.default_params with Core.Solver.par = not seq } in
  let o = Core.Solver.run ~params policy ev in
  Printf.printf "%s — %s\n" policy.Core.Solver.name policy.Core.Solver.doc;
  Printf.printf "platform: %d cores, %d levels, T_max %.1f C (%s backend)\n\n"
    cores levels t_max
    (match backend with Core.Eval.Dense -> "dense" | Core.Eval.Sparse -> "sparse");
  Printf.printf "throughput   %.4f\n" o.Core.Solver.throughput;
  Printf.printf "peak         %.2f C\n" o.Core.Solver.peak;
  Printf.printf "wall time    %.4f s\n" o.Core.Solver.wall_time;
  Printf.printf "evaluations  %d\n" o.Core.Solver.evaluations;
  Printf.printf "speeds       [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4f") o.Core.Solver.voltages)));
  (match o.Core.Solver.schedule with
  | Some s -> Format.printf "schedule:@\n%a@?" Sched.Schedule.pp s
  | None -> ());
  let stats = Core.Eval.stats ev in
  Printf.printf
    "eval cache   %.0f%% hit rate (steady %d/%d, step-up %d/%d hits/lookups)\n"
    (100. *. Core.Eval.hit_rate ev)
    stats.Core.Eval.steady.Sched.Peak.Cache.hits
    (stats.Core.Eval.steady.Sched.Peak.Cache.hits
    + stats.Core.Eval.steady.Sched.Peak.Cache.misses)
    stats.Core.Eval.stepup.Sched.Peak.Cache.hits
    (stats.Core.Eval.stepup.Sched.Peak.Cache.hits
    + stats.Core.Eval.stepup.Sched.Peak.Cache.misses);
  match Core.Eval.kind ev with
  | Core.Eval.Sparse ->
      (* Reading the modal counters would force the dense engine the
         sparse context exists to avoid. *)
      Printf.printf "thermal eng  %s\n" (Core.Eval.backend ev).Thermal.Backend.name
  | Core.Eval.Dense ->
      let r = Core.Eval.response_stats ev in
      Printf.printf
        "response eng %d build%s, %d superposition evals, exp table %d/%d hits/lookups\n"
        r.Thermal.Modal.builds
        (if r.Thermal.Modal.builds = 1 then "" else "s")
        r.Thermal.Modal.superpose_evals r.Thermal.Modal.exp_hits
        (r.Thermal.Modal.exp_hits + r.Thermal.Modal.exp_misses)

(* "RxC" grid geometry, e.g. 8x8. *)
let grid_conv =
  let parse s =
    match String.split_on_char 'x' (String.lowercase_ascii (String.trim s)) with
    | [ r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some r, Some c when r >= 1 && c >= 1 -> Ok (r, c)
        | _ -> Error (`Msg (Printf.sprintf "invalid grid %S, expected ROWSxCOLS (e.g. 8x8)" s)))
    | _ -> Error (`Msg (Printf.sprintf "invalid grid %S, expected ROWSxCOLS (e.g. 8x8)" s))
  in
  let print ppf (r, c) = Format.fprintf ppf "%dx%d" r c in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("dense", Core.Eval.Dense); ("sparse", Core.Eval.Sparse) ])
        Core.Eval.Dense
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Thermal engine pricing the candidates: $(b,dense) (modal, exact \
           eigenbasis) or $(b,sparse) (CSR + Krylov, scales past the dense \
           eigensolve).")

let policies_cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered policies.")
  in
  let markdown_flag =
    Arg.(
      value & flag
      & info [ "markdown" ] ~doc:"With $(b,--list), print a Markdown table.")
  in
  let run_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run" ] ~docv:"NAME" ~doc:"Run one registered policy by name.")
  in
  let cores_arg =
    Arg.(value & opt int 3 & info [ "cores" ] ~docv:"N" ~doc:"Core count (2, 3, 6 or 9).")
  in
  let grid_arg =
    Arg.(
      value
      & opt (some grid_conv) None
      & info [ "grid" ] ~docv:"RxC"
          ~doc:
            "Run on an $(docv) core mesh instead of $(b,--cores) (e.g. \
             $(b,--grid 8x8); pair larger grids with $(b,--backend sparse)).")
  in
  let levels_arg =
    Arg.(value & opt int 5 & info [ "levels" ] ~docv:"L" ~doc:"Voltage levels (2..5).")
  in
  let t_max_arg =
    Arg.(
      value & opt float 65. & info [ "t-max" ] ~docv:"CELSIUS" ~doc:"Peak threshold.")
  in
  let seq_flag =
    Arg.(
      value & flag
      & info [ "seq" ] ~doc:"Run the policy's search sequentially (par = false).")
  in
  let run list markdown run_name cores grid levels t_max seq backend =
    match run_name with
    | Some name -> run_one_policy ~name ~cores ~grid ~levels ~t_max ~seq ~backend
    | None ->
        ignore list;
        print_policy_list ~markdown
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"List the solver registry or run one policy on a standard platform")
    Term.(
      const run $ list_flag $ markdown_flag $ run_arg $ cores_arg $ grid_arg
      $ levels_arg $ t_max_arg $ seq_flag $ backend_arg)

(* ---------------------------------------------------- scale subcommand *)

(* Dense-vs-sparse scaling study on single-layer core sheets.  For each
   R x C size: assemble the spec (O(nnz)), solve the checkerboard steady
   peak on the sparse Krylov engine, and — up to --dense-limit nodes —
   assemble the dense effective conductance and LU-solve the identical
   system, reporting wall times, speedup and the peak disagreement.
   Timings include assembly/factorization: the one-shot cost a driver
   actually pays per floorplan is exactly what the sparse path shrinks. *)

let dense_steady_peak spec psi =
  let n = Thermal.Spec.n_nodes spec in
  let g = Linalg.Sparse.to_dense (Linalg.Sparse.of_triplets ~rows:n ~cols:n (Thermal.Spec.g_eff_triplets spec)) in
  let lu = Linalg.Lu.factorize g in
  let h = Linalg.Vec.zeros n in
  Array.iteri
    (fun k node ->
      h.(node) <- psi.(k) +. (spec.Thermal.Spec.leak_beta *. spec.Thermal.Spec.ambient))
    spec.Thermal.Spec.core_nodes;
  let theta = Linalg.Lu.solve_vec lu h in
  Array.fold_left
    (fun acc node -> Float.max acc (theta.(node) +. spec.Thermal.Spec.ambient))
    neg_infinity spec.Thermal.Spec.core_nodes

(* Checkerboard load: hot cells at [power_w], cold at a quarter — enough
   spatial structure that the peak is not a uniform-field triviality. *)
let checkerboard ~rows ~cols power_w =
  Array.init (rows * cols) (fun i ->
      if ((i / cols) + (i mod cols)) mod 2 = 0 then power_w
      else 0.25 *. power_w)

let run_scale ~sizes ~dense_limit ~power_w =
  let t =
    Util.Table.create
      [ "grid"; "nodes"; "sparse (ms)"; "dense (ms)"; "speedup"; "|dpeak| (C)"; "stable (ms)" ]
  in
  List.iter
    (fun (rows, cols) ->
      let n = rows * cols in
      let psi = checkerboard ~rows ~cols power_w in
      let spec = Thermal.Grid_model.sheet_spec ~rows ~cols () in
      let s_peak, s_time =
        Util.Timer.time_it (fun () ->
            (Thermal.Backend.sparse_of_spec spec).Thermal.Backend.steady_peak psi)
      in
      (* Stable status of a two-segment oscillation between the
         checkerboard and its complement — the 1024-node transient the
         sparse expmv/CG pipeline exists for. *)
      let psi2 = Array.map (fun p -> (1.25 *. power_w) -. p) psi in
      let profile =
        [
          { Thermal.Matex.duration = 0.05; psi };
          { Thermal.Matex.duration = 0.05; psi = psi2 };
        ]
      in
      let _, stable_time =
        Util.Timer.time_it (fun () ->
            (Thermal.Backend.sparse_of_spec spec).Thermal.Backend.stable_peak
              profile)
      in
      let dense_cell, speedup_cell, dpeak_cell =
        if n <= dense_limit then begin
          let d_peak, d_time = Util.Timer.time_it (fun () -> dense_steady_peak spec psi) in
          ( Printf.sprintf "%.2f" (1e3 *. d_time),
            Printf.sprintf "%.1fx" (d_time /. s_time),
            Printf.sprintf "%.2e" (Float.abs (d_peak -. s_peak)) )
        end
        else ("-", "-", "-")
      in
      Util.Table.add_row t
        [
          Printf.sprintf "%dx%d" rows cols;
          string_of_int n;
          Printf.sprintf "%.2f" (1e3 *. s_time);
          dense_cell;
          speedup_cell;
          dpeak_cell;
          Printf.sprintf "%.2f" (1e3 *. stable_time);
        ])
    sizes;
  Util.Table.print t

(* Policy-search throughput sweep: run one registered policy end to end
   on the sparse backend at each mesh size, reporting how many
   candidates the search priced per second and where they were answered
   (memo tables, ROM screening, superposition engine).  "Candidates"
   counts every priced schedule: exact-tier memo lookups plus
   ROM-screened scores. *)
let run_scale_policy ~name ~sizes ~levels ~t_max ~seq ~delta_margin =
  let policy = Core.Registry.find_exn name in
  Printf.printf "%s on the sparse backend — %s\n\n" policy.Core.Solver.name
    policy.Core.Solver.doc;
  let t =
    Util.Table.create
      [
        "grid"; "cores"; "wall (s)"; "cands"; "cand/s"; "cache hit";
        "screen (scored->exact)"; "delta (cached/scored/exact)";
        "response (builds/superpose/solves)";
      ]
  in
  List.iter
    (fun (rows, cols) ->
      Core.Screen.reset_stats ();
      Core.Tpt.reset_delta_stats ();
      let platform =
        Core.Platform.sheet ~rows ~cols ~levels:(Power.Vf.table_iv levels)
          ~t_max ()
      in
      let ev =
        Core.Eval.create ~backend:Core.Eval.Sparse ~screen_margin:0.5 platform
      in
      let params =
        {
          Core.Solver.default_params with
          Core.Solver.par = not seq;
          delta_margin;
        }
      in
      let o = Core.Solver.run ~params policy ev in
      let stats = Core.Eval.stats ev in
      let lookups =
        stats.Core.Eval.steady.Sched.Peak.Cache.hits
        + stats.Core.Eval.steady.Sched.Peak.Cache.misses
        + stats.Core.Eval.stepup.Sched.Peak.Cache.hits
        + stats.Core.Eval.stepup.Sched.Peak.Cache.misses
      in
      let scr = Core.Screen.stats () in
      let dlt = Core.Tpt.delta_stats () in
      let cands = lookups + scr.Core.Screen.scored + dlt.Core.Tpt.scored in
      let screen_cell =
        if scr.Core.Screen.scored = 0 then "-"
        else
          Printf.sprintf "%d->%d" scr.Core.Screen.scored
            scr.Core.Screen.survivors
      in
      let delta_cell =
        if dlt.Core.Tpt.scored = 0 && dlt.Core.Tpt.cached = 0 then "-"
        else
          Printf.sprintf "%d/%d/%d" dlt.Core.Tpt.cached dlt.Core.Tpt.scored
            dlt.Core.Tpt.exact
      in
      let response_cell =
        match Core.Eval.sparse_response_stats ev with
        | Some r ->
            Printf.sprintf "%d/%d/%d" r.Thermal.Sparse_response.builds
              r.Thermal.Sparse_response.superpose_evals
              r.Thermal.Sparse_response.stable_solves
        | None -> "-"
      in
      Util.Table.add_row t
        [
          Printf.sprintf "%dx%d" rows cols;
          string_of_int (rows * cols);
          Printf.sprintf "%.3f" o.Core.Solver.wall_time;
          string_of_int cands;
          (if o.Core.Solver.wall_time > 0. then
             Printf.sprintf "%.0f"
               (float_of_int cands /. o.Core.Solver.wall_time)
           else "-");
          Printf.sprintf "%.0f%%" (100. *. Core.Eval.hit_rate ev);
          screen_cell;
          delta_cell;
          response_cell;
        ])
    sizes;
  Util.Table.print t

let scale_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list grid_conv) [ (3, 3); (8, 8); (16, 16); (32, 32) ]
      & info [ "sizes" ] ~docv:"RxC,..."
          ~doc:"Comma-separated sheet sizes to sweep (default 3x3,8x8,16x16,32x32).")
  in
  let dense_limit_arg =
    Arg.(
      value & opt int 1024
      & info [ "dense-limit" ] ~docv:"N"
          ~doc:"Skip the dense LU reference above $(docv) nodes.")
  in
  let power_arg =
    Arg.(
      value & opt float 8.
      & info [ "power" ] ~docv:"WATTS"
          ~doc:"Hot-cell power of the checkerboard load.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy" ] ~docv:"NAME"
          ~doc:
            "Instead of the kernel study, sweep a full $(docv) policy search \
             on the sparse backend at each size, reporting candidates/sec \
             plus memo-cache, screening and response-engine statistics.")
  in
  let levels_arg =
    Arg.(
      value & opt int 5
      & info [ "levels" ] ~docv:"L"
          ~doc:"Voltage levels for $(b,--policy) platforms (2..5).")
  in
  let t_max_arg =
    Arg.(
      value & opt float 65.
      & info [ "t-max" ] ~docv:"CELSIUS"
          ~doc:"Peak threshold for $(b,--policy) platforms.")
  in
  let seq_flag =
    Arg.(
      value & flag
      & info [ "seq" ]
          ~doc:"With $(b,--policy), run the search sequentially (par = false).")
  in
  let delta_margin_arg =
    Arg.(
      value & opt float 0.
      & info [ "delta-margin" ] ~docv:"KELVIN"
          ~doc:
            "With $(b,--policy), staleness margin for the TPT loops' \
             prepared-base delta tier (0 = exact per-core scans).  Winners \
             are always re-verified exactly; the margin only bounds which \
             stale candidate scores are re-priced after an accepted step.")
  in
  let run sizes dense_limit power_w policy levels t_max seq delta_margin =
    match policy with
    | Some name ->
        run_scale_policy ~name ~sizes ~levels ~t_max ~seq ~delta_margin
    | None -> run_scale ~sizes ~dense_limit ~power_w
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Dense-vs-sparse thermal-backend scaling study on 3x3 through 32x32 \
          core sheets, or (--policy) a policy-search throughput sweep")
    Term.(
      const run $ sizes_arg $ dense_limit_arg $ power_arg $ policy_arg
      $ levels_arg $ t_max_arg $ seq_flag $ delta_margin_arg)

(* ------------------------------------------------------------ Cmdliner *)

let ctx_term =
  let step =
    Arg.(
      value & opt float 0.6
      & info [ "step" ] ~docv:"SECONDS" ~doc:"Sweep resolution for the Fig. 3 phase grid.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the generated schedules.")
  in
  let m_max =
    Arg.(
      value & opt int 50
      & info [ "m-max" ] ~docv:"M" ~doc:"Largest oscillation count for the Fig. 5 sweep.")
  in
  let t_max =
    Arg.(
      value & opt float 55.
      & info [ "t-max" ] ~docv:"CELSIUS"
          ~doc:"Peak-temperature threshold (degrees C) for the Fig. 6 sweep.")
  in
  let duration =
    Arg.(
      value & opt float 6.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Simulated seconds per cell of the $(b,race) experiment.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR"
          ~doc:"Also write the experiment's data series as CSV files into $(docv).")
  in
  let svg_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg-dir" ] ~docv:"DIR"
          ~doc:"Also render the experiment's figure as SVG into $(docv).")
  in
  let make step seed m_max t_max duration csv_dir svg_dir =
    { step; seed; m_max; t_max; duration; csv_dir; svg_dir }
  in
  Term.(const make $ step $ seed $ m_max $ t_max $ duration $ csv_dir $ svg_dir)

let () =
  let cmd_of_experiment e =
    Cmd.v (Cmd.info e.name ~doc:e.doc) Term.(const e.run $ ctx_term)
  in
  let all =
    Cmd.v
      (Cmd.info "all" ~doc:"Every experiment in paper order")
      Term.(const (fun ctx -> List.iter (fun e -> e.run ctx) experiments) $ ctx_term)
  in
  let info =
    Cmd.info "fosc-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduce the tables and figures of 'Performance Maximization via \
         Frequency Oscillation on Temperature Constrained Multi-core Processors' \
         (ICPP 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          (List.map cmd_of_experiment experiments @ [ policies_cmd; scale_cmd; all ])))
