(* fosc-experiments: regenerate any table or figure of the paper from the
   command line, optionally dumping CSV series / SVG figures next to the
   printed rows.

     fosc-experiments motivation
     fosc-experiments fig3 --step 0.3 --csv-dir out/
     fosc-experiments policies --list
     fosc-experiments policies --run ao --cores 3 --levels 5
     fosc-experiments all

   Every experiment registers one { name; doc; run } record below; the
   Cmdliner plumbing (shared flags, CSV/SVG directory handling, the
   [all] aggregate) is generated from that list, so adding an experiment
   is one entry here rather than a hand-rolled subcommand. *)

open Cmdliner

(* ------------------------------------------------- shared context/flags *)

(* Every experiment receives the full flag set and reads what it needs;
   unused flags are simply ignored, which keeps the driver uniform. *)
type ctx = {
  step : float;  (** Fig. 3 phase-grid resolution, seconds. *)
  seed : int;  (** Random seed for generated schedules (figs. 4/5). *)
  m_max : int;  (** Largest oscillation count for the Fig. 5 sweep. *)
  t_max : float;  (** Temperature threshold for the Fig. 6 sweep. *)
  csv_dir : string option;
  svg_dir : string option;
}

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

(* [csv ctx file write] / [svg ctx file render]: run the dump only when
   the matching --csv-dir/--svg-dir flag was given, creating the
   directory on first use — the boilerplate every experiment shared. *)
let csv ctx file write =
  match ctx.csv_dir with
  | Some dir -> write (Filename.concat (ensure_dir dir) file)
  | None -> ()

let svg ctx file render =
  match ctx.svg_dir with
  | Some dir -> Util.Svg_plot.write (Filename.concat (ensure_dir dir) file) (render ())
  | None -> ()

let policy_series rows ~x_of =
  let series name project =
    {
      Util.Svg_plot.label = name;
      points = List.map (fun r -> (x_of r, project r)) rows;
    }
  in
  [
    series "LNS" (fun (r : Experiments.Exp_common.policy_row) -> r.lns);
    series "EXS" (fun (r : Experiments.Exp_common.policy_row) -> r.exs);
    series "AO" (fun (r : Experiments.Exp_common.policy_row) -> r.ao);
    series "PCO" (fun (r : Experiments.Exp_common.policy_row) -> r.pco);
  ]

(* Fig. 6/7 share the one-SVG-panel-per-core-count rendering. *)
let per_core_panels ctx ~file_prefix ~title ~x_label ~x_of rows =
  List.iter
    (fun cores ->
      let panel =
        List.filter
          (fun (row : Experiments.Exp_common.policy_row) -> row.cores = cores)
          rows
      in
      svg ctx
        (Printf.sprintf "%s_%dcores.svg" file_prefix cores)
        (fun () ->
          Util.Svg_plot.line_chart ~title:(title cores) ~x_label
            ~y_label:"throughput" (policy_series panel ~x_of)))
    Workload.Configs.core_counts

(* --------------------------------------------------- experiment registry *)

type experiment = { name : string; doc : string; run : ctx -> unit }

let experiments =
  [
    {
      name = "motivation";
      doc = "Section III example, Tables II/III";
      run = (fun _ -> Experiments.Exp_motivation.print (Experiments.Exp_motivation.run ()));
    };
    {
      name = "fig2";
      doc = "Fig. 2: single-core oscillation counterexample";
      run = (fun _ -> Experiments.Exp_fig2.print (Experiments.Exp_fig2.run ()));
    };
    {
      name = "fig3";
      doc = "Fig. 3: step-up bound over phase-shifted schedules";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig3.run ~step:ctx.step () in
          Experiments.Exp_fig3.print r;
          csv ctx "fig3_peak_surface.csv" (fun path -> Experiments.Exp_fig3.to_csv path r);
          svg ctx "fig3.svg" (fun () ->
              Util.Svg_plot.heatmap ~title:"Fig. 3: peak temperature vs phase offsets"
                ~x_label:"x2 (s)" ~y_label:"x3 (s)" r.Experiments.Exp_fig3.peaks));
    };
    {
      name = "fig4";
      doc = "Fig. 4: 6-core step-up temperature trace";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig4.run ~seed:ctx.seed () in
          Experiments.Exp_fig4.print r;
          match ctx.csv_dir with
          | Some dir ->
              let dir = ensure_dir dir in
              Experiments.Exp_fig4.to_csv
                ~warmup_path:(Filename.concat dir "fig4_warmup.csv")
                ~stable_path:(Filename.concat dir "fig4_stable.csv")
                r
          | None -> ());
    };
    {
      name = "fig5";
      doc = "Fig. 5: 9-core peak vs oscillation count";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig5.run ~seed:ctx.seed ~m_max:ctx.m_max () in
          Experiments.Exp_fig5.print r;
          csv ctx "fig5_peak_vs_m.csv" (fun path -> Experiments.Exp_fig5.to_csv path r);
          svg ctx "fig5.svg" (fun () ->
              Util.Svg_plot.line_chart
                ~title:"Fig. 5: peak temperature vs m (9 cores)" ~x_label:"m"
                ~y_label:"peak temperature (C)"
                [
                  {
                    Util.Svg_plot.label = "peak";
                    points =
                      List.map
                        (fun (m, p) -> (float_of_int m, p))
                        r.Experiments.Exp_fig5.series;
                  };
                ]));
    };
    {
      name = "fig6";
      doc = "Fig. 6: throughput across cores x levels";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig6.run ~t_max:ctx.t_max () in
          Experiments.Exp_fig6.print r;
          csv ctx "fig6_throughput.csv" (fun path -> Experiments.Exp_fig6.to_csv path r);
          per_core_panels ctx ~file_prefix:"fig6"
            ~title:(Printf.sprintf "Fig. 6: throughput vs levels (%d cores)")
            ~x_label:"voltage levels"
            ~x_of:(fun row -> float_of_int row.levels)
            r.Experiments.Exp_fig6.rows);
    };
    {
      name = "fig7";
      doc = "Fig. 7: throughput vs temperature threshold";
      run =
        (fun ctx ->
          let r = Experiments.Exp_fig7.run () in
          Experiments.Exp_fig7.print r;
          csv ctx "fig7_throughput_vs_tmax.csv" (fun path ->
              Experiments.Exp_fig7.to_csv path r);
          per_core_panels ctx ~file_prefix:"fig7"
            ~title:(Printf.sprintf "Fig. 7: throughput vs T_max (%d cores)")
            ~x_label:"T_max (C)"
            ~x_of:(fun row -> row.t_max)
            r.Experiments.Exp_fig7.rows);
    };
    {
      name = "table5";
      doc = "Table V: computation-time comparison";
      run =
        (fun ctx ->
          let r = Experiments.Exp_table5.run () in
          Experiments.Exp_table5.print r;
          csv ctx "table5_times.csv" (fun path -> Experiments.Exp_table5.to_csv path r));
    };
    {
      name = "ablations";
      doc = "Design-choice ablations (DESIGN.md)";
      run = (fun _ -> Experiments.Exp_ablations.print (Experiments.Exp_ablations.run ()));
    };
    {
      name = "sensitivity";
      doc = "Theorem-1 exceedance vs coupling strength";
      run =
        (fun ctx ->
          let r = Experiments.Exp_sensitivity.run () in
          Experiments.Exp_sensitivity.print r;
          csv ctx "sensitivity_theorem1.csv" (fun path ->
              Experiments.Exp_sensitivity.to_csv path r));
    };
    {
      name = "tasks";
      doc = "Task-level thermal capacity by partitioning strategy";
      run =
        (fun ctx ->
          let r = Experiments.Exp_tasks.run () in
          Experiments.Exp_tasks.print r;
          csv ctx "tasks_capacity.csv" (fun path -> Experiments.Exp_tasks.to_csv path r));
    };
    {
      name = "pareto";
      doc = "Throughput/energy frontier under AO";
      run =
        (fun ctx ->
          let r = Experiments.Exp_pareto.run () in
          Experiments.Exp_pareto.print r;
          csv ctx "pareto_frontier.csv" (fun path -> Experiments.Exp_pareto.to_csv path r);
          svg ctx "pareto.svg" (fun () -> Experiments.Exp_pareto.to_svg r));
    };
    {
      name = "stacking3d";
      doc = "Planar vs 3D-stacked platform comparison";
      run =
        (fun ctx ->
          let r = Experiments.Exp_3d.run () in
          Experiments.Exp_3d.print r;
          csv ctx "stacking3d.csv" (fun path -> Experiments.Exp_3d.to_csv path r));
    };
  ]

(* -------------------------------------------------- policies subcommand *)

let print_policy_list ~markdown =
  if markdown then begin
    print_endline "| policy | set | description |";
    print_endline "|--------|-----|-------------|";
    List.iter
      (fun (p : Core.Solver.t) ->
        Printf.printf "| `%s` | %s | %s |\n" p.Core.Solver.name
          (if p.Core.Solver.comparison then "comparison" else "extension")
          p.Core.Solver.doc)
      Core.Registry.all
  end
  else begin
    let t = Util.Table.create [ "policy"; "set"; "description" ] in
    List.iter
      (fun (p : Core.Solver.t) ->
        Util.Table.add_row t
          [
            p.Core.Solver.name;
            (if p.Core.Solver.comparison then "comparison" else "extension");
            p.Core.Solver.doc;
          ])
      Core.Registry.all;
    Util.Table.print t
  end

let run_one_policy ~name ~cores ~levels ~t_max ~seq =
  let policy = Core.Registry.find_exn name in
  let ev = Core.Eval.create (Workload.Configs.platform ~cores ~levels ~t_max) in
  let params = { Core.Solver.default_params with Core.Solver.par = not seq } in
  let o = Core.Solver.run ~params policy ev in
  Printf.printf "%s — %s\n" policy.Core.Solver.name policy.Core.Solver.doc;
  Printf.printf "platform: %d cores, %d levels, T_max %.1f C\n\n" cores levels t_max;
  Printf.printf "throughput   %.4f\n" o.Core.Solver.throughput;
  Printf.printf "peak         %.2f C\n" o.Core.Solver.peak;
  Printf.printf "wall time    %.4f s\n" o.Core.Solver.wall_time;
  Printf.printf "evaluations  %d\n" o.Core.Solver.evaluations;
  Printf.printf "speeds       [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4f") o.Core.Solver.voltages)));
  (match o.Core.Solver.schedule with
  | Some s -> Format.printf "schedule:@\n%a@?" Sched.Schedule.pp s
  | None -> ());
  let stats = Core.Eval.stats ev in
  Printf.printf
    "eval cache   %.0f%% hit rate (steady %d/%d, step-up %d/%d hits/lookups)\n"
    (100. *. Core.Eval.hit_rate ev)
    stats.Core.Eval.steady.Sched.Peak.Cache.hits
    (stats.Core.Eval.steady.Sched.Peak.Cache.hits
    + stats.Core.Eval.steady.Sched.Peak.Cache.misses)
    stats.Core.Eval.stepup.Sched.Peak.Cache.hits
    (stats.Core.Eval.stepup.Sched.Peak.Cache.hits
    + stats.Core.Eval.stepup.Sched.Peak.Cache.misses);
  let r = Core.Eval.response_stats ev in
  Printf.printf
    "response eng %d build%s, %d superposition evals, exp table %d/%d hits/lookups\n"
    r.Thermal.Modal.builds
    (if r.Thermal.Modal.builds = 1 then "" else "s")
    r.Thermal.Modal.superpose_evals r.Thermal.Modal.exp_hits
    (r.Thermal.Modal.exp_hits + r.Thermal.Modal.exp_misses)

let policies_cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered policies.")
  in
  let markdown_flag =
    Arg.(
      value & flag
      & info [ "markdown" ] ~doc:"With $(b,--list), print a Markdown table.")
  in
  let run_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run" ] ~docv:"NAME" ~doc:"Run one registered policy by name.")
  in
  let cores_arg =
    Arg.(value & opt int 3 & info [ "cores" ] ~docv:"N" ~doc:"Core count (2, 3, 6 or 9).")
  in
  let levels_arg =
    Arg.(value & opt int 5 & info [ "levels" ] ~docv:"L" ~doc:"Voltage levels (2..5).")
  in
  let t_max_arg =
    Arg.(
      value & opt float 65. & info [ "t-max" ] ~docv:"CELSIUS" ~doc:"Peak threshold.")
  in
  let seq_flag =
    Arg.(
      value & flag
      & info [ "seq" ] ~doc:"Run the policy's search sequentially (par = false).")
  in
  let run list markdown run_name cores levels t_max seq =
    match run_name with
    | Some name -> run_one_policy ~name ~cores ~levels ~t_max ~seq
    | None ->
        ignore list;
        print_policy_list ~markdown
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"List the solver registry or run one policy on a standard platform")
    Term.(
      const run $ list_flag $ markdown_flag $ run_arg $ cores_arg $ levels_arg
      $ t_max_arg $ seq_flag)

(* ------------------------------------------------------------ Cmdliner *)

let ctx_term =
  let step =
    Arg.(
      value & opt float 0.6
      & info [ "step" ] ~docv:"SECONDS" ~doc:"Sweep resolution for the Fig. 3 phase grid.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the generated schedules.")
  in
  let m_max =
    Arg.(
      value & opt int 50
      & info [ "m-max" ] ~docv:"M" ~doc:"Largest oscillation count for the Fig. 5 sweep.")
  in
  let t_max =
    Arg.(
      value & opt float 55.
      & info [ "t-max" ] ~docv:"CELSIUS"
          ~doc:"Peak-temperature threshold (degrees C) for the Fig. 6 sweep.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR"
          ~doc:"Also write the experiment's data series as CSV files into $(docv).")
  in
  let svg_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg-dir" ] ~docv:"DIR"
          ~doc:"Also render the experiment's figure as SVG into $(docv).")
  in
  let make step seed m_max t_max csv_dir svg_dir =
    { step; seed; m_max; t_max; csv_dir; svg_dir }
  in
  Term.(const make $ step $ seed $ m_max $ t_max $ csv_dir $ svg_dir)

let () =
  let cmd_of_experiment e =
    Cmd.v (Cmd.info e.name ~doc:e.doc) Term.(const e.run $ ctx_term)
  in
  let all =
    Cmd.v
      (Cmd.info "all" ~doc:"Every experiment in paper order")
      Term.(const (fun ctx -> List.iter (fun e -> e.run ctx) experiments) $ ctx_term)
  in
  let info =
    Cmd.info "fosc-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduce the tables and figures of 'Performance Maximization via \
         Frequency Oscillation on Temperature Constrained Multi-core Processors' \
         (ICPP 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          (List.map cmd_of_experiment experiments @ [ policies_cmd; all ])))
