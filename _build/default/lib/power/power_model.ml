type t = { alpha : float -> float; gamma : float -> float; beta : float }

let constant ~alpha ~gamma ~beta =
  if alpha < 0. || gamma < 0. || beta < 0. then
    invalid_arg "Power_model.constant: negative coefficient";
  { alpha = (fun _ -> alpha); gamma = (fun _ -> gamma); beta }

let default = constant ~alpha:0.5 ~gamma:9.0 ~beta:0.05

let psi pm v =
  if v < 0. then invalid_arg "Power_model.psi: negative voltage";
  if v = 0. then 0. else pm.alpha v +. (pm.gamma v *. (v *. v *. v))

let psi_vector pm voltages = Array.map (psi pm) voltages
let total pm ~v ~temp = psi pm v +. (pm.beta *. temp)

let voltage_for_psi pm target =
  (* Uses the coefficients at the (unknown) target voltage; exact for the
     constant default, a one-step fixed point otherwise. *)
  let alpha = pm.alpha 1.0 and gamma = pm.gamma 1.0 in
  if gamma = 0. then invalid_arg "Power_model.voltage_for_psi: gamma = 0";
  Float.max 0. (Float.cbrt ((target -. alpha) /. gamma))
