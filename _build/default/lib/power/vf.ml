type level_set = { voltages : float array }

let make voltage_list =
  if voltage_list = [] then invalid_arg "Vf.make: empty level set";
  List.iter
    (fun v -> if v <= 0. then invalid_arg "Vf.make: non-positive voltage level")
    voltage_list;
  let sorted = List.sort_uniq Float.compare voltage_list in
  { voltages = Array.of_list sorted }

let range ~lo ~hi ~step =
  if step <= 0. then invalid_arg "Vf.range: non-positive step";
  if hi < lo then invalid_arg "Vf.range: hi < lo";
  let rec collect v acc =
    if v > hi +. 1e-9 then List.rev acc else collect (v +. step) (v :: acc)
  in
  make (collect lo [])

let table_iv = function
  | 2 -> make [ 0.6; 1.3 ]
  | 3 -> make [ 0.6; 0.8; 1.3 ]
  | 4 -> make [ 0.6; 0.8; 1.0; 1.3 ]
  | 5 -> make [ 0.6; 0.8; 1.0; 1.2; 1.3 ]
  | n -> invalid_arg (Printf.sprintf "Vf.table_iv: %d levels not in Table IV (2..5)" n)

let levels ls = Array.copy ls.voltages
let n_levels ls = Array.length ls.voltages
let lowest ls = ls.voltages.(0)
let highest ls = ls.voltages.(Array.length ls.voltages - 1)

let round_down ls v =
  let best = ref ls.voltages.(0) in
  Array.iter (fun level -> if level <= v +. 1e-12 then best := level) ls.voltages;
  !best

let neighbours ls v =
  let n = Array.length ls.voltages in
  if v <= ls.voltages.(0) then (ls.voltages.(0), ls.voltages.(0))
  else if v >= ls.voltages.(n - 1) then (ls.voltages.(n - 1), ls.voltages.(n - 1))
  else begin
    (* v is strictly inside the range: find the bracketing pair. *)
    let hi = ref 1 in
    while ls.voltages.(!hi) < v do
      incr hi
    done;
    if Float.abs (ls.voltages.(!hi) -. v) < 1e-12 then (ls.voltages.(!hi), ls.voltages.(!hi))
    else (ls.voltages.(!hi - 1), ls.voltages.(!hi))
  end

let mem ?(tol = 1e-9) ls v = Array.exists (fun level -> Float.abs (level -. v) <= tol) ls.voltages
let frequency_of_voltage v = v
