lib/power/power_model.mli:
