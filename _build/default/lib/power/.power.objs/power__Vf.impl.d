lib/power/vf.ml: Array Float List Printf
