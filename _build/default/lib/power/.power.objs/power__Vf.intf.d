lib/power/vf.mli:
