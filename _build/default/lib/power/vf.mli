(** DVFS running modes: supply-voltage / frequency pairs.

    The paper treats voltage and frequency interchangeably as the
    "processing speed" (an inactive core has [v = f = 0]); this module
    keeps that convention via {!frequency_of_voltage} while leaving room
    for non-identity mappings.  Level sets model the discrete modes a real
    processor exposes. *)

type level_set = {
  voltages : float array;  (** Strictly ascending available voltages, V. *)
}

(** [make voltages] sorts, deduplicates and validates a level set.
    Raises [Invalid_argument] when empty or containing non-positive
    voltages. *)
val make : float list -> level_set

(** [range ~lo ~hi ~step] is the dense grid the paper assumes for the
    continuous baseline: [lo, lo+step, ..., hi] (inclusive within 1e-9).
    The paper's processors use [range ~lo:0.6 ~hi:1.3 ~step:0.05]. *)
val range : lo:float -> hi:float -> step:float -> level_set

(** [table_iv n] is the paper's Table IV selection for [n] in 2..5:
    - 2 levels: 0.6, 1.3
    - 3 levels: 0.6, 0.8, 1.3
    - 4 levels: 0.6, 0.8, 1.0, 1.3
    - 5 levels: 0.6, 0.8, 1.0, 1.2, 1.3
    Raises [Invalid_argument] outside that range. *)
val table_iv : int -> level_set

(** [levels ls] is a copy of the ascending voltage array. *)
val levels : level_set -> float array

(** [n_levels ls] is the number of modes. *)
val n_levels : level_set -> int

(** [lowest ls] and [highest ls] are the extreme voltages. *)
val lowest : level_set -> float

val highest : level_set -> float

(** [round_down ls v] is the largest available voltage [<= v], or
    [lowest ls] when [v] undercuts every level (the paper's LNS never
    turns a core off).  Values above the top level clamp to it. *)
val round_down : level_set -> float -> float

(** [neighbours ls v] is the pair [(v_L, v_H)] of available voltages
    bracketing [v]: the largest level [<= v] and the smallest [>= v].
    When [v] lies outside the set's range both components clamp to the
    nearest extreme (so [v_L = v_H]); when [v] coincides with a level,
    [v_L = v_H = v]. *)
val neighbours : level_set -> float -> float * float

(** [mem ?tol ls v] tests whether [v] is an available level (within
    [tol], default 1e-9). *)
val mem : ?tol:float -> level_set -> float -> bool

(** [frequency_of_voltage v] is the processing speed of a core running at
    [v] — the identity, per the paper's performance model. *)
val frequency_of_voltage : float -> float
