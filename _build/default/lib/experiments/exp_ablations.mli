(** Ablation studies on the design choices DESIGN.md calls out.

    1. m-oscillation: AO with m forced to 1 vs the full m sweep — how
       much of AO's margin comes from oscillating at all.
    2. Neighbouring modes (Theorem 4): AO built on the widest mode pair
       instead of the neighbours — peak temperature of the
       equal-throughput schedule before ratio adjustment.
    3. EXS incremental evaluation vs Algorithm-1-verbatim refactorization.
    4. Ideal-solve refinement: redistribute the headroom clamped cores
       leave (our extension) vs the paper's one-shot formula.
    5. TSP power budgeting (the paper's reference [9]) vs EXS and AO on
       the 9-core platform: uniform worst-case budgeting is pessimistic
       exactly as the paper argues. *)

type result = {
  three_mode_peak : float;
      (** Equal-work three-mode schedule peak (0.6/0.9/1.3 V). *)
  two_mode_peak : float;  (** Equal-work neighbouring pair (0.8/1.0 V). *)
  ambient_sweep : (float * float) list;
      (** AO throughput across ambient temperatures 25..45 C. *)
  ao_m1_throughput : float;
  ao_full_throughput : float;
  ao_full_m : int;
  neighbour_peak : float;
      (** Pre-adjustment peak with neighbouring modes (3x1, 65 C). *)
  wide_peak : float;  (** Same workload with the widest pair. *)
  exs_incremental_time : float;  (** 6 cores, 4 levels. *)
  exs_naive_time : float;
  exs_pruned_nodes : int;
      (** Branch-and-bound search nodes on 9 cores x 5 levels. *)
  exs_flat_nodes : int;  (** Flat enumeration size of the same space. *)
  refine_gain : float;
      (** Ideal throughput with refinement minus without (3x1, 70 C —
          a platform where only the edge cores clamp). *)
  bisect_throughput : float;  (** AO with bisection adjustment (6x1, 60 C). *)
  bisect_time : float;
  greedy_throughput : float;  (** AO with the paper's greedy TPT loop. *)
  greedy_time : float;
  tsp_throughput : float;  (** TSP on the 9-core, 5-level, 55 C platform. *)
  tsp_exs_throughput : float;  (** EXS on the same platform. *)
  tsp_ao_throughput : float;  (** AO on the same platform. *)
}

val run : unit -> result
val print : result -> unit
