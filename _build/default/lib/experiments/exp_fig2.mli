(** Fig. 2: oscillating one core alone does not necessarily reduce the
    peak temperature on a multi-core.

    Two cores, 100 ms period, complementary half-period 1.3 V / 0.6 V
    schedules.  The paper measures 53.3 C for the base schedule and
    54.6 C after doubling only core 1's oscillation frequency; doubling
    both cores' (the 2-Oscillating schedule) lowers the peak. *)

type result = {
  base_peak : float;
  single_core_doubled_peak : float;  (** Paper: goes UP. *)
  both_doubled_peak : float;  (** Theorem 5: goes down. *)
}

val run : unit -> result
val print : result -> unit
