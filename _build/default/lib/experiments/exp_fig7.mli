(** Fig. 7: throughput vs temperature threshold.

    Core counts {2, 3, 6, 9}, the 2-level set {0.6, 1.3} V, and
    [T_max] swept over 50..65 C in 5 C steps.  Paper shape: every
    policy's throughput grows with the threshold; AO/PCO lead; once the
    threshold is generous enough for all-cores-at-max, the policies
    converge. *)

type result = { rows : Exp_common.policy_row list }

(** [run ?with_pco ()] sweeps all (cores, t_max) pairs. *)
val run : ?with_pco:bool -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
