lib/experiments/exp_motivation.mli:
