lib/experiments/exp_fig2.ml: Exp_common Power Printf Sched Thermal
