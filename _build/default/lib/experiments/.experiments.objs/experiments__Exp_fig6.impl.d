lib/experiments/exp_fig6.ml: Array Exp_common List Printf Util Workload
