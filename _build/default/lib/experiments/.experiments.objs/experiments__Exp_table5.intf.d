lib/experiments/exp_table5.mli:
