lib/experiments/exp_tasks.ml: Exp_common List Printf Stdlib Tasks Util Workload
