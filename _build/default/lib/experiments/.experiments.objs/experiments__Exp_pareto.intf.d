lib/experiments/exp_pareto.mli:
