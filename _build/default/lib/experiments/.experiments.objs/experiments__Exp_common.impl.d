lib/experiments/exp_common.ml: Core Printf String Util Workload
