lib/experiments/exp_tasks.mli:
