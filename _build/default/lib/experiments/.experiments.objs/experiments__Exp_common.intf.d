lib/experiments/exp_common.mli:
