lib/experiments/exp_3d.ml: Core Exp_common Linalg List Power Printf Util Workload
