lib/experiments/exp_motivation.ml: Array Core Exp_common List Printf String Util Workload
