lib/experiments/exp_3d.mli:
