lib/experiments/exp_fig7.ml: Exp_common List Printf Util Workload
