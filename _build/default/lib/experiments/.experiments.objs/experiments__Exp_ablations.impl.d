lib/experiments/exp_ablations.ml: Array Core Exp_common Float List Power Printf Sched String Util Workload
