lib/experiments/exp_fig3.ml: Exp_common Float List Power Printf Sched Thermal Util Workload
