lib/experiments/exp_fig4.ml: Array Exp_common Float Format Linalg List Power Printf Random Sched Stdlib Thermal Util Workload
