lib/experiments/exp_table5.ml: Core Exp_common Float List Printf Util Workload
