lib/experiments/exp_sensitivity.ml: Array Exp_common Float List Power Printf Random Sched Thermal Util Workload
