lib/experiments/exp_fig5.ml: Exp_common List Power Printf Random Sched Thermal Util Workload
