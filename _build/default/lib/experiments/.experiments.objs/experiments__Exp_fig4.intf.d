lib/experiments/exp_fig4.mli: Linalg Sched Thermal
