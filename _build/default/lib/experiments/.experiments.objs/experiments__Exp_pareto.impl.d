lib/experiments/exp_pareto.ml: Core Exp_common List Printf Sched Util Workload
