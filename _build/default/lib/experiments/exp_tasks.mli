(** Task-level capacity study (extension beyond the paper).

    For each platform, a fixed periodic task mix is scaled until the
    thermal feasibility pipeline (partition -> per-core demands ->
    {!Core.Demand}) rejects it.  Compares heat-aware (worst-fit,
    load-balancing) against first-fit packing: balancing load spreads
    heat, so it sustains a larger workload before [T_max] binds. *)

type row = {
  cores : int;
  worst_fit_capacity : float;  (** Max workload scale, worst-fit packing. *)
  first_fit_capacity : float;
}

type result = { t_max : float; rows : row list }

(** [run ?t_max ()] (default 60 C) sweeps the paper's core counts. *)
val run : ?t_max:float -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
