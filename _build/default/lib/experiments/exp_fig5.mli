(** Fig. 5: the peak temperature of an m-Oscillating schedule decreases
    monotonically with m (Theorem 5) on a 9-core (3x3) platform.

    The paper oscillates a random step-up schedule with period 9.836 s
    and up to 5 intervals per core, for m = 1..50. *)

type result = {
  schedule : Sched.Schedule.t;
  series : (int * float) list;  (** (m, peak C). *)
  monotone : bool;  (** Non-increasing within the coupling tolerance. *)
}

(** [run ?seed ?m_max ()] (defaults: seed 7, m up to 50). *)
val run : ?seed:int -> ?m_max:int -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
