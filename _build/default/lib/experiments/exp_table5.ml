type row = {
  cores : int;
  levels : int;
  ao_time : float;
  pco_time : float;
  exs_time : float;
  exs_naive_time : float;
  exs_evaluated : int;
}

type result = { rows : row list }

let run ?(t_max = 65.) ?(naive_limit = 2_000_000) () =
  let rows =
    List.concat_map
      (fun cores ->
        List.map
          (fun levels ->
            let p = Workload.Configs.platform ~cores ~levels ~t_max in
            let ao_time = Util.Timer.time_only (fun () -> Core.Ao.solve p) in
            let pco_time = Util.Timer.time_only (fun () -> Core.Pco.solve p) in
            let exs, exs_time = Util.Timer.time_it (fun () -> Core.Exs.solve p) in
            let space = int_of_float (Float.pow (float_of_int levels) (float_of_int cores)) in
            let exs_naive_time =
              if space > naive_limit then nan
              else Util.Timer.time_only (fun () -> Core.Exs.solve_naive p)
            in
            {
              cores;
              levels;
              ao_time;
              pco_time;
              exs_time;
              exs_naive_time;
              exs_evaluated = exs.Core.Exs.evaluated;
            })
          Workload.Configs.level_counts)
      Workload.Configs.core_counts
  in
  { rows }

let fmt_time t = if Float.is_nan t then "skipped" else Printf.sprintf "%.4f" t

let print r =
  Exp_common.section "Table V - computation time (seconds), T_max = 65 C";
  let t =
    Util.Table.create
      [ "cores"; "levels"; "AO"; "PCO"; "EXS (incr)"; "EXS (naive)"; "EXS combos" ]
  in
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          string_of_int row.cores;
          string_of_int row.levels;
          Printf.sprintf "%.4f" row.ao_time;
          Printf.sprintf "%.4f" row.pco_time;
          fmt_time row.exs_time;
          fmt_time row.exs_naive_time;
          string_of_int row.exs_evaluated;
        ])
    r.rows;
  Util.Table.print t;
  (* The paper's headline: EXS grows exponentially, AO does not. *)
  let find cores levels =
    List.find (fun row -> row.cores = cores && row.levels = levels) r.rows
  in
  let small = find 2 2 and big = find 9 5 in
  Printf.printf
    "\nEXS search-space growth 2x2 -> 9x5: %d -> %d combinations (x%.0f)\n"
    small.exs_evaluated big.exs_evaluated
    (float_of_int big.exs_evaluated /. float_of_int small.exs_evaluated);
  Printf.printf "AO time growth over the same span: %.4fs -> %.4fs\n" small.ao_time
    big.ao_time

let to_csv path r =
  Util.Csv.write path
    ~header:[ "cores"; "levels"; "ao_s"; "pco_s"; "exs_s"; "exs_naive_s"; "combos" ]
    (List.map
       (fun row ->
         [
           float_of_int row.cores;
           float_of_int row.levels;
           row.ao_time;
           row.pco_time;
           row.exs_time;
           row.exs_naive_time;
           float_of_int row.exs_evaluated;
         ])
       r.rows)
