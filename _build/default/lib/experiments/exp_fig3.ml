type result = {
  step : float;
  peaks : (float * float * float) list;
  max_peak : float;
  max_at : float * float;
  min_peak : float;
  min_at : float * float;
  step_up_bound : float;
}

let period = 6.
let half = 3.

let run ?(step = 0.6) () =
  let model =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)
  in
  let pm = Power.Power_model.default in
  let peak_of offsets =
    let s =
      Workload.Random_sched.phase_grid ~n_cores:3 ~period ~v_low:0.6 ~v_high:1.3
        ~offsets
    in
    Sched.Peak.of_any model pm ~samples_per_segment:24 s
  in
  let points = int_of_float (Float.round (period /. step)) in
  let peaks = ref [] in
  for i = 0 to points - 1 do
    for j = 0 to points - 1 do
      let x2 = float_of_int i *. step and x3 = float_of_int j *. step in
      peaks := (x2, x3, peak_of [| half; x2; x3 |]) :: !peaks
    done
  done;
  let peaks = List.rev !peaks in
  let max_peak, max_at =
    List.fold_left
      (fun (best, at) (x2, x3, p) -> if p > best then (p, (x2, x3)) else (best, at))
      (neg_infinity, (0., 0.))
      peaks
  in
  let min_peak, min_at =
    List.fold_left
      (fun (best, at) (x2, x3, p) -> if p < best then (p, (x2, x3)) else (best, at))
      (infinity, (0., 0.))
      peaks
  in
  (* The aligned schedule IS the step-up ordering of every member of the
     family (all lows first, all highs last). *)
  let aligned =
    Workload.Random_sched.phase_grid ~n_cores:3 ~period ~v_low:0.6 ~v_high:1.3
      ~offsets:[| half; half; half |]
  in
  let step_up_bound = Sched.Peak.of_step_up model pm (Sched.Stepup.reorder aligned) in
  { step; peaks; max_peak; max_at; min_peak; min_at; step_up_bound }

let print r =
  Exp_common.section "Fig. 3 - step-up schedule bounds phase-shifted schedules (3x1, 6s period)";
  Printf.printf "swept %d schedules at %.1fs resolution\n" (List.length r.peaks) r.step;
  Printf.printf "max peak: %.2f C at x2 = %.1fs, x3 = %.1fs  (paper: 84.13 C at 3.0, 3.0)\n"
    r.max_peak (fst r.max_at) (snd r.max_at);
  Printf.printf "min peak: %.2f C at x2 = %.1fs, x3 = %.1fs  (paper: 71.22 C at 0.6, 4.2)\n"
    r.min_peak (fst r.min_at) (snd r.min_at);
  Printf.printf "step-up bound (end of period): %.2f C\n" r.step_up_bound;
  Printf.printf "bound holds for the whole family (within coupling tolerance): %b\n"
    (r.max_peak <= r.step_up_bound +. 0.5)

let to_csv path r =
  Util.Csv.write path ~header:[ "x2"; "x3"; "peak" ]
    (List.map (fun (x2, x3, p) -> [ x2; x3; p ]) r.peaks)
