type result = {
  base_peak : float;
  single_core_doubled_peak : float;
  both_doubled_peak : float;
}

let run () =
  let model =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3)
  in
  let pm = Power.Power_model.default in
  let seg d v = { Sched.Schedule.duration = d; voltage = v } in
  let base =
    Sched.Schedule.make ~period:0.1
      [| [ seg 0.05 1.3; seg 0.05 0.6 ]; [ seg 0.05 0.6; seg 0.05 1.3 ] |]
  in
  let single =
    Sched.Schedule.make ~period:0.1
      [|
        [ seg 0.025 1.3; seg 0.025 0.6; seg 0.025 1.3; seg 0.025 0.6 ];
        [ seg 0.05 0.6; seg 0.05 1.3 ];
      |]
  in
  let peak s = Sched.Peak.of_any model pm ~samples_per_segment:64 s in
  {
    base_peak = peak base;
    single_core_doubled_peak = peak single;
    both_doubled_peak = peak (Sched.Oscillate.oscillate 2 base);
  }

let print r =
  Exp_common.section "Fig. 2 - single-core oscillation counterexample (2x1, 100ms period)";
  Printf.printf "base schedule peak:                 %.2f C  (paper: 53.3 C)\n" r.base_peak;
  Printf.printf "core-1-only frequency doubled peak: %.2f C  (paper: 54.6 C - HIGHER)\n"
    r.single_core_doubled_peak;
  Printf.printf "both cores doubled (m = 2) peak:    %.2f C  (Theorem 5: lower)\n"
    r.both_doubled_peak;
  Printf.printf "single-core oscillation raised the peak: %b\n"
    (r.single_core_doubled_peak >= r.base_peak -. 1e-6)
