(** 3D-stacking study (the paper's motivating technology, beyond its own
    evaluation).

    Compares the same core count laid out planar (2D) versus stacked
    (two layers): stacking lengthens the heat-removal path of the upper
    die, cuts every policy's throughput, increases the spread between
    the ideal per-layer speeds — and widens AO's advantage over the
    constant-speed policies, because oscillation exploits exactly the
    headroom heterogeneity that hurts single-speed assignments. *)

type row = {
  label : string;
  cores : int;
  lns : float;
  exs : float;
  ao : float;
  ideal_spread : float;
      (** Max - min ideal per-core voltage: the thermal heterogeneity. *)
}

type result = { t_max : float; rows : row list }

(** [run ?t_max ()] (default 60 C, 5-level set) compares 2x2 planar,
    2x4 planar and 2x(2x2) stacked platforms. *)
val run : ?t_max:float -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
