(** Shared plumbing for the experiment reproductions: run all four
    policies on one platform and collect throughputs, peaks and wall
    times. *)

type policy_row = {
  cores : int;
  levels : int;
  t_max : float;
  lns : float;  (** LNS throughput. *)
  exs : float;  (** EXS throughput. *)
  ao : float;  (** AO throughput (net of transition stalls). *)
  pco : float;  (** PCO throughput. *)
  lns_time : float;  (** Wall-clock seconds. *)
  exs_time : float;
  ao_time : float;
  pco_time : float;
  exs_evaluated : int;  (** Combinations EXS enumerated. *)
}

(** [run_policies ?with_pco ~cores ~levels ~t_max ()] builds the paper's
    standard platform and times all policies on it.  With
    [with_pco = false] (for the biggest sweeps) the PCO columns copy
    AO's. *)
val run_policies :
  ?with_pco:bool -> cores:int -> levels:int -> t_max:float -> unit -> policy_row

(** [improvement a b] is [(a - b) / b * 100.], the percentage by which
    [a] exceeds [b] (0 when [b] is not positive). *)
val improvement : float -> float -> float

(** [section title] prints the banner used between experiment outputs. *)
val section : string -> unit
