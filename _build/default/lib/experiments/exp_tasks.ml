type row = { cores : int; worst_fit_capacity : float; first_fit_capacity : float }
type result = { t_max : float; rows : row list }

(* A mixed-criticality-flavoured task soup scaled per platform size so
   every core count starts from a comparable utilization density. *)
let taskset ~cores =
  let base =
    [
      (6.0e-3, 16.7e-3);
      (1.2e-3, 5.0e-3);
      (2.5e-3, 10.0e-3);
      (0.8e-3, 4.0e-3);
      (1.5e-3, 2.5e-3);
      (8.0e-3, 33.3e-3);
      (3.0e-3, 12.0e-3);
    ]
  in
  List.concat
    (List.init (Stdlib.max 1 (cores / 2)) (fun copy ->
         List.mapi
           (fun i (wcet, period) ->
             Tasks.Task.make
               ~name:(Printf.sprintf "t%d_%d" copy i)
               ~wcet ~period)
           base))

let run ?(t_max = 60.) () =
  let rows =
    List.map
      (fun cores ->
        let p = Workload.Configs.platform ~cores ~levels:5 ~t_max in
        let tasks = taskset ~cores in
        {
          cores;
          worst_fit_capacity = Tasks.Feasibility.capacity_factor ~tol:1e-2 p tasks;
          first_fit_capacity =
            Tasks.Feasibility.capacity_factor ~strategy:`First_fit ~tol:1e-2 p tasks;
        })
      Workload.Configs.core_counts
  in
  { t_max; rows }

let print r =
  Exp_common.section
    (Printf.sprintf "Task-level thermal capacity by partitioning strategy (T_max = %.0f C)"
       r.t_max);
  let t = Util.Table.create [ "cores"; "worst-fit capacity"; "first-fit capacity"; "gain" ] in
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          string_of_int row.cores;
          Printf.sprintf "%.2fx" row.worst_fit_capacity;
          Printf.sprintf "%.2fx" row.first_fit_capacity;
          Printf.sprintf "%+.0f%%"
            (Exp_common.improvement row.worst_fit_capacity row.first_fit_capacity);
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "balanced (worst-fit) packing spreads heat across the die, sustaining a\n\
     larger workload before T_max binds — thermally-aware partitioning for free.\n"

let to_csv path r =
  Util.Csv.write path
    ~header:[ "cores"; "worst_fit"; "first_fit" ]
    (List.map
       (fun row ->
         [ float_of_int row.cores; row.worst_fit_capacity; row.first_fit_capacity ])
       r.rows)
