(** Sensitivity study behind EXPERIMENTS.md's reproduction finding 1:
    how far can a step-up schedule's true stable-status peak exceed its
    period-end temperature (Theorem 1's claim) as the inter-core
    coupling strengthens?

    For each lateral-conductance scale, a batch of random step-up
    schedules is evaluated with both the end-of-period formula and the
    refined dense scan; the worst exceedance is reported.  At scale 0
    (no coupling: independent cores) Theorem 1 is exact; the violation
    grows with the coupling. *)

type point = {
  lateral_scale : float;
  worst_violation : float;  (** max over schedules of scan - end, C. *)
  mean_violation : float;
}

type result = { points : point list; schedules_per_point : int }

(** [run ?schedules ?seed ()] sweeps lateral scales
    {0, 0.5, 1, 2, 4} with [schedules] random step-up schedules each
    (default 40). *)
val run : ?schedules:int -> ?seed:int -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
