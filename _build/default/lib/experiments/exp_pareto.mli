(** Throughput / energy-efficiency trade-off (extension beyond the
    paper).

    The paper maximizes throughput at a fixed [T_max]; sweeping the
    threshold traces the achievable frontier.  For each [T_max], AO's
    schedule is costed with the exact energy accounting of
    {!Sched.Energy}: hotter budgets buy throughput at cubically growing
    dynamic power plus temperature-fed leakage, so energy-per-work rises
    along the frontier — the classic dark-silicon trade the related work
    (Bansal et al. [33]) studies. *)

type point = {
  t_max : float;
  throughput : float;  (** AO net throughput. *)
  energy_per_work : float;  (** J per unit work, stable status. *)
  avg_power : float;  (** Chip watts, stable status. *)
  peak : float;
}

type result = { cores : int; points : point list }

(** [run ?cores ()] (default 3) sweeps [T_max] from 45 to 70 C in 2.5 C
    steps on the 5-level platform. *)
val run : ?cores:int -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit

(** [to_svg r] renders the frontier (throughput on x, energy-per-work on
    y, one point per threshold). *)
val to_svg : result -> string
