(** Section III motivation example, Tables II and III.

    3x1 platform, [T_max = 65 C], two modes {0.6, 1.3} V.  Reproduces:
    the ideal continuous voltages (paper: [1.2085; 1.1748; 1.2085],
    performance 1.1972), LNS (0.6), EXS (0.83), the throughput-preserving
    high-mode ratios of Table II, the peak temperature of that naive
    two-speed schedule (paper: 79.69 C, violating), and Table III's
    constraint-meeting ratios and throughputs for periods 20/10/5 ms. *)

type result = {
  ideal_voltages : float array;
  ideal_throughput : float;
  lns_throughput : float;
  exs_voltages : float array;
  exs_throughput : float;
  table2_ratios : float array;  (** Throughput-preserving high ratios. *)
  naive_peak : float;  (** Peak of the unadjusted two-speed schedule. *)
  table3 : (float * float array * float) list;
      (** Per period (seconds): adjusted high ratios and throughput. *)
}

val run : unit -> result

(** [print r] renders the paper-shaped tables to stdout. *)
val print : result -> unit
