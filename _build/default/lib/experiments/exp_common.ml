type policy_row = {
  cores : int;
  levels : int;
  t_max : float;
  lns : float;
  exs : float;
  ao : float;
  pco : float;
  lns_time : float;
  exs_time : float;
  ao_time : float;
  pco_time : float;
  exs_evaluated : int;
}

let run_policies ?(with_pco = true) ~cores ~levels ~t_max () =
  let p = Workload.Configs.platform ~cores ~levels ~t_max in
  let lns, lns_time = Util.Timer.time_it (fun () -> Core.Lns.solve p) in
  let exs, exs_time = Util.Timer.time_it (fun () -> Core.Exs.solve p) in
  let ao, ao_time = Util.Timer.time_it (fun () -> Core.Ao.solve p) in
  let pco_thr, pco_time =
    if with_pco then
      let r, t = Util.Timer.time_it (fun () -> Core.Pco.solve p) in
      (r.Core.Pco.throughput, t)
    else (ao.Core.Ao.throughput, ao_time)
  in
  {
    cores;
    levels;
    t_max;
    lns = lns.Core.Lns.throughput;
    exs = exs.Core.Exs.throughput;
    ao = ao.Core.Ao.throughput;
    pco = pco_thr;
    lns_time;
    exs_time;
    ao_time;
    pco_time;
    exs_evaluated = exs.Core.Exs.evaluated;
  }

let improvement a b = if b <= 0. then 0. else (a -. b) /. b *. 100.

let section title =
  let rule = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" rule title rule
