(** Fig. 3: the step-up schedule bounds the peak temperature over the
    whole family of phase-shifted schedules.

    3x1 platform, 6 s period, every core 50% at 1.3 V and 50% at 0.6 V;
    core 1's high interval starts at 3 s; cores 2 and 3's starting
    offsets x2, x3 sweep the period.  The paper reports a maximum of
    84.13 C at x2 = x3 = 3 s (the step-up alignment) and a minimum of
    71.22 C at (0.6, 4.2) s. *)

type result = {
  step : float;  (** Sweep step, seconds. *)
  peaks : (float * float * float) list;  (** (x2, x3, peak C). *)
  max_peak : float;
  max_at : float * float;
  min_peak : float;
  min_at : float * float;
  step_up_bound : float;
      (** End-of-period peak of the aligned (step-up) schedule. *)
}

(** [run ?step ()] sweeps with the given resolution (default 0.6 s,
    11x11 grid — the paper uses 0.1 s). *)
val run : ?step:float -> unit -> result

val print : result -> unit

(** [to_csv path r] dumps the full (x2, x3, peak) surface. *)
val to_csv : string -> result -> unit
