(** Fig. 6: throughput of LNS / EXS / AO / PCO across core counts
    {2, 3, 6, 9} and Table IV level sets {2, 3, 4, 5}, at
    [T_max = 55 C].

    Paper shape: AO and PCO always at or above EXS and LNS; the fewer
    the levels, the larger AO/PCO's improvement (55.2% average over EXS
    at 2 levels, 24.8% at 5); AO and PCO nearly coincide. *)

type result = {
  rows : Exp_common.policy_row list;
  avg_improvement_over_exs : (int * float) list;
      (** Per level count: mean % AO improvement over EXS across core
          counts (configurations where EXS found nothing feasible are
          skipped). *)
}

(** [run ?t_max ?with_pco ()] (defaults: 55 C, PCO on). *)
val run : ?t_max:float -> ?with_pco:bool -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
