type result = {
  schedule : Sched.Schedule.t;
  series : (int * float) list;
  monotone : bool;
}

let run ?(seed = 7) ?(m_max = 50) () =
  let model =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)
  in
  let pm = Power.Power_model.default in
  let rng = Random.State.make [| seed |] in
  let schedule =
    Workload.Random_sched.step_up rng ~n_cores:9 ~period:9.836 ~max_intervals:5
      ~levels:(Power.Vf.table_iv 5)
  in
  let series =
    List.init m_max (fun k ->
        let m = k + 1 in
        (m, Sched.Peak.of_step_up model pm (Sched.Oscillate.oscillate m schedule)))
  in
  let monotone =
    let rec check = function
      | (_, a) :: ((_, b) :: _ as rest) -> b <= a +. 0.05 && check rest
      | [ _ ] | [] -> true
    in
    check series
  in
  { schedule; series; monotone }

let print r =
  Exp_common.section "Fig. 5 - m-Oscillating peak vs m (3x3 = 9 cores, 9.836s period)";
  List.iter
    (fun (m, peak) ->
      if m <= 10 || m mod 5 = 0 then Printf.printf "  m = %3d: peak %.2f C\n" m peak)
    r.series;
  let _, first = List.hd r.series in
  let _, last = List.nth r.series (List.length r.series - 1) in
  Printf.printf "peak drop from m=1 to m=%d: %.2f C\n" (List.length r.series)
    (first -. last);
  Printf.printf "monotone non-increasing (Theorem 5): %b\n" r.monotone

let to_csv path r =
  Util.Csv.write path ~header:[ "m"; "peak" ]
    (List.map (fun (m, p) -> [ float_of_int m; p ]) r.series)
