(** Table V: computation-time comparison of AO, PCO and EXS across core
    counts {2, 3, 6, 9} and level counts {2, 3, 4, 5} at
    [T_max = 65 C].

    Paper shape: EXS explodes exponentially with cores x levels (from
    0.01 s on 2 cores to > 2 hours on 9 cores / 5 levels in MATLAB)
    while AO stays roughly flat and PCO costs a constant factor more
    than AO.  Absolute times differ (native OCaml vs MATLAB); the
    trends and the EXS blow-up are the reproduced claims.  The naive
    EXS column re-factorizes [A] per combination, exactly as Algorithm 1
    is written — the incremental EXS is our optimized variant. *)

type row = {
  cores : int;
  levels : int;
  ao_time : float;
  pco_time : float;
  exs_time : float;  (** Incremental (optimized) EXS. *)
  exs_naive_time : float;  (** Algorithm 1 verbatim. *)
  exs_evaluated : int;
}

type result = { rows : row list }

(** [run ?t_max ?naive_limit ()] times every configuration.
    [naive_limit] (default [2_000_000]) skips the naive EXS when the
    search space exceeds it (reported as [nan]). *)
val run : ?t_max:float -> ?naive_limit:int -> unit -> result

val print : result -> unit
val to_csv : string -> result -> unit
