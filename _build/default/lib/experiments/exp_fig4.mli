(** Fig. 4: temperature trace of a random step-up schedule on a 6-core
    (3x2) platform — Theorem 1 in pictures.

    1 s period, up to 3 intervals per core.  Fig. 4(a): starting from the
    35 C ambient, temperatures climb period over period; Fig. 4(b): in
    the stable status each core's maximum sits at the period end (up to
    the documented coupling tolerance). *)

type result = {
  schedule : Sched.Schedule.t;
  warmup : Thermal.Trace.sample array;  (** Multi-period cold-start trace. *)
  stable : (float * Linalg.Vec.t) array;  (** One stable period. *)
  periods_to_stable : int;
  peak : float;
  end_of_period_peak : float;
}

(** [run ?seed ()] (default seed 42) generates the schedule
    deterministically. *)
val run : ?seed:int -> unit -> result

val print : result -> unit

(** [to_csv ~warmup_path ~stable_path r] dumps both traces. *)
val to_csv : warmup_path:string -> stable_path:string -> result -> unit
