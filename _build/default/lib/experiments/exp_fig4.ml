type result = {
  schedule : Sched.Schedule.t;
  warmup : Thermal.Trace.sample array;
  stable : (float * Linalg.Vec.t) array;
  periods_to_stable : int;
  peak : float;
  end_of_period_peak : float;
}

let run ?(seed = 42) () =
  let model =
    Thermal.Hotspot.core_level
      (Thermal.Floorplan.grid ~rows:2 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)
  in
  let pm = Power.Power_model.default in
  let rng = Random.State.make [| seed |] in
  let schedule =
    Workload.Random_sched.step_up rng ~n_cores:6 ~period:1.0 ~max_intervals:3
      ~levels:(Power.Vf.table_iv 5)
  in
  let profile = Sched.Peak.profile model pm schedule in
  let periods_to_stable = Thermal.Trace.periods_to_stable model ~tol:1e-4 profile in
  let warmup =
    Thermal.Trace.from_ambient model
      ~periods:(Stdlib.min 12 (periods_to_stable + 3))
      ~samples_per_segment:16 profile
  in
  let stable = Thermal.Matex.stable_core_trace model ~samples_per_segment:16 profile in
  {
    schedule;
    warmup;
    stable;
    periods_to_stable;
    peak = Thermal.Matex.peak_scan model ~samples_per_segment:48 profile;
    end_of_period_peak = Thermal.Matex.end_of_period_peak model profile;
  }

let print r =
  Exp_common.section "Fig. 4 - step-up schedule temperature trace (3x2 = 6 cores, 1s period)";
  Printf.printf "schedule:\n";
  Format.printf "%a" Sched.Schedule.pp r.schedule;
  Printf.printf "periods from ambient to stable status: %d\n" r.periods_to_stable;
  Printf.printf "stable-status peak (dense scan):  %.2f C\n" r.peak;
  Printf.printf "temperature at period end:        %.2f C\n" r.end_of_period_peak;
  Printf.printf "peak occurs at the period end (Theorem 1, within tolerance): %b\n"
    (r.peak <= r.end_of_period_peak +. 0.5);
  (* A compact rendering of Fig. 4(a): max core temp at each period end. *)
  let period = Sched.Schedule.period r.schedule in
  Printf.printf "warm-up (hottest core at each period boundary):\n";
  Array.iter
    (fun s ->
      let k = s.Thermal.Trace.time /. period in
      if Float.abs (k -. Float.round k) < 1e-9 then
        Printf.printf "  t = %4.1fs: %.2f C\n" s.Thermal.Trace.time
          (Linalg.Vec.max s.Thermal.Trace.core_temps))
    r.warmup

let to_csv ~warmup_path ~stable_path r =
  let model_cores = Linalg.Vec.dim (snd r.stable.(0)) in
  let header = "time" :: List.init model_cores (Printf.sprintf "core%d") in
  Util.Csv.write warmup_path ~header
    (Array.to_list
       (Array.map
          (fun s -> s.Thermal.Trace.time :: Array.to_list s.Thermal.Trace.core_temps)
          r.warmup));
  Util.Csv.write stable_path ~header
    (Array.to_list (Array.map (fun (t, temps) -> t :: Array.to_list temps) r.stable))
