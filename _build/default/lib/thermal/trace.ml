module Vec = Linalg.Vec

type sample = { time : float; core_temps : Vec.t }

let from_ambient model ~periods ~samples_per_segment profile =
  if periods <= 0 then invalid_arg "Trace.from_ambient: periods <= 0";
  Matex.validate model profile;
  let theta = ref (Vec.zeros (Model.n_nodes model)) in
  let samples = ref [ { time = 0.; core_temps = Model.core_temps_of_theta model !theta } ] in
  let now = ref 0. in
  for _ = 1 to periods do
    List.iter
      (fun (s : Matex.segment) ->
        let dt = s.duration /. float_of_int samples_per_segment in
        for _ = 1 to samples_per_segment do
          theta := Model.step model ~dt ~theta:!theta ~psi:s.psi;
          now := !now +. dt;
          samples :=
            { time = !now; core_temps = Model.core_temps_of_theta model !theta }
            :: !samples
        done)
      profile
  done;
  Array.of_list (List.rev !samples)

let periods_to_stable model ?(tol = 1e-6) profile =
  Matex.validate model profile;
  let theta = ref (Vec.zeros (Model.n_nodes model)) in
  let advance_period theta0 =
    List.fold_left
      (fun acc (s : Matex.segment) -> Model.step model ~dt:s.duration ~theta:acc ~psi:s.psi)
      theta0 profile
  in
  let rec go count =
    if count >= 10_000 then count
    else
      let next = advance_period !theta in
      let moved = Vec.dist_inf next !theta in
      theta := next;
      if moved < tol then count + 1 else go (count + 1)
  in
  go 0

let peak samples =
  Array.fold_left (fun acc s -> Float.max acc (Vec.max s.core_temps)) neg_infinity samples

let to_csv_channel oc model samples =
  let n = Model.n_cores model in
  output_string oc "time";
  for i = 0 to n - 1 do
    Printf.fprintf oc ",core%d" i
  done;
  output_char oc '\n';
  Array.iter
    (fun s ->
      Printf.fprintf oc "%.6f" s.time;
      Array.iter (fun t -> Printf.fprintf oc ",%.4f" t) s.core_temps;
      output_char oc '\n')
    samples
