(** Multi-period temperature traces from a cold start.

    {!Matex} analyses one period in the stable status; this module
    produces the warm-up trajectory the paper plots in Fig. 4(a): repeat
    the profile from the ambient temperature and sample densely until the
    stable status is reached. *)

type sample = { time : float; core_temps : Linalg.Vec.t }
(** Absolute core temperatures at [time] seconds from the cold start. *)

(** [from_ambient model ~periods ~samples_per_segment profile] repeats
    [profile] [periods] times starting at the ambient temperature,
    sampling [samples_per_segment] points inside every segment.  Raises
    [Invalid_argument] for [periods <= 0]. *)
val from_ambient :
  Model.t -> periods:int -> samples_per_segment:int -> Matex.profile -> sample array

(** [periods_to_stable model ?tol profile] counts how many repetitions it
    takes from ambient until the period-boundary state changes by less
    than [tol] (default [1e-6] K, infinity norm), capped at 10_000. *)
val periods_to_stable : Model.t -> ?tol:float -> Matex.profile -> int

(** [peak model samples] is the hottest absolute core temperature in a
    trace. *)
val peak : sample array -> float

(** [to_csv_channel oc model samples] writes a CSV with a [time] column
    and one column per core. *)
val to_csv_channel : out_channel -> Model.t -> sample array -> unit
