lib/thermal/hotspot.mli: Floorplan Model Rc_network
