lib/thermal/hotspot.ml: Array Floorplan Material Model Rc_network
