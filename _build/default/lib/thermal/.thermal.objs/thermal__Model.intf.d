lib/thermal/model.mli: Linalg
