lib/thermal/ptrace.ml: Array Buffer Fun In_channel List Model Printf String Trace
