lib/thermal/floorplan.mli: Format
