lib/thermal/export.mli: Linalg Model
