lib/thermal/material.ml:
