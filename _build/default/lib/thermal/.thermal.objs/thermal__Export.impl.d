lib/thermal/export.ml: Array Buffer Filename Fun Linalg Model Printf String Sys
