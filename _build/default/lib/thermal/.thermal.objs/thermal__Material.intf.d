lib/thermal/material.mli:
