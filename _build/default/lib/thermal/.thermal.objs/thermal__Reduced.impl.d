lib/thermal/reduced.ml: Array Float Linalg Model Stdlib
