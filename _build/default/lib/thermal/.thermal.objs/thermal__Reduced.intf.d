lib/thermal/reduced.mli: Linalg Model
