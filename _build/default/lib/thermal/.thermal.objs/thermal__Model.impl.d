lib/thermal/model.ml: Array Float Hashtbl Int64 Linalg Mutex Printf
