lib/thermal/grid_model.mli: Floorplan Linalg Matex Model
