lib/thermal/ptrace.mli: Model Trace
