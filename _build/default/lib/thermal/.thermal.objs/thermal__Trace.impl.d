lib/thermal/trace.ml: Array Float Linalg List Matex Model Printf
