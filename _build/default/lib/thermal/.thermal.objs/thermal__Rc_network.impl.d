lib/thermal/rc_network.ml: Array Linalg List Printf Stdlib
