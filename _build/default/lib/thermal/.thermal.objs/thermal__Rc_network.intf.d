lib/thermal/rc_network.mli: Linalg
