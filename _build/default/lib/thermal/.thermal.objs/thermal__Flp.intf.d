lib/thermal/flp.mli: Floorplan
