lib/thermal/flp.ml: Array Buffer Floorplan Fun Hashtbl In_channel List Printf String
