lib/thermal/matex.ml: Array Float Linalg List Model Printf
