lib/thermal/trace.mli: Linalg Matex Model
