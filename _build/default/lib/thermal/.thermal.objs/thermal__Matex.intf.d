lib/thermal/matex.mli: Linalg Model
