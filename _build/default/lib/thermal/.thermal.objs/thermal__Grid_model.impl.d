lib/thermal/grid_model.ml: Array Float Floorplan Hotspot Linalg List Matex Model Printf
