lib/thermal/floorplan.ml: Array Float Format List Printf Seq
